// Case study (Sec. 7.1): using the profiler's allocation-site information
// and the R_cap/R_bw references to optimize BFS data placement, step by
// step — exactly the walkthrough from the paper.
#include <iostream>

#include "common/table.h"
#include "core/advisor.h"
#include "core/profiler.h"
#include "workloads/bfs.h"

namespace {

memdis::core::Level2Profile profile(memdis::workloads::BfsVariant variant, double ratio) {
  memdis::workloads::BfsParams params = memdis::workloads::BfsParams::at_scale(1, 42);
  params.variant = variant;
  memdis::workloads::Bfs bfs(params);
  return memdis::core::MultiLevelProfiler{}.level2(bfs, ratio);
}

double p2_remote(const memdis::core::Level2Profile& p) {
  for (const auto& phase : p.phases)
    if (phase.tag == "p2") return phase.remote_access_ratio;
  return 0.0;
}

double p2_time_ms(const memdis::core::Level2Profile& p) {
  for (const auto& phase : p.run.phases)
    if (phase.tag == "p2") return phase.time_s * 1e3;
  return 0.0;
}

}  // namespace

int main() {
  using namespace memdis;
  const double ratio = 0.75;  // the paper's 75%-pooled scenario

  std::cout << "Step 1: profile the baseline at " << Table::pct(ratio)
            << " pooled memory.\n";
  const auto baseline = profile(workloads::BfsVariant::kBaseline, ratio);
  std::cout << "  BFS traversal remote access ratio: " << Table::pct(p2_remote(baseline))
            << " — far above both references.\n";
  std::cout << "  " << core::advise(baseline).summary << "\n";

  std::cout << "\nStep 2: inspect allocation sites to find small-but-hot objects.\n";
  for (const auto& alloc : baseline.run.allocations) {
    if (alloc.name.empty()) continue;
    std::cout << "  " << alloc.name << ": " << alloc.range.bytes / 1024 << " KiB"
              << (alloc.freed ? "" : "  (never freed)") << "\n";
  }
  std::cout << "  → `Parents` is small but accessed on every edge relaxation, yet it is\n"
               "    allocated after the generation temporaries, so first-touch placed it\n"
               "    on the pool tier. And `gen.src`/`gen.dst` leak (the allocator bug).\n";

  std::cout << "\nStep 3: allocate and initialize Parents first (first-touch pins it).\n";
  const auto parents_first = profile(workloads::BfsVariant::kParentsFirst, ratio);
  std::cout << "  remote access: " << Table::pct(p2_remote(baseline)) << " -> "
            << Table::pct(p2_remote(parents_first)) << "\n";

  std::cout << "\nStep 4: the 1-line change — free the initialization temporaries, so\n"
               "local capacity is reserved for the dynamic frontier allocations.\n";
  const auto optimized = profile(workloads::BfsVariant::kOptimized, ratio);
  std::cout << "  remote access: " << Table::pct(p2_remote(parents_first)) << " -> "
            << Table::pct(p2_remote(optimized)) << "\n";

  Table t({"variant", "traversal time (ms)", "%remote (p2)", "speedup vs baseline"});
  const double t0 = p2_time_ms(baseline);
  t.add_row({"baseline", Table::num(t0, 3), Table::pct(p2_remote(baseline)), "1.000x"});
  t.add_row({"parents-first", Table::num(p2_time_ms(parents_first), 3),
             Table::pct(p2_remote(parents_first)),
             Table::num(t0 / p2_time_ms(parents_first), 3) + "x"});
  t.add_row({"optimized", Table::num(p2_time_ms(optimized), 3),
             Table::pct(p2_remote(optimized)),
             Table::num(t0 / p2_time_ms(optimized), 3) + "x"});
  std::cout << "\n";
  t.print(std::cout);
  std::cout << "\nPaper result at 75% pooling: 99% -> 80% -> 50% remote access and a 13%\n"
               "traversal speedup; the shape reproduces here.\n";
  return 0;
}
