// Example: run every Table-2 workload on the emulated platform and print a
// verification / traffic report. Useful as a first sanity sweep and as a
// template for scripting your own workload studies.
//
// Usage: workload_report [scale]   (scale = 1, 2 or 4; default 1)
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "sim/engine.h"
#include "workloads/workload.h"

int main(int argc, char** argv) {
  using namespace memdis;
  const int scale = argc > 1 ? std::atoi(argv[1]) : 1;

  Table table({"app", "verified", "sim time (ms)", "Gflop", "DRAM GB", "accesses (M)",
               "L1 hit%", "wall (s)", "detail"});

  for (const auto app : workloads::kAllApps) {
    auto wl = workloads::make_workload(app, scale);
    sim::EngineConfig cfg;
    sim::Engine eng(cfg);
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = wl->run(eng);
    eng.finish();
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();

    const auto& c = eng.counters();
    table.add_row({wl->name(), result.verified ? "yes" : "NO",
                   Table::num(eng.elapsed_seconds() * 1e3, 3),
                   Table::num(static_cast<double>(eng.total_flops()) * 1e-9, 3),
                   Table::num(static_cast<double>(c.dram_bytes_total()) * 1e-9, 3),
                   Table::num(static_cast<double>(c.accesses()) * 1e-6, 1),
                   Table::pct(static_cast<double>(c.l1_hits) /
                              static_cast<double>(c.accesses())),
                   Table::num(wall, 2), result.detail});
  }
  table.print(std::cout);
  return 0;
}
