// Example: building a custom sweep on the parallel sweep engine.
//
// The registered scenarios cover the paper's figures; this walkthrough
// shows the underlying API — define a grid (SweepSpec), a measure function
// (any thread-safe pure function of the SweepPoint), run it on N workers,
// and archive the rows. The engine guarantees the rows are bit-identical
// for any jobs count, so feel free to crank --jobs.
#include <iostream>
#include <thread>

#include "common/table.h"
#include "core/experiment.h"
#include "core/sweep.h"

int main() {
  using namespace memdis;

  // Question: how does the pooling penalty of XSBench and Hypre move as
  // the capacity split and the fabric change?
  core::SweepSpec spec;
  spec.apps = {workloads::App::kXSBench, workloads::App::kHypre};
  spec.ratios = {0.25, 0.50, 0.75};
  spec.fabrics = {"upi", "cxl"};

  const core::MeasureFn measure = [](const core::SweepPoint& point) {
    auto wl = point.make_workload();
    const auto out = core::run_workload(*wl, point.run_config());
    return std::vector<core::Metric>{
        {"elapsed_ms", out.elapsed_s * 1e3},
        {"remote_access", out.remote_access_ratio()},
        {"verified", out.result.verified ? 1.0 : 0.0},
    };
  };

  const unsigned jobs = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "sweeping " << spec.size() << " configurations on " << jobs << " threads...\n";
  const auto result = core::run_sweep(spec, measure, {.jobs = jobs});

  Table t({"app", "ratio", "fabric", "time (ms)", "%remote access", "verified"});
  for (const auto& row : result.rows) {
    const auto value = [&](const char* name) {
      for (const auto& [k, v] : row.metrics)
        if (k == name) return v;
      return 0.0;
    };
    t.add_row({workloads::app_name(row.point.app), Table::num(row.point.ratio, 2),
               row.point.fabric, Table::num(value("elapsed_ms"), 3),
               Table::pct(value("remote_access")), value("verified") > 0 ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\ndone in " << result.wall_seconds << " s; rerun with any jobs count — the\n"
               "rows (and a CSV written via write_csv) are bit-identical.\n";
  return 0;
}
