// Capacity planning (Sec. 4.1's decision flow): given an application and a
// node design with a fixed local tier plus pooled memory, use the
// bandwidth–capacity scaling curve and the memory roofline to answer:
//
//  * how much pooled memory can this app take before the pool tier becomes
//    the memory bottleneck?
//  * what access split would exploit both tiers concurrently?
//  * how many nodes would a (paper-scale) job need under each policy?
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "core/profiler.h"
#include "core/roofline.h"

int main(int argc, char** argv) {
  using namespace memdis;
  const int scale = argc > 1 ? std::atoi(argv[1]) : 1;

  const core::MultiLevelProfiler profiler;
  const auto& machine = profiler.base_config().machine;

  std::cout << "Node design: " << machine.node_tier().bandwidth_gbps << " GB/s local tier, "
            << machine.pool_tier().bandwidth_gbps << " GB/s pool link (R_bw = "
            << Table::pct(machine.remote_bandwidth_ratio()) << ")\n\n";

  Table t({"app", "footprint", "hot set for 90% traffic", "max pooled frac (perf-neutral)",
           "B_eff at balanced split", "placement guidance"});
  for (const auto app : workloads::kAllApps) {
    auto wl = workloads::make_workload(app, scale);
    const auto l1 = profiler.level1(*wl);
    const auto& curve = l1.scaling_curve;

    // The hot set that must stay local to keep 90% of traffic on the fast
    // tier; everything beyond it can live on the pool "for free".
    const double hot_fraction = curve.footprint_fraction_for(0.90);
    const double poolable = 1.0 - hot_fraction;

    // Balanced concurrent-tier bandwidth at the R_bw split (Sec. 3.4).
    const double b_eff =
        core::effective_bandwidth_gbps(machine, machine.remote_bandwidth_ratio());

    const bool latency_sensitive = l1.prefetch.coverage < 0.2;
    t.add_row(
        {wl->name(), format_bytes(static_cast<double>(l1.peak_rss_bytes)),
         Table::pct(hot_fraction) + " of footprint", Table::pct(poolable),
         Table::num(b_eff, 0) + " GB/s",
         latency_sensitive ? "minimize remote exposure (latency-bound)"
                           : (poolable > 0.5 ? "pool the cold majority"
                                             : "scale out or keep mostly local")});
  }
  t.print(std::cout);

  std::cout << "\nReading the table: BFS and XSBench can push most of their footprint to\n"
               "the pool because only a small hot set carries the traffic — but XSBench\n"
               "is latency-bound (sub-1% prefetch coverage), so its remote exposure\n"
               "should still be minimized. HPL and Hypre touch everything uniformly:\n"
               "pooling their memory means paying the pool's bandwidth on every byte,\n"
               "so they should scale out to more nodes instead (Sec. 2.1's\n"
               "misconception discussion).\n";
  return 0;
}
