// Defining a custom N-tier MemoryTopology and running a workload on it.
//
// Build: cmake --build build --target example_custom_topology
//
// The built-in presets (upi / cxl / cxl-switched / split / three-tier /
// hybrid) cover the paper's testbed and its what-ifs, but any machine is
// expressible: this example models an HBM-class node — a small, very fast
// on-package tier in front of DDR — with a switched CXL pool behind both,
// then compares first-touch against a 3-way weighted interleave.
#include <iostream>

#include "common/table.h"
#include "core/experiment.h"
#include "workloads/workload.h"

int main() {
  using namespace memdis;

  // ---- 1. describe the machine -------------------------------------------
  memsim::MachineConfig machine;
  machine.topology.tiers.clear();
  // Tier 0: on-package HBM — no fabric link (node-local).
  machine.topology.tiers.push_back(
      memsim::MemoryTierSpec{"hbm", 1ULL << 30, 400.0, 95.0, {}});
  // Tier 1: DDR behind the memory controller. Modelled as a fabric tier
  // with a wide, low-overhead "link" so spill order places it after HBM.
  memsim::FabricLinkSpec ddr_link;
  ddr_link.traffic_capacity_gbps = 90.0;
  ddr_link.protocol_overhead = 1.1;
  machine.topology.tiers.push_back(
      memsim::MemoryTierSpec{"ddr", 96ULL << 30, 73.0, 111.0, ddr_link});
  // Tier 2: a switched CXL pool at the end of the chain.
  memsim::FabricLinkSpec cxl_link;
  cxl_link.traffic_capacity_gbps = 68.0;
  cxl_link.protocol_overhead = 1.5;
  machine.topology.tiers.push_back(
      memsim::MemoryTierSpec{"cxl-pool", 96ULL << 30, 45.0, 320.0, cxl_link});
  machine.topology.validate();

  std::cout << "Custom topology:\n";
  for (memsim::TierId t = 0; t < machine.num_tiers(); ++t) {
    const auto& tier = machine.tier(t);
    std::cout << "  tier " << t << "  " << tier.name << ": " << tier.bandwidth_gbps
              << " GB/s, " << tier.latency_ns << " ns"
              << (tier.is_fabric() ? "  (fabric)" : "  (node)") << "\n";
  }

  // ---- 2. first-touch: the HBM tier fills, the rest spills ---------------
  auto wl = workloads::make_workload(workloads::App::kHypre, 1, /*seed=*/42);
  core::RunConfig cfg;
  cfg.machine = machine;
  // Shape capacities so the spill chain engages: HBM holds 30% of the
  // footprint, DDR the next 40%, the pool the rest.
  cfg.capacity_fractions = std::vector<double>{0.30, 0.40};
  const auto first_touch = core::run_workload(*wl, cfg);

  // ---- 3. weighted interleave across all three tiers ---------------------
  // Route default-policy allocations through a 4:2:1 interleave (tiers
  // weighted by their approximate bandwidth share) — the `numactl
  // --interleave` analogue with the kernel patch's weighted semantics.
  // Full tier capacities this time: placement is set by policy alone.
  auto wl2 = workloads::make_workload(workloads::App::kHypre, 1, /*seed=*/42);
  sim::EngineConfig ecfg;
  ecfg.machine = machine;
  ecfg.default_policy_override = memsim::MemPolicy::interleave({4, 2, 1});
  sim::Engine eng(ecfg);
  (void)wl2->run(eng);
  eng.finish();

  Table t({"placement", "time (ms)", "%t0 (hbm)", "%t1 (ddr)", "%t2 (pool)"});
  const auto share = [](const cachesim::HwCounters& c, memsim::TierId tier) {
    const auto total = static_cast<double>(c.dram_bytes_total());
    return total > 0 ? static_cast<double>(c.dram_bytes(tier)) / total : 0.0;
  };
  t.add_row({"first-touch spill chain", Table::num(first_touch.elapsed_s * 1e3, 3),
             Table::pct(share(first_touch.counters, 0)),
             Table::pct(share(first_touch.counters, 1)),
             Table::pct(share(first_touch.counters, 2))});
  t.add_row({"interleave 4:2:1", Table::num(eng.elapsed_seconds() * 1e3, 3),
             Table::pct(share(eng.counters(), 0)), Table::pct(share(eng.counters(), 1)),
             Table::pct(share(eng.counters(), 2))});
  t.print(std::cout);

  std::cout << "\nReading: the interleave streams from all three tiers at once, so\n"
               "aggregate bandwidth approaches the sum of the tier bandwidths —\n"
               "the multi-tier roofline argument of Fig. 5, on a custom machine.\n";
  return 0;
}
