// Rack-scale interference-aware scheduling (Sec. 7.2 extension).
//
// Builds job profiles from measured Level-3 data, then drives the
// event-driven cluster simulator with a mixed job stream under the random
// and the interference-aware policies — the "more than two nodes per
// memory pool" scenario the paper anticipates.
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "core/profiler.h"
#include "sched/cluster.h"

int main() {
  using namespace memdis;

  // Measure each application's Level-3 profile once (50% pooled).
  std::cout << "Measuring Level-3 profiles for the job mix...\n";
  const core::MultiLevelProfiler profiler;
  std::vector<sched::JobProfile> profiles;
  std::vector<double> induced_loi;
  for (const auto app : workloads::kAllApps) {
    auto wl = workloads::make_workload(app, 1);
    const auto l3 = profiler.level3(*wl, 0.5, {0, 25, 50});
    sched::JobProfile job;
    job.app = wl->name();
    job.base_runtime_s = 600.0;  // paper-scale job length
    job.sensitivity = l3.sensitivity;
    job.induced_ic = l3.induced.ic_mean;
    profiles.push_back(job);
    // LoI a co-runner experiences from this job = its offered link traffic
    // as % of the link peak (measured at Level 2, capped at 50).
    core::RunConfig rc = profiler.base_config();
    rc.remote_capacity_ratio = 0.5;
    auto wl2 = workloads::make_workload(app, 1);
    const auto run = core::run_workload(*wl2, rc);
    induced_loi.push_back(std::min(
        100.0 * run.mean_offered_link_utilization(profiler.base_config().machine), 50.0));
  }

  // A mixed stream: 48 jobs, round-robin apps, staggered arrivals.
  std::vector<sched::JobRequest> jobs;
  Xoshiro256 rng(7);
  for (int i = 0; i < 48; ++i) {
    sched::JobRequest req;
    const std::size_t which = static_cast<std::size_t>(i) % profiles.size();
    req.profile = profiles[which];
    req.nodes = 1 + rng.uniform_below(4);
    req.pool_demand_gb = 32.0 + 32.0 * static_cast<double>(rng.uniform_below(4));
    req.induced_loi = induced_loi[which];
    req.arrival_s = static_cast<double>(i) * 75.0;
    jobs.push_back(req);
  }

  sched::ClusterConfig cluster;
  cluster.racks = 4;
  cluster.rack.nodes_per_rack = 8;
  cluster.rack.pool_capacity_gb = 512.0;
  const sched::ClusterSim sim(cluster);

  Table t({"policy", "makespan (s)", "mean runtime (s)", "mean wait (s)", "mean slowdown"});
  for (const auto policy :
       {sched::SchedulerPolicy::kRandom, sched::SchedulerPolicy::kInterferenceAware}) {
    const auto out = sim.run(jobs, policy, /*loi_cap=*/35.0);
    t.add_row({policy == sched::SchedulerPolicy::kRandom ? "random" : "interference-aware",
               Table::num(out.makespan_s, 0), Table::num(out.mean_runtime_s, 1),
               Table::num(out.mean_wait_s, 1), Table::num(out.mean_slowdown, 4)});
  }
  t.print(std::cout);
  std::cout << "\nThe interference-aware policy trades queueing delay (it declines to\n"
               "co-locate the heaviest interferers) for predictable runtimes: the mean\n"
               "slowdown drops toward 1.0 — the effect the paper projects for pools\n"
               "shared by more than two nodes. Facilities tune the LoI cap to pick\n"
               "their point on this wait-vs-determinism curve.\n";
  return 0;
}
