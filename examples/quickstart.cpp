// Quickstart: profile one application with the three-level methodology.
//
// Level 1 — intrinsic requirements (AI, footprint, scaling curve, prefetch)
// Level 2 — behaviour on a two-tier system (remote access vs. references)
// Level 3 — behaviour under memory-pool interference (sensitivity, IC)
//
// Build & run:  ./quickstart [app]   (app = HPL|SuperLU|NekRS|Hypre|BFS|XSBench)
#include <cstring>
#include <iostream>

#include "common/table.h"
#include "common/units.h"
#include "core/advisor.h"
#include "core/profiler.h"

int main(int argc, char** argv) {
  using namespace memdis;

  workloads::App app = workloads::App::kHypre;
  if (argc > 1) {
    for (const auto candidate : workloads::kAllApps)
      if (std::strcmp(argv[1], workloads::app_name(candidate)) == 0) app = candidate;
  }
  auto workload = workloads::make_workload(app, /*scale=*/1);
  std::cout << "Profiling " << workload->name() << " on the emulated dual-socket platform\n";

  core::MultiLevelProfiler profiler;  // default: the paper's testbed config

  // ---- Level 1 --------------------------------------------------------------
  const auto l1 = profiler.level1(*workload);
  std::cout << "\n[Level 1] intrinsic memory requirements\n"
            << "  verified run:        " << (l1.result.verified ? "yes" : "NO") << " ("
            << l1.result.detail << ")\n"
            << "  peak footprint:      " << format_bytes(static_cast<double>(l1.peak_rss_bytes))
            << "\n"
            << "  arithmetic intensity " << Table::num(l1.arithmetic_intensity, 3)
            << " flop/B, mean DRAM bandwidth " << Table::num(l1.mean_dram_gbps, 1) << " GB/s\n"
            << "  hottest 20% of footprint covers "
            << Table::pct(l1.scaling_curve.access_fraction_at(0.2)) << " of accesses (skew "
            << Table::num(l1.scaling_curve.skewness(), 2) << ")\n"
            << "  prefetch: accuracy " << Table::pct(l1.prefetch.accuracy) << ", coverage "
            << Table::pct(l1.prefetch.coverage) << ", gain "
            << Table::pct(l1.prefetch.performance_gain) << "\n";

  // ---- Level 2 --------------------------------------------------------------
  const double remote_ratio = 0.5;
  const auto l2 = profiler.level2(*workload, remote_ratio);
  std::cout << "\n[Level 2] two-tier behaviour at " << Table::pct(remote_ratio)
            << " remote capacity\n"
            << "  remote access ratio: " << Table::pct(l2.remote_access_ratio_total)
            << " (references: R_cap " << Table::pct(l2.remote_capacity_ratio_configured)
            << ", R_bw " << Table::pct(l2.remote_bandwidth_ratio) << ")\n";
  const auto advice = core::advise(l2);
  std::cout << "  advisor: " << advice.summary << "\n";

  // ---- Level 3 --------------------------------------------------------------
  const auto l3 = profiler.level3(*workload, remote_ratio, {0, 25, 50});
  std::cout << "\n[Level 3] memory-pool interference\n";
  for (const auto& pt : l3.sensitivity)
    std::cout << "  LoI " << Table::num(pt.loi, 0) << "%: relative performance "
              << Table::num(pt.relative_performance, 3) << "\n";
  std::cout << "  induced interference coefficient: " << Table::num(l3.induced.ic_mean, 2)
            << " (phase spread " << Table::num(l3.induced.ic_min, 2) << " – "
            << Table::num(l3.induced.ic_max, 2) << ")\n";
  return 0;
}
