// Fleet-scale rack simulator: an open stream of jobs over shared
// disaggregated pools (the paper's Sec. 7 capacity-planning argument at
// datacenter scale).
//
// Where `sched/cluster` prices one co-location *pair* on one pool link,
// this layer simulates thousands of jobs: a deterministic arrival process
// (fleet/arrival.h) places jobs across compute-node groups that each share
// one disaggregated pool, an admission policy decides placement (or
// queues, or rejects), running jobs feed demand and bulk cross-traffic
// through the pool link's two-class `memsim::QueueModel`, and overloaded
// pools can migrate running jobs to quieter ones — the migration burst
// itself charged as bulk traffic into both pool queues.
//
// Model shape: time advances in fixed steps of `step_s`. Each step,
//
//   1. (serial) arrivals are admitted / queued / rejected, and at most
//      `max_migrations_per_step` overload-triggered migrations execute;
//   2. (serial) per-pool demand rates are summed from the previous step's
//      job speeds — the one-step lag that makes each job's speed a pure
//      function of the frozen pool snapshot (the same prior-window rule
//      the engine's queue integration uses, docs/QUEUE_MODEL.md);
//   3. (parallel, shardable) every running job independently evaluates its
//      effective LoI — pool background + co-runners' demand traffic as %
//      of link capacity + the QueueModel's windowed bulk cross-rate — and
//      advances `dt * interpolate_sensitivity(curve, loi)` of work,
//      writing speed and LoI into its own slot;
//   4. (serial) completions retire in index order, resources free, pool
//      gauges integrate, and the step's demand/bulk bytes are observe()d
//      into each pool's queue windows.
//
// Determinism contract: step 3 is the only parallel region and every job
// writes only its own slot, so a run at jobs=N is bit-identical to the
// serial run for any N — the same contract (and the same thread pool) as
// the sweep engine. All randomness is per-job, derived from the arrival
// index (fleet/arrival.h), so results are also independent of arrival
// source interleaving.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "memsim/tier.h"
#include "sched/colocation.h"

namespace memdis::fleet {

struct Arrival;  // fleet/arrival.h

/// One disaggregated pool and the compute nodes attached to it.
struct PoolSpec {
  double capacity_gb = 512.0;     ///< pooled memory behind the link
  std::size_t nodes = 16;         ///< compute nodes sharing this pool
  double background_loi = 0.0;    ///< static interference floor (%)
  memsim::FabricLinkSpec link{};  ///< the shared fabric link (QueueModel)
};

/// A job class: the per-job profile plus the fleet-level resource demand.
/// `profile` is the same Level-3 shape the pairwise co-location layer uses
/// (sensitivity curve, offered demand traffic) — the fleet generalizes the
/// pair to N co-runners without changing the job model.
struct JobClass {
  sched::JobProfile profile;    ///< app name, base runtime, sensitivity, offered_gbps
  double bulk_gbps = 0.0;       ///< steady bulk traffic (checkpoint/spill streams)
  double pool_demand_gb = 0.0;  ///< pooled memory the job pins while running
  std::size_t nodes = 1;        ///< compute nodes the job occupies
  double weight = 1.0;          ///< arrival-mix weight (Poisson class pick)
};

/// Placement policy for admitted jobs.
enum class AdmissionPolicy {
  kFirstFit,  ///< first pool (by index) with free nodes + capacity
  kLoiAware,  ///< feasible pool minimizing the resulting demand LoI
};

struct FleetConfig {
  std::vector<PoolSpec> pools;
  AdmissionPolicy policy = AdmissionPolicy::kLoiAware;
  /// Pending-queue bound: arrivals that find the FIFO full are rejected
  /// (the admission-rejects fleet metric). Jobs whose declared demand can
  /// never fit any pool are rejected immediately.
  std::size_t queue_limit = 64;
  bool migration = true;               ///< pool-to-pool migration of running jobs
  double migrate_threshold_loi = 60.0; ///< source-pool demand LoI that arms migration
  double migrate_gain_loi = 20.0;      ///< required LoI gap to the destination pool
  std::size_t max_migrations_per_step = 1;
  double step_s = 1.0;     ///< fleet timestep (s)
  std::uint64_t base_seed = 42;
  /// Per-job runtime jitter: work_s = base_runtime_s * U(1-jitter, 1+jitter)
  /// drawn from the job's own arrival-index seed. 0 disables.
  double runtime_jitter = 0.05;
};

/// Per-job outcome. Exactly one of {rejected, completed} holds at the end
/// of a run (the simulator drains every admitted job).
struct FleetJobRecord {
  std::size_t index = 0;      ///< arrival index (stable row order)
  std::string job_class;      ///< class name (profile.app)
  std::uint64_t seed = 0;     ///< per-job seed (arrival_seed(base_seed, index))
  double arrival_s = 0.0;
  double start_s = -1.0;      ///< placement time; -1 if rejected
  double finish_s = -1.0;     ///< completion time; -1 if rejected
  int pool = -1;              ///< pool the job finished on
  int migrations = 0;         ///< times this job moved between pools
  double work_s = 0.0;        ///< jittered idle-system runtime
  bool rejected = false;
  /// Slowdown = (finish - arrival) / work_s: queueing delay and
  /// interference both count against the job (the scheduling-literature
  /// definition; docs/FLEET.md).
  [[nodiscard]] double slowdown() const { return (finish_s - arrival_s) / work_s; }
  [[nodiscard]] double wait_s() const { return start_s - arrival_s; }
};

/// Time-integrated per-pool gauges.
struct PoolStats {
  double utilization = 0.0;    ///< time-mean used_gb / capacity_gb
  double peak_used_gb = 0.0;   ///< max pooled memory ever pinned (≤ capacity)
  double mean_demand_loi = 0.0;///< time-mean demand-class effective LoI (%)
  double stranded_gb = 0.0;    ///< time-mean free GB while the node group was full
};

/// A full fleet run: per-job records in arrival order plus fleet metrics.
struct FleetResult {
  std::vector<FleetJobRecord> jobs;
  std::vector<PoolStats> pools;
  double makespan_s = 0.0;
  std::size_t completed = 0;
  std::size_t rejected = 0;
  std::size_t migrations = 0;
  double p50_slowdown = 0.0;  ///< over completed jobs (type-7 percentile)
  double p99_slowdown = 0.0;
  double p50_wait_s = 0.0;
  double p99_wait_s = 0.0;
  double mean_utilization = 0.0;  ///< mean over pools of PoolStats::utilization
  double stranded_gb = 0.0;       ///< sum over pools of PoolStats::stranded_gb

  /// Deterministic per-job CSV (arrival order). Byte-identical for any
  /// jobs count — the fleet analogue of SweepResult::write_csv.
  void write_csv(std::ostream& os) const;
  void write_csv_file(const std::string& path) const;

  /// Deterministic JSON: summary, per-pool stats, then per-job rows.
  void write_json(std::ostream& os) const;
  void write_json_file(const std::string& path) const;
};

/// Runs the arrival stream to completion. `threads` shards the per-job
/// simulation step across the sweep thread pool (0 = hardware
/// concurrency); results are bit-identical for any value.
[[nodiscard]] FleetResult run_fleet(const FleetConfig& cfg,
                                    const std::vector<JobClass>& classes,
                                    const std::vector<Arrival>& arrivals,
                                    unsigned threads = 1);

/// The reference three-class job mix (docs/FLEET.md): a link-sensitive HPC
/// solver, a moderate analytics job, and a short bulk-heavy ETL job. Used
/// by `memdis fleet`, the ext-fleet-rack scenario, bench_fleet, and the
/// tests, so every surface exercises one calibrated mix.
[[nodiscard]] std::vector<JobClass> default_job_classes();

/// A rack of `pools` identical pools (16 nodes, 512 GB, the default
/// FabricLinkSpec — the calibrated 85 GB/s UPI-class link).
[[nodiscard]] std::vector<PoolSpec> default_pools(std::size_t pools);

}  // namespace memdis::fleet
