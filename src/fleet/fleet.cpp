#include "fleet/fleet.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "common/artifact_format.h"
#include "common/contract.h"
#include "common/csv.h"
#include "common/parallel_for.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"
#include "core/interference.h"
#include "fleet/arrival.h"
#include "memsim/queue_model.h"

namespace memdis::fleet {

namespace {

using memsim::QueueModel;
using memsim::TrafficClass;

/// Seed-stream split for the per-job runtime jitter: a fixed function of
/// the job's arrival-index seed alone, so jitter is identical whether the
/// arrival came from a Poisson draw or a trace row (which consume
/// different numbers of draws from the primary stream).
constexpr std::uint64_t kJitterStream = 0xf1ee7f1ee7f1ee77ULL;

double jittered_work_s(const JobClass& cls, std::uint64_t seed, double jitter) {
  if (jitter <= 0.0) return cls.profile.base_runtime_s;
  Xoshiro256 rng(SplitMix64(seed ^ kJitterStream).next());
  return cls.profile.base_runtime_s * (1.0 - jitter + 2.0 * jitter * rng.uniform());
}

/// LoI (%) that `data_gbps` of co-runner demand traffic adds on a link —
/// the same expression the pairwise shared-queue model uses for the
/// co-runner's offered stream (sched/colocation.cpp) and QueueModel uses
/// for the bulk class: data rate, protocol overhead applied, as % of the
/// link's traffic capacity.
double demand_loi_of(const memsim::FabricLinkSpec& link, double data_gbps) {
  return 100.0 * link.protocol_overhead * data_gbps / link.traffic_capacity_gbps;
}

/// Mutable state of one pool during a run.
struct PoolState {
  PoolSpec spec;
  QueueModel queue;
  std::size_t free_nodes = 0;
  double free_gb = 0.0;
  // Previous step's totals — the frozen snapshot per-job evaluation reads.
  double demand_rate_prev = 0.0;  ///< Σ offered_gbps · speed over resident jobs
  double loi_prev = 0.0;          ///< bystander demand LoI (admission/migration)
  // This step's accumulators (rebuilt serially every step).
  double demand_bytes = 0.0;
  double bulk_bytes = 0.0;
  // Time integrals for PoolStats.
  double used_gb_dt = 0.0;
  double loi_dt = 0.0;
  double stranded_gb_dt = 0.0;
  double peak_used_gb = 0.0;

  explicit PoolState(const PoolSpec& s)
      : spec(s),
        queue(memsim::MemoryTierSpec{
            "pool", static_cast<std::uint64_t>(s.capacity_gb * GB),
            s.link.data_bandwidth_gbps(), 0.0, s.link, memsim::kNodeTier}),
        free_nodes(s.nodes),
        free_gb(s.capacity_gb) {}

  [[nodiscard]] double used_gb() const { return spec.capacity_gb - free_gb; }
};

struct RunningJob {
  std::size_t record = 0;  ///< index into FleetResult::jobs (== arrival index)
  std::size_t cls = 0;
  int pool = -1;
  double work_done_s = 0.0;
  double work_s = 0.0;
  double speed_prev = 1.0;  ///< previous step's speed (first step: full speed)
  bool paused = false;      ///< migrating this step (stop-and-copy)
};

}  // namespace

std::vector<JobClass> default_job_classes() {
  // Three synthetic Level-3 shapes spanning the paper's Fig. 10 spread:
  // a link-sensitive solver, a moderate analytics job, and a short
  // bulk-heavy ETL job. Curves are monotone in LoI and extend to the
  // LinkModel clamp (2000%) so heavily shared pools stay well-defined.
  std::vector<JobClass> classes(3);

  classes[0].profile.app = "hpc-solver";
  classes[0].profile.base_runtime_s = 180.0;
  classes[0].profile.offered_gbps = 22.0;
  classes[0].profile.sensitivity = {{0, 1.0},    {25, 0.92},  {50, 0.80},  {100, 0.62},
                                    {200, 0.45}, {400, 0.30}, {800, 0.22}, {2000, 0.15}};
  classes[0].profile.induced_ic = 1.6;
  classes[0].bulk_gbps = 0.0;
  classes[0].pool_demand_gb = 96.0;
  classes[0].nodes = 4;
  classes[0].weight = 1.0;

  classes[1].profile.app = "analytics";
  classes[1].profile.base_runtime_s = 75.0;
  classes[1].profile.offered_gbps = 9.0;
  classes[1].profile.sensitivity = {{0, 1.0},    {50, 0.95},  {100, 0.88}, {200, 0.76},
                                    {400, 0.62}, {800, 0.50}, {2000, 0.42}};
  classes[1].profile.induced_ic = 1.2;
  classes[1].bulk_gbps = 1.0;
  classes[1].pool_demand_gb = 48.0;
  classes[1].nodes = 2;
  classes[1].weight = 2.0;

  classes[2].profile.app = "etl-burst";
  classes[2].profile.base_runtime_s = 30.0;
  classes[2].profile.offered_gbps = 4.0;
  classes[2].profile.sensitivity = {
      {0, 1.0}, {100, 0.97}, {400, 0.90}, {1000, 0.82}, {2000, 0.75}};
  classes[2].profile.induced_ic = 1.1;
  classes[2].bulk_gbps = 6.0;
  classes[2].pool_demand_gb = 24.0;
  classes[2].nodes = 1;
  classes[2].weight = 3.0;

  return classes;
}

std::vector<PoolSpec> default_pools(std::size_t pools) {
  expects(pools >= 1, "a fleet needs at least one pool");
  return std::vector<PoolSpec>(pools, PoolSpec{});
}

FleetResult run_fleet(const FleetConfig& cfg, const std::vector<JobClass>& classes,
                      const std::vector<Arrival>& arrivals, unsigned threads) {
  expects(!cfg.pools.empty(), "fleet has no pools");
  expects(!classes.empty(), "fleet has no job classes");
  expects(cfg.step_s > 0.0, "fleet step must be positive");
  for (const auto& cls : classes) {
    expects(cls.profile.base_runtime_s > 0.0, "job class base runtime must be positive");
    expects(!cls.profile.sensitivity.empty(), "job class needs a sensitivity curve");
    expects(cls.nodes >= 1, "job class must occupy at least one node");
    expects(cls.pool_demand_gb >= 0.0, "job class pool demand cannot be negative");
  }
  for (const auto& a : arrivals)
    expects(a.job_class < classes.size(), "arrival names an unknown job class");

  std::vector<PoolState> pools;
  pools.reserve(cfg.pools.size());
  for (const auto& spec : cfg.pools) pools.emplace_back(spec);

  FleetResult result;
  result.jobs.resize(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    auto& rec = result.jobs[i];
    rec.index = i;
    rec.job_class = classes[arrivals[i].job_class].profile.app;
    rec.seed = arrivals[i].seed;
    rec.arrival_s = arrivals[i].time_s;
    rec.work_s = jittered_work_s(classes[arrivals[i].job_class], arrivals[i].seed,
                                 cfg.runtime_jitter);
  }

  const auto fits_somewhere = [&](const JobClass& cls) {
    for (const auto& p : pools)
      if (p.spec.nodes >= cls.nodes && p.spec.capacity_gb >= cls.pool_demand_gb) return true;
    return false;
  };
  const auto feasible = [&](const JobClass& cls, const PoolState& p) {
    return p.free_nodes >= cls.nodes && p.free_gb >= cls.pool_demand_gb;
  };

  std::vector<RunningJob> running;
  std::vector<std::size_t> pending;  // arrival indices, FIFO
  std::size_t next_arrival = 0;
  double now = 0.0;

  const auto place = [&](std::size_t ai, int pool_idx) {
    const Arrival& a = arrivals[ai];
    const JobClass& cls = classes[a.job_class];
    PoolState& p = pools[static_cast<std::size_t>(pool_idx)];
    p.free_nodes -= cls.nodes;
    p.free_gb -= cls.pool_demand_gb;
    ensures(p.free_gb >= -1e-9, "admission oversubscribed a pool's capacity");
    p.peak_used_gb = std::max(p.peak_used_gb, p.used_gb());
    auto& rec = result.jobs[ai];
    rec.start_s = now;
    rec.pool = pool_idx;
    RunningJob rj;
    rj.record = ai;
    rj.cls = a.job_class;
    rj.pool = pool_idx;
    rj.work_s = rec.work_s;
    running.push_back(rj);
  };

  /// Picks a pool for `cls` under the admission policy; -1 if none fits now.
  const auto choose_pool = [&](const JobClass& cls) -> int {
    int chosen = -1;
    if (cfg.policy == AdmissionPolicy::kFirstFit) {
      for (std::size_t p = 0; p < pools.size(); ++p)
        if (feasible(cls, pools[p])) return static_cast<int>(p);
      return -1;
    }
    // LoI-aware: the feasible pool minimizing the demand LoI the newcomer
    // would raise it to (previous step's rate + the job's full-speed offer).
    double best = std::numeric_limits<double>::max();
    for (std::size_t p = 0; p < pools.size(); ++p) {
      if (!feasible(cls, pools[p])) continue;
      const double after = pools[p].loi_prev +
                           demand_loi_of(pools[p].spec.link, cls.profile.offered_gbps);
      if (after < best) {
        best = after;
        chosen = static_cast<int>(p);
      }
    }
    return chosen;
  };

  const auto drain_pending = [&] {
    // FIFO: the head blocks later arrivals wanting the same resources, so
    // first-fit and LoI-aware stay comparable (the sched/cluster rule).
    while (!pending.empty()) {
      const int pool_idx = choose_pool(classes[arrivals[pending.front()].job_class]);
      if (pool_idx < 0) break;
      place(pending.front(), pool_idx);
      pending.erase(pending.begin());
    }
  };

  while (next_arrival < arrivals.size() || !running.empty() || !pending.empty()) {
    const double dt = cfg.step_s;

    // -- 1a. arrivals up to `now`: admit, queue, or reject (serial) ----------
    // Admission happens at the top of the step, before any work accrues in
    // [now, now+dt], so start_s >= arrival_s and slowdown >= 1 by
    // construction (a job never earns progress for time before it started).
    while (next_arrival < arrivals.size() && arrivals[next_arrival].time_s <= now) {
      const std::size_t ai = next_arrival++;
      const JobClass& cls = classes[arrivals[ai].job_class];
      if (!fits_somewhere(cls) || pending.size() >= cfg.queue_limit) {
        result.jobs[ai].rejected = true;
        ++result.rejected;
        continue;
      }
      pending.push_back(ai);
    }
    drain_pending();

    // -- 1b. overload-triggered pool-to-pool migration (serial) --------------
    for (auto& rj : running) rj.paused = false;
    if (cfg.migration && pools.size() > 1) {
      for (std::size_t m = 0; m < cfg.max_migrations_per_step; ++m) {
        // Hottest pool by last step's demand LoI.
        int src = -1;
        double src_loi = cfg.migrate_threshold_loi;
        for (std::size_t p = 0; p < pools.size(); ++p)
          if (pools[p].loi_prev >= src_loi) {
            src_loi = pools[p].loi_prev;
            src = static_cast<int>(p);
          }
        if (src < 0) break;
        // Move the job offering the most traffic (ties: lowest arrival
        // index) to the feasible pool it improves on by the hysteresis gap.
        int victim = -1;
        double victim_offer = 0.0;
        for (std::size_t i = 0; i < running.size(); ++i) {
          const auto& rj = running[i];
          if (rj.pool != src || rj.paused) continue;
          const double offer = classes[rj.cls].profile.offered_gbps;
          if (victim < 0 || offer > victim_offer ||
              (offer == victim_offer && rj.record < running[static_cast<std::size_t>(victim)].record)) {
            victim = static_cast<int>(i);
            victim_offer = offer;
          }
        }
        if (victim < 0) break;
        RunningJob& rj = running[static_cast<std::size_t>(victim)];
        const JobClass& cls = classes[rj.cls];
        int dst = -1;
        double dst_loi = src_loi - cfg.migrate_gain_loi;
        for (std::size_t p = 0; p < pools.size(); ++p) {
          if (static_cast<int>(p) == src || !feasible(cls, pools[p])) continue;
          const double after =
              pools[p].loi_prev + demand_loi_of(pools[p].spec.link, cls.profile.offered_gbps);
          if (after < dst_loi) {
            dst_loi = after;
            dst = static_cast<int>(p);
          }
        }
        if (dst < 0) break;
        // Stop-and-copy: the job pauses this step while its resident set
        // crosses both pool links as bulk traffic — which the queue windows
        // turn into demand-latency inflation for everyone it shares with.
        PoolState& from = pools[static_cast<std::size_t>(src)];
        PoolState& to = pools[static_cast<std::size_t>(dst)];
        from.free_nodes += cls.nodes;
        from.free_gb += cls.pool_demand_gb;
        to.free_nodes -= cls.nodes;
        to.free_gb -= cls.pool_demand_gb;
        ensures(to.free_gb >= -1e-9, "migration oversubscribed a pool's capacity");
        to.peak_used_gb = std::max(to.peak_used_gb, to.used_gb());
        const double bytes = cls.pool_demand_gb * GB;
        from.bulk_bytes += bytes;
        to.bulk_bytes += bytes;
        rj.pool = dst;
        rj.paused = true;
        result.jobs[rj.record].pool = dst;
        ++result.jobs[rj.record].migrations;
        ++result.migrations;
        drain_pending();  // the source pool just freed resources
      }
    }

    // -- 2. freeze the per-pool snapshot from previous-step speeds (serial) --
    for (auto& p : pools) p.demand_rate_prev = 0.0;
    for (const auto& rj : running) {
      const double speed = rj.paused ? 0.0 : rj.speed_prev;
      pools[static_cast<std::size_t>(rj.pool)].demand_rate_prev +=
          classes[rj.cls].profile.offered_gbps * speed;
    }
    // Per-pool bulk cross rate: the QueueModel's windowed estimate — a
    // migration burst inflates every resident job's LoI for one window.
    std::vector<double> bulk_cross(pools.size());
    for (std::size_t p = 0; p < pools.size(); ++p)
      bulk_cross[p] = pools[p].queue.cross_rate_gbps(TrafficClass::kDemand);

    // -- 3. per-job simulation, sharded across the thread pool ---------------
    // Each job reads only the frozen snapshot and writes only its own slot,
    // so any thread count produces bit-identical results (QueueModel::
    // effective_loi is a pure read — it never touches the scratch link).
    std::vector<double> speeds(running.size());
    parallel_for(running.size(), threads, [&](std::size_t i) {
      const RunningJob& rj = running[i];
      if (rj.paused) {
        speeds[i] = 0.0;
        return;
      }
      const JobClass& cls = classes[rj.cls];
      const PoolState& p = pools[static_cast<std::size_t>(rj.pool)];
      const double other_demand =
          std::max(p.demand_rate_prev - cls.profile.offered_gbps * rj.speed_prev, 0.0);
      const double background =
          p.spec.background_loi + demand_loi_of(p.spec.link, other_demand);
      const double loi = p.queue.effective_loi(
          TrafficClass::kDemand, background, bulk_cross[static_cast<std::size_t>(rj.pool)]);
      speeds[i] = std::max(core::interpolate_sensitivity(cls.profile.sensitivity, loi), 1e-6);
    });

    // -- 4. advance, retire completions, integrate gauges (serial) -----------
    std::vector<std::size_t> done;
    for (std::size_t i = 0; i < running.size(); ++i) {
      RunningJob& rj = running[i];
      const double speed = speeds[i];
      const JobClass& cls = classes[rj.cls];
      PoolState& p = pools[static_cast<std::size_t>(rj.pool)];
      double active_dt = dt;
      if (rj.work_done_s + dt * speed >= rj.work_s) {
        active_dt = speed > 0.0 ? (rj.work_s - rj.work_done_s) / speed : dt;
        result.jobs[rj.record].finish_s = now + active_dt;
        done.push_back(i);
      }
      rj.work_done_s += active_dt * speed;
      rj.speed_prev = speed;
      p.demand_bytes += cls.profile.offered_gbps * speed * active_dt * GB;
      p.bulk_bytes += cls.bulk_gbps * speed * active_dt * GB;
    }
    // Retire in ascending arrival order (done is already ascending in i,
    // and running order is insertion order — deterministic either way).
    for (auto it = done.rbegin(); it != done.rend(); ++it) {
      const RunningJob rj = running[*it];
      const JobClass& cls = classes[rj.cls];
      PoolState& p = pools[static_cast<std::size_t>(rj.pool)];
      p.free_nodes += cls.nodes;
      p.free_gb += cls.pool_demand_gb;
      ++result.completed;
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(*it));
    }
    now += dt;

    for (std::size_t pi = 0; pi < pools.size(); ++pi) {
      PoolState& p = pools[pi];
      // Bystander demand LoI: background + all resident demand + bulk window.
      p.loi_prev = p.queue.effective_loi(
          TrafficClass::kDemand,
          p.spec.background_loi + demand_loi_of(p.spec.link, p.demand_rate_prev),
          bulk_cross[pi]);
      p.used_gb_dt += p.used_gb() * dt;
      p.loi_dt += p.loi_prev * dt;
      if (p.free_nodes == 0) p.stranded_gb_dt += p.free_gb * dt;
      // Close the step into the queue windows (zero observations age
      // bursts out, exactly like the engine's epoch close).
      p.queue.observe(TrafficClass::kDemand, p.demand_bytes, dt);
      p.queue.observe(TrafficClass::kBulk, p.bulk_bytes, dt);
      p.demand_bytes = 0.0;
      p.bulk_bytes = 0.0;
    }
  }

  // ---- summary --------------------------------------------------------------
  const double horizon = now > 0.0 ? now : 1.0;
  result.pools.resize(pools.size());
  for (std::size_t p = 0; p < pools.size(); ++p) {
    auto& stats = result.pools[p];
    stats.utilization = pools[p].used_gb_dt / (pools[p].spec.capacity_gb * horizon);
    stats.peak_used_gb = pools[p].peak_used_gb;
    stats.mean_demand_loi = pools[p].loi_dt / horizon;
    stats.stranded_gb = pools[p].stranded_gb_dt / horizon;
    result.mean_utilization += stats.utilization;
    result.stranded_gb += stats.stranded_gb;
  }
  result.mean_utilization /= static_cast<double>(pools.size());

  std::vector<double> slowdowns, waits;
  for (const auto& rec : result.jobs) {
    if (rec.rejected) continue;
    result.makespan_s = std::max(result.makespan_s, rec.finish_s);
    slowdowns.push_back(rec.slowdown());
    waits.push_back(rec.wait_s());
  }
  if (!slowdowns.empty()) {
    // Tail metrics: sort each vector once, take both quantiles from it.
    std::sort(slowdowns.begin(), slowdowns.end());
    std::sort(waits.begin(), waits.end());
    result.p50_slowdown = percentile_sorted(slowdowns, 0.50);
    result.p99_slowdown = percentile_sorted(slowdowns, 0.99);
    result.p50_wait_s = percentile_sorted(waits, 0.50);
    result.p99_wait_s = percentile_sorted(waits, 0.99);
  }
  return result;
}

void FleetResult::write_csv(std::ostream& os) const {
  CsvWriter csv(os, {"index", "class", "seed", "arrival_s", "start_s", "finish_s", "pool",
                     "migrations", "work_s", "wait_s", "slowdown", "status"});
  for (const auto& rec : jobs) {
    if (rec.rejected) {
      csv.add_row({std::to_string(rec.index), rec.job_class, std::to_string(rec.seed),
                   format_double(rec.arrival_s), "", "", "", "0",
                   format_double(rec.work_s), "", "", "rejected"});
    } else {
      csv.add_row({std::to_string(rec.index), rec.job_class, std::to_string(rec.seed),
                   format_double(rec.arrival_s), format_double(rec.start_s),
                   format_double(rec.finish_s), std::to_string(rec.pool),
                   std::to_string(rec.migrations), format_double(rec.work_s),
                   format_double(rec.wait_s()), format_double(rec.slowdown()), "done"});
    }
  }
}

void FleetResult::write_csv_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_csv(out);
}

void FleetResult::write_json(std::ostream& os) const {
  os << "{\n  \"fleet\": {"
     << "\"jobs\": " << jobs.size() << ", \"completed\": " << completed
     << ", \"rejected\": " << rejected << ", \"migrations\": " << migrations
     << ", \"makespan_s\": " << format_double(makespan_s)
     << ", \"p50_slowdown\": " << format_double(p50_slowdown)
     << ", \"p99_slowdown\": " << format_double(p99_slowdown)
     << ", \"p50_wait_s\": " << format_double(p50_wait_s)
     << ", \"p99_wait_s\": " << format_double(p99_wait_s)
     << ", \"mean_utilization\": " << format_double(mean_utilization)
     << ", \"stranded_gb\": " << format_double(stranded_gb) << "},\n  \"pools\": [\n";
  for (std::size_t p = 0; p < pools.size(); ++p) {
    const auto& stats = pools[p];
    os << "    {\"pool\": " << p << ", \"utilization\": " << format_double(stats.utilization)
       << ", \"peak_used_gb\": " << format_double(stats.peak_used_gb)
       << ", \"mean_demand_loi\": " << format_double(stats.mean_demand_loi)
       << ", \"stranded_gb\": " << format_double(stats.stranded_gb) << "}"
       << (p + 1 < pools.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"jobs_detail\": [\n";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& rec = jobs[i];
    os << "    {\"index\": " << rec.index << ", \"class\": \"" << json_escape(rec.job_class)
       << "\", \"seed\": " << rec.seed << ", \"arrival_s\": " << format_double(rec.arrival_s);
    if (rec.rejected) {
      os << ", \"status\": \"rejected\"";
    } else {
      os << ", \"start_s\": " << format_double(rec.start_s)
         << ", \"finish_s\": " << format_double(rec.finish_s) << ", \"pool\": " << rec.pool
         << ", \"migrations\": " << rec.migrations
         << ", \"slowdown\": " << format_double(rec.slowdown()) << ", \"status\": \"done\"";
    }
    os << "}" << (i + 1 < jobs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

void FleetResult::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_json(out);
}

}  // namespace memdis::fleet
