#include "fleet/arrival.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/contract.h"
#include "common/rng.h"

namespace memdis::fleet {

namespace {

/// Whole-token strict double parse (the CLI's validation contract).
std::optional<double> parse_strict_double(const std::string& text) {
  if (text.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE || !std::isfinite(v))
    return std::nullopt;
  return v;
}

std::optional<long long> parse_strict_int(const std::string& text) {
  if (text.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) return std::nullopt;
  return v;
}

}  // namespace

std::optional<ArrivalSpec> parse_arrival_spec(const std::string& text, std::string& error) {
  const auto colon = text.find(':');
  const std::string kind = text.substr(0, colon == std::string::npos ? text.size() : colon);
  if (kind == "poisson") {
    if (colon == std::string::npos) {
      error = "poisson spec is 'poisson:<rate>:<count>', got '" + text + "'";
      return std::nullopt;
    }
    const std::string rest = text.substr(colon + 1);
    const auto second = rest.find(':');
    if (second == std::string::npos || rest.find(':', second + 1) != std::string::npos) {
      error = "poisson spec is 'poisson:<rate>:<count>', got '" + text + "'";
      return std::nullopt;
    }
    const auto rate = parse_strict_double(rest.substr(0, second));
    if (!rate || *rate <= 0.0) {
      error = "poisson rate must be a positive number, got '" + rest.substr(0, second) + "'";
      return std::nullopt;
    }
    const auto count = parse_strict_int(rest.substr(second + 1));
    if (!count || *count < 1) {
      error = "poisson count must be a positive integer, got '" + rest.substr(second + 1) + "'";
      return std::nullopt;
    }
    ArrivalSpec spec;
    spec.kind = ArrivalKind::kPoisson;
    spec.rate_per_s = *rate;
    spec.count = static_cast<std::size_t>(*count);
    return spec;
  }
  if (kind == "trace") {
    if (colon == std::string::npos || colon + 1 >= text.size()) {
      error = "trace spec is 'trace:<path>', got '" + text + "'";
      return std::nullopt;
    }
    ArrivalSpec spec;
    spec.kind = ArrivalKind::kTrace;
    spec.trace_path = text.substr(colon + 1);
    return spec;
  }
  error = "unknown arrival process '" + kind + "' (expected poisson:<rate>:<count> or "
          "trace:<path>)";
  return std::nullopt;
}

std::uint64_t arrival_seed(std::uint64_t base_seed, std::size_t index) {
  // The sweep engine's per-task derivation (sweep.cpp): stream-split the
  // base seed by index so neighbouring arrivals get independent streams and
  // the same arrival always gets the same seed on any thread.
  return SplitMix64(base_seed ^ (0x9e3779b97f4a7c15ULL * (index + 1))).next();
}

std::vector<Arrival> expand_poisson_arrivals(const ArrivalSpec& spec,
                                             const std::vector<double>& class_weights,
                                             std::uint64_t base_seed) {
  expects(spec.kind == ArrivalKind::kPoisson, "spec must be a Poisson spec");
  expects(spec.rate_per_s > 0.0, "Poisson rate must be positive");
  expects(!class_weights.empty(), "arrival stream needs at least one job class");
  double total_weight = 0.0;
  for (const double w : class_weights) {
    expects(w > 0.0, "class weights must be positive");
    total_weight += w;
  }
  std::vector<Arrival> arrivals;
  arrivals.reserve(spec.count);
  double now = 0.0;
  for (std::size_t i = 0; i < spec.count; ++i) {
    Arrival a;
    a.seed = arrival_seed(base_seed, i);
    Xoshiro256 rng(a.seed);
    // Inverse-CDF exponential gap; uniform() < 1 so the log argument is > 0.
    now += -std::log(1.0 - rng.uniform()) / spec.rate_per_s;
    a.time_s = now;
    // Weighted class pick from the same per-index stream.
    double pick = rng.uniform() * total_weight;
    std::size_t cls = 0;
    while (cls + 1 < class_weights.size() && pick >= class_weights[cls]) {
      pick -= class_weights[cls];
      ++cls;
    }
    a.job_class = cls;
    arrivals.push_back(a);
  }
  return arrivals;
}

std::optional<std::vector<Arrival>> load_trace_arrivals(
    const std::string& path, const std::vector<std::string>& class_names,
    std::uint64_t base_seed, std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open arrival trace '" + path + "'";
    return std::nullopt;
  }
  std::string line;
  if (!std::getline(in, line)) {
    error = "arrival trace '" + path + "' is empty (expected a header line)";
    return std::nullopt;
  }
  std::vector<Arrival> arrivals;
  double prev = 0.0;
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto comma = line.find(',');
    if (comma == std::string::npos) {
      error = path + ":" + std::to_string(lineno) + ": expected 'arrival_s,class'";
      return std::nullopt;
    }
    const auto time = parse_strict_double(line.substr(0, comma));
    if (!time || *time < 0.0 || *time < prev) {
      error = path + ":" + std::to_string(lineno) +
              ": arrival times must be non-decreasing and >= 0";
      return std::nullopt;
    }
    const std::string cls_name = line.substr(comma + 1);
    std::size_t cls = class_names.size();
    for (std::size_t c = 0; c < class_names.size(); ++c)
      if (class_names[c] == cls_name) {
        cls = c;
        break;
      }
    if (cls == class_names.size()) {
      error = path + ":" + std::to_string(lineno) + ": unknown job class '" + cls_name + "'";
      return std::nullopt;
    }
    Arrival a;
    a.time_s = *time;
    a.job_class = cls;
    a.seed = arrival_seed(base_seed, arrivals.size());
    arrivals.push_back(a);
    prev = *time;
  }
  if (arrivals.empty()) {
    error = "arrival trace '" + path + "' has a header but no arrivals";
    return std::nullopt;
  }
  return arrivals;
}

}  // namespace memdis::fleet
