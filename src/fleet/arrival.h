// Deterministic open arrival processes for the fleet simulator.
//
// Two sources feed the same `Arrival` stream:
//
//  * Poisson — an open arrival process with exponential inter-arrival gaps,
//    the heavy-traffic regime of the paper's Sec. 7 capacity question.
//  * trace — a CSV of `arrival_s,class` rows captured from a real scheduler
//    log (or written by hand), replayed verbatim.
//
// Determinism contract: every arrival derives its own RNG seed from the
// stream's base seed and its *index* via the sweep engine's grid-index
// SplitMix64 scheme (sweep.h), so arrival i's gap, class pick, and runtime
// jitter are pure functions of (base_seed, i) — independent of how many
// threads later simulate the jobs, and stable under any re-partitioning of
// the work. A trace-driven stream uses the same per-index seeds for the
// per-job jitter, so switching arrival sources never perturbs job inputs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace memdis::fleet {

/// How the arrival stream is generated.
enum class ArrivalKind {
  kPoisson,  ///< exponential gaps at `rate_per_s`, `count` arrivals
  kTrace,    ///< replay `trace_path` (CSV: arrival_s,class)
};

/// Parsed `--arrivals` specification.
struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate_per_s = 1.0;    ///< Poisson arrival rate (jobs/s)
  std::size_t count = 1000;   ///< Poisson stream length
  std::string trace_path;     ///< trace source file (kTrace only)
};

/// Parses the CLI grammar `poisson:<rate>:<count>` | `trace:<path>`.
/// Strict, whole-token validation (rate > 0 finite, count >= 1, path
/// non-empty); nullopt with a diagnostic in `error` otherwise — the CLI
/// maps that to exit 2, like every other malformed flag.
[[nodiscard]] std::optional<ArrivalSpec> parse_arrival_spec(const std::string& text,
                                                            std::string& error);

/// One job arrival: when, which class (index into the fleet's job-class
/// list), and the per-job seed all of the job's randomness derives from.
struct Arrival {
  double time_s = 0.0;
  std::size_t job_class = 0;
  std::uint64_t seed = 0;
};

/// Per-index seed derivation — the sweep engine's grid-index scheme
/// verbatim, so fleet jobs and sweep tasks share one seeding convention.
[[nodiscard]] std::uint64_t arrival_seed(std::uint64_t base_seed, std::size_t index);

/// Expands a Poisson spec into `count` arrivals over `num_classes` job
/// classes weighted by `class_weights` (size num_classes, all > 0).
/// Arrival i draws its gap and class pick from Xoshiro256(arrival_seed(i)).
[[nodiscard]] std::vector<Arrival> expand_poisson_arrivals(
    const ArrivalSpec& spec, const std::vector<double>& class_weights,
    std::uint64_t base_seed);

/// Loads a trace CSV: a header line, then rows `arrival_s,class` with
/// non-decreasing times from >= 0; `class` must name an entry of
/// `class_names`. Per-index seeds are assigned exactly as for Poisson.
/// nullopt with a diagnostic in `error` on any malformed row or I/O
/// failure (the CLI maps that to exit 2).
[[nodiscard]] std::optional<std::vector<Arrival>> load_trace_arrivals(
    const std::string& path, const std::vector<std::string>& class_names,
    std::uint64_t base_seed, std::string& error);

}  // namespace memdis::fleet
