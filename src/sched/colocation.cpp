#include "sched/colocation.h"

#include "common/contract.h"
#include "common/rng.h"

namespace memdis::sched {

double simulate_run(const JobProfile& job, double max_loi, double reroll_interval_s,
                    std::uint64_t seed) {
  expects(job.base_runtime_s > 0, "job needs a positive idle runtime");
  expects(!job.sensitivity.empty(), "job needs a sensitivity curve");
  expects(reroll_interval_s > 0, "interval must be positive");
  Xoshiro256 rng(seed);
  double work_left = job.base_runtime_s;  // in idle-system seconds
  double wall = 0.0;
  while (work_left > 0) {
    const double loi = rng.uniform(0.0, max_loi);
    const double speed = core::interpolate_sensitivity(job.sensitivity, loi);
    const double interval_work = reroll_interval_s * speed;
    if (interval_work >= work_left) {
      wall += work_left / speed;
      work_left = 0;
    } else {
      wall += reroll_interval_s;
      work_left -= interval_work;
    }
  }
  return wall;
}

double simulate_run_per_link(const JobProfile& job,
                             const std::vector<double>& max_loi_per_link,
                             double reroll_interval_s, std::uint64_t seed) {
  expects(job.base_runtime_s > 0, "job needs a positive idle runtime");
  expects(!job.link_sensitivity.empty(), "job needs per-link sensitivity curves");
  expects(reroll_interval_s > 0, "interval must be positive");
  Xoshiro256 rng(seed);
  double work_left = job.base_runtime_s;  // in idle-system seconds
  double wall = 0.0;
  while (work_left > 0) {
    double speed = 1.0;
    for (std::size_t t = 0; t < job.link_sensitivity.size(); ++t) {
      const double max_loi = t < max_loi_per_link.size() ? max_loi_per_link[t] : 0.0;
      // Draw every link each interval (even insensitive ones) so the RNG
      // stream is independent of which curves a profile happens to carry.
      const double loi = rng.uniform(0.0, max_loi);
      if (job.link_sensitivity[t].empty()) continue;
      speed *= core::interpolate_sensitivity(job.link_sensitivity[t], loi);
    }
    const double interval_work = reroll_interval_s * speed;
    if (interval_work >= work_left) {
      wall += work_left / speed;
      work_left = 0;
    } else {
      wall += reroll_interval_s;
      work_left -= interval_work;
    }
  }
  return wall;
}

double simulate_run_scheduled(const JobProfile& job, const memsim::LoiSchedule& schedule,
                              double reroll_interval_s) {
  expects(job.base_runtime_s > 0, "job needs a positive idle runtime");
  expects(!job.link_sensitivity.empty(), "job needs per-link sensitivity curves");
  expects(reroll_interval_s > 0, "interval must be positive");
  double work_left = job.base_runtime_s;  // in idle-system seconds
  double wall = 0.0;
  std::uint64_t interval = 0;
  while (work_left > 0) {
    double speed = 1.0;
    for (std::size_t t = 0; t < job.link_sensitivity.size(); ++t) {
      if (job.link_sensitivity[t].empty()) continue;
      const double loi = schedule.value_at(static_cast<memsim::TierId>(t), interval);
      speed *= core::interpolate_sensitivity(job.link_sensitivity[t], loi);
    }
    const double interval_work = reroll_interval_s * speed;
    if (interval_work >= work_left) {
      wall += work_left / speed;
      work_left = 0;
    } else {
      wall += reroll_interval_s;
      work_left -= interval_work;
    }
    ++interval;
  }
  return wall;
}

CoLocationOutcome run_colocation(const JobProfile& job, double max_loi,
                                 const CoLocationConfig& cfg) {
  expects(cfg.runs > 0, "need at least one run");
  CoLocationOutcome out;
  out.times_s.reserve(cfg.runs);
  for (std::size_t r = 0; r < cfg.runs; ++r) {
    out.times_s.push_back(
        simulate_run(job, max_loi, cfg.reroll_interval_s, cfg.seed + r * 7919));
  }
  out.summary = five_number_summary(out.times_s);
  out.mean_s = mean_of(out.times_s);
  return out;
}

CoLocationComparison compare_schedulers(const JobProfile& job, const CoLocationConfig& cfg) {
  CoLocationComparison cmp;
  cmp.baseline = run_colocation(job, cfg.max_loi_baseline, cfg);
  cmp.aware = run_colocation(job, cfg.max_loi_aware, cfg);
  cmp.mean_speedup = cmp.baseline.mean_s / cmp.aware.mean_s - 1.0;
  cmp.p75_reduction = 1.0 - cmp.aware.summary.q3 / cmp.baseline.summary.q3;
  return cmp;
}

}  // namespace memdis::sched
