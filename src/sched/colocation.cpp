#include "sched/colocation.h"

#include <algorithm>

#include "common/contract.h"
#include "common/rng.h"
#include "memsim/link.h"

namespace memdis::sched {

double simulate_run(const JobProfile& job, double max_loi, double reroll_interval_s,
                    std::uint64_t seed) {
  expects(job.base_runtime_s > 0, "job needs a positive idle runtime");
  expects(!job.sensitivity.empty(), "job needs a sensitivity curve");
  expects(reroll_interval_s > 0, "interval must be positive");
  Xoshiro256 rng(seed);
  double work_left = job.base_runtime_s;  // in idle-system seconds
  double wall = 0.0;
  while (work_left > 0) {
    const double loi = rng.uniform(0.0, max_loi);
    const double speed = core::interpolate_sensitivity(job.sensitivity, loi);
    const double interval_work = reroll_interval_s * speed;
    if (interval_work >= work_left) {
      wall += work_left / speed;
      work_left = 0;
    } else {
      wall += reroll_interval_s;
      work_left -= interval_work;
    }
  }
  return wall;
}

double simulate_run_per_link(const JobProfile& job,
                             const std::vector<double>& max_loi_per_link,
                             double reroll_interval_s, std::uint64_t seed) {
  expects(job.base_runtime_s > 0, "job needs a positive idle runtime");
  expects(!job.link_sensitivity.empty(), "job needs per-link sensitivity curves");
  expects(reroll_interval_s > 0, "interval must be positive");
  Xoshiro256 rng(seed);
  double work_left = job.base_runtime_s;  // in idle-system seconds
  double wall = 0.0;
  while (work_left > 0) {
    double speed = 1.0;
    for (std::size_t t = 0; t < job.link_sensitivity.size(); ++t) {
      const double max_loi = t < max_loi_per_link.size() ? max_loi_per_link[t] : 0.0;
      // Draw every link each interval (even insensitive ones) so the RNG
      // stream is independent of which curves a profile happens to carry.
      const double loi = rng.uniform(0.0, max_loi);
      if (job.link_sensitivity[t].empty()) continue;
      speed *= core::interpolate_sensitivity(job.link_sensitivity[t], loi);
    }
    const double interval_work = reroll_interval_s * speed;
    if (interval_work >= work_left) {
      wall += work_left / speed;
      work_left = 0;
    } else {
      wall += reroll_interval_s;
      work_left -= interval_work;
    }
  }
  return wall;
}

double simulate_run_scheduled(const JobProfile& job, const memsim::LoiSchedule& schedule,
                              double reroll_interval_s) {
  expects(job.base_runtime_s > 0, "job needs a positive idle runtime");
  expects(!job.link_sensitivity.empty(), "job needs per-link sensitivity curves");
  expects(reroll_interval_s > 0, "interval must be positive");
  double work_left = job.base_runtime_s;  // in idle-system seconds
  double wall = 0.0;
  std::uint64_t interval = 0;
  while (work_left > 0) {
    double speed = 1.0;
    for (std::size_t t = 0; t < job.link_sensitivity.size(); ++t) {
      if (job.link_sensitivity[t].empty()) continue;
      const double loi = schedule.value_at(static_cast<memsim::TierId>(t), interval);
      speed *= core::interpolate_sensitivity(job.link_sensitivity[t], loi);
    }
    const double interval_work = reroll_interval_s * speed;
    if (interval_work >= work_left) {
      wall += work_left / speed;
      work_left = 0;
    } else {
      wall += reroll_interval_s;
      work_left -= interval_work;
    }
    ++interval;
  }
  return wall;
}

SharedQueuePair simulate_pair_shared_queue(const JobProfile& a, const JobProfile& b,
                                           const memsim::FabricLinkSpec& link,
                                           double background_loi, double interval_s) {
  expects(a.base_runtime_s > 0 && b.base_runtime_s > 0,
          "jobs need positive idle runtimes");
  expects(!a.sensitivity.empty() && !b.sensitivity.empty(),
          "jobs need sensitivity curves");
  expects(a.offered_gbps >= 0 && b.offered_gbps >= 0,
          "offered traffic cannot be negative");
  expects(interval_s > 0, "interval must be positive");

  // LoI a job experiences when its co-runner offers traffic at `speed`
  // times full rate — background plus the co-runner's link traffic as % of
  // capacity, the QueueModel::effective_loi formula at the job granularity.
  const auto produced_loi = [&](const JobProfile& other, double other_speed) {
    const double traffic = other.offered_gbps * other_speed * link.protocol_overhead;
    return std::min(background_loi + 100.0 * traffic / link.traffic_capacity_gbps,
                    memsim::LinkModel::kMaxLoi);
  };

  SharedQueuePair out;
  const double a_solo_speed = core::interpolate_sensitivity(a.sensitivity, background_loi);
  const double b_solo_speed = core::interpolate_sensitivity(b.sensitivity, background_loi);
  expects(a_solo_speed > 0 && b_solo_speed > 0, "sensitivity curve reaches zero speed");
  out.a_solo_s = a.base_runtime_s / a_solo_speed;
  out.b_solo_s = b.base_runtime_s / b_solo_speed;

  double work_a = a.base_runtime_s;  // in idle-system seconds
  double work_b = b.base_runtime_s;
  double wall = 0.0;
  while (work_a > 0 && work_b > 0) {
    // Per-interval fixed point over the speed pair: each job's speed sets
    // the traffic the other sees. The map is a monotone contraction on
    // [0,1]^2, so a fixed small iteration count converges deterministically.
    double speed_a = 1.0;
    double speed_b = 1.0;
    for (int i = 0; i < 16; ++i) {
      const double next_a =
          core::interpolate_sensitivity(a.sensitivity, produced_loi(b, speed_b));
      const double next_b =
          core::interpolate_sensitivity(b.sensitivity, produced_loi(a, speed_a));
      speed_a = next_a;
      speed_b = next_b;
    }
    expects(speed_a > 0 && speed_b > 0, "sensitivity curve reaches zero speed");
    const double t_a = work_a / speed_a;  // time to finish at this speed
    const double t_b = work_b / speed_b;
    const double dt = std::min({interval_s, t_a, t_b});
    wall += dt;
    // Exact-finish bookkeeping avoids an ulp of leftover work re-running
    // a whole extra interval.
    work_a = t_a <= dt ? 0.0 : work_a - dt * speed_a;
    work_b = t_b <= dt ? 0.0 : work_b - dt * speed_b;
    if (work_a == 0.0) out.a_wall_s = wall;
    if (work_b == 0.0) out.b_wall_s = wall;
  }
  // The survivor has the link to itself (background interference only).
  if (work_a > 0) out.a_wall_s = wall + work_a / a_solo_speed;
  if (work_b > 0) out.b_wall_s = wall + work_b / b_solo_speed;
  out.a_slowdown = out.a_wall_s / out.a_solo_s;
  out.b_slowdown = out.b_wall_s / out.b_solo_s;
  return out;
}

CoLocationOutcome run_colocation(const JobProfile& job, double max_loi,
                                 const CoLocationConfig& cfg) {
  expects(cfg.runs > 0, "need at least one run");
  CoLocationOutcome out;
  out.times_s.reserve(cfg.runs);
  for (std::size_t r = 0; r < cfg.runs; ++r) {
    out.times_s.push_back(
        simulate_run(job, max_loi, cfg.reroll_interval_s, cfg.seed + r * 7919));
  }
  out.summary = five_number_summary(out.times_s);
  out.mean_s = mean_of(out.times_s);
  return out;
}

CoLocationComparison compare_schedulers(const JobProfile& job, const CoLocationConfig& cfg) {
  CoLocationComparison cmp;
  cmp.baseline = run_colocation(job, cfg.max_loi_baseline, cfg);
  cmp.aware = run_colocation(job, cfg.max_loi_aware, cfg);
  cmp.mean_speedup = cmp.baseline.mean_s / cmp.aware.mean_s - 1.0;
  cmp.p75_reduction = 1.0 - cmp.aware.summary.q3 / cmp.baseline.summary.q3;
  return cmp;
}

}  // namespace memdis::sched
