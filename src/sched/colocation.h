// Interference-aware job co-location study (Sec. 7.2, Fig. 13).
//
// Protocol from the paper: each workload runs on the emulated 50%-pool
// setup while co-runners on the shared pool inject a Level-of-Interference
// that re-rolls uniformly at random every 60 s. The random baseline draws
// LoI from 0–50%; the interference-aware scheduler — which declines to
// co-locate interference-inducing jobs — caps the draw at 0–20%. Each
// configuration is repeated 100 times and summarized with five-number
// statistics.
//
// This pairwise study is the N = 2 special case of the fleet layer
// (src/fleet, docs/FLEET.md): simulate_pair_shared_queue solves two jobs
// coupling through one link's queue as a per-interval fixed point, while
// fleet::run_fleet iterates the same feedback (speed → offered traffic →
// co-runner LoI → speed) across whole racks of jobs with admission and
// migration on top. JobProfile is the shared currency — fleet::JobClass
// embeds it verbatim — and both layers price traffic through the same
// memsim::QueueModel, so the pairwise entry points here remain the
// precise, directly-testable form of the fleet's per-step physics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/interference.h"
#include "memsim/loi_schedule.h"
#include "memsim/tier.h"

namespace memdis::sched {

/// A job as the scheduler sees it: identity, idle-system runtime, and its
/// Level-3 profile (sensitivity curve + induced interference coefficient).
struct JobProfile {
  std::string app;
  double base_runtime_s = 0.0;  ///< runtime at LoI = 0
  std::vector<core::SensitivityPoint> sensitivity;
  double induced_ic = 1.0;  ///< interference coefficient (Fig. 11 right)
  /// Per-link sensitivity curves, indexed by TierId, for N-tier racks where
  /// each pool link carries its own contention level. Empty inner curves
  /// mean the job is insensitive to that link (local tiers stay empty).
  /// When the whole vector is empty the job only has the aggregate curve.
  std::vector<std::vector<core::SensitivityPoint>> link_sensitivity;
  /// Link *data* traffic (GB/s) the job offers onto the shared pool link
  /// when running at full speed — what it injects into a co-runner's queue
  /// (simulate_pair_shared_queue). A slowed job offers proportionally less.
  double offered_gbps = 0.0;
};

struct CoLocationConfig {
  std::size_t runs = 100;
  double reroll_interval_s = 60.0;
  double max_loi_baseline = 50.0;  ///< random scheduler: LoI ~ U(0, 50)
  double max_loi_aware = 20.0;     ///< interference-aware: LoI ~ U(0, 20)
  std::uint64_t seed = 1234;
};

/// Simulates one execution under re-rolled background interference and
/// returns the wall time. Progress advances at rel_perf(LoI) of idle speed.
[[nodiscard]] double simulate_run(const JobProfile& job, double max_loi,
                                  double reroll_interval_s, std::uint64_t seed);

/// N-tier variant: each fabric link's LoI re-rolls *independently* from
/// U(0, max_loi_per_link[t]) every interval, and the job's speed is the
/// product of its per-link relative performances (links queue
/// independently, so their slowdowns compound). Requires a non-empty
/// link_sensitivity profile; entries past the vector are treated as 0.
[[nodiscard]] double simulate_run_per_link(const JobProfile& job,
                                           const std::vector<double>& max_loi_per_link,
                                           double reroll_interval_s, std::uint64_t seed);

/// Trace/waveform-driven variant: instead of re-rolling randomly, each
/// fabric link's LoI follows its scheduled waveform, evaluated once per
/// interval (interval i uses value_at(i)) — fully deterministic, the
/// replay path for captured congestion traces. Links without a waveform
/// idle at LoI 0; speeds compound multiplicatively across links, as in
/// simulate_run_per_link. Requires a non-empty link_sensitivity profile.
[[nodiscard]] double simulate_run_scheduled(const JobProfile& job,
                                            const memsim::LoiSchedule& schedule,
                                            double reroll_interval_s);

/// Outcome of co-running two jobs on one shared pool link where each job's
/// interference is *produced* by the other's offered traffic through the
/// link's queue (simulate_pair_shared_queue).
struct SharedQueuePair {
  double a_wall_s = 0.0;   ///< job A's wall time co-located
  double b_wall_s = 0.0;   ///< job B's wall time co-located
  double a_solo_s = 0.0;   ///< job A alone on the link (background LoI only)
  double b_solo_s = 0.0;   ///< job B alone on the link
  double a_slowdown = 0.0; ///< a_wall_s / a_solo_s
  double b_slowdown = 0.0; ///< b_wall_s / b_solo_s
};

/// Deterministic shared-queue pair simulation: per interval, each job's
/// experienced LoI on the shared link is the background LoI plus the
/// co-runner's *current* offered traffic (its full-speed `offered_gbps`
/// scaled by its current speed, protocol overhead applied) as % of link
/// capacity — the sched-level analogue of the engine's QueueModel class
/// coupling. The two speeds are solved as a per-interval fixed point (a
/// slower co-runner offers less traffic, which speeds the victim up, which
/// slows the co-runner...); once the shorter job finishes, the survivor
/// runs against the background alone. Seed-free.
[[nodiscard]] SharedQueuePair simulate_pair_shared_queue(const JobProfile& a,
                                                         const JobProfile& b,
                                                         const memsim::FabricLinkSpec& link,
                                                         double background_loi = 0.0,
                                                         double interval_s = 60.0);

/// Outcome of the 100-run experiment for one job and one scheduler.
struct CoLocationOutcome {
  std::vector<double> times_s;
  FiveNumber summary;
  double mean_s = 0.0;
};

/// The Fig. 13 pair: random baseline vs. interference-aware.
struct CoLocationComparison {
  CoLocationOutcome baseline;
  CoLocationOutcome aware;
  double mean_speedup = 0.0;       ///< baseline mean / aware mean − 1
  double p75_reduction = 0.0;      ///< relative drop in 75th percentile
};

[[nodiscard]] CoLocationOutcome run_colocation(const JobProfile& job, double max_loi,
                                               const CoLocationConfig& cfg);

[[nodiscard]] CoLocationComparison compare_schedulers(const JobProfile& job,
                                                      const CoLocationConfig& cfg);

}  // namespace memdis::sched
