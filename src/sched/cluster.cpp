#include "sched/cluster.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <set>

#include "common/contract.h"
#include "common/rng.h"

namespace memdis::sched {

namespace {

struct RunningJob {
  std::size_t request = 0;
  int rack = -1;
  double remaining_work_s = 0.0;  // in idle-system seconds
  double start_s = 0.0;
};

struct RackState {
  std::size_t free_nodes = 0;
  double free_pool_gb = 0.0;
  double injected_loi = 0.0;  // sum over running jobs
  std::size_t running = 0;
  std::multiset<double> induced;  // per-running-job contributions

  /// Interference a newcomer with `induced_loi` would cause the most
  /// exposed current occupant to see, and what the newcomer itself sees.
  [[nodiscard]] double worst_seen_after(double induced_loi) const {
    const double newcomer_sees = injected_loi;
    if (induced.empty()) return newcomer_sees;
    const double most_exposed = injected_loi - *induced.begin() + induced_loi;
    return std::max(newcomer_sees, most_exposed);
  }
};

/// Progress rate of a job: sensitivity at the LoI injected by *other* jobs
/// sharing its rack's pool.
double job_speed(const JobRequest& req, const RackState& rack) {
  const double other_loi = std::max(rack.injected_loi - req.induced_loi, 0.0);
  return core::interpolate_sensitivity(req.profile.sensitivity, other_loi);
}

}  // namespace

ClusterOutcome ClusterSim::run(const std::vector<JobRequest>& jobs, SchedulerPolicy policy,
                               double loi_cap) const {
  expects(!jobs.empty(), "job stream is empty");
  expects(cfg_.racks > 0 && cfg_.rack.nodes_per_rack > 0, "cluster must have capacity");
  for (const auto& j : jobs) {
    expects(j.nodes >= 1 && j.nodes <= cfg_.rack.nodes_per_rack,
            "job must fit within one rack");
    expects(j.pool_demand_gb <= cfg_.rack.pool_capacity_gb, "job pool demand exceeds pool");
  }

  RackState fresh_rack;
  fresh_rack.free_nodes = cfg_.rack.nodes_per_rack;
  fresh_rack.free_pool_gb = cfg_.rack.pool_capacity_gb;
  std::vector<RackState> racks(cfg_.racks, fresh_rack);
  Xoshiro256 rng(cfg_.seed);

  // Arrival order by time (stable for ties).
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return jobs[a].arrival_s < jobs[b].arrival_s;
  });

  std::vector<JobRecord> records(jobs.size());
  std::vector<RunningJob> running;
  std::vector<std::size_t> pending;  // indices into `jobs`, FIFO
  std::size_t next_arrival = 0;
  double now = 0.0;

  const auto feasible = [&](const JobRequest& req, const RackState& rack) {
    return rack.free_nodes >= req.nodes && rack.free_pool_gb >= req.pool_demand_gb;
  };

  const auto try_place = [&](std::size_t ji) -> bool {
    const JobRequest& req = jobs[ji];
    int chosen = -1;
    if (policy == SchedulerPolicy::kRandom) {
      // Random scheduler: pick uniformly among feasible racks.
      std::vector<int> options;
      for (std::size_t r = 0; r < racks.size(); ++r)
        if (feasible(req, racks[r])) options.push_back(static_cast<int>(r));
      if (!options.empty())
        chosen = options[rng.uniform_below(options.size())];
    } else {
      // Interference-aware: the cap bounds the interference any job *sees*
      // (its co-runners' injected LoI), so a heavy job alone in a rack is
      // always acceptable. Pick the feasible rack minimizing the worst
      // exposure; defer if every option breaks the cap while other jobs
      // are still running (deadlock avoidance otherwise).
      double best_seen = std::numeric_limits<double>::max();
      for (std::size_t r = 0; r < racks.size(); ++r) {
        if (!feasible(req, racks[r])) continue;
        const double seen = racks[r].worst_seen_after(req.induced_loi);
        if (seen < best_seen) {
          best_seen = seen;
          chosen = static_cast<int>(r);
        }
      }
      if (chosen >= 0 && best_seen > loi_cap && !running.empty()) chosen = -1;  // defer
    }
    if (chosen < 0) return false;
    RackState& rack = racks[static_cast<std::size_t>(chosen)];
    rack.free_nodes -= req.nodes;
    rack.free_pool_gb -= req.pool_demand_gb;
    rack.injected_loi += req.induced_loi;
    rack.induced.insert(req.induced_loi);
    ++rack.running;
    records[ji].app = req.profile.app;
    records[ji].arrival_s = req.arrival_s;
    records[ji].start_s = now;
    records[ji].rack = chosen;
    running.push_back(RunningJob{ji, chosen, req.profile.base_runtime_s, now});
    return true;
  };

  const auto drain_pending = [&] {
    // FIFO service; later jobs cannot jump ahead of an unplaceable head for
    // the same resources (keeps the policies comparable).
    while (!pending.empty()) {
      if (!try_place(pending.front())) break;
      pending.erase(pending.begin());
    }
  };

  while (next_arrival < order.size() || !running.empty() || !pending.empty()) {
    // Next event: arrival or earliest completion at current speeds.
    double t_next = std::numeric_limits<double>::max();
    if (next_arrival < order.size())
      t_next = std::max(jobs[order[next_arrival]].arrival_s, now);
    int completing = -1;
    for (std::size_t i = 0; i < running.size(); ++i) {
      const auto& rj = running[i];
      const double speed = job_speed(jobs[rj.request], racks[static_cast<std::size_t>(rj.rack)]);
      const double eta = now + rj.remaining_work_s / std::max(speed, 1e-9);
      if (eta < t_next) {
        t_next = eta;
        completing = static_cast<int>(i);
      }
    }
    expects(t_next < std::numeric_limits<double>::max(),
            "scheduler deadlock: pending jobs with nothing running");

    // Advance all running jobs to t_next.
    const double dt = t_next - now;
    for (auto& rj : running) {
      const double speed = job_speed(jobs[rj.request], racks[static_cast<std::size_t>(rj.rack)]);
      rj.remaining_work_s = std::max(rj.remaining_work_s - dt * speed, 0.0);
    }
    now = t_next;

    if (completing >= 0 && running[static_cast<std::size_t>(completing)].remaining_work_s <=
                               1e-9) {
      const RunningJob rj = running[static_cast<std::size_t>(completing)];
      running.erase(running.begin() + completing);
      const JobRequest& req = jobs[rj.request];
      RackState& rack = racks[static_cast<std::size_t>(rj.rack)];
      rack.free_nodes += req.nodes;
      rack.free_pool_gb += req.pool_demand_gb;
      rack.injected_loi = std::max(rack.injected_loi - req.induced_loi, 0.0);
      const auto it = rack.induced.find(req.induced_loi);
      if (it != rack.induced.end()) rack.induced.erase(it);
      --rack.running;
      records[rj.request].finish_s = now;
    }
    while (next_arrival < order.size() && jobs[order[next_arrival]].arrival_s <= now) {
      pending.push_back(order[next_arrival]);
      ++next_arrival;
    }
    drain_pending();
  }

  ClusterOutcome out;
  out.jobs = std::move(records);
  double sum_rt = 0.0;
  double sum_wait = 0.0;
  double sum_slow = 0.0;
  for (std::size_t i = 0; i < out.jobs.size(); ++i) {
    const auto& rec = out.jobs[i];
    out.makespan_s = std::max(out.makespan_s, rec.finish_s);
    sum_rt += rec.runtime_s();
    sum_wait += rec.wait_s();
    sum_slow += rec.runtime_s() / jobs[i].profile.base_runtime_s;
  }
  const auto nj = static_cast<double>(out.jobs.size());
  out.mean_runtime_s = sum_rt / nj;
  out.mean_wait_s = sum_wait / nj;
  out.mean_slowdown = sum_slow / nj;
  return out;
}

}  // namespace memdis::sched
