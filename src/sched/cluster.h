// Rack-scale cluster simulation (extension of Sec. 7.2).
//
// The paper emulates co-location pressure with LBench on a single node and
// notes that "with more than two nodes per memory pool, the performance
// improvement could be more significant". This module builds that larger
// experiment: an event-driven simulation of the Fig. 2 architecture —
// racks of nodes sharing one memory pool each — with a job stream placed
// by either a random or an interference-aware scheduler.
//
// Interference model: every job running in a rack injects its offered link
// utilization (derived from its interference coefficient profile) into the
// rack's pool; each job's progress rate is its sensitivity curve evaluated
// at the sum of the *other* jobs' LoI contributions.
//
// Relation to src/fleet: the fleet layer (fleet::run_fleet, docs/FLEET.md)
// generalizes this module — open arrivals instead of a fixed job list,
// per-pool two-class QueueModels instead of additive LoI sums, bounded
// admission queues, and stop-and-copy migration of running jobs. This
// closed-batch simulation stays as the lightweight variant: it needs no
// queue state, so it remains useful for quick policy A/Bs over a known
// job set, and its scenario artifacts are unchanged by the fleet layer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "sched/colocation.h"

namespace memdis::sched {

struct RackConfig {
  std::size_t nodes_per_rack = 16;
  double pool_capacity_gb = 1024.0;
};

struct ClusterConfig {
  std::size_t racks = 4;
  RackConfig rack{};
  std::uint64_t seed = 99;
};

/// A job submission: profile + resource demand.
struct JobRequest {
  JobProfile profile;
  std::size_t nodes = 1;
  double pool_demand_gb = 0.0;   ///< pooled memory requested
  double induced_loi = 0.0;      ///< LoI (%) this job injects on its rack's pool
  double arrival_s = 0.0;
};

/// Completed-job record.
struct JobRecord {
  std::string app;
  double arrival_s = 0.0;
  double start_s = 0.0;
  double finish_s = 0.0;
  int rack = -1;
  [[nodiscard]] double wait_s() const { return start_s - arrival_s; }
  [[nodiscard]] double runtime_s() const { return finish_s - start_s; }
};

enum class SchedulerPolicy {
  kRandom,             ///< first rack with free resources, arrival order
  kInterferenceAware,  ///< prefers the rack minimizing resulting pool LoI and
                       ///< refuses to push a rack past the LoI cap
};

struct ClusterOutcome {
  std::vector<JobRecord> jobs;
  double makespan_s = 0.0;
  double mean_runtime_s = 0.0;
  double mean_wait_s = 0.0;
  /// Mean over jobs of (runtime / idle runtime) — 1.0 means no slowdown.
  double mean_slowdown = 1.0;
};

class ClusterSim {
 public:
  explicit ClusterSim(const ClusterConfig& cfg) : cfg_(cfg) {}

  /// Runs the job stream to completion under the given policy.
  /// `loi_cap` only applies to the interference-aware policy: a rack's
  /// total injected LoI is kept at or below this value when possible.
  [[nodiscard]] ClusterOutcome run(const std::vector<JobRequest>& jobs,
                                   SchedulerPolicy policy, double loi_cap = 20.0) const;

 private:
  ClusterConfig cfg_;
};

}  // namespace memdis::sched
