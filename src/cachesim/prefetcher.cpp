#include "cachesim/prefetcher.h"

#include <algorithm>

#include "common/contract.h"
#include "common/units.h"

namespace memdis::cachesim {

StreamPrefetcher::StreamPrefetcher(const PrefetcherConfig& cfg) : cfg_(cfg) {
  expects(cfg.num_streams > 0, "need at least one stream entry");
  expects(cfg.max_degree >= 1, "degree must be >= 1");
  expects(cfg.page_bytes % cfg.line_bytes == 0, "page must hold whole lines");
  expects((cfg.page_bytes & (cfg.page_bytes - 1)) == 0, "page size must be a power of two");
  expects((cfg.line_bytes & (cfg.line_bytes - 1)) == 0, "line size must be a power of two");
  page_shift_ = log2_pow2(cfg.page_bytes);
  line_shift_ = log2_pow2(cfg.line_bytes);
  streams_.resize(cfg.num_streams);
}

StreamPrefetcher::Stream* StreamPrefetcher::lookup_stream(std::uint64_t page) {
  // Pages are unique across entries, so probing the hinted entry first
  // changes only the search order, never which entry matches (and the
  // LRU allocation choice on a true miss is computed by the same full
  // scan as before).
  const std::uint32_t slot = static_cast<std::uint32_t>(page) & (kHintSlots - 1);
  Stream& hinted = streams_[hint_[slot]];
  if (hinted.valid && hinted.page == page) return &hinted;
  Stream* lru = &streams_[0];
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    Stream& s = streams_[i];
    if (s.valid && s.page == page) {
      hint_[slot] = static_cast<std::uint32_t>(i);
      return &s;
    }
    if (!s.valid || s.last_tick < lru->last_tick) lru = &s;
  }
  // Allocate: replace the LRU entry with a fresh, untrained stream.
  lru->page = page;
  lru->last_line = -1;
  lru->direction = 0;
  lru->run_length = 0;
  lru->valid = true;
  hint_[slot] = static_cast<std::uint32_t>(lru - streams_.data());
  return lru;
}

void StreamPrefetcher::observe(std::uint64_t addr, bool is_store,
                               std::vector<PrefetchRequest>& out) {
  if (!cfg_.enabled) return;
  ++tick_;
  const std::uint64_t page = addr >> page_shift_;
  const auto line_in_page = static_cast<std::int64_t>(
      (addr & (cfg_.page_bytes - 1)) >> line_shift_);
  const auto lines_per_page = static_cast<std::int64_t>(cfg_.page_bytes >> line_shift_);

  Stream& s = *lookup_stream(page);
  const bool fresh = s.last_line < 0;
  const std::int64_t step = fresh ? 0 : line_in_page - s.last_line;
  s.last_tick = tick_;

  if (fresh || step == 0) {
    s.last_line = line_in_page;
    return;
  }
  if ((step == 1 && s.direction >= 0) || (step == -1 && s.direction <= 0)) {
    s.direction = step > 0 ? 1 : -1;
    s.run_length = std::min<std::uint32_t>(s.run_length + 1, 64);
  } else {
    // Direction break: retrain but keep the entry (short irregular strides
    // repeatedly reset here, which is what keeps BFS/XSBench coverage low).
    s.direction = 0;
    s.run_length = 0;
  }
  s.last_line = line_in_page;
  if (s.run_length < cfg_.train_threshold || s.direction == 0) return;

  const std::uint32_t confidence_degree =
      std::min<std::uint32_t>(s.run_length - cfg_.train_threshold + 1, cfg_.max_degree);
  const std::uint32_t degree = std::min(confidence_degree, effective_degree());
  for (std::uint32_t k = 1; k <= degree; ++k) {
    const std::int64_t target = line_in_page + s.direction * static_cast<std::int64_t>(k);
    if (target < 0 || target >= lines_per_page) break;  // never cross the page
    const std::uint64_t line_addr =
        page * cfg_.page_bytes + static_cast<std::uint64_t>(target) * cfg_.line_bytes;
    out.push_back(PrefetchRequest{line_addr, is_store});
    window_issued_ += 1.0;
  }
  age_window();
}

void StreamPrefetcher::record_useful() { window_useful_ += 1.0; }

void StreamPrefetcher::record_useless() {
  // Issued already counted at issue time; useless simply fails to add useful.
  (void)this;
}

double StreamPrefetcher::accuracy_estimate() const {
  if (window_issued_ <= 0.0) return 1.0;
  return std::min(window_useful_ / window_issued_, 1.0);
}

std::uint32_t StreamPrefetcher::effective_degree() const {
  const double acc = accuracy_estimate();
  if (acc >= cfg_.throttle_high) return cfg_.max_degree;
  if (acc >= cfg_.throttle_low) return std::max<std::uint32_t>(cfg_.max_degree / 2, 1);
  return 1;
}

void StreamPrefetcher::age_window() {
  // Exponential aging keeps the window responsive to phase changes.
  if (window_issued_ > 4096.0) {
    window_issued_ *= 0.5;
    window_useful_ *= 0.5;
  }
}

}  // namespace memdis::cachesim
