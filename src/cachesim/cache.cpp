#include "cachesim/cache.h"

#include "common/contract.h"

namespace memdis::cachesim {

SetAssocCache::SetAssocCache(const CacheConfig& cfg) : cfg_(cfg), sets_(0) {
  expects(cfg.line_bytes > 0 && (cfg.line_bytes & (cfg.line_bytes - 1)) == 0,
          "line size must be a power of two");
  expects(cfg.ways > 0, "cache needs at least one way");
  sets_ = cfg.num_sets();
  expects(sets_ > 0, "cache must have at least one set");
  expects((sets_ & (sets_ - 1)) == 0, "number of sets must be a power of two");
  lines_.resize(sets_ * cfg.ways);
}

std::uint64_t SetAssocCache::set_of(std::uint64_t addr) const {
  return (addr / cfg_.line_bytes) & (sets_ - 1);
}

SetAssocCache::Line* SetAssocCache::find(std::uint64_t addr) {
  const std::uint64_t aligned = line_align(addr);
  Line* base = &lines_[set_of(addr) * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag_addr == aligned) return &base[w];
  }
  return nullptr;
}

const SetAssocCache::Line* SetAssocCache::find(std::uint64_t addr) const {
  return const_cast<SetAssocCache*>(this)->find(addr);
}

SetAssocCache::HitInfo SetAssocCache::access(std::uint64_t addr, bool is_store) {
  Line* line = find(addr);
  if (line == nullptr) return {};
  HitInfo info;
  info.hit = true;
  info.first_use_of_prefetch = line->prefetched && !line->referenced;
  line->referenced = true;
  line->lru_tick = ++tick_;
  if (is_store) line->dirty = true;
  return info;
}

std::optional<Eviction> SetAssocCache::fill(std::uint64_t addr, bool dirty, bool prefetched) {
  const std::uint64_t aligned = line_align(addr);
  Line* base = &lines_[set_of(addr) * cfg_.ways];
  Line* victim = nullptr;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& cand = base[w];
    if (cand.valid && cand.tag_addr == aligned) {
      // Refill of a present line (e.g. prefetch racing demand): refresh only.
      cand.lru_tick = ++tick_;
      cand.dirty = cand.dirty || dirty;
      return std::nullopt;
    }
    if (!cand.valid) {
      victim = &cand;
      break;
    }
    if (victim == nullptr || cand.lru_tick < victim->lru_tick) victim = &cand;
  }
  std::optional<Eviction> evicted;
  if (victim->valid) {
    evicted = Eviction{victim->tag_addr, victim->dirty,
                       victim->prefetched && !victim->referenced};
  }
  victim->tag_addr = aligned;
  victim->valid = true;
  victim->dirty = dirty;
  victim->prefetched = prefetched;
  victim->referenced = !prefetched;  // demand fills start referenced
  victim->lru_tick = ++tick_;
  return evicted;
}

bool SetAssocCache::contains(std::uint64_t addr) const { return find(addr) != nullptr; }

std::optional<Eviction> SetAssocCache::invalidate(std::uint64_t addr) {
  Line* line = find(addr);
  if (line == nullptr) return std::nullopt;
  Eviction ev{line->tag_addr, line->dirty, line->prefetched && !line->referenced};
  line->valid = false;
  return ev;
}

void SetAssocCache::mark_dirty(std::uint64_t addr) {
  if (Line* line = find(addr)) line->dirty = true;
}

}  // namespace memdis::cachesim
