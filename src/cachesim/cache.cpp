#include "cachesim/cache.h"

#include "common/contract.h"
#include "common/units.h"

namespace memdis::cachesim {

SetAssocCache::SetAssocCache(const CacheConfig& cfg) : cfg_(cfg), sets_(0) {
  expects(cfg.line_bytes > 0 && (cfg.line_bytes & (cfg.line_bytes - 1)) == 0,
          "line size must be a power of two");
  expects(cfg.ways > 0, "cache needs at least one way");
  expects(cfg.size_bytes % (static_cast<std::uint64_t>(cfg.ways) * cfg.line_bytes) == 0,
          "cache size must be a multiple of ways * line size");
  sets_ = cfg.num_sets();
  expects(sets_ > 0, "cache must have at least one set");
  expects((sets_ & (sets_ - 1)) == 0, "number of sets must be a power of two");
  line_shift_ = log2_pow2(cfg.line_bytes);
  set_mask_ = sets_ - 1;
  const std::size_t n = sets_ * cfg.ways;
  tag_.assign(n, kInvalidTag);
  lru_.assign(n, 0);
  flags_.assign(n, 0);
  mru_way_.assign(sets_, 0);
}

std::optional<Eviction> SetAssocCache::fill(std::uint64_t addr, bool dirty, bool prefetched) {
  const std::uint64_t aligned = line_align(addr);
  const std::uint64_t set = set_of(addr);
  const std::size_t base = set * cfg_.ways;
  std::size_t victim = kNpos;
  std::uint32_t victim_way = 0;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    const std::size_t i = base + w;
    const std::uint64_t t = tag_[i];
    if (t == aligned) {
      // Refill of a present line (e.g. prefetch racing demand): refresh only.
      lru_[i] = ++tick_;
      if (dirty) flags_[i] |= kDirty;
      mru_way_[set] = w;
      return std::nullopt;
    }
    if (t == kInvalidTag) {
      victim = i;
      victim_way = w;
      break;
    }
    if (victim == kNpos || lru_[i] < lru_[victim]) {
      victim = i;
      victim_way = w;
    }
  }
  std::optional<Eviction> evicted;
  if (tag_[victim] != kInvalidTag) evicted = eviction_of(victim);
  tag_[victim] = aligned;
  flags_[victim] = (dirty ? kDirty : 0) | (prefetched ? kPrefetched : 0) |
                   (prefetched ? 0 : kReferenced);  // demand fills start referenced
  lru_[victim] = ++tick_;
  mru_way_[set] = victim_way;
  return evicted;
}

std::optional<Eviction> SetAssocCache::fill_absent(std::uint64_t addr, bool dirty,
                                                   bool prefetched) {
  const std::uint64_t aligned = line_align(addr);
  const std::uint64_t set = set_of(addr);
  const std::size_t base = set * cfg_.ways;
#ifndef NDEBUG
  expects(!contains(addr), "fill_absent of a resident line");
#endif
  // Victim selection identical to fill(): first invalid way wins, else the
  // first LRU minimum in way order. Invalid ways keep lru == 0 (valid
  // lines carry ticks >= 1 — the class invariant), so both rules collapse
  // into one pure argmin over the dense LRU plane: the first zero IS the
  // first invalid way. No tag reads, no early-exit branch — and first-min
  // tie-breaking holds on both the wide and scalar argmin paths.
  const std::uint32_t victim_way = simd::argmin_first(&lru_[base], cfg_.ways);
  const std::size_t victim = base + victim_way;
  std::optional<Eviction> evicted;
  if (tag_[victim] != kInvalidTag) evicted = eviction_of(victim);
  tag_[victim] = aligned;
  flags_[victim] = (dirty ? kDirty : 0) | (prefetched ? kPrefetched : 0) |
                   (prefetched ? 0 : kReferenced);
  lru_[victim] = ++tick_;
  mru_way_[set] = victim_way;
  return evicted;
}

SetAssocCache::Snapshot SetAssocCache::snapshot() const {
  return Snapshot{tick_, tag_, lru_, flags_};
}

void SetAssocCache::restore(const Snapshot& s) {
  expects(s.tag.size() == tag_.size() && s.lru.size() == lru_.size() &&
              s.flags.size() == flags_.size(),
          "snapshot restored into a cache of different geometry");
  tick_ = s.tick;
  tag_ = s.tag;
  lru_ = s.lru;
  flags_ = s.flags;
}

std::uint64_t SetAssocCache::digest() const {
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (b * 8)) & 0xffU;
      h *= 1099511628211ULL;  // FNV prime
    }
  };
  mix(tick_);
  for (const auto t : tag_) mix(t);
  for (const auto l : lru_) mix(l);
  for (const auto f : flags_) {
    h ^= f;
    h *= 1099511628211ULL;
  }
  return h;
}

std::optional<Eviction> SetAssocCache::invalidate(std::uint64_t addr) {
  const std::size_t idx = find(addr);
  if (idx == kNpos) return std::nullopt;
  const Eviction ev = eviction_of(idx);
  tag_[idx] = kInvalidTag;
  lru_[idx] = 0;  // invariant: invalid ways read as LRU tick 0
  return ev;
}

}  // namespace memdis::cachesim
