// PEBS-style sampling of demand-miss virtual addresses (Sec. 3.1, Level 1:
// "precise event-based sampling to record the virtual address of demand
// load misses", extended at Level 2 by splitting the samples per tier).
//
// The page-granular histogram collected here drives the bandwidth–capacity
// scaling curves of Fig. 6.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>

#include "common/contract.h"
#include "memsim/tier.h"

namespace memdis::cachesim {

class PebsSampler {
 public:
  /// `period` = sample every Nth eligible event (1 = record all).
  explicit PebsSampler(std::uint64_t period = 1, std::uint64_t page_bytes = 4096)
      : period_(period), page_bytes_(page_bytes) {
    expects(period >= 1, "PEBS period must be >= 1");
  }

  void sample(std::uint64_t vaddr, memsim::TierId tier) {
    expects(tier >= 0 && tier < memsim::kMaxTiers, "tier id out of range");
    // Count-to-period instead of modulo: fires on events period, 2·period,
    // ... exactly like the `% period_ == 0` form, without the division.
    if (++event_counter_ < period_) return;
    event_counter_ = 0;
    // One-entry memo: streamed misses sample the same page ~64 lines in a
    // row, and unordered_map nodes are pointer-stable, so the repeated
    // hash lookups collapse to one pointer bump. Same final map.
    const std::uint64_t page = vaddr / page_bytes_;
    if (page != memo_page_ || memo_count_ == nullptr) {
      memo_page_ = page;
      memo_count_ = &page_counts_[page];
    }
    ++*memo_count_;
    ++tier_samples_[static_cast<std::size_t>(tier)];
  }

  /// Accesses-per-page histogram (sampled).
  [[nodiscard]] const std::unordered_map<std::uint64_t, std::uint64_t>& page_counts() const {
    return page_counts_;
  }

  [[nodiscard]] std::uint64_t samples(memsim::TierId t) const {
    expects(t >= 0 && t < memsim::kMaxTiers, "tier id out of range");
    return tier_samples_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] std::uint64_t total_samples() const {
    std::uint64_t sum = 0;
    for (const auto s : tier_samples_) sum += s;
    return sum;
  }
  [[nodiscard]] std::uint64_t period() const { return period_; }

  void reset() {
    page_counts_.clear();
    tier_samples_ = {};
    event_counter_ = 0;
    memo_page_ = ~0ULL;
    memo_count_ = nullptr;
  }

 private:
  std::uint64_t period_;
  std::uint64_t page_bytes_;
  std::uint64_t event_counter_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> page_counts_;
  std::uint64_t memo_page_ = ~0ULL;
  std::uint64_t* memo_count_ = nullptr;
  std::array<std::uint64_t, memsim::kMaxTiers> tier_samples_{};
};

}  // namespace memdis::cachesim
