// Set-associative, write-back, write-allocate cache with true-LRU
// replacement. Used for all three levels of the simulated hierarchy.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace memdis::cachesim {

struct CacheConfig {
  std::uint64_t size_bytes = 0;
  std::uint32_t ways = 0;
  std::uint32_t line_bytes = 64;

  [[nodiscard]] std::uint64_t num_sets() const {
    return size_bytes / (static_cast<std::uint64_t>(ways) * line_bytes);
  }
};

/// A line evicted to make room for a fill.
struct Eviction {
  std::uint64_t line_addr = 0;  ///< byte address of the evicted line's start
  bool dirty = false;
  bool prefetched_unused = false;  ///< was a prefetch that was never referenced
};

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheConfig& cfg);

  /// Looks up the line containing `addr`. On a hit, updates LRU state,
  /// optionally sets the dirty bit, and reports whether this was the first
  /// demand reference to a prefetched line.
  struct HitInfo {
    bool hit = false;
    bool first_use_of_prefetch = false;
  };
  HitInfo access(std::uint64_t addr, bool is_store);

  /// Inserts the line containing `addr`; returns the eviction if a valid
  /// line had to be displaced. `prefetched` marks hardware-prefetch fills.
  std::optional<Eviction> fill(std::uint64_t addr, bool dirty, bool prefetched);

  /// True when the line is present (does not update LRU).
  [[nodiscard]] bool contains(std::uint64_t addr) const;

  /// Invalidates the line if present; returns its eviction record.
  std::optional<Eviction> invalidate(std::uint64_t addr);

  /// Marks the line dirty if present (used when an upper level writes back).
  void mark_dirty(std::uint64_t addr);

  /// Evicts every valid line, invoking `sink` for each (used at end of run
  /// to drain dirty data into the writeback accounting).
  template <typename Sink>
  void drain(Sink&& sink) {
    for (auto& line : lines_) {
      if (!line.valid) continue;
      Eviction ev{line.tag_addr, line.dirty, line.prefetched && !line.referenced};
      line.valid = false;
      sink(ev);
    }
  }

  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t line_bytes() const { return cfg_.line_bytes; }

 private:
  struct Line {
    std::uint64_t tag_addr = 0;  ///< line-aligned byte address
    std::uint64_t lru_tick = 0;
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;
    bool referenced = false;  ///< demand-referenced since fill
  };

  [[nodiscard]] std::uint64_t set_of(std::uint64_t addr) const;
  [[nodiscard]] std::uint64_t line_align(std::uint64_t addr) const {
    return addr & ~static_cast<std::uint64_t>(cfg_.line_bytes - 1);
  }
  Line* find(std::uint64_t addr);
  [[nodiscard]] const Line* find(std::uint64_t addr) const;

  CacheConfig cfg_;
  std::uint64_t sets_;
  std::uint64_t tick_ = 0;
  std::vector<Line> lines_;  // sets_ * ways, row-major by set
};

}  // namespace memdis::cachesim
