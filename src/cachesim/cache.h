// Set-associative, write-back, write-allocate cache with true-LRU
// replacement. Used for all three levels of the simulated hierarchy.
//
// The lookup path is the simulator's innermost loop (every simulated access
// probes L1, and every L1 miss scans L2/L3 and fills up to three levels),
// so the cache state is laid out for speed without changing behaviour:
//  * struct-of-arrays storage — tag, LRU tick, and flag planes — so a way
//    scan streams over a dense 8-byte tag array instead of 24-byte line
//    records (the simulated L3's metadata alone overflows the host's L2;
//    memory traffic per scan is what dominates, not instruction count),
//  * an impossible tag value (~0) encodes invalidity, so one tag compare
//    answers valid-and-matching,
//  * set/tag math uses precomputed shift/mask values (line size and set
//    count are enforced powers of two),
//  * each set keeps an MRU way hint probed before the full scan — a pure
//    search-order optimization (tags are unique within a set, so the same
//    line is found whichever way finds it),
//  * the way scan and the victim argmin issue as wide compares over the
//    dense planes (common/simd.h — AVX2/SSE2/NEON with a scalar fallback
//    and the memdis::set_simd_enabled() kill switch; see docs/HOTPATH.md),
//  * the hot entry points are header-inline.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/contract.h"
#include "common/simd.h"

namespace memdis::cachesim {

struct CacheConfig {
  std::uint64_t size_bytes = 0;
  std::uint32_t ways = 0;
  std::uint32_t line_bytes = 64;

  /// Sets implied by the geometry. `size_bytes` must be an exact multiple
  /// of `ways * line_bytes` — the SetAssocCache constructor rejects
  /// anything else, so the division here never truncates.
  [[nodiscard]] std::uint64_t num_sets() const {
    return size_bytes / (static_cast<std::uint64_t>(ways) * line_bytes);
  }
};

/// A line evicted to make room for a fill.
struct Eviction {
  std::uint64_t line_addr = 0;  ///< byte address of the evicted line's start
  bool dirty = false;
  bool prefetched_unused = false;  ///< was a prefetch that was never referenced
};

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheConfig& cfg);

  /// Looks up the line containing `addr`. On a hit, updates LRU state,
  /// optionally sets the dirty bit, and reports whether this was the first
  /// demand reference to a prefetched line.
  struct HitInfo {
    bool hit = false;
    bool first_use_of_prefetch = false;
  };
  HitInfo access(std::uint64_t addr, bool is_store) {
    const std::size_t idx = find(addr);
    if (idx == kNpos) return {};
    const std::uint8_t f = flags_[idx];
    HitInfo info;
    info.hit = true;
    info.first_use_of_prefetch = (f & kPrefetched) != 0 && (f & kReferenced) == 0;
    flags_[idx] = f | kReferenced | (is_store ? kDirty : 0);
    lru_[idx] = ++tick_;
    return info;
  }

  /// Applies `count` consecutive access() calls to the same (present) line
  /// in O(1): the LRU tick advances by `count` and lands on this line, the
  /// line is marked referenced, and dirtied when any of the batched
  /// accesses is a store — exactly the state `count` sequential calls
  /// leave behind, since no other access can interleave. Returns a miss
  /// (hit == false) with no state change when the line is absent.
  HitInfo access_run(std::uint64_t addr, bool any_store, std::uint64_t count) {
    const std::size_t idx = find(addr);
    if (idx == kNpos) return {};
    const std::uint8_t f = flags_[idx];
    HitInfo info;
    info.hit = true;
    info.first_use_of_prefetch = (f & kPrefetched) != 0 && (f & kReferenced) == 0;
    flags_[idx] = f | kReferenced | (any_store ? kDirty : 0);
    tick_ += count;
    lru_[idx] = tick_;
    return info;
  }

  /// Applies `pairs` interleaved hit iterations {access(addr_a), access
  /// (addr_b)} in O(1). Both lines must be present (the caller probes with
  /// contains()); the final LRU order — addr_b most recent, addr_a just
  /// behind it — matches the element-wise sequence exactly, including the
  /// degenerate addr_a == addr_b case.
  void access_pair_run(std::uint64_t addr_a, std::uint64_t addr_b, bool is_store,
                       std::uint64_t pairs) {
    const std::size_t a = find(addr_a);
    const std::size_t b = find(addr_b);
    expects(a != kNpos && b != kNpos, "pair run on a non-resident line");
    const std::uint8_t set_bits = kReferenced | (is_store ? kDirty : 0);
    tick_ += 2 * pairs;
    flags_[a] |= set_bits;
    lru_[a] = tick_ - 1;
    flags_[b] |= set_bits;
    lru_[b] = tick_;
  }

  // ---- resident-line handles (the engine's multi-stream batcher) -----------
  // A handle is the line's slot index; it stays valid until the next fill,
  // invalidate, or drain on this cache (those may move or evict lines).
  static constexpr std::size_t npos = ~std::size_t{0};

  /// Handle of the line holding `addr`, or npos. Search-order hint updates
  /// only — same observable state as contains().
  [[nodiscard]] std::size_t index_of(std::uint64_t addr) { return find(addr); }

  /// Batched index_of: out[i] = index_of(line_addrs[i]), i < n. Resolves
  /// all of the engine batcher's changed lanes in one call, so the wide
  /// tag compares issue back-to-back with no interleaved lane
  /// bookkeeping. Same hint updates as n sequential index_of() calls.
  void index_of_batch(const std::uint64_t* line_addrs, std::size_t n, std::size_t* out) {
    for (std::size_t i = 0; i < n; ++i) out[i] = find(line_addrs[i]);
  }

  /// Applies the *net* effect of a batch of hit accesses to the line at
  /// `idx`: referenced, optionally dirtied, LRU tick set to `final_tick`
  /// (a value the caller obtained from advance_tick for this batch).
  void touch_at(std::size_t idx, bool any_store, std::uint64_t final_tick) {
    flags_[idx] |= kReferenced | (any_store ? kDirty : 0);
    lru_[idx] = final_tick;
  }

  /// Advances the LRU clock by `n` accesses and returns the new value (the
  /// tick of the batch's final access).
  std::uint64_t advance_tick(std::uint64_t n) {
    tick_ += n;
    return tick_;
  }

  /// Inserts the line containing `addr`; returns the eviction if a valid
  /// line had to be displaced. `prefetched` marks hardware-prefetch fills.
  std::optional<Eviction> fill(std::uint64_t addr, bool dirty, bool prefetched);

  /// fill() for a line the caller knows is absent (every hierarchy fill
  /// follows a miss or a failed contains() on this level, with nothing in
  /// between that could insert it). Skips the present-line refresh check,
  /// so the victim scan is a pure invalid-or-LRU-min pass — same victim,
  /// same eviction, same end state as fill().
  std::optional<Eviction> fill_absent(std::uint64_t addr, bool dirty, bool prefetched);

  /// True when the line is present. Does not update LRU; probes the MRU
  /// hint first (search order only, observationally pure).
  [[nodiscard]] bool contains(std::uint64_t addr) const {
    const std::uint64_t aligned = line_align(addr);
    const std::uint64_t set = set_of(addr);
    const std::uint64_t* tags = &tag_[set * cfg_.ways];
    const std::uint32_t hinted = mru_way_[set];
    if (tags[hinted] == aligned) return true;
    return simd::find_equal_except(tags, cfg_.ways, aligned, hinted) != cfg_.ways;
  }

  /// Invalidates the line if present; returns its eviction record.
  std::optional<Eviction> invalidate(std::uint64_t addr);

  /// Marks the line dirty when present — an upper level writing back into
  /// this one — and reports whether it was (one scan replacing the former
  /// contains + mark_dirty probe pair).
  bool mark_dirty_if_present(std::uint64_t addr) {
    const std::size_t idx = find(addr);
    if (idx == kNpos) return false;
    flags_[idx] |= kDirty;
    return true;
  }

  /// Evicts every valid line, invoking `sink` for each (used at end of run
  /// to drain dirty data into the writeback accounting).
  template <typename Sink>
  void drain(Sink&& sink) {
    for (std::size_t i = 0; i < tag_.size(); ++i) {
      if (tag_[i] == kInvalidTag) continue;
      sink(eviction_of(i));
      tag_[i] = kInvalidTag;
      lru_[i] = 0;  // invariant: invalid ways read as LRU tick 0
    }
  }

  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t line_bytes() const { return cfg_.line_bytes; }

  // ---- state snapshot / restore / digest ------------------------------------
  // The complete observable line state: tag, LRU tick, and flag planes plus
  // the LRU clock. The per-set MRU hint is deliberately excluded — it only
  // steers search order (tags are unique within a set), so two states that
  // differ in hints alone are behaviourally identical. Used by the trace
  // layer's replay-validation tests to prove a replayed run reconverges on
  // the live run's exact cache state.
  struct Snapshot {
    std::uint64_t tick = 0;
    std::vector<std::uint64_t> tag;
    std::vector<std::uint64_t> lru;
    std::vector<std::uint8_t> flags;
  };
  [[nodiscard]] Snapshot snapshot() const;
  /// Restores a snapshot taken from a cache of the identical geometry
  /// (contract violation otherwise).
  void restore(const Snapshot& s);
  /// FNV-1a over the snapshot planes — equal digests ⇔ equal observable
  /// line state.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  static constexpr std::uint64_t kInvalidTag = ~0ULL;  // not a line address
  static constexpr std::size_t kNpos = ~std::size_t{0};
  static constexpr std::uint8_t kDirty = 1;
  static constexpr std::uint8_t kPrefetched = 2;
  static constexpr std::uint8_t kReferenced = 4;

  [[nodiscard]] std::uint64_t set_of(std::uint64_t addr) const {
    return (addr >> line_shift_) & set_mask_;
  }
  [[nodiscard]] std::uint64_t line_align(std::uint64_t addr) const {
    return addr & ~static_cast<std::uint64_t>(cfg_.line_bytes - 1);
  }
  [[nodiscard]] Eviction eviction_of(std::size_t idx) const {
    const std::uint8_t f = flags_[idx];
    return Eviction{tag_[idx], (f & kDirty) != 0,
                    (f & kPrefetched) != 0 && (f & kReferenced) == 0};
  }

  /// Index of the line holding `addr`, or kNpos. Updates the MRU hint on a
  /// scan hit (search order only). After the hint probe misses, the scan
  /// compares each remaining tag exactly once: the wide path covers the
  /// hinted lane inside the vector compare (free, and known unequal), the
  /// scalar fallback skips it.
  std::size_t find(std::uint64_t addr) {
    const std::uint64_t aligned = line_align(addr);
    const std::uint64_t set = set_of(addr);
    const std::size_t base = set * cfg_.ways;
    const std::uint32_t hinted = mru_way_[set];
    if (tag_[base + hinted] == aligned) return base + hinted;
    const std::uint32_t w = simd::find_equal_except(&tag_[base], cfg_.ways, aligned, hinted);
    if (w == cfg_.ways) return kNpos;
    mru_way_[set] = w;
    return base + w;
  }

  CacheConfig cfg_;
  std::uint64_t sets_;
  std::uint32_t line_shift_ = 0;
  std::uint64_t set_mask_ = 0;
  std::uint64_t tick_ = 0;
  // Struct-of-arrays line state, sets_ * ways entries, row-major by set.
  std::vector<std::uint64_t> tag_;   ///< line-aligned addr, kInvalidTag if empty
  std::vector<std::uint64_t> lru_;   ///< last-access tick (victim = min)
  std::vector<std::uint8_t> flags_;  ///< kDirty | kPrefetched | kReferenced
  std::vector<std::uint32_t> mru_way_;  ///< per-set hint, search order only
};

}  // namespace memdis::cachesim
