#include "cachesim/hierarchy.h"

namespace memdis::cachesim {

namespace {
PrefetcherConfig with_line(PrefetcherConfig pf, std::uint64_t line_bytes,
                           std::uint64_t page_bytes) {
  pf.line_bytes = line_bytes;
  pf.page_bytes = page_bytes;
  return pf;
}
}  // namespace

CacheHierarchy::CacheHierarchy(const HierarchyConfig& cfg, memsim::TieredMemory& mem)
    : cfg_(cfg),
      mem_(mem),
      l1_(cfg.l1),
      l2_(cfg.l2),
      l3_(cfg.l3),
      prefetcher_(with_line(cfg.prefetcher, cfg.l2.line_bytes, mem.page_bytes())),
      pebs_(cfg.pebs_period, mem.page_bytes()) {}

AccessResult CacheHierarchy::access_miss(std::uint64_t vaddr, bool is_store) {
  // L1 miss: the L2 access stream is what trains the streamer.
  AccessResult result;
  const auto l2_hit = l2_.access(vaddr, is_store);
  if (l2_hit.hit) {
    ++counters_.l2_hits;
    result = AccessResult{HitLevel::kL2, memsim::kNodeTier, l2_hit.first_use_of_prefetch};
    if (l2_hit.first_use_of_prefetch) {
      ++counters_.pf_hits;
      prefetcher_.record_useful();
    }
  } else if (l3_.access(vaddr, is_store).hit) {
    ++counters_.l3_hits;
    ++counters_.l2_lines_in;
    if (auto ev = l2_.fill_absent(vaddr, is_store, /*prefetched=*/false)) handle_l2_eviction(*ev);
    result = AccessResult{HitLevel::kL3, memsim::kNodeTier, false};
  } else {
    const memsim::TierId tier = dram_fetch(vaddr, /*demand=*/true);
    // PEBS records demand *load* misses (Sec. 3.1); RFO misses are excluded.
    if (!is_store) pebs_.sample(vaddr, tier);
    if (auto ev = l3_.fill_absent(vaddr, /*dirty=*/false, /*prefetched=*/false))
      handle_l3_eviction(*ev);
    ++counters_.l2_lines_in;
    if (auto ev = l2_.fill_absent(vaddr, is_store, /*prefetched=*/false)) handle_l2_eviction(*ev);
    result = AccessResult{HitLevel::kDram, tier, false};
  }

  if (auto ev = l1_.fill_absent(vaddr, is_store, /*prefetched=*/false)) {
    // Evicted dirty L1 lines write back into the closest level holding them.
    if (ev->dirty && !l2_.mark_dirty_if_present(ev->line_addr) &&
        !l3_.mark_dirty_if_present(ev->line_addr)) {
      writeback_to_dram(ev->line_addr);
    }
  }

  issue_prefetches(vaddr, is_store);
  return result;
}

void CacheHierarchy::issue_prefetches(std::uint64_t vaddr, bool is_store) {
  pf_queue_.clear();
  prefetcher_.observe(vaddr, is_store, pf_queue_);
  for (const PrefetchRequest& req : pf_queue_) {
    if (l2_.contains(req.line_addr)) continue;
    if (req.rfo) {
      ++counters_.pf_l2_rfo;
    } else {
      ++counters_.pf_l2_data_rd;
    }
    if (!l3_.contains(req.line_addr)) {
      dram_fetch(req.line_addr, /*demand=*/false);
      if (auto ev = l3_.fill_absent(req.line_addr, false, /*prefetched=*/false))
        handle_l3_eviction(*ev);
    }
    ++counters_.l2_lines_in;
    if (auto ev = l2_.fill_absent(req.line_addr, false, /*prefetched=*/true)) handle_l2_eviction(*ev);
  }
}

memsim::TierId CacheHierarchy::dram_fetch(std::uint64_t line_addr, bool demand) {
  const memsim::TierId tier = mem_.touch(line_addr);
  const auto ti = static_cast<std::size_t>(tier);
  ++counters_.offcore_l3_miss;
  ++counters_.offcore_dram[ti];
  counters_.dram_read_bytes[ti] += l2_.line_bytes();
  if (demand) ++counters_.demand_dram[ti];
  return tier;
}

void CacheHierarchy::handle_l2_eviction(const Eviction& ev) {
  if (ev.prefetched_unused) {
    ++counters_.useless_hwpf;
    prefetcher_.record_useless();
  }
  if (ev.dirty && !l3_.mark_dirty_if_present(ev.line_addr)) writeback_to_dram(ev.line_addr);
}

void CacheHierarchy::handle_l3_eviction(const Eviction& ev) {
  if (ev.dirty) writeback_to_dram(ev.line_addr);
}

void CacheHierarchy::writeback_to_dram(std::uint64_t line_addr) {
  // The line was filled from DRAM earlier, so its page is resident.
  const memsim::TierId tier = mem_.tier_of(line_addr);
  counters_.dram_writeback_bytes[static_cast<std::size_t>(tier)] += l2_.line_bytes();
}

void CacheHierarchy::drain() {
  l1_.drain([this](const Eviction& ev) {
    if (ev.dirty && !l2_.mark_dirty_if_present(ev.line_addr) &&
        !l3_.mark_dirty_if_present(ev.line_addr)) {
      writeback_to_dram(ev.line_addr);
    }
  });
  l2_.drain([this](const Eviction& ev) {
    if (ev.prefetched_unused) {
      ++counters_.useless_hwpf;
      prefetcher_.record_useless();
    }
    if (ev.dirty && !l3_.mark_dirty_if_present(ev.line_addr)) writeback_to_dram(ev.line_addr);
  });
  l3_.drain([this](const Eviction& ev) {
    if (ev.dirty) writeback_to_dram(ev.line_addr);
  });
}

}  // namespace memdis::cachesim
