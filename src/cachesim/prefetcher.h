// L2 stream prefetcher with accuracy-driven throttling.
//
// Models the Skylake L2 streamer the paper toggles through MSR 0x1a4:
// per-4KiB-page stream detection in both directions, prefetch degree that
// ramps with stream confidence, and global throttling when measured accuracy
// drops — the mechanism behind the paper's observation that XSBench's
// prefetcher "adapts to a low level when accuracy is low" (Sec. 4.2).
// Prefetches never cross a 4KiB page boundary (no page faults from the
// prefetcher), mirroring real hardware and the CXL non-faulting argument.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace memdis::cachesim {

struct PrefetcherConfig {
  bool enabled = true;
  std::uint32_t num_streams = 16;     ///< tracked stream table entries
  std::uint32_t max_degree = 4;       ///< lines prefetched ahead at full confidence
  std::uint32_t train_threshold = 2;  ///< consecutive steps before issuing
  std::uint64_t page_bytes = 4096;
  std::uint64_t line_bytes = 64;
  /// Accuracy thresholds for throttling (fractions of useful prefetches).
  double throttle_low = 0.35;   ///< below this: degree 1
  double throttle_high = 0.70;  ///< above this: full degree
};

/// A prefetch request produced by observe(): line-aligned address plus the
/// store-ness of the triggering access (for PF_L2_RFO vs PF_L2_DATA_RD).
struct PrefetchRequest {
  std::uint64_t line_addr = 0;
  bool rfo = false;
};

class StreamPrefetcher {
 public:
  explicit StreamPrefetcher(const PrefetcherConfig& cfg);

  /// Observes a demand access and appends prefetch candidates to `out`.
  /// The caller (hierarchy) filters lines already cached and performs fills.
  void observe(std::uint64_t addr, bool is_store, std::vector<PrefetchRequest>& out);

  /// Feedback from the hierarchy: a prefetched line saw its first demand use.
  void record_useful();
  /// Feedback: a prefetched line was evicted without any demand use.
  void record_useless();

  /// Running accuracy estimate in [0,1] (exponentially aged window).
  [[nodiscard]] double accuracy_estimate() const;

  /// Current effective degree after throttling.
  [[nodiscard]] std::uint32_t effective_degree() const;

  void set_enabled(bool enabled) { cfg_.enabled = enabled; }
  [[nodiscard]] bool enabled() const { return cfg_.enabled; }
  [[nodiscard]] const PrefetcherConfig& config() const { return cfg_; }

 private:
  struct Stream {
    std::uint64_t page = 0;
    std::int64_t last_line = 0;  ///< line index within page
    int direction = 0;           ///< +1, -1, or 0 (untrained)
    std::uint32_t run_length = 0;
    std::uint64_t last_tick = 0;
    bool valid = false;
  };

  Stream* lookup_stream(std::uint64_t page);
  void age_window();

  PrefetcherConfig cfg_;
  std::uint32_t page_shift_ = 0;  ///< log2(page_bytes), page/line are pow2
  std::uint32_t line_shift_ = 0;  ///< log2(line_bytes)
  /// Direct-mapped page→entry lookup hints (search order only: interleaved
  /// loops rotate several live streams, so a single MRU hint keeps
  /// missing; hashing the page low bits keeps each stream's slot warm).
  static constexpr std::uint32_t kHintSlots = 64;
  std::array<std::uint32_t, kHintSlots> hint_{};
  std::vector<Stream> streams_;
  std::uint64_t tick_ = 0;
  // Aged feedback window; starts optimistic so cold-start is not throttled.
  double window_useful_ = 8.0;
  double window_issued_ = 10.0;
};

}  // namespace memdis::cachesim
