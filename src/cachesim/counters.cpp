#include "cachesim/counters.h"

namespace memdis::cachesim {

HwCounters HwCounters::delta_since(const HwCounters& earlier) const {
  HwCounters d;
  d.loads = loads - earlier.loads;
  d.stores = stores - earlier.stores;
  d.l1_hits = l1_hits - earlier.l1_hits;
  d.l2_hits = l2_hits - earlier.l2_hits;
  d.l3_hits = l3_hits - earlier.l3_hits;
  d.l2_lines_in = l2_lines_in - earlier.l2_lines_in;
  d.pf_l2_data_rd = pf_l2_data_rd - earlier.pf_l2_data_rd;
  d.pf_l2_rfo = pf_l2_rfo - earlier.pf_l2_rfo;
  d.useless_hwpf = useless_hwpf - earlier.useless_hwpf;
  d.pf_hits = pf_hits - earlier.pf_hits;
  d.offcore_l3_miss = offcore_l3_miss - earlier.offcore_l3_miss;
  for (int i = 0; i < memsim::kMaxTiers; ++i) {
    d.offcore_dram[i] = offcore_dram[i] - earlier.offcore_dram[i];
    d.demand_dram[i] = demand_dram[i] - earlier.demand_dram[i];
    d.dram_read_bytes[i] = dram_read_bytes[i] - earlier.dram_read_bytes[i];
    d.dram_writeback_bytes[i] = dram_writeback_bytes[i] - earlier.dram_writeback_bytes[i];
  }
  return d;
}

HwCounters& HwCounters::operator+=(const HwCounters& other) {
  loads += other.loads;
  stores += other.stores;
  l1_hits += other.l1_hits;
  l2_hits += other.l2_hits;
  l3_hits += other.l3_hits;
  l2_lines_in += other.l2_lines_in;
  pf_l2_data_rd += other.pf_l2_data_rd;
  pf_l2_rfo += other.pf_l2_rfo;
  useless_hwpf += other.useless_hwpf;
  pf_hits += other.pf_hits;
  offcore_l3_miss += other.offcore_l3_miss;
  for (int i = 0; i < memsim::kMaxTiers; ++i) {
    offcore_dram[i] += other.offcore_dram[i];
    demand_dram[i] += other.demand_dram[i];
    dram_read_bytes[i] += other.dram_read_bytes[i];
    dram_writeback_bytes[i] += other.dram_writeback_bytes[i];
  }
  return *this;
}

void HwCounters::add_scaled(const HwCounters& delta, std::uint64_t n) {
  loads += delta.loads * n;
  stores += delta.stores * n;
  l1_hits += delta.l1_hits * n;
  l2_hits += delta.l2_hits * n;
  l3_hits += delta.l3_hits * n;
  l2_lines_in += delta.l2_lines_in * n;
  pf_l2_data_rd += delta.pf_l2_data_rd * n;
  pf_l2_rfo += delta.pf_l2_rfo * n;
  useless_hwpf += delta.useless_hwpf * n;
  pf_hits += delta.pf_hits * n;
  offcore_l3_miss += delta.offcore_l3_miss * n;
  for (int i = 0; i < memsim::kMaxTiers; ++i) {
    offcore_dram[i] += delta.offcore_dram[i] * n;
    demand_dram[i] += delta.demand_dram[i] * n;
    dram_read_bytes[i] += delta.dram_read_bytes[i] * n;
    dram_writeback_bytes[i] += delta.dram_writeback_bytes[i] * n;
  }
}

}  // namespace memdis::cachesim
