// Simulated hardware performance counters.
//
// Field names mirror the events the paper's profiler reads on Skylake-X
// (Sec. 3.1 and 4.2): OFFCORE_RESPONSE:L3_MISS split by LOCAL/REMOTE_DRAM,
// the L2 prefetcher events PF_L2_DATA_RD / PF_L2_RFO / USELESS_HWPF, and
// L2_LINES_IN. The profiler computes prefetch Accuracy/Coverage (Eq. 1–2)
// and the remote access ratio (Sec. 5.1) from exactly these counters.
//
// Per-tier events are fixed-size arrays indexed by TierId (kMaxTiers slots;
// tiers beyond the active topology stay zero) so counters remain cheap to
// copy for the engine's per-epoch deltas.
#pragma once

#include <array>
#include <cstdint>

#include "memsim/tier.h"

namespace memdis::cachesim {

struct HwCounters {
  // Core-side access mix.
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l3_hits = 0;

  // L2 fill and prefetch events.
  std::uint64_t l2_lines_in = 0;      ///< all lines filled into L2
  std::uint64_t pf_l2_data_rd = 0;    ///< prefetch fills triggered by loads
  std::uint64_t pf_l2_rfo = 0;        ///< prefetch fills triggered by stores
  std::uint64_t useless_hwpf = 0;     ///< prefetched lines evicted untouched
  std::uint64_t pf_hits = 0;          ///< demand hits on a prefetched line (first use)

  // Offcore responses: lines retrieved from DRAM (demand + prefetch).
  std::uint64_t offcore_l3_miss = 0;
  std::array<std::uint64_t, memsim::kMaxTiers> offcore_dram{};  ///< per-tier line fetches

  // Demand misses that had to wait for DRAM (not covered by a prefetch).
  std::array<std::uint64_t, memsim::kMaxTiers> demand_dram{};

  // Byte-level DRAM traffic per tier (reads + writebacks), for bandwidth
  // accounting and the link traffic measurement.
  std::array<std::uint64_t, memsim::kMaxTiers> dram_read_bytes{};
  std::array<std::uint64_t, memsim::kMaxTiers> dram_writeback_bytes{};

  [[nodiscard]] std::uint64_t accesses() const { return loads + stores; }
  [[nodiscard]] std::uint64_t prefetch_fills() const { return pf_l2_data_rd + pf_l2_rfo; }
  [[nodiscard]] std::uint64_t demand_dram_total() const {
    std::uint64_t sum = 0;
    for (const auto d : demand_dram) sum += d;
    return sum;
  }
  [[nodiscard]] std::uint64_t dram_bytes(memsim::TierId t) const {
    const auto i = static_cast<std::size_t>(t);
    return dram_read_bytes[i] + dram_writeback_bytes[i];
  }
  [[nodiscard]] std::uint64_t dram_bytes_total() const {
    std::uint64_t sum = 0;
    for (int t = 0; t < memsim::kMaxTiers; ++t) sum += dram_bytes(t);
    return sum;
  }
  /// DRAM bytes served by the node tier.
  [[nodiscard]] std::uint64_t node_dram_bytes() const { return dram_bytes(memsim::kNodeTier); }
  /// DRAM bytes served off the node — all fabric tiers combined (the
  /// "remote" side of the paper's two-tier R_access ratio).
  [[nodiscard]] std::uint64_t fabric_dram_bytes() const {
    return dram_bytes_total() - node_dram_bytes();
  }

  /// Counter-wise difference (this - earlier); used for per-epoch deltas.
  [[nodiscard]] HwCounters delta_since(const HwCounters& earlier) const;

  HwCounters& operator+=(const HwCounters& other);

  /// Adds `n` repetitions of `delta` in one pass — the closed-form update
  /// behind the engine's steady-state fast-forward.
  void add_scaled(const HwCounters& delta, std::uint64_t n);
};

}  // namespace memdis::cachesim
