// CacheHierarchy: L1D + L2 (with stream prefetcher) + shared L3, backed by
// the N-tier memory of `memsim`. Every simulated load/store funnels
// through here; the hierarchy maintains the paper's hardware counters.
//
// Simplifications vs. Skylake-X (documented deviations):
//  * the hierarchy is modelled inclusive (Skylake's L3 is a victim cache);
//    this changes capacity slightly but none of the profiled ratios,
//  * a single hierarchy aggregates all threads (the workloads are modelled
//    as a single access stream with bandwidth-level parallelism applied in
//    the engine's time model).
//
// Hot-path layout: access() is header-inline and handles only the L1-hit
// case (the overwhelming majority of accesses in streaming codes); every
// deeper level funnels through the out-of-line access_miss(). The bulk
// range API in sim::Engine additionally uses the *_l1_run entry points,
// which collapse a run of consecutive same-line accesses into O(1) state
// updates with counter credit deferred to the engine's batch accumulator —
// the "streaming cache shortcut". All of these are exact: the counter and
// cache state after a batched run is bit-identical to the element-wise
// access sequence it replaces.
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/cache.h"
#include "cachesim/counters.h"
#include "cachesim/pebs.h"
#include "cachesim/prefetcher.h"
#include "memsim/page_table.h"

namespace memdis::cachesim {

// Default sizes are a scaled-down Skylake-X: the workload inputs are run at
// roughly 1/100 of the paper's memory footprints to keep simulation
// turnaround fast, so the caches shrink proportionally (L2 128 KiB,
// L3 1 MiB) to preserve the working-set-to-cache ratios that shape the
// DRAM-level profiles (hot sets must still overflow the LLC).
struct HierarchyConfig {
  CacheConfig l1{32 * 1024, 8, 64};
  CacheConfig l2{128 * 1024, 8, 64};
  CacheConfig l3{1024 * 1024, 16, 64};
  PrefetcherConfig prefetcher{};
  std::uint64_t pebs_period = 1;
};

/// Where a demand access was satisfied.
enum class HitLevel : std::uint8_t { kL1, kL2, kL3, kDram };

struct AccessResult {
  HitLevel level = HitLevel::kL1;
  memsim::TierId tier = memsim::kNodeTier;  ///< valid when level == kDram
  bool covered_by_prefetch = false;         ///< first demand use of a prefetched line
};

class CacheHierarchy {
 public:
  CacheHierarchy(const HierarchyConfig& cfg, memsim::TieredMemory& mem);

  /// Simulates one demand access of up to one cacheline.
  AccessResult access(std::uint64_t vaddr, bool is_store) {
    if (is_store) {
      ++counters_.stores;
    } else {
      ++counters_.loads;
    }
    if (l1_.access(vaddr, is_store).hit) {
      ++counters_.l1_hits;
      return AccessResult{HitLevel::kL1, memsim::kNodeTier, false};
    }
    return access_miss(vaddr, is_store);
  }

  // ---- bulk same-line runs (sim::Engine range API) -------------------------
  // A "run" is `count` consecutive demand accesses to one line with no other
  // access in between. If the line is L1-resident the whole run is L1 hits;
  // cache state is updated in O(1) and the caller accounts the counters
  // (credit_l1_run) at batch end. If absent, the caller performs the first
  // access via access() (the unavoidable miss path) and applies the
  // remaining count-1 guaranteed hits via l1_touch_run.

  /// Attempts the run as pure L1 hits. Returns false (no state change) when
  /// the line is not L1-resident.
  bool try_l1_run(std::uint64_t line_addr, bool any_store, std::uint64_t count) {
    return l1_.access_run(line_addr, any_store, count).hit;
  }

  /// access() for a line a just-failed L1 probe established as absent —
  /// skips the redundant second L1 scan (an L1 miss probe mutates nothing,
  /// so going straight to the miss path is identical).
  AccessResult access_after_l1_miss(std::uint64_t vaddr, bool is_store) {
    if (is_store) {
      ++counters_.stores;
    } else {
      ++counters_.loads;
    }
    return access_miss(vaddr, is_store);
  }

  /// Applies a run of guaranteed L1 hits (the tail after a fill). The line
  /// must be resident — access() just filled it.
  void l1_touch_run(std::uint64_t line_addr, bool any_store, std::uint64_t count) {
    l1_.access_run(line_addr, any_store, count);
  }

  /// True when the line is L1-resident. Observationally pure (no LRU or
  /// hint movement) — the probe behind the paired-stream batcher.
  [[nodiscard]] bool l1_contains(std::uint64_t line_addr) const {
    return l1_.contains(line_addr);
  }

  /// Applies `pairs` interleaved iterations of {access line_a, access
  /// line_b} as guaranteed L1 hits (both lines must be resident — probe
  /// with l1_contains first). Bit-identical to the element-wise sequence:
  /// line_b carries the final LRU tick, line_a the one before it.
  void l1_pair_run(std::uint64_t line_a, std::uint64_t line_b, bool is_store,
                   std::uint64_t pairs) {
    l1_.access_pair_run(line_a, line_b, is_store, pairs);
  }

  // Resident-line handle passthroughs for the engine's multi-stream
  // batcher (sim::Engine::stream_range). Handles go stale at any L1 fill,
  // so the engine re-resolves them after every non-batched access.
  static constexpr std::size_t l1_npos = SetAssocCache::npos;
  [[nodiscard]] std::size_t l1_index_of(std::uint64_t line_addr) {
    return l1_.index_of(line_addr);
  }
  /// Batched l1_index_of: the engine resolves every changed lane of a
  /// window in one call, so the vectorized tag probes issue as one pass.
  void l1_index_of_batch(const std::uint64_t* line_addrs, std::size_t n, std::size_t* out) {
    l1_.index_of_batch(line_addrs, n, out);
  }
  void l1_touch_at(std::size_t idx, bool any_store, std::uint64_t final_tick) {
    l1_.touch_at(idx, any_store, final_tick);
  }
  std::uint64_t l1_advance_tick(std::uint64_t n) { return l1_.advance_tick(n); }

  /// Flushes a batch accumulator of L1-hit runs into the counters.
  void credit_l1_run(std::uint64_t loads, std::uint64_t stores) {
    counters_.loads += loads;
    counters_.stores += stores;
    counters_.l1_hits += loads + stores;
  }

  /// Flushes all dirty lines to DRAM (end-of-run traffic accounting).
  void drain();

  // ---- steady-state fast-forward & replay validation -----------------------

  /// Folds `n` repetitions of a steady epoch's counter delta into the
  /// counters and advances each level's LRU clock by the accesses that
  /// level observed per repetition (L1 sees every access, L2 the L1
  /// misses, L3 the L2 misses). Cache *contents* and prefetcher streams are
  /// left at their pre-jump state — that residual staleness is the
  /// fast-forward mode's documented tolerance (docs/TRACE.md); the exact
  /// path never calls this.
  void ff_apply(const HwCounters& delta, std::uint64_t n) {
    counters_.add_scaled(delta, n);
    const std::uint64_t acc = delta.accesses();
    l1_.advance_tick(acc * n);
    l2_.advance_tick((acc - delta.l1_hits) * n);
    l3_.advance_tick((acc - delta.l1_hits - delta.l2_hits) * n);
  }

  /// Observable line state of all three levels (trace replay validation).
  struct Snapshot {
    SetAssocCache::Snapshot l1, l2, l3;
  };
  [[nodiscard]] Snapshot snapshot_caches() const {
    return Snapshot{l1_.snapshot(), l2_.snapshot(), l3_.snapshot()};
  }
  void restore_caches(const Snapshot& s) {
    l1_.restore(s.l1);
    l2_.restore(s.l2);
    l3_.restore(s.l3);
  }
  /// Combined digest over the three levels' observable state — equal
  /// digests prove a replayed run left the caches bit-identical to live.
  [[nodiscard]] std::uint64_t digest() const {
    std::uint64_t h = l1_.digest();
    h = h * 1099511628211ULL ^ l2_.digest();
    h = h * 1099511628211ULL ^ l3_.digest();
    return h;
  }

  void set_prefetch_enabled(bool on) { prefetcher_.set_enabled(on); }
  [[nodiscard]] bool prefetch_enabled() const { return prefetcher_.enabled(); }

  [[nodiscard]] const HwCounters& counters() const { return counters_; }
  [[nodiscard]] const PebsSampler& pebs() const { return pebs_; }
  [[nodiscard]] const StreamPrefetcher& prefetcher() const { return prefetcher_; }
  [[nodiscard]] const HierarchyConfig& config() const { return cfg_; }
  [[nodiscard]] memsim::TieredMemory& memory() { return mem_; }

 private:
  /// Everything below an L1 hit: L2/L3 probes, DRAM fetch, fills,
  /// writebacks, prefetch issue.
  AccessResult access_miss(std::uint64_t vaddr, bool is_store);
  /// Fetches one line from DRAM on behalf of a demand miss or a prefetch.
  memsim::TierId dram_fetch(std::uint64_t line_addr, bool demand);
  void handle_l2_eviction(const Eviction& ev);
  void handle_l3_eviction(const Eviction& ev);
  void writeback_to_dram(std::uint64_t line_addr);
  void issue_prefetches(std::uint64_t vaddr, bool is_store);

  HierarchyConfig cfg_;
  memsim::TieredMemory& mem_;
  SetAssocCache l1_;
  SetAssocCache l2_;
  SetAssocCache l3_;
  StreamPrefetcher prefetcher_;
  PebsSampler pebs_;
  HwCounters counters_;
  std::vector<PrefetchRequest> pf_queue_;  // reused scratch buffer
};

}  // namespace memdis::cachesim
