// CacheHierarchy: L1D + L2 (with stream prefetcher) + shared L3, backed by
// the N-tier memory of `memsim`. Every simulated load/store funnels
// through here; the hierarchy maintains the paper's hardware counters.
//
// Simplifications vs. Skylake-X (documented deviations):
//  * the hierarchy is modelled inclusive (Skylake's L3 is a victim cache);
//    this changes capacity slightly but none of the profiled ratios,
//  * a single hierarchy aggregates all threads (the workloads are modelled
//    as a single access stream with bandwidth-level parallelism applied in
//    the engine's time model).
#pragma once

#include <cstdint>
#include <vector>

#include "cachesim/cache.h"
#include "cachesim/counters.h"
#include "cachesim/pebs.h"
#include "cachesim/prefetcher.h"
#include "memsim/page_table.h"

namespace memdis::cachesim {

// Default sizes are a scaled-down Skylake-X: the workload inputs are run at
// roughly 1/100 of the paper's memory footprints to keep simulation
// turnaround fast, so the caches shrink proportionally (L2 128 KiB,
// L3 1 MiB) to preserve the working-set-to-cache ratios that shape the
// DRAM-level profiles (hot sets must still overflow the LLC).
struct HierarchyConfig {
  CacheConfig l1{32 * 1024, 8, 64};
  CacheConfig l2{128 * 1024, 8, 64};
  CacheConfig l3{1024 * 1024, 16, 64};
  PrefetcherConfig prefetcher{};
  std::uint64_t pebs_period = 1;
};

/// Where a demand access was satisfied.
enum class HitLevel : std::uint8_t { kL1, kL2, kL3, kDram };

struct AccessResult {
  HitLevel level = HitLevel::kL1;
  memsim::TierId tier = memsim::kNodeTier;  ///< valid when level == kDram
  bool covered_by_prefetch = false;         ///< first demand use of a prefetched line
};

class CacheHierarchy {
 public:
  CacheHierarchy(const HierarchyConfig& cfg, memsim::TieredMemory& mem);

  /// Simulates one demand access of up to one cacheline.
  AccessResult access(std::uint64_t vaddr, bool is_store);

  /// Flushes all dirty lines to DRAM (end-of-run traffic accounting).
  void drain();

  void set_prefetch_enabled(bool enabled) { prefetcher_.set_enabled(enabled); }
  [[nodiscard]] bool prefetch_enabled() const { return prefetcher_.enabled(); }

  [[nodiscard]] const HwCounters& counters() const { return counters_; }
  [[nodiscard]] const PebsSampler& pebs() const { return pebs_; }
  [[nodiscard]] const StreamPrefetcher& prefetcher() const { return prefetcher_; }
  [[nodiscard]] const HierarchyConfig& config() const { return cfg_; }
  [[nodiscard]] memsim::TieredMemory& memory() { return mem_; }

 private:
  /// Fetches one line from DRAM on behalf of a demand miss or a prefetch.
  memsim::TierId dram_fetch(std::uint64_t line_addr, bool demand);
  void handle_l2_eviction(const Eviction& ev);
  void handle_l3_eviction(const Eviction& ev);
  void writeback_to_dram(std::uint64_t line_addr);
  void issue_prefetches(std::uint64_t vaddr, bool is_store);

  HierarchyConfig cfg_;
  memsim::TieredMemory& mem_;
  SetAssocCache l1_;
  SetAssocCache l2_;
  SetAssocCache l3_;
  StreamPrefetcher prefetcher_;
  PebsSampler pebs_;
  HwCounters counters_;
  std::vector<PrefetchRequest> pf_queue_;  // reused scratch buffer
};

}  // namespace memdis::cachesim
