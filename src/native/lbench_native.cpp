#include "native/lbench_native.h"

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/contract.h"
#include "workloads/lbench.h"

namespace memdis::native {

NativeLbenchResult run_native_lbench(const NativeLbenchConfig& cfg) {
  expects(cfg.elements > 0 && cfg.threads > 0 && cfg.sweeps > 0,
          "native LBench needs positive sizes");
  constexpr double kAlpha = 0.25;
  std::vector<double> a(cfg.elements, 0.5);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < cfg.sweeps; ++s) {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(cfg.threads));
    const std::size_t chunk = (cfg.elements + cfg.threads - 1) / cfg.threads;
    for (int t = 0; t < cfg.threads; ++t) {
      const std::size_t lo = static_cast<std::size_t>(t) * chunk;
      const std::size_t hi = std::min(lo + chunk, cfg.elements);
      pool.emplace_back([&a, lo, hi, nflop = cfg.nflop] {
        for (std::size_t i = lo; i < hi; ++i) {
          // The paper's inner loop (Sec. 3.2), kept branch-free per element.
          double beta = a[i];
          if (nflop % 2 == 1) beta = a[i] + kAlpha;
          const std::uint32_t nloop = nflop / 2;
#pragma GCC unroll 16
          for (std::uint32_t k = 0; k < nloop; ++k) beta = beta * a[i] + kAlpha;
          a[i] = beta;
        }
      });
    }
    for (auto& th : pool) th.join();
  }
  const auto t1 = std::chrono::steady_clock::now();

  NativeLbenchResult res;
  res.seconds = std::chrono::duration<double>(t1 - t0).count();
  const double bytes =
      static_cast<double>(cfg.elements) * 16.0 * static_cast<double>(cfg.sweeps);
  res.data_gbps = res.seconds > 0 ? bytes / res.seconds * 1e-9 : 0.0;
  res.gflops = res.seconds > 0
                   ? static_cast<double>(cfg.elements) * cfg.nflop * cfg.sweeps / res.seconds *
                         1e-9
                   : 0.0;

  // Verify against the scalar reference recurrence from the simulated kernel.
  double expect = 0.5;
  for (std::size_t s = 0; s < cfg.sweeps; ++s)
    expect = workloads::Lbench::kernel_element(expect, cfg.nflop, kAlpha);
  res.verified = true;
  const std::size_t stride = std::max<std::size_t>(cfg.elements / 64, 1);
  for (std::size_t i = 0; i < cfg.elements; i += stride) {
    res.checksum += a[i];
    if (a[i] != expect) res.verified = false;
  }
  res.verified = res.verified && std::isfinite(res.checksum);
  return res;
}

}  // namespace memdis::native
