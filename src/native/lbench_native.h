// Native (host-machine) LBench runner.
//
// Runs the paper's interference kernel for real, with std::thread workers
// over a shared array. On the paper's testbed this is the injector pinned
// to the local socket; here it serves two purposes: validating that the
// simulated kernel computes the same values, and providing a real
// multithreaded traffic generator for users who want to pair this library
// with hardware counters on their own machines.
#pragma once

#include <cstdint>
#include <cstddef>

namespace memdis::native {

struct NativeLbenchConfig {
  std::size_t elements = 1 << 22;  ///< 32 MiB working array
  std::uint32_t nflop = 1;
  std::size_t sweeps = 4;
  int threads = 2;  ///< the paper uses 2 injector threads (Sec. 6)
};

struct NativeLbenchResult {
  double seconds = 0.0;
  double data_gbps = 0.0;   ///< achieved array traffic (read+write)
  double gflops = 0.0;
  double checksum = 0.0;    ///< sum over a sample of elements
  bool verified = false;    ///< values match the scalar reference recurrence
};

/// Executes the kernel; deterministic numerics, wall-clock timing.
[[nodiscard]] NativeLbenchResult run_native_lbench(const NativeLbenchConfig& cfg);

}  // namespace memdis::native
