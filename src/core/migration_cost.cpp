#include "core/migration_cost.h"

#include "common/contract.h"
#include "common/units.h"

namespace memdis::core {

MigrationCostModel::MigrationCostModel(const memsim::MachineConfig& machine,
                                       std::vector<double> link_loi)
    : machine_(machine), link_loi_(std::move(link_loi)) {
  machine_.topology.validate();
  link_loi_.resize(static_cast<std::size_t>(machine_.num_tiers()), 0.0);
  links_.reserve(link_loi_.size());
  for (memsim::TierId t = 0; t < machine_.num_tiers(); ++t) {
    if (machine_.topology.is_fabric(t)) {
      memsim::LinkModel link(machine_.tier(t));
      link.set_background_loi(link_loi_[static_cast<std::size_t>(t)]);
      links_.emplace_back(std::move(link));
    } else {
      links_.emplace_back(std::nullopt);
    }
  }
}

double MigrationCostModel::link_loi(memsim::TierId t) const {
  expects(machine_.topology.valid_tier(t), "tier id out of range");
  return link_loi_[static_cast<std::size_t>(t)];
}

double MigrationCostModel::access_latency_s(memsim::TierId t) const {
  expects(machine_.topology.valid_tier(t), "tier id out of range");
  const auto& l = links_[static_cast<std::size_t>(t)];
  return ns_to_s(l ? l->effective_latency_ns(0.0) : machine_.tier(t).latency_ns);
}

double MigrationCostModel::effective_link_bandwidth_gbps(memsim::TierId t) const {
  expects(machine_.topology.valid_tier(t), "tier id out of range");
  const auto& l = links_[static_cast<std::size_t>(t)];
  expects(l.has_value(), "tier has no fabric link");
  return l->effective_data_bandwidth_gbps(0.0);
}

double MigrationCostModel::raw_link_bandwidth_gbps(memsim::TierId t) const {
  expects(machine_.topology.valid_tier(t), "tier id out of range");
  const auto& spec = machine_.tier(t);
  expects(spec.link.has_value(), "tier has no fabric link");
  return spec.link->data_bandwidth_gbps();
}

double MigrationCostModel::move_cost_s(memsim::TierId src, memsim::TierId dst) const {
  expects(machine_.topology.valid_tier(src) && machine_.topology.valid_tier(dst),
          "tier id out of range");
  const auto bytes = static_cast<double>(machine_.page_bytes);
  double cost = 0.0;
  for (const memsim::TierId seg : machine_.topology.path(src, dst)) {
    const auto& link = links_[static_cast<std::size_t>(seg)];
    expects(link.has_value(), "migration path crosses a tier without a link");
    cost += bytes / gbps_to_bytes_per_sec(link->effective_data_bandwidth_gbps(0.0)) +
            ns_to_s(link->effective_latency_ns(0.0));
  }
  return cost;
}

double MigrationCostModel::benefit_s_per_epoch(memsim::TierId src, memsim::TierId dst,
                                               std::uint64_t heat,
                                               std::uint64_t sample_period) const {
  const double overlap = machine_.mlp * static_cast<double>(machine_.threads);
  const double accesses =
      static_cast<double>(heat) * static_cast<double>(sample_period == 0 ? 1 : sample_period);
  return accesses * (access_latency_s(src) - access_latency_s(dst)) / overlap;
}

MovePlan MigrationCostModel::plan(memsim::TierId src, memsim::TierId dst, std::uint64_t heat,
                                  std::uint64_t horizon_epochs,
                                  std::uint64_t sample_period) const {
  MovePlan p;
  p.src = src;
  p.dst = dst;
  p.heat = heat;
  p.segments = segments(src, dst);
  p.cost_s = move_cost_s(src, dst);
  p.benefit_s_per_epoch = benefit_s_per_epoch(src, dst, heat, sample_period);
  p.value_s = static_cast<double>(horizon_epochs) * p.benefit_s_per_epoch - p.cost_s;
  return p;
}

double MigrationCostModel::scheduled_access_latency_s(memsim::TierId t,
                                                      const memsim::LoiSchedule& schedule,
                                                      std::uint64_t from_epoch,
                                                      std::uint64_t window_epochs) const {
  expects(machine_.topology.valid_tier(t), "tier id out of range");
  const memsim::LoiWaveform* wave = schedule.waveform(t);
  if (!wave || window_epochs == 0) return access_latency_s(t);
  memsim::LinkModel link(machine_.tier(t));
  double sum = 0.0;
  for (std::uint64_t d = 0; d < window_epochs; ++d) {
    link.set_background_loi(wave->value_at(from_epoch + d));
    sum += ns_to_s(link.effective_latency_ns(0.0));
  }
  return sum / static_cast<double>(window_epochs);
}

double MigrationCostModel::scheduled_link_bandwidth_gbps(memsim::TierId t,
                                                         const memsim::LoiSchedule& schedule,
                                                         std::uint64_t from_epoch,
                                                         std::uint64_t window_epochs) const {
  const memsim::LoiWaveform* wave = schedule.waveform(t);
  if (!wave || window_epochs == 0) return effective_link_bandwidth_gbps(t);
  expects(machine_.topology.valid_tier(t) && machine_.tier(t).is_fabric(),
          "tier has no fabric link");
  memsim::LinkModel link(machine_.tier(t));
  double sum = 0.0;
  for (std::uint64_t d = 0; d < window_epochs; ++d) {
    link.set_background_loi(wave->value_at(from_epoch + d));
    sum += link.effective_data_bandwidth_gbps(0.0);
  }
  return sum / static_cast<double>(window_epochs);
}

MovePlan MigrationCostModel::plan_under_schedule(memsim::TierId src, memsim::TierId dst,
                                                 std::uint64_t heat,
                                                 std::uint64_t horizon_epochs,
                                                 std::uint64_t sample_period,
                                                 const memsim::LoiSchedule& schedule,
                                                 std::uint64_t from_epoch,
                                                 std::uint64_t window_epochs) const {
  return plan_with_latencies(
      src, dst, heat, horizon_epochs, sample_period,
      scheduled_access_latency_s(src, schedule, from_epoch, window_epochs),
      scheduled_access_latency_s(dst, schedule, from_epoch, window_epochs));
}

MovePlan MigrationCostModel::plan_with_latencies(memsim::TierId src, memsim::TierId dst,
                                                 std::uint64_t heat,
                                                 std::uint64_t horizon_epochs,
                                                 std::uint64_t sample_period,
                                                 double src_latency_s,
                                                 double dst_latency_s) const {
  MovePlan p;
  p.src = src;
  p.dst = dst;
  p.heat = heat;
  p.segments = segments(src, dst);
  p.cost_s = move_cost_s(src, dst);
  const double overlap = machine_.mlp * static_cast<double>(machine_.threads);
  const double accesses =
      static_cast<double>(heat) * static_cast<double>(sample_period == 0 ? 1 : sample_period);
  p.benefit_s_per_epoch = accesses * (src_latency_s - dst_latency_s) / overlap;
  p.value_s = static_cast<double>(horizon_epochs) * p.benefit_s_per_epoch - p.cost_s;
  return p;
}

}  // namespace memdis::core
