// Level-3 interference quantification (Sec. 3.2 and Sec. 6).
//
// Three instruments:
//  * LbenchCalibration — maps LBench's flops-per-element knob to the
//    generated Level-of-Interference (% of peak link traffic), by running
//    the simulated kernel and measuring link traffic (Fig. 11 left/middle).
//  * interference_coefficient_at — the IC of a given offered link load:
//    the relative runtime of a 1-thread, 1-flop LBench probe, which is
//    latency-bound and therefore tracks the link's queue-delay multiplier.
//  * SensitivityStudy / InterferenceQuantifier helpers — an application's
//    relative performance under swept background LoI (Fig. 10) and the IC
//    it induces on co-runners (Fig. 11 right).
#pragma once

#include <vector>

#include "core/experiment.h"
#include "memsim/loi_schedule.h"
#include "memsim/machine.h"
#include "workloads/workload.h"

namespace memdis::core {

/// The paper's LBench kernel is a serially dependent FMA chain, so its flop
/// rate is latency-limited well below machine peak; 2 Gflop/s per thread
/// reproduces the testbed's saturation point (traffic saturates for
/// intensities below ~8 flops/element, Fig. 11 middle).
inline constexpr double kLbenchFlopRatePerThreadGflops = 2.0;

/// Link traffic (GB/s, protocol overhead included) that an LBench instance
/// with `threads` threads and `nflop` flops/element *offers* — unconstrained
/// by the link itself, so it can exceed capacity (queueing territory).
[[nodiscard]] double lbench_offered_traffic_gbps(const memsim::MachineConfig& m, int threads,
                                                 std::uint32_t nflop);

/// Offered utilization (traffic / capacity; may exceed 1).
[[nodiscard]] double lbench_offered_utilization(const memsim::MachineConfig& m, int threads,
                                                std::uint32_t nflop);

/// One calibration sample.
struct LoiCalibrationPoint {
  std::uint32_t nflop = 1;
  double offered_loi = 0.0;   ///< offered traffic as % of capacity (uncapped)
  double measured_loi = 0.0;  ///< PCM-style measured traffic as % (≤ 100)
};

/// Calibration table built by sweeping nflop (Fig. 11 left validates that
/// measured LoI is linear in the configured intensity).
class LbenchCalibration {
 public:
  LbenchCalibration(const memsim::MachineConfig& machine, int threads);

  /// The nflop value whose offered traffic best matches `target_loi` (%).
  [[nodiscard]] std::uint32_t nflop_for_loi(double target_loi) const;

  /// Offered LoI (%) produced by a given nflop.
  [[nodiscard]] double loi_for_nflop(std::uint32_t nflop) const;

  [[nodiscard]] const std::vector<LoiCalibrationPoint>& points() const { return points_; }

 private:
  memsim::MachineConfig machine_;
  int threads_;
  std::vector<LoiCalibrationPoint> points_;
};

/// Interference coefficient at a given *offered* background utilization
/// (1.0 = link fully subscribed). IC = T_probe(load) / T_probe(idle); the
/// probe is latency-bound so this equals the link queue-delay multiplier.
[[nodiscard]] double interference_coefficient_at(const memsim::MachineConfig& m,
                                                 double offered_utilization);

/// Per-link variant: the IC a probe bound to tier `t` sees when that tier's
/// link carries the given offered background utilization. Lets asymmetric
/// studies quantify each pool independently (contract violation for local
/// tiers — they have no link to interfere on).
[[nodiscard]] double interference_coefficient_at(const memsim::MachineConfig& m,
                                                 memsim::TierId t,
                                                 double offered_utilization);

/// Time-varying variant: the IC a probe bound to tier `t` sees at epoch
/// `epoch` of a background-LoI waveform (the waveform's percentage is the
/// offered background utilization). Quantifies bursty fabrics epoch by
/// epoch instead of by one static level.
[[nodiscard]] double interference_coefficient_at(const memsim::MachineConfig& m,
                                                 memsim::TierId t,
                                                 const memsim::LoiWaveform& wave,
                                                 std::uint64_t epoch);

/// Per-phase and aggregate IC induced by an application run (Fig. 11 right:
/// the spread over phases is reported as min/max).
struct InducedInterference {
  double ic_mean = 1.0;  ///< time-weighted over phases
  double ic_min = 1.0;
  double ic_max = 1.0;
};
[[nodiscard]] InducedInterference induced_interference(const RunOutput& run,
                                                       const memsim::MachineConfig& m);

/// One point of an application's interference sensitivity curve (Fig. 10).
struct SensitivityPoint {
  double loi = 0.0;                   ///< background LoI (%)
  double relative_performance = 1.0;  ///< T(LoI=0) / T(LoI)
};

/// Sweeps background LoI for `workload` at the given remote capacity ratio.
/// The LoI=0 run is included as the baseline (first element). When
/// `phase_tag` is non-empty, only that phase's runtime is compared — the
/// paper's Fig. 10 reports the main compute phase (p2) of each app.
[[nodiscard]] std::vector<SensitivityPoint> sensitivity_sweep(
    workloads::Workload& workload, const RunConfig& base, double remote_capacity_ratio,
    const std::vector<double>& lois, const std::string& phase_tag = {});

/// Linear interpolation over a sensitivity curve (used by the scheduler
/// study to cost jobs under arbitrary interference levels).
[[nodiscard]] double interpolate_sensitivity(const std::vector<SensitivityPoint>& curve,
                                             double loi);

}  // namespace memdis::core
