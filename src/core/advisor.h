// Advisor: turns Level-2 measurements into the optimization guidance of
// Sec. 5 — compare each phase's remote access ratio against the two
// reference points (capacity ratio R_cap and bandwidth ratio R_bw) and
// prioritize the dominant phase with unmatched access distribution.
#pragma once

#include <string>
#include <vector>

#include "core/profiler.h"

namespace memdis::core {

/// Where a phase's remote access ratio falls relative to the references.
enum class PlacementVerdict {
  kBalanced,            ///< at or below both references: little tuning space
  kAboveBandwidthRef,   ///< above R_bw: the slow tier limits memory performance
  kAboveCapacityRef,    ///< above R_cap too: hot data is disproportionately remote
};

[[nodiscard]] const char* verdict_name(PlacementVerdict v);

struct PhaseAdvice {
  std::string tag;
  double weight = 0.0;
  double remote_access_ratio = 0.0;
  PlacementVerdict verdict = PlacementVerdict::kBalanced;
  /// Tuning priority: runtime weight × excess above the tightest violated
  /// reference. Zero for balanced phases.
  double priority = 0.0;
  std::string recommendation;
};

struct AdvisorReport {
  double r_cap_remote = 0.0;  ///< capacity reference (lower tuning bound)
  double r_bw_remote = 0.0;   ///< bandwidth reference (upper tuning bound)
  std::vector<PhaseAdvice> phases;
  /// Index into `phases` of the highest-priority phase, or -1 when no phase
  /// needs tuning ("users should not spend efforts optimizing placement").
  int dominant_phase = -1;
  std::string summary;
};

/// Analyzes a Level-2 profile against its machine references.
[[nodiscard]] AdvisorReport advise(const Level2Profile& profile);

/// Digest of a migration runtime's executed plan (the `memdis plan` dump):
/// how the per-scan link budgets were spent and whether staging carried a
/// meaningful share of the traffic.
struct MigrationAdvice {
  std::uint64_t moves = 0;           ///< executed moves incl. demotions
  std::uint64_t staged_moves = 0;    ///< first hops of multi-hop plans
  std::uint64_t demotions = 0;
  double transfer_cost_s = 0.0;      ///< priced cost of all moves
  /// Pages that crossed each fabric segment, indexed by TierId (local
  /// tiers stay zero) — the busiest segment is the budget to raise first.
  std::vector<std::uint64_t> segment_pages;
  memsim::TierId busiest_segment = -1;  ///< -1 when nothing moved
  std::string summary;
};

class MigrationRuntime;  // core/migration.h

/// Summarizes an executed migration plan against its machine's topology.
[[nodiscard]] MigrationAdvice advise_migration(const MigrationRuntime& runtime,
                                               const memsim::MachineConfig& machine);

}  // namespace memdis::core
