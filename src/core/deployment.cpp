#include "core/deployment.h"

#include <algorithm>
#include <cmath>

#include "common/contract.h"
#include "common/units.h"
#include "core/roofline.h"

namespace memdis::core {

JobRequirements JobRequirements::from_profile(const Level1Profile& l1, double scale_factor,
                                              double comm_fraction) {
  expects(scale_factor > 0, "scale factor must be positive");
  JobRequirements job;
  // Work and traffic scale with the problem; use the measured totals.
  double flops = 0.0;
  double traffic = 0.0;
  for (const auto& phase : l1.phases) {
    flops += phase.gflops_rate * 1e9 * phase.time_s;
    traffic += gbps_to_bytes_per_sec(phase.dram_gbps) * phase.time_s;
  }
  job.total_flops = flops * scale_factor;
  job.dram_traffic_bytes = traffic * scale_factor;
  job.footprint_bytes = static_cast<double>(l1.peak_rss_bytes) * scale_factor;
  job.curve_samples = l1.scaling_curve.sample(33);
  job.prefetch_coverage = l1.prefetch.coverage;
  job.comm_seconds_base = comm_fraction * l1.elapsed_s * scale_factor;
  job.base_nodes = 1.0;
  return job;
}

DeploymentPlanner::DeploymentPlanner(const PlannerConfig& cfg) : cfg_(cfg) {
  expects(cfg.local_capacity_bytes > 0, "planner needs per-node local capacity");
}

double DeploymentPlanner::curve_at(const JobRequirements& job,
                                   double footprint_fraction) const {
  const auto& ys = job.curve_samples;
  if (ys.empty()) return footprint_fraction;  // assume uniform when unknown
  const double pos = std::clamp(footprint_fraction, 0.0, 1.0) *
                     static_cast<double>(ys.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, ys.size() - 1);
  const double f = pos - static_cast<double>(lo);
  return ys[lo] * (1.0 - f) + ys[hi] * f;
}

DeploymentOption DeploymentPlanner::cost_out(const JobRequirements& job, int nodes) const {
  DeploymentOption opt;
  opt.nodes = nodes;
  const double n = nodes;
  const double per_node_footprint = job.footprint_bytes / n;
  const auto local = static_cast<double>(cfg_.local_capacity_bytes);
  const auto pool = static_cast<double>(cfg_.pool_capacity_bytes);

  if (per_node_footprint > local + pool) {
    opt.feasible = false;
    return opt;  // out of memory even with the pool share
  }
  opt.feasible = true;
  opt.needs_pool = per_node_footprint > local;
  const double local_fraction = std::min(local / per_node_footprint, 1.0);
  opt.pooled_fraction = 1.0 - local_fraction;
  // Best-case placement: the hottest pages go local, so remote accesses are
  // the tail of the scaling curve beyond the local share.
  opt.remote_access_ratio = 1.0 - curve_at(job, local_fraction);

  const auto& m = cfg_.machine;
  const double t_flop = job.total_flops / n / (m.peak_gflops * 1e9);
  const double b_eff =
      gbps_to_bytes_per_sec(effective_bandwidth_gbps(m, opt.remote_access_ratio));
  const double t_mem = job.dram_traffic_bytes / n / b_eff;
  // Latency exposure: the share of remote traffic not covered by prefetch
  // pays the extra remote latency, amortized over line transfers.
  const double extra_lat_s = ns_to_s(m.pool_tier().latency_ns - m.node_tier().latency_ns);
  const double uncovered_lines = job.dram_traffic_bytes / n / 64.0 *
                                 opt.remote_access_ratio *
                                 (1.0 - job.prefetch_coverage);
  const double t_lat = uncovered_lines * extra_lat_s / (m.mlp * m.threads);
  const double t_comm =
      job.comm_seconds_base * std::pow(n / job.base_nodes, job.comm_scaling_exponent) / n;
  opt.est_runtime_s = std::max(t_flop, t_mem) + t_lat + t_comm;
  opt.node_seconds = opt.est_runtime_s * n;
  return opt;
}

std::vector<DeploymentOption> DeploymentPlanner::evaluate(const JobRequirements& job,
                                                          int max_nodes) const {
  expects(max_nodes >= 1, "need at least one node");
  std::vector<DeploymentOption> options;
  options.reserve(static_cast<std::size_t>(max_nodes));
  for (int n = 1; n <= max_nodes; ++n) options.push_back(cost_out(job, n));
  return options;
}

int DeploymentPlanner::min_nodes_local_only(const JobRequirements& job) const {
  return static_cast<int>(std::ceil(job.footprint_bytes /
                                    static_cast<double>(cfg_.local_capacity_bytes)));
}

DeploymentOption DeploymentPlanner::recommend(const JobRequirements& job, int max_nodes,
                                              double max_slowdown) const {
  expects(max_slowdown >= 1.0, "slowdown bound below 1 is unsatisfiable");
  const auto options = evaluate(job, max_nodes);
  double best_runtime = 0.0;
  bool any = false;
  for (const auto& opt : options) {
    if (!opt.feasible) continue;
    if (!any || opt.est_runtime_s < best_runtime) best_runtime = opt.est_runtime_s;
    any = true;
  }
  expects(any, "no feasible deployment within max_nodes");
  const DeploymentOption* pick = nullptr;
  for (const auto& opt : options) {
    if (!opt.feasible || opt.est_runtime_s > best_runtime * max_slowdown) continue;
    if (pick == nullptr || opt.node_seconds < pick->node_seconds) pick = &opt;
  }
  return *pick;
}

}  // namespace memdis::core
