#include "core/experiment.h"

#include "common/contract.h"
#include "common/units.h"
#include "core/epoch_profile.h"

namespace memdis::core {

std::uint64_t RunOutput::resident_fabric_bytes() const {
  std::uint64_t sum = 0;
  for (std::size_t t = 1; t < resident_bytes.size(); ++t) sum += resident_bytes[t];
  return sum;
}

double RunOutput::remote_access_ratio() const {
  const auto total = static_cast<double>(counters.dram_bytes_total());
  if (total == 0) return 0.0;
  return static_cast<double>(counters.fabric_dram_bytes()) / total;
}

double RunOutput::remote_capacity_ratio() const {
  const auto total = static_cast<double>(resident_node_bytes() + resident_fabric_bytes());
  if (total == 0) return 0.0;
  return static_cast<double>(resident_fabric_bytes()) / total;
}

double RunOutput::arithmetic_intensity() const {
  const auto bytes = static_cast<double>(counters.dram_bytes_total());
  if (bytes == 0) return 0.0;
  return static_cast<double>(flops) / bytes;
}

double RunOutput::mean_offered_link_utilization(const memsim::MachineConfig& m) const {
  if (elapsed_s <= 0) return 0.0;
  const double remote_gbps = bytes_per_sec_to_gbps(
      static_cast<double>(counters.fabric_dram_bytes()) / elapsed_s);
  return remote_gbps * m.pool_link().protocol_overhead / m.pool_link().traffic_capacity_gbps;
}

std::vector<double> spill_capacity_fractions(const memsim::MachineConfig& machine,
                                             double ratio) {
  if (machine.num_tiers() < 3) return {};
  return {1.0 - ratio, ratio / 2.0};
}

memsim::MachineConfig machine_with_spill(const memsim::MachineConfig& machine, double ratio,
                                         std::uint64_t footprint_bytes) {
  const auto fractions = spill_capacity_fractions(machine, ratio);
  if (fractions.empty()) return machine.with_remote_capacity_ratio(ratio, footprint_bytes);
  return machine.with_capacity_fractions(fractions, footprint_bytes);
}

namespace {

/// Full simulation of one configured engine: the reference path every run
/// takes when repricing is off or the run is ineligible, and the capture
/// path that records an EpochProfile when it is on.
RunOutput run_live(workloads::Workload& workload, const sim::EngineConfig& ecfg,
                   bool prefetch_enabled) {
  sim::Engine eng(ecfg);
  eng.set_prefetch_enabled(prefetch_enabled);

  RunOutput out;
  out.result = workload.run(eng);
  eng.finish();

  out.elapsed_s = eng.elapsed_seconds();
  out.flops = eng.total_flops();
  out.counters = eng.counters();
  out.phases = eng.phases();
  out.epochs = eng.epochs();
  out.page_accesses = eng.page_access_histogram();
  out.peak_rss_bytes = eng.peak_rss_bytes();
  // Workload arrays free themselves when run() returns, so the end-of-run
  // numa snapshot would read zero; report the split at peak residency (what
  // a numa_maps sampler would have seen while the job ran).
  std::uint64_t best = 0;
  for (const auto& epoch : out.epochs) {
    const std::uint64_t total = epoch.resident_total_bytes();
    if (total >= best) {
      best = total;
      out.resident_bytes = epoch.resident_bytes;
    }
  }
  out.allocations = eng.allocations();
  return out;
}

}  // namespace

RunOutput run_workload(workloads::Workload& workload, const RunConfig& cfg) {
  sim::EngineConfig ecfg;
  ecfg.machine = cfg.machine;
  if (cfg.capacity_fractions) {
    ecfg.machine =
        cfg.machine.with_capacity_fractions(*cfg.capacity_fractions, workload.footprint_bytes());
  } else if (cfg.remote_capacity_ratio) {
    ecfg.machine = cfg.machine.with_remote_capacity_ratio(*cfg.remote_capacity_ratio,
                                                          workload.footprint_bytes());
  }
  ecfg.hierarchy = cfg.hierarchy;
  ecfg.background_loi = cfg.background_loi;
  ecfg.background_loi_per_tier = cfg.background_loi_per_tier;
  ecfg.loi_schedule = cfg.loi_schedule;
  ecfg.link_model = cfg.link_model;

  // Epoch-profile memoization (docs/REPRICE.md): when enabled, runs whose
  // functional half (workload id + shaped machine + hierarchy + prefetch
  // switch) was already captured are re-priced in O(epochs) under this
  // config's timing half. Eligibility mirrors fast-forward's gates: the
  // workload must publish a param-complete functional id, and fast-forward
  // must be off (its synthesis reads durations — timing — back into
  // control flow). Engines with migration runtimes or epoch callbacks are
  // built by scenario code directly and never pass through here, so those
  // runs fall back to full simulation silently and correctly.
  if (reprice_enabled() && !sim::fast_forward_default()) {
    const std::string id = workload.functional_id();
    if (!id.empty()) {
      const std::string key =
          functional_key(id, ecfg.machine, cfg.hierarchy, cfg.prefetch_enabled);
      TimingConfig timing;
      timing.background_loi = cfg.background_loi;
      timing.background_loi_per_tier = cfg.background_loi_per_tier;
      timing.loi_schedule = cfg.loi_schedule;
      timing.link_model = cfg.link_model;
      if (const auto profile = find_epoch_profile(key)) return reprice(*profile, timing);
      RunOutput out = run_live(workload, ecfg, cfg.prefetch_enabled);
      store_epoch_profile(key, EpochProfile{ecfg.machine, ecfg.stall_weight, out});
      return out;
    }
  }
  return run_live(workload, ecfg, cfg.prefetch_enabled);
}

double phase_remote_access_ratio(const sim::PhaseRecord& phase) {
  const auto total = static_cast<double>(phase.counters.dram_bytes_total());
  if (total == 0) return 0.0;
  return static_cast<double>(phase.counters.fabric_dram_bytes()) / total;
}

double phase_arithmetic_intensity(const sim::PhaseRecord& phase) {
  const auto bytes = static_cast<double>(phase.counters.dram_bytes_total());
  if (bytes == 0) return 0.0;
  return static_cast<double>(phase.flops) / bytes;
}

}  // namespace memdis::core
