// Hardware-prefetch suitability analysis (Sec. 4.2, Fig. 8).
//
// Implements the paper's Eq. 1 (Accuracy) and Eq. 2 (Coverage) from the
// simulated L2 counters, plus the excess-traffic and performance-gain
// metrics that require a paired run with the prefetcher disabled
// (MSR 0x1a4 analogue).
#pragma once

#include "cachesim/counters.h"

namespace memdis::core {

struct PrefetchMetrics {
  double accuracy = 0.0;   ///< Eq. 1: useful prefetches / issued prefetches
  double coverage = 0.0;   ///< Eq. 2: prefetched fills / demand-relevant fills
  double excess_traffic = 0.0;   ///< ΔDRAM-traffic (on vs. off) as a fraction
  double performance_gain = 0.0; ///< T_off / T_on − 1
};

/// Accuracy per Eq. 1: (PF_L2_DATA_RD + PF_L2_RFO − USELESS_HWPF) / (PF_L2_DATA_RD + PF_L2_RFO).
[[nodiscard]] double prefetch_accuracy(const cachesim::HwCounters& c);

/// Coverage per Eq. 2: (PF_L2_DATA_RD + PF_L2_RFO − USELESS_HWPF) / (L2_LINES_IN − USELESS_HWPF).
[[nodiscard]] double prefetch_coverage(const cachesim::HwCounters& c);

/// Full metric set from a prefetch-on run and its prefetch-off twin.
[[nodiscard]] PrefetchMetrics analyze_prefetch(const cachesim::HwCounters& with_pf,
                                               double elapsed_with_pf,
                                               const cachesim::HwCounters& without_pf,
                                               double elapsed_without_pf);

}  // namespace memdis::core
