// Epoch-profile memoization: the functional/timing split that re-prices a
// sweep's interference axes in O(epochs) instead of O(accesses).
//
// Every RunConfig factors into two halves:
//
//   functional — everything that determines the access stream and cache-
//     state evolution: the workload (app, scale, seed, variant — pinned by
//     Workload::functional_id), the shaped machine (capacity split/ratio,
//     fabric topology), the cache hierarchy, and the prefetcher switch.
//   timing — everything the links charge but that cannot feed back into
//     the stream: background LoI (scalar and per-tier), LoI schedules,
//     and the link model (LinkModel closed form vs. QueueModel).
//
// The separation is real because epoch boundaries close on *demand access
// counts* (plus phase markers and finish), never on simulated time, and —
// absent a migration runtime or epoch callback, which only scenario code
// wires up below this layer — nothing reads a duration back into a
// placement or cache decision. So one full simulation per functional key
// captures per-epoch counter deltas (an EpochProfile), and every other
// grid point sharing the key is *re-priced*: the per-link cost model
// (sim::price_epoch — the very implementation close_epoch runs) is folded
// over the profile's epochs under the new link state. Under the queue
// model the repricer replays QueueModel::observe per epoch, so windowed
// estimators see the same history; at zero bulk this is bit-exact to the
// closed form per the PR 6 compat guarantee. Re-priced artifacts are
// byte-identical to full simulation for every eligible point — enforced
// by the determinism suite and the fig06 golden gate. See docs/REPRICE.md.
//
// Eligibility is gated exactly like fast-forward: a run opts in only via
// core::run_workload with repricing enabled, a workload that publishes a
// functional id, and fast-forward off. Migration runtimes and epoch
// callbacks never reach run_workload (scenario code builds those engines
// directly), so ineligible points fall back to full simulation silently
// and correctly.
#pragma once

#include <memory>
#include <string>

#include "core/experiment.h"

namespace memdis::core {

/// The timing half of a RunConfig: knobs that change what the links charge
/// but cannot alter the access stream, placement, or counters.
struct TimingConfig {
  double background_loi = 0.0;
  std::vector<double> background_loi_per_tier;
  memsim::LoiSchedule loi_schedule;
  memsim::LinkModelKind link_model = memsim::LinkModelKind::kLoi;
};

/// One full simulation's capture for a functional key: the shaped machine
/// it ran on plus the complete RunOutput. The output's functional content
/// (counters, per-epoch deltas, residency, host numerics) is valid for
/// *any* timing config sharing the key; its timing content is whatever the
/// capture run happened to price and is recomputed by reprice().
struct EpochProfile {
  memsim::MachineConfig machine;  ///< shaped machine (after capacity split)
  double stall_weight = 1.0;      ///< EngineConfig::stall_weight of the capture
  RunOutput output;               ///< captured full-simulation output
};

/// Process-wide repricing switch (default off), mirroring the fast-forward
/// and link-model defaults. `memdis sweep --reprice on|off` sets it.
[[nodiscard]] bool reprice_enabled();
void set_reprice_enabled(bool on);

/// Counters since the last clear_reprice_cache(): how many runs captured a
/// profile vs. were re-priced from one. Bench/test instrumentation.
struct RepriceStats {
  std::uint64_t captures = 0;
  std::uint64_t reprices = 0;
};
[[nodiscard]] RepriceStats reprice_stats();

/// Drops every cached profile and resets the stats. Tests and benches call
/// this around measurements so process-global state cannot leak between
/// them (profiles are keyed completely, so leaking is a memory concern,
/// never a correctness one).
void clear_reprice_cache();
[[nodiscard]] std::size_t reprice_cache_size();

/// Serializes the functional half of a run into the cache key: the
/// workload's functional id plus every stream-shaping field of the shaped
/// machine, the cache hierarchy, and the prefetcher switch. Doubles are
/// rendered with format_double (exact round-trip), so distinct configs
/// cannot collide.
[[nodiscard]] std::string functional_key(const std::string& workload_id,
                                         const memsim::MachineConfig& shaped_machine,
                                         const cachesim::HierarchyConfig& hierarchy,
                                         bool prefetch_enabled);

/// Cache lookup/insert. store keeps the first profile for a key (captures
/// race benignly: both ran the same full simulation).
[[nodiscard]] std::shared_ptr<const EpochProfile> find_epoch_profile(const std::string& key);
void store_epoch_profile(const std::string& key, EpochProfile profile);

/// Re-prices a captured profile under a new timing config: rebuilds the
/// per-tier LinkModels/QueueModels exactly as the engine's constructor
/// does, folds sim::price_epoch over the profile's epochs (stepping the
/// LoI schedule and replaying queue observes at each close), and
/// reconstructs elapsed time and phase times from the same running sums
/// the engine computes. O(epochs); bit-identical to a full simulation of
/// the same functional+timing config.
[[nodiscard]] RunOutput reprice(const EpochProfile& profile, const TimingConfig& timing);

}  // namespace memdis::core
