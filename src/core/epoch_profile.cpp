#include "core/epoch_profile.h"

#include <atomic>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/artifact_format.h"
#include "common/contract.h"

namespace memdis::core {

namespace {

std::atomic<bool> g_reprice_enabled{false};
std::atomic<std::uint64_t> g_captures{0};
std::atomic<std::uint64_t> g_reprices{0};

std::mutex g_cache_mutex;
std::unordered_map<std::string, std::shared_ptr<const EpochProfile>>& cache() {
  static std::unordered_map<std::string, std::shared_ptr<const EpochProfile>> c;
  return c;
}

}  // namespace

bool reprice_enabled() { return g_reprice_enabled.load(std::memory_order_relaxed); }
void set_reprice_enabled(bool on) {
  g_reprice_enabled.store(on, std::memory_order_relaxed);
}

RepriceStats reprice_stats() {
  return {g_captures.load(std::memory_order_relaxed),
          g_reprices.load(std::memory_order_relaxed)};
}

void clear_reprice_cache() {
  const std::lock_guard<std::mutex> lock(g_cache_mutex);
  cache().clear();
  g_captures.store(0, std::memory_order_relaxed);
  g_reprices.store(0, std::memory_order_relaxed);
}

std::size_t reprice_cache_size() {
  const std::lock_guard<std::mutex> lock(g_cache_mutex);
  return cache().size();
}

std::string functional_key(const std::string& workload_id,
                           const memsim::MachineConfig& m,
                           const cachesim::HierarchyConfig& h, bool prefetch_enabled) {
  std::string key = workload_id;
  key += "|machine:";
  key += format_double(m.peak_gflops);
  key += ',';
  key += std::to_string(m.threads);
  key += ',';
  key += format_double(m.mlp);
  key += ',';
  key += std::to_string(m.page_bytes);
  key += ',';
  key += std::to_string(m.cacheline_bytes);
  // Every tier/link field is keyed, conservatively including pure pricing
  // parameters: the fabric *shape* is functional (capacities steer spill
  // and placement), and over-keying can only cost a duplicate capture,
  // never a wrong reuse.
  for (memsim::TierId t = 0; t < m.num_tiers(); ++t) {
    const auto& spec = m.tier(t);
    key += "|tier:";
    key += spec.name;
    key += ',';
    key += std::to_string(spec.capacity_bytes);
    key += ',';
    key += format_double(spec.bandwidth_gbps);
    key += ',';
    key += format_double(spec.latency_ns);
    key += ',';
    key += std::to_string(spec.upstream);
    if (spec.link) {
      const auto& l = *spec.link;
      key += ",link:";
      key += format_double(l.traffic_capacity_gbps);
      key += ',';
      key += format_double(l.protocol_overhead);
      key += ',';
      key += format_double(l.interference_share);
      key += ',';
      key += format_double(l.queue_weight);
      key += ',';
      key += format_double(l.overload_slope);
      key += ',';
      key += format_double(l.max_latency_multiplier);
      key += ',';
      key += std::to_string(l.queue_window_epochs);
    }
  }
  const auto cache_cfg = [&key](const char* tag, const cachesim::CacheConfig& c) {
    key += tag;
    key += std::to_string(c.size_bytes);
    key += ',';
    key += std::to_string(c.ways);
    key += ',';
    key += std::to_string(c.line_bytes);
  };
  cache_cfg("|l1:", h.l1);
  cache_cfg("|l2:", h.l2);
  cache_cfg("|l3:", h.l3);
  const auto& p = h.prefetcher;
  key += "|pf:";
  key += std::to_string(p.enabled ? 1 : 0);
  key += ',';
  key += std::to_string(p.num_streams);
  key += ',';
  key += std::to_string(p.max_degree);
  key += ',';
  key += std::to_string(p.train_threshold);
  key += ',';
  key += std::to_string(p.page_bytes);
  key += ',';
  key += std::to_string(p.line_bytes);
  key += ',';
  key += format_double(p.throttle_low);
  key += ',';
  key += format_double(p.throttle_high);
  key += "|pebs:";
  key += std::to_string(h.pebs_period);
  key += prefetch_enabled ? "|prefetch:on" : "|prefetch:off";
  return key;
}

std::shared_ptr<const EpochProfile> find_epoch_profile(const std::string& key) {
  const std::lock_guard<std::mutex> lock(g_cache_mutex);
  const auto it = cache().find(key);
  return it == cache().end() ? nullptr : it->second;
}

void store_epoch_profile(const std::string& key, EpochProfile profile) {
  auto holder = std::make_shared<const EpochProfile>(std::move(profile));
  const std::lock_guard<std::mutex> lock(g_cache_mutex);
  // Keep the first capture on a race: both racers ran the same full
  // simulation, so the profiles are interchangeable.
  cache().emplace(key, std::move(holder));
  g_captures.fetch_add(1, std::memory_order_relaxed);
}

RunOutput reprice(const EpochProfile& profile, const TimingConfig& timing) {
  const auto& m = profile.machine;
  const auto& topo = m.topology;
  const bool queue_mode = timing.link_model == memsim::LinkModelKind::kQueue;
  using memsim::TrafficClass;

  // Mirror the engine constructor exactly: per-tier link/queue construction
  // in TierId order, then the scalar LoI, then per-tier overrides, then the
  // schedule's epoch-0 value.
  std::vector<std::optional<memsim::LinkModel>> links;
  std::vector<std::optional<memsim::QueueModel>> queues;
  links.reserve(static_cast<std::size_t>(topo.num_tiers()));
  queues.reserve(static_cast<std::size_t>(topo.num_tiers()));
  for (memsim::TierId t = 0; t < topo.num_tiers(); ++t) {
    if (topo.is_fabric(t)) {
      links.emplace_back(memsim::LinkModel(topo.tier(t)));
      if (queue_mode) {
        queues.emplace_back(memsim::QueueModel(topo.tier(t)));
      } else {
        queues.emplace_back(std::nullopt);
      }
    } else {
      links.emplace_back(std::nullopt);
      queues.emplace_back(std::nullopt);
    }
  }
  for (auto& l : links)
    if (l) l->set_background_loi(timing.background_loi);
  for (std::size_t t = 0; t < timing.background_loi_per_tier.size() && t < links.size();
       ++t) {
    if (links[t]) links[t]->set_background_loi(timing.background_loi_per_tier[t]);
  }
  const auto apply_schedule = [&](std::uint64_t epoch) {
    if (timing.loi_schedule.empty()) return;
    expects(timing.loi_schedule.per_tier.size() <= links.size(),
            "LoI schedule targets a tier beyond the topology");
    for (std::size_t t = 0; t < links.size(); ++t) {
      const auto* wave = timing.loi_schedule.waveform(static_cast<memsim::TierId>(t));
      if (!wave) continue;
      expects(links[t].has_value(), "LoI schedule targets a tier without a link");
      links[t]->set_background_loi(wave->value_at(epoch));
    }
  };
  apply_schedule(0);

  RunOutput out = profile.output;  // functional fields carry over verbatim

  // Fold the cost model over the captured epochs. elapsed_after[k] is the
  // engine's running elapsed_s after k closed epochs — the identical
  // sequence of additions, so phase times (differences of two prefix sums)
  // reconstruct bit-exactly below.
  double elapsed = 0.0;
  std::vector<double> elapsed_after;
  elapsed_after.reserve(out.epochs.size() + 1);
  elapsed_after.push_back(0.0);
  for (std::size_t i = 0; i < out.epochs.size(); ++i) {
    sim::EpochRecord& rec = out.epochs[i];
    sim::EpochPricing pricing = sim::price_epoch(
        m, timing.link_model, profile.stall_weight, rec.flops, rec.tier_bytes,
        rec.tier_demand, rec.migration_bytes, rec.migration_s, links, queues);
    rec.start_s = elapsed;
    rec.duration_s = pricing.duration_s;
    rec.link_traffic_gbps = pricing.link_traffic_gbps;
    rec.link_utilization = pricing.link_utilization;
    rec.link_loi = std::move(pricing.link_loi);
    rec.link_demand_mult = std::move(pricing.link_demand_mult);
    rec.link_demand_inflation = std::move(pricing.link_demand_inflation);
    // Replay the per-class traffic into the windowed estimators just as
    // close_epoch does, so epoch i+1 prices against the same queue history.
    if (queue_mode) {
      for (memsim::TierId t = 0; t < topo.num_tiers(); ++t) {
        auto& q = queues[static_cast<std::size_t>(t)];
        if (!q) continue;
        q->observe(TrafficClass::kDemand,
                   static_cast<double>(rec.tier_bytes[static_cast<std::size_t>(t)]),
                   rec.duration_s);
        q->observe(TrafficClass::kBulk,
                   static_cast<double>(rec.migration_bytes[static_cast<std::size_t>(t)]),
                   rec.duration_s);
      }
    }
    elapsed += rec.duration_s;
    elapsed_after.push_back(elapsed);
    // The engine steps the schedule after pushing each record (before the
    // epoch callback — eligible runs have none).
    apply_schedule(i + 1);
  }
  out.elapsed_s = elapsed;
  for (auto& phase : out.phases) {
    expects(phase.epoch_begin <= phase.epoch_end &&
                phase.epoch_end < elapsed_after.size(),
            "phase epoch span out of range for the captured profile");
    phase.time_s = elapsed_after[phase.epoch_end] - elapsed_after[phase.epoch_begin];
  }
  g_reprices.fetch_add(1, std::memory_order_relaxed);
  return out;
}

}  // namespace memdis::core
