#include "core/profiler.h"

#include "common/contract.h"
#include "common/units.h"

namespace memdis::core {

namespace {

std::vector<PhaseCharacteristics> phase_characteristics(const RunOutput& run) {
  std::vector<PhaseCharacteristics> out;
  for (const auto& phase : run.phases) {
    PhaseCharacteristics pc;
    pc.tag = phase.tag;
    pc.time_s = phase.time_s;
    pc.weight = run.elapsed_s > 0 ? phase.time_s / run.elapsed_s : 0.0;
    pc.arithmetic_intensity = phase_arithmetic_intensity(phase);
    if (phase.time_s > 0) {
      pc.gflops_rate = static_cast<double>(phase.flops) / phase.time_s * 1e-9;
      pc.dram_gbps = bytes_per_sec_to_gbps(
          static_cast<double>(phase.counters.dram_bytes_total()) / phase.time_s);
    }
    out.push_back(std::move(pc));
  }
  return out;
}

}  // namespace

Level1Profile MultiLevelProfiler::level1(workloads::Workload& workload) const {
  RunConfig cfg = base_;
  cfg.remote_capacity_ratio.reset();  // Level 1 runs on node-local memory only
  cfg.background_loi = 0.0;
  cfg.prefetch_enabled = true;
  const RunOutput on = run_workload(workload, cfg);

  cfg.prefetch_enabled = false;
  const RunOutput off = run_workload(workload, cfg);

  const std::uint64_t page = cfg.machine.page_bytes;
  const std::uint64_t rss_pages = on.peak_rss_bytes / page;
  std::unordered_map<std::uint64_t, std::uint64_t> hist = on.page_accesses;
  if (hist.empty()) {
    // Fully cache-resident run: no DRAM-level load misses were sampled, so
    // the best available statement is a uniform distribution over the
    // resident footprint (every page equally "hot" as far as DRAM saw).
    for (std::uint64_t p = 0; p < std::max<std::uint64_t>(rss_pages, 1); ++p) hist[p] = 1;
  }
  const std::uint64_t sampled = hist.size();
  const std::uint64_t untouched = rss_pages > sampled ? rss_pages - sampled : 0;

  Level1Profile p{on.result,
                  on.elapsed_s,
                  on.peak_rss_bytes,
                  on.arithmetic_intensity(),
                  on.elapsed_s > 0
                      ? bytes_per_sec_to_gbps(
                            static_cast<double>(on.counters.dram_bytes_total()) / on.elapsed_s)
                      : 0.0,
                  phase_characteristics(on),
                  ScalingCurve(hist, untouched),
                  analyze_prefetch(on.counters, on.elapsed_s, off.counters, off.elapsed_s),
                  on.epochs,
                  off.epochs};
  return p;
}

Level2Profile MultiLevelProfiler::level2(workloads::Workload& workload,
                                         double remote_capacity_ratio) const {
  expects(remote_capacity_ratio >= 0.0 && remote_capacity_ratio < 1.0,
          "remote capacity ratio must be in [0,1)");
  RunConfig cfg = base_;
  cfg.remote_capacity_ratio = remote_capacity_ratio;
  cfg.background_loi = 0.0;
  RunOutput run = run_workload(workload, cfg);

  Level2Profile p;
  p.remote_capacity_ratio_configured = remote_capacity_ratio;
  p.remote_capacity_ratio_measured = run.remote_capacity_ratio();
  p.remote_bandwidth_ratio = cfg.machine.remote_bandwidth_ratio();
  p.remote_access_ratio_total = run.remote_access_ratio();
  for (const auto& phase : run.phases) {
    PhaseTierAccess pa;
    pa.tag = phase.tag;
    pa.weight = run.elapsed_s > 0 ? phase.time_s / run.elapsed_s : 0.0;
    pa.remote_access_ratio = phase_remote_access_ratio(phase);
    pa.arithmetic_intensity = phase_arithmetic_intensity(phase);
    p.phases.push_back(std::move(pa));
  }
  p.run = std::move(run);
  return p;
}

Level3Profile MultiLevelProfiler::level3(workloads::Workload& workload,
                                         double remote_capacity_ratio,
                                         const std::vector<double>& lois) const {
  Level3Profile p;
  p.sensitivity = sensitivity_sweep(workload, base_, remote_capacity_ratio, lois);
  RunConfig cfg = base_;
  cfg.remote_capacity_ratio = remote_capacity_ratio;
  cfg.background_loi = 0.0;
  const RunOutput baseline = run_workload(workload, cfg);
  p.induced = induced_interference(baseline, cfg.machine);
  return p;
}

}  // namespace memdis::core
