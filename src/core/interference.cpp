#include "core/interference.h"

#include <algorithm>
#include <cmath>

#include "common/contract.h"
#include "common/units.h"
#include "memsim/link.h"

namespace memdis::core {

double lbench_offered_traffic_gbps(const memsim::MachineConfig& m, int threads,
                                   std::uint32_t nflop) {
  expects(threads >= 1, "need at least one thread");
  expects(nflop >= 1, "nflop must be >= 1");
  // Per element: 8B load + 8B store of pool data, nflop dependent flops.
  const double flop_rate = kLbenchFlopRatePerThreadGflops * 1e9 * threads;
  const double elements_per_s_flop_bound = flop_rate / nflop;
  const double data_bytes_per_element = 16.0;
  const double data_gbps =
      bytes_per_sec_to_gbps(elements_per_s_flop_bound * data_bytes_per_element);
  return data_gbps * m.pool_link().protocol_overhead;
}

double lbench_offered_utilization(const memsim::MachineConfig& m, int threads,
                                  std::uint32_t nflop) {
  return lbench_offered_traffic_gbps(m, threads, nflop) / m.pool_link().traffic_capacity_gbps;
}

LbenchCalibration::LbenchCalibration(const memsim::MachineConfig& machine, int threads)
    : machine_(machine), threads_(threads) {
  for (std::uint32_t nflop : {1u, 2u, 4u, 8u, 12u, 16u, 24u, 32u, 48u, 64u, 96u, 128u,
                              192u, 256u, 384u, 512u}) {
    LoiCalibrationPoint p;
    p.nflop = nflop;
    const double offered = lbench_offered_traffic_gbps(machine, threads, nflop);
    p.offered_loi = 100.0 * offered / machine.pool_link().traffic_capacity_gbps;
    p.measured_loi = std::min(p.offered_loi, 100.0);
    points_.push_back(p);
  }
}

std::uint32_t LbenchCalibration::nflop_for_loi(double target_loi) const {
  expects(target_loi > 0.0, "target LoI must be positive");
  // offered_loi is monotonically decreasing in nflop; offered ∝ 1/nflop, so
  // solve directly and clamp to a valid intensity.
  const double base = points_.front().offered_loi;  // nflop = 1
  const double exact = base / target_loi;
  return static_cast<std::uint32_t>(std::max(1.0, std::round(exact)));
}

double LbenchCalibration::loi_for_nflop(std::uint32_t nflop) const {
  return 100.0 * lbench_offered_utilization(machine_, threads_, nflop);
}

double interference_coefficient_at(const memsim::MachineConfig& m,
                                   double offered_utilization) {
  return interference_coefficient_at(m, m.topology.first_fabric(), offered_utilization);
}

double interference_coefficient_at(const memsim::MachineConfig& m, memsim::TierId t,
                                   double offered_utilization) {
  expects(offered_utilization >= 0.0, "offered utilization cannot be negative");
  expects(m.topology.valid_tier(t) && m.topology.is_fabric(t),
          "interference coefficient needs a fabric tier");
  memsim::LinkModel link(m.tier(t));
  link.set_background_loi(std::min(offered_utilization * 100.0, 2000.0));
  // The 1-thread 1-flop probe is latency-bound on the pool link: its runtime
  // scales with the effective access latency, so IC equals the queue-delay
  // multiplier (its own traffic contribution is negligible).
  return link.latency_multiplier(0.0);
}

double interference_coefficient_at(const memsim::MachineConfig& m, memsim::TierId t,
                                   const memsim::LoiWaveform& wave, std::uint64_t epoch) {
  return interference_coefficient_at(m, t, wave.value_at(epoch) / 100.0);
}

InducedInterference induced_interference(const RunOutput& run,
                                         const memsim::MachineConfig& m) {
  InducedInterference out;
  double weighted = 0.0;
  double total_time = 0.0;
  bool first = true;
  for (const auto& phase : run.phases) {
    if (phase.time_s <= 0) continue;
    const double remote_gbps = bytes_per_sec_to_gbps(
        static_cast<double>(phase.counters.fabric_dram_bytes()) / phase.time_s);
    const double offered =
        remote_gbps * m.pool_link().protocol_overhead / m.pool_link().traffic_capacity_gbps;
    const double ic = interference_coefficient_at(m, offered);
    weighted += ic * phase.time_s;
    total_time += phase.time_s;
    out.ic_min = first ? ic : std::min(out.ic_min, ic);
    out.ic_max = first ? ic : std::max(out.ic_max, ic);
    first = false;
  }
  out.ic_mean = total_time > 0 ? weighted / total_time : 1.0;
  return out;
}

namespace {
double measured_duration(const RunOutput& run, const std::string& phase_tag) {
  if (phase_tag.empty()) return run.elapsed_s;
  double t = 0.0;
  for (const auto& phase : run.phases)
    if (phase.tag == phase_tag) t += phase.time_s;
  return t;
}
}  // namespace

std::vector<SensitivityPoint> sensitivity_sweep(workloads::Workload& workload,
                                                const RunConfig& base,
                                                double remote_capacity_ratio,
                                                const std::vector<double>& lois,
                                                const std::string& phase_tag) {
  expects(!lois.empty(), "need at least one LoI level");
  std::vector<SensitivityPoint> curve;
  RunConfig cfg = base;
  cfg.remote_capacity_ratio = remote_capacity_ratio;
  cfg.background_loi = 0.0;
  const double t_base = measured_duration(run_workload(workload, cfg), phase_tag);
  expects(t_base > 0, "baseline run has zero duration");
  for (const double loi : lois) {
    if (loi == 0.0) {
      curve.push_back({0.0, 1.0});
      continue;
    }
    cfg.background_loi = loi;
    const double t = measured_duration(run_workload(workload, cfg), phase_tag);
    curve.push_back({loi, t_base / t});
  }
  return curve;
}

double interpolate_sensitivity(const std::vector<SensitivityPoint>& curve, double loi) {
  expects(!curve.empty(), "empty sensitivity curve");
  if (loi <= curve.front().loi) return curve.front().relative_performance;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    if (loi <= curve[i].loi) {
      const double span = curve[i].loi - curve[i - 1].loi;
      const double f = span > 0 ? (loi - curve[i - 1].loi) / span : 1.0;
      return curve[i - 1].relative_performance * (1.0 - f) +
             curve[i].relative_performance * f;
    }
  }
  return curve.back().relative_performance;
}

}  // namespace memdis::core
