// Scenario registry: every paper figure (and extension study) that is a
// sweep registers here under a stable name, so one front end — `memdis
// sweep --scenario NAME` — can expand, parallelise, and archive any of
// them. Bench binaries shrink to thin lookups of the same entries.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/sweep.h"

namespace memdis::core {

struct Scenario {
  std::string name;      ///< stable CLI handle, e.g. "fig06"
  std::string artifact;  ///< paper artifact, e.g. "Figure 6"
  std::string caption;   ///< one-line description for banners and listings
  SweepSpec spec;
  MeasureFn measure;
  /// Optional human-readable report printed after the sweep (tables,
  /// expected-shape notes). May derive anything from the result rows.
  std::function<void(const SweepResult&, std::ostream&)> summarize;
};

class ScenarioRegistry {
 public:
  /// The process-wide registry, with all built-in scenarios registered.
  static ScenarioRegistry& instance();

  /// Registers a scenario; throws std::invalid_argument on duplicate names.
  void add(Scenario scenario);

  /// nullptr when `name` is not registered.
  [[nodiscard]] const Scenario* find(const std::string& name) const;

  /// All scenarios, sorted by name.
  [[nodiscard]] std::vector<const Scenario*> list() const;

 private:
  std::vector<Scenario> scenarios_;
};

/// Runs a registered scenario and stamps its name into the result.
[[nodiscard]] SweepResult run_scenario(const Scenario& scenario,
                                       const SweepOptions& options = {});

namespace detail {
/// Defined in scenarios.cpp; invoked once by ScenarioRegistry::instance().
void register_builtin_scenarios(ScenarioRegistry& registry);
}  // namespace detail

}  // namespace memdis::core
