#include "core/roofline.h"

#include <algorithm>

#include "common/contract.h"

namespace memdis::core {

RooflineModel::RooflineModel(double peak_gflops, double bandwidth_gbps)
    : peak_gflops_(peak_gflops), bandwidth_gbps_(bandwidth_gbps) {
  expects(peak_gflops > 0 && bandwidth_gbps > 0, "roofline peaks must be positive");
}

double RooflineModel::attainable_gflops(double ai) const {
  expects(ai >= 0, "arithmetic intensity cannot be negative");
  return std::min(peak_gflops_, bandwidth_gbps_ * ai);
}

double RooflineModel::ridge_point() const { return peak_gflops_ / bandwidth_gbps_; }

RooflineModel RooflineModel::local_tier(const memsim::MachineConfig& m) {
  return RooflineModel(m.peak_gflops, m.node_tier().bandwidth_gbps);
}

RooflineModel RooflineModel::multi_tier(const memsim::MachineConfig& m) {
  return RooflineModel(m.peak_gflops, m.topology.total_bandwidth_gbps());
}

double effective_bandwidth_gbps(const memsim::MachineConfig& m, double remote_ratio) {
  return effective_bandwidth_gbps_under_loi(m, remote_ratio, 0.0);
}

double effective_bandwidth_gbps_under_loi(const memsim::MachineConfig& m, double remote_ratio,
                                          double background_loi) {
  expects(remote_ratio >= 0.0 && remote_ratio <= 1.0, "remote ratio must be in [0,1]");
  memsim::LinkModel link(m.pool_tier());
  link.set_background_loi(background_loi);
  const double remote_bw =
      std::min(m.pool_tier().bandwidth_gbps, link.effective_data_bandwidth_gbps(0.0));
  if (remote_ratio == 0.0) return m.node_tier().bandwidth_gbps;
  if (remote_ratio == 1.0) return remote_bw;
  return std::min(m.node_tier().bandwidth_gbps / (1.0 - remote_ratio),
                  remote_bw / remote_ratio);
}

}  // namespace memdis::core
