#include "core/prefetch_analysis.h"

#include "common/contract.h"

namespace memdis::core {

double prefetch_accuracy(const cachesim::HwCounters& c) {
  const auto issued = static_cast<double>(c.prefetch_fills());
  if (issued == 0) return 0.0;
  return (issued - static_cast<double>(c.useless_hwpf)) / issued;
}

double prefetch_coverage(const cachesim::HwCounters& c) {
  const auto lines_in = static_cast<double>(c.l2_lines_in);
  const auto useless = static_cast<double>(c.useless_hwpf);
  const double denom = lines_in - useless;
  if (denom <= 0) return 0.0;
  return (static_cast<double>(c.prefetch_fills()) - useless) / denom;
}

PrefetchMetrics analyze_prefetch(const cachesim::HwCounters& with_pf, double elapsed_with_pf,
                                 const cachesim::HwCounters& without_pf,
                                 double elapsed_without_pf) {
  expects(elapsed_with_pf > 0 && elapsed_without_pf > 0, "elapsed times must be positive");
  PrefetchMetrics m;
  m.accuracy = prefetch_accuracy(with_pf);
  m.coverage = prefetch_coverage(with_pf);
  const auto traffic_on = static_cast<double>(with_pf.dram_bytes_total());
  const auto traffic_off = static_cast<double>(without_pf.dram_bytes_total());
  m.excess_traffic = traffic_off > 0 ? traffic_on / traffic_off - 1.0 : 0.0;
  m.performance_gain = elapsed_without_pf / elapsed_with_pf - 1.0;
  return m;
}

}  // namespace memdis::core
