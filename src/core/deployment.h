// DeploymentPlanner: the Sec. 4.1 decision flow as a tool.
//
// "In a typical decision flow, a user needs to estimate the total memory
//  footprint of the job and peak memory usage per node, then compare them
//  with memory capacity per compute node to determine the minimum number
//  of nodes required. When memory bandwidth is a limiting factor, a user
//  may decide to increase the number of nodes further ... Other dimensions
//  of this decision include increased communication and core-hour cost."
//
// Given a job's measured Level-1 profile (flops, footprint, traffic,
// bandwidth–capacity scaling curve, prefetch coverage), the planner
// evaluates node counts with and without pooled memory: fewer nodes than
// the local-only minimum become feasible by spilling the *cold* end of the
// scaling curve to the pool (best-case placement), at the cost of remote
// bandwidth/latency; more nodes buy aggregate bandwidth at the cost of
// communication and core-hours. This quantifies the paper's misconception
// #2: distributed-memory codes can trade pool exposure against scale-out.
#pragma once

#include <vector>

#include "core/profiler.h"
#include "memsim/machine.h"

namespace memdis::core {

/// A job, expressed machine-independently (typically a Level-1 profile
/// multiplied out to production scale).
struct JobRequirements {
  double total_flops = 0.0;       ///< W: total floating-point work
  double footprint_bytes = 0.0;   ///< F: total memory footprint
  double dram_traffic_bytes = 0.0;  ///< bytes moved through DRAM over the run
  /// Fraction of accesses covered by the hottest x fraction of footprint
  /// (the bandwidth–capacity scaling curve, Fig. 6). Must be nondecreasing.
  std::vector<double> curve_samples;  ///< curve sampled at 0, 1/(k-1), ..., 1
  double prefetch_coverage = 0.5;     ///< latency exposure proxy (Sec. 5.1)
  /// Communication model: comm time = comm_seconds_base · (n / base_nodes)^exp.
  double comm_seconds_base = 0.0;
  double base_nodes = 1.0;
  double comm_scaling_exponent = 0.6;

  /// Builds requirements from a measured Level-1 profile, scaled by
  /// `scale_factor` in both work and footprint (e.g. 100 to project the
  /// simulation-scale run to a production problem).
  [[nodiscard]] static JobRequirements from_profile(const Level1Profile& l1,
                                                    double scale_factor,
                                                    double comm_fraction = 0.05);
};

/// One evaluated deployment configuration.
struct DeploymentOption {
  int nodes = 0;
  bool feasible = false;            ///< per-node footprint fits local+pool
  bool needs_pool = false;          ///< spills beyond node-local capacity
  double pooled_fraction = 0.0;     ///< R_cap^remote per node
  double remote_access_ratio = 0.0; ///< best-case r from the scaling curve
  double est_runtime_s = 0.0;
  double node_seconds = 0.0;        ///< runtime × nodes (core-hour proxy)
};

struct PlannerConfig {
  memsim::MachineConfig machine = memsim::MachineConfig::skylake_testbed();
  std::uint64_t local_capacity_bytes = 0;  ///< per-node local memory for the job
  std::uint64_t pool_capacity_bytes = 0;   ///< per-node pool share (0 = no pool)
};

class DeploymentPlanner {
 public:
  explicit DeploymentPlanner(const PlannerConfig& cfg);

  /// Evaluates node counts 1..max_nodes.
  [[nodiscard]] std::vector<DeploymentOption> evaluate(const JobRequirements& job,
                                                       int max_nodes) const;

  /// Smallest-cost feasible option whose runtime is within
  /// `max_slowdown` of the fastest feasible option.
  [[nodiscard]] DeploymentOption recommend(const JobRequirements& job, int max_nodes,
                                           double max_slowdown = 1.10) const;

  /// Minimum nodes without any pooled memory (the paper's baseline flow).
  [[nodiscard]] int min_nodes_local_only(const JobRequirements& job) const;

 private:
  [[nodiscard]] DeploymentOption cost_out(const JobRequirements& job, int nodes) const;
  [[nodiscard]] double curve_at(const JobRequirements& job, double footprint_fraction) const;

  PlannerConfig cfg_;
};

}  // namespace memdis::core
