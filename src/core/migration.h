// MigrationRuntime: a transparent hot-page placement daemon.
//
// The "dynamic solution" of Sec. 5.2: detect hot pages at runtime and
// migrate them into the fast tier (in the spirit of Thermostat [1] and
// TPP [30]). The paper's critique — runtimes "take time to collect enough
// information", are "slow in adapting to changes in access patterns", and
// cause run-to-run performance variation — is exactly what the ablation
// bench measures with this implementation.
//
// Mechanism: attach to the engine's epoch callback; every `period_epochs`
// epochs, diff the page-access histogram, rank pages by recent heat, then
// demote the coldest local pages and promote the hottest remote pages
// (bounded by `max_pages_per_scan`, modelling migration bandwidth limits).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/engine.h"

namespace memdis::core {

struct MigrationConfig {
  std::uint64_t period_epochs = 4;       ///< scan cadence (epochs)
  std::uint64_t max_pages_per_scan = 64; ///< promotion budget per scan
  std::uint64_t min_heat = 8;            ///< samples before a page is "hot"
  bool enable_demotion = true;           ///< make room by demoting cold pages
};

class MigrationRuntime {
 public:
  explicit MigrationRuntime(const MigrationConfig& cfg = {}) : cfg_(cfg) {}

  /// Installs this runtime on the engine. The runtime must outlive the run.
  void attach(sim::Engine& eng);

  [[nodiscard]] std::uint64_t pages_promoted() const { return promoted_; }
  [[nodiscard]] std::uint64_t pages_demoted() const { return demoted_; }
  [[nodiscard]] std::uint64_t scans() const { return scans_; }

 private:
  void on_epoch(sim::Engine& eng);

  MigrationConfig cfg_;
  std::uint64_t epoch_count_ = 0;
  std::uint64_t scans_ = 0;
  std::uint64_t promoted_ = 0;
  std::uint64_t demoted_ = 0;
  // Histogram snapshot from the previous scan, for heat deltas.
  std::unordered_map<std::uint64_t, std::uint64_t> last_hist_;
};

}  // namespace memdis::core
