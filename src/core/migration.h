// MigrationRuntime: a transparent hot-page placement daemon.
//
// The "dynamic solution" of Sec. 5.2: detect hot pages at runtime and
// migrate them into faster tiers (in the spirit of Thermostat [1] and
// TPP [30]). Where the original runtime blindly promoted to tier 0 and
// demoted one hop, every move is now priced by the MigrationCostModel
// from the topology's per-link bandwidth/latency under the current
// per-link Level-of-Interference, amortized over the page's observed
// PEBS-sampled hotness:
//
//  * a page is moved to the destination with the highest positive net
//    value (horizon * stall-savings - transfer cost), which on an N-tier
//    chain can be an *intermediate* tier — staging switched -> direct ->
//    node across scans when the cost model prices the long-haul hop out;
//  * each fabric segment has a per-scan page budget; when a segment on the
//    direct path is exhausted the planner falls back to the best feasible
//    shorter hop (and vice versa: staging can be disabled to force direct
//    moves only);
//  * demotion victims go to the cheapest fabric tier by the same pricing,
//    so under asymmetric LoI cold pages avoid the loaded link;
//  * transfer time is charged to the engine's epoch timeline
//    (Engine::charge_migration_seconds), so aggressive cadences pay for
//    their traffic.
//
// Mechanism: attach to the engine's epoch callback; every `period_epochs`
// epochs, diff the page-access histogram, rank candidate moves by net
// value, then execute them within the per-scan budgets.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/migration_cost.h"
#include "sim/engine.h"

namespace memdis::core {

struct MigrationConfig {
  std::uint64_t period_epochs = 4;       ///< scan cadence (epochs)
  std::uint64_t max_pages_per_scan = 64; ///< promotion budget per scan
  std::uint64_t min_heat = 8;            ///< samples before a page is "hot"
  bool enable_demotion = true;           ///< make room by demoting cold pages
  /// Permit moves that end on an intermediate fabric tier (multi-hop
  /// staging across scans). When false the planner only considers direct
  /// moves to the node tier — the pre-cost-model behavior.
  bool allow_staging = true;
  /// Expected residency (epochs) over which a move's stall savings are
  /// amortized against its transfer cost.
  std::uint64_t horizon_epochs = 16;
  /// Per-scan page budget of each fabric segment; 0 derives it from
  /// max_pages_per_scan. Models migration traffic stealing link bandwidth.
  std::uint64_t link_budget_pages = 0;
  /// Charge migration transfer time to the engine's epoch timeline.
  bool charge_transfer_cost = true;
  /// When non-empty, the planner prices moves and scales segment budgets
  /// against this *fixed* per-link LoI vector (indexed by TierId) instead
  /// of the links' live levels — a planner provisioned with static QoS
  /// information, e.g. the time average of a bursty schedule. Executed
  /// moves are still charged at the links' true current state, so a
  /// mispriced plan pays the real congestion it ignored.
  std::vector<double> assumed_loi;
  /// Under a time-varying LoI schedule, defer a move whenever evaluating
  /// the schedule over the next horizon_epochs finds an epoch where the
  /// move's path is enough cheaper to beat acting now (net of the benefit
  /// epochs lost waiting) — the planner arbitraging a congestion burst.
  /// No-op without a schedule or with a static assumed_loi belief.
  bool defer_on_schedule = true;
  /// Under the queue link model, re-price each candidate against the bulk
  /// traffic this scan has *already scheduled* on the candidate's path
  /// (self-induced congestion) and defer the move when the inflated cost
  /// erases its net value — trimming the low-value tail off a migration
  /// burst before it delays the application's own demand misses. No-op
  /// under the `loi` model, whose closed form carries no self-traffic term.
  bool defer_on_self_congestion = true;
};

/// One executed move, for the machine-readable plan dump (`memdis plan`).
struct ExecutedMove {
  std::uint64_t scan = 0;   ///< scan index that issued the move
  std::uint64_t page = 0;   ///< page number
  memsim::TierId src = 0;
  memsim::TierId dst = 0;
  std::uint64_t heat = 0;   ///< sampled accesses in the scan window
  double cost_s = 0.0;      ///< transfer cost charged, at the true link state
  double value_s = 0.0;     ///< net value the planner believed (horizon-amortized)
  bool demotion = false;    ///< victim eviction rather than a hot-page move
  bool staged = false;      ///< ended on an intermediate tier (multi-hop)
};

class MigrationRuntime {
 public:
  explicit MigrationRuntime(const MigrationConfig& cfg = {}) : cfg_(cfg) {}

  /// Installs this runtime on the engine. The runtime must outlive the run.
  void attach(sim::Engine& eng);

  [[nodiscard]] std::uint64_t pages_promoted() const { return promoted_; }
  [[nodiscard]] std::uint64_t pages_demoted() const { return demoted_; }
  [[nodiscard]] std::uint64_t scans() const { return scans_; }
  /// Moves that ended on an intermediate fabric tier (first hop of a
  /// staged multi-hop plan).
  [[nodiscard]] std::uint64_t staged_moves() const { return staged_; }
  /// Moves that ended on the node tier.
  [[nodiscard]] std::uint64_t direct_moves() const { return direct_; }
  /// Plans skipped this run because the LoI schedule priced a later epoch
  /// cheaper (congestion-burst arbitrage; the page stays put this scan).
  [[nodiscard]] std::uint64_t deferred_moves() const { return deferred_; }
  /// Plans skipped because the scan's own already-scheduled bulk traffic
  /// priced the move's path out (self-congestion deferral; queue model).
  [[nodiscard]] std::uint64_t self_deferred_moves() const { return deferred_self_; }
  /// Total priced transfer cost of all executed moves (seconds), at the
  /// links' true state at execution time.
  [[nodiscard]] double transfer_cost_s() const { return transfer_cost_s_; }
  /// Every executed move, in execution order (the plan log).
  [[nodiscard]] const std::vector<ExecutedMove>& plan_log() const { return plan_log_; }
  /// Live per-link LoI observed at each scan (indexed by scan, then
  /// TierId) — the per-scan effective interference `memdis plan` reports.
  [[nodiscard]] const std::vector<std::vector<double>>& scan_loi_log() const {
    return scan_loi_log_;
  }

  [[nodiscard]] const MigrationConfig& config() const { return cfg_; }

 private:
  void on_epoch(sim::Engine& eng);

  MigrationConfig cfg_;
  std::uint64_t epoch_count_ = 0;
  std::uint64_t scans_ = 0;
  std::uint64_t promoted_ = 0;
  std::uint64_t demoted_ = 0;
  std::uint64_t staged_ = 0;
  std::uint64_t direct_ = 0;
  std::uint64_t deferred_ = 0;
  std::uint64_t deferred_self_ = 0;
  double transfer_cost_s_ = 0.0;
  std::vector<ExecutedMove> plan_log_;
  std::vector<std::vector<double>> scan_loi_log_;
  // Histogram snapshot from the previous scan, for heat deltas.
  std::unordered_map<std::uint64_t, std::uint64_t> last_hist_;
  // Planning cost model cached between scans; rebuilt only when its LoI
  // vector (live links, or the static assumed_loi belief) changes.
  std::optional<MigrationCostModel> model_;
  std::vector<double> model_loi_;
  // Demand-class view under the queue model: tier access latencies are
  // priced at the LoI the *demand* class experiences (background + bulk
  // cross-traffic), while `model_` prices transfer costs at the bulk
  // class's view. Cached like model_.
  std::optional<MigrationCostModel> demand_model_;
  std::vector<double> demand_loi_;
  // Truth model for charging executed moves when the planner believes a
  // different (assumed) LoI than the links actually carry.
  std::optional<MigrationCostModel> truth_model_;
  std::vector<double> truth_loi_;
};

}  // namespace memdis::core
