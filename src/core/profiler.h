// MultiLevelProfiler: the paper's three-level, top-down methodology
// (Sec. 3) as a programmatic API.
//
//   Level 1 — intrinsic requirements: arithmetic intensity, capacity and
//             bandwidth usage, bandwidth–capacity scaling curve, prefetch
//             suitability (requires a paired prefetch-off run).
//   Level 2 — multi-tier behaviour: per-phase remote access ratios against
//             the R_cap / R_bw reference points.
//   Level 3 — pooling behaviour: interference sensitivity curve and the
//             induced interference coefficient.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/interference.h"
#include "core/prefetch_analysis.h"
#include "core/scaling_curve.h"

namespace memdis::core {

/// Per-phase Level-1 measurements (drives Fig. 5's roofline dots).
struct PhaseCharacteristics {
  std::string tag;
  double time_s = 0.0;
  double weight = 0.0;  ///< fraction of total runtime
  double arithmetic_intensity = 0.0;
  double gflops_rate = 0.0;
  double dram_gbps = 0.0;
};

struct Level1Profile {
  workloads::WorkloadResult result;
  double elapsed_s = 0.0;
  std::uint64_t peak_rss_bytes = 0;
  double arithmetic_intensity = 0.0;
  double mean_dram_gbps = 0.0;
  std::vector<PhaseCharacteristics> phases;
  ScalingCurve scaling_curve;
  PrefetchMetrics prefetch;
  std::vector<sim::EpochRecord> timeline_prefetch_on;
  std::vector<sim::EpochRecord> timeline_prefetch_off;
};

/// Per-phase Level-2 measurements (drives Fig. 9).
struct PhaseTierAccess {
  std::string tag;
  double weight = 0.0;
  double remote_access_ratio = 0.0;
  double arithmetic_intensity = 0.0;
};

struct Level2Profile {
  double remote_capacity_ratio_configured = 0.0;  ///< experiment setpoint
  double remote_capacity_ratio_measured = 0.0;    ///< from numa snapshot
  double remote_bandwidth_ratio = 0.0;            ///< machine R_bw reference
  double remote_access_ratio_total = 0.0;
  std::vector<PhaseTierAccess> phases;
  RunOutput run;  ///< full capture for downstream analyses
};

struct Level3Profile {
  std::vector<SensitivityPoint> sensitivity;  ///< vs background LoI
  InducedInterference induced;
};

/// Orchestrates the three levels. Stateless apart from configuration; each
/// call runs the workload the required number of times.
class MultiLevelProfiler {
 public:
  explicit MultiLevelProfiler(RunConfig base = {}) : base_(std::move(base)) {}

  /// Level 1: two runs (prefetch on + off) on node-local memory only.
  [[nodiscard]] Level1Profile level1(workloads::Workload& workload) const;

  /// Level 2: one run with the local tier shrunk to force the requested
  /// remote capacity ratio (e.g. 0.25 / 0.5 / 0.75 as in Fig. 9).
  [[nodiscard]] Level2Profile level2(workloads::Workload& workload,
                                     double remote_capacity_ratio) const;

  /// Level 3: baseline + one run per LoI level (Fig. 10), plus the induced
  /// interference coefficient from the baseline run (Fig. 11 right).
  [[nodiscard]] Level3Profile level3(workloads::Workload& workload,
                                     double remote_capacity_ratio,
                                     const std::vector<double>& lois = {0, 10, 20, 30, 40,
                                                                        50}) const;

  [[nodiscard]] const RunConfig& base_config() const { return base_; }

 private:
  RunConfig base_;
};

}  // namespace memdis::core
