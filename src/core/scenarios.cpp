// Built-in sweep scenarios: every paper figure (and extension study) that
// is a configuration-space sweep, registered under a stable name.
//
// A scenario's measure() must be a pure function of its SweepPoint so the
// engine's determinism contract holds (see sweep.h); summarize() turns the
// collected rows back into the tables and expected-shape notes the old
// per-figure bench mains printed.
#include <cmath>
#include <optional>
#include <ostream>
#include <sstream>

#include "common/table.h"
#include "core/advisor.h"
#include "core/interference.h"
#include "core/migration.h"
#include "core/profiler.h"
#include "core/roofline.h"
#include "core/scenario_registry.h"
#include "fleet/arrival.h"
#include "fleet/fleet.h"
#include "workloads/bfs.h"

namespace memdis::core {
namespace {

using workloads::App;

std::optional<double> metric(const SweepRow& row, const std::string& name) {
  for (const auto& [key, value] : row.metrics)
    if (key == name) return value;
  return std::nullopt;
}

double metric_or(const SweepRow& row, const std::string& name, double fallback = 0.0) {
  return metric(row, name).value_or(fallback);
}

std::string loi_metric(double loi) {
  return "relperf_loi" + std::to_string(static_cast<int>(loi));
}

/// The 21 evenly spaced footprint fractions each scaling-curve row samples
/// (enough to reconstruct cross-scale Kolmogorov distances in summaries).
constexpr std::size_t kCurveSamples = 21;

std::string curve_metric(std::size_t i) { return "cdf" + std::to_string(i); }

// ---- fig05: roofline placement of application phases ------------------------

std::vector<Metric> measure_fig05(const SweepPoint& point) {
  MultiLevelProfiler profiler(point.run_config());
  auto wl = point.make_workload();
  const auto l1 = profiler.level1(*wl);
  std::vector<Metric> metrics;
  for (const auto& phase : l1.phases) {
    if (phase.time_s <= 0) continue;
    metrics.emplace_back(phase.tag + "_ai", phase.arithmetic_intensity);
    metrics.emplace_back(phase.tag + "_gflops", phase.gflops_rate);
    metrics.emplace_back(phase.tag + "_weight", phase.weight);
  }
  return metrics;
}

void summarize_fig05(const SweepResult& result, std::ostream& os) {
  const auto machine = memsim::MachineConfig::skylake_testbed();
  const auto local = RooflineModel::local_tier(machine);
  const auto multi = RooflineModel::multi_tier(machine);
  os << "Platform roofs: peak " << Table::num(local.peak_gflops(), 0) << " Gflop/s; local tier "
     << Table::num(local.bandwidth_gbps(), 0) << " GB/s (ridge at AI="
     << Table::num(local.ridge_point(), 2) << "); +pool tier "
     << Table::num(multi.bandwidth_gbps(), 0) << " GB/s (dashed extension, ridge at AI="
     << Table::num(multi.ridge_point(), 2) << ")\n\n";
  Table t({"phase", "AI (flop/B)", "measured Gflop/s", "roof Gflop/s", "roof utilization",
           "bound"});
  for (const auto& row : result.rows) {
    for (const char* tag : {"p1", "p2", "p3"}) {
      const auto ai = metric(row, std::string(tag) + "_ai");
      if (!ai) continue;
      const double gflops = metric_or(row, std::string(tag) + "_gflops");
      const double roof = local.attainable_gflops(std::max(*ai, 1e-3));
      t.add_row({std::string(workloads::app_name(row.point.app)) + "-" + tag,
                 Table::num(*ai, 3), Table::num(gflops, 2), Table::num(roof, 1),
                 Table::pct(std::min(gflops / roof, 1.5)),
                 *ai < local.ridge_point() ? "memory" : "compute"});
    }
  }
  t.print(os);
  os << "\nExpected shape (paper): phases span the memory-bound to compute-bound\n"
        "spectrum; HPL-p2 approaches the compute roof, Hypre/NekRS sit on the\n"
        "bandwidth slope at low AI, BFS/XSBench run far below both roofs\n"
        "(latency-bound).\n";
}

// ---- fig06: bandwidth-capacity scaling curves -------------------------------

std::vector<Metric> measure_fig06(const SweepPoint& point) {
  MultiLevelProfiler profiler(point.run_config());
  auto wl = point.make_workload();
  const auto l1 = profiler.level1(*wl);
  const auto& curve = l1.scaling_curve;
  std::vector<Metric> metrics;
  metrics.emplace_back("footprint_mib", static_cast<double>(l1.peak_rss_bytes) / (1 << 20));
  for (const double f : {0.10, 0.20, 0.30, 0.50, 0.70, 0.90})
    metrics.emplace_back("af_" + std::to_string(static_cast<int>(f * 100)),
                         curve.access_fraction_at(f));
  metrics.emplace_back("skew", curve.skewness());
  const auto samples = curve.sample(kCurveSamples);
  for (std::size_t i = 0; i < samples.size(); ++i)
    metrics.emplace_back(curve_metric(i), samples[i]);
  return metrics;
}

void summarize_fig06(const SweepResult& result, std::ostream& os) {
  Table t({"app", "scale", "footprint", "10%", "20%", "30%", "50%", "70%", "90%", "skew"});
  for (const auto& row : result.rows) {
    t.add_row({workloads::app_name(row.point.app), std::to_string(row.point.scale) + "x",
               Table::num(metric_or(row, "footprint_mib"), 1) + " MiB",
               Table::pct(metric_or(row, "af_10")), Table::pct(metric_or(row, "af_20")),
               Table::pct(metric_or(row, "af_30")), Table::pct(metric_or(row, "af_50")),
               Table::pct(metric_or(row, "af_70")), Table::pct(metric_or(row, "af_90")),
               Table::num(metric_or(row, "skew"), 3)});
  }
  t.print(os);

  const auto sampled_distance = [&](const SweepRow& a, const SweepRow& b) {
    double d = 0.0;
    for (std::size_t i = 0; i < kCurveSamples; ++i)
      d = std::max(d, std::abs(metric_or(a, curve_metric(i)) - metric_or(b, curve_metric(i))));
    return d;
  };
  const auto row_at = [&](App app, int scale) -> const SweepRow* {
    for (const auto& row : result.rows)
      if (row.point.app == app && row.point.scale == scale) return &row;
    return nullptr;
  };
  os << "\nCross-scale curve distance (max |CDF_a - CDF_b|, sampled):\n";
  Table d({"app", "1x vs 2x", "1x vs 4x", "reading"});
  for (const auto app : workloads::kAllApps) {
    const auto *r1 = row_at(app, 1), *r2 = row_at(app, 2), *r4 = row_at(app, 4);
    if (!r1 || !r2 || !r4) continue;
    const double d12 = sampled_distance(*r1, *r2);
    const double d14 = sampled_distance(*r1, *r4);
    d.add_row({workloads::app_name(app), Table::num(d12, 3), Table::num(d14, 3),
               d14 < 0.12 ? "consistent across scales" : "distribution shifts"});
  }
  d.print(os);
  os << "\nExpected shape (paper): HPL and Hypre near-diagonal (uniform); BFS and\n"
        "XSBench strongly skewed; BFS shifts left as the input grows; SuperLU\n"
        "moves from skewed toward uniform with scale; the others overlap.\n";
}

// ---- fig08: prefetch metrics ------------------------------------------------

std::vector<Metric> measure_fig08(const SweepPoint& point) {
  MultiLevelProfiler profiler(point.run_config());
  auto wl = point.make_workload();
  const auto l1 = profiler.level1(*wl);
  return {{"accuracy", l1.prefetch.accuracy},
          {"coverage", l1.prefetch.coverage},
          {"excess_traffic", l1.prefetch.excess_traffic},
          {"performance_gain", l1.prefetch.performance_gain}};
}

void summarize_fig08(const SweepResult& result, std::ostream& os) {
  Table t({"app", "accuracy", "coverage", "excess traffic", "performance gain"});
  for (const auto& row : result.rows)
    t.add_row({workloads::app_name(row.point.app), Table::pct(metric_or(row, "accuracy")),
               Table::pct(metric_or(row, "coverage")),
               Table::pct(metric_or(row, "excess_traffic")),
               Table::pct(metric_or(row, "performance_gain"))});
  t.print(os);
  os << "\nExpected shape (paper): all but XSBench and BFS above ~80% accuracy;\n"
        "Hypre and NekRS lead coverage (~70%); excess traffic low (2-6%) except\n"
        "SuperLU (~37%) which still gains ~31%; XSBench's prefetcher throttles\n"
        "itself (lowest accuracy yet low excess traffic, <1% coverage).\n";
}

// ---- fig09: per-phase remote access ratios ----------------------------------

std::vector<Metric> measure_fig09(const SweepPoint& point) {
  MultiLevelProfiler profiler(point.run_config());
  auto wl = point.make_workload();
  const auto l2 = profiler.level2(*wl, point.ratio);
  const auto report = advise(l2);
  std::vector<Metric> metrics = {{"remote_access_total", l2.remote_access_ratio_total},
                                 {"r_bw", l2.remote_bandwidth_ratio}};
  for (std::size_t i = 0; i < l2.phases.size(); ++i) {
    const auto& phase = l2.phases[i];
    if (phase.weight <= 0) continue;
    metrics.emplace_back(phase.tag + "_remote", phase.remote_access_ratio);
    metrics.emplace_back(phase.tag + "_weight", phase.weight);
    metrics.emplace_back(phase.tag + "_verdict",
                         static_cast<double>(report.phases[i].verdict));
  }
  return metrics;
}

void summarize_fig09(const SweepResult& result, std::ostream& os) {
  for (const double ratio : {0.25, 0.50, 0.75}) {
    os << "\n--- remote capacity ratio R_cap = " << Table::pct(ratio) << " ---\n";
    Table t({"phase", "%remote access", "vs R_cap", "vs R_bw", "verdict"});
    for (const auto& row : result.rows) {
      if (row.point.ratio != ratio) continue;
      const double r_bw = metric_or(row, "r_bw");
      for (const char* tag : {"p1", "p2", "p3"}) {
        const auto remote = metric(row, std::string(tag) + "_remote");
        if (!remote) continue;
        const auto verdict = static_cast<PlacementVerdict>(
            static_cast<int>(metric_or(row, std::string(tag) + "_verdict")));
        t.add_row({std::string(workloads::app_name(row.point.app)) + "-" + tag,
                   Table::pct(*remote), *remote > ratio ? "above" : "below",
                   *remote > r_bw ? "above" : "below", verdict_name(verdict)});
      }
    }
    t.print(os);
  }
  os << "\nExpected shape (paper): at 25% remote the references are close and most\n"
        "apps sit near them (little tuning space); at 75% remote HPL, NekRS and\n"
        "BFS exceed even R_cap, p2 phases sit far above R_bw, and XSBench stays\n"
        "below ~6% remote access in every configuration.\n";
}

// ---- fig10: interference sensitivity ----------------------------------------

const std::vector<double> kFig10Lois = {0, 10, 20, 30, 40, 50};

std::vector<Metric> measure_fig10(const SweepPoint& point) {
  auto wl = point.make_workload();
  const auto curve = sensitivity_sweep(*wl, point.run_config(), point.ratio, kFig10Lois, "p2");
  std::vector<Metric> metrics;
  for (const auto& pt : curve) metrics.emplace_back(loi_metric(pt.loi), pt.relative_performance);
  metrics.emplace_back("loss_at_50", 1.0 - curve.back().relative_performance);
  return metrics;
}

void summarize_fig10(const SweepResult& result, std::ostream& os) {
  for (const double ratio : {0.25, 0.50, 0.75}) {
    os << "\n--- remote capacity ratio " << Table::pct(ratio) << " ---\n";
    Table t({"app", "LoI=0", "LoI=10", "LoI=20", "LoI=30", "LoI=40", "LoI=50", "loss@50"});
    for (const auto& row : result.rows) {
      if (row.point.ratio != ratio) continue;
      std::vector<std::string> cells{workloads::app_name(row.point.app)};
      for (const double loi : kFig10Lois)
        cells.push_back(Table::num(metric_or(row, loi_metric(loi)), 3));
      cells.push_back(Table::pct(metric_or(row, "loss_at_50")));
      t.add_row(std::move(cells));
    }
    t.print(os);
  }
  os << "\nExpected shape (paper): every app degrades monotonically with LoI;\n"
        "Hypre and NekRS are the most sensitive (~15%/13% loss at LoI=50 on the\n"
        "50/50 split) due to low arithmetic intensity; HPL stays under ~5% loss\n"
        "despite high remote access (compute bound); XSBench/BFS in between.\n";
}

// ---- fig11: LBench validation / induced interference ------------------------

std::vector<Metric> measure_fig11(const SweepPoint& point) {
  MultiLevelProfiler profiler(point.run_config());
  auto wl = point.make_workload();
  const auto l2 = profiler.level2(*wl, point.ratio);
  const auto induced = induced_interference(l2.run, machine_for_fabric(point.fabric));
  return {{"ic_mean", induced.ic_mean}, {"ic_min", induced.ic_min}, {"ic_max", induced.ic_max}};
}

void summarize_fig11(const SweepResult& result, std::ostream& os) {
  const auto machine = memsim::MachineConfig::skylake_testbed();

  os << "\n[left] configured intensity vs. measured LoI:\n";
  Table left({"configured %", "nflop(1T)", "measured LoI 1 thread", "nflop(2T)",
              "measured LoI 2 threads"});
  LbenchCalibration cal1(machine, 1);
  LbenchCalibration cal2(machine, 2);
  for (const double target : {10.0, 20.0, 30.0, 40.0, 50.0}) {
    const auto n1 = cal1.nflop_for_loi(target);
    const auto n2 = cal2.nflop_for_loi(target);
    left.add_row({Table::num(target, 0), std::to_string(n1),
                  Table::num(std::min(cal1.loi_for_nflop(n1), 100.0), 1), std::to_string(n2),
                  Table::num(std::min(cal2.loi_for_nflop(n2), 100.0), 1)});
  }
  left.print(os);

  os << "\n[middle] IC and PCM traffic vs. background intensity (12 threads):\n";
  Table mid({"flops/element", "offered traffic GB/s", "PCM traffic GB/s (saturates)",
             "interference coefficient"});
  for (const std::uint32_t nflop : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const double offered = lbench_offered_traffic_gbps(machine, machine.threads, nflop);
    const double pcm = std::min(offered, machine.pool_link().traffic_capacity_gbps);
    const double util = offered / machine.pool_link().traffic_capacity_gbps;
    mid.add_row({std::to_string(nflop), Table::num(offered, 1), Table::num(pcm, 1),
                 Table::num(interference_coefficient_at(machine, util), 2)});
  }
  mid.print(os);

  os << "\n[right] interference coefficient induced by each application (50% pooled):\n";
  Table right({"app", "IC (time-weighted)", "IC min phase", "IC max phase"});
  for (const auto& row : result.rows)
    right.add_row({workloads::app_name(row.point.app), Table::num(metric_or(row, "ic_mean"), 2),
                   Table::num(metric_or(row, "ic_min"), 2),
                   Table::num(metric_or(row, "ic_max"), 2)});
  right.print(os);
  os << "\nExpected shape (paper): NekRS and Hypre induce the most interference,\n"
        "HPL and XSBench the least; compute phases dominate the spread (e.g.\n"
        "Hypre's solve vs. its initialization).\n";
}

// ---- fig12: BFS data-placement case study -----------------------------------

workloads::BfsVariant bfs_variant_of(const std::string& name) {
  if (name == "parents-first") return workloads::BfsVariant::kParentsFirst;
  if (name == "optimized") return workloads::BfsVariant::kOptimized;
  return workloads::BfsVariant::kBaseline;
}

std::vector<Metric> measure_fig12(const SweepPoint& point) {
  workloads::BfsParams params = workloads::BfsParams::at_scale(point.scale, point.seed);
  params.variant = bfs_variant_of(point.variant);
  workloads::Bfs bfs(params);
  MultiLevelProfiler profiler(point.run_config());
  const auto l2 = profiler.level2(bfs, point.ratio);
  double p2_ms = 0.0, p2_remote = 0.0;
  for (const auto& phase : l2.run.phases)
    if (phase.tag == "p2") p2_ms = phase.time_s * 1e3;
  for (const auto& phase : l2.phases)
    if (phase.tag == "p2") p2_remote = phase.remote_access_ratio;

  workloads::Bfs bfs_sens(params);
  const auto curve = sensitivity_sweep(bfs_sens, point.run_config(), point.ratio, {0, 50});
  return {{"p2_ms", p2_ms},
          {"remote_mb", static_cast<double>(l2.run.counters.fabric_dram_bytes()) / 1e6},
          {"p2_remote", p2_remote},
          {"remote_total", l2.remote_access_ratio_total},
          {"relperf_loi50", curve.back().relative_performance}};
}

void summarize_fig12(const SweepResult& result, std::ostream& os) {
  for (const double ratio : {0.50, 0.75}) {
    os << "\n--- " << Table::pct(ratio) << " pooled ---\n";
    Table t({"variant", "BFS time (ms)", "speedup", "remote bytes (MB)", "%remote (p2)",
             "%remote (total)", "rel perf @ LoI=50"});
    double base_time = 0.0;
    for (const auto& row : result.rows) {
      if (row.point.ratio != ratio) continue;
      const double time_ms = metric_or(row, "p2_ms");
      if (row.point.variant == "baseline") base_time = time_ms;
      t.add_row({row.point.variant, Table::num(time_ms, 3),
                 Table::num(base_time > 0 && time_ms > 0 ? base_time / time_ms : 1.0, 3) + "x",
                 Table::num(metric_or(row, "remote_mb"), 1),
                 Table::pct(metric_or(row, "p2_remote")),
                 Table::pct(metric_or(row, "remote_total")),
                 Table::num(metric_or(row, "relperf_loi50"), 3)});
    }
    t.print(os);
  }
  os << "\nExpected shape (paper): remote access ratio drops 99% -> 80% -> 50% at\n"
        "75% pooling (13% total speedup); at 50% pooling the optimized version\n"
        "nearly eliminates remote access; optimized BFS is much less sensitive\n"
        "to interference.\n";
}

// ---- ext-cxl: pool-fabric what-ifs ------------------------------------------

std::vector<Metric> measure_ext_cxl(const SweepPoint& point) {
  RunConfig cfg;
  cfg.machine = machine_for_fabric(point.fabric);

  auto wl_local = point.make_workload();
  const auto local = run_workload(*wl_local, cfg);

  RunConfig pooled = cfg;
  pooled.remote_capacity_ratio = 0.5;
  auto wl_pooled = point.make_workload();
  const auto half = run_workload(*wl_pooled, pooled);

  auto wl_sens = point.make_workload();
  const auto curve = sensitivity_sweep(*wl_sens, cfg, 0.5, {0, 50}, "p2");

  return {{"local_ms", local.elapsed_s * 1e3},
          {"pooled_ms", half.elapsed_s * 1e3},
          {"pooling_penalty", half.elapsed_s / local.elapsed_s},
          {"relperf_loi50", curve.back().relative_performance}};
}

void summarize_ext_cxl(const SweepResult& result, std::ostream& os) {
  os << "\nFabric parameters:\n";
  Table f({"fabric", "data BW (GB/s)", "latency (ns)", "traffic cap (GB/s)"});
  for (const char* fabric : {"upi", "cxl", "cxl-switched", "split"}) {
    const auto m = machine_for_fabric(fabric);
    f.add_row({fabric, Table::num(m.pool_tier().bandwidth_gbps, 0),
               Table::num(m.pool_tier().latency_ns, 0),
               Table::num(m.pool_link().traffic_capacity_gbps, 0)});
  }
  f.print(os);

  os << "\nPooling penalty (runtime at 50% pooled / runtime local-only) and\n"
        "interference sensitivity (p2 relative performance at LoI=50):\n";
  Table t({"app", "fabric", "pooling penalty", "sensitivity @ LoI=50"});
  for (const auto& row : result.rows)
    t.add_row({workloads::app_name(row.point.app), row.point.fabric,
               Table::num(metric_or(row, "pooling_penalty"), 3) + "x",
               Table::num(metric_or(row, "relperf_loi50"), 3)});
  t.print(os);
  os << "\nReading: direct CXL turns pooling from a penalty into a win for the\n"
        "bandwidth-bound app; the switch's extra latency gives that win back for\n"
        "the latency-exposed graph workload (BFS). XSBench barely moves because\n"
        "it already keeps its hot data local (Sec. 5.1).\n";
}

// ---- ext-interleave: first-touch vs. weighted N:M placement -----------------

std::optional<memsim::MemPolicy> policy_of(const std::string& variant) {
  if (variant == "interleave-2:1") return memsim::MemPolicy::interleave(2, 1);
  if (variant == "interleave-1:1") return memsim::MemPolicy::interleave(1, 1);
  return std::nullopt;  // first-touch
}

std::vector<Metric> measure_ext_interleave(const SweepPoint& point) {
  auto wl = point.make_workload();
  sim::EngineConfig cfg;
  cfg.machine = machine_for_fabric(point.fabric);
  cfg.default_policy_override = policy_of(point.variant);
  sim::Engine eng(cfg);
  (void)wl->run(eng);
  eng.finish();
  const auto& c = eng.counters();
  const double seconds = eng.elapsed_seconds();
  const double agg_gbps =
      seconds > 0 ? static_cast<double>(c.dram_bytes_total()) / seconds / 1e9 : 0.0;
  const double remote = c.dram_bytes_total() > 0
                            ? static_cast<double>(c.fabric_dram_bytes()) /
                                  static_cast<double>(c.dram_bytes_total())
                            : 0.0;
  return {{"time_ms", seconds * 1e3}, {"agg_dram_gbps", agg_gbps}, {"remote_share", remote}};
}

void summarize_ext_interleave(const SweepResult& result, std::ostream& os) {
  const auto machine = memsim::MachineConfig::skylake_testbed();
  os << "Model upper bound: balanced split at R_bw = "
     << Table::pct(machine.remote_bandwidth_ratio()) << " raises aggregate bandwidth above the "
     << Table::num(machine.node_tier().bandwidth_gbps, 0) << " GB/s local tier.\n\n";
  Table t({"app", "policy", "time (ms)", "DRAM GB/s (aggregate)", "%remote access",
           "vs first-touch"});
  double base_ms = 0.0;
  for (const auto& row : result.rows) {
    const double ms = metric_or(row, "time_ms");
    if (row.point.variant == "first-touch") base_ms = ms;
    t.add_row({workloads::app_name(row.point.app), row.point.variant, Table::num(ms, 3),
               Table::num(metric_or(row, "agg_dram_gbps"), 1),
               Table::pct(metric_or(row, "remote_share")),
               Table::num(base_ms > 0 && ms > 0 ? base_ms / ms : 1.0, 3) + "x"});
  }
  t.print(os);
  os << "\nReading: 2:1 interleaving pushes ~1/3 of the stream onto the pool tier\n"
        "and raises aggregate bandwidth toward B_local+B_pool — multi-tier memory\n"
        "can be FASTER than local-only for bandwidth-bound codes. 1:1 overshoots\n"
        "the pool's share and gives some of the gain back.\n";
}

// ---- ext-three-tier: capacity spill chain over DRAM + CXL + switched pool ---

/// Capacity shaping for a spill-chain experiment at remote ratio r: the
/// node tier holds (1-r) of the footprint. On an N-tier topology the first
/// pool holds half the spill and the chain's tail takes the rest; two-tier
/// fabrics absorb the whole spill on their single pool.
RunConfig spill_chain_config(const SweepPoint& point) {
  RunConfig cfg;
  cfg.machine = machine_for_fabric(point.fabric);
  const auto fractions = spill_capacity_fractions(cfg.machine, point.ratio);
  if (!fractions.empty()) {
    cfg.capacity_fractions = fractions;
  } else {
    cfg.remote_capacity_ratio = point.ratio;
  }
  cfg.background_loi = point.loi;
  cfg.prefetch_enabled = point.prefetch;
  return cfg;
}

std::vector<Metric> measure_ext_three_tier(const SweepPoint& point) {
  const RunConfig cfg = spill_chain_config(point);
  auto wl = point.make_workload();
  const auto run = run_workload(*wl, cfg);
  std::vector<Metric> metrics{{"time_ms", run.elapsed_s * 1e3},
                              {"remote_access", run.remote_access_ratio()}};
  const auto total = static_cast<double>(run.counters.dram_bytes_total());
  for (memsim::TierId t = 0; t < cfg.machine.num_tiers(); ++t)
    metrics.emplace_back(
        "share_t" + std::to_string(t),
        total > 0 ? static_cast<double>(run.counters.dram_bytes(t)) / total : 0.0);
  return metrics;
}

void summarize_ext_three_tier(const SweepResult& result, std::ostream& os) {
  os << "Topologies under test:\n";
  Table f({"preset", "tiers"});
  for (const char* fabric : {"cxl", "three-tier"}) {
    const auto m = machine_for_fabric(fabric);
    std::string tiers;
    for (memsim::TierId t = 0; t < m.num_tiers(); ++t) {
      if (t) tiers += " -> ";
      tiers += m.tier(t).name + " (" + Table::num(m.tier(t).bandwidth_gbps, 0) + " GB/s, " +
               Table::num(m.tier(t).latency_ns, 0) + " ns)";
    }
    f.add_row({fabric, tiers});
  }
  f.print(os);

  os << "\n";
  Table t({"app", "ratio", "topology", "time (ms)", "%off-node", "%t0", "%t1", "%t2"});
  for (const auto& row : result.rows) {
    t.add_row({workloads::app_name(row.point.app), Table::pct(row.point.ratio),
               row.point.fabric, Table::num(metric_or(row, "time_ms"), 3),
               Table::pct(metric_or(row, "remote_access")),
               Table::pct(metric_or(row, "share_t0")), Table::pct(metric_or(row, "share_t1")),
               metric(row, "share_t2") ? Table::pct(metric_or(row, "share_t2")) : "-"});
  }
  t.print(os);
  os << "\nReading: on the three-tier chain the spill beyond the direct CXL\n"
        "device lands on the switched pool and pays the switch traversal; the\n"
        "extra hop never helps a latency-exposed app, while the second link\n"
        "can add aggregate fabric bandwidth for streaming apps.\n";
}

// ---- ext-hybrid: split+pool hybrid (two asymmetric pools side by side) ------

std::vector<Metric> measure_ext_hybrid(const SweepPoint& point) {
  RunConfig cfg;
  cfg.machine = machine_for_fabric(point.fabric);

  auto wl_local = point.make_workload();
  const auto local = run_workload(*wl_local, cfg);

  const RunConfig pooled = spill_chain_config(point);
  auto wl_pooled = point.make_workload();
  const auto half = run_workload(*wl_pooled, pooled);

  return {{"local_ms", local.elapsed_s * 1e3},
          {"pooled_ms", half.elapsed_s * 1e3},
          {"pooling_penalty", half.elapsed_s / local.elapsed_s},
          {"remote_access", half.remote_access_ratio()}};
}

void summarize_ext_hybrid(const SweepResult& result, std::ostream& os) {
  os << "Pooling penalty (runtime at the swept split / runtime local-only):\n\n";
  Table t({"app", "topology", "local (ms)", "pooled (ms)", "penalty", "%off-node"});
  for (const auto& row : result.rows)
    t.add_row({workloads::app_name(row.point.app), row.point.fabric,
               Table::num(metric_or(row, "local_ms"), 3),
               Table::num(metric_or(row, "pooled_ms"), 3),
               Table::num(metric_or(row, "pooling_penalty"), 3) + "x",
               Table::pct(metric_or(row, "remote_access"))});
  t.print(os);
  os << "\nReading: the hybrid places half the spill on the CXL device and half\n"
        "on peer-borrowed memory. Each pool queues on its own link, so the\n"
        "second link adds aggregate fabric bandwidth (hybrid can even beat the\n"
        "pure CXL pool for streaming apps) while the peer tier's long latency\n"
        "keeps it far ahead of pure split borrowing for latency-exposed apps.\n";
}

// ---- ext-staged-migration: cost-model planner, direct vs. multi-hop ---------

/// Per-link LoI vector named by a scenario variant (indexed by TierId;
/// "near" loads the first fabric link, "far" the one behind it).
std::vector<double> per_link_loi_of(const std::string& variant) {
  if (variant == "near-loaded") return {0.0, 40.0, 0.0};
  if (variant == "far-loaded") return {0.0, 0.0, 40.0};
  if (variant == "both-loaded") return {0.0, 40.0, 40.0};
  if (variant == "mid-loaded") return {0.0, 50.0, 0.0};
  if (variant == "overloaded") return {0.0, 200.0, 0.0};  // oversubscribed device link
  return {};  // idle
}

/// One migration-runtime run of the point's workload on its (capacity
/// shaped) topology, with staging allowed or restricted to direct moves.
struct StagedRun {
  double elapsed_ms = 0.0;
  double transfer_cost_ms = 0.0;
  std::uint64_t staged_moves = 0;
  std::uint64_t promoted = 0;
  std::uint64_t demoted = 0;
};

StagedRun run_with_planner(const SweepPoint& point, bool allow_staging) {
  auto wl = point.make_workload();
  sim::EngineConfig cfg;
  const double r = point.ratio == kNodeOnly ? 0.5 : point.ratio;
  cfg.machine =
      machine_with_spill(machine_for_fabric(point.fabric), r, wl->footprint_bytes());
  cfg.background_loi_per_tier = per_link_loi_of(point.variant);
  // Small epochs so the daemon gets frequent scan opportunities.
  cfg.epoch_accesses = 250'000;
  sim::Engine eng(cfg);

  MigrationConfig mcfg;
  mcfg.period_epochs = 1;
  mcfg.max_pages_per_scan = 16;
  // Tight per-segment budgets (further shrunk by the planner on loaded
  // links): a swap through the device link needs two budget units, so when
  // that link carries background load the direct-to-node path is priced out
  // of the scan entirely — exactly the regime where hopping pages across
  // the switch segment (staging up, or evacuating hot pages around the
  // loaded link) is the only move the cost model can still afford.
  mcfg.link_budget_pages = 2;
  mcfg.allow_staging = allow_staging;
  MigrationRuntime runtime(mcfg);
  runtime.attach(eng);

  (void)wl->run(eng);
  eng.finish();

  StagedRun out;
  out.elapsed_ms = eng.elapsed_seconds() * 1e3;
  out.transfer_cost_ms = runtime.transfer_cost_s() * 1e3;
  out.staged_moves = runtime.staged_moves();
  out.promoted = runtime.pages_promoted();
  out.demoted = runtime.pages_demoted();
  return out;
}

std::vector<Metric> measure_ext_staged_migration(const SweepPoint& point) {
  const StagedRun direct = run_with_planner(point, /*allow_staging=*/false);
  const StagedRun staged = run_with_planner(point, /*allow_staging=*/true);
  return {{"direct_ms", direct.elapsed_ms},
          {"staged_ms", staged.elapsed_ms},
          {"staged_gain", staged.elapsed_ms > 0 ? direct.elapsed_ms / staged.elapsed_ms : 1.0},
          {"staged_moves", static_cast<double>(staged.staged_moves)},
          {"staged_promoted", static_cast<double>(staged.promoted)},
          {"direct_promoted", static_cast<double>(direct.promoted)},
          {"staged_cost_ms", staged.transfer_cost_ms},
          {"direct_cost_ms", direct.transfer_cost_ms}};
}

void summarize_ext_staged_migration(const SweepResult& result, std::ostream& os) {
  Table t({"app", "ratio", "links", "direct (ms)", "staged (ms)", "gain", "staged moves",
           "xfer direct (ms)", "xfer staged (ms)"});
  for (const auto& row : result.rows) {
    t.add_row({workloads::app_name(row.point.app), Table::pct(row.point.ratio),
               row.point.variant, Table::num(metric_or(row, "direct_ms"), 3),
               Table::num(metric_or(row, "staged_ms"), 3),
               Table::num(metric_or(row, "staged_gain"), 3) + "x",
               Table::num(metric_or(row, "staged_moves"), 0),
               Table::num(metric_or(row, "direct_cost_ms"), 3),
               Table::num(metric_or(row, "staged_cost_ms"), 3)});
  }
  t.print(os);
  os << "\nReading: with pages spilled two hops deep and tight per-link budgets,\n"
        "the multi-hop planner routes pages segment by segment: it stages\n"
        "switched-pool pages through the direct CXL device when the long-haul\n"
        "path is priced out, and under heavy load on the device link it even\n"
        "evacuates hot device pages across the switch to the idle pool — a move\n"
        "the direct-to-node planner cannot express. Gain > 1 means the staged\n"
        "planner beat direct-only end to end, including charged transfer cost.\n";
}

// ---- ext-transient-loi: bursty congestion, dynamic vs. static-belief plan ---

/// The square wave of the transient-congestion study: the device link
/// (tier 1) bursts to an oversubscribed LoI for half of each period. The
/// variant names the burst cadence in epochs.
memsim::LoiSchedule transient_schedule_of(const std::string& variant) {
  const std::uint64_t period = variant == "burst-32" ? 32 : 8;
  memsim::LoiSchedule schedule;
  schedule.set(1, memsim::LoiWaveform::square(period, 0.5, 85.0, 0.0));
  return schedule;
}

struct TransientRun {
  double elapsed_ms = 0.0;
  double transfer_cost_ms = 0.0;
  std::uint64_t promoted = 0;
  std::uint64_t staged = 0;
  std::uint64_t deferred = 0;
};

/// One planner run under the bursty schedule. With an empty `assumed_loi`
/// the planner prices every scan at the links' live state (and may defer
/// across bursts); a non-empty vector models a planner provisioned with
/// only the wave's time average — both runs *experience* the same wave.
TransientRun run_under_wave(const SweepPoint& point, const memsim::LoiSchedule& schedule,
                            std::vector<double> assumed_loi) {
  auto wl = point.make_workload();
  sim::EngineConfig cfg;
  const double r = point.ratio == kNodeOnly ? 0.5 : point.ratio;
  cfg.machine = machine_with_spill(machine_for_fabric(point.fabric), r, wl->footprint_bytes());
  cfg.loi_schedule = schedule;
  cfg.epoch_accesses = 250'000;  // frequent scan opportunities
  sim::Engine eng(cfg);

  MigrationConfig mcfg;
  mcfg.period_epochs = 1;
  mcfg.max_pages_per_scan = 64;
  mcfg.link_budget_pages = 64;
  mcfg.min_heat = 4;
  mcfg.assumed_loi = std::move(assumed_loi);
  MigrationRuntime runtime(mcfg);
  runtime.attach(eng);

  (void)wl->run(eng);
  eng.finish();

  TransientRun out;
  out.elapsed_ms = eng.elapsed_seconds() * 1e3;
  out.transfer_cost_ms = runtime.transfer_cost_s() * 1e3;
  out.promoted = runtime.pages_promoted();
  out.staged = runtime.staged_moves();
  out.deferred = runtime.deferred_moves();
  return out;
}

std::vector<Metric> measure_ext_transient_loi(const SweepPoint& point) {
  const memsim::LoiSchedule schedule = transient_schedule_of(point.variant);
  const TransientRun dynamic = run_under_wave(point, schedule, {});
  // The static belief: the wave's time average on the device link — what a
  // QoS provisioner without runtime telemetry would plan against.
  const double mean_loi = schedule.waveform(1)->mean();
  const TransientRun fixed = run_under_wave(point, schedule, {0.0, mean_loi, 0.0});
  return {{"dynamic_ms", dynamic.elapsed_ms},
          {"static_ms", fixed.elapsed_ms},
          {"dynamic_gain", dynamic.elapsed_ms > 0 ? fixed.elapsed_ms / dynamic.elapsed_ms : 1.0},
          {"dynamic_deferred", static_cast<double>(dynamic.deferred)},
          {"dynamic_staged", static_cast<double>(dynamic.staged)},
          {"dynamic_promoted", static_cast<double>(dynamic.promoted)},
          {"static_promoted", static_cast<double>(fixed.promoted)},
          {"dynamic_cost_ms", dynamic.transfer_cost_ms},
          {"static_cost_ms", fixed.transfer_cost_ms}};
}

void summarize_ext_transient_loi(const SweepResult& result, std::ostream& os) {
  Table t({"app", "ratio", "wave", "dynamic (ms)", "static-LoI (ms)", "gain", "deferred",
           "staged", "xfer dyn (ms)", "xfer static (ms)"});
  for (const auto& row : result.rows) {
    t.add_row({workloads::app_name(row.point.app), Table::pct(row.point.ratio),
               row.point.variant, Table::num(metric_or(row, "dynamic_ms"), 3),
               Table::num(metric_or(row, "static_ms"), 3),
               Table::num(metric_or(row, "dynamic_gain"), 3) + "x",
               Table::num(metric_or(row, "dynamic_deferred"), 0),
               Table::num(metric_or(row, "dynamic_staged"), 0),
               Table::num(metric_or(row, "dynamic_cost_ms"), 3),
               Table::num(metric_or(row, "static_cost_ms"), 3)});
  }
  t.print(os);
  os << "\nReading: both planners run under the same square-wave congestion on\n"
        "the device link; only their *pricing* differs. The dynamic planner\n"
        "re-prices every scan at the live LoI — it defers moves across bursts,\n"
        "shrinks the loaded segment's budget, and stages through momentarily\n"
        "idle links — while the static planner trusts the time average and pays\n"
        "the true (oversubscribed) cost for every move issued mid-burst. Gain\n"
        "> 1 means dynamic pricing beat static provisioning end to end.\n";
}

// ---- ext-queue-contention: migration bursts vs. demand misses on one queue --

/// Scan cadence encoded in the variant name: longer cadences clump the
/// same migration work into fewer, bigger bulk bursts.
std::uint64_t scan_period_of(const std::string& variant) {
  return variant == "scan-16" ? 16 : 8;
}

/// Epoch-trace statistics of one queue-model planner run. Epochs are split
/// into *burst* epochs (bulk migration bytes flowed on some link) and
/// *quiet* epochs (no bulk this epoch or within one estimator window
/// before it); epochs in the taper between the two count as neither, so
/// the burst/quiet contrast is not diluted by the window's decay.
struct ContentionRun {
  double elapsed_ms = 0.0;
  double burst_infl = 1.0;   ///< time-mean demand-latency inflation while bulk flows
  double quiet_infl = 1.0;   ///< same far from bursts (exactly 1: no cross traffic)
  double burst_share = 0.0;  ///< fraction of wall time in burst epochs
  double migrated_mib = 0.0;
  std::uint64_t promoted = 0;
  std::uint64_t self_deferred = 0;
};

ContentionRun run_queue_contention(const SweepPoint& point, std::uint64_t scan_period,
                                   bool defer) {
  auto wl = point.make_workload();
  sim::EngineConfig cfg;
  const double r = point.ratio == kNodeOnly ? 0.5 : point.ratio;
  cfg.machine = machine_with_spill(machine_for_fabric(point.fabric), r, wl->footprint_bytes());
  cfg.link_model = memsim::LinkModelKind::kQueue;  // the model under study
  cfg.epoch_accesses = 250'000;
  sim::Engine eng(cfg);

  MigrationConfig mcfg;
  mcfg.period_epochs = scan_period;  // long cadence => clumped bursts
  mcfg.max_pages_per_scan = 512;     // big scans: the burst is the point
  mcfg.link_budget_pages = 512;
  mcfg.min_heat = 1;  // greedy low-value tail for the deferral to trim
  mcfg.defer_on_self_congestion = defer;
  MigrationRuntime runtime(mcfg);
  runtime.attach(eng);

  (void)wl->run(eng);
  eng.finish();

  int window = 1;
  for (memsim::TierId t = 0; t < cfg.machine.num_tiers(); ++t)
    if (cfg.machine.topology.is_fabric(t) && cfg.machine.tier(t).link)
      window = std::max(window, cfg.machine.tier(t).link->queue_window_epochs);

  ContentionRun out;
  out.elapsed_ms = eng.elapsed_seconds() * 1e3;
  out.promoted = runtime.pages_promoted();
  out.self_deferred = runtime.self_deferred_moves();

  double burst_s = 0, burst_mult_s = 0, quiet_s = 0, quiet_mult_s = 0, total_s = 0;
  std::uint64_t total_bulk = 0;
  long long last_burst = -(window + 1);
  const auto& epochs = eng.epochs();
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    const auto& e = epochs[i];
    std::uint64_t bulk = 0;
    for (const auto b : e.migration_bytes) bulk += b;
    total_bulk += bulk;
    // Worst demand-latency inflation across links: how much longer a miss
    // on the most bulk-loaded fabric path took *because of* the bulk class
    // (own-load effects divide out; see EpochRecord::link_demand_inflation).
    double infl = 1.0;
    for (const double m : e.link_demand_inflation) infl = std::max(infl, m);
    total_s += e.duration_s;
    if (bulk > 0) {
      last_burst = static_cast<long long>(i);
      burst_s += e.duration_s;
      burst_mult_s += infl * e.duration_s;
    } else if (static_cast<long long>(i) - last_burst > window) {
      quiet_s += e.duration_s;
      quiet_mult_s += infl * e.duration_s;
    }
  }
  if (burst_s > 0) out.burst_infl = burst_mult_s / burst_s;
  if (quiet_s > 0) out.quiet_infl = quiet_mult_s / quiet_s;
  if (total_s > 0) out.burst_share = burst_s / total_s;
  out.migrated_mib = static_cast<double>(total_bulk) / (1 << 20);
  return out;
}

std::vector<Metric> measure_ext_queue_contention(const SweepPoint& point) {
  const std::uint64_t period = scan_period_of(point.variant);
  const ContentionRun eager = run_queue_contention(point, period, /*defer=*/false);
  const ContentionRun deferred = run_queue_contention(point, period, /*defer=*/true);
  return {{"eager_ms", eager.elapsed_ms},
          {"deferred_ms", deferred.elapsed_ms},
          {"eager_burst_inflation", eager.burst_infl},
          {"eager_quiet_inflation", eager.quiet_infl},
          {"deferred_burst_inflation", deferred.burst_infl},
          {"deferred_quiet_inflation", deferred.quiet_infl},
          {"eager_burst_share", eager.burst_share},
          {"eager_migrated_mib", eager.migrated_mib},
          {"deferred_migrated_mib", deferred.migrated_mib},
          {"eager_promoted", static_cast<double>(eager.promoted)},
          {"deferred_promoted", static_cast<double>(deferred.promoted)},
          {"self_deferred", static_cast<double>(deferred.self_deferred)}};
}

void summarize_ext_queue_contention(const SweepResult& result, std::ostream& os) {
  Table t({"app", "ratio", "cadence", "burst infl", "quiet infl", "burst (deferred)",
           "self-deferred", "eager (ms)", "deferred (ms)"});
  for (const auto& row : result.rows) {
    t.add_row({workloads::app_name(row.point.app), Table::pct(row.point.ratio),
               row.point.variant,
               Table::num(metric_or(row, "eager_burst_inflation"), 3) + "x",
               Table::num(metric_or(row, "eager_quiet_inflation"), 3) + "x",
               Table::num(metric_or(row, "deferred_burst_inflation"), 3) + "x",
               Table::num(metric_or(row, "self_deferred"), 0),
               Table::num(metric_or(row, "eager_ms"), 3),
               Table::num(metric_or(row, "deferred_ms"), 3)});
  }
  t.print(os);
  os << "\nReading: under the two-class queue model a migration burst is no\n"
        "longer free — its bulk bytes share each link with the application's\n"
        "demand misses. The inflation columns isolate that coupling: how much\n"
        "longer a demand miss took than it would have with the bulk class\n"
        "silenced, at the same demand load. Burst epochs inflate (> 1x) while\n"
        "quiet epochs sit at exactly 1x, and the self-congestion deferral —\n"
        "which trims the low-value tail off each scan once its own scheduled\n"
        "traffic prices the path out — pulls the burst-epoch inflation back\n"
        "down (deferred < eager). The closed-form loi model cannot express\n"
        "either effect: there, inflation is identically 1x.\n";
}

// ---- ext-fleet-rack: open job stream over shared disaggregated pools --------

/// Variant grammar: `<policy>[-mig]-<load>` where policy is `ff` (first
/// fit) or `aware` (LoI-aware) and load is `lo`/`hi` (Poisson rate). Rows
/// at the same load share one arrival stream (seed_per_task=false), so the
/// policy axis is compared on identical inputs.
fleet::FleetConfig fleet_config_of(const SweepPoint& point) {
  fleet::FleetConfig cfg;
  cfg.pools = fleet::default_pools(2);
  cfg.policy = point.variant.rfind("ff", 0) == 0 ? fleet::AdmissionPolicy::kFirstFit
                                                 : fleet::AdmissionPolicy::kLoiAware;
  cfg.migration = point.variant.find("mig") != std::string::npos;
  cfg.base_seed = point.seed;
  return cfg;
}

double fleet_rate_of(const SweepPoint& point) {
  // lo keeps the rack under its node-time capacity; hi oversubscribes it
  // so queueing, stranding, and rejects become visible.
  return point.variant.size() >= 2 && point.variant.substr(point.variant.size() - 2) == "hi"
             ? 0.13
             : 0.06;
}

std::vector<Metric> measure_ext_fleet_rack(const SweepPoint& point) {
  const fleet::FleetConfig cfg = fleet_config_of(point);
  const auto classes = fleet::default_job_classes();
  std::vector<double> weights;
  for (const auto& cls : classes) weights.push_back(cls.weight);
  fleet::ArrivalSpec spec;
  spec.kind = fleet::ArrivalKind::kPoisson;
  spec.rate_per_s = fleet_rate_of(point);
  spec.count = 400;
  const auto arrivals = fleet::expand_poisson_arrivals(spec, weights, cfg.base_seed);
  // threads=1: fleet rows are already parallelised across the sweep pool,
  // and the fleet's own contract makes the thread count irrelevant anyway.
  const fleet::FleetResult r = fleet::run_fleet(cfg, classes, arrivals, 1);
  return {{"completed", static_cast<double>(r.completed)},
          {"rejected", static_cast<double>(r.rejected)},
          {"migrations", static_cast<double>(r.migrations)},
          {"p50_slowdown", r.p50_slowdown},
          {"p99_slowdown", r.p99_slowdown},
          {"p50_wait_s", r.p50_wait_s},
          {"p99_wait_s", r.p99_wait_s},
          {"mean_utilization", r.mean_utilization},
          {"stranded_gb", r.stranded_gb},
          {"makespan_s", r.makespan_s}};
}

void summarize_ext_fleet_rack(const SweepResult& result, std::ostream& os) {
  Table t({"variant", "done", "rej", "migr", "p50 slow", "p99 slow", "p99 wait (s)",
           "util", "stranded (GB)"});
  for (const auto& row : result.rows) {
    t.add_row({row.point.variant, Table::num(metric_or(row, "completed"), 0),
               Table::num(metric_or(row, "rejected"), 0),
               Table::num(metric_or(row, "migrations"), 0),
               Table::num(metric_or(row, "p50_slowdown"), 3) + "x",
               Table::num(metric_or(row, "p99_slowdown"), 3) + "x",
               Table::num(metric_or(row, "p99_wait_s"), 1),
               Table::pct(metric_or(row, "mean_utilization")),
               Table::num(metric_or(row, "stranded_gb"), 1)});
  }
  t.print(os);
  os << "\nReading: 400 Poisson job arrivals over a two-pool rack, the same\n"
        "arrival stream for every policy at a given load. At low load the\n"
        "policies tie — every job finds a quiet pool. Oversubscribed (hi),\n"
        "first-fit piles jobs onto pool 0 and its link queue inflates the\n"
        "tail (p99 slowdown, p99 wait), while LoI-aware placement levels the\n"
        "demand traffic across pools; enabling migration lets the rack also\n"
        "fix imbalance that develops after placement, at the price of bulk\n"
        "migration bursts feeding back into demand latency through the\n"
        "two-class queue. Stranded capacity is pooled GB idle behind a\n"
        "full node group — the paper's Sec. 7 stranding argument at rack\n"
        "scale.\n";
}

// ---- ext-loi-trace: replayed congestion trace vs. its time average ----------

/// A captured-style congestion trace for the three-tier chain: the device
/// link sees short oversubscribed spikes over a quiet floor; the switched
/// link behind it carries a slow swell. Values are % of link capacity per
/// epoch; the last sample holds. (Embedded so scenario rows stay pure
/// functions of their SweepPoint; `--loi-trace` replays the same format
/// from a CSV on disk.)
const std::vector<double> kTraceDeviceLink = {
    0,  0,  10, 15, 180, 240, 200, 30, 10, 0,  0,  20, 160, 220, 140, 20,
    10, 0,  0,  0,  30,  200, 260, 60, 10, 0,  15, 25, 180, 240, 180, 40,
    0,  0,  10, 20, 140, 200, 120, 30, 10, 0,  0,  0,  0,   0,   0,   0};
const std::vector<double> kTraceSwitchedLink = {
    0,  5,  10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60, 60, 60, 60,
    55, 50, 45, 40, 35, 30, 25, 20, 15, 10, 5,  0,  0,  0,  5,  10,
    15, 20, 25, 30, 35, 40, 45, 50, 55, 60, 55, 50, 45, 40, 35, 30};

std::vector<Metric> measure_ext_loi_trace(const SweepPoint& point) {
  RunConfig cfg = spill_chain_config(point);
  memsim::LoiSchedule schedule;
  schedule.set(1, memsim::LoiWaveform::trace(kTraceDeviceLink));
  schedule.set(2, memsim::LoiWaveform::trace(kTraceSwitchedLink));
  if (point.variant == "replay") {
    cfg.loi_schedule = schedule;
  } else {
    // "averaged": constant per-link LoI at the whole-trace mean — what a
    // static QoS provisioner would budget from the captured trace. Note
    // this is the *trace's* mean, not the mean a given run experiences:
    // a run shorter than the trace sees only its opening window (the
    // mean_loi_t* metrics report what each run actually saw).
    cfg.background_loi_per_tier = {0.0, schedule.waveform(1)->mean(),
                                   schedule.waveform(2)->mean()};
  }
  auto wl = point.make_workload();
  const auto run = run_workload(*wl, cfg);

  double peak_t1 = 0.0, peak_t2 = 0.0, mean_t1 = 0.0, mean_t2 = 0.0, total_s = 0.0;
  for (const auto& epoch : run.epochs) {
    if (epoch.link_loi.size() < 3) continue;
    peak_t1 = std::max(peak_t1, epoch.link_loi[1]);
    peak_t2 = std::max(peak_t2, epoch.link_loi[2]);
    mean_t1 += epoch.link_loi[1] * epoch.duration_s;
    mean_t2 += epoch.link_loi[2] * epoch.duration_s;
    total_s += epoch.duration_s;
  }
  if (total_s > 0) {
    mean_t1 /= total_s;
    mean_t2 /= total_s;
  }
  return {{"time_ms", run.elapsed_s * 1e3},
          {"remote_access", run.remote_access_ratio()},
          {"peak_loi_t1", peak_t1},
          {"peak_loi_t2", peak_t2},
          {"mean_loi_t1", mean_t1},
          {"mean_loi_t2", mean_t2}};
}

void summarize_ext_loi_trace(const SweepResult& result, std::ostream& os) {
  Table t({"app", "schedule", "time (ms)", "%off-node", "peak LoI t1/t2",
           "time-mean LoI t1/t2"});
  for (const auto& row : result.rows) {
    const double ms = metric_or(row, "time_ms");
    t.add_row({workloads::app_name(row.point.app), row.point.variant, Table::num(ms, 3),
               Table::pct(metric_or(row, "remote_access")),
               Table::num(metric_or(row, "peak_loi_t1"), 0) + " / " +
                   Table::num(metric_or(row, "peak_loi_t2"), 0),
               Table::num(metric_or(row, "mean_loi_t1"), 1) + " / " +
                   Table::num(metric_or(row, "mean_loi_t2"), 1)});
  }
  t.print(os);
  os << "\nReading: the averaged run injects the whole-trace mean — the level a\n"
        "static QoS provisioner would budget from the captured trace — while\n"
        "the replay exposes each run to the actual burst *timing*. The\n"
        "time-mean column (duration-weighted LoI each run experienced) shows\n"
        "why provisioning by trace average misjudges both ways: a run that\n"
        "lands on the trace's burst cluster (Hypre here, experienced mean\n"
        "well above the trace average) pays far more than budgeted, while a\n"
        "short run threading a quiet window (BFS) pays less. This timing gap\n"
        "between static provisioning and runtime behavior is what rack-scale\n"
        "simulators (DRackSim) model explicitly.\n";
}

// ---- ext-asym-loi: per-link interference vectors ----------------------------

std::vector<Metric> measure_ext_asym_loi(const SweepPoint& point) {
  RunConfig cfg = spill_chain_config(point);
  cfg.background_loi_per_tier = per_link_loi_of(point.variant);
  auto wl = point.make_workload();
  const auto run = run_workload(*wl, cfg);
  std::vector<Metric> metrics{{"time_ms", run.elapsed_s * 1e3},
                              {"remote_access", run.remote_access_ratio()}};
  const auto total = static_cast<double>(run.counters.dram_bytes_total());
  for (memsim::TierId t = 0; t < cfg.machine.num_tiers(); ++t)
    metrics.emplace_back(
        "share_t" + std::to_string(t),
        total > 0 ? static_cast<double>(run.counters.dram_bytes(t)) / total : 0.0);
  return metrics;
}

void summarize_ext_asym_loi(const SweepResult& result, std::ostream& os) {
  Table t({"app", "topology", "links", "time (ms)", "%off-node", "vs idle"});
  double idle_ms = 0.0;
  for (const auto& row : result.rows) {
    const double ms = metric_or(row, "time_ms");
    if (row.point.variant == "idle") idle_ms = ms;
    t.add_row({workloads::app_name(row.point.app), row.point.fabric, row.point.variant,
               Table::num(ms, 3), Table::pct(metric_or(row, "remote_access")),
               Table::num(idle_ms > 0 && ms > 0 ? ms / idle_ms : 1.0, 3) + "x"});
  }
  t.print(os);
  os << "\nReading: a single global LoI cannot distinguish these columns. Loading\n"
        "only the near link hurts more than loading only the far link whenever\n"
        "the spill chain concentrates traffic on the first pool; both-loaded\n"
        "approaches the sum of the asymmetric slowdowns (links queue\n"
        "independently).\n";
}

std::vector<App> all_apps() {
  return {workloads::kAllApps, workloads::kAllApps + std::size(workloads::kAllApps)};
}

}  // namespace

namespace detail {

void register_builtin_scenarios(ScenarioRegistry& registry) {
  {
    Scenario s;
    s.name = "fig05";
    s.artifact = "Figure 5";
    s.caption = "roofline placement of application phases";
    s.spec.apps = all_apps();
    s.measure = measure_fig05;
    s.summarize = summarize_fig05;
    registry.add(std::move(s));
  }
  {
    Scenario s;
    s.name = "fig06";
    s.artifact = "Figure 6";
    s.caption = "bandwidth-capacity scaling curves at 1x/2x/4x inputs";
    s.spec.apps = all_apps();
    s.spec.scales = {1, 2, 4};
    // The summary compares curves *across* scales (Kolmogorov distances),
    // so all points share one seed — otherwise seed-driven input
    // randomness (e.g. a different BFS graph per point) would be
    // confounded with the scale effect the figure isolates.
    s.spec.seed_per_task = false;
    s.measure = measure_fig06;
    s.summarize = summarize_fig06;
    registry.add(std::move(s));
  }
  {
    Scenario s;
    s.name = "fig08";
    s.artifact = "Figure 8";
    s.caption = "prefetch accuracy / coverage / excess traffic / gain";
    s.spec.apps = all_apps();
    s.measure = measure_fig08;
    s.summarize = summarize_fig08;
    registry.add(std::move(s));
  }
  {
    Scenario s;
    s.name = "fig09";
    s.artifact = "Figure 9";
    s.caption = "remote access ratio per phase vs. R_cap / R_bw references";
    s.spec.apps = all_apps();
    s.spec.ratios = {0.25, 0.50, 0.75};
    s.measure = measure_fig09;
    s.summarize = summarize_fig09;
    registry.add(std::move(s));
  }
  {
    Scenario s;
    s.name = "fig10";
    s.artifact = "Figure 10";
    s.caption = "sensitivity to interference (relative performance vs. LoI)";
    s.spec.apps = all_apps();
    s.spec.ratios = {0.25, 0.50, 0.75};
    s.measure = measure_fig10;
    s.summarize = summarize_fig10;
    registry.add(std::move(s));
  }
  {
    Scenario s;
    s.name = "fig11";
    s.artifact = "Figure 11";
    s.caption = "LBench: LoI scaling, IC vs. PCM saturation, per-app induced IC";
    s.spec.apps = all_apps();
    s.spec.ratios = {0.50};
    s.measure = measure_fig11;
    s.summarize = summarize_fig11;
    registry.add(std::move(s));
  }
  {
    Scenario s;
    s.name = "fig12";
    s.artifact = "Figure 12";
    s.caption = "BFS data-placement optimization (Sec. 7.1 case study)";
    s.spec.apps = {App::kBFS};
    s.spec.ratios = {0.50, 0.75};
    s.spec.variants = {"baseline", "parents-first", "optimized"};
    // Variants are compared against the baseline, so every variant must
    // traverse the same graph: share one seed across the grid.
    s.spec.seed_per_task = false;
    s.measure = measure_fig12;
    s.summarize = summarize_fig12;
    registry.add(std::move(s));
  }
  {
    Scenario s;
    s.name = "ext-cxl";
    s.artifact = "Extension: CXL what-if";
    s.caption = "pooling penalty and sensitivity across pool fabrics";
    s.spec.apps = {App::kHypre, App::kXSBench, App::kBFS};
    s.spec.fabrics = {"upi", "cxl", "cxl-switched", "split"};
    // Fabrics are compared per app: share one seed so the workload input
    // is held fixed across fabrics.
    s.spec.seed_per_task = false;
    s.measure = measure_ext_cxl;
    s.summarize = summarize_ext_cxl;
    registry.add(std::move(s));
  }
  {
    Scenario s;
    s.name = "ext-interleave";
    s.artifact = "Extension: weighted interleave";
    s.caption = "first-touch vs. N:M interleaving on bandwidth-bound apps";
    s.spec.apps = {App::kHypre, App::kNekRS};
    s.spec.variants = {"first-touch", "interleave-2:1", "interleave-1:1"};
    // Policies are compared against first-touch per app: hold the
    // workload input fixed across the policy axis.
    s.spec.seed_per_task = false;
    s.measure = measure_ext_interleave;
    s.summarize = summarize_ext_interleave;
    registry.add(std::move(s));
  }
  {
    Scenario s;
    s.name = "ext-three-tier";
    s.artifact = "Extension: three-tier chain";
    s.caption = "DRAM + direct CXL + switched pool capacity spill chain";
    s.spec.apps = {App::kHypre, App::kXSBench, App::kBFS};
    s.spec.ratios = {0.50, 0.75};
    s.spec.fabrics = {"cxl", "three-tier"};
    // Topologies are compared per app and ratio: hold the workload input
    // fixed across the topology axis.
    s.spec.seed_per_task = false;
    s.measure = measure_ext_three_tier;
    s.summarize = summarize_ext_three_tier;
    registry.add(std::move(s));
  }
  {
    Scenario s;
    s.name = "ext-staged-migration";
    s.artifact = "Extension: staged migration";
    s.caption = "cost-model planner: direct-only vs. multi-hop staging on an N-tier chain";
    s.spec.apps = {App::kHypre, App::kXSBench};
    s.spec.ratios = {0.50, 0.75};
    s.spec.fabrics = {"three-tier"};
    s.spec.variants = {"idle", "mid-loaded", "overloaded"};
    // Direct and staged planners are compared on the same run, and rows are
    // compared across the load axis: hold the workload input fixed.
    s.spec.seed_per_task = false;
    s.measure = measure_ext_staged_migration;
    s.summarize = summarize_ext_staged_migration;
    registry.add(std::move(s));
  }
  {
    Scenario s;
    s.name = "ext-transient-loi";
    s.artifact = "Extension: transient interference";
    s.caption = "square-wave congestion: live re-pricing + deferral vs. a static-LoI plan";
    s.spec.apps = {App::kHypre};
    s.spec.ratios = {0.50, 0.75};
    s.spec.fabrics = {"three-tier"};
    s.spec.variants = {"burst-8", "burst-32"};
    // Dynamic and static-belief planners are compared on the same run:
    // hold the workload input fixed.
    s.spec.seed_per_task = false;
    s.measure = measure_ext_transient_loi;
    s.summarize = summarize_ext_transient_loi;
    registry.add(std::move(s));
  }
  {
    Scenario s;
    s.name = "ext-queue-contention";
    s.artifact = "Extension: queue contention";
    s.caption = "two-class link queues: migration bursts inflating demand-miss latency";
    s.spec.apps = {App::kHypre};
    s.spec.ratios = {0.50, 0.75};
    s.spec.fabrics = {"three-tier"};
    s.spec.variants = {"scan-8", "scan-16"};
    // Eager and deferred planners are compared on the same run, and burst
    // epochs against quiet ones: hold the workload input fixed.
    s.spec.seed_per_task = false;
    s.measure = measure_ext_queue_contention;
    s.summarize = summarize_ext_queue_contention;
    registry.add(std::move(s));
  }
  {
    Scenario s;
    s.name = "ext-fleet-rack";
    s.artifact = "Extension: fleet-scale rack";
    s.caption = "open job stream over shared pools: admission, contention, migration";
    s.spec.apps = {App::kHPL};  // single neutral axis value; jobs are synthetic
    s.spec.variants = {"ff-lo", "aware-lo", "ff-hi", "aware-hi", "ff-mig-hi",
                       "aware-mig-hi"};
    // Policies are compared on the same arrival stream per load level:
    // hold the stream's base seed fixed across the variant axis.
    s.spec.seed_per_task = false;
    s.measure = measure_ext_fleet_rack;
    s.summarize = summarize_ext_fleet_rack;
    registry.add(std::move(s));
  }
  {
    Scenario s;
    s.name = "ext-loi-trace";
    s.artifact = "Extension: trace-driven interference";
    s.caption = "replayed per-link congestion trace vs. its time average on the chain";
    s.spec.apps = {App::kHypre, App::kBFS};
    s.spec.ratios = {0.50};
    s.spec.fabrics = {"three-tier"};
    s.spec.variants = {"replay", "averaged"};
    // Replay and averaged rows are compared per app: hold the input fixed.
    s.spec.seed_per_task = false;
    s.measure = measure_ext_loi_trace;
    s.summarize = summarize_ext_loi_trace;
    registry.add(std::move(s));
  }
  {
    Scenario s;
    s.name = "ext-asym-loi";
    s.artifact = "Extension: asymmetric interference";
    s.caption = "per-link LoI vectors: load one pool while its neighbor idles";
    s.spec.apps = {App::kHypre, App::kBFS};
    s.spec.ratios = {0.50};
    s.spec.fabrics = {"three-tier", "hybrid"};
    s.spec.variants = {"idle", "near-loaded", "far-loaded", "both-loaded"};
    // Load vectors are compared against the idle row per app and topology.
    s.spec.seed_per_task = false;
    s.measure = measure_ext_asym_loi;
    s.summarize = summarize_ext_asym_loi;
    registry.add(std::move(s));
  }
  {
    Scenario s;
    s.name = "ext-hybrid";
    s.artifact = "Extension: split+pool hybrid";
    s.caption = "two asymmetric pools (CXL device + peer-borrowed) side by side";
    s.spec.apps = {App::kHypre, App::kBFS};
    s.spec.ratios = {0.50};
    s.spec.fabrics = {"cxl", "hybrid", "split"};
    s.spec.seed_per_task = false;
    s.measure = measure_ext_hybrid;
    s.summarize = summarize_ext_hybrid;
    registry.add(std::move(s));
  }
}

}  // namespace detail
}  // namespace memdis::core
