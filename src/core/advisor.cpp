#include "core/advisor.h"

#include <algorithm>

#include "common/table.h"

namespace memdis::core {

const char* verdict_name(PlacementVerdict v) {
  switch (v) {
    case PlacementVerdict::kBalanced:
      return "balanced";
    case PlacementVerdict::kAboveBandwidthRef:
      return "above-R_bw";
    case PlacementVerdict::kAboveCapacityRef:
      return "above-R_cap";
  }
  return "?";
}

AdvisorReport advise(const Level2Profile& profile) {
  AdvisorReport report;
  report.r_cap_remote = profile.remote_capacity_ratio_configured;
  report.r_bw_remote = profile.remote_bandwidth_ratio;
  const double upper = std::max(report.r_cap_remote, report.r_bw_remote);
  const double lower = std::min(report.r_cap_remote, report.r_bw_remote);

  double best_priority = 0.0;
  for (const auto& phase : profile.phases) {
    PhaseAdvice advice;
    advice.tag = phase.tag;
    advice.weight = phase.weight;
    advice.remote_access_ratio = phase.remote_access_ratio;
    const double r = phase.remote_access_ratio;
    if (r > upper) {
      advice.verdict = PlacementVerdict::kAboveCapacityRef;
      advice.priority = phase.weight * (r - upper);
      advice.recommendation =
          "hot objects are disproportionately remote; reorder allocations or bind the "
          "hottest objects locally";
    } else if (r > lower) {
      advice.verdict = PlacementVerdict::kAboveBandwidthRef;
      advice.priority = phase.weight * (r - lower);
      advice.recommendation =
          "the slow tier bounds memory performance; shift traffic toward the fast tier "
          "until the access split matches the bandwidth ratio";
    } else {
      advice.verdict = PlacementVerdict::kBalanced;
      advice.priority = 0.0;
      advice.recommendation = "access split within the reference band; no placement tuning";
    }
    if (advice.priority > best_priority) {
      best_priority = advice.priority;
      report.dominant_phase = static_cast<int>(report.phases.size());
    }
    report.phases.push_back(std::move(advice));
  }

  if (report.dominant_phase < 0) {
    report.summary =
        "All phases sit within the R_cap/R_bw band: little optimization space; do not "
        "spend effort on data placement.";
  } else {
    const auto& dom = report.phases[static_cast<std::size_t>(report.dominant_phase)];
    report.summary = "Prioritize phase '" + dom.tag + "' (runtime share " +
                     Table::pct(dom.weight) + ", remote access " +
                     Table::pct(dom.remote_access_ratio) + " vs R_cap " +
                     Table::pct(report.r_cap_remote) + " / R_bw " +
                     Table::pct(report.r_bw_remote) + "): " + dom.recommendation;
  }
  return report;
}

}  // namespace memdis::core
