#include "core/advisor.h"

#include <algorithm>

#include "common/table.h"
#include "core/migration.h"

namespace memdis::core {

const char* verdict_name(PlacementVerdict v) {
  switch (v) {
    case PlacementVerdict::kBalanced:
      return "balanced";
    case PlacementVerdict::kAboveBandwidthRef:
      return "above-R_bw";
    case PlacementVerdict::kAboveCapacityRef:
      return "above-R_cap";
  }
  return "?";
}

AdvisorReport advise(const Level2Profile& profile) {
  AdvisorReport report;
  report.r_cap_remote = profile.remote_capacity_ratio_configured;
  report.r_bw_remote = profile.remote_bandwidth_ratio;
  const double upper = std::max(report.r_cap_remote, report.r_bw_remote);
  const double lower = std::min(report.r_cap_remote, report.r_bw_remote);

  double best_priority = 0.0;
  for (const auto& phase : profile.phases) {
    PhaseAdvice advice;
    advice.tag = phase.tag;
    advice.weight = phase.weight;
    advice.remote_access_ratio = phase.remote_access_ratio;
    const double r = phase.remote_access_ratio;
    if (r > upper) {
      advice.verdict = PlacementVerdict::kAboveCapacityRef;
      advice.priority = phase.weight * (r - upper);
      advice.recommendation =
          "hot objects are disproportionately remote; reorder allocations or bind the "
          "hottest objects locally";
    } else if (r > lower) {
      advice.verdict = PlacementVerdict::kAboveBandwidthRef;
      advice.priority = phase.weight * (r - lower);
      advice.recommendation =
          "the slow tier bounds memory performance; shift traffic toward the fast tier "
          "until the access split matches the bandwidth ratio";
    } else {
      advice.verdict = PlacementVerdict::kBalanced;
      advice.priority = 0.0;
      advice.recommendation = "access split within the reference band; no placement tuning";
    }
    if (advice.priority > best_priority) {
      best_priority = advice.priority;
      report.dominant_phase = static_cast<int>(report.phases.size());
    }
    report.phases.push_back(std::move(advice));
  }

  if (report.dominant_phase < 0) {
    report.summary =
        "All phases sit within the R_cap/R_bw band: little optimization space; do not "
        "spend effort on data placement.";
  } else {
    const auto& dom = report.phases[static_cast<std::size_t>(report.dominant_phase)];
    report.summary = "Prioritize phase '" + dom.tag + "' (runtime share " +
                     Table::pct(dom.weight) + ", remote access " +
                     Table::pct(dom.remote_access_ratio) + " vs R_cap " +
                     Table::pct(report.r_cap_remote) + " / R_bw " +
                     Table::pct(report.r_bw_remote) + "): " + dom.recommendation;
  }
  return report;
}

MigrationAdvice advise_migration(const MigrationRuntime& runtime,
                                 const memsim::MachineConfig& machine) {
  MigrationAdvice advice;
  advice.segment_pages.assign(static_cast<std::size_t>(machine.num_tiers()), 0);
  for (const auto& move : runtime.plan_log()) {
    ++advice.moves;
    if (move.staged) ++advice.staged_moves;
    if (move.demotion) ++advice.demotions;
    advice.transfer_cost_s += move.cost_s;
    for (const memsim::TierId seg : machine.topology.path(move.src, move.dst))
      ++advice.segment_pages[static_cast<std::size_t>(seg)];
  }
  std::uint64_t busiest = 0;
  for (memsim::TierId t = 0; t < machine.num_tiers(); ++t) {
    const auto pages = advice.segment_pages[static_cast<std::size_t>(t)];
    if (pages > busiest) {
      busiest = pages;
      advice.busiest_segment = t;
    }
  }
  if (advice.moves == 0) {
    advice.summary =
        "No pages moved: either nothing crossed the heat threshold or no move had "
        "positive net value under the cost model.";
  } else {
    advice.summary =
        "Executed " + std::to_string(advice.moves) + " moves (" +
        std::to_string(advice.staged_moves) + " staged, " +
        std::to_string(advice.demotions) + " demotions), priced transfer cost " +
        Table::num(advice.transfer_cost_s * 1e3, 3) + " ms; busiest segment is the '" +
        machine.tier(advice.busiest_segment).name +
        "' link — raise its per-scan budget first if migration lags the access pattern.";
  }
  return advice;
}

}  // namespace memdis::core
