#include "core/scaling_curve.h"

#include <algorithm>
#include <cmath>

#include "common/contract.h"

namespace memdis::core {

ScalingCurve::ScalingCurve(
    const std::unordered_map<std::uint64_t, std::uint64_t>& page_accesses,
    std::uint64_t untouched_pages) {
  expects(!page_accesses.empty(), "scaling curve needs at least one accessed page");
  std::vector<std::uint64_t> counts;
  counts.reserve(page_accesses.size());
  for (const auto& [page, count] : page_accesses) {
    if (count > 0) counts.push_back(count);
  }
  expects(!counts.empty(), "scaling curve needs nonzero access counts");
  std::sort(counts.begin(), counts.end(), std::greater<>());

  total_pages_ = counts.size() + untouched_pages;
  cumulative_.reserve(counts.size() + 1);
  cumulative_.push_back(0.0);
  std::uint64_t running = 0;
  for (const std::uint64_t c : counts) {
    running += c;
    cumulative_.push_back(static_cast<double>(running));
  }
  total_accesses_ = running;
  for (double& v : cumulative_) v /= static_cast<double>(total_accesses_);
}

double ScalingCurve::access_fraction_at(double footprint_fraction) const {
  expects(footprint_fraction >= 0.0 && footprint_fraction <= 1.0,
          "footprint fraction must be in [0,1]");
  const double pos = footprint_fraction * static_cast<double>(total_pages_);
  const auto hot_pages = static_cast<double>(cumulative_.size() - 1);
  if (pos >= hot_pages) return 1.0;  // beyond the hot set: cold pages add nothing
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  return cumulative_[lo] * (1.0 - frac) + cumulative_[lo + 1] * frac;
}

double ScalingCurve::footprint_fraction_for(double access_fraction) const {
  expects(access_fraction >= 0.0 && access_fraction <= 1.0,
          "access fraction must be in [0,1]");
  // cumulative_ is nondecreasing; binary search the first point >= target.
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), access_fraction);
  if (it == cumulative_.begin()) return 0.0;
  const auto hi = static_cast<std::size_t>(it - cumulative_.begin());
  const double lo_v = cumulative_[hi - 1];
  const double hi_v = cumulative_[hi];
  const double frac = hi_v > lo_v ? (access_fraction - lo_v) / (hi_v - lo_v) : 1.0;
  return (static_cast<double>(hi - 1) + frac) / static_cast<double>(total_pages_);
}

double ScalingCurve::skewness() const {
  // Gini coefficient: 2·AUC − 1 with AUC integrated over footprint fraction.
  constexpr std::size_t kSteps = 512;
  double auc = 0.0;
  double prev = access_fraction_at(0.0);
  for (std::size_t s = 1; s <= kSteps; ++s) {
    const double x = static_cast<double>(s) / kSteps;
    const double cur = access_fraction_at(x);
    auc += 0.5 * (prev + cur) / kSteps;
    prev = cur;
  }
  return std::clamp(2.0 * auc - 1.0, 0.0, 1.0);
}

double ScalingCurve::distance(const ScalingCurve& other) const {
  constexpr std::size_t kSteps = 512;
  double d = 0.0;
  for (std::size_t s = 0; s <= kSteps; ++s) {
    const double x = static_cast<double>(s) / kSteps;
    d = std::max(d, std::abs(access_fraction_at(x) - other.access_fraction_at(x)));
  }
  return d;
}

std::vector<double> ScalingCurve::sample(std::size_t points) const {
  expects(points >= 2, "need at least two sample points");
  std::vector<double> ys(points);
  for (std::size_t i = 0; i < points; ++i)
    ys[i] = access_fraction_at(static_cast<double>(i) / static_cast<double>(points - 1));
  return ys;
}

}  // namespace memdis::core
