// Roofline models (Sec. 3.4).
//
// The standard model P = min(F, B·I); the multi-tier extension where adding
// a tier raises the bandwidth ceiling (Fig. 5's dashed line); and the memory
// roofline as a function of the local-to-remote access split (Ding et al.),
// including the paper's emphasis that the peak is reached by *balancing*
// accesses across tiers rather than maximizing the local ratio.
#pragma once

#include "memsim/link.h"
#include "memsim/machine.h"

namespace memdis::core {

class RooflineModel {
 public:
  /// `peak_gflops` in Gflop/s, `bandwidth_gbps` in GB/s.
  RooflineModel(double peak_gflops, double bandwidth_gbps);

  /// Attainable performance (Gflop/s) at arithmetic intensity `ai`
  /// (flops per DRAM byte).
  [[nodiscard]] double attainable_gflops(double ai) const;

  /// The intensity where the compute and bandwidth roofs meet.
  [[nodiscard]] double ridge_point() const;

  [[nodiscard]] double peak_gflops() const { return peak_gflops_; }
  [[nodiscard]] double bandwidth_gbps() const { return bandwidth_gbps_; }

  /// Single-tier roofline of the emulated node (local DRAM only).
  [[nodiscard]] static RooflineModel local_tier(const memsim::MachineConfig& m);

  /// Multi-tier roofline: both tiers streamed concurrently (the dashed
  /// extension in Fig. 5 — aggregate bandwidth rises when a tier is added).
  [[nodiscard]] static RooflineModel multi_tier(const memsim::MachineConfig& m);

 private:
  double peak_gflops_;
  double bandwidth_gbps_;
};

/// Effective memory bandwidth when a fraction `remote_ratio` of traffic goes
/// to the pool tier and both tiers stream concurrently:
///   B_eff(r) = min(B_L/(1-r), B_R/r),
/// maximized (B_L+B_R) exactly at r = R_bw^remote — the balanced split the
/// paper recommends (Sec. 5).
[[nodiscard]] double effective_bandwidth_gbps(const memsim::MachineConfig& m,
                                              double remote_ratio);

/// Same, with the pool link degraded by background interference at the given
/// LoI (%); feeds the interference-adjusted roofline slope of Sec. 3.4.
[[nodiscard]] double effective_bandwidth_gbps_under_loi(const memsim::MachineConfig& m,
                                                        double remote_ratio,
                                                        double background_loi);

}  // namespace memdis::core
