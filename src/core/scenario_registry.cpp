#include "core/scenario_registry.h"

#include <algorithm>
#include <stdexcept>

namespace memdis::core {

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    detail::register_builtin_scenarios(*r);
    return r;
  }();
  return *registry;
}

void ScenarioRegistry::add(Scenario scenario) {
  if (scenario.name.empty()) throw std::invalid_argument("scenario name must not be empty");
  if (find(scenario.name) != nullptr)
    throw std::invalid_argument("duplicate scenario '" + scenario.name + "'");
  scenarios_.push_back(std::move(scenario));
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  for (const auto& s : scenarios_)
    if (s.name == name) return &s;
  return nullptr;
}

std::vector<const Scenario*> ScenarioRegistry::list() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& s : scenarios_) out.push_back(&s);
  std::sort(out.begin(), out.end(),
            [](const Scenario* a, const Scenario* b) { return a->name < b->name; });
  return out;
}

SweepResult run_scenario(const Scenario& scenario, const SweepOptions& options) {
  SweepResult result = run_sweep(scenario.spec, scenario.measure, options);
  result.scenario = scenario.name;
  return result;
}

}  // namespace memdis::core
