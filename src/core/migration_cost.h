// MigrationCostModel: quantitative pricing of tier->tier page moves.
//
// The paper's thesis (Sec. 5-6) is that placement decisions should come
// from measured per-link bandwidth/latency, not fixed heuristics. This
// model prices any page migration from the MemoryTopology's per-link
// parameters under the *current* per-link Level-of-Interference:
//
//   move_cost(src, dst)  = sum over crossed fabric segments of
//                          page_bytes / BW_eff(segment) + lat_eff(segment)
//   benefit(src, dst, h) = h * (lat_eff(src) - lat_eff(dst)) * w / (MLP*T)
//                          per epoch, for a page with h sampled accesses
//   plan_value           = horizon * benefit - move_cost
//
// Crossed segments follow the topology's upstream tree (tier.h): on a
// chain (switched pool behind a direct CXL device) a switched->direct hop
// crosses only the switch segment, which is what can make staging a page
// through the intermediate tier beat the direct long-haul move.
#pragma once

#include <cstdint>
#include <vector>

#include "memsim/link.h"
#include "memsim/loi_schedule.h"
#include "memsim/machine.h"

namespace memdis::core {

/// One candidate page move, fully priced. `value_s` amortizes the benefit
/// over the planner's horizon; the planner ranks candidates by it and
/// spends per-segment budgets on the highest-value feasible plans.
struct MovePlan {
  memsim::TierId src = 0;
  memsim::TierId dst = 0;
  std::uint64_t heat = 0;           ///< sampled accesses since last scan
  double cost_s = 0.0;              ///< one-page transfer cost
  double benefit_s_per_epoch = 0.0; ///< stall time saved per epoch
  double value_s = 0.0;             ///< horizon * benefit - cost
  std::vector<memsim::TierId> segments;  ///< fabric links the move crosses

  /// A staged move ends on an intermediate fabric tier instead of the node.
  [[nodiscard]] bool staged() const { return dst != memsim::kNodeTier; }
};

class MigrationCostModel {
 public:
  /// Builds the model for `machine` with per-link background LoI levels
  /// (indexed by TierId; local-tier entries ignored, missing entries 0).
  MigrationCostModel(const memsim::MachineConfig& machine, std::vector<double> link_loi = {});

  /// Effective demand latency of one access served from tier `t`, seconds,
  /// under the configured LoI (node tier: raw DRAM latency).
  [[nodiscard]] double access_latency_s(memsim::TierId t) const;

  /// Effective data bandwidth of tier `t`'s link under the configured LoI,
  /// GB/s (contract violation for local tiers). Feeds per-segment budget
  /// scaling: a loaded link affords proportionally fewer migrated pages.
  [[nodiscard]] double effective_link_bandwidth_gbps(memsim::TierId t) const;

  /// Raw (unloaded) data bandwidth of tier `t`'s link, GB/s.
  [[nodiscard]] double raw_link_bandwidth_gbps(memsim::TierId t) const;

  /// Transfer cost of moving one page from `src` to `dst`: per crossed
  /// fabric segment, page_bytes over the segment's effective data bandwidth
  /// plus one effective-latency round trip (move_pages setup).
  [[nodiscard]] double move_cost_s(memsim::TierId src, memsim::TierId dst) const;

  /// Demand-stall time saved per epoch by serving a page's `heat` sampled
  /// accesses from `dst` instead of `src`; negative when `dst` is slower.
  /// Sampled heat is scaled back up by the PEBS sample period.
  [[nodiscard]] double benefit_s_per_epoch(memsim::TierId src, memsim::TierId dst,
                                           std::uint64_t heat,
                                           std::uint64_t sample_period = 1) const;

  /// Full plan for one page: cost, per-epoch benefit, and net value
  /// amortized over `horizon_epochs` of expected residency.
  [[nodiscard]] MovePlan plan(memsim::TierId src, memsim::TierId dst, std::uint64_t heat,
                              std::uint64_t horizon_epochs,
                              std::uint64_t sample_period = 1) const;

  /// Access latency of tier `t` averaged over the next `window_epochs`
  /// epochs of a time-varying LoI schedule (starting at `from_epoch`).
  /// Unscheduled tiers reduce to access_latency_s. This is what keeps a
  /// planner from parking pages on a tier that is cheap *now* but bursts
  /// within the residency horizon.
  [[nodiscard]] double scheduled_access_latency_s(memsim::TierId t,
                                                  const memsim::LoiSchedule& schedule,
                                                  std::uint64_t from_epoch,
                                                  std::uint64_t window_epochs) const;

  /// Effective data bandwidth of tier `t`'s link averaged over the next
  /// `window_epochs` epochs of the schedule — the *sustained* capacity a
  /// planner should budget against under bursty congestion (instantaneous
  /// spikes are handled by per-move pricing and deferral, not by
  /// collapsing the whole scan's budget).
  [[nodiscard]] double scheduled_link_bandwidth_gbps(memsim::TierId t,
                                                     const memsim::LoiSchedule& schedule,
                                                     std::uint64_t from_epoch,
                                                     std::uint64_t window_epochs) const;

  /// Plan variant for runs under a LoI schedule: transfer cost is priced
  /// at this model's (live) link state — the move happens now — while the
  /// per-epoch benefit integrates the schedule over `window_epochs`, so
  /// the value reflects what the destination will cost across upcoming
  /// bursts, not just at this instant.
  [[nodiscard]] MovePlan plan_under_schedule(memsim::TierId src, memsim::TierId dst,
                                             std::uint64_t heat, std::uint64_t horizon_epochs,
                                             std::uint64_t sample_period,
                                             const memsim::LoiSchedule& schedule,
                                             std::uint64_t from_epoch,
                                             std::uint64_t window_epochs) const;

  /// Same plan shape with caller-supplied access latencies (seconds) for
  /// src and dst — the per-scan planner computes every tier's
  /// horizon-averaged latency once and reuses it across all candidate
  /// plans instead of re-integrating the schedule per pair.
  [[nodiscard]] MovePlan plan_with_latencies(memsim::TierId src, memsim::TierId dst,
                                             std::uint64_t heat, std::uint64_t horizon_epochs,
                                             std::uint64_t sample_period, double src_latency_s,
                                             double dst_latency_s) const;

  /// Fabric segments crossed by a src->dst move (topology upstream tree).
  [[nodiscard]] std::vector<memsim::TierId> segments(memsim::TierId src,
                                                     memsim::TierId dst) const {
    return machine_.topology.path(src, dst);
  }

  [[nodiscard]] const memsim::MachineConfig& machine() const { return machine_; }
  [[nodiscard]] double link_loi(memsim::TierId t) const;

 private:
  memsim::MachineConfig machine_;
  std::vector<double> link_loi_;                       // indexed by TierId
  std::vector<std::optional<memsim::LinkModel>> links_;  // indexed by TierId
};

}  // namespace memdis::core
