// Bandwidth–capacity scaling curves (Sec. 4.1, Fig. 6).
//
// Built from the profiler's page-access sampling: pages are sorted by
// descending access count and the cumulative access distribution is plotted
// against the cumulative memory-footprint fraction. A near-diagonal curve
// means uniform use of the footprint (HPL, Hypre); a sharply rising curve
// means a small hot set (BFS, XSBench).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace memdis::core {

class ScalingCurve {
 public:
  /// Builds the curve from an accesses-per-page histogram. Pages with zero
  /// recorded accesses can be appended via `untouched_pages` so that the
  /// footprint axis reflects allocated-but-cold memory (BFS's large
  /// never-accessed graph structures).
  explicit ScalingCurve(const std::unordered_map<std::uint64_t, std::uint64_t>& page_accesses,
                        std::uint64_t untouched_pages = 0);

  /// Fraction of all memory accesses hitting the hottest `footprint_fraction`
  /// of the footprint. Piecewise-linear interpolation; both axes in [0,1].
  [[nodiscard]] double access_fraction_at(double footprint_fraction) const;

  /// Footprint fraction needed to cover `access_fraction` of the accesses
  /// (inverse of the curve) — the "how much fast memory do I need" question.
  [[nodiscard]] double footprint_fraction_for(double access_fraction) const;

  /// Gini-style skewness in [0,1]: 0 = perfectly uniform (diagonal),
  /// →1 = all accesses on an infinitesimal hot set.
  [[nodiscard]] double skewness() const;

  /// Kolmogorov–Smirnov-style distance between two curves, used to test the
  /// paper's observation that most apps' curves overlap across input scales.
  [[nodiscard]] double distance(const ScalingCurve& other) const;

  [[nodiscard]] std::uint64_t total_pages() const { return total_pages_; }
  [[nodiscard]] std::uint64_t total_accesses() const { return total_accesses_; }

  /// Sampled curve points for printing/plotting: access fraction at each of
  /// `points` evenly spaced footprint fractions (including both endpoints).
  [[nodiscard]] std::vector<double> sample(std::size_t points) const;

 private:
  // Cumulative access fraction after the i-th hottest page (index 0 = 0.0).
  std::vector<double> cumulative_;
  std::uint64_t total_pages_ = 0;
  std::uint64_t total_accesses_ = 0;
};

}  // namespace memdis::core
