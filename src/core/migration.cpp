#include "core/migration.h"

#include <algorithm>
#include <vector>

#include "common/units.h"

namespace memdis::core {

namespace {

/// A hot off-node page with its priced candidate moves (value-descending).
struct Candidate {
  std::uint64_t page = 0;
  std::uint64_t heat = 0;
  memsim::TierId tier = 0;
  std::vector<MovePlan> plans;
};

/// A node-resident page, demotion-victim ordering (coldest first).
struct Resident {
  std::uint64_t page = 0;
  std::uint64_t heat = 0;
};

}  // namespace

void MigrationRuntime::attach(sim::Engine& eng) {
  eng.set_epoch_callback([this](sim::Engine& e) { on_epoch(e); });
}

void MigrationRuntime::on_epoch(sim::Engine& eng) {
  if (++epoch_count_ % cfg_.period_epochs != 0) return;
  ++scans_;

  auto& mem = eng.memory();
  const std::uint64_t page_bytes = mem.page_bytes();
  const auto& hist = eng.page_access_histogram();
  const auto& machine = eng.config().machine;
  const int n = machine.num_tiers();

  // Live per-link LoI: the links' actual state this scan — under a
  // time-varying schedule the engine has already stepped the waveforms to
  // the upcoming epoch, so this is the state the next epoch runs under.
  // Under the queue model "live" means the *effective* LoI the bulk class
  // experiences (background plus the demand class's windowed traffic): the
  // planner prices moves against predicted queue delay, not the static dial.
  const bool queue_mode =
      eng.config().link_model == memsim::LinkModelKind::kQueue;
  std::vector<double> live_loi(static_cast<std::size_t>(n), 0.0);
  for (memsim::TierId t = 0; t < n; ++t)
    if (machine.topology.is_fabric(t))
      live_loi[static_cast<std::size_t>(t)] =
          queue_mode ? eng.effective_loi(t, memsim::TrafficClass::kBulk)
                     : eng.background_loi(t);
  scan_loi_log_.push_back(live_loi);

  // The planner prices moves (and scales segment budgets) against its
  // *belief*: the live links, or — when assumed_loi is set — a fixed
  // static vector, modeling a planner provisioned with time-averaged QoS
  // information under a bursty fabric. The machine is fixed for the run,
  // so models are rebuilt only when their LoI vector changes.
  std::vector<double> plan_loi = cfg_.assumed_loi.empty() ? live_loi : cfg_.assumed_loi;
  plan_loi.resize(static_cast<std::size_t>(n), 0.0);
  for (memsim::TierId t = 0; t < n; ++t)
    if (!machine.topology.is_fabric(t)) plan_loi[static_cast<std::size_t>(t)] = 0.0;
  if (!model_ || plan_loi != model_loi_) {
    model_.emplace(machine, plan_loi);
    model_loi_ = plan_loi;
  }
  const MigrationCostModel& model = *model_;
  // Executed moves are charged at the links' *true* state, whatever the
  // planner believed — a mispriced static plan pays the congestion it
  // ignored. With live pricing the belief is the truth.
  if (!cfg_.assumed_loi.empty() && (!truth_model_ || live_loi != truth_loi_)) {
    truth_model_.emplace(machine, live_loi);
    truth_loi_ = live_loi;
  }
  const MigrationCostModel& truth = cfg_.assumed_loi.empty() ? model : *truth_model_;

  // Under a time-varying schedule a live-priced planner integrates tier
  // latencies over the residency horizon: a tier that is cheap this epoch
  // but bursts within the horizon is priced at what the page will actually
  // pay. Belief-limited (assumed_loi) planners see only their static
  // vector.
  const auto& schedule = eng.config().loi_schedule;
  const bool scheduled = cfg_.assumed_loi.empty() && !schedule.empty();
  const std::uint64_t now_epoch = eng.epoch_index();

  // Under the queue model the *benefit* side of a plan is what the demand
  // class will pay — its effective LoI includes the bulk class's traffic,
  // not the demand class's own. A separate cached model prices tier access
  // latencies at that view while `model` keeps pricing transfer costs at
  // the bulk view.
  const bool demand_view = queue_mode && cfg_.assumed_loi.empty();
  if (demand_view) {
    std::vector<double> demand_loi(static_cast<std::size_t>(n), 0.0);
    for (memsim::TierId t = 0; t < n; ++t)
      if (machine.topology.is_fabric(t))
        demand_loi[static_cast<std::size_t>(t)] =
            eng.effective_loi(t, memsim::TrafficClass::kDemand);
    if (!demand_model_ || demand_loi != demand_loi_) {
      demand_model_.emplace(machine, demand_loi);
      demand_loi_ = std::move(demand_loi);
    }
  }
  const MigrationCostModel& lat_model = demand_view ? *demand_model_ : model;

  std::vector<double> tier_lat(static_cast<std::size_t>(n));
  for (memsim::TierId t = 0; t < n; ++t)
    tier_lat[static_cast<std::size_t>(t)] =
        scheduled
            ? model.scheduled_access_latency_s(t, schedule, now_epoch, cfg_.horizon_epochs)
            : lat_model.access_latency_s(t);

  const std::uint64_t sample_period =
      std::max<std::uint64_t>(1, eng.config().page_sample_period);
  // Heat is collected per scan window, so the amortization horizon is
  // expressed in scan windows too.
  const std::uint64_t horizon_scans = std::max<std::uint64_t>(
      1, cfg_.horizon_epochs / std::max<std::uint64_t>(1, cfg_.period_epochs));
  // tier_lat already holds each tier's (horizon-averaged) latency, so
  // scheduled plans reuse it instead of re-integrating the waveform per
  // candidate pair.
  const auto make_plan = [&](memsim::TierId src, memsim::TierId dst, std::uint64_t heat) {
    return scheduled || demand_view
               ? model.plan_with_latencies(src, dst, heat, horizon_scans, sample_period,
                                           tier_lat[static_cast<std::size_t>(src)],
                                           tier_lat[static_cast<std::size_t>(dst)])
               : model.plan(src, dst, heat, horizon_scans, sample_period);
  };

  // Recent heat = histogram delta since the last scan. Every resident page
  // is a potential demotion victim on its tier; off-node pages above the
  // heat threshold are promotion candidates.
  std::vector<Candidate> hot;
  std::vector<std::vector<Resident>> residents(static_cast<std::size_t>(n));
  for (const auto& [page, count] : hist) {
    const auto it = last_hist_.find(page);
    const std::uint64_t heat = count - (it == last_hist_.end() ? 0 : it->second);
    const std::uint64_t addr = page * page_bytes;
    if (!mem.resident(addr)) continue;
    const memsim::TierId tier = mem.tier_of(addr);
    if (tier != memsim::kNodeTier && heat >= cfg_.min_heat)
      hot.push_back({page, heat, tier, {}});
    residents[static_cast<std::size_t>(tier)].push_back({page, heat});
  }
  last_hist_ = hist;
  if (hot.empty()) return;

  // Candidate destinations per page: every tier the cost model rates
  // strictly faster to access, with positive net value. Without staging
  // only the node tier qualifies (the pre-cost-model policy).
  for (auto& cand : hot) {
    for (memsim::TierId dst = 0; dst < n; ++dst) {
      if (dst == cand.tier) continue;
      if (!cfg_.allow_staging && dst != memsim::kNodeTier) continue;
      if (tier_lat[static_cast<std::size_t>(dst)] >=
          tier_lat[static_cast<std::size_t>(cand.tier)])
        continue;
      MovePlan plan = make_plan(cand.tier, dst, cand.heat);
      if (plan.value_s > 0) cand.plans.push_back(std::move(plan));
    }
    std::sort(cand.plans.begin(), cand.plans.end(),
              [](const MovePlan& a, const MovePlan& b) { return a.value_s > b.value_s; });
  }
  hot.erase(std::remove_if(hot.begin(), hot.end(),
                           [](const Candidate& c) { return c.plans.empty(); }),
            hot.end());
  if (hot.empty()) return;

  // Most valuable moves first; page number breaks ties deterministically.
  std::sort(hot.begin(), hot.end(), [](const Candidate& a, const Candidate& b) {
    if (a.plans.front().value_s != b.plans.front().value_s)
      return a.plans.front().value_s > b.plans.front().value_s;
    return a.page < b.page;
  });
  for (auto& tier_residents : residents) {
    std::sort(tier_residents.begin(), tier_residents.end(),
              [](const Resident& a, const Resident& b) {
                return a.heat != b.heat ? a.heat < b.heat : a.page < b.page;
              });
  }

  // Per-scan budgets: a global page budget plus one page budget per fabric
  // segment (migration traffic competes for each crossed link). Each
  // segment's budget is scaled by its link's effective bandwidth under the
  // current LoI — a loaded link affords proportionally fewer pages, which
  // is what diverts long-haul moves onto staged hops.
  std::uint64_t budget = cfg_.max_pages_per_scan;
  const std::uint64_t per_link =
      cfg_.link_budget_pages > 0 ? cfg_.link_budget_pages : cfg_.max_pages_per_scan;
  std::vector<std::uint64_t> seg_budget(static_cast<std::size_t>(n), per_link);
  for (memsim::TierId t = 0; t < n; ++t) {
    if (!machine.topology.is_fabric(t)) continue;
    // Under a schedule, budget against the horizon-averaged (sustained)
    // bandwidth: an instantaneous burst makes individual moves expensive
    // (pricing and deferral handle that) but does not shrink what the
    // link can carry over the scan horizon.
    const double bw =
        scheduled ? model.scheduled_link_bandwidth_gbps(t, schedule, now_epoch,
                                                        cfg_.horizon_epochs)
                  : model.effective_link_bandwidth_gbps(t);
    const double share = bw / model.raw_link_bandwidth_gbps(t);
    seg_budget[static_cast<std::size_t>(t)] = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(per_link) * share));
  }

  const auto segments_affordable = [&](const std::vector<memsim::TierId>& segs) {
    for (const memsim::TierId s : segs)
      if (seg_budget[static_cast<std::size_t>(s)] == 0) return false;
    return true;
  };
  // Affordability of `segs` while also reserving budget for `reserved` (a
  // demotion must not spend the segments its paired promotion still needs).
  const auto affordable_with_reserved = [&](const std::vector<memsim::TierId>& segs,
                                            const std::vector<memsim::TierId>& reserved) {
    for (const memsim::TierId s : segs) {
      std::uint64_t need = 1;
      for (const memsim::TierId r : reserved)
        if (r == s) ++need;
      if (seg_budget[static_cast<std::size_t>(s)] < need) return false;
    }
    return true;
  };
  const auto consume_segments = [&](const std::vector<memsim::TierId>& segs) {
    for (const memsim::TierId s : segs) {
      auto& left = seg_budget[static_cast<std::size_t>(s)];
      expects(left > 0, "segment budget overspent");
      --left;
    }
  };
  // Bulk bytes this scan has already committed per fabric segment — the
  // self-traffic term of the queue model's self-congestion deferral, and
  // the byte stream that feeds each link's bulk class in the engine.
  std::vector<std::uint64_t> self_bytes(static_cast<std::size_t>(n), 0);
  const auto charge = [&](const MovePlan& plan) {
    const double true_cost =
        &truth == &model ? plan.cost_s : truth.move_cost_s(plan.src, plan.dst);
    transfer_cost_s_ += true_cost;
    if (cfg_.charge_transfer_cost) eng.charge_migration_seconds(true_cost);
    for (const memsim::TierId s : plan.segments) {
      eng.charge_migration_bytes(s, page_bytes);
      self_bytes[static_cast<std::size_t>(s)] += page_bytes;
    }
    return true_cost;
  };

  // Congestion-burst arbitrage: under a time-varying schedule, evaluate a
  // plan's path cost at each epoch of the lookahead window and defer when
  // a later epoch beats acting now — net of the benefit epochs lost while
  // waiting. A belief-limited (assumed_loi) planner cannot defer: it does
  // not know the schedule.
  const bool can_defer = cfg_.defer_on_schedule && scheduled;
  std::vector<std::pair<std::vector<double>, MigrationCostModel>> future_models;
  const auto future_cost = [&](const std::vector<double>& loi_vec, memsim::TierId src,
                               memsim::TierId dst) {
    for (const auto& [key, cached] : future_models)
      if (key == loi_vec) return cached.move_cost_s(src, dst);
    future_models.emplace_back(loi_vec, MigrationCostModel(machine, loi_vec));
    return future_models.back().second.move_cost_s(src, dst);
  };
  const auto defer_pays = [&](const MovePlan& plan) {
    if (!can_defer) return false;
    const std::uint64_t period = std::max<std::uint64_t>(1, cfg_.period_epochs);
    double best = plan.value_s;
    bool defer = false;
    std::vector<double> loi_vec = live_loi;
    // Only epochs where a scan will actually fire are reachable execution
    // times — pricing in-between epochs would defer toward moments the
    // planner can never act at (and, when the wave aligns with the scan
    // cadence, starve the move forever chasing them).
    for (std::uint64_t scans_ahead = 1; scans_ahead * period <= cfg_.horizon_epochs;
         ++scans_ahead) {
      // Waiting forfeits the benefit of the scan windows skipped.
      if (scans_ahead >= horizon_scans) break;
      const std::uint64_t d = scans_ahead * period;
      for (memsim::TierId t = 0; t < n; ++t) {
        const auto* wave = schedule.waveform(t);
        if (wave) loi_vec[static_cast<std::size_t>(t)] = wave->value_at(now_epoch + d);
      }
      const double value_d =
          static_cast<double>(horizon_scans - scans_ahead) * plan.benefit_s_per_epoch -
          future_cost(loi_vec, plan.src, plan.dst);
      if (value_d > best) {
        best = value_d;
        defer = true;
      }
    }
    return defer;
  };

  // Self-congestion deferral (queue model): re-price a candidate with each
  // crossed segment's LoI inflated by the bulk bytes this scan has already
  // committed there — at the rate those bytes will cross during the next
  // epoch (last epoch's duration is the deterministic proxy). When the
  // inflated cost erases the plan's net value, the page waits a scan: the
  // burst sheds its low-value tail instead of delaying the app's demand
  // misses. Candidates are ranked value-descending, so the high-value head
  // of the burst still moves first.
  const double dt_proxy = eng.epochs().empty() ? 0.0 : eng.epochs().back().duration_s;
  const bool can_self_defer =
      cfg_.defer_on_self_congestion && queue_mode && dt_proxy > 0.0;
  const auto self_defer_pays = [&](const MovePlan& plan) {
    if (!can_self_defer) return false;
    bool any = false;
    std::vector<double> loi_vec = plan_loi;
    for (const memsim::TierId s : plan.segments) {
      const std::uint64_t bytes = self_bytes[static_cast<std::size_t>(s)];
      if (bytes == 0) continue;
      any = true;
      const auto& link = *machine.tier(s).link;
      const double rate_gbps =
          bytes_per_sec_to_gbps(static_cast<double>(bytes) / dt_proxy);
      auto& loi = loi_vec[static_cast<std::size_t>(s)];
      loi = std::min(loi + 100.0 * rate_gbps * link.protocol_overhead /
                               link.traffic_capacity_gbps,
                     memsim::LinkModel::kMaxLoi);
    }
    if (!any) return false;
    const double inflated = future_cost(loi_vec, plan.src, plan.dst);
    return static_cast<double>(horizon_scans) * plan.benefit_s_per_epoch - inflated <= 0.0;
  };

  // Demotes the coldest page of `tier` colder than `ceiling` to the
  // cheapest other tier by the cost model (under asymmetric LoI this is
  // what keeps victims off the loaded link). Works for any destination a
  // promotion targets: making room on an *intermediate* tier swaps a cold
  // page down-chain, which is what lets a staged hop proceed when the tier
  // is full. Returns true when room was made.
  std::vector<std::size_t> victim_cursor(static_cast<std::size_t>(n), 0);
  const auto make_room_on = [&](memsim::TierId tier, std::uint64_t ceiling,
                                const std::vector<memsim::TierId>& reserved) {
    auto& list = residents[static_cast<std::size_t>(tier)];
    auto& cursor = victim_cursor[static_cast<std::size_t>(tier)];
    while (cursor < list.size()) {
      const Resident victim = list[cursor++];
      if (victim.heat >= ceiling) {
        // Never swap hotter for colder — but candidates are ranked by move
        // value, not heat, so a later candidate may carry a higher ceiling:
        // leave this victim for it.
        --cursor;
        return false;
      }
      const std::uint64_t vaddr = victim.page * page_bytes;
      if (!mem.resident(vaddr) || mem.tier_of(vaddr) != tier) continue;
      // Cheapest destination = the least-negative move value among tiers
      // with room and segment budget (keeping the paired promotion's
      // segments reserved).
      const MovePlan* best = nullptr;
      MovePlan scratch;
      for (memsim::TierId d = 0; d < n; ++d) {
        if (d == tier || mem.free_bytes(d) < page_bytes) continue;
        // A victim never moves to a faster tier — that slot belongs to the
        // hot candidate this eviction is making room for.
        if (tier_lat[static_cast<std::size_t>(d)] < tier_lat[static_cast<std::size_t>(tier)])
          continue;
        MovePlan plan = make_plan(tier, d, victim.heat);
        if (!affordable_with_reserved(plan.segments, reserved)) continue;
        if (best == nullptr || plan.value_s > best->value_s) {
          scratch = std::move(plan);
          best = &scratch;
        }
      }
      if (best == nullptr) {
        // No destination affordable under *this* candidate's reserved
        // segments; a later candidate with a different path may still be
        // able to demote this victim.
        --cursor;
        return false;
      }
      const memsim::VRange vrange{vaddr, page_bytes};
      if (mem.migrate(vrange, best->dst) != 1) continue;
      consume_segments(best->segments);
      const double charged = charge(*best);
      ++demoted_;
      plan_log_.push_back({scans_, victim.page, tier, best->dst, victim.heat, charged,
                           best->value_s, /*demotion=*/true, /*staged=*/false});
      return true;
    }
    return false;
  };

  for (const auto& cand : hot) {
    if (budget == 0) break;
    const std::uint64_t addr = cand.page * page_bytes;
    if (!mem.resident(addr) || mem.tier_of(addr) != cand.tier) continue;
    // Best plan whose segments still have budget; when the direct path's
    // segment budget is exhausted this falls through to the staged hop
    // (and vice versa — a full intermediate tier falls back to direct).
    for (const MovePlan& plan : cand.plans) {
      if (!segments_affordable(plan.segments)) continue;
      // A deferred plan stays put this scan; the next-ranked plan may
      // still act now (e.g. a staged hop across an idle segment while the
      // long-haul path waits out a burst).
      if (defer_pays(plan)) {
        ++deferred_;
        continue;
      }
      // A self-deferred plan likewise stays put this scan — the traffic
      // already scheduled on its path priced it out.
      if (self_defer_pays(plan)) {
        ++deferred_self_;
        continue;
      }
      if (mem.free_bytes(plan.dst) < page_bytes) {
        if (!cfg_.enable_demotion) continue;
        if (!make_room_on(plan.dst, cand.heat, plan.segments)) continue;
        if (!segments_affordable(plan.segments)) continue;
      }
      const memsim::VRange range{addr, page_bytes};
      if (mem.migrate(range, plan.dst) != 1) continue;
      consume_segments(plan.segments);
      const double charged = charge(plan);
      ++promoted_;
      --budget;
      if (plan.staged())
        ++staged_;
      else
        ++direct_;
      plan_log_.push_back({scans_, cand.page, cand.tier, plan.dst, cand.heat, charged,
                           plan.value_s, /*demotion=*/false, plan.staged()});
      break;
    }
  }
}

}  // namespace memdis::core
