#include "core/migration.h"

#include <algorithm>
#include <vector>

namespace memdis::core {

namespace {

/// A hot off-node page with its priced candidate moves (value-descending).
struct Candidate {
  std::uint64_t page = 0;
  std::uint64_t heat = 0;
  memsim::TierId tier = 0;
  std::vector<MovePlan> plans;
};

/// A node-resident page, demotion-victim ordering (coldest first).
struct Resident {
  std::uint64_t page = 0;
  std::uint64_t heat = 0;
};

}  // namespace

void MigrationRuntime::attach(sim::Engine& eng) {
  eng.set_epoch_callback([this](sim::Engine& e) { on_epoch(e); });
}

void MigrationRuntime::on_epoch(sim::Engine& eng) {
  if (++epoch_count_ % cfg_.period_epochs != 0) return;
  ++scans_;

  auto& mem = eng.memory();
  const std::uint64_t page_bytes = mem.page_bytes();
  const auto& hist = eng.page_access_histogram();
  const auto& machine = eng.config().machine;
  const int n = machine.num_tiers();

  // Price moves against the links' *current* interference levels, so the
  // planner reacts to asymmetric load the same way an operator would. The
  // machine is fixed for the run, so the model is rebuilt only when the
  // observed LoI vector changes.
  std::vector<double> loi(static_cast<std::size_t>(n), 0.0);
  for (memsim::TierId t = 0; t < n; ++t)
    if (machine.topology.is_fabric(t)) loi[static_cast<std::size_t>(t)] = eng.background_loi(t);
  if (!model_ || loi != model_loi_) {
    model_.emplace(machine, loi);
    model_loi_ = loi;
  }
  const MigrationCostModel& model = *model_;

  const std::uint64_t sample_period =
      std::max<std::uint64_t>(1, eng.config().page_sample_period);
  // Heat is collected per scan window, so the amortization horizon is
  // expressed in scan windows too.
  const std::uint64_t horizon_scans = std::max<std::uint64_t>(
      1, cfg_.horizon_epochs / std::max<std::uint64_t>(1, cfg_.period_epochs));

  // Recent heat = histogram delta since the last scan. Every resident page
  // is a potential demotion victim on its tier; off-node pages above the
  // heat threshold are promotion candidates.
  std::vector<Candidate> hot;
  std::vector<std::vector<Resident>> residents(static_cast<std::size_t>(n));
  for (const auto& [page, count] : hist) {
    const auto it = last_hist_.find(page);
    const std::uint64_t heat = count - (it == last_hist_.end() ? 0 : it->second);
    const std::uint64_t addr = page * page_bytes;
    if (!mem.resident(addr)) continue;
    const memsim::TierId tier = mem.tier_of(addr);
    if (tier != memsim::kNodeTier && heat >= cfg_.min_heat)
      hot.push_back({page, heat, tier, {}});
    residents[static_cast<std::size_t>(tier)].push_back({page, heat});
  }
  last_hist_ = hist;
  if (hot.empty()) return;

  // Candidate destinations per page: every tier the cost model rates
  // strictly faster to access, with positive net value. Without staging
  // only the node tier qualifies (the pre-cost-model policy).
  for (auto& cand : hot) {
    for (memsim::TierId dst = 0; dst < n; ++dst) {
      if (dst == cand.tier) continue;
      if (!cfg_.allow_staging && dst != memsim::kNodeTier) continue;
      if (model.access_latency_s(dst) >= model.access_latency_s(cand.tier)) continue;
      MovePlan plan = model.plan(cand.tier, dst, cand.heat, horizon_scans, sample_period);
      if (plan.value_s > 0) cand.plans.push_back(std::move(plan));
    }
    std::sort(cand.plans.begin(), cand.plans.end(),
              [](const MovePlan& a, const MovePlan& b) { return a.value_s > b.value_s; });
  }
  hot.erase(std::remove_if(hot.begin(), hot.end(),
                           [](const Candidate& c) { return c.plans.empty(); }),
            hot.end());
  if (hot.empty()) return;

  // Most valuable moves first; page number breaks ties deterministically.
  std::sort(hot.begin(), hot.end(), [](const Candidate& a, const Candidate& b) {
    if (a.plans.front().value_s != b.plans.front().value_s)
      return a.plans.front().value_s > b.plans.front().value_s;
    return a.page < b.page;
  });
  for (auto& tier_residents : residents) {
    std::sort(tier_residents.begin(), tier_residents.end(),
              [](const Resident& a, const Resident& b) {
                return a.heat != b.heat ? a.heat < b.heat : a.page < b.page;
              });
  }

  // Per-scan budgets: a global page budget plus one page budget per fabric
  // segment (migration traffic competes for each crossed link). Each
  // segment's budget is scaled by its link's effective bandwidth under the
  // current LoI — a loaded link affords proportionally fewer pages, which
  // is what diverts long-haul moves onto staged hops.
  std::uint64_t budget = cfg_.max_pages_per_scan;
  const std::uint64_t per_link =
      cfg_.link_budget_pages > 0 ? cfg_.link_budget_pages : cfg_.max_pages_per_scan;
  std::vector<std::uint64_t> seg_budget(static_cast<std::size_t>(n), per_link);
  for (memsim::TierId t = 0; t < n; ++t) {
    if (!machine.topology.is_fabric(t)) continue;
    const double share =
        model.effective_link_bandwidth_gbps(t) / model.raw_link_bandwidth_gbps(t);
    seg_budget[static_cast<std::size_t>(t)] = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(per_link) * share));
  }

  const auto segments_affordable = [&](const std::vector<memsim::TierId>& segs) {
    for (const memsim::TierId s : segs)
      if (seg_budget[static_cast<std::size_t>(s)] == 0) return false;
    return true;
  };
  // Affordability of `segs` while also reserving budget for `reserved` (a
  // demotion must not spend the segments its paired promotion still needs).
  const auto affordable_with_reserved = [&](const std::vector<memsim::TierId>& segs,
                                            const std::vector<memsim::TierId>& reserved) {
    for (const memsim::TierId s : segs) {
      std::uint64_t need = 1;
      for (const memsim::TierId r : reserved)
        if (r == s) ++need;
      if (seg_budget[static_cast<std::size_t>(s)] < need) return false;
    }
    return true;
  };
  const auto consume_segments = [&](const std::vector<memsim::TierId>& segs) {
    for (const memsim::TierId s : segs) {
      auto& left = seg_budget[static_cast<std::size_t>(s)];
      expects(left > 0, "segment budget overspent");
      --left;
    }
  };
  const auto charge = [&](const MovePlan& plan) {
    transfer_cost_s_ += plan.cost_s;
    if (cfg_.charge_transfer_cost) eng.charge_migration_seconds(plan.cost_s);
  };

  // Demotes the coldest page of `tier` colder than `ceiling` to the
  // cheapest other tier by the cost model (under asymmetric LoI this is
  // what keeps victims off the loaded link). Works for any destination a
  // promotion targets: making room on an *intermediate* tier swaps a cold
  // page down-chain, which is what lets a staged hop proceed when the tier
  // is full. Returns true when room was made.
  std::vector<std::size_t> victim_cursor(static_cast<std::size_t>(n), 0);
  const auto make_room_on = [&](memsim::TierId tier, std::uint64_t ceiling,
                                const std::vector<memsim::TierId>& reserved) {
    auto& list = residents[static_cast<std::size_t>(tier)];
    auto& cursor = victim_cursor[static_cast<std::size_t>(tier)];
    while (cursor < list.size()) {
      const Resident victim = list[cursor++];
      if (victim.heat >= ceiling) {
        // Never swap hotter for colder — but candidates are ranked by move
        // value, not heat, so a later candidate may carry a higher ceiling:
        // leave this victim for it.
        --cursor;
        return false;
      }
      const std::uint64_t vaddr = victim.page * page_bytes;
      if (!mem.resident(vaddr) || mem.tier_of(vaddr) != tier) continue;
      // Cheapest destination = the least-negative move value among tiers
      // with room and segment budget (keeping the paired promotion's
      // segments reserved).
      const MovePlan* best = nullptr;
      MovePlan scratch;
      for (memsim::TierId d = 0; d < n; ++d) {
        if (d == tier || mem.free_bytes(d) < page_bytes) continue;
        // A victim never moves to a faster tier — that slot belongs to the
        // hot candidate this eviction is making room for.
        if (model.access_latency_s(d) < model.access_latency_s(tier)) continue;
        MovePlan plan = model.plan(tier, d, victim.heat, horizon_scans, sample_period);
        if (!affordable_with_reserved(plan.segments, reserved)) continue;
        if (best == nullptr || plan.value_s > best->value_s) {
          scratch = std::move(plan);
          best = &scratch;
        }
      }
      if (best == nullptr) {
        // No destination affordable under *this* candidate's reserved
        // segments; a later candidate with a different path may still be
        // able to demote this victim.
        --cursor;
        return false;
      }
      const memsim::VRange vrange{vaddr, page_bytes};
      if (mem.migrate(vrange, best->dst) != 1) continue;
      consume_segments(best->segments);
      charge(*best);
      ++demoted_;
      plan_log_.push_back({scans_, victim.page, tier, best->dst, victim.heat, best->cost_s,
                           best->value_s, /*demotion=*/true, /*staged=*/false});
      return true;
    }
    return false;
  };

  for (const auto& cand : hot) {
    if (budget == 0) break;
    const std::uint64_t addr = cand.page * page_bytes;
    if (!mem.resident(addr) || mem.tier_of(addr) != cand.tier) continue;
    // Best plan whose segments still have budget; when the direct path's
    // segment budget is exhausted this falls through to the staged hop
    // (and vice versa — a full intermediate tier falls back to direct).
    for (const MovePlan& plan : cand.plans) {
      if (!segments_affordable(plan.segments)) continue;
      if (mem.free_bytes(plan.dst) < page_bytes) {
        if (!cfg_.enable_demotion) continue;
        if (!make_room_on(plan.dst, cand.heat, plan.segments)) continue;
        if (!segments_affordable(plan.segments)) continue;
      }
      const memsim::VRange range{addr, page_bytes};
      if (mem.migrate(range, plan.dst) != 1) continue;
      consume_segments(plan.segments);
      charge(plan);
      ++promoted_;
      --budget;
      if (plan.staged())
        ++staged_;
      else
        ++direct_;
      plan_log_.push_back({scans_, cand.page, cand.tier, plan.dst, cand.heat, plan.cost_s,
                           plan.value_s, /*demotion=*/false, plan.staged()});
      break;
    }
  }
}

}  // namespace memdis::core
