#include "core/migration.h"

#include <algorithm>
#include <vector>

namespace memdis::core {

namespace {
/// Demotion target: the first fabric tier with room (tier 1 in every
/// built-in preset). When every fabric tier is full the last tier is
/// returned and migrate() simply moves nothing.
memsim::TierId demote_target(const memsim::TieredMemory& mem) {
  for (memsim::TierId t = 1; t < mem.num_tiers(); ++t)
    if (mem.free_bytes(t) >= mem.page_bytes()) return t;
  return mem.num_tiers() - 1;
}
}  // namespace

void MigrationRuntime::attach(sim::Engine& eng) {
  eng.set_epoch_callback([this](sim::Engine& e) { on_epoch(e); });
}

void MigrationRuntime::on_epoch(sim::Engine& eng) {
  if (++epoch_count_ % cfg_.period_epochs != 0) return;
  ++scans_;

  auto& mem = eng.memory();
  const std::uint64_t page_bytes = mem.page_bytes();
  const auto& hist = eng.page_access_histogram();

  // Recent heat = histogram delta since the last scan.
  struct PageHeat {
    std::uint64_t page;
    std::uint64_t heat;
  };
  std::vector<PageHeat> hot_remote;
  std::vector<PageHeat> cold_local;
  for (const auto& [page, count] : hist) {
    const auto it = last_hist_.find(page);
    const std::uint64_t heat = count - (it == last_hist_.end() ? 0 : it->second);
    const std::uint64_t addr = page * page_bytes;
    if (!mem.resident(addr)) continue;
    if (mem.tier_of(addr) != memsim::kNodeTier) {
      if (heat >= cfg_.min_heat) hot_remote.push_back({page, heat});
    } else {
      cold_local.push_back({page, heat});
    }
  }
  last_hist_ = hist;
  if (hot_remote.empty()) return;

  std::sort(hot_remote.begin(), hot_remote.end(),
            [](const PageHeat& a, const PageHeat& b) { return a.heat > b.heat; });
  std::sort(cold_local.begin(), cold_local.end(),
            [](const PageHeat& a, const PageHeat& b) { return a.heat < b.heat; });

  std::size_t demote_cursor = 0;
  std::uint64_t budget = cfg_.max_pages_per_scan;
  for (const auto& cand : hot_remote) {
    if (budget == 0) break;
    const memsim::VRange range{cand.page * page_bytes, page_bytes};
    if (mem.free_bytes(memsim::kNodeTier) < page_bytes) {
      if (!cfg_.enable_demotion) break;
      // Demote the coldest local page that is still colder than the
      // candidate (never swap a hotter page out for a colder one).
      bool made_room = false;
      while (demote_cursor < cold_local.size()) {
        const auto& victim = cold_local[demote_cursor++];
        if (victim.heat >= cand.heat) break;
        const memsim::VRange vrange{victim.page * page_bytes, page_bytes};
        if (mem.migrate(vrange, demote_target(mem)) == 1) {
          ++demoted_;
          made_room = true;
          break;
        }
      }
      if (!made_room) break;
    }
    if (mem.migrate(range, memsim::kNodeTier) == 1) {
      ++promoted_;
      --budget;
    }
  }
}

}  // namespace memdis::core
