// Parallel sweep engine: batch configuration-space exploration as a
// first-class subsystem.
//
// The paper's methodology is sweeps — scaling curves over input scales
// (Fig. 6), tier splits (Fig. 9), interference levels (Fig. 10), fabric
// what-ifs — so the engine models one as a cartesian grid
// (workload × scale × capacity ratio × LoI × fabric × prefetch × variant)
// expanded into an ordered task list and executed on a std::thread pool.
//
// Determinism contract: tasks are pure functions of their SweepPoint; each
// point carries its own RNG seed (derived from the spec's base seed and the
// point's grid index via SplitMix64) and results land in the row slot given
// by the grid index. A sweep at jobs=N is therefore bit-identical to the
// serial sweep, for any N.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "workloads/workload.h"

namespace memdis::core {

/// Sentinel for the capacity-ratio axis: run with the full node tier
/// (no forced spill off the node).
inline constexpr double kNodeOnly = -1.0;

/// Maps a topology preset name to its machine config. Two-tier fabrics
/// ("upi", "cxl", "cxl-switched", "split") and N-tier topologies
/// ("three-tier" = DRAM + direct CXL + switched pool, "hybrid" = DRAM +
/// CXL pool + peer-borrowed memory) share one namespace so a sweep's
/// fabric axis doubles as the topology axis. Throws std::invalid_argument
/// for unknown names.
[[nodiscard]] memsim::MachineConfig machine_for_fabric(const std::string& fabric);

/// All registered topology preset names, in CLI listing order.
[[nodiscard]] const std::vector<std::string>& topology_preset_names();

/// Process-wide replay-cache directory (`memdis sweep --replay-cache DIR`).
/// When non-empty, SweepPoint::make_workload routes every (app, scale, seed)
/// key through trace::make_cached_workload: the first task to need a key
/// records its access trace into DIR, every later task replays it through
/// the engine's bulk fast path. Artifacts are byte-identical either way —
/// the cache only changes how the call stream is produced, never its
/// contents. Empty (the default) means live workloads.
[[nodiscard]] std::string replay_cache_dir();
void set_replay_cache_dir(std::string dir);

/// One expanded grid point == one task. Everything a measure function may
/// depend on is captured here, including the derived per-task seed.
struct SweepPoint {
  std::size_t index = 0;  ///< position in the grid expansion (row slot)
  workloads::App app = workloads::App::kHPL;
  int scale = 1;
  double ratio = kNodeOnly;   ///< remote capacity ratio, or kNodeOnly
  double loi = 0.0;           ///< background level of interference (%)
  std::string fabric = "upi";  ///< topology preset (see machine_for_fabric)
  bool prefetch = true;
  std::string variant;        ///< scenario-specific knob (e.g. BFS variant)
  std::uint64_t seed = 0;     ///< per-task RNG seed (deterministic)

  /// RunConfig for this point: machine preset for `fabric`, the capacity
  /// ratio (unless kNodeOnly), background LoI, and the prefetch switch.
  [[nodiscard]] RunConfig run_config() const;
  /// Workload instance for this point, seeded with the per-task seed.
  [[nodiscard]] std::unique_ptr<workloads::Workload> make_workload() const;

  /// Groups grid points that share a functional half (everything except
  /// `loi`, the grid's timing axis — and `index`, the row slot). When
  /// repricing is on, run_sweep schedules one capture per group before the
  /// rest of the group re-prices (see core/epoch_profile.h).
  [[nodiscard]] std::string functional_group_key() const;

  /// Memberwise equality over *all* fields — defaulted, so a new field can
  /// never be silently dropped from comparisons (SweepResult::rows_equal
  /// builds on this).
  [[nodiscard]] bool operator==(const SweepPoint&) const = default;
};

/// Axes of the cartesian grid. Empty axes are illegal (expand() throws);
/// the defaults give each non-app axis a single neutral value. The
/// `fabrics` axis is the topology axis: every entry names a machine
/// preset (two-tier or N-tier), so one grid can compare topologies.
struct SweepSpec {
  std::vector<workloads::App> apps;
  std::vector<int> scales = {1};
  std::vector<double> ratios = {kNodeOnly};
  std::vector<double> lois = {0.0};
  std::vector<std::string> fabrics = {"upi"};
  std::vector<bool> prefetch = {true};
  std::vector<std::string> variants = {""};
  std::uint64_t base_seed = 42;
  /// When true (default), each point derives an independent seed from
  /// base_seed and its grid index. Set false for sweeps that *compare*
  /// points against each other (e.g. fig06's cross-scale curve distances):
  /// every point then uses base_seed verbatim, so axis effects are not
  /// confounded with seed-driven input randomness.
  bool seed_per_task = true;

  [[nodiscard]] std::size_t size() const;

  /// Expands the grid in deterministic app-major order (app, scale, ratio,
  /// loi, fabric, prefetch, variant — last axis fastest), assigning indices
  /// 0..size()-1 and per-task seeds.
  [[nodiscard]] std::vector<SweepPoint> expand() const;
};

/// One named measurement from one task.
using Metric = std::pair<std::string, double>;

/// A measure function runs one task and returns its metrics. It must be
/// thread-safe and depend only on the given point (the determinism
/// contract above).
using MeasureFn = std::function<std::vector<Metric>(const SweepPoint&)>;

/// One result row, in grid order.
struct SweepRow {
  SweepPoint point;
  std::vector<Metric> metrics;
};

struct SweepResult {
  std::string scenario;        ///< name of the scenario that produced it, if any
  std::vector<SweepRow> rows;  ///< grid order, independent of execution order
  double wall_seconds = 0.0;   ///< excluded from artifacts and equality

  /// Union of metric names in first-appearance (row-major) order.
  [[nodiscard]] std::vector<std::string> metric_names() const;

  /// Deterministic CSV: grid columns, then the metric-name union; missing
  /// metrics render as empty cells. Byte-identical for any jobs count.
  void write_csv(std::ostream& os) const;
  void write_csv_file(const std::string& path) const;

  /// Deterministic JSON (one object per row); wall time is not included.
  void write_json(std::ostream& os) const;
  void write_json_file(const std::string& path) const;

  /// Exact equality of rows (points and metric bit patterns) — the
  /// parallel-vs-serial determinism check.
  [[nodiscard]] bool rows_equal(const SweepResult& other) const;
};

struct SweepOptions {
  unsigned jobs = 1;  ///< worker threads; 0 = hardware_concurrency()
};

/// Expands `spec` and runs `measure` over every point on a thread pool.
/// When repricing is enabled (core/epoch_profile.h), tasks run in two
/// waves — one leader per functional group first, then the followers — so
/// each group's capture exists before its re-prices ask for it. Results
/// are independent of the scheduling either way (the determinism
/// contract), waves only avoid redundant captures.
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec, const MeasureFn& measure,
                                    const SweepOptions& options = {});

}  // namespace memdis::core
