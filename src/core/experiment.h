// Experiment runner: executes a workload on a configured emulation platform
// and captures everything the multi-level profiler consumes.
//
// This is the programmatic analogue of the paper's Fig. 4 workflow: set up
// tiers (III), run with the wanted profiler mode, collect counters.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "cachesim/counters.h"
#include "sim/engine.h"
#include "workloads/workload.h"

namespace memdis::core {

/// Configuration of one profiled run.
///
/// Fields partition into a *functional* half — machine (and the capacity
/// shaping applied to it), hierarchy, prefetch_enabled: everything that
/// determines the access stream and cache-state evolution — and a *timing*
/// half — background_loi, background_loi_per_tier, loi_schedule,
/// link_model: everything that only changes what the links charge. The
/// epoch-profile repricer (core/epoch_profile.h, `memdis sweep --reprice`)
/// exploits the split: one full simulation per functional key, O(epochs)
/// repricing for every timing variation of it. Keep new fields on the
/// right side of that line (a field that feeds back into placement or
/// cache state is functional and must join functional_key()).
struct RunConfig {
  memsim::MachineConfig machine = memsim::MachineConfig::skylake_testbed();
  cachesim::HierarchyConfig hierarchy{};
  double background_loi = 0.0;   ///< injected interference (% of link peak)
  /// Per-link background LoI, indexed by TierId (local-tier entries are
  /// ignored; tiers beyond the vector keep the scalar `background_loi`).
  /// The lever for asymmetric studies: load one pool while another idles.
  std::vector<double> background_loi_per_tier;
  /// Time-varying per-link LoI: scheduled links follow their waveform
  /// epoch by epoch (square bursts, ramps, replayed traces); unscheduled
  /// links keep the static levels above. Empty = the static model.
  memsim::LoiSchedule loi_schedule;
  bool prefetch_enabled = true;  ///< MSR 0x1a4 analogue
  /// When set, shrinks the node tier so this fraction of the workload's
  /// footprint spills off-node (the paper's setup_waste step, Fig. 4 III).
  std::optional<double> remote_capacity_ratio;
  /// When set, shapes per-tier capacities as fractions of the workload's
  /// footprint (MachineConfig::with_capacity_fractions) — the N-tier
  /// generalization of remote_capacity_ratio for spill-chain experiments.
  /// Takes precedence over remote_capacity_ratio when both are set.
  std::optional<std::vector<double>> capacity_fractions;
  /// Fabric link contention model (see sim::EngineConfig::link_model):
  /// `kLoi` is the closed form, `kQueue` the two-class queue model. Follows
  /// the process-wide default, which `memdis --link-model` overrides.
  memsim::LinkModelKind link_model = sim::link_model_default();
};

/// Everything captured from one run.
struct RunOutput {
  workloads::WorkloadResult result;
  double elapsed_s = 0.0;
  std::uint64_t flops = 0;
  cachesim::HwCounters counters;
  std::vector<sim::PhaseRecord> phases;
  std::vector<sim::EpochRecord> epochs;
  std::unordered_map<std::uint64_t, std::uint64_t> page_accesses;  ///< PEBS histogram
  std::uint64_t peak_rss_bytes = 0;
  /// Per-tier resident bytes at peak residency (what a numa_maps sampler
  /// would have seen while the job ran), indexed by TierId.
  std::vector<std::uint64_t> resident_bytes;
  std::vector<sim::AllocationInfo> allocations;

  [[nodiscard]] std::uint64_t resident_node_bytes() const {
    return resident_bytes.empty() ? 0 : resident_bytes[memsim::kNodeTier];
  }
  [[nodiscard]] std::uint64_t resident_fabric_bytes() const;

  /// Fraction of DRAM bytes served off the node tier (R_access^remote).
  [[nodiscard]] double remote_access_ratio() const;
  /// Measured remote capacity ratio at peak (R_cap^remote).
  [[nodiscard]] double remote_capacity_ratio() const;
  /// Arithmetic intensity over the whole run: flops per DRAM byte
  /// (Byte_LM + Byte_RM in the paper's Level-2 formula).
  [[nodiscard]] double arithmetic_intensity() const;
  /// Average offered link utilization implied by remote traffic (can
  /// exceed 1 when oversubscribed); input to interference coefficients.
  [[nodiscard]] double mean_offered_link_utilization(const memsim::MachineConfig& m) const;
};

/// Capacity fractions of the spill-chain experiments for off-node ratio
/// `ratio`: the node tier keeps 1-ratio of the footprint and, on an N-tier
/// chain, the first pool takes half the spill (the tail absorbs the rest).
/// Empty for two-tier machines — shape those with remote_capacity_ratio.
/// The single source of the split rule shared by the scenarios and
/// `memdis plan`.
[[nodiscard]] std::vector<double> spill_capacity_fractions(const memsim::MachineConfig& machine,
                                                           double ratio);

/// Returns `machine` shaped so `ratio` of `footprint_bytes` spills off the
/// node under first touch, applying spill_capacity_fractions on N-tier
/// chains and the plain node-tier shrink on two-tier machines.
[[nodiscard]] memsim::MachineConfig machine_with_spill(const memsim::MachineConfig& machine,
                                                       double ratio,
                                                       std::uint64_t footprint_bytes);

/// Runs `workload` under `cfg` and captures the full profile.
[[nodiscard]] RunOutput run_workload(workloads::Workload& workload, const RunConfig& cfg);

/// Per-phase remote access ratio helper (bytes to pool / all DRAM bytes).
[[nodiscard]] double phase_remote_access_ratio(const sim::PhaseRecord& phase);

/// Per-phase arithmetic intensity (flops per DRAM byte).
[[nodiscard]] double phase_arithmetic_intensity(const sim::PhaseRecord& phase);

}  // namespace memdis::core
