#include "core/sweep.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include <mutex>
#include <unordered_set>

#include "common/artifact_format.h"
#include "common/contract.h"
#include "common/csv.h"
#include "common/parallel_for.h"
#include "common/rng.h"
#include "core/epoch_profile.h"
#include "trace/trace_workload.h"

namespace memdis::core {
// format_double / json_escape come from common/artifact_format.h: the
// byte-identity contract on artifacts is shared with the fleet writers,
// so the formatting that implements it lives in one place.

memsim::MachineConfig machine_for_fabric(const std::string& fabric) {
  if (fabric == "upi") return memsim::MachineConfig::skylake_testbed();
  if (fabric == "cxl") return memsim::MachineConfig::cxl_direct_attached();
  if (fabric == "cxl-switched") return memsim::MachineConfig::cxl_switched_pool();
  if (fabric == "split") return memsim::MachineConfig::split_borrowing();
  if (fabric == "three-tier") return memsim::MachineConfig::three_tier_cxl();
  if (fabric == "hybrid") return memsim::MachineConfig::hybrid_split_pool();
  throw std::invalid_argument(
      "unknown topology preset '" + fabric +
      "' (expected upi|cxl|cxl-switched|split|three-tier|hybrid)");
}

const std::vector<std::string>& topology_preset_names() {
  static const std::vector<std::string> names = {"upi",   "cxl",        "cxl-switched",
                                                 "split", "three-tier", "hybrid"};
  return names;
}

RunConfig SweepPoint::run_config() const {
  RunConfig rc;
  rc.machine = machine_for_fabric(fabric);
  rc.background_loi = loi;
  rc.prefetch_enabled = prefetch;
  if (ratio != kNodeOnly) rc.remote_capacity_ratio = ratio;
  return rc;
}

namespace {
std::mutex g_replay_cache_mutex;
std::string g_replay_cache_dir;  // guarded by g_replay_cache_mutex
}  // namespace

std::string replay_cache_dir() {
  const std::lock_guard<std::mutex> lock(g_replay_cache_mutex);
  return g_replay_cache_dir;
}

void set_replay_cache_dir(std::string dir) {
  const std::lock_guard<std::mutex> lock(g_replay_cache_mutex);
  g_replay_cache_dir = std::move(dir);
}

std::unique_ptr<workloads::Workload> SweepPoint::make_workload() const {
  const std::string cache = replay_cache_dir();
  if (!cache.empty()) return trace::make_cached_workload(cache, app, scale, seed);
  return workloads::make_workload(app, scale, seed);
}

std::string SweepPoint::functional_group_key() const {
  // Everything but `loi` (the timing axis) and `index` (the row slot).
  // Coarser than core::functional_key — that one sees the actual workload
  // parameters and shaped machine — but grouping only schedules waves;
  // the repricer's own key decides what is actually reused.
  std::string key = workloads::app_name(app);
  key += '/';
  key += std::to_string(scale);
  key += '/';
  key += format_double(ratio);
  key += '/';
  key += fabric;
  key += prefetch ? "/pf1/" : "/pf0/";
  key += variant;
  key += '/';
  key += std::to_string(seed);
  return key;
}

std::size_t SweepSpec::size() const {
  return apps.size() * scales.size() * ratios.size() * lois.size() * fabrics.size() *
         prefetch.size() * variants.size();
}

std::vector<SweepPoint> SweepSpec::expand() const {
  expects(!apps.empty() && !scales.empty() && !ratios.empty() && !lois.empty() &&
              !fabrics.empty() && !prefetch.empty() && !variants.empty(),
          "SweepSpec axes must be non-empty");
  std::vector<SweepPoint> points;
  points.reserve(size());
  for (const auto app : apps)
    for (const int scale : scales)
      for (const double ratio : ratios)
        for (const double loi : lois)
          for (const auto& fabric : fabrics)
            for (const bool pf : prefetch)
              for (const auto& variant : variants) {
                SweepPoint p;
                p.index = points.size();
                p.app = app;
                p.scale = scale;
                p.ratio = ratio;
                p.loi = loi;
                p.fabric = fabric;
                p.prefetch = pf;
                p.variant = variant;
                // Stream-split the base seed per task: the same point gets
                // the same seed no matter which thread runs it, and
                // neighbouring indices get statistically independent seeds.
                p.seed = seed_per_task
                             ? SplitMix64(base_seed ^ (0x9e3779b97f4a7c15ULL * (p.index + 1)))
                                   .next()
                             : base_seed;
                points.push_back(std::move(p));
              }
  return points;
}

std::vector<std::string> SweepResult::metric_names() const {
  std::vector<std::string> names;
  for (const auto& row : rows)
    for (const auto& [name, value] : row.metrics) {
      (void)value;
      if (std::find(names.begin(), names.end(), name) == names.end()) names.push_back(name);
    }
  return names;
}

void SweepResult::write_csv(std::ostream& os) const {
  std::vector<std::string> header = {"index", "app",    "scale",    "ratio",
                                     "loi",   "fabric", "prefetch", "variant",
                                     "seed"};
  const auto metrics = metric_names();
  header.insert(header.end(), metrics.begin(), metrics.end());
  CsvWriter csv(os, header);
  for (const auto& row : rows) {
    std::vector<std::string> cells = {
        std::to_string(row.point.index),
        workloads::app_name(row.point.app),
        std::to_string(row.point.scale),
        row.point.ratio == kNodeOnly ? "local" : format_double(row.point.ratio),
        format_double(row.point.loi),
        row.point.fabric,
        row.point.prefetch ? "on" : "off",
        row.point.variant,
        std::to_string(row.point.seed)};
    for (const auto& name : metrics) {
      const auto it = std::find_if(row.metrics.begin(), row.metrics.end(),
                                   [&](const Metric& m) { return m.first == name; });
      cells.push_back(it == row.metrics.end() ? "" : format_double(it->second));
    }
    csv.add_row(cells);
  }
}

void SweepResult::write_csv_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_csv(out);
}

void SweepResult::write_json(std::ostream& os) const {
  os << "{\n  \"scenario\": \"" << json_escape(scenario) << "\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    os << "    {\"index\": " << row.point.index << ", \"app\": \""
       << workloads::app_name(row.point.app) << "\", \"scale\": " << row.point.scale
       << ", \"ratio\": "
       << (row.point.ratio == kNodeOnly ? std::string("null") : format_double(row.point.ratio))
       << ", \"loi\": " << format_double(row.point.loi) << ", \"fabric\": \""
       << json_escape(row.point.fabric) << "\", \"prefetch\": "
       << (row.point.prefetch ? "true" : "false") << ", \"variant\": \""
       << json_escape(row.point.variant) << "\", \"seed\": " << row.point.seed
       << ", \"metrics\": {";
    for (std::size_t m = 0; m < row.metrics.size(); ++m) {
      os << (m ? ", " : "") << "\"" << json_escape(row.metrics[m].first)
         << "\": " << format_double(row.metrics[m].second);
    }
    os << "}}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

void SweepResult::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_json(out);
}

bool SweepResult::rows_equal(const SweepResult& other) const {
  if (rows.size() != other.rows.size()) return false;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& a = rows[i];
    const auto& b = other.rows[i];
    // Defaulted memberwise equality: a field added to SweepPoint is
    // compared automatically instead of silently going stale here.
    if (!(a.point == b.point) || a.metrics.size() != b.metrics.size()) return false;
    for (std::size_t m = 0; m < a.metrics.size(); ++m) {
      if (a.metrics[m].first != b.metrics[m].first) return false;
      // Bit-pattern comparison: NaN-safe and stricter than ==.
      std::uint64_t abits = 0, bbits = 0;
      static_assert(sizeof(double) == sizeof(std::uint64_t));
      std::memcpy(&abits, &a.metrics[m].second, sizeof(abits));
      std::memcpy(&bbits, &b.metrics[m].second, sizeof(bbits));
      if (abits != bbits) return false;
    }
  }
  return true;
}

SweepResult run_sweep(const SweepSpec& spec, const MeasureFn& measure,
                      const SweepOptions& options) {
  expects(static_cast<bool>(measure), "run_sweep requires a measure function");
  const auto points = spec.expand();
  SweepResult result;
  result.rows.resize(points.size());
  const auto t0 = std::chrono::steady_clock::now();
  const auto run_point = [&](std::size_t i) {
    result.rows[i].point = points[i];
    result.rows[i].metrics = measure(points[i]);
  };
  if (reprice_enabled() && points.size() > 1) {
    // Two waves: the first point of each functional group runs (and, for
    // eligible measures, captures its epoch profile) before the rest of
    // the group re-prices from it. Purely a scheduling optimization —
    // without it a group's points racing in one wave would each capture —
    // rows land in grid slots either way, bit-identical to serial.
    std::vector<std::size_t> leaders;
    std::vector<std::size_t> followers;
    std::unordered_set<std::string> seen;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (seen.insert(points[i].functional_group_key()).second) {
        leaders.push_back(i);
      } else {
        followers.push_back(i);
      }
    }
    parallel_for(leaders.size(), options.jobs,
                 [&](std::size_t j) { run_point(leaders[j]); });
    parallel_for(followers.size(), options.jobs,
                 [&](std::size_t j) { run_point(followers[j]); });
  } else {
    parallel_for(points.size(), options.jobs, run_point);
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

}  // namespace memdis::core
