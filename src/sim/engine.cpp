#include "sim/engine.h"

#include <algorithm>

#include "common/contract.h"
#include "common/units.h"

namespace memdis::sim {

Engine::Engine(const EngineConfig& cfg)
    : cfg_(cfg), memory_(cfg.machine), link_(cfg.machine), hierarchy_(cfg.hierarchy, memory_) {
  link_.set_background_loi(cfg.background_loi);
}

void Engine::set_background_loi(double loi_percent) {
  link_.set_background_loi(loi_percent);
}

memsim::VRange Engine::alloc(std::uint64_t bytes, memsim::MemPolicy policy, std::string name) {
  // numactl-style override: default-policy allocations follow the system
  // policy override; explicit bindings keep their policy.
  if (policy.kind == memsim::PlacementKind::kFirstTouch && cfg_.default_policy_override) {
    policy = *cfg_.default_policy_override;
  }
  const memsim::VRange range = memory_.alloc(bytes, policy);
  allocations_.push_back(AllocationInfo{std::move(name), range, false});
  return range;
}

void Engine::free(const memsim::VRange& range) {
  memory_.free(range);
  for (auto& info : allocations_) {
    if (info.range.base == range.base) info.freed = true;
  }
}

void Engine::load(std::uint64_t addr, std::uint32_t size) {
  expects(size > 0, "load of zero bytes");
  const std::uint64_t line = cfg_.machine.cacheline_bytes;
  const std::uint64_t first = addr / line;
  const std::uint64_t last = (addr + size - 1) / line;
  for (std::uint64_t l = first; l <= last; ++l) {
    const auto res = hierarchy_.access(l * line, /*is_store=*/false);
    on_demand_access(l * line, res.level);
  }
}

void Engine::store(std::uint64_t addr, std::uint32_t size) {
  expects(size > 0, "store of zero bytes");
  const std::uint64_t line = cfg_.machine.cacheline_bytes;
  const std::uint64_t first = addr / line;
  const std::uint64_t last = (addr + size - 1) / line;
  for (std::uint64_t l = first; l <= last; ++l) {
    const auto res = hierarchy_.access(l * line, /*is_store=*/true);
    on_demand_access(l * line, res.level);
  }
}

void Engine::on_demand_access(std::uint64_t addr, cachesim::HitLevel level) {
  // Page-access sampling fires at L1-miss granularity — where PEBS
  // demand-load-miss events fire on the paper's testbed. L1 hits (register
  // and stack-like reuse) carry no bandwidth and are excluded so the Fig. 6
  // curves weigh pages by memory-system traffic, not raw instruction count.
  if (level != cachesim::HitLevel::kL1 &&
      ++page_sample_counter_ >= cfg_.page_sample_period) {
    page_sample_counter_ = 0;
    ++page_hist_[addr / cfg_.machine.page_bytes];
  }
  if (++epoch_demand_accesses_ >= cfg_.epoch_accesses) close_epoch();
}

void Engine::pf_start(std::string tag) {
  expects(current_phase_.empty(), "nested pf_start without pf_stop");
  close_epoch();
  current_phase_ = std::move(tag);
  phase_base_ = hierarchy_.counters();
  phase_flops_base_ = total_flops_ + pending_flops_;
  phase_time_base_ = elapsed_s_;
}

void Engine::pf_stop() {
  expects(!current_phase_.empty(), "pf_stop without pf_start");
  close_epoch();
  PhaseRecord rec;
  rec.tag = current_phase_;
  rec.time_s = elapsed_s_ - phase_time_base_;
  rec.flops = total_flops_ - phase_flops_base_;
  rec.counters = hierarchy_.counters().delta_since(phase_base_);
  phases_.push_back(std::move(rec));
  current_phase_.clear();
}

void Engine::close_epoch() {
  const cachesim::HwCounters now = hierarchy_.counters();
  const cachesim::HwCounters d = now.delta_since(epoch_base_);
  const std::uint64_t flops_now = pending_flops_;
  if (d.accesses() == 0 && flops_now == 0) {
    epoch_demand_accesses_ = 0;
    return;  // nothing happened since the last close
  }

  const auto& m = cfg_.machine;
  const int li = memsim::tier_index(memsim::Tier::kLocal);
  const int ri = memsim::tier_index(memsim::Tier::kRemote);
  const auto local_bytes = static_cast<double>(d.dram_bytes(memsim::Tier::kLocal));
  const auto remote_bytes = static_cast<double>(d.dram_bytes(memsim::Tier::kRemote));

  // Throughput-bound terms.
  const double t_flop = static_cast<double>(flops_now) / (m.peak_gflops * 1e9);
  const double t_local = local_bytes / gbps_to_bytes_per_sec(m.local.bandwidth_gbps);
  const double bw_remote_eff =
      std::min(link_.effective_data_bandwidth_gbps(0.0), m.remote.bandwidth_gbps);
  const double t_remote = remote_bytes / gbps_to_bytes_per_sec(bw_remote_eff);
  const double t_base = std::max({t_flop, t_local, t_remote});

  // Latency-bound term: only *demand* misses stall the cores; the app's own
  // offered rate feeds the link queueing model (two-pass fixed point).
  const double est_rate_gbps =
      t_base > 0 ? bytes_per_sec_to_gbps(remote_bytes / t_base) : 0.0;
  const double lat_local_s = ns_to_s(m.local.latency_ns);
  const double lat_remote_s = ns_to_s(link_.effective_latency_ns(est_rate_gbps));
  const double overlap = m.mlp * static_cast<double>(m.threads);
  const double t_stall = cfg_.stall_weight *
                         (static_cast<double>(d.demand_dram[li]) * lat_local_s +
                          static_cast<double>(d.demand_dram[ri]) * lat_remote_s) /
                         overlap;

  const double duration = t_base + t_stall;

  EpochRecord rec;
  rec.start_s = elapsed_s_;
  rec.duration_s = duration;
  rec.phase = current_phase_;
  rec.flops = flops_now;
  rec.local_bytes = static_cast<std::uint64_t>(local_bytes);
  rec.remote_bytes = static_cast<std::uint64_t>(remote_bytes);
  rec.l2_lines_in = d.l2_lines_in;
  rec.demand_local = d.demand_dram[li];
  rec.demand_remote = d.demand_dram[ri];
  const double app_rate_gbps =
      duration > 0 ? bytes_per_sec_to_gbps(remote_bytes / duration) : 0.0;
  rec.link_traffic_gbps = link_.measured_traffic_gbps(app_rate_gbps);
  rec.link_utilization = link_.offered_utilization(app_rate_gbps);
  const memsim::NumaSnapshot snap = memory_.snapshot();
  rec.resident_local_bytes = snap.resident_bytes[li];
  rec.resident_remote_bytes = snap.resident_bytes[ri];
  epochs_.push_back(std::move(rec));

  elapsed_s_ += duration;
  total_flops_ += flops_now;
  peak_rss_ = std::max(peak_rss_, snap.total());
  pending_flops_ = 0;
  epoch_demand_accesses_ = 0;
  epoch_base_ = now;
  if (epoch_cb_) epoch_cb_(*this);
}

void Engine::finish() {
  expects(!finished_, "finish called twice");
  expects(current_phase_.empty(), "finish inside an open phase");
  close_epoch();
  hierarchy_.drain();
  // Writeback traffic from the drain is charged to a final epoch.
  close_epoch();
  finished_ = true;
}

}  // namespace memdis::sim
