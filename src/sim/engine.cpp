#include "sim/engine.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <type_traits>

#include "common/contract.h"
#include "common/units.h"

namespace memdis::sim {

namespace {
std::atomic<bool> g_bulk_fast_path_default{true};
std::atomic<memsim::LinkModelKind> g_link_model_default{memsim::LinkModelKind::kLoi};
std::atomic<bool> g_fast_forward_default{false};

/// Steady-state equality for fast-forward: two epochs repeat iff their full
/// counter deltas and their cost-relevant record fields match exactly.
bool counters_equal(const cachesim::HwCounters& a, const cachesim::HwCounters& b) {
  static_assert(std::is_trivially_copyable_v<cachesim::HwCounters>);
  return std::memcmp(&a, &b, sizeof(cachesim::HwCounters)) == 0;
}

bool epochs_repeat(const EpochRecord& a, const EpochRecord& b) {
  return a.duration_s == b.duration_s && a.phase == b.phase && a.flops == b.flops &&
         a.tier_bytes == b.tier_bytes && a.tier_demand == b.tier_demand &&
         a.l2_lines_in == b.l2_lines_in && a.link_traffic_gbps == b.link_traffic_gbps &&
         a.link_utilization == b.link_utilization && a.migration_s == 0.0 &&
         b.migration_s == 0.0 && a.resident_bytes == b.resident_bytes &&
         a.link_loi == b.link_loi && a.link_demand_mult == b.link_demand_mult &&
         a.link_demand_inflation == b.link_demand_inflation &&
         a.migration_bytes == b.migration_bytes;
}
}  // namespace

bool bulk_fast_path_default() { return g_bulk_fast_path_default.load(std::memory_order_relaxed); }
void set_bulk_fast_path_default(bool on) {
  g_bulk_fast_path_default.store(on, std::memory_order_relaxed);
}

memsim::LinkModelKind link_model_default() {
  return g_link_model_default.load(std::memory_order_relaxed);
}
void set_link_model_default(memsim::LinkModelKind kind) {
  g_link_model_default.store(kind, std::memory_order_relaxed);
}

bool fast_forward_default() { return g_fast_forward_default.load(std::memory_order_relaxed); }
void set_fast_forward_default(bool on) {
  g_fast_forward_default.store(on, std::memory_order_relaxed);
}

Engine::Engine(const EngineConfig& cfg)
    : cfg_(cfg), memory_(cfg.machine), hierarchy_(cfg.hierarchy, memory_) {
  const auto& m = cfg_.machine;
  expects(m.cacheline_bytes > 0 && (m.cacheline_bytes & (m.cacheline_bytes - 1)) == 0,
          "cacheline size must be a power of two");
  expects(m.page_bytes > 0 && (m.page_bytes & (m.page_bytes - 1)) == 0,
          "page size must be a power of two");
  line_bytes_ = m.cacheline_bytes;
  line_mask_ = m.cacheline_bytes - 1;
  page_shift_ = log2_pow2(m.page_bytes);
  const auto& topo = cfg_.machine.topology;
  links_.reserve(static_cast<std::size_t>(topo.num_tiers()));
  queues_.reserve(static_cast<std::size_t>(topo.num_tiers()));
  const bool queue_mode = cfg_.link_model == memsim::LinkModelKind::kQueue;
  for (memsim::TierId t = 0; t < topo.num_tiers(); ++t) {
    if (topo.is_fabric(t)) {
      links_.emplace_back(memsim::LinkModel(topo.tier(t)));
      if (queue_mode) {
        queues_.emplace_back(memsim::QueueModel(topo.tier(t)));
      } else {
        queues_.emplace_back(std::nullopt);
      }
    } else {
      links_.emplace_back(std::nullopt);
      queues_.emplace_back(std::nullopt);
    }
  }
  pending_migration_bytes_.assign(static_cast<std::size_t>(topo.num_tiers()), 0);
  set_background_loi(cfg.background_loi);
  for (std::size_t t = 0; t < cfg_.background_loi_per_tier.size() && t < links_.size(); ++t) {
    if (links_[t]) links_[t]->set_background_loi(cfg_.background_loi_per_tier[t]);
  }
  apply_loi_schedule(0);
}

void Engine::apply_loi_schedule(std::uint64_t epoch) {
  if (cfg_.loi_schedule.empty()) return;
  // A schedule entry beyond the topology would otherwise be silently
  // ignored — a run that "handled the burst" because the burst never
  // happened.
  expects(cfg_.loi_schedule.per_tier.size() <= links_.size(),
          "LoI schedule targets a tier beyond the topology");
  for (std::size_t t = 0; t < links_.size(); ++t) {
    const auto* wave = cfg_.loi_schedule.waveform(static_cast<memsim::TierId>(t));
    if (!wave) continue;
    expects(links_[t].has_value(), "LoI schedule targets a tier without a link");
    links_[t]->set_background_loi(wave->value_at(epoch));
  }
}

const memsim::LinkModel& Engine::link() const {
  return link(cfg_.machine.topology.first_fabric());
}

const memsim::LinkModel& Engine::link(memsim::TierId t) const {
  expects(t >= 0 && t < static_cast<int>(links_.size()), "tier id out of range");
  const auto& l = links_[static_cast<std::size_t>(t)];
  expects(l.has_value(), "tier has no fabric link");
  return *l;
}

void Engine::set_background_loi(double loi_percent) {
  for (auto& l : links_)
    if (l) l->set_background_loi(loi_percent);
}

void Engine::set_background_loi(memsim::TierId t, double loi_percent) {
  expects(t >= 0 && t < static_cast<int>(links_.size()), "tier id out of range");
  auto& l = links_[static_cast<std::size_t>(t)];
  expects(l.has_value(), "tier has no fabric link");
  l->set_background_loi(loi_percent);
}

double Engine::background_loi(memsim::TierId t) const { return link(t).background_loi(); }

void Engine::charge_migration_seconds(double seconds) {
  expects(seconds >= 0.0, "migration time cannot be negative");
  pending_migration_s_ += seconds;
}

void Engine::charge_migration_bytes(memsim::TierId seg, std::uint64_t bytes) {
  expects(seg >= 0 && seg < static_cast<int>(links_.size()), "tier id out of range");
  expects(links_[static_cast<std::size_t>(seg)].has_value(), "tier has no fabric link");
  pending_migration_bytes_[static_cast<std::size_t>(seg)] += bytes;
}

const memsim::QueueModel& Engine::queue(memsim::TierId t) const {
  expects(t >= 0 && t < static_cast<int>(queues_.size()), "tier id out of range");
  const auto& q = queues_[static_cast<std::size_t>(t)];
  expects(q.has_value(), "tier has no link queue (kLoi model or local tier)");
  return *q;
}

double Engine::effective_loi(memsim::TierId t, memsim::TrafficClass cls) const {
  if (cfg_.link_model != memsim::LinkModelKind::kQueue) return background_loi(t);
  const memsim::QueueModel& q = queue(t);
  return q.effective_loi(cls, background_loi(t), q.cross_rate_gbps(cls));
}

memsim::VRange Engine::alloc(std::uint64_t bytes, memsim::MemPolicy policy, std::string name) {
  // The trace records the *caller's* policy: replay passes it back through
  // alloc(), where the replaying engine's own override applies — so one
  // trace serves every policy grid point.
  const memsim::MemPolicy caller_policy = trace_sink_ ? policy : memsim::MemPolicy{};
  // numactl-style override: default-policy allocations follow the system
  // policy override; explicit bindings keep their policy.
  if (policy.kind == memsim::PlacementKind::kFirstTouch && cfg_.default_policy_override) {
    policy = *cfg_.default_policy_override;
  }
  const memsim::VRange range = memory_.alloc(bytes, std::move(policy));
  alloc_index_.emplace(range.base, allocations_.size());
  allocations_.push_back(AllocationInfo{std::move(name), range, false});
  if (trace_sink_)
    trace_sink_->on_alloc(bytes, caller_policy, allocations_.back().name, range.base);
  return range;
}

void Engine::free(const memsim::VRange& range) {
  if (trace_sink_) trace_sink_->on_free(range.base);
  memory_.free(range);
  const auto it = alloc_index_.find(range.base);
  if (it != alloc_index_.end()) allocations_[it->second].freed = true;
}

// ---- bulk access streams ----------------------------------------------------

void Engine::range_element_loop(std::uint64_t addr, std::uint64_t bytes, std::uint32_t elem,
                                RangeKind kind) {
  // access_span, not load()/store(): the public range call already fired
  // the trace sink once; its decomposition must not record again.
  const std::uint64_t end = addr + bytes;
  switch (kind) {
    case RangeKind::kLoad:
      for (std::uint64_t a = addr; a < end; a += elem) access_span(a, elem, false);
      break;
    case RangeKind::kStore:
      for (std::uint64_t a = addr; a < end; a += elem) access_span(a, elem, true);
      break;
    case RangeKind::kRmw:
      for (std::uint64_t a = addr; a < end; a += elem) {
        access_span(a, elem, false);
        access_span(a, elem, true);
      }
      break;
    case RangeKind::kStoreLoad:
      for (std::uint64_t a = addr; a < end; a += elem) {
        access_span(a, elem, true);
        access_span(a, elem, false);
      }
      break;
  }
}

bool Engine::line_run_fast(std::uint64_t line_addr, std::uint64_t loads, std::uint64_t stores,
                           bool first_is_store, BulkAcc& acc) {
  const std::uint64_t r = loads + stores;
  // Accesses left before the epoch closes. If the boundary falls inside
  // (or exactly at the end of) this run, the caller replays it
  // access-by-access so close_epoch() fires at the identical access.
  const std::uint64_t room = cfg_.epoch_accesses - epoch_demand_accesses_;
  if (r >= room) return false;
  if (hierarchy_.try_l1_run(line_addr, stores != 0, r)) {
    // Pure L1-hit run: no page samples (sampling fires on non-L1 only).
    acc.loads += loads;
    acc.stores += stores;
    epoch_demand_accesses_ += r;
    return true;
  }
  // Leading access misses L1: the unavoidable full walk, identical to the
  // element-wise path (counters written directly, page sampler advanced).
  // The failed run probe already established the L1 miss.
  const auto res = hierarchy_.access_after_l1_miss(line_addr, first_is_store);
  if (res.level != cachesim::HitLevel::kL1 &&
      ++page_sample_counter_ >= cfg_.page_sample_period) {
    page_sample_counter_ = 0;
    bump_page_hist(line_addr >> page_shift_);
  }
  if (r > 1) {
    // The remaining r-1 accesses hit the line just filled into L1.
    const std::uint64_t tail_loads = loads - (first_is_store ? 0 : 1);
    const std::uint64_t tail_stores = stores - (first_is_store ? 1 : 0);
    hierarchy_.l1_touch_run(line_addr, tail_stores != 0, r - 1);
    acc.loads += tail_loads;
    acc.stores += tail_stores;
  }
  epoch_demand_accesses_ += r;  // stays below the epoch threshold: r < room
  return true;
}

void Engine::range_access(std::uint64_t addr, std::uint64_t bytes, std::uint32_t elem,
                          RangeKind kind) {
  expects(bytes > 0, "range of zero bytes");
  expects(elem > 0, "range with zero element size");
  expects(bytes % elem == 0, "range must hold whole elements");
  // The fast path requires elements that never straddle a cacheline
  // (element size divides the line and the base is element-aligned);
  // anything else decomposes to the reference loop — still exact.
  if (!cfg_.bulk_fast_path || line_bytes_ % elem != 0 || addr % elem != 0) {
    range_element_loop(addr, bytes, elem, kind);
    return;
  }
  BulkAcc acc;
  std::uint64_t a = addr;
  const std::uint64_t end = addr + bytes;
  while (a < end) {
    const std::uint64_t line_start = a & ~line_mask_;
    const std::uint64_t seg_end = std::min(end, line_start + line_bytes_);
    const std::uint64_t k = (seg_end - a) / elem;  // elements in this line
    bool ok = false;
    switch (kind) {
      case RangeKind::kLoad:
        ok = line_run_fast(line_start, k, 0, /*first_is_store=*/false, acc);
        break;
      case RangeKind::kStore:
        ok = line_run_fast(line_start, 0, k, /*first_is_store=*/true, acc);
        break;
      case RangeKind::kRmw:
        ok = line_run_fast(line_start, k, k, /*first_is_store=*/false, acc);
        break;
      case RangeKind::kStoreLoad:
        ok = line_run_fast(line_start, k, k, /*first_is_store=*/true, acc);
        break;
    }
    if (!ok) {  // epoch boundary inside the run: exact access-by-access replay
      flush_bulk(acc);
      switch (kind) {
        case RangeKind::kLoad:
          for (std::uint64_t i = 0; i < k; ++i) access_one(line_start, false);
          break;
        case RangeKind::kStore:
          for (std::uint64_t i = 0; i < k; ++i) access_one(line_start, true);
          break;
        case RangeKind::kRmw:
          for (std::uint64_t i = 0; i < k; ++i) {
            access_one(line_start, false);
            access_one(line_start, true);
          }
          break;
        case RangeKind::kStoreLoad:
          for (std::uint64_t i = 0; i < k; ++i) {
            access_one(line_start, true);
            access_one(line_start, false);
          }
          break;
      }
    }
    a = seg_end;
  }
  flush_bulk(acc);
}

void Engine::load_range(std::uint64_t addr, std::uint64_t bytes, std::uint32_t elem_bytes) {
  if (trace_sink_) trace_sink_->on_range(0, addr, bytes, elem_bytes);
  range_access(addr, bytes, elem_bytes, RangeKind::kLoad);
}
void Engine::store_range(std::uint64_t addr, std::uint64_t bytes, std::uint32_t elem_bytes) {
  if (trace_sink_) trace_sink_->on_range(1, addr, bytes, elem_bytes);
  range_access(addr, bytes, elem_bytes, RangeKind::kStore);
}
void Engine::rmw_range(std::uint64_t addr, std::uint64_t bytes, std::uint32_t elem_bytes) {
  if (trace_sink_) trace_sink_->on_range(2, addr, bytes, elem_bytes);
  range_access(addr, bytes, elem_bytes, RangeKind::kRmw);
}
void Engine::store_load_range(std::uint64_t addr, std::uint64_t bytes,
                              std::uint32_t elem_bytes) {
  if (trace_sink_) trace_sink_->on_range(3, addr, bytes, elem_bytes);
  range_access(addr, bytes, elem_bytes, RangeKind::kStoreLoad);
}

void Engine::strided_access(std::uint64_t addr, std::uint64_t count, std::uint64_t stride,
                            std::uint32_t elem, bool is_store) {
  expects(count > 0, "strided range of zero elements");
  expects(elem > 0, "strided range with zero element size");
  expects(stride > 0, "strided range with zero stride");
  if (!cfg_.bulk_fast_path || line_bytes_ % elem != 0 || addr % elem != 0 ||
      stride % elem != 0) {
    for (std::uint64_t k = 0; k < count; ++k) access_span(addr + k * stride, elem, is_store);
    return;
  }
  // Elements are line-contained; group consecutive same-line elements into
  // runs (stride < line keeps several elements per line, stride >= line
  // makes every run a single access).
  BulkAcc acc;
  std::uint64_t run_line = ~0ULL;
  std::uint64_t run_k = 0;
  const auto emit = [&](std::uint64_t line, std::uint64_t k) {
    const bool ok = is_store ? line_run_fast(line, 0, k, true, acc)
                             : line_run_fast(line, k, 0, false, acc);
    if (!ok) {
      flush_bulk(acc);
      for (std::uint64_t i = 0; i < k; ++i) access_one(line, is_store);
    }
  };
  for (std::uint64_t k = 0; k < count; ++k) {
    const std::uint64_t line = (addr + k * stride) & ~line_mask_;
    if (line == run_line) {
      ++run_k;
      continue;
    }
    if (run_k != 0) emit(run_line, run_k);
    run_line = line;
    run_k = 1;
  }
  if (run_k != 0) emit(run_line, run_k);
  flush_bulk(acc);
}

void Engine::load_strided(std::uint64_t addr, std::uint64_t count, std::uint64_t stride_bytes,
                          std::uint32_t elem_bytes) {
  if (trace_sink_) trace_sink_->on_strided(false, addr, count, stride_bytes, elem_bytes);
  strided_access(addr, count, stride_bytes, elem_bytes, /*is_store=*/false);
}
void Engine::store_strided(std::uint64_t addr, std::uint64_t count, std::uint64_t stride_bytes,
                           std::uint32_t elem_bytes) {
  if (trace_sink_) trace_sink_->on_strided(true, addr, count, stride_bytes, elem_bytes);
  strided_access(addr, count, stride_bytes, elem_bytes, /*is_store=*/true);
}

void Engine::pair_range_access(std::uint64_t a, std::uint32_t elem_a, std::uint64_t b,
                               std::uint32_t elem_b, std::uint64_t count, bool is_store) {
  expects(count > 0, "paired range of zero elements");
  expects(elem_a > 0 && elem_b > 0, "paired range with zero element size");
  const auto slow_iter = [&](std::uint64_t k) {
    access_span(a + k * elem_a, elem_a, is_store);
    access_span(b + k * elem_b, elem_b, is_store);
  };
  if (!cfg_.bulk_fast_path || line_bytes_ % elem_a != 0 || a % elem_a != 0 ||
      line_bytes_ % elem_b != 0 || b % elem_b != 0) {
    for (std::uint64_t k = 0; k < count; ++k) slow_iter(k);
    return;
  }
  BulkAcc acc;
  std::uint64_t k = 0;
  while (k < count) {
    const std::uint64_t addr_a = a + k * elem_a;
    const std::uint64_t addr_b = b + k * elem_b;
    const std::uint64_t line_a = addr_a & ~line_mask_;
    const std::uint64_t line_b = addr_b & ~line_mask_;
    // Iterations both streams spend in their current lines (elements are
    // line-contained and element-aligned, so these divide exactly).
    const std::uint64_t in_a = (line_a + line_bytes_ - addr_a) / elem_a;
    const std::uint64_t in_b = (line_b + line_bytes_ - addr_b) / elem_b;
    const std::uint64_t n = std::min({in_a, in_b, count - k});
    const std::uint64_t room = cfg_.epoch_accesses - epoch_demand_accesses_;
    if (2 * n >= room || !hierarchy_.l1_contains(line_a) ||
        !hierarchy_.l1_contains(line_b)) {
      // Epoch boundary nearby or a line not yet in L1: run one iteration
      // through the exact element-wise path (which performs any fills and
      // closes the epoch at the precise access), then re-derive the window.
      flush_bulk(acc);
      slow_iter(k);
      ++k;
      continue;
    }
    // Both lines are L1-resident: all 2n accesses are hits, applied as one
    // interleaved run (A then B per iteration; B's line holds the final
    // LRU tick, exactly as the element-wise sequence would leave it).
    hierarchy_.l1_pair_run(line_a, line_b, is_store, n);
    if (is_store) {
      acc.stores += 2 * n;
    } else {
      acc.loads += 2 * n;
    }
    epoch_demand_accesses_ += 2 * n;
    k += n;
  }
  flush_bulk(acc);
}

void Engine::stream_range(const StreamLane* lanes, std::size_t num_lanes,
                          std::uint64_t count) {
  expects(num_lanes > 0, "stream_range without lanes");
  expects(count > 0, "stream_range of zero iterations");
  if (trace_sink_) trace_sink_->on_stream(lanes, num_lanes, count);
  for (std::size_t i = 0; i < num_lanes; ++i)
    expects(lanes[i].op == StreamLane::Op::kFlops ||
                (lanes[i].elem > 0 && lanes[i].stride > 0),
            "stream lane with zero element size or stride");
  const auto emit_iter = [&](std::uint64_t k) {
    for (std::size_t i = 0; i < num_lanes; ++i) {
      const StreamLane& ln = lanes[i];
      const std::uint64_t a = ln.base + k * ln.stride;
      switch (ln.op) {
        case StreamLane::Op::kLoad:
          access_span(a, ln.elem, false);
          break;
        case StreamLane::Op::kStore:
          access_span(a, ln.elem, true);
          break;
        case StreamLane::Op::kRmw:
          access_span(a, ln.elem, false);
          access_span(a, ln.elem, true);
          break;
        case StreamLane::Op::kFlops:
          pending_flops_ += ln.base;
          break;
      }
    }
  };
  constexpr std::size_t kMaxLanes = 16;
  bool fast = cfg_.bulk_fast_path && num_lanes <= kMaxLanes;
  for (std::size_t i = 0; fast && i < num_lanes; ++i) {
    const StreamLane& ln = lanes[i];
    if (ln.op == StreamLane::Op::kFlops) continue;  // no address constraints
    // Line-contained, element-aligned lanes only (same rule as the other
    // range entry points); anything else runs the reference emission.
    if (line_bytes_ % ln.elem != 0 || ln.base % ln.elem != 0 || ln.stride % ln.elem != 0)
      fast = false;
  }
  if (!fast) {
    for (std::uint64_t k = 0; k < count; ++k) emit_iter(k);
    return;
  }

  // Per-iteration access count and each lane's final-access position within
  // one iteration (an rmw lane's store is its last access). Flops lanes
  // perform no access and never touch the LRU clock — batching their flops
  // is exact because pending flops are only read at epoch close, and the
  // window never crosses one (total < room below).
  std::uint32_t pos[kMaxLanes];
  std::uint32_t accesses_per_iter = 0;
  for (std::size_t i = 0; i < num_lanes; ++i) {
    if (lanes[i].op == StreamLane::Op::kFlops) {
      pos[i] = 0;
      continue;
    }
    accesses_per_iter += lanes[i].op == StreamLane::Op::kRmw ? 2 : 1;
    pos[i] = accesses_per_iter;
  }

  // Steady-state fast-forward (cfg.fast_forward): once two consecutive
  // in-call epochs close with bit-identical counter deltas, identical
  // records, and the same iteration gap, the stream has settled — cache
  // behaviour is periodic with the epoch, so the remaining whole epochs are
  // synthesized in closed form instead of simulated. Cache *contents* stay
  // at their pre-jump state (the next window re-resolves and re-fills);
  // that staleness is the mode's documented ≤0.1% tolerance, which is why
  // it is off by default and never golden-gated.
  const bool ff_on = cfg_.fast_forward && ff_eligible();
  const std::uint64_t ff_entry_epochs = epochs_.size();
  std::uint64_t ff_seen_epochs = ff_entry_epochs;
  std::uint64_t ff_close_k = 0;
  cachesim::HwCounters ff_close_base = epoch_base_;
  std::uint64_t ff_prev_gap = 0;
  cachesim::HwCounters ff_prev_delta{};
  bool ff_have_prev = false;

  std::uint64_t lane_line[kMaxLanes];
  std::size_t handle[kMaxLanes];
  // Lanes whose line changed this window, gathered so their probes resolve
  // in one batched pass over the L1 tag planes (the vectorized scans issue
  // back-to-back). Lanes with an unchanged line keep their handle: the
  // previous window ran the fast path, so no fill has moved anything.
  std::uint64_t probe_line[kMaxLanes];
  std::uint32_t probe_lane[kMaxLanes];
  std::size_t probe_handle[kMaxLanes];
  bool handles_valid = false;  // false → re-resolve every lane (post-fill)
  BulkAcc acc;
  std::uint64_t k = 0;
  while (k < count) {
    if (ff_on && epochs_.size() != ff_seen_epochs) {
      // An epoch closed since the last loop head (inside emit_iter, so the
      // bulk accumulator was already flushed). epoch_base_ is the counter
      // snapshot at that close: the delta since the previous close is the
      // epoch's exact signature.
      const std::uint64_t gap = k - ff_close_k;
      const cachesim::HwCounters delta = epoch_base_.delta_since(ff_close_base);
      // Only a single close with a full in-call epoch behind it yields a
      // usable (gap, delta) signature; the partial epoch in flight at call
      // entry never participates.
      if (epochs_.size() == ff_seen_epochs + 1 && ff_seen_epochs > ff_entry_epochs &&
          gap > 0) {
        if (ff_have_prev && gap == ff_prev_gap && counters_equal(delta, ff_prev_delta) &&
            epochs_repeat(epochs_.back(), epochs_[epochs_.size() - 2])) {
          const std::uint64_t iters_left = count - k;
          if (iters_left > 2 * gap) {
            const std::uint64_t reps = iters_left / gap - 1;  // keep a live tail
            ff_synthesize(delta, reps);
            k += reps * gap;
            handles_valid = false;
          }
          ff_have_prev = false;  // require fresh evidence before jumping again
        } else {
          ff_prev_gap = gap;
          ff_prev_delta = delta;
          ff_have_prev = true;
        }
      } else {
        ff_have_prev = false;
      }
      ff_seen_epochs = epochs_.size();
      ff_close_k = k;
      ff_close_base = epoch_base_;
    }
    // Window: iterations every lane spends inside its current cacheline.
    std::uint64_t n = count - k;
    std::size_t num_probes = 0;
    for (std::size_t i = 0; i < num_lanes; ++i) {
      const StreamLane& ln = lanes[i];
      if (ln.op == StreamLane::Op::kFlops) continue;
      const std::uint64_t addr = ln.base + k * ln.stride;
      const std::uint64_t line = addr & ~line_mask_;
      const std::uint64_t in_line = (line + line_bytes_ - 1 - addr) / ln.stride + 1;
      n = std::min(n, in_line);
      if (!handles_valid || line != lane_line[i]) {
        lane_line[i] = line;
        probe_line[num_probes] = line;
        probe_lane[num_probes] = static_cast<std::uint32_t>(i);
        ++num_probes;
      }
    }
    // Only freshly probed lanes can miss: unchanged handles come from a
    // window that already ran the all-hit fast path.
    bool any_miss = false;
    if (num_probes > 0) {
      hierarchy_.l1_index_of_batch(probe_line, num_probes, probe_handle);
      for (std::size_t j = 0; j < num_probes; ++j) {
        handle[probe_lane[j]] = probe_handle[j];
        any_miss = any_miss || probe_handle[j] == cachesim::CacheHierarchy::l1_npos;
      }
    }
    const std::uint64_t total = n * accesses_per_iter;
    const std::uint64_t room = cfg_.epoch_accesses - epoch_demand_accesses_;
    if (any_miss || total >= room) {
      // A lane's line is not resident (the element-wise path performs the
      // fill) or the epoch boundary falls inside the window (the element-
      // wise path closes it at the precise access). One exact iteration,
      // then re-resolve: fills may have evicted or moved any lane's line.
      flush_bulk(acc);
      emit_iter(k);
      ++k;
      handles_valid = false;
      continue;
    }
    // Every access in the window is an L1 hit: apply each lane's net batch
    // effect. Applying in lane order makes the latest lane win on shared
    // lines, exactly like the element-wise sequence.
    if (accesses_per_iter > 0) {
      const std::uint64_t t_end = hierarchy_.l1_advance_tick(total);
      for (std::size_t i = 0; i < num_lanes; ++i) {
        const StreamLane::Op op = lanes[i].op;
        if (op == StreamLane::Op::kFlops) continue;
        hierarchy_.l1_touch_at(handle[i], op != StreamLane::Op::kLoad,
                               t_end - (accesses_per_iter - pos[i]));
        if (op != StreamLane::Op::kStore) acc.loads += n;
        if (op != StreamLane::Op::kLoad) acc.stores += n;
      }
    }
    for (std::size_t i = 0; i < num_lanes; ++i)
      if (lanes[i].op == StreamLane::Op::kFlops) pending_flops_ += n * lanes[i].base;
    epoch_demand_accesses_ += total;
    handles_valid = true;
    k += n;
  }
  flush_bulk(acc);
}

void Engine::load_pair_range(std::uint64_t a, std::uint32_t elem_a, std::uint64_t b,
                             std::uint32_t elem_b, std::uint64_t count) {
  if (trace_sink_) trace_sink_->on_pair(false, a, elem_a, b, elem_b, count);
  pair_range_access(a, elem_a, b, elem_b, count, /*is_store=*/false);
}
void Engine::store_pair_range(std::uint64_t a, std::uint32_t elem_a, std::uint64_t b,
                              std::uint32_t elem_b, std::uint64_t count) {
  if (trace_sink_) trace_sink_->on_pair(true, a, elem_a, b, elem_b, count);
  pair_range_access(a, elem_a, b, elem_b, count, /*is_store=*/true);
}

// ---- phases & epochs --------------------------------------------------------

void Engine::pf_start(std::string tag) {
  expects(current_phase_.empty(), "nested pf_start without pf_stop");
  if (trace_sink_) trace_sink_->on_phase(true, tag);
  close_epoch();
  current_phase_ = std::move(tag);
  phase_base_ = hierarchy_.counters();
  phase_flops_base_ = total_flops_ + pending_flops_;
  phase_time_base_ = elapsed_s_;
  phase_epoch_base_ = epochs_.size();
}

void Engine::pf_stop() {
  expects(!current_phase_.empty(), "pf_stop without pf_start");
  if (trace_sink_) trace_sink_->on_phase(false, current_phase_);
  close_epoch();
  PhaseRecord rec;
  rec.tag = current_phase_;
  rec.time_s = elapsed_s_ - phase_time_base_;
  rec.flops = total_flops_ - phase_flops_base_;
  rec.counters = hierarchy_.counters().delta_since(phase_base_);
  rec.epoch_begin = phase_epoch_base_;
  rec.epoch_end = epochs_.size();
  phases_.push_back(std::move(rec));
  current_phase_.clear();
}

EpochPricing price_epoch(const memsim::MachineConfig& m, memsim::LinkModelKind link_model,
                         double stall_weight, std::uint64_t flops,
                         const std::vector<std::uint64_t>& tier_bytes,
                         const std::vector<std::uint64_t>& tier_demand,
                         const std::vector<std::uint64_t>& migration_bytes,
                         double migration_s,
                         const std::vector<std::optional<memsim::LinkModel>>& links,
                         const std::vector<std::optional<memsim::QueueModel>>& queues) {
  const int n = m.num_tiers();
  const bool queue_mode = link_model == memsim::LinkModelKind::kQueue;
  using memsim::TrafficClass;
  const auto link_at = [&links](memsim::TierId t) -> const memsim::LinkModel& {
    return *links[static_cast<std::size_t>(t)];
  };

  // Throughput-bound terms: the epoch is as long as its most-loaded lane —
  // compute, or any single tier's byte stream at that tier's effective
  // bandwidth (fabric tiers are additionally clipped by their link). Under
  // the queue model the demand stream's bandwidth share is further reduced
  // by the bulk class's *windowed* traffic estimate (prior epochs — this
  // epoch's own burst cannot shrink t_base without a circular dependency;
  // it feeds the latency pass below instead).
  const double t_flop = static_cast<double>(flops) / (m.peak_gflops * 1e9);
  double t_base = t_flop;
  for (memsim::TierId t = 0; t < n; ++t) {
    const auto bytes = static_cast<double>(tier_bytes[static_cast<std::size_t>(t)]);
    const auto& spec = m.tier(t);
    double bw_link = spec.bandwidth_gbps;
    if (spec.is_fabric()) {
      bw_link = queue_mode
                    ? queues[static_cast<std::size_t>(t)]->effective_data_bandwidth_gbps(
                          TrafficClass::kDemand, link_at(t).background_loi(),
                          queues[static_cast<std::size_t>(t)]->cross_rate_gbps(
                              TrafficClass::kDemand))
                    : link_at(t).effective_data_bandwidth_gbps(0.0);
    }
    const double bw_eff =
        spec.is_fabric() ? std::min(bw_link, spec.bandwidth_gbps) : spec.bandwidth_gbps;
    t_base = std::max(t_base, bytes / gbps_to_bytes_per_sec(bw_eff));
  }

  // Latency-bound term: only *demand* misses stall the cores; each fabric
  // tier's own offered rate feeds its link queueing model (two-pass fixed
  // point per link). Under the queue model the demand class additionally
  // sees the bulk class's traffic — the windowed estimate plus the bulk
  // bytes charged into this very epoch (at rate bytes/t_base, the same
  // proxy the demand rate uses), so a migration burst inflates the demand
  // latency of the epoch it lands in, not just the following window.
  const double overlap = m.mlp * static_cast<double>(m.threads);
  double stall_sum = 0.0;
  std::vector<double> demand_mult(static_cast<std::size_t>(n), 1.0);
  std::vector<double> demand_infl(static_cast<std::size_t>(n), 1.0);
  for (memsim::TierId t = 0; t < n; ++t) {
    const auto& spec = m.tier(t);
    double lat_s;
    if (spec.is_fabric()) {
      const auto bytes = static_cast<double>(tier_bytes[static_cast<std::size_t>(t)]);
      const double est_rate_gbps =
          t_base > 0 ? bytes_per_sec_to_gbps(bytes / t_base) : 0.0;
      if (queue_mode) {
        const auto& q = *queues[static_cast<std::size_t>(t)];
        const double cross_gbps = q.estimated_rate_gbps(
            TrafficClass::kBulk,
            static_cast<double>(migration_bytes[static_cast<std::size_t>(t)]), t_base);
        lat_s = ns_to_s(q.effective_latency_ns(TrafficClass::kDemand,
                                               link_at(t).background_loi(), est_rate_gbps,
                                               cross_gbps));
        demand_mult[static_cast<std::size_t>(t)] =
            q.latency_multiplier(TrafficClass::kDemand, link_at(t).background_loi(),
                                 est_rate_gbps, cross_gbps);
        // Same epoch, same demand load, bulk cross-traffic removed: the
        // denominator of the inflation trace.
        const double solo_mult = q.latency_multiplier(
            TrafficClass::kDemand, link_at(t).background_loi(), est_rate_gbps, 0.0);
        if (solo_mult > 0)
          demand_infl[static_cast<std::size_t>(t)] =
              demand_mult[static_cast<std::size_t>(t)] / solo_mult;
      } else {
        lat_s = ns_to_s(link_at(t).effective_latency_ns(est_rate_gbps));
        demand_mult[static_cast<std::size_t>(t)] =
            link_at(t).latency_multiplier(est_rate_gbps);
      }
    } else {
      lat_s = ns_to_s(spec.latency_ns);
    }
    stall_sum += static_cast<double>(tier_demand[static_cast<std::size_t>(t)]) * lat_s;
  }
  const double t_stall = stall_weight * stall_sum / overlap;

  EpochPricing p;
  const double duration = t_base + t_stall + migration_s;
  p.duration_s = duration;

  // Link measurements: PCM-style measured traffic summed over links; the
  // utilization of the busiest link (what an operator would alarm on).
  // Under the queue model the gauges see the bulk bytes too — migration
  // traffic is real link traffic to an operator's counters.
  double traffic = 0.0;
  double util = 0.0;
  for (memsim::TierId t = 0; t < n; ++t) {
    if (!m.tier(t).is_fabric()) continue;
    double bytes = static_cast<double>(tier_bytes[static_cast<std::size_t>(t)]);
    if (queue_mode)
      bytes += static_cast<double>(migration_bytes[static_cast<std::size_t>(t)]);
    const double app_rate_gbps =
        duration > 0 ? bytes_per_sec_to_gbps(bytes / duration) : 0.0;
    traffic += link_at(t).measured_traffic_gbps(app_rate_gbps);
    util = std::max(util, link_at(t).offered_utilization(app_rate_gbps));
  }
  p.link_traffic_gbps = traffic;
  p.link_utilization = util;
  p.link_loi.resize(static_cast<std::size_t>(n), 0.0);
  for (memsim::TierId t = 0; t < n; ++t)
    if (links[static_cast<std::size_t>(t)])
      p.link_loi[static_cast<std::size_t>(t)] =
          links[static_cast<std::size_t>(t)]->background_loi();
  p.link_demand_mult = std::move(demand_mult);
  p.link_demand_inflation = std::move(demand_infl);
  return p;
}

void Engine::close_epoch() {
  const cachesim::HwCounters now = hierarchy_.counters();
  const cachesim::HwCounters d = now.delta_since(epoch_base_);
  const std::uint64_t flops_now = pending_flops_;
  if (d.accesses() == 0 && flops_now == 0 && pending_migration_s_ == 0.0) {
    epoch_demand_accesses_ = 0;
    return;  // nothing happened since the last close
  }

  const auto& m = cfg_.machine;
  const int n = m.num_tiers();
  const bool queue_mode = cfg_.link_model == memsim::LinkModelKind::kQueue;
  using memsim::TrafficClass;

  // Functional inputs: this epoch's per-tier byte/demand-miss deltas. The
  // timing side — everything the links' current state decides — lives in
  // price_epoch, shared with the epoch-profile repricer.
  std::vector<std::uint64_t> tier_bytes(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> tier_demand(static_cast<std::size_t>(n));
  for (memsim::TierId t = 0; t < n; ++t) {
    tier_bytes[static_cast<std::size_t>(t)] = d.dram_bytes(t);
    tier_demand[static_cast<std::size_t>(t)] = d.demand_dram[static_cast<std::size_t>(t)];
  }

  // Migration transfer time charged by the planner since the last close
  // serializes with the epoch's demand traffic (move_pages stalls the
  // touching thread). Zero when no migration runtime is attached, keeping
  // two-tier golden artifacts bit-identical.
  const double t_migrate = pending_migration_s_;
  pending_migration_s_ = 0.0;
  migration_s_total_ += t_migrate;

  EpochPricing pricing =
      price_epoch(m, cfg_.link_model, cfg_.stall_weight, flops_now, tier_bytes,
                  tier_demand, pending_migration_bytes_, t_migrate, links_, queues_);
  const double duration = pricing.duration_s;

  EpochRecord rec;
  rec.start_s = elapsed_s_;
  rec.duration_s = duration;
  rec.phase = current_phase_;
  rec.flops = flops_now;
  rec.migration_s = t_migrate;
  rec.tier_bytes = std::move(tier_bytes);
  rec.tier_demand = std::move(tier_demand);
  rec.l2_lines_in = d.l2_lines_in;
  rec.link_traffic_gbps = pricing.link_traffic_gbps;
  rec.link_utilization = pricing.link_utilization;
  rec.link_loi = std::move(pricing.link_loi);
  rec.link_demand_mult = std::move(pricing.link_demand_mult);
  rec.link_demand_inflation = std::move(pricing.link_demand_inflation);
  rec.migration_bytes = pending_migration_bytes_;
  const memsim::NumaSnapshot snap = memory_.snapshot();
  rec.resident_bytes = snap.resident_bytes;
  // Fold this epoch's per-class traffic into the windowed estimators, then
  // clear the bulk accumulators for the next epoch's charges.
  if (queue_mode) {
    for (memsim::TierId t = 0; t < n; ++t) {
      auto& q = queues_[static_cast<std::size_t>(t)];
      if (!q) continue;
      q->observe(TrafficClass::kDemand, static_cast<double>(d.dram_bytes(t)), duration);
      q->observe(TrafficClass::kBulk,
                 static_cast<double>(pending_migration_bytes_[static_cast<std::size_t>(t)]),
                 duration);
    }
  }
  std::fill(pending_migration_bytes_.begin(), pending_migration_bytes_.end(), 0);
  epochs_.push_back(std::move(rec));

  elapsed_s_ += duration;
  total_flops_ += flops_now;
  peak_rss_ = std::max(peak_rss_, snap.total());
  pending_flops_ = 0;
  epoch_demand_accesses_ = 0;
  epoch_base_ = now;
  // The schedule steps *before* the epoch callback fires, so runtime
  // services (the migration planner) price the upcoming epoch against the
  // link state it will actually run under.
  apply_loi_schedule(epochs_.size());
  if (epoch_cb_) epoch_cb_(*this);
}

bool Engine::ff_eligible() const {
  // Synthesis assumes nothing external perturbs epochs between closes:
  // static links (no schedule, no queue estimators to feed), no epoch
  // callback (which could migrate pages or charge costs), and no migration
  // charges already in flight. Without a callback nothing can charge
  // migrations mid-call, so checking once at stream entry suffices.
  if (cfg_.link_model != memsim::LinkModelKind::kLoi) return false;
  if (epoch_cb_) return false;
  if (!cfg_.loi_schedule.empty()) return false;
  if (pending_migration_s_ != 0.0) return false;
  for (const auto b : pending_migration_bytes_)
    if (b != 0) return false;
  return true;
}

void Engine::ff_synthesize(const cachesim::HwCounters& delta, std::uint64_t n) {
  const EpochRecord& last = epochs_.back();
  hierarchy_.ff_apply(delta, n);
  // Shift the baseline by the same amount so the live partial epoch's
  // eventual delta (counters − epoch_base_) stays exact across the jump.
  epoch_base_.add_scaled(delta, n);
  EpochRecord synth = last;
  epochs_.reserve(epochs_.size() + static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    synth.start_s = elapsed_s_;
    elapsed_s_ += synth.duration_s;
    epochs_.push_back(synth);
  }
  total_flops_ += last.flops * n;
  ff_skipped_epochs_ += n;
}

void Engine::finish() {
  expects(!finished_, "finish called twice");
  expects(current_phase_.empty(), "finish inside an open phase");
  close_epoch();
  hierarchy_.drain();
  // Writeback traffic from the drain is charged to a final epoch.
  close_epoch();
  finished_ = true;
}

}  // namespace memdis::sim
