#include "sim/engine.h"

#include <algorithm>

#include "common/contract.h"
#include "common/units.h"

namespace memdis::sim {

Engine::Engine(const EngineConfig& cfg)
    : cfg_(cfg), memory_(cfg.machine), hierarchy_(cfg.hierarchy, memory_) {
  const auto& topo = cfg_.machine.topology;
  links_.reserve(static_cast<std::size_t>(topo.num_tiers()));
  for (memsim::TierId t = 0; t < topo.num_tiers(); ++t) {
    if (topo.is_fabric(t)) {
      links_.emplace_back(memsim::LinkModel(topo.tier(t)));
    } else {
      links_.emplace_back(std::nullopt);
    }
  }
  set_background_loi(cfg.background_loi);
  for (std::size_t t = 0; t < cfg_.background_loi_per_tier.size() && t < links_.size(); ++t) {
    if (links_[t]) links_[t]->set_background_loi(cfg_.background_loi_per_tier[t]);
  }
  apply_loi_schedule(0);
}

void Engine::apply_loi_schedule(std::uint64_t epoch) {
  if (cfg_.loi_schedule.empty()) return;
  // A schedule entry beyond the topology would otherwise be silently
  // ignored — a run that "handled the burst" because the burst never
  // happened.
  expects(cfg_.loi_schedule.per_tier.size() <= links_.size(),
          "LoI schedule targets a tier beyond the topology");
  for (std::size_t t = 0; t < links_.size(); ++t) {
    const auto* wave = cfg_.loi_schedule.waveform(static_cast<memsim::TierId>(t));
    if (!wave) continue;
    expects(links_[t].has_value(), "LoI schedule targets a tier without a link");
    links_[t]->set_background_loi(wave->value_at(epoch));
  }
}

const memsim::LinkModel& Engine::link() const {
  return link(cfg_.machine.topology.first_fabric());
}

const memsim::LinkModel& Engine::link(memsim::TierId t) const {
  expects(t >= 0 && t < static_cast<int>(links_.size()), "tier id out of range");
  const auto& l = links_[static_cast<std::size_t>(t)];
  expects(l.has_value(), "tier has no fabric link");
  return *l;
}

void Engine::set_background_loi(double loi_percent) {
  for (auto& l : links_)
    if (l) l->set_background_loi(loi_percent);
}

void Engine::set_background_loi(memsim::TierId t, double loi_percent) {
  expects(t >= 0 && t < static_cast<int>(links_.size()), "tier id out of range");
  auto& l = links_[static_cast<std::size_t>(t)];
  expects(l.has_value(), "tier has no fabric link");
  l->set_background_loi(loi_percent);
}

double Engine::background_loi(memsim::TierId t) const { return link(t).background_loi(); }

void Engine::charge_migration_seconds(double seconds) {
  expects(seconds >= 0.0, "migration time cannot be negative");
  pending_migration_s_ += seconds;
}

memsim::VRange Engine::alloc(std::uint64_t bytes, memsim::MemPolicy policy, std::string name) {
  // numactl-style override: default-policy allocations follow the system
  // policy override; explicit bindings keep their policy.
  if (policy.kind == memsim::PlacementKind::kFirstTouch && cfg_.default_policy_override) {
    policy = *cfg_.default_policy_override;
  }
  const memsim::VRange range = memory_.alloc(bytes, std::move(policy));
  allocations_.push_back(AllocationInfo{std::move(name), range, false});
  return range;
}

void Engine::free(const memsim::VRange& range) {
  memory_.free(range);
  for (auto& info : allocations_) {
    if (info.range.base == range.base) info.freed = true;
  }
}

void Engine::load(std::uint64_t addr, std::uint32_t size) {
  expects(size > 0, "load of zero bytes");
  const std::uint64_t line = cfg_.machine.cacheline_bytes;
  const std::uint64_t first = addr / line;
  const std::uint64_t last = (addr + size - 1) / line;
  for (std::uint64_t l = first; l <= last; ++l) {
    const auto res = hierarchy_.access(l * line, /*is_store=*/false);
    on_demand_access(l * line, res.level);
  }
}

void Engine::store(std::uint64_t addr, std::uint32_t size) {
  expects(size > 0, "store of zero bytes");
  const std::uint64_t line = cfg_.machine.cacheline_bytes;
  const std::uint64_t first = addr / line;
  const std::uint64_t last = (addr + size - 1) / line;
  for (std::uint64_t l = first; l <= last; ++l) {
    const auto res = hierarchy_.access(l * line, /*is_store=*/true);
    on_demand_access(l * line, res.level);
  }
}

void Engine::on_demand_access(std::uint64_t addr, cachesim::HitLevel level) {
  // Page-access sampling fires at L1-miss granularity — where PEBS
  // demand-load-miss events fire on the paper's testbed. L1 hits (register
  // and stack-like reuse) carry no bandwidth and are excluded so the Fig. 6
  // curves weigh pages by memory-system traffic, not raw instruction count.
  if (level != cachesim::HitLevel::kL1 &&
      ++page_sample_counter_ >= cfg_.page_sample_period) {
    page_sample_counter_ = 0;
    ++page_hist_[addr / cfg_.machine.page_bytes];
  }
  if (++epoch_demand_accesses_ >= cfg_.epoch_accesses) close_epoch();
}

void Engine::pf_start(std::string tag) {
  expects(current_phase_.empty(), "nested pf_start without pf_stop");
  close_epoch();
  current_phase_ = std::move(tag);
  phase_base_ = hierarchy_.counters();
  phase_flops_base_ = total_flops_ + pending_flops_;
  phase_time_base_ = elapsed_s_;
}

void Engine::pf_stop() {
  expects(!current_phase_.empty(), "pf_stop without pf_start");
  close_epoch();
  PhaseRecord rec;
  rec.tag = current_phase_;
  rec.time_s = elapsed_s_ - phase_time_base_;
  rec.flops = total_flops_ - phase_flops_base_;
  rec.counters = hierarchy_.counters().delta_since(phase_base_);
  phases_.push_back(std::move(rec));
  current_phase_.clear();
}

void Engine::close_epoch() {
  const cachesim::HwCounters now = hierarchy_.counters();
  const cachesim::HwCounters d = now.delta_since(epoch_base_);
  const std::uint64_t flops_now = pending_flops_;
  if (d.accesses() == 0 && flops_now == 0 && pending_migration_s_ == 0.0) {
    epoch_demand_accesses_ = 0;
    return;  // nothing happened since the last close
  }

  const auto& m = cfg_.machine;
  const int n = m.num_tiers();

  // Throughput-bound terms: the epoch is as long as its most-loaded lane —
  // compute, or any single tier's byte stream at that tier's effective
  // bandwidth (fabric tiers are additionally clipped by their link).
  const double t_flop = static_cast<double>(flops_now) / (m.peak_gflops * 1e9);
  double t_base = t_flop;
  for (memsim::TierId t = 0; t < n; ++t) {
    const auto bytes = static_cast<double>(d.dram_bytes(t));
    const auto& spec = m.tier(t);
    const double bw_eff =
        spec.is_fabric()
            ? std::min(link(t).effective_data_bandwidth_gbps(0.0), spec.bandwidth_gbps)
            : spec.bandwidth_gbps;
    t_base = std::max(t_base, bytes / gbps_to_bytes_per_sec(bw_eff));
  }

  // Latency-bound term: only *demand* misses stall the cores; each fabric
  // tier's own offered rate feeds its link queueing model (two-pass fixed
  // point per link).
  const double overlap = m.mlp * static_cast<double>(m.threads);
  double stall_sum = 0.0;
  for (memsim::TierId t = 0; t < n; ++t) {
    const auto& spec = m.tier(t);
    double lat_s;
    if (spec.is_fabric()) {
      const auto bytes = static_cast<double>(d.dram_bytes(t));
      const double est_rate_gbps =
          t_base > 0 ? bytes_per_sec_to_gbps(bytes / t_base) : 0.0;
      lat_s = ns_to_s(link(t).effective_latency_ns(est_rate_gbps));
    } else {
      lat_s = ns_to_s(spec.latency_ns);
    }
    stall_sum += static_cast<double>(d.demand_dram[static_cast<std::size_t>(t)]) * lat_s;
  }
  const double t_stall = cfg_.stall_weight * stall_sum / overlap;

  // Migration transfer time charged by the planner since the last close
  // serializes with the epoch's demand traffic (move_pages stalls the
  // touching thread). Zero when no migration runtime is attached, keeping
  // two-tier golden artifacts bit-identical.
  const double t_migrate = pending_migration_s_;
  pending_migration_s_ = 0.0;
  migration_s_total_ += t_migrate;
  const double duration = t_base + t_stall + t_migrate;

  EpochRecord rec;
  rec.start_s = elapsed_s_;
  rec.duration_s = duration;
  rec.phase = current_phase_;
  rec.flops = flops_now;
  rec.migration_s = t_migrate;
  rec.tier_bytes.resize(static_cast<std::size_t>(n));
  rec.tier_demand.resize(static_cast<std::size_t>(n));
  for (memsim::TierId t = 0; t < n; ++t) {
    rec.tier_bytes[static_cast<std::size_t>(t)] = d.dram_bytes(t);
    rec.tier_demand[static_cast<std::size_t>(t)] =
        d.demand_dram[static_cast<std::size_t>(t)];
  }
  rec.l2_lines_in = d.l2_lines_in;
  // Link measurements: PCM-style measured traffic summed over links; the
  // utilization of the busiest link (what an operator would alarm on).
  double traffic = 0.0;
  double util = 0.0;
  for (memsim::TierId t = 0; t < n; ++t) {
    if (!m.tier(t).is_fabric()) continue;
    const auto bytes = static_cast<double>(d.dram_bytes(t));
    const double app_rate_gbps =
        duration > 0 ? bytes_per_sec_to_gbps(bytes / duration) : 0.0;
    traffic += link(t).measured_traffic_gbps(app_rate_gbps);
    util = std::max(util, link(t).offered_utilization(app_rate_gbps));
  }
  rec.link_traffic_gbps = traffic;
  rec.link_utilization = util;
  rec.link_loi.resize(static_cast<std::size_t>(n), 0.0);
  for (memsim::TierId t = 0; t < n; ++t)
    if (links_[static_cast<std::size_t>(t)])
      rec.link_loi[static_cast<std::size_t>(t)] =
          links_[static_cast<std::size_t>(t)]->background_loi();
  const memsim::NumaSnapshot snap = memory_.snapshot();
  rec.resident_bytes = snap.resident_bytes;
  epochs_.push_back(std::move(rec));

  elapsed_s_ += duration;
  total_flops_ += flops_now;
  peak_rss_ = std::max(peak_rss_, snap.total());
  pending_flops_ = 0;
  epoch_demand_accesses_ = 0;
  epoch_base_ = now;
  // The schedule steps *before* the epoch callback fires, so runtime
  // services (the migration planner) price the upcoming epoch against the
  // link state it will actually run under.
  apply_loi_schedule(epochs_.size());
  if (epoch_cb_) epoch_cb_(*this);
}

void Engine::finish() {
  expects(!finished_, "finish called twice");
  expects(current_phase_.empty(), "finish inside an open phase");
  close_epoch();
  hierarchy_.drain();
  // Writeback traffic from the drain is charged to a final epoch.
  close_epoch();
  finished_ = true;
}

}  // namespace memdis::sim
