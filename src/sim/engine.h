// Engine: the execution-driven simulation core.
//
// Workloads run real numerics against sim::Array<T> buffers; every load and
// store is routed through the cache hierarchy, the page table, and the
// per-tier fabric links. Time advances in *epochs* (a fixed quantum of
// demand accesses, also closed at phase boundaries), each costed with the
// N-tier model:
//
//   t_epoch = max(flops/F_peak, max_t bytes_t/BW_t_eff)
//           + sum_t demand_t·lat_t_eff / (MLP·threads)
//
// For the node tier BW/lat are the tier's raw parameters; for each fabric
// tier they come from that tier's LinkModel under the configured background
// Level-of-Interference. Prefetched lines never appear in the demand-latency
// term — that is what gives hardware prefetching its performance gain
// (Sec. 4.2) and off-node latency its sting when coverage is low (XSBench,
// Sec. 5.1). With a two-tier topology this reduces exactly to the paper's
// bytes_L/bytes_R formulation.
//
// ---- bulk access streams ---------------------------------------------------
// Element-wise load()/store() is the reference instrumentation; the range
// API (load_range/store_range/rmw_range/store_load_range, the strided and
// paired variants) expresses the same access *sequence* declaratively so
// the engine can execute it on a fast path: runs of consecutive accesses to
// one cacheline are resolved with a single L1 probe and O(1) state update,
// and their counter updates accumulate in registers until the batch ends.
// The fast path is exact — counters, epoch boundaries, page samples, cache
// and prefetcher state are bit-identical to the element loop each range
// call documents (an epoch boundary falling inside a run is replayed
// access-by-access). `EngineConfig::bulk_fast_path = false` forces the
// reference decomposition; the determinism suite byte-compares the two.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cachesim/hierarchy.h"
#include "common/contract.h"
#include "memsim/link.h"
#include "memsim/loi_schedule.h"
#include "memsim/machine.h"
#include "memsim/page_table.h"
#include "memsim/queue_model.h"

namespace memdis::sim {

/// Process-wide default for EngineConfig::bulk_fast_path. The determinism
/// tests flip this to run whole scenarios through the element-wise
/// reference decomposition of the range API.
[[nodiscard]] bool bulk_fast_path_default();
void set_bulk_fast_path_default(bool on);

/// Process-wide default for EngineConfig::link_model (kLoi unless
/// overridden). The determinism tests flip this to re-run whole scenarios
/// under the queue model and byte-compare against the closed form.
[[nodiscard]] memsim::LinkModelKind link_model_default();
void set_link_model_default(memsim::LinkModelKind kind);

/// Process-wide default for EngineConfig::fast_forward (off unless
/// overridden — the bit-exact path is the golden gate). The CLI flips this
/// via `--fast-forward on`.
[[nodiscard]] bool fast_forward_default();
void set_fast_forward_default(bool on);

/// One lane of an interleaved multi-stream sweep (Engine::stream_range).
/// Lives at namespace scope so the trace layer can serialize lanes without
/// depending on the Engine definition; Engine::StreamLane aliases it.
struct StreamLane {
  /// kRmw: load then store. kFlops: a compute lane — `base` holds the flop
  /// count accounted per iteration, `stride`/`elem` are unused (may be 0)
  /// and the lane performs no memory access. Flops lanes are what lets a
  /// recorded trace fold a periodic load/store/flops pattern into one
  /// stream_range call without reordering compute relative to accesses.
  enum class Op : std::uint8_t { kLoad, kStore, kRmw, kFlops };
  std::uint64_t base = 0;    ///< address of the lane's element 0 (kFlops: flops/iter)
  std::uint64_t stride = 0;  ///< bytes between consecutive elements
  std::uint32_t elem = 0;    ///< bytes accessed per element
  Op op = Op::kLoad;
};

/// Observer of the engine's public instrumentation stream (the recording
/// half of trace record/replay — see src/trace/). Hooks fire on the public
/// API calls exactly as the workload made them, never on the engine's
/// internal element-wise decompositions, so a recorded trace reproduces the
/// original call sequence, not its expansion.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// `policy` is the policy the caller passed (before any
  /// default_policy_override), `base` the returned range base — replay
  /// asserts the allocator reproduces it.
  virtual void on_alloc(std::uint64_t bytes, const memsim::MemPolicy& policy,
                        const std::string& name, std::uint64_t base) = 0;
  virtual void on_free(std::uint64_t base) = 0;
  virtual void on_access(bool is_store, std::uint64_t addr, std::uint32_t size) = 0;
  virtual void on_flops(std::uint64_t n) = 0;
  /// kind: 0 load_range, 1 store_range, 2 rmw_range, 3 store_load_range.
  virtual void on_range(std::uint8_t kind, std::uint64_t addr, std::uint64_t bytes,
                        std::uint32_t elem) = 0;
  virtual void on_strided(bool is_store, std::uint64_t addr, std::uint64_t count,
                          std::uint64_t stride, std::uint32_t elem) = 0;
  virtual void on_pair(bool is_store, std::uint64_t a, std::uint32_t elem_a,
                       std::uint64_t b, std::uint32_t elem_b, std::uint64_t count) = 0;
  virtual void on_stream(const StreamLane* lanes, std::size_t num_lanes,
                         std::uint64_t count) = 0;
  virtual void on_phase(bool start, const std::string& tag) = 0;
};

struct EngineConfig {
  memsim::MachineConfig machine = memsim::MachineConfig::skylake_testbed();
  cachesim::HierarchyConfig hierarchy{};
  std::uint64_t epoch_accesses = 2'000'000;  ///< demand accesses per epoch
  double background_loi = 0.0;               ///< % of peak link traffic (Sec. 6)
  /// Per-link background LoI, indexed by TierId (entries for local tiers are
  /// ignored). When non-empty, listed tiers override `background_loi`, so
  /// asymmetric studies can load one pool while another idles. Tiers beyond
  /// the vector keep the scalar level.
  std::vector<double> background_loi_per_tier;
  /// Time-varying per-link LoI: scheduled tiers get their waveform
  /// re-evaluated at every closed epoch (overriding the static levels
  /// above); unscheduled tiers keep their static LoI. An empty schedule is
  /// exactly the static model — artifacts stay bit-identical.
  memsim::LoiSchedule loi_schedule;
  double stall_weight = 1.0;                 ///< scaling of the latency term
  /// Period of the per-page sampler feeding the bandwidth–capacity scaling
  /// curves (Fig. 6). Samples fire on L1 misses — the event class PEBS
  /// demand-load sampling observes on the paper's testbed (1 = every miss).
  std::uint64_t page_sample_period = 4;
  /// Overrides the placement policy of allocations that use the default
  /// (first-touch) policy — the `numactl` analogue: explicit bindings win,
  /// everything else follows the overridden system default. Used for the
  /// weighted-interleave experiments (Sec. 2.2, "Low Porting Efforts").
  std::optional<memsim::MemPolicy> default_policy_override;
  /// When false, every range/strided/paired call decomposes into the
  /// element-wise loop it documents (bit-identical, slower) — the reference
  /// path for the fast-path correctness gate.
  bool bulk_fast_path = bulk_fast_path_default();
  /// Which per-link delay model runs. `kLoi` (the default) is the closed
  /// form under configured background LoI only, bit-identical to the
  /// pre-queue engine. `kQueue` partitions each link's traffic into demand
  /// and bulk classes that inflate each other's delay (queue_model.h).
  memsim::LinkModelKind link_model = link_model_default();
  /// Steady-state fast-forward: when a long stream_range call settles into
  /// epochs with identical counter deltas and identical epoch records, the
  /// remaining repetitions are advanced in closed form (counters, epoch
  /// records, LRU clocks) instead of simulating every line. Off by default:
  /// the bit-exact path is the golden gate; fast-forwarded results are
  /// tolerance-gated (≤0.1% on epoch totals — docs/TRACE.md).
  bool fast_forward = fast_forward_default();
};

/// Timing outputs of the per-epoch cost model: everything in an EpochRecord
/// that depends on the link state (background LoI, schedules, queue
/// windows) rather than on the access stream. Computed by price_epoch —
/// the single implementation of the cost model, shared between the
/// engine's close_epoch and the epoch-profile repricer
/// (core/epoch_profile.h), so re-priced artifacts are bit-identical to
/// full simulation by construction.
struct EpochPricing {
  double duration_s = 0.0;          ///< t_base + t_stall + migration_s
  double link_traffic_gbps = 0.0;   ///< PCM-style measured traffic, all links
  double link_utilization = 0.0;    ///< max offered utilization over links
  std::vector<double> link_loi;            ///< background LoI per tier
  std::vector<double> link_demand_mult;    ///< demand latency multiplier per tier
  std::vector<double> link_demand_inflation;  ///< bulk-attributable inflation
};

/// Prices one epoch's functional counter deltas under the given link
/// state: the N-tier cost model of the header comment, including the
/// queue-model cross-class terms when `link_model` is kQueue. `tier_bytes`,
/// `tier_demand`, and `migration_bytes` are indexed by TierId and sized to
/// the topology; `links`/`queues` are the per-tier models in their current
/// state (queues nullopt under kLoi). Pure: reads the link/queue state but
/// never mutates it — callers fold the epoch into the queue windows
/// afterwards (QueueModel::observe) exactly as close_epoch does.
[[nodiscard]] EpochPricing price_epoch(
    const memsim::MachineConfig& machine, memsim::LinkModelKind link_model,
    double stall_weight, std::uint64_t flops, const std::vector<std::uint64_t>& tier_bytes,
    const std::vector<std::uint64_t>& tier_demand,
    const std::vector<std::uint64_t>& migration_bytes, double migration_s,
    const std::vector<std::optional<memsim::LinkModel>>& links,
    const std::vector<std::optional<memsim::QueueModel>>& queues);

/// One closed epoch: the unit of the profiler's per-interval timelines
/// (Fig. 7's cacheline series, per-phase attribution, link traffic).
/// Per-tier series are indexed by TierId and sized to the topology.
struct EpochRecord {
  double start_s = 0.0;
  double duration_s = 0.0;
  std::string phase;
  std::uint64_t flops = 0;
  std::vector<std::uint64_t> tier_bytes;    ///< DRAM bytes served per tier
  std::vector<std::uint64_t> tier_demand;   ///< demand misses per tier
  std::uint64_t l2_lines_in = 0;
  double link_traffic_gbps = 0.0;   ///< PCM-style measured traffic, all links
  double link_utilization = 0.0;    ///< max offered utilization over links
  double migration_s = 0.0;         ///< page-migration transfer time charged
  std::vector<std::uint64_t> resident_bytes;  ///< numa snapshot per tier
  /// Effective background LoI on each tier's link while this epoch ran
  /// (local tiers 0) — the per-epoch record a time-varying schedule leaves
  /// behind, and what `memdis plan` reports per scan.
  std::vector<double> link_loi;
  /// Demand-class latency multiplier on each tier's link this epoch (local
  /// tiers 1.0). Under the queue model this includes the bulk class's
  /// cross-traffic — the per-epoch trace the `ext-queue-contention` golden
  /// asserts on; under the LoI model it is the closed-form multiplier.
  std::vector<double> link_demand_mult;
  /// Demand-latency inflation attributable to bulk traffic, per tier: the
  /// ratio of the demand class's latency multiplier with the bulk class's
  /// cross-traffic to the multiplier without it, at this epoch's actual
  /// demand load (local tiers and bulk-free epochs exactly 1.0; always 1.0
  /// under the `kLoi` model, whose closed form has no bulk class). The
  /// isolation trace the `ext-queue-contention` golden asserts on.
  std::vector<double> link_demand_inflation;
  /// Bulk page-migration bytes charged onto each tier's link this epoch
  /// (Engine::charge_migration_bytes), indexed by TierId. Zero without an
  /// attached migration runtime.
  std::vector<std::uint64_t> migration_bytes;

  /// Bytes served by the node tier this epoch.
  [[nodiscard]] std::uint64_t node_bytes() const {
    return tier_bytes.empty() ? 0 : tier_bytes[memsim::kNodeTier];
  }
  /// Bytes served off the node (all fabric tiers).
  [[nodiscard]] std::uint64_t fabric_bytes() const {
    std::uint64_t sum = 0;
    for (std::size_t t = 1; t < tier_bytes.size(); ++t) sum += tier_bytes[t];
    return sum;
  }
  [[nodiscard]] std::uint64_t resident_total_bytes() const {
    std::uint64_t sum = 0;
    for (const auto b : resident_bytes) sum += b;
    return sum;
  }
  [[nodiscard]] std::uint64_t resident_node_bytes() const {
    return resident_bytes.empty() ? 0 : resident_bytes[memsim::kNodeTier];
  }
  [[nodiscard]] std::uint64_t resident_fabric_bytes() const {
    return resident_total_bytes() - resident_node_bytes();
  }
};

/// Aggregated per-phase results (between pf_start/pf_stop tags).
struct PhaseRecord {
  std::string tag;
  double time_s = 0.0;
  std::uint64_t flops = 0;
  cachesim::HwCounters counters;  ///< deltas for this phase
  /// Half-open span [epoch_begin, epoch_end) of closed-epoch records the
  /// phase covers. time_s is exactly the sum of those durations (as the
  /// running elapsed_s sum computes it), which is what lets the epoch-
  /// profile repricer reconstruct phase times bit-exactly.
  std::size_t epoch_begin = 0;
  std::size_t epoch_end = 0;
};

/// Named allocation-site bookkeeping so case studies can attribute remote
/// traffic to objects (Sec. 7.1: "information obtained from memory
/// allocation sites in our profiler").
struct AllocationInfo {
  std::string name;
  memsim::VRange range;
  bool freed = false;
};

class Engine {
 public:
  explicit Engine(const EngineConfig& cfg = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // ---- memory management -------------------------------------------------
  [[nodiscard]] memsim::VRange alloc(std::uint64_t bytes,
                                     memsim::MemPolicy policy = memsim::MemPolicy::first_touch(),
                                     std::string name = {});
  void free(const memsim::VRange& range);

  // ---- instrumented access & compute --------------------------------------
  /// Demand load of `size` bytes at simulated address `addr`.
  void load(std::uint64_t addr, std::uint32_t size) {
    expects(size > 0, "load of zero bytes");
    if (trace_sink_) trace_sink_->on_access(false, addr, size);
    access_span(addr, size, false);
  }
  /// Demand store of `size` bytes.
  void store(std::uint64_t addr, std::uint32_t size) {
    expects(size > 0, "store of zero bytes");
    if (trace_sink_) trace_sink_->on_access(true, addr, size);
    access_span(addr, size, true);
  }
  /// Accounts `n` floating-point operations.
  void flops(std::uint64_t n) {
    if (trace_sink_) trace_sink_->on_flops(n);
    pending_flops_ += n;
  }

  // ---- bulk access streams -------------------------------------------------
  // Each call is defined by (and bit-identical with) the element-wise loop
  // in its comment; `bytes` must be a whole number of `elem_bytes` elements.

  /// for (a = addr; a < addr+bytes; a += elem_bytes) load(a, elem_bytes);
  void load_range(std::uint64_t addr, std::uint64_t bytes, std::uint32_t elem_bytes);
  /// for (...) store(a, elem_bytes);
  void store_range(std::uint64_t addr, std::uint64_t bytes, std::uint32_t elem_bytes);
  /// for (...) { load(a, elem_bytes); store(a, elem_bytes); }  — read-modify-
  /// write sweeps (e.g. LBench's update pass, BFS's prefix sum).
  void rmw_range(std::uint64_t addr, std::uint64_t bytes, std::uint32_t elem_bytes);
  /// for (...) { store(a, elem_bytes); load(a, elem_bytes); }  — regenerate-
  /// then-read passes (e.g. HPL's pdtest matrix regeneration).
  void store_load_range(std::uint64_t addr, std::uint64_t bytes, std::uint32_t elem_bytes);

  /// for (k = 0; k < count; ++k) load(addr + k*stride_bytes, elem_bytes);
  /// The strided variant for column sweeps over row-major data.
  void load_strided(std::uint64_t addr, std::uint64_t count, std::uint64_t stride_bytes,
                    std::uint32_t elem_bytes);
  /// for (k...) store(addr + k*stride_bytes, elem_bytes);
  void store_strided(std::uint64_t addr, std::uint64_t count, std::uint64_t stride_bytes,
                     std::uint32_t elem_bytes);

  /// for (k = 0; k < count; ++k) { load(a + k*elem_a, elem_a);
  ///                               load(b + k*elem_b, elem_b); }
  /// Two interleaved sequential streams advanced in lockstep — the
  /// index/value sweep idiom of sparse codes (SuperLU's rowidx/val columns,
  /// nekRS's gather+field loads).
  void load_pair_range(std::uint64_t a, std::uint32_t elem_a, std::uint64_t b,
                       std::uint32_t elem_b, std::uint64_t count);
  /// for (k...) { store(a + k*elem_a, elem_a); store(b + k*elem_b, elem_b); }
  void store_pair_range(std::uint64_t a, std::uint32_t elem_a, std::uint64_t b,
                        std::uint32_t elem_b, std::uint64_t count);

  /// One lane of an interleaved multi-stream sweep (stream_range); the
  /// definition lives at namespace scope so the trace layer can use it.
  using StreamLane = ::memdis::sim::StreamLane;

  /// The general interleaved sweep — fused multi-vector loops (PCG axpy
  /// passes, stencil updates) where several arrays advance in lockstep:
  ///
  ///   for (k = 0; k < count; ++k)
  ///     for (lane : lanes)
  ///       kLoad:  load(lane.base + k*lane.stride, lane.elem)
  ///       kStore: store(...)
  ///       kRmw:   load(...); store(...)
  ///       kFlops: flops(lane.base)
  ///
  /// Lanes may target the same array (e.g. a trailing re-store). The fast
  /// path batches whole iterations while every lane's current cacheline is
  /// L1-resident, falling back to the exact element-wise emission around
  /// line transitions, epoch boundaries, and misses.
  void stream_range(const StreamLane* lanes, std::size_t num_lanes, std::uint64_t count);

  // ---- phase tagging (the profiler API pf_start/pf_stop of Sec. 3.1) -----
  void pf_start(std::string tag);
  void pf_stop();

  /// Closes the final epoch and drains dirty cache lines. Must be called
  /// once at the end of a run before reading results.
  void finish();

  // ---- results -------------------------------------------------------------
  [[nodiscard]] double elapsed_seconds() const { return elapsed_s_; }
  [[nodiscard]] std::uint64_t total_flops() const { return total_flops_; }
  [[nodiscard]] const std::vector<EpochRecord>& epochs() const { return epochs_; }
  [[nodiscard]] const std::vector<PhaseRecord>& phases() const { return phases_; }
  [[nodiscard]] const cachesim::HwCounters& counters() const { return hierarchy_.counters(); }
  [[nodiscard]] const cachesim::PebsSampler& pebs() const { return hierarchy_.pebs(); }
  /// Sampled accesses-per-page histogram (drives the Fig. 6 curves).
  [[nodiscard]] const std::unordered_map<std::uint64_t, std::uint64_t>&
  page_access_histogram() const {
    return page_hist_;
  }
  [[nodiscard]] const std::vector<AllocationInfo>& allocations() const { return allocations_; }
  [[nodiscard]] memsim::TieredMemory& memory() { return memory_; }
  [[nodiscard]] const memsim::TieredMemory& memory() const { return memory_; }
  /// The primary pool's link model (first fabric tier).
  [[nodiscard]] const memsim::LinkModel& link() const;
  /// Link model of an arbitrary fabric tier; contract violation for local
  /// tiers (they have no link).
  [[nodiscard]] const memsim::LinkModel& link(memsim::TierId t) const;
  [[nodiscard]] const EngineConfig& config() const { return cfg_; }
  [[nodiscard]] cachesim::CacheHierarchy& hierarchy() { return hierarchy_; }

  /// Peak resident set across the run (Level 1 capacity usage; the paper's
  /// NMO_TRACK_RSS mode).
  [[nodiscard]] std::uint64_t peak_rss_bytes() const { return peak_rss_; }

  void set_prefetch_enabled(bool on) { hierarchy_.set_prefetch_enabled(on); }
  /// Applies the background LoI to every fabric link in the topology.
  void set_background_loi(double loi_percent);
  /// Sets the background LoI of one fabric tier's link; contract violation
  /// for local tiers. The lever behind asymmetric interference studies.
  void set_background_loi(memsim::TierId t, double loi_percent);
  /// Current background LoI on tier `t`'s link; contract violation for
  /// local tiers.
  [[nodiscard]] double background_loi(memsim::TierId t) const;

  /// Index of the epoch currently accumulating (== epochs().size()): the
  /// argument the LoI schedule is evaluated at, exposed so runtime services
  /// (the migration planner's burst deferral) can look ahead on the same
  /// clock.
  [[nodiscard]] std::uint64_t epoch_index() const { return epochs_.size(); }

  /// Charges page-migration transfer time to the running timeline. The cost
  /// is added to the *next* closed epoch's duration (migrations are issued
  /// from the epoch callback, after the current epoch has been costed) —
  /// the "per-epoch budget accounting" the migration planner spends against.
  void charge_migration_seconds(double seconds);
  /// Total migration transfer time charged so far.
  [[nodiscard]] double migration_seconds() const { return migration_s_total_; }

  /// Charges `bytes` of bulk page-migration traffic onto fabric tier
  /// `seg`'s link. The bytes land in the *next* closed epoch's record and —
  /// under the queue model — feed that link's bulk traffic class, which is
  /// what lets a migration burst inflate demand-miss latency. Contract
  /// violation for local tiers. Under the LoI model the bytes are recorded
  /// but carry no cost (the closed form has no bulk class).
  void charge_migration_bytes(memsim::TierId seg, std::uint64_t bytes);

  /// The queue of fabric tier `t`'s link; contract violation for local
  /// tiers or when the engine runs the `kLoi` model (no queues exist).
  [[nodiscard]] const memsim::QueueModel& queue(memsim::TierId t) const;

  /// Effective LoI traffic class `cls` experiences on tier `t`'s link right
  /// now: the configured background LoI plus the *other* class's windowed
  /// traffic estimate as % of capacity. Under the `kLoi` model this is just
  /// the background LoI — callers (the migration planner) can price against
  /// it unconditionally. Contract violation for local tiers.
  [[nodiscard]] double effective_loi(memsim::TierId t, memsim::TrafficClass cls) const;

  /// Installs a hook invoked after every closed epoch — the attachment
  /// point for runtime services such as the hot-page migration daemon
  /// (core::MigrationRuntime). The callback may inspect epochs() and the
  /// page histogram and call memory().migrate().
  void set_epoch_callback(std::function<void(Engine&)> cb) { epoch_cb_ = std::move(cb); }

  /// Attaches (or with nullptr detaches) the trace recording sink. The sink
  /// observes public API calls only — never the engine's internal
  /// element-wise decompositions — and adds one predictable branch per call
  /// when detached.
  void set_trace_sink(TraceSink* sink) { trace_sink_ = sink; }

  /// Epochs synthesized in closed form by the steady-state fast-forward
  /// pass (0 unless cfg.fast_forward fired; the tolerance tests assert it
  /// actually engaged).
  [[nodiscard]] std::uint64_t fast_forwarded_epochs() const { return ff_skipped_epochs_; }

 private:
  /// Per-batch counter accumulator for L1-hit runs; flushed into the
  /// hierarchy's HwCounters before any epoch can close and at batch end.
  struct BulkAcc {
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
  };
  enum class RangeKind : std::uint8_t { kLoad, kStore, kRmw, kStoreLoad };

  /// One demand access to a line-aligned address — the element-wise hot
  /// path (also the exact replay primitive for batched runs).
  void access_one(std::uint64_t line_addr, bool is_store) {
    const auto res = hierarchy_.access(line_addr, is_store);
    on_demand_access(line_addr, res.level);
  }
  /// The line loop behind load()/store(), shared with the engine's internal
  /// range decompositions (which must not re-fire the trace sink).
  void access_span(std::uint64_t addr, std::uint32_t size, bool is_store) {
    const std::uint64_t first = addr & ~line_mask_;
    const std::uint64_t last = (addr + size - 1) & ~line_mask_;
    for (std::uint64_t l = first; l <= last; l += line_bytes_) access_one(l, is_store);
  }
  void on_demand_access(std::uint64_t addr, cachesim::HitLevel level) {
    // Page-access sampling fires at L1-miss granularity — where PEBS
    // demand-load-miss events fire on the paper's testbed. L1 hits
    // (register and stack-like reuse) carry no bandwidth and are excluded
    // so the Fig. 6 curves weigh pages by memory-system traffic, not raw
    // instruction count.
    if (level != cachesim::HitLevel::kL1 &&
        ++page_sample_counter_ >= cfg_.page_sample_period) {
      page_sample_counter_ = 0;
      bump_page_hist(addr >> page_shift_);
    }
    if (++epoch_demand_accesses_ >= cfg_.epoch_accesses) close_epoch();
  }

  /// Increments the page histogram through a one-entry memo: streaming
  /// samples hit the same page ~16 times in a row, and unordered_map nodes
  /// are pointer-stable, so the repeated hash lookups collapse to one
  /// pointer bump. Same final map either way.
  void bump_page_hist(std::uint64_t page) {
    if (page != hist_memo_page_ || hist_memo_count_ == nullptr) {
      hist_memo_page_ = page;
      hist_memo_count_ = &page_hist_[page];
    }
    ++*hist_memo_count_;
  }

  void range_access(std::uint64_t addr, std::uint64_t bytes, std::uint32_t elem,
                    RangeKind kind);
  void strided_access(std::uint64_t addr, std::uint64_t count, std::uint64_t stride,
                      std::uint32_t elem, bool is_store);
  void pair_range_access(std::uint64_t a, std::uint32_t elem_a, std::uint64_t b,
                         std::uint32_t elem_b, std::uint64_t count, bool is_store);
  /// Reference decomposition of a range call (also the bulk_fast_path=false
  /// path): the element-wise loop the public API documents.
  void range_element_loop(std::uint64_t addr, std::uint64_t bytes, std::uint32_t elem,
                          RangeKind kind);
  /// Batches a run of loads+stores consecutive accesses to one line.
  /// Returns false when the epoch boundary falls inside the run — the
  /// caller must flush `acc` and replay the run access-by-access.
  bool line_run_fast(std::uint64_t line_addr, std::uint64_t loads, std::uint64_t stores,
                     bool first_is_store, BulkAcc& acc);
  void flush_bulk(BulkAcc& acc) {
    if (acc.loads != 0 || acc.stores != 0) {
      hierarchy_.credit_l1_run(acc.loads, acc.stores);
      acc.loads = 0;
      acc.stores = 0;
    }
  }

  void close_epoch();
  /// Re-evaluates the LoI schedule for epoch `epoch` onto the links.
  void apply_loi_schedule(std::uint64_t epoch);

  /// True when the engine state admits closed-form epoch synthesis: static
  /// links, no epoch callback, no migration charges in flight.
  [[nodiscard]] bool ff_eligible() const;
  /// Appends `n` copies of the last epoch record (advancing start times),
  /// folds `n * delta` into the hardware counters and LRU clocks, and
  /// shifts the epoch baseline so the live partial epoch stays exact.
  void ff_synthesize(const cachesim::HwCounters& delta, std::uint64_t n);

  EngineConfig cfg_;
  memsim::TieredMemory memory_;
  /// Per-tier link models, indexed by TierId; nullopt for local tiers.
  std::vector<std::optional<memsim::LinkModel>> links_;
  /// Per-tier link queues (kQueue model only), indexed by TierId; nullopt
  /// for local tiers and for every tier under the kLoi model.
  std::vector<std::optional<memsim::QueueModel>> queues_;
  /// Bulk migration bytes charged per fabric tier since the last closed
  /// epoch (charge_migration_bytes), indexed by TierId.
  std::vector<std::uint64_t> pending_migration_bytes_;
  cachesim::CacheHierarchy hierarchy_;

  // precomputed address math (cacheline/page sizes are powers of two)
  std::uint64_t line_bytes_ = 64;
  std::uint64_t line_mask_ = 63;   ///< line_bytes - 1
  std::uint32_t page_shift_ = 12;  ///< log2(page_bytes)

  // epoch state
  cachesim::HwCounters epoch_base_;
  std::uint64_t epoch_demand_accesses_ = 0;
  std::uint64_t pending_flops_ = 0;

  // page-access sampling
  std::uint64_t page_sample_counter_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> page_hist_;
  std::uint64_t hist_memo_page_ = ~0ULL;
  std::uint64_t* hist_memo_count_ = nullptr;

  // phase state
  std::string current_phase_;
  cachesim::HwCounters phase_base_;
  std::uint64_t phase_flops_base_ = 0;
  double phase_time_base_ = 0.0;
  std::size_t phase_epoch_base_ = 0;  ///< epochs_.size() at pf_start

  // totals
  double elapsed_s_ = 0.0;
  std::uint64_t total_flops_ = 0;
  std::uint64_t peak_rss_ = 0;
  double pending_migration_s_ = 0.0;  ///< charged into the next closed epoch
  double migration_s_total_ = 0.0;
  bool finished_ = false;

  TraceSink* trace_sink_ = nullptr;
  std::uint64_t ff_skipped_epochs_ = 0;

  std::vector<EpochRecord> epochs_;
  std::vector<PhaseRecord> phases_;
  std::vector<AllocationInfo> allocations_;
  /// Base address → allocations_ index (bases are unique: the underlying
  /// virtual allocator never reuses addresses), so free() is O(1) instead
  /// of a scan over every allocation ever made.
  std::unordered_map<std::uint64_t, std::size_t> alloc_index_;
  std::function<void(Engine&)> epoch_cb_;
};

}  // namespace memdis::sim
