// Engine: the execution-driven simulation core.
//
// Workloads run real numerics against sim::Array<T> buffers; every load and
// store is routed through the cache hierarchy, the page table, and the
// per-tier fabric links. Time advances in *epochs* (a fixed quantum of
// demand accesses, also closed at phase boundaries), each costed with the
// N-tier model:
//
//   t_epoch = max(flops/F_peak, max_t bytes_t/BW_t_eff)
//           + sum_t demand_t·lat_t_eff / (MLP·threads)
//
// For the node tier BW/lat are the tier's raw parameters; for each fabric
// tier they come from that tier's LinkModel under the configured background
// Level-of-Interference. Prefetched lines never appear in the demand-latency
// term — that is what gives hardware prefetching its performance gain
// (Sec. 4.2) and off-node latency its sting when coverage is low (XSBench,
// Sec. 5.1). With a two-tier topology this reduces exactly to the paper's
// bytes_L/bytes_R formulation.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cachesim/hierarchy.h"
#include "memsim/link.h"
#include "memsim/loi_schedule.h"
#include "memsim/machine.h"
#include "memsim/page_table.h"

namespace memdis::sim {

struct EngineConfig {
  memsim::MachineConfig machine = memsim::MachineConfig::skylake_testbed();
  cachesim::HierarchyConfig hierarchy{};
  std::uint64_t epoch_accesses = 2'000'000;  ///< demand accesses per epoch
  double background_loi = 0.0;               ///< % of peak link traffic (Sec. 6)
  /// Per-link background LoI, indexed by TierId (entries for local tiers are
  /// ignored). When non-empty, listed tiers override `background_loi`, so
  /// asymmetric studies can load one pool while another idles. Tiers beyond
  /// the vector keep the scalar level.
  std::vector<double> background_loi_per_tier;
  /// Time-varying per-link LoI: scheduled tiers get their waveform
  /// re-evaluated at every closed epoch (overriding the static levels
  /// above); unscheduled tiers keep their static LoI. An empty schedule is
  /// exactly the static model — artifacts stay bit-identical.
  memsim::LoiSchedule loi_schedule;
  double stall_weight = 1.0;                 ///< scaling of the latency term
  /// Period of the per-page sampler feeding the bandwidth–capacity scaling
  /// curves (Fig. 6). Samples fire on L1 misses — the event class PEBS
  /// demand-load sampling observes on the paper's testbed (1 = every miss).
  std::uint64_t page_sample_period = 4;
  /// Overrides the placement policy of allocations that use the default
  /// (first-touch) policy — the `numactl` analogue: explicit bindings win,
  /// everything else follows the overridden system default. Used for the
  /// weighted-interleave experiments (Sec. 2.2, "Low Porting Efforts").
  std::optional<memsim::MemPolicy> default_policy_override;
};

/// One closed epoch: the unit of the profiler's per-interval timelines
/// (Fig. 7's cacheline series, per-phase attribution, link traffic).
/// Per-tier series are indexed by TierId and sized to the topology.
struct EpochRecord {
  double start_s = 0.0;
  double duration_s = 0.0;
  std::string phase;
  std::uint64_t flops = 0;
  std::vector<std::uint64_t> tier_bytes;    ///< DRAM bytes served per tier
  std::vector<std::uint64_t> tier_demand;   ///< demand misses per tier
  std::uint64_t l2_lines_in = 0;
  double link_traffic_gbps = 0.0;   ///< PCM-style measured traffic, all links
  double link_utilization = 0.0;    ///< max offered utilization over links
  double migration_s = 0.0;         ///< page-migration transfer time charged
  std::vector<std::uint64_t> resident_bytes;  ///< numa snapshot per tier
  /// Effective background LoI on each tier's link while this epoch ran
  /// (local tiers 0) — the per-epoch record a time-varying schedule leaves
  /// behind, and what `memdis plan` reports per scan.
  std::vector<double> link_loi;

  /// Bytes served by the node tier this epoch.
  [[nodiscard]] std::uint64_t node_bytes() const {
    return tier_bytes.empty() ? 0 : tier_bytes[memsim::kNodeTier];
  }
  /// Bytes served off the node (all fabric tiers).
  [[nodiscard]] std::uint64_t fabric_bytes() const {
    std::uint64_t sum = 0;
    for (std::size_t t = 1; t < tier_bytes.size(); ++t) sum += tier_bytes[t];
    return sum;
  }
  [[nodiscard]] std::uint64_t resident_total_bytes() const {
    std::uint64_t sum = 0;
    for (const auto b : resident_bytes) sum += b;
    return sum;
  }
  [[nodiscard]] std::uint64_t resident_node_bytes() const {
    return resident_bytes.empty() ? 0 : resident_bytes[memsim::kNodeTier];
  }
  [[nodiscard]] std::uint64_t resident_fabric_bytes() const {
    return resident_total_bytes() - resident_node_bytes();
  }
};

/// Aggregated per-phase results (between pf_start/pf_stop tags).
struct PhaseRecord {
  std::string tag;
  double time_s = 0.0;
  std::uint64_t flops = 0;
  cachesim::HwCounters counters;  ///< deltas for this phase
};

/// Named allocation-site bookkeeping so case studies can attribute remote
/// traffic to objects (Sec. 7.1: "information obtained from memory
/// allocation sites in our profiler").
struct AllocationInfo {
  std::string name;
  memsim::VRange range;
  bool freed = false;
};

class Engine {
 public:
  explicit Engine(const EngineConfig& cfg = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // ---- memory management -------------------------------------------------
  [[nodiscard]] memsim::VRange alloc(std::uint64_t bytes,
                                     memsim::MemPolicy policy = memsim::MemPolicy::first_touch(),
                                     std::string name = {});
  void free(const memsim::VRange& range);

  // ---- instrumented access & compute --------------------------------------
  /// Demand load of `size` bytes at simulated address `addr`.
  void load(std::uint64_t addr, std::uint32_t size);
  /// Demand store of `size` bytes.
  void store(std::uint64_t addr, std::uint32_t size);
  /// Accounts `n` floating-point operations.
  void flops(std::uint64_t n) { pending_flops_ += n; }

  // ---- phase tagging (the profiler API pf_start/pf_stop of Sec. 3.1) -----
  void pf_start(std::string tag);
  void pf_stop();

  /// Closes the final epoch and drains dirty cache lines. Must be called
  /// once at the end of a run before reading results.
  void finish();

  // ---- results -------------------------------------------------------------
  [[nodiscard]] double elapsed_seconds() const { return elapsed_s_; }
  [[nodiscard]] std::uint64_t total_flops() const { return total_flops_; }
  [[nodiscard]] const std::vector<EpochRecord>& epochs() const { return epochs_; }
  [[nodiscard]] const std::vector<PhaseRecord>& phases() const { return phases_; }
  [[nodiscard]] const cachesim::HwCounters& counters() const { return hierarchy_.counters(); }
  [[nodiscard]] const cachesim::PebsSampler& pebs() const { return hierarchy_.pebs(); }
  /// Sampled accesses-per-page histogram (drives the Fig. 6 curves).
  [[nodiscard]] const std::unordered_map<std::uint64_t, std::uint64_t>&
  page_access_histogram() const {
    return page_hist_;
  }
  [[nodiscard]] const std::vector<AllocationInfo>& allocations() const { return allocations_; }
  [[nodiscard]] memsim::TieredMemory& memory() { return memory_; }
  [[nodiscard]] const memsim::TieredMemory& memory() const { return memory_; }
  /// The primary pool's link model (first fabric tier).
  [[nodiscard]] const memsim::LinkModel& link() const;
  /// Link model of an arbitrary fabric tier; contract violation for local
  /// tiers (they have no link).
  [[nodiscard]] const memsim::LinkModel& link(memsim::TierId t) const;
  [[nodiscard]] const EngineConfig& config() const { return cfg_; }
  [[nodiscard]] cachesim::CacheHierarchy& hierarchy() { return hierarchy_; }

  /// Peak resident set across the run (Level 1 capacity usage; the paper's
  /// NMO_TRACK_RSS mode).
  [[nodiscard]] std::uint64_t peak_rss_bytes() const { return peak_rss_; }

  void set_prefetch_enabled(bool on) { hierarchy_.set_prefetch_enabled(on); }
  /// Applies the background LoI to every fabric link in the topology.
  void set_background_loi(double loi_percent);
  /// Sets the background LoI of one fabric tier's link; contract violation
  /// for local tiers. The lever behind asymmetric interference studies.
  void set_background_loi(memsim::TierId t, double loi_percent);
  /// Current background LoI on tier `t`'s link; contract violation for
  /// local tiers.
  [[nodiscard]] double background_loi(memsim::TierId t) const;

  /// Index of the epoch currently accumulating (== epochs().size()): the
  /// argument the LoI schedule is evaluated at, exposed so runtime services
  /// (the migration planner's burst deferral) can look ahead on the same
  /// clock.
  [[nodiscard]] std::uint64_t epoch_index() const { return epochs_.size(); }

  /// Charges page-migration transfer time to the running timeline. The cost
  /// is added to the *next* closed epoch's duration (migrations are issued
  /// from the epoch callback, after the current epoch has been costed) —
  /// the "per-epoch budget accounting" the migration planner spends against.
  void charge_migration_seconds(double seconds);
  /// Total migration transfer time charged so far.
  [[nodiscard]] double migration_seconds() const { return migration_s_total_; }

  /// Installs a hook invoked after every closed epoch — the attachment
  /// point for runtime services such as the hot-page migration daemon
  /// (core::MigrationRuntime). The callback may inspect epochs() and the
  /// page histogram and call memory().migrate().
  void set_epoch_callback(std::function<void(Engine&)> cb) { epoch_cb_ = std::move(cb); }

 private:
  void on_demand_access(std::uint64_t addr, cachesim::HitLevel level);
  void close_epoch();
  /// Re-evaluates the LoI schedule for epoch `epoch` onto the links.
  void apply_loi_schedule(std::uint64_t epoch);

  EngineConfig cfg_;
  memsim::TieredMemory memory_;
  /// Per-tier link models, indexed by TierId; nullopt for local tiers.
  std::vector<std::optional<memsim::LinkModel>> links_;
  cachesim::CacheHierarchy hierarchy_;

  // epoch state
  cachesim::HwCounters epoch_base_;
  std::uint64_t epoch_demand_accesses_ = 0;
  std::uint64_t pending_flops_ = 0;

  // page-access sampling
  std::uint64_t page_sample_counter_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> page_hist_;

  // phase state
  std::string current_phase_;
  cachesim::HwCounters phase_base_;
  std::uint64_t phase_flops_base_ = 0;
  double phase_time_base_ = 0.0;

  // totals
  double elapsed_s_ = 0.0;
  std::uint64_t total_flops_ = 0;
  std::uint64_t peak_rss_ = 0;
  double pending_migration_s_ = 0.0;  ///< charged into the next closed epoch
  double migration_s_total_ = 0.0;
  bool finished_ = false;

  std::vector<EpochRecord> epochs_;
  std::vector<PhaseRecord> phases_;
  std::vector<AllocationInfo> allocations_;
  std::function<void(Engine&)> epoch_cb_;
};

}  // namespace memdis::sim
