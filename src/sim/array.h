// sim::Array<T> — an instrumented, simulator-visible array.
//
// Owns both a real host buffer (so workloads compute genuine numerics) and
// a simulated virtual range in the engine's tiered memory. Every element
// access is reported to the engine, which drives caches, first-touch page
// placement, and the time model. RAII: the simulated range is freed on
// destruction unless `leak()` was called (used by the BFS case study, whose
// baseline deliberately leaves a temporary object unfreed — Sec. 7.1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/contract.h"
#include "sim/engine.h"

namespace memdis::sim {

template <typename T>
class Array {
 public:
  static_assert(std::is_trivially_copyable_v<T>, "sim::Array requires trivially copyable T");

  Array(Engine& eng, std::size_t n,
        memsim::MemPolicy policy = memsim::MemPolicy::first_touch(), std::string name = {})
      : eng_(&eng), data_(n) {
    expects(n > 0, "sim::Array of zero elements");
    range_ = eng.alloc(static_cast<std::uint64_t>(n) * sizeof(T), policy, std::move(name));
  }

  Array(const Array&) = delete;
  Array& operator=(const Array&) = delete;

  Array(Array&& other) noexcept
      : eng_(other.eng_),
        range_(other.range_),
        data_(std::move(other.data_)),
        released_(std::exchange(other.released_, true)) {}

  Array& operator=(Array&& other) noexcept {
    if (this != &other) {
      release();
      eng_ = other.eng_;
      range_ = other.range_;
      data_ = std::move(other.data_);
      released_ = std::exchange(other.released_, true);
    }
    return *this;
  }

  ~Array() { release(); }

  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// Simulated address of element `i`.
  [[nodiscard]] std::uint64_t addr_of(std::size_t i) const {
    return range_.base + i * sizeof(T);
  }

  /// Instrumented load.
  [[nodiscard]] T ld(std::size_t i) const {
    eng_->load(addr_of(i), sizeof(T));
    return data_[i];
  }

  /// Instrumented store.
  void st(std::size_t i, const T& v) {
    eng_->store(addr_of(i), sizeof(T));
    data_[i] = v;
  }

  /// Instrumented read-modify-write convenience (one load + one store).
  template <typename F>
  void rmw(std::size_t i, F&& f) {
    eng_->load(addr_of(i), sizeof(T));
    data_[i] = f(data_[i]);
    eng_->store(addr_of(i), sizeof(T));
  }

  // ---- bulk instrumentation ------------------------------------------------
  // Range counterparts of ld/st/rmw over elements [i, i+count): each is
  // bit-identical to the element-wise loop but runs on the engine's batched
  // fast path. They drive *instrumentation only* — host data is read or
  // written separately through raw()/raw_mutable(), exactly like the
  // eng.load(addr_of(i), ...) idiom in workload inner loops.

  /// ≡ for (k = i; k < i+count; ++k) eng.load(addr_of(k), sizeof(T));
  void ld_range(std::size_t i, std::size_t count) const {
    eng_->load_range(addr_of(i), static_cast<std::uint64_t>(count) * sizeof(T), sizeof(T));
  }
  /// ≡ for (k...) eng.store(addr_of(k), sizeof(T));
  void st_range(std::size_t i, std::size_t count) {
    eng_->store_range(addr_of(i), static_cast<std::uint64_t>(count) * sizeof(T), sizeof(T));
  }
  /// ≡ for (k...) { eng.load(addr_of(k), ...); eng.store(addr_of(k), ...); }
  void rmw_range(std::size_t i, std::size_t count) {
    eng_->rmw_range(addr_of(i), static_cast<std::uint64_t>(count) * sizeof(T), sizeof(T));
  }

  /// Host fill + store instrumentation for elements [i, i+count) — the
  /// initialization-stream idiom (`for v: a.st(v, value)`) in one call.
  void fill_range(std::size_t i, std::size_t count, const T& value) {
    std::fill(data_.begin() + static_cast<std::ptrdiff_t>(i),
              data_.begin() + static_cast<std::ptrdiff_t>(i + count), value);
    st_range(i, count);
  }

  /// Proxy reference so workload code can read naturally: `x = A[i]; A[i] = y;`.
  class Ref {
   public:
    Ref(Array& arr, std::size_t i) : arr_(&arr), i_(i) {}
    operator T() const { return arr_->ld(i_); }  // NOLINT(google-explicit-constructor)
    Ref& operator=(const T& v) {
      arr_->st(i_, v);
      return *this;
    }
    Ref& operator=(const Ref& other) { return *this = static_cast<T>(other); }
    Ref& operator+=(const T& v) { return *this = static_cast<T>(*this) + v; }
    Ref& operator-=(const T& v) { return *this = static_cast<T>(*this) - v; }
    Ref& operator*=(const T& v) { return *this = static_cast<T>(*this) * v; }

   private:
    Array* arr_;
    std::size_t i_;
  };

  [[nodiscard]] Ref operator[](std::size_t i) { return Ref(*this, i); }
  [[nodiscard]] T operator[](std::size_t i) const { return ld(i); }

  /// Uninstrumented view for verification after the run — never use this
  /// inside a profiled region.
  [[nodiscard]] std::span<const T> raw() const { return data_; }
  [[nodiscard]] std::span<T> raw_mutable() { return data_; }

  /// Frees the simulated range now (models free()); host data stays
  /// readable for verification.
  void release() {
    if (!released_) {
      eng_->free(range_);
      released_ = true;
    }
  }

  /// Intentionally leaks the simulated allocation (the BFS baseline bug).
  void leak() { released_ = true; }

  [[nodiscard]] const memsim::VRange& range() const { return range_; }

 private:
  Engine* eng_;
  memsim::VRange range_{};
  std::vector<T> data_;
  bool released_ = false;
};

}  // namespace memdis::sim
