// BFS: Ligra-style direction-optimizing breadth-first search on a
// symmetrized rMAT graph (paper: N=2^24, M=2^28.24, Table 2).
//
// Memory behaviour: large graph structures of which only adjacency data is
// hot (strongly skewed scaling curve, Fig. 6b, shifting further left as the
// graph grows); random parent/bitmap probes defeat the prefetcher (low
// accuracy/coverage, Fig. 8).
//
// The three variants implement the Sec. 7.1 case study:
//  * kBaseline      — generation temporaries allocated first and leaked
//                     (the paper's allocator performance bug), Parents
//                     allocated last → lands on the pool tier.
//  * kParentsFirst  — Parents allocated & initialized before everything
//                     else (first-touch pins it locally): 99% → 80% remote.
//  * kOptimized     — additionally frees the initialization temporaries,
//                     reserving local capacity for dynamic frontier
//                     allocations (the "1-line change"): 80% → 50% remote.
//
// Phases: p1 = graph generation + CSR build, p2 = BFS traversals.
#pragma once

#include "workloads/workload.h"

namespace memdis::workloads {

enum class BfsVariant { kBaseline, kParentsFirst, kOptimized };

struct BfsParams {
  std::size_t log2_vertices = 16;  ///< N = 2^log2_vertices
  std::size_t edge_factor = 8;     ///< undirected edges per vertex
  std::size_t num_roots = 1;       ///< BFS traversals per run
  BfsVariant variant = BfsVariant::kBaseline;
  std::uint64_t seed = 42;

  [[nodiscard]] std::size_t vertices() const { return std::size_t{1} << log2_vertices; }
  [[nodiscard]] std::size_t undirected_edges() const { return vertices() * edge_factor / 2; }

  [[nodiscard]] static BfsParams at_scale(int scale, std::uint64_t seed);
};

class Bfs final : public Workload {
 public:
  explicit Bfs(const BfsParams& params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "BFS"; }
  [[nodiscard]] std::uint64_t footprint_bytes() const override;
  WorkloadResult run(sim::Engine& eng) override;
  [[nodiscard]] std::string functional_id() const override {
    return "BFS/log2_vertices=" + std::to_string(params_.log2_vertices) +
           "/edge_factor=" + std::to_string(params_.edge_factor) +
           "/num_roots=" + std::to_string(params_.num_roots) +
           "/variant=" + std::to_string(static_cast<int>(params_.variant)) +
           "/seed=" + std::to_string(params_.seed);
  }

 private:
  BfsParams params_;
};

}  // namespace memdis::workloads
