// SuperLU: sparse LU factorization. Modelled as a left-looking
// (Gilbert–Peierls style) column factorization of a variable-coefficient
// 2D grid Laplacian in natural ordering, followed by sparse triangular
// solves. Diagonal dominance makes static (diagonal) pivoting exact, which
// stands in for SuperLU's partial pivoting without changing the traffic
// pattern of column reach updates.
//
// Memory behaviour: many short column streams re-read across the band →
// moderate locality, high *excess* prefetch traffic (37% in the paper,
// Fig. 8) from streams that end after a few lines; access distribution
// shifts from skewed toward uniform as fill grows with the input
// (Fig. 6c).
//
// Phases: p1 = matrix assembly, p2 = factorization, p3 = triangular solves.
#pragma once

#include "workloads/workload.h"

namespace memdis::workloads {

struct SuperluParams {
  std::size_t grid = 48;  ///< k: matrix is the k×k grid Laplacian, n = k²
  std::uint64_t seed = 42;

  [[nodiscard]] std::size_t n() const { return grid * grid; }

  /// Paper inputs SiO/H2O/Si34H36 have nnz 1.3M/2.2M/5.2M (~1:2:4).
  [[nodiscard]] static SuperluParams at_scale(int scale, std::uint64_t seed);
};

class Superlu final : public Workload {
 public:
  explicit Superlu(const SuperluParams& params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "SuperLU"; }
  [[nodiscard]] std::uint64_t footprint_bytes() const override;
  WorkloadResult run(sim::Engine& eng) override;
  [[nodiscard]] std::string functional_id() const override {
    return "SuperLU/grid=" + std::to_string(params_.grid) +
           "/seed=" + std::to_string(params_.seed);
  }

 private:
  SuperluParams params_;
};

}  // namespace memdis::workloads
