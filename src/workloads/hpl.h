// HPL: High-Performance LINPACK — blocked dense LU factorization with
// partial pivoting (right-looking), followed by triangular solves.
//
// Memory behaviour: uniform streaming over the whole matrix (Fig. 6d shows
// HPL's near-diagonal bandwidth–capacity curve), high arithmetic intensity
// in the GEMM-dominated p2 phase → compute-bound, low interference
// sensitivity (Sec. 6.1).
//
// Phases: p1 = matrix generation, p2 = factorization + solve.
#pragma once

#include <cstdint>

#include "workloads/workload.h"

namespace memdis::workloads {

struct HplParams {
  std::size_t n = 288;        ///< matrix order
  std::size_t block = 48;     ///< panel/block width NB
  std::uint64_t seed = 42;

  /// Paper inputs N=20000/28280/40000 have 1:2:4 memory; we scale N by √2.
  [[nodiscard]] static HplParams at_scale(int scale, std::uint64_t seed);
};

class Hpl final : public Workload {
 public:
  explicit Hpl(const HplParams& params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "HPL"; }
  [[nodiscard]] std::uint64_t footprint_bytes() const override;
  WorkloadResult run(sim::Engine& eng) override;
  [[nodiscard]] std::string functional_id() const override {
    return "HPL/n=" + std::to_string(params_.n) + "/block=" + std::to_string(params_.block) +
           "/seed=" + std::to_string(params_.seed);
  }

 private:
  HplParams params_;
};

}  // namespace memdis::workloads
