// The six representative HPC workloads of Table 2, modelled as mini-apps.
//
// Each workload computes a *real* result (verified in its WorkloadResult)
// while its memory traffic flows through the simulation engine. Phases are
// tagged with the paper's labels (p1 = initialization, p2 = main compute,
// p3 where applicable) via the profiler API.
//
// Input problems come in three scales with ~1:2:4 memory-footprint ratio,
// matching the paper's methodology for the bandwidth–capacity scaling
// curves (Sec. 4.1).
#pragma once

#include <memory>
#include <string>

#include "sim/engine.h"

namespace memdis::workloads {

/// Outcome of a run: every workload self-verifies its numerics.
struct WorkloadResult {
  bool verified = false;
  std::string detail;       ///< human-readable verification note
  double residual = 0.0;    ///< solver residual / error metric where applicable
};

class Workload {
 public:
  virtual ~Workload() = default;

  /// Short name as used in the paper's figures ("HPL", "BFS", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Approximate peak simulated footprint, used by experiment harnesses to
  /// configure tier capacity ratios before the run (the `setup_waste` step).
  [[nodiscard]] virtual std::uint64_t footprint_bytes() const = 0;

  /// Executes the workload against `eng`, tagging phases. The caller owns
  /// calling eng.finish() afterwards.
  virtual WorkloadResult run(sim::Engine& eng) = 0;

  /// Identity of the *functional* half of a run: a string that pins every
  /// parameter influencing the access stream this workload will issue
  /// (problem sizes, seeds, variants — all of them). Two workloads with
  /// equal non-empty ids drive the engine through bit-identical access
  /// sequences, which is what licenses the epoch-profile repricer
  /// (core/epoch_profile.h) to reuse one capture across timing-only config
  /// changes. The default — empty — opts a workload out of repricing;
  /// override only with a param-complete serialization.
  [[nodiscard]] virtual std::string functional_id() const { return {}; }
};

/// Table 2 applications.
enum class App { kHPL, kSuperLU, kNekRS, kHypre, kBFS, kXSBench };

inline constexpr App kAllApps[] = {App::kHPL,   App::kSuperLU, App::kNekRS,
                                   App::kHypre, App::kBFS,     App::kXSBench};

[[nodiscard]] const char* app_name(App app);

/// Creates a workload at input scale 1, 2, or 4 (Table 2's three inputs).
/// Sizes are reduced from the paper's (which target a 96 GB node) to keep
/// simulation turnaround small while preserving each code's access
/// structure and out-of-cache behaviour.
[[nodiscard]] std::unique_ptr<Workload> make_workload(App app, int scale = 1,
                                                      std::uint64_t seed = 42);

}  // namespace memdis::workloads
