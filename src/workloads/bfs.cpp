#include "workloads/bfs.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "common/contract.h"
#include "common/rng.h"
#include "sim/array.h"

namespace memdis::workloads {

BfsParams BfsParams::at_scale(int scale, std::uint64_t seed) {
  expects(scale == 1 || scale == 2 || scale == 4, "scale must be 1, 2 or 4");
  BfsParams p;
  p.seed = seed;
  // Vertex-heavy proportions keep the per-vertex structures (Parents,
  // frontier, bitmaps) larger than the LLC, as at paper scale.
  p.log2_vertices = scale == 1 ? 17 : scale == 2 ? 18 : 19;  // memory ∝ N
  p.edge_factor = 4;
  p.num_roots = 2;
  return p;
}

std::uint64_t Bfs::footprint_bytes() const {
  const std::uint64_t n = params_.vertices();
  const std::uint64_t m_dir = 2 * params_.undirected_edges();
  // Generation temporaries + CSR + parents + frontier structures.
  return 2 * params_.undirected_edges() * 4 +  // src/dst temporaries
         (n + 1) * 4 + m_dir * 4 +             // offsets + edges
         n * 4 +                               // parents
         2 * n * 4 + 2 * n;                    // frontier lists + bitmaps
}

namespace {

/// One rMAT edge with the Graph500 partition probabilities.
std::pair<std::uint32_t, std::uint32_t> rmat_edge(Xoshiro256& rng, std::size_t log2_n) {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  for (std::size_t bit = 0; bit < log2_n; ++bit) {
    const double roll = rng.uniform();
    // (a, b, c, d) = (0.57, 0.19, 0.19, 0.05)
    const bool right = roll >= 0.57 && roll < 0.76;
    const bool down = roll >= 0.76 && roll < 0.95;
    const bool both = roll >= 0.95;
    u = (u << 1) | static_cast<std::uint32_t>(down || both);
    v = (v << 1) | static_cast<std::uint32_t>(right || both);
  }
  return {u, v};
}

}  // namespace

WorkloadResult Bfs::run(sim::Engine& eng) {
  const std::size_t n = params_.vertices();
  const std::size_t m_und = params_.undirected_edges();
  const std::size_t m_dir = 2 * m_und;
  const bool parents_first = params_.variant != BfsVariant::kBaseline;
  const bool free_temps = params_.variant == BfsVariant::kOptimized;

  // ---- p1: graph generation and CSR construction ---------------------------
  eng.pf_start("p1");

  // Case-study lever #1: the optimized variants allocate AND initialize the
  // small-but-hot Parents array before anything else, so first-touch pins it
  // in the local tier (Sec. 7.1, "allocating and initializing objects in
  // order of hotness").
  std::optional<sim::Array<std::int32_t>> parents_opt;
  const auto alloc_parents = [&] {
    parents_opt.emplace(eng, n, memsim::MemPolicy::first_touch(), "Parents");
    parents_opt->fill_range(0, n, -1);
  };
  if (parents_first) alloc_parents();

  // Generation temporaries (the paper's unfreed initialization object).
  auto src = std::make_unique<sim::Array<std::uint32_t>>(
      eng, m_und, memsim::MemPolicy::first_touch(), "gen.src");
  auto dst = std::make_unique<sim::Array<std::uint32_t>>(
      eng, m_und, memsim::MemPolicy::first_touch(), "gen.dst");
  Xoshiro256 rng(params_.seed);
  {
    auto sraw = src->raw_mutable();
    auto draw = dst->raw_mutable();
    for (std::size_t e = 0; e < m_und; ++e) {
      const auto [u, v] = rmat_edge(rng, params_.log2_vertices);
      sraw[e] = u;
      draw[e] = v;
    }
    // Alternating src/dst stores, advanced in lockstep.
    eng.store_pair_range(src->addr_of(0), 4, dst->addr_of(0), 4, m_und);
  }

  sim::Array<std::uint32_t> offsets(eng, n + 1, memsim::MemPolicy::first_touch(), "offsets");
  sim::Array<std::uint32_t> edges(eng, m_dir, memsim::MemPolicy::first_touch(), "edges");
  {
    auto offs = offsets.raw_mutable();
    std::fill(offs.begin(), offs.end(), 0);
    const auto sraw = src->raw();
    const auto draw = dst->raw();
    for (std::size_t e = 0; e < m_und; ++e) {  // degree count (random updates)
      eng.load(src->addr_of(e), 4);
      eng.load(dst->addr_of(e), 4);
      offsets.rmw(sraw[e], [](std::uint32_t d) { return d + 1; });
      offsets.rmw(draw[e], [](std::uint32_t d) { return d + 1; });
    }
    std::uint32_t sum = 0;  // exclusive prefix sum (streaming rmw pass)
    for (std::size_t v = 0; v <= n; ++v) {
      const std::uint32_t d = v < n ? offs[v] : 0;
      offs[v] = sum;
      sum += d;
    }
    eng.rmw_range(offsets.addr_of(0), (n + 1) * sizeof(std::uint32_t),
                  sizeof(std::uint32_t));
    std::vector<std::uint32_t> cursor(offs.begin(), offs.end() - 1);
    auto eraw = edges.raw_mutable();
    for (std::size_t e = 0; e < m_und; ++e) {  // fill both directions
      eng.load(src->addr_of(e), 4);
      eng.load(dst->addr_of(e), 4);
      const std::uint32_t u = sraw[e];
      const std::uint32_t v = draw[e];
      eraw[cursor[u]] = v;
      eng.store(edges.addr_of(cursor[u]), 4);
      ++cursor[u];
      eraw[cursor[v]] = u;
      eng.store(edges.addr_of(cursor[v]), 4);
      ++cursor[v];
    }
  }

  if (!parents_first) alloc_parents();
  sim::Array<std::int32_t>& parents = *parents_opt;

  // Case-study lever #2: free the generation temporaries. The baseline
  // leaks them (the allocator-bug behaviour the paper found), keeping local
  // pages occupied for the rest of the run.
  if (free_temps) {
    src->release();
    dst->release();
  } else {
    src->leak();
    dst->leak();
  }
  src.reset();
  dst.reset();
  eng.pf_stop();

  const auto offs = offsets.raw();
  const auto eraw = edges.raw();
  auto praw = parents.raw_mutable();

  // ---- p2: direction-optimizing BFS ----------------------------------------
  eng.pf_start("p2");
  std::uint64_t total_reached = 0;
  for (std::size_t root_i = 0; root_i < params_.num_roots; ++root_i) {
    // Reset parents between traversals.
    parents.fill_range(0, n, -1);

    // Pick a root with nonzero degree, deterministically.
    Xoshiro256 root_rng(params_.seed + 100 + root_i);
    std::uint32_t root = 0;
    do {
      root = static_cast<std::uint32_t>(root_rng.uniform_below(n));
    } while (offs[root + 1] == offs[root]);
    parents.st(root, static_cast<std::int32_t>(root));

    // Dynamic frontier structures: allocated fresh per traversal, modelling
    // Ligra's per-iteration heap allocations (Sec. 7.1's "dynamic heap
    // allocations ... including the current frontier").
    sim::Array<std::uint32_t> frontier_a(eng, n, memsim::MemPolicy::first_touch(), "frontier");
    sim::Array<std::uint32_t> frontier_b(eng, n, memsim::MemPolicy::first_touch(), "next");
    sim::Array<std::uint8_t> bitmap(eng, n, memsim::MemPolicy::first_touch(), "frontier.bm");
    sim::Array<std::uint32_t>* cur = &frontier_a;
    sim::Array<std::uint32_t>* nxt = &frontier_b;
    auto bmraw = bitmap.raw_mutable();

    cur->st(0, root);
    std::size_t frontier_size = 1;
    std::uint64_t frontier_degree = offs[root + 1] - offs[root];
    std::uint64_t edges_remaining = m_dir;
    bool bottom_up = false;  // true while `bitmap` holds the current frontier

    while (frontier_size > 0) {
      std::size_t next_size = 0;
      std::uint64_t next_degree = 0;

      // Direction heuristic (Beamer): dense pull when the frontier's edge
      // count is a large fraction of the remaining edges.
      const bool want_bottom_up = frontier_degree > edges_remaining / 20;

      if (want_bottom_up) {
        if (!bottom_up) {  // convert sparse list → dense bitmap
          bitmap.fill_range(0, n, 0);
          for (std::size_t f = 0; f < frontier_size; ++f) {
            const std::uint32_t u = cur->ld(f);
            bitmap.st(u, 1);
          }
          bottom_up = true;
        }
        std::vector<std::uint8_t> next_bm(n, 0);
        for (std::size_t v = 0; v < n; ++v) {
          eng.load(parents.addr_of(v), 4);
          if (praw[v] != -1) continue;
          eng.load(offsets.addr_of(v), 8);  // offs[v] and offs[v+1]
          for (std::uint32_t t = offs[v]; t < offs[v + 1]; ++t) {
            eng.load(edges.addr_of(t), 4);
            const std::uint32_t u = eraw[t];
            eng.load(bitmap.addr_of(u), 1);
            if (bmraw[u]) {
              praw[v] = static_cast<std::int32_t>(u);
              eng.store(parents.addr_of(v), 4);
              next_bm[v] = 1;
              ++next_size;
              next_degree += offs[v + 1] - offs[v];
              break;
            }
          }
        }
        // Publish the next frontier: one sequential store sweep.
        std::copy(next_bm.begin(), next_bm.end(), bmraw.begin());
        eng.store_range(bitmap.addr_of(0), n, 1);
        // Shrink back to a sparse list when the frontier gets small again.
        if (next_size < n / 32) {
          auto craw = cur->raw_mutable();
          std::size_t c = 0;
          for (std::size_t v = 0; v < n; ++v) {
            eng.load(bitmap.addr_of(v), 1);
            if (bmraw[v]) {
              craw[c] = static_cast<std::uint32_t>(v);
              eng.store(cur->addr_of(c), 4);
              ++c;
            }
          }
          bottom_up = false;
        }
      } else {
        // Top-down push over the sparse frontier list.
        auto nraw = nxt->raw_mutable();
        for (std::size_t f = 0; f < frontier_size; ++f) {
          const std::uint32_t u = cur->ld(f);
          eng.load(offsets.addr_of(u), 8);
          for (std::uint32_t t = offs[u]; t < offs[u + 1]; ++t) {
            eng.load(edges.addr_of(t), 4);
            const std::uint32_t v = eraw[t];
            eng.load(parents.addr_of(v), 4);
            if (praw[v] == -1) {
              praw[v] = static_cast<std::int32_t>(u);
              eng.store(parents.addr_of(v), 4);
              nraw[next_size] = v;
              eng.store(nxt->addr_of(next_size), 4);
              ++next_size;
              next_degree += offs[v + 1] - offs[v];
            }
          }
        }
        std::swap(cur, nxt);
      }

      edges_remaining -= frontier_degree;
      frontier_size = next_size;
      frontier_degree = next_degree;
    }

    for (std::size_t v = 0; v < n; ++v)
      if (praw[v] != -1) ++total_reached;
  }
  eng.pf_stop();

  // ---- verification against a host-side reference BFS ----------------------
  // Levels from the parent tree must match reference BFS distances for the
  // last root.
  std::vector<std::int32_t> level(n, -1);
  {
    std::queue<std::uint32_t> q;
    std::uint32_t last_root = 0;
    for (std::size_t v = 0; v < n; ++v)
      if (praw[v] == static_cast<std::int32_t>(v)) last_root = static_cast<std::uint32_t>(v);
    level[last_root] = 0;
    q.push(last_root);
    while (!q.empty()) {
      const std::uint32_t u = q.front();
      q.pop();
      for (std::uint32_t t = offs[u]; t < offs[u + 1]; ++t) {
        const std::uint32_t v = eraw[t];
        if (level[v] == -1) {
          level[v] = level[u] + 1;
          q.push(v);
        }
      }
    }
  }
  bool ok = true;
  std::size_t reached_ref = 0;
  std::size_t reached_sim = 0;
  for (std::size_t v = 0; v < n && ok; ++v) {
    if (level[v] != -1) ++reached_ref;
    if (praw[v] != -1) ++reached_sim;
    if ((level[v] == -1) != (praw[v] == -1)) ok = false;
    if (praw[v] != -1 && level[v] > 0) {
      const auto par = static_cast<std::size_t>(praw[v]);
      if (level[par] + 1 != level[v]) ok = false;  // parent one level above
    }
  }
  ok = ok && reached_ref == reached_sim;

  WorkloadResult result;
  result.verified = ok;
  result.residual = 0.0;
  result.detail = "BFS reached " + std::to_string(reached_sim) + "/" + std::to_string(n) +
                  " vertices; parent tree " + (ok ? "valid" : "INVALID");
  return result;
}

}  // namespace memdis::workloads
