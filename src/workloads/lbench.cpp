#include "workloads/lbench.h"

#include <cmath>

#include "sim/array.h"

namespace memdis::workloads {

double Lbench::kernel_element(double a, std::uint32_t nflop, double alpha) {
  double beta = a;
  if (nflop % 2 == 1) beta = a + alpha;
  const std::uint32_t nloop = nflop / 2;
  for (std::uint32_t k = 0; k < nloop; ++k) beta = beta * a + alpha;
  return beta;
}

WorkloadResult Lbench::run(sim::Engine& eng) {
  const std::size_t n = params_.elements;
  const double alpha = 0.25;
  const auto policy = params_.on_pool ? memsim::MemPolicy::bind_pool()
                                      : memsim::MemPolicy::first_touch();
  sim::Array<double> a(eng, n, policy, "LBench.A");

  eng.pf_start("p1");
  a.fill_range(0, n, 0.5);
  eng.pf_stop();

  eng.pf_start("p2");
  auto raw = a.raw_mutable();
  for (std::size_t s = 0; s < params_.sweeps; ++s) {
    // Load-compute-store per element: the canonical rmw sweep.
    for (std::size_t i = 0; i < n; ++i)
      raw[i] = kernel_element(raw[i], params_.nflop, alpha);
    a.rmw_range(0, n);
    eng.flops(n * params_.nflop);
  }
  eng.pf_stop();

  // Verification: replay one element's recurrence on the host.
  double expect = 0.5;
  for (std::size_t s = 0; s < params_.sweeps; ++s)
    expect = kernel_element(expect, params_.nflop, alpha);
  const double err = std::abs(a.raw()[0] - expect);
  WorkloadResult result;
  result.verified = err == 0.0 && std::isfinite(expect);
  result.residual = err;
  result.detail = "LBench element recurrence error = " + std::to_string(err);
  return result;
}

}  // namespace memdis::workloads
