#include "workloads/nekrs.h"

#include <cmath>
#include <vector>

#include "common/contract.h"
#include "common/rng.h"
#include "sim/array.h"

namespace memdis::workloads {

NekrsParams NekrsParams::at_scale(int scale, std::uint64_t seed) {
  expects(scale == 1 || scale == 2 || scale == 4, "scale must be 1, 2 or 4");
  NekrsParams p;
  p.seed = seed;
  p.elements = 192;
  p.order = scale == 1 ? 5 : scale == 2 ? 7 : 9;  // paper: turbPipe p = 5/7/9
  return p;
}

std::uint64_t Nekrs::footprint_bytes() const {
  const std::uint64_t pts = params_.total_points();
  // x, b, r, p, Ap vectors + 6 geometric factors + gather index per point.
  return pts * (5 * sizeof(double) + 6 * sizeof(double) + sizeof(std::uint32_t));
}

namespace {

/// Dense "differentiation" matrix for the reference element. Any real dense
/// D yields an SPD operator A = Σ_d D_dᵀ G_d D_d + λI with G_d > 0.
std::vector<double> make_d_matrix(std::size_t m) {
  std::vector<double> d(m * m);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t l = 0; l < m; ++l)
      d[i * m + l] = i == l ? 0.75 : 1.0 / (static_cast<double>(i) - static_cast<double>(l));
  return d;
}

}  // namespace

WorkloadResult Nekrs::run(sim::Engine& eng) {
  const std::size_t e_count = params_.elements;
  const std::size_t m = params_.order + 1;
  const std::size_t ppe = params_.points_per_elem();
  const std::size_t pts = params_.total_points();
  const double lambda = 1.0;

  sim::Array<double> x(eng, pts, memsim::MemPolicy::first_touch(), "x");
  sim::Array<double> b(eng, pts, memsim::MemPolicy::first_touch(), "b");
  sim::Array<double> r(eng, pts, memsim::MemPolicy::first_touch(), "r");
  sim::Array<double> p(eng, pts, memsim::MemPolicy::first_touch(), "p");
  sim::Array<double> ap(eng, pts, memsim::MemPolicy::first_touch(), "Ap");
  sim::Array<double> geo(eng, pts * 6, memsim::MemPolicy::first_touch(), "geo");
  sim::Array<std::uint32_t> gather(eng, pts, memsim::MemPolicy::first_touch(), "gather");

  const std::vector<double> dmat = make_d_matrix(m);
  std::vector<double> scratch_u(ppe), scratch_v(ppe), scratch_w(ppe);

  // ---- p1: mesh & geometry setup ------------------------------------------
  eng.pf_start("p1");
  Xoshiro256 rng(params_.seed);
  {
    auto graw = geo.raw_mutable();
    auto iraw = gather.raw_mutable();
    auto braw = b.raw_mutable();
    for (std::size_t pt = 0; pt < pts; ++pt) {
      for (int d = 0; d < 6; ++d) graw[pt * 6 + d] = 0.5 + rng.uniform();  // positive metric
      eng.store(geo.addr_of(pt * 6), 48);
      iraw[pt] = static_cast<std::uint32_t>(pt);  // DG-style local-global map
      eng.store(gather.addr_of(pt), 4);
      braw[pt] = rng.uniform(-1.0, 1.0);
      eng.store(b.addr_of(pt), 8);
      x.st(pt, 0.0);
      r.st(pt, braw[pt]);  // r0 = b
      p.st(pt, braw[pt]);  // p0 = r0
    }
  }
  eng.pf_stop();

  auto xraw = x.raw_mutable();
  auto rraw = r.raw_mutable();
  auto praw = p.raw_mutable();
  auto apraw = ap.raw_mutable();
  const auto graw = geo.raw();
  const auto braw = b.raw();

  // Helmholtz operator on `in`, result into `out`; fuses the in·out dot.
  // Per point we simulate: gather-index load, vector load, geometric-factor
  // load (one 48-byte access), and the result store. The tensor contractions
  // run on cache-resident element-local scratch and are accounted as flops.
  const auto apply_operator = [&](const double* in, double* out,
                                  const std::uint64_t in_base_addr,
                                  const std::uint64_t out_base_addr) {
    double dot = 0.0;
    for (std::size_t e = 0; e < e_count; ++e) {
      const std::size_t base = e * ppe;
      for (std::size_t q = 0; q < ppe; ++q) scratch_u[q] = in[base + q];
      // Gather-index and field loads advance in lockstep (4 B + 8 B pair).
      eng.load_pair_range(gather.addr_of(base), 4, in_base_addr + base * sizeof(double), 8,
                          ppe);
      // Forward contractions per direction, metric scaling, then adjoint.
      std::fill(scratch_w.begin(), scratch_w.end(), 0.0);
      for (int dir = 0; dir < 3; ++dir) {
        // v = D_dir u  (dense m×m along one axis).
        const std::size_t s0 = dir == 0 ? m * m : dir == 1 ? m : 1;
        for (std::size_t a = 0; a < ppe / m; ++a) {
          // Decompose index: iterate the m-point pencils along `dir`.
          const std::size_t plane = dir == 0 ? a : dir == 1 ? (a / m) * m * m + a % m
                                                            : a * m;
          for (std::size_t i = 0; i < m; ++i) {
            double acc = 0.0;
            for (std::size_t l = 0; l < m; ++l)
              acc += dmat[i * m + l] * scratch_u[plane + l * s0];
            scratch_v[plane + i * s0] = acc;
          }
        }
        // w += D_dirᵀ (g_dir ⊙ v), with g_dir the dir-th geometric factor.
        for (std::size_t q = 0; q < ppe; ++q)
          scratch_v[q] *= graw[(base + q) * 6 + static_cast<std::size_t>(dir)];
        // One 48-byte factor load per point (48 ∤ 64: decomposes to the
        // element loop, kept as a range for the declared stream shape).
        eng.load_range(geo.addr_of(base * 6), ppe * 48, 48);
        for (std::size_t a = 0; a < ppe / m; ++a) {
          const std::size_t plane = dir == 0 ? a : dir == 1 ? (a / m) * m * m + a % m
                                                            : a * m;
          for (std::size_t i = 0; i < m; ++i) {
            double acc = 0.0;
            for (std::size_t l = 0; l < m; ++l)
              acc += dmat[l * m + i] * scratch_v[plane + l * s0];
            scratch_w[plane + i * s0] += acc;
          }
        }
      }
      eng.flops(12 * ppe * m + 4 * ppe);
      for (std::size_t q = 0; q < ppe; ++q) {
        const double val = scratch_w[q] + lambda * scratch_u[q];
        out[base + q] = val;
        dot += val * in[base + q];
      }
      eng.store_range(out_base_addr + base * sizeof(double), ppe * sizeof(double), 8);
    }
    return dot;
  };

  // ---- p2: timestepped CG solves -------------------------------------------
  eng.pf_start("p2");
  double rel_res = 1.0;
  for (std::size_t step = 0; step < params_.timesteps; ++step) {
    double rr = 0.0;
    for (std::size_t pt = 0; pt < pts; ++pt) rr += rraw[pt] * rraw[pt];
    const double rr0 = rr;
    for (std::size_t it = 0; it < params_.cg_iters; ++it) {
      const double p_ap = apply_operator(praw.data(), apraw.data(), p.range().base,
                                         ap.range().base);
      const double alpha = rr / p_ap;
      // Fused axpy pass: four vectors in lockstep, one multi-stream sweep.
      double rr_new = 0.0;
      for (std::size_t pt = 0; pt < pts; ++pt) {
        xraw[pt] += alpha * praw[pt];
        rraw[pt] -= alpha * apraw[pt];
        rr_new += rraw[pt] * rraw[pt];
      }
      using Lane = sim::Engine::StreamLane;
      const Lane axpy[] = {
          {p.addr_of(0), 8, 8, Lane::Op::kLoad},  {x.addr_of(0), 8, 8, Lane::Op::kRmw},
          {ap.addr_of(0), 8, 8, Lane::Op::kLoad}, {r.addr_of(0), 8, 8, Lane::Op::kRmw},
      };
      eng.stream_range(axpy, 4, pts);
      eng.flops(pts * 6);
      const double beta = rr_new / rr;
      rr = rr_new;
      for (std::size_t pt = 0; pt < pts; ++pt) praw[pt] = rraw[pt] + beta * praw[pt];
      const Lane pupd[] = {
          {r.addr_of(0), 8, 8, Lane::Op::kLoad},
          {p.addr_of(0), 8, 8, Lane::Op::kRmw},
      };
      eng.stream_range(pupd, 2, pts);
      eng.flops(pts * 2);
    }
    rel_res = std::sqrt(rr / rr0);
    // Next "time step": refresh the right-hand side from the solution
    // (a stand-in for the time integrator) and restart CG.
    if (step + 1 < params_.timesteps) {
      for (std::size_t pt = 0; pt < pts; ++pt) {
        const double bnew = braw[pt] + 0.1 * xraw[pt];
        rraw[pt] = bnew;  // r = b_new - A·0 with x reset
        praw[pt] = bnew;
        xraw[pt] = 0.0;
      }
      using Lane = sim::Engine::StreamLane;
      // x appears twice: read up front, reset at the end of each iteration.
      const Lane refresh[] = {
          {x.addr_of(0), 8, 8, Lane::Op::kLoad},  {b.addr_of(0), 8, 8, Lane::Op::kLoad},
          {r.addr_of(0), 8, 8, Lane::Op::kStore}, {p.addr_of(0), 8, 8, Lane::Op::kStore},
          {x.addr_of(0), 8, 8, Lane::Op::kStore},
      };
      eng.stream_range(refresh, 5, pts);
      eng.flops(pts * 2);
    }
  }
  eng.pf_stop();

  WorkloadResult result;
  result.residual = rel_res;
  result.verified = std::isfinite(rel_res) && rel_res < 0.9;
  result.detail = "NekRS CG relative residual after " + std::to_string(params_.cg_iters) +
                  " iterations: " + std::to_string(rel_res);
  return result;
}

}  // namespace memdis::workloads
