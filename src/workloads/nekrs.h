// NekRS: spectral-element CFD (turbPipePeriodic). Modelled as the dominant
// kernel of its pressure solve — matrix-free conjugate gradient on a
// spectral-element Helmholtz operator applied via tensor contractions of
// the per-element differentiation matrix, with per-point geometric factors.
//
// The paper scales polynomial order p = 5, 7, 9 across the three inputs
// (memory ∝ (p+1)³ per element ≈ 1:2.4:4.6); we do the same.
//
// Memory behaviour: long unit-stride streams over element data → very high
// prefetch coverage (~70%, Fig. 8) and 57% performance gain from
// prefetching (Sec. 4.2), low arithmetic intensity per byte → high
// interference sensitivity (Fig. 10).
//
// Phases: p1 = mesh/geometry setup, p2 = timestepped CG solves.
#pragma once

#include "workloads/workload.h"

namespace memdis::workloads {

struct NekrsParams {
  std::size_t elements = 128;   ///< number of spectral elements E
  std::size_t order = 5;        ///< polynomial order p (m = p+1 points/dim)
  std::size_t timesteps = 2;    ///< outer time steps
  std::size_t cg_iters = 7;     ///< CG iterations per step
  std::uint64_t seed = 42;

  [[nodiscard]] std::size_t points_per_elem() const {
    const std::size_t m = order + 1;
    return m * m * m;
  }
  [[nodiscard]] std::size_t total_points() const { return elements * points_per_elem(); }

  [[nodiscard]] static NekrsParams at_scale(int scale, std::uint64_t seed);
};

class Nekrs final : public Workload {
 public:
  explicit Nekrs(const NekrsParams& params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "NekRS"; }
  [[nodiscard]] std::uint64_t footprint_bytes() const override;
  WorkloadResult run(sim::Engine& eng) override;
  [[nodiscard]] std::string functional_id() const override {
    return "NekRS/elements=" + std::to_string(params_.elements) +
           "/order=" + std::to_string(params_.order) +
           "/timesteps=" + std::to_string(params_.timesteps) +
           "/cg_iters=" + std::to_string(params_.cg_iters) +
           "/seed=" + std::to_string(params_.seed);
  }

 private:
  NekrsParams params_;
};

}  // namespace memdis::workloads
