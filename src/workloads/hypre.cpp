#include "workloads/hypre.h"

#include <cmath>

#include "common/contract.h"
#include "common/rng.h"
#include "sim/array.h"

namespace memdis::workloads {

HypreParams HypreParams::at_scale(int scale, std::uint64_t seed) {
  expects(scale == 1 || scale == 2 || scale == 4, "scale must be 1, 2 or 4");
  HypreParams p;
  p.seed = seed;
  p.grid = scale == 1 ? 208 : scale == 2 ? 296 : 416;  // memory ∝ grid²
  return p;
}

std::uint64_t Hypre::footprint_bytes() const {
  const std::uint64_t npts = params_.grid * params_.grid;
  // 5 stencil coefficients + 6 vectors (x, b, r, p, z, Ap) per point.
  return npts * (5 + 6) * sizeof(double);
}

// 5-point stencil order: [diag, west, east, south, north].
WorkloadResult Hypre::run(sim::Engine& eng) {
  const std::size_t g = params_.grid;
  const std::size_t npts = g * g;
  const auto at = [g](std::size_t i, std::size_t j) { return i * g + j; };

  sim::Array<double> coef(eng, npts * 5, memsim::MemPolicy::first_touch(), "stencil");
  sim::Array<double> x(eng, npts, memsim::MemPolicy::first_touch(), "x");
  sim::Array<double> bvec(eng, npts, memsim::MemPolicy::first_touch(), "b");
  sim::Array<double> r(eng, npts, memsim::MemPolicy::first_touch(), "r");
  sim::Array<double> p(eng, npts, memsim::MemPolicy::first_touch(), "p");
  sim::Array<double> z(eng, npts, memsim::MemPolicy::first_touch(), "z");
  sim::Array<double> ap(eng, npts, memsim::MemPolicy::first_touch(), "Ap");

  // ---- p1: setup -----------------------------------------------------------
  eng.pf_start("p1");
  Xoshiro256 rng(params_.seed);
  auto craw = coef.raw_mutable();
  for (std::size_t i = 0; i < g; ++i) {
    for (std::size_t j = 0; j < g; ++j) {
      const std::size_t pt = at(i, j);
      // Variable-coefficient Laplacian: SPD by diagonal dominance.
      const double cw = i > 0 ? -(1.0 + 0.3 * rng.uniform()) : 0.0;
      const double ce = i + 1 < g ? -(1.0 + 0.3 * rng.uniform()) : 0.0;
      const double cs = j > 0 ? -(1.0 + 0.3 * rng.uniform()) : 0.0;
      const double cn = j + 1 < g ? -(1.0 + 0.3 * rng.uniform()) : 0.0;
      craw[pt * 5 + 0] = -(cw + ce + cs + cn) + 0.1;
      craw[pt * 5 + 1] = cw;
      craw[pt * 5 + 2] = ce;
      craw[pt * 5 + 3] = cs;
      craw[pt * 5 + 4] = cn;
      eng.store(coef.addr_of(pt * 5), 40);
      const double bv = rng.uniform(-1.0, 1.0);
      bvec.st(pt, bv);
      x.st(pt, 0.0);
      r.st(pt, bv);                         // r0 = b - A·0 = b
      const double zv = bv / craw[pt * 5];  // z0 = D^{-1} r0
      z.st(pt, zv);
      p.st(pt, zv);  // p0 = z0
    }
  }
  eng.pf_stop();

  auto xraw = x.raw_mutable();
  auto rraw = r.raw_mutable();
  auto praw = p.raw_mutable();
  auto zraw = z.raw_mutable();
  auto apraw = ap.raw_mutable();
  const auto braw = bvec.raw();

  double res0 = 0.0;
  for (std::size_t pt = 0; pt < npts; ++pt) res0 += rraw[pt] * rraw[pt];
  res0 = std::sqrt(res0);

  double rz = 0.0;
  for (std::size_t pt = 0; pt < npts; ++pt) rz += rraw[pt] * zraw[pt];

  // ---- p2: PCG solve -------------------------------------------------------
  eng.pf_start("p2");
  for (std::size_t iter = 0; iter < params_.iterations; ++iter) {
    // Pass 1: Ap = A·p, fused with the p·Ap reduction.
    double p_ap = 0.0;
    for (std::size_t i = 0; i < g; ++i) {
      for (std::size_t j = 0; j < g; ++j) {
        const std::size_t pt = at(i, j);
        eng.load(coef.addr_of(pt * 5), 40);
        eng.load(p.addr_of(pt), 8);
        double acc = craw[pt * 5] * praw[pt];
        if (i > 0) {
          eng.load(p.addr_of(at(i - 1, j)), 8);
          acc += craw[pt * 5 + 1] * praw[at(i - 1, j)];
        }
        if (i + 1 < g) {
          eng.load(p.addr_of(at(i + 1, j)), 8);
          acc += craw[pt * 5 + 2] * praw[at(i + 1, j)];
        }
        if (j > 0) {
          eng.load(p.addr_of(at(i, j - 1)), 8);
          acc += craw[pt * 5 + 3] * praw[at(i, j - 1)];
        }
        if (j + 1 < g) {
          eng.load(p.addr_of(at(i, j + 1)), 8);
          acc += craw[pt * 5 + 4] * praw[at(i, j + 1)];
        }
        apraw[pt] = acc;
        eng.store(ap.addr_of(pt), 8);
        p_ap += acc * praw[pt];
      }
    }
    eng.flops(npts * 11);

    const double alpha = rz / p_ap;
    // Pass 2: x += αp, r -= αAp, z = D⁻¹r, fused r·z reduction. Six arrays
    // advance in lockstep (the coef lane reads the diagonal entry, one
    // 8-byte load per 40-byte stencil record), expressed as one
    // multi-stream sweep.
    double rz_new = 0.0;
    for (std::size_t pt = 0; pt < npts; ++pt) {
      xraw[pt] += alpha * praw[pt];
      rraw[pt] -= alpha * apraw[pt];
      zraw[pt] = rraw[pt] / craw[pt * 5];
      rz_new += rraw[pt] * zraw[pt];
    }
    using Lane = sim::Engine::StreamLane;
    const Lane pass2[] = {
        {p.addr_of(0), 8, 8, Lane::Op::kLoad},  {x.addr_of(0), 8, 8, Lane::Op::kRmw},
        {ap.addr_of(0), 8, 8, Lane::Op::kLoad}, {r.addr_of(0), 8, 8, Lane::Op::kRmw},
        {coef.addr_of(0), 40, 8, Lane::Op::kLoad},
        {z.addr_of(0), 8, 8, Lane::Op::kStore},
    };
    eng.stream_range(pass2, 6, npts);
    eng.flops(npts * 9);

    const double beta = rz_new / rz;
    rz = rz_new;
    // Pass 3: p = z + βp.
    for (std::size_t pt = 0; pt < npts; ++pt) praw[pt] = zraw[pt] + beta * praw[pt];
    const Lane pass3[] = {
        {z.addr_of(0), 8, 8, Lane::Op::kLoad},
        {p.addr_of(0), 8, 8, Lane::Op::kRmw},
    };
    eng.stream_range(pass3, 2, npts);
    eng.flops(npts * 2);
  }
  eng.pf_stop();

  // ---- verification: true residual must have dropped ----------------------
  double res = 0.0;
  for (std::size_t i = 0; i < g; ++i) {
    for (std::size_t j = 0; j < g; ++j) {
      const std::size_t pt = at(i, j);
      double acc = craw[pt * 5] * xraw[pt];
      if (i > 0) acc += craw[pt * 5 + 1] * xraw[at(i - 1, j)];
      if (i + 1 < g) acc += craw[pt * 5 + 2] * xraw[at(i + 1, j)];
      if (j > 0) acc += craw[pt * 5 + 3] * xraw[at(i, j - 1)];
      if (j + 1 < g) acc += craw[pt * 5 + 4] * xraw[at(i, j + 1)];
      const double diff = braw[pt] - acc;
      res += diff * diff;
    }
  }
  res = std::sqrt(res);

  WorkloadResult result;
  result.residual = res / res0;
  result.verified = std::isfinite(res) && res < 0.7 * res0;
  result.detail = "Hypre relative residual after " + std::to_string(params_.iterations) +
                  " PCG iterations: " + std::to_string(result.residual);
  return result;
}

}  // namespace memdis::workloads
