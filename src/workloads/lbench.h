// LBench: the interference generation and measurement benchmark (Sec. 3.2).
//
// Allocates an array on the memory pool and runs a roofline-style kernel
// with a configurable number of floating-point operations per element —
// the paper's inner loop, verbatim:
//
//   if (NFLOP % 2 == 1) beta = A[i] + alpha;
//   const int NLOOP = NFLOP / 2;
//   #pragma GCC unroll 16
//   for (int k = 0; k < NLOOP; k++) beta = beta * A[i] + alpha;
//   A[i] = beta;
//
// Lowering NFLOP raises the generated link traffic; the Level-of-Interference
// (LoI) is the generated traffic as a percentage of the peak link traffic
// (1 flop/element, 12 threads on the paper's testbed). The interference
// coefficient (IC) is the relative runtime of a 1-thread, 1-flop LBench
// probe against an idle system.
#pragma once

#include "workloads/workload.h"

namespace memdis::workloads {

struct LbenchParams {
  std::size_t elements = 1 << 20;  ///< 8 MiB working array
  std::uint32_t nflop = 1;         ///< floating-point ops per element
  std::size_t sweeps = 2;          ///< passes over the array
  bool on_pool = true;             ///< allocate on the remote (pool) tier
  std::uint64_t seed = 42;
};

class Lbench final : public Workload {
 public:
  explicit Lbench(const LbenchParams& params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "LBench"; }
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return params_.elements * sizeof(double);
  }
  WorkloadResult run(sim::Engine& eng) override;
  [[nodiscard]] std::string functional_id() const override {
    return "LBench/elements=" + std::to_string(params_.elements) +
           "/nflop=" + std::to_string(params_.nflop) +
           "/sweeps=" + std::to_string(params_.sweeps) +
           "/on_pool=" + std::to_string(params_.on_pool ? 1 : 0) +
           "/seed=" + std::to_string(params_.seed);
  }

  /// The kernel itself, host-side, for verification and the native runner.
  [[nodiscard]] static double kernel_element(double a, std::uint32_t nflop, double alpha);

 private:
  LbenchParams params_;
};

}  // namespace memdis::workloads
