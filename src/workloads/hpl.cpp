#include "workloads/hpl.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/contract.h"
#include "common/rng.h"
#include "sim/array.h"

namespace memdis::workloads {

HplParams HplParams::at_scale(int scale, std::uint64_t seed) {
  expects(scale == 1 || scale == 2 || scale == 4, "scale must be 1, 2 or 4");
  HplParams p;
  p.seed = seed;
  // Memory ∝ N², so N scales by √2 per doubling (paper: 20000/28280/40000).
  p.n = scale == 1 ? 768 : scale == 2 ? 1152 : 1536;
  p.block = 192;
  return p;
}

std::uint64_t Hpl::footprint_bytes() const {
  const std::uint64_t n = params_.n;
  return n * n * sizeof(double) + 2 * n * sizeof(double) + n * sizeof(std::int32_t);
}

namespace {

/// Column-major indexing: column scans are unit-stride (BLAS layout).
inline std::size_t idx(std::size_t i, std::size_t j, std::size_t n) { return i + j * n; }

}  // namespace

// Instrumentation philosophy: a tuned HPL keeps the active panel and the
// register blocks of DGEMM cache-resident, so DRAM sees each matrix element
// once per *pass*, not once per flop. We therefore instrument streaming
// passes (panel read/write, C-block read/update, A/B panel reads, row swaps)
// and account the arithmetic with eng.flops(), while the actual numerics run
// on the host buffer. Element-wise codes (pivot application to b, the
// triangular solves) are instrumented element-wise.
WorkloadResult Hpl::run(sim::Engine& eng) {
  const std::size_t n = params_.n;
  const std::size_t nb = params_.block;
  expects(nb >= 2 && nb <= n, "HPL: block size must be in [2, n]");

  sim::Array<double> a(eng, n * n, memsim::MemPolicy::first_touch(), "A");
  sim::Array<double> b(eng, n, memsim::MemPolicy::first_touch(), "b");
  sim::Array<std::int32_t> ipiv(eng, n, memsim::MemPolicy::first_touch(), "ipiv");

  // ---- p1: problem generation ---------------------------------------------
  eng.pf_start("p1");
  Xoshiro256 rng(params_.seed);
  {
    // Column-major fill is one contiguous store stream over the matrix.
    auto araw = a.raw_mutable();
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) araw[idx(i, j, n)] = rng.uniform(-0.5, 0.5);
    eng.store_range(a.addr_of(0), n * n * sizeof(double), sizeof(double));
  }
  // b = A * ones, so the reference solution is x = 1 everywhere.
  {
    auto raw = a.raw();
    b.fill_range(0, n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      eng.load_range(a.addr_of(idx(0, j, n)), n * sizeof(double), sizeof(double));
      eng.flops(2 * n);
    }
    auto braw = b.raw_mutable();
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < n; ++j) s += raw[idx(i, j, n)];
      braw[i] = s;
    }
  }
  std::vector<double> a0(a.raw().begin(), a.raw().end());  // for verification
  eng.pf_stop();

  // ---- p2: blocked right-looking LU with partial pivoting ----------------
  eng.pf_start("p2");
  auto raw = a.raw_mutable();
  for (std::size_t k = 0; k < n; k += nb) {
    const std::size_t kend = std::min(k + nb, n);

    // Stream the panel in (it stays cache-resident during factorization).
    for (std::size_t c = k; c < kend; ++c)
      eng.load_range(a.addr_of(idx(k, c, n)), (n - k) * sizeof(double), sizeof(double));

    // Host-side unblocked panel LU with partial pivoting.
    for (std::size_t j = k; j < kend; ++j) {
      std::size_t piv = j;
      double best = std::abs(raw[idx(j, j, n)]);
      for (std::size_t i = j + 1; i < n; ++i) {
        const double v = std::abs(raw[idx(i, j, n)]);
        if (v > best) {
          best = v;
          piv = i;
        }
      }
      ipiv.st(j, static_cast<std::int32_t>(piv));
      if (best == 0.0) {
        eng.pf_stop();
        return {false, "HPL: singular pivot", 0.0};
      }
      if (piv != j) {  // swap within panel (cache resident)
        for (std::size_t c = k; c < kend; ++c)
          std::swap(raw[idx(j, c, n)], raw[idx(piv, c, n)]);
      }
      const double djj = raw[idx(j, j, n)];
      for (std::size_t i = j + 1; i < n; ++i) raw[idx(i, j, n)] /= djj;
      eng.flops(n - j - 1);
      for (std::size_t c = j + 1; c < kend; ++c) {
        const double ajc = raw[idx(j, c, n)];
        for (std::size_t i = j + 1; i < n; ++i) raw[idx(i, c, n)] -= raw[idx(i, j, n)] * ajc;
        eng.flops(2 * (n - j - 1));
      }
    }

    // Stream the factored panel back out.
    for (std::size_t c = k; c < kend; ++c)
      eng.store_range(a.addr_of(idx(k, c, n)), (n - k) * sizeof(double), sizeof(double));

    // Apply the panel's row interchanges to the rest of the matrix (laswp).
    // Swap traffic is O(N²) against GEMM's O(N³/NB): ~2% of traffic at the
    // paper's N=20000 but ~150% at our simulation-scale N. Instrumenting one
    // in 16 swapped elements restores the paper-scale traffic ratio; the
    // numerics always swap.
    constexpr std::size_t kSwapSampling = 16;
    for (std::size_t j = k; j < kend; ++j) {
      const auto piv = static_cast<std::size_t>(ipiv.ld(j));
      if (piv == j) continue;
      for (std::size_t c = 0; c < n; ++c) {
        if (c >= k && c < kend) continue;  // already swapped in the panel
        if (c % kSwapSampling == 0) {
          eng.load(a.addr_of(idx(j, c, n)), 8);
          eng.load(a.addr_of(idx(piv, c, n)), 8);
          eng.store(a.addr_of(idx(j, c, n)), 8);
          eng.store(a.addr_of(idx(piv, c, n)), 8);
        }
        std::swap(raw[idx(j, c, n)], raw[idx(piv, c, n)]);
      }
    }
    if (kend == n) break;

    // TRSM: U12 = L11^{-1} A12. One read+write pass over A12; L11 is cached.
    for (std::size_t c = kend; c < n; ++c) {
      eng.load_range(a.addr_of(idx(k, c, n)), (kend - k) * sizeof(double), sizeof(double));
      for (std::size_t j = k; j < kend; ++j) {
        const double xj = raw[idx(j, c, n)];
        for (std::size_t i = j + 1; i < kend; ++i) raw[idx(i, c, n)] -= raw[idx(i, j, n)] * xj;
      }
      eng.flops(nb * nb);
      eng.store_range(a.addr_of(idx(k, c, n)), (kend - k) * sizeof(double), sizeof(double));
    }

    // GEMM: A22 -= L21 * U12 in NB×NB tiles. C tiles are read and written
    // once per panel; the L21 stripe is read once per tile row and the U12
    // stripe once per tile column (they stay cached across the sweep).
    for (std::size_t ib = kend; ib < n; ib += nb) {
      const std::size_t iend = std::min(ib + nb, n);
      for (std::size_t j = k; j < kend; ++j)
        eng.load_range(a.addr_of(idx(ib, j, n)), (iend - ib) * sizeof(double), sizeof(double));
      for (std::size_t jb = kend; jb < n; jb += nb) {
        const std::size_t jend = std::min(jb + nb, n);
        if (ib == kend) {  // U12 tile: first tile row streams it in
          for (std::size_t j = jb; j < jend; ++j)
            eng.load_range(a.addr_of(idx(k, j, n)), (kend - k) * sizeof(double),
                           sizeof(double));
        }
        for (std::size_t j = jb; j < jend; ++j)
          eng.load_range(a.addr_of(idx(ib, j, n)), (iend - ib) * sizeof(double),
                         sizeof(double));
        for (std::size_t j = jb; j < jend; ++j) {
          for (std::size_t l = k; l < kend; ++l) {
            const double ulj = raw[idx(l, j, n)];
            for (std::size_t i = ib; i < iend; ++i) raw[idx(i, j, n)] -= raw[idx(i, l, n)] * ulj;
          }
        }
        eng.flops(2 * (iend - ib) * (jend - jb) * nb);
        for (std::size_t j = jb; j < jend; ++j)
          eng.store_range(a.addr_of(idx(ib, j, n)), (iend - ib) * sizeof(double),
                          sizeof(double));
      }
    }
  }

  // Apply pivots to b, then forward/back substitution (element-wise).
  for (std::size_t j = 0; j < n; ++j) {
    const auto piv = static_cast<std::size_t>(ipiv.ld(j));
    if (piv != j) {
      const double tj = b.ld(j);
      const double tp = b.ld(piv);
      b.st(j, tp);
      b.st(piv, tj);
    }
  }
  for (std::size_t j = 0; j < n; ++j) {  // L y = Pb (unit diagonal)
    const double yj = b.ld(j);
    for (std::size_t i = j + 1; i < n; ++i) {
      const double lij = a.ld(idx(i, j, n));
      b.rmw(i, [&](double v) { return v - lij * yj; });
    }
    eng.flops(2 * (n - j - 1));
  }
  for (std::size_t jj = n; jj-- > 0;) {  // U x = y
    const double ujj = a.ld(idx(jj, jj, n));
    const double xj = b.ld(jj) / ujj;
    b.st(jj, xj);
    for (std::size_t i = 0; i < jj; ++i) {
      const double uij = a.ld(idx(i, jj, n));
      b.rmw(i, [&](double v) { return v - uij * xj; });
    }
    eng.flops(2 * jj + 1);
  }

  // Residual check (HPL_pdtest): regenerate the coefficient matrix into the
  // factor buffer — a full uniform store+load sweep, like the real harness —
  // and accumulate ||Ax - b||.
  std::vector<double> ax(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    const double xj = b.ld(j);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t e = idx(i, j, n);
      raw[e] = a0[e];
      ax[i] += raw[e] * xj;
    }
    // Regenerate-then-read per element: store immediately followed by load.
    eng.store_load_range(a.addr_of(idx(0, j, n)), n * sizeof(double), sizeof(double));
    eng.flops(2 * n);
  }
  eng.pf_stop();

  // ---- verification (host side, uninstrumented) ---------------------------
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) err = std::max(err, std::abs(b.raw()[i] - 1.0));
  // pdtest-style backward check: A·x against b = A·1 (row sums of the
  // regenerated matrix).
  double res_check = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double bi = 0.0;
    for (std::size_t j = 0; j < n; ++j) bi += a0[idx(i, j, n)];
    res_check = std::max(res_check, std::abs(ax[i] - bi));
  }
  WorkloadResult result;
  result.residual = err;
  result.verified =
      err < 1e-6 * static_cast<double>(n) && res_check < 1e-6 * static_cast<double>(n);
  result.detail = "HPL max |x_i - 1| = " + std::to_string(err) + ", ||Ax - b||inf = " +
                  std::to_string(res_check);
  return result;
}

}  // namespace memdis::workloads
