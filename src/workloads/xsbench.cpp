#include "workloads/xsbench.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/contract.h"
#include "common/rng.h"
#include "sim/array.h"

namespace memdis::workloads {

namespace {
constexpr std::size_t kXsChannels = 5;  // total, elastic, absorption, fission, nu-fission
}

XsbenchParams XsbenchParams::at_scale(int scale, std::uint64_t seed) {
  expects(scale == 1 || scale == 2 || scale == 4, "scale must be 1, 2 or 4");
  XsbenchParams p;
  p.seed = seed;
  p.gridpoints = scale == 1 ? 1024 : scale == 2 ? 2048 : 4096;  // memory ∝ gridpoints
  return p;
}

std::uint64_t Xsbench::footprint_bytes() const {
  const std::uint64_t nuc = params_.n_nuclides;
  const std::uint64_t g = params_.gridpoints;
  const std::uint64_t u = params_.unionized_points();
  return nuc * g * sizeof(double)                      // nuclide energy grids
         + nuc * g * kXsChannels * sizeof(double)      // nuclide XS data
         + u * sizeof(double)                          // unionized energies
         + u * nuc * sizeof(std::uint16_t);            // unionized index grid
}

WorkloadResult Xsbench::run(sim::Engine& eng) {
  const std::size_t nuc = params_.n_nuclides;
  const std::size_t g = params_.gridpoints;
  const std::size_t u_pts = params_.unionized_points();
  expects(g < 65536, "gridpoints must fit the uint16 index grid");

  sim::Array<double> nuc_energy(eng, nuc * g, memsim::MemPolicy::first_touch(), "nuc.energy");
  sim::Array<double> nuc_xs(eng, nuc * g * kXsChannels, memsim::MemPolicy::first_touch(),
                            "nuc.xs");
  sim::Array<double> u_energy(eng, u_pts, memsim::MemPolicy::first_touch(), "union.energy");
  sim::Array<std::uint16_t> u_index(eng, u_pts * nuc, memsim::MemPolicy::first_touch(),
                                    "union.index");

  // ---- p1: grid generation and unionization --------------------------------
  eng.pf_start("p1");
  Xoshiro256 rng(params_.seed);
  {
    auto ne = nuc_energy.raw_mutable();
    auto nx = nuc_xs.raw_mutable();
    std::vector<double> tmp(g);
    for (std::size_t m = 0; m < nuc; ++m) {
      for (std::size_t i = 0; i < g; ++i) tmp[i] = rng.uniform();
      std::sort(tmp.begin(), tmp.end());
      tmp.front() = 0.0;  // cover the full sampling range
      tmp.back() = 1.0;
      for (std::size_t i = 0; i < g; ++i) {
        ne[m * g + i] = tmp[i];
        eng.store(nuc_energy.addr_of(m * g + i), 8);
        for (std::size_t c = 0; c < kXsChannels; ++c)
          nx[(m * g + i) * kXsChannels + c] = rng.uniform();
        eng.store(nuc_xs.addr_of((m * g + i) * kXsChannels), 40);
      }
    }
    // Merge all nuclide grids into the unionized grid.
    auto ue = u_energy.raw_mutable();
    std::vector<double> all(ne.begin(), ne.end());
    std::sort(all.begin(), all.end());
    for (std::size_t t = 0; t < u_pts; ++t) ue[t] = all[t];
    eng.store_range(u_energy.addr_of(0), u_pts * sizeof(double), sizeof(double));
    // Index grid: simultaneous two-pointer sweep, one row store per point.
    auto ui = u_index.raw_mutable();
    std::vector<std::size_t> cursor(nuc, 0);
    for (std::size_t t = 0; t < u_pts; ++t) {
      for (std::size_t m = 0; m < nuc; ++m) {
        while (cursor[m] + 1 < g && ne[m * g + cursor[m] + 1] <= ue[t]) {
          ++cursor[m];
          eng.load(nuc_energy.addr_of(m * g + cursor[m]), 8);
        }
        ui[t * nuc + m] = static_cast<std::uint16_t>(cursor[m]);
      }
      eng.store(u_index.addr_of(t * nuc), static_cast<std::uint32_t>(nuc * 2));
    }
  }
  eng.pf_stop();

  const auto ne = nuc_energy.raw();
  const auto nx = nuc_xs.raw();
  const auto ue = u_energy.raw();
  const auto ui = u_index.raw();

  // Host-side reference lookup (per-nuclide binary search, no union grid).
  const auto reference_lookup = [&](double energy, double* out) {
    for (std::size_t c = 0; c < kXsChannels; ++c) out[c] = 0.0;
    for (std::size_t m = 0; m < nuc; ++m) {
      const double* base = &ne[m * g];
      auto it = std::upper_bound(base, base + g, energy);
      std::size_t i = it == base ? 0 : static_cast<std::size_t>(it - base) - 1;
      i = std::min(i, g - 2);
      const double e0 = base[i];
      const double e1 = base[i + 1];
      const double f = e1 > e0 ? (energy - e0) / (e1 - e0) : 0.0;
      for (std::size_t c = 0; c < kXsChannels; ++c) {
        const double x0 = nx[(m * g + i) * kXsChannels + c];
        const double x1 = nx[(m * g + i + 1) * kXsChannels + c];
        out[c] += x0 + f * (x1 - x0);
      }
    }
  };

  // ---- p2: lookup loop ------------------------------------------------------
  eng.pf_start("p2");
  Xoshiro256 prng(params_.seed + 7);
  double checksum = 0.0;
  std::vector<double> first_energies;
  std::vector<double> first_totals;
  for (std::size_t l = 0; l < params_.lookups; ++l) {
    const double energy = prng.uniform();
    // Binary search on the unionized grid (each probe is a random DRAM hit).
    std::size_t lo = 0;
    std::size_t hi = u_pts - 1;
    while (lo + 1 < hi) {
      const std::size_t mid = (lo + hi) / 2;
      eng.load(u_energy.addr_of(mid), 8);
      if (ue[mid] <= energy) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const std::size_t t = lo;
    // One contiguous row of per-nuclide indices.
    eng.load(u_index.addr_of(t * nuc), static_cast<std::uint32_t>(nuc * 2));
    double macro[kXsChannels] = {};
    for (std::size_t m = 0; m < nuc; ++m) {
      std::size_t i = ui[t * nuc + m];
      i = std::min(i, g - 2);
      eng.load(nuc_energy.addr_of(m * g + i), 16);  // e_i and e_{i+1}
      const double e0 = ne[m * g + i];
      const double e1 = ne[m * g + i + 1];
      const double f = e1 > e0 ? (energy - e0) / (e1 - e0) : 0.0;
      eng.load(nuc_xs.addr_of((m * g + i) * kXsChannels), 40);
      eng.load(nuc_xs.addr_of((m * g + i + 1) * kXsChannels), 40);
      for (std::size_t c = 0; c < kXsChannels; ++c) {
        const double x0 = nx[(m * g + i) * kXsChannels + c];
        const double x1 = nx[(m * g + i + 1) * kXsChannels + c];
        macro[c] += x0 + f * (x1 - x0);
      }
      eng.flops(3 + 3 * kXsChannels);
    }
    checksum += macro[0];
    if (first_energies.size() < 32) {
      first_energies.push_back(energy);
      first_totals.push_back(macro[0]);
    }
  }
  eng.pf_stop();

  // ---- verification: unionized result == direct per-nuclide result ---------
  bool ok = std::isfinite(checksum);
  double max_err = 0.0;
  for (std::size_t s = 0; s < first_energies.size() && ok; ++s) {
    double ref[kXsChannels];
    reference_lookup(first_energies[s], ref);
    const double err = std::abs(ref[0] - first_totals[s]);
    max_err = std::max(max_err, err);
    if (err > 1e-9) ok = false;
  }
  WorkloadResult result;
  result.verified = ok;
  result.residual = max_err;
  result.detail = "XSBench checksum " + std::to_string(checksum) +
                  ", max lookup error vs direct search " + std::to_string(max_err);
  return result;
}

}  // namespace memdis::workloads
