#include "workloads/superlu.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/contract.h"
#include "common/rng.h"
#include "sim/array.h"

namespace memdis::workloads {

SuperluParams SuperluParams::at_scale(int scale, std::uint64_t seed) {
  expects(scale == 1 || scale == 2 || scale == 4, "scale must be 1, 2 or 4");
  SuperluParams p;
  p.seed = seed;
  p.grid = scale == 1 ? 48 : scale == 2 ? 60 : 76;  // L+U nnz ∝ k³ ≈ 1:2:4
  return p;
}

std::uint64_t Superlu::footprint_bytes() const {
  const std::uint64_t n = params_.n();
  const std::uint64_t cap = n * (params_.grid + 16);  // strided per-column storage
  const std::uint64_t entry = sizeof(double) + sizeof(std::uint32_t);
  // A (5 nnz/col) + L + U + column pointers + work vectors.
  return n * 5 * entry + 2 * cap * entry + 3 * (n + 1) * sizeof(std::uint32_t) +
         3 * n * sizeof(double);
}

WorkloadResult Superlu::run(sim::Engine& eng) {
  const std::size_t k = params_.grid;
  const std::size_t n = params_.n();
  const std::size_t band = k + 1;  // natural-order grid bandwidth
  // Strided per-column factor storage: column j owns slots
  // [j·stride, (j+1)·stride). The padding between a column's fill (≤ band+1
  // entries) and the next column models supernodal storage fragmentation —
  // and is what makes stream-prefetch overshoot at column ends *useless*,
  // reproducing SuperLU's signature excess prefetch traffic (Fig. 8).
  const std::size_t stride = k + 16;
  const std::size_t cap = n * stride;

  // CSC of A: 5-point grid Laplacian, diagonally dominant.
  sim::Array<std::uint32_t> a_ptr(eng, n + 1, memsim::MemPolicy::first_touch(), "A.colptr");
  sim::Array<std::uint32_t> a_idx(eng, n * 5, memsim::MemPolicy::first_touch(), "A.rowidx");
  sim::Array<double> a_val(eng, n * 5, memsim::MemPolicy::first_touch(), "A.val");

  // L and U factors (unit-diagonal L; U holds the diagonal). l_ptr/u_ptr
  // hold per-column entry counts; starts are implicit (j·stride).
  sim::Array<std::uint32_t> l_ptr(eng, n + 1, memsim::MemPolicy::first_touch(), "L.colptr");
  sim::Array<std::uint32_t> l_idx(eng, cap, memsim::MemPolicy::first_touch(), "L.rowidx");
  sim::Array<double> l_val(eng, cap, memsim::MemPolicy::first_touch(), "L.val");
  sim::Array<std::uint32_t> u_ptr(eng, n + 1, memsim::MemPolicy::first_touch(), "U.colptr");
  sim::Array<std::uint32_t> u_idx(eng, cap, memsim::MemPolicy::first_touch(), "U.rowidx");
  sim::Array<double> u_val(eng, cap, memsim::MemPolicy::first_touch(), "U.val");

  // ---- p1: assembly ---------------------------------------------------------
  eng.pf_start("p1");
  Xoshiro256 rng(params_.seed);
  {
    auto ptr = a_ptr.raw_mutable();
    auto idx = a_idx.raw_mutable();
    auto val = a_val.raw_mutable();
    std::uint32_t nz = 0;
    for (std::size_t col = 0; col < n; ++col) {
      const std::size_t ci = col / k;
      const std::size_t cj = col % k;
      ptr[col] = nz;
      eng.store(a_ptr.addr_of(col), 4);
      const auto push = [&](std::size_t row, double v) {
        idx[nz] = static_cast<std::uint32_t>(row);
        val[nz] = v;
        eng.store(a_idx.addr_of(nz), 4);
        eng.store(a_val.addr_of(nz), 8);
        ++nz;
      };
      // Column entries in ascending row order; symmetric pattern.
      double off_sum = 0.0;
      const double w_n = ci > 0 ? -(1.0 + 0.2 * rng.uniform()) : 0.0;
      const double w_w = cj > 0 ? -(1.0 + 0.2 * rng.uniform()) : 0.0;
      const double w_e = cj + 1 < k ? -(1.0 + 0.2 * rng.uniform()) : 0.0;
      const double w_s = ci + 1 < k ? -(1.0 + 0.2 * rng.uniform()) : 0.0;
      off_sum = std::abs(w_n) + std::abs(w_w) + std::abs(w_e) + std::abs(w_s);
      if (w_n != 0.0) push(col - k, w_n);
      if (w_w != 0.0) push(col - 1, w_w);
      push(col, off_sum + 1.0);  // strict diagonal dominance
      if (w_e != 0.0) push(col + 1, w_e);
      if (w_s != 0.0) push(col + k, w_s);
    }
    ptr[n] = nz;
    eng.store(a_ptr.addr_of(n), 4);
  }
  eng.pf_stop();

  const auto aptr = a_ptr.raw();
  const auto aidx = a_idx.raw();
  const auto aval = a_val.raw();
  auto lptr = l_ptr.raw_mutable();
  auto lidx = l_idx.raw_mutable();
  auto lval = l_val.raw_mutable();
  auto uptr = u_ptr.raw_mutable();
  auto uidxr = u_idx.raw_mutable();
  auto uvalr = u_val.raw_mutable();

  // ---- p2: left-looking factorization --------------------------------------
  eng.pf_start("p2");
  std::vector<double> work(n, 0.0);      // dense accumulator (cache resident)
  std::vector<std::uint8_t> occupied(n, 0);
  // Host-side per-column entry counts (the sim-side lptr/uptr counts are
  // written as each column finishes, so reads during factorization use these).
  std::vector<std::uint32_t> lcnt(n, 0);
  std::vector<std::uint32_t> ucnt(n, 0);
  std::uint32_t lnz = 0;
  std::uint32_t unz = 0;
  bool overflow = false;
  for (std::size_t j = 0; j < n && !overflow; ++j) {
    const std::size_t lo = j >= band ? j - band : 0;
    const std::size_t hi = std::min(j + band + 1, n);
    // Scatter A(:,j) into the work array (stream the column in: the
    // rowidx/val entries advance in lockstep — a paired 4 B + 8 B sweep).
    for (std::uint32_t t = aptr[j]; t < aptr[j + 1]; ++t) {
      work[aidx[t]] = aval[t];
      occupied[aidx[t]] = 1;
    }
    eng.load_pair_range(a_idx.addr_of(aptr[j]), 4, a_val.addr_of(aptr[j]), 8,
                        aptr[j + 1] - aptr[j]);
    // Left-looking update: for each finished column i in the reach (ascending
    // row order is topological for this banded, statically-pivoted matrix),
    // apply L(:,i) scaled by the solved U entry x_i.
    for (std::size_t i = lo; i < j; ++i) {
      if (!occupied[i] || work[i] == 0.0) continue;
      const double xi = work[i];
      const auto cb = static_cast<std::uint32_t>(i * stride);
      const std::uint32_t ce = cb + lcnt[i];
      for (std::uint32_t t = cb; t < ce; ++t) {
        const std::uint32_t row = lidx[t];
        work[row] -= lval[t] * xi;
        occupied[row] = 1;
      }
      if (ce > cb)
        eng.load_pair_range(l_idx.addr_of(cb), 4, l_val.addr_of(cb), 8, ce - cb);
      eng.flops(2 * (ce - cb));
    }
    // Static pivot on the (dominant) diagonal.
    const double diag = work[j];
    if (diag == 0.0) {
      overflow = true;
      break;
    }
    // Emit U(:,j) = finalized entries at rows ≤ j, L(:,j) = rows > j scaled.
    // Each emitted entry is a rowidx/val store pair at consecutive slots;
    // the pairs are batched after the host-side emit (same access stream:
    // nothing else touches the simulator between entries).
    for (std::size_t i = lo; i <= j && !overflow; ++i) {
      if (!occupied[i]) continue;
      const std::size_t slot = j * stride + ucnt[j];
      if (ucnt[j] >= stride) {
        overflow = true;
        break;
      }
      uidxr[slot] = static_cast<std::uint32_t>(i);
      uvalr[slot] = work[i];
      ++ucnt[j];
      ++unz;
      work[i] = 0.0;
      occupied[i] = 0;
    }
    if (ucnt[j] > 0)
      eng.store_pair_range(u_idx.addr_of(j * stride), 4, u_val.addr_of(j * stride), 8,
                           ucnt[j]);
    uptr[j] = ucnt[j];
    eng.store(u_ptr.addr_of(j), 4);
    // L's emit stays element-wise: the per-entry flops(1) (the scaling
    // divide) is interleaved between the stores, and an epoch closing
    // mid-column must see the exact flop count at that access.
    for (std::size_t i = j + 1; i < hi && !overflow; ++i) {
      if (!occupied[i]) continue;
      const std::size_t slot = j * stride + lcnt[j];
      if (lcnt[j] >= stride) {
        overflow = true;
        break;
      }
      lidx[slot] = static_cast<std::uint32_t>(i);
      lval[slot] = work[i] / diag;
      eng.store(l_idx.addr_of(slot), 4);
      eng.store(l_val.addr_of(slot), 8);
      ++lcnt[j];
      ++lnz;
      eng.flops(1);
      work[i] = 0.0;
      occupied[i] = 0;
    }
    lptr[j] = lcnt[j];
    eng.store(l_ptr.addr_of(j), 4);
  }
  lptr[n] = lnz;
  uptr[n] = unz;
  eng.pf_stop();

  if (overflow) return {false, "SuperLU: fill-in exceeded the column capacity", 0.0};

  // ---- p3: triangular solves A x = b ---------------------------------------
  eng.pf_start("p3");
  std::vector<double> bref(n);
  Xoshiro256 brng(params_.seed + 1);
  for (std::size_t i = 0; i < n; ++i) bref[i] = brng.uniform(-1.0, 1.0);
  std::vector<double> xsol = bref;
  // Forward: L y = b (unit diagonal), columns left to right.
  for (std::size_t j = 0; j < n; ++j) {
    const double yj = xsol[j];
    const auto cb = static_cast<std::uint32_t>(j * stride);
    const std::uint32_t ce = cb + lcnt[j];
    for (std::uint32_t t = cb; t < ce; ++t) xsol[lidx[t]] -= lval[t] * yj;
    if (ce > cb) eng.load_pair_range(l_idx.addr_of(cb), 4, l_val.addr_of(cb), 8, ce - cb);
    eng.flops(2 * (ce - cb));
  }
  // Backward: U x = y, columns right to left (diagonal is U's last entry).
  for (std::size_t jj = n; jj-- > 0;) {
    const auto cb = static_cast<std::uint32_t>(jj * stride);
    const std::uint32_t ce = cb + ucnt[jj];
    expects(ce > cb && uidxr[ce - 1] == jj, "U column must end at the diagonal");
    eng.load(u_val.addr_of(ce - 1), 8);
    const double xj = xsol[jj] / uvalr[ce - 1];
    xsol[jj] = xj;
    for (std::uint32_t t = cb; t + 1 < ce; ++t) xsol[uidxr[t]] -= uvalr[t] * xj;
    if (ce - 1 > cb)
      eng.load_pair_range(u_idx.addr_of(cb), 4, u_val.addr_of(cb), 8, ce - 1 - cb);
    eng.flops(2 * (ce - cb));
  }
  eng.pf_stop();

  // ---- verification: residual of the original system -----------------------
  std::vector<double> ax(n, 0.0);
  for (std::size_t col = 0; col < n; ++col)
    for (std::uint32_t t = aptr[col]; t < aptr[col + 1]; ++t)
      ax[aidx[t]] += aval[t] * xsol[col];
  double err = 0.0;
  double xmax = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    err = std::max(err, std::abs(ax[i] - bref[i]));
    xmax = std::max(xmax, std::abs(xsol[i]));
  }
  WorkloadResult result;
  result.residual = err / std::max(xmax, 1.0);
  result.verified = result.residual < 1e-9 * static_cast<double>(n);
  result.detail = "SuperLU ‖Ax-b‖∞/‖x‖∞ = " + std::to_string(result.residual) +
                  ", nnz(L)=" + std::to_string(lnz) + ", nnz(U)=" + std::to_string(unz);
  return result;
}

}  // namespace memdis::workloads
