// XSBench: Monte Carlo neutron transport proxy — macroscopic cross-section
// lookups on a unionized energy grid (paper: "large", 2M particles,
// 11303/22606/45212 gridpoints).
//
// Memory behaviour: large grid structures of which only the sampled lookup
// path is touched (strongly skewed scaling curve, Fig. 6f, stable across
// input sizes because the lookup count is fixed); random binary-search
// probes give the lowest prefetch accuracy and <1% coverage of the six
// apps (Fig. 8) → latency-bound, so minimizing remote exposure beats
// adding remote bandwidth (Sec. 5.1).
//
// Phases: p1 = grid generation + unionization, p2 = lookup loop.
#pragma once

#include "workloads/workload.h"

namespace memdis::workloads {

// Proportions mirror the paper's "large" problem: the unionized index grid
// dominates the footprint (and spills to the pool under first-touch), while
// the per-nuclide grids — which dominate the *per-lookup traffic*, since a
// macroscopic lookup reads every nuclide — are small and allocated first,
// staying node-local. That is what keeps XSBench's remote access ratio
// below ~6% in every configuration (Sec. 5.1).
struct XsbenchParams {
  std::size_t n_nuclides = 64;
  std::size_t gridpoints = 1024;  ///< per-nuclide energy gridpoints
  std::size_t lookups = 15000;
  std::uint64_t seed = 42;

  [[nodiscard]] std::size_t unionized_points() const { return n_nuclides * gridpoints; }

  [[nodiscard]] static XsbenchParams at_scale(int scale, std::uint64_t seed);
};

class Xsbench final : public Workload {
 public:
  explicit Xsbench(const XsbenchParams& params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "XSBench"; }
  [[nodiscard]] std::uint64_t footprint_bytes() const override;
  WorkloadResult run(sim::Engine& eng) override;
  [[nodiscard]] std::string functional_id() const override {
    return "XSBench/n_nuclides=" + std::to_string(params_.n_nuclides) +
           "/gridpoints=" + std::to_string(params_.gridpoints) +
           "/lookups=" + std::to_string(params_.lookups) +
           "/seed=" + std::to_string(params_.seed);
  }

 private:
  XsbenchParams params_;
};

}  // namespace memdis::workloads
