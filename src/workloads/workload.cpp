#include "workloads/workload.h"

#include "common/contract.h"
#include "workloads/bfs.h"
#include "workloads/hpl.h"
#include "workloads/hypre.h"
#include "workloads/nekrs.h"
#include "workloads/superlu.h"
#include "workloads/xsbench.h"

namespace memdis::workloads {

const char* app_name(App app) {
  switch (app) {
    case App::kHPL:
      return "HPL";
    case App::kSuperLU:
      return "SuperLU";
    case App::kNekRS:
      return "NekRS";
    case App::kHypre:
      return "Hypre";
    case App::kBFS:
      return "BFS";
    case App::kXSBench:
      return "XSBench";
  }
  return "?";
}

std::unique_ptr<Workload> make_workload(App app, int scale, std::uint64_t seed) {
  expects(scale == 1 || scale == 2 || scale == 4, "scale must be 1, 2 or 4");
  switch (app) {
    case App::kHPL:
      return std::make_unique<Hpl>(HplParams::at_scale(scale, seed));
    case App::kSuperLU:
      return std::make_unique<Superlu>(SuperluParams::at_scale(scale, seed));
    case App::kNekRS:
      return std::make_unique<Nekrs>(NekrsParams::at_scale(scale, seed));
    case App::kHypre:
      return std::make_unique<Hypre>(HypreParams::at_scale(scale, seed));
    case App::kBFS:
      return std::make_unique<Bfs>(BfsParams::at_scale(scale, seed));
    case App::kXSBench:
      return std::make_unique<Xsbench>(XsbenchParams::at_scale(scale, seed));
  }
  throw contract_violation("unknown app");
}

}  // namespace memdis::workloads
