// Hypre: high-performance preconditioned conjugate gradient on a structured
// 2D 5-point stencil (the paper drives hypre's structured interface via
// example ex4; paper inputs n=6300 with 1/2/4 ranks).
//
// Memory behaviour: uniform streaming over vectors and stencil coefficients
// (near-diagonal scaling curve, Fig. 6e), low arithmetic intensity → memory
// bound, the highest interference sensitivity of the six apps (Fig. 10).
//
// Phases: p1 = problem setup, p2 = PCG solve.
#pragma once

#include "workloads/workload.h"

namespace memdis::workloads {

struct HypreParams {
  std::size_t grid = 192;       ///< grid is grid×grid points
  std::size_t iterations = 12;  ///< fixed PCG iteration budget
  std::uint64_t seed = 42;

  [[nodiscard]] static HypreParams at_scale(int scale, std::uint64_t seed);
};

class Hypre final : public Workload {
 public:
  explicit Hypre(const HypreParams& params) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "Hypre"; }
  [[nodiscard]] std::uint64_t footprint_bytes() const override;
  WorkloadResult run(sim::Engine& eng) override;
  [[nodiscard]] std::string functional_id() const override {
    return "Hypre/grid=" + std::to_string(params_.grid) +
           "/iterations=" + std::to_string(params_.iterations) +
           "/seed=" + std::to_string(params_.seed);
  }

 private:
  HypreParams params_;
};

}  // namespace memdis::workloads
