// Minimal CSV writer so bench binaries can optionally dump machine-readable
// series (one file per figure) next to the human-readable tables.
#pragma once

#include <fstream>
#include <ostream>
#include <string>
#include <vector>

namespace memdis {

/// Streams rows to a CSV file or stream; values are escaped per RFC 4180
/// when needed.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes to an existing stream (not owned); emits the header row.
  CsvWriter(std::ostream& os, const std::vector<std::string>& header);

  // out_ may point at the writer's own file_ member, so default copy/move
  // would leave it dangling.
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void add_row(const std::vector<std::string>& row);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  void write_row(const std::vector<std::string>& row);
  static std::string escape(const std::string& field);

  std::ofstream file_;       ///< backing file when constructed from a path
  std::ostream* out_;        ///< the active sink (file_ or a borrowed stream)
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace memdis
