// Minimal CSV writer so bench binaries can optionally dump machine-readable
// series (one file per figure) next to the human-readable tables.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace memdis {

/// Streams rows to a CSV file; values are escaped per RFC 4180 when needed.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& row);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  void write_row(const std::vector<std::string>& row);
  static std::string escape(const std::string& field);

  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace memdis
