// parallel_for: the repository's std::thread worker pool for embarrassingly
// parallel index spaces (sweep tasks, batched runs).
//
// Work is handed out through an atomic cursor, so the *assignment* of task
// to thread is racy by design — callers must make each task fully
// self-contained (own RNG stream, own output slot) so results are identical
// for any jobs count. The first exception thrown by any task is captured
// and rethrown on the calling thread after all workers join.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace memdis {

/// Executes fn(0) .. fn(n-1) on `jobs` threads. jobs <= 1 runs inline on
/// the calling thread (no pool); jobs == 0 uses hardware_concurrency().
template <typename Fn>
void parallel_for(std::size_t n, unsigned jobs, Fn&& fn) {
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> cursor{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> threads;
  const unsigned nthreads = static_cast<unsigned>(std::min<std::size_t>(jobs, n));
  threads.reserve(nthreads);
  for (unsigned t = 0; t < nthreads; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace memdis
