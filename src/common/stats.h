// Streaming and batch statistics used throughout the profiler and the
// scheduler study (five-number summaries for Fig. 13, percentiles, etc.).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace memdis {

/// Welford's online algorithm: numerically stable streaming mean/variance.
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolation percentile (the "type 7" estimator used by numpy).
/// Precondition: !xs.empty() and 0 <= q <= 1. Does not require sorted
/// input — it copies and sorts on every call. Callers taking several
/// quantiles of the same data should sort once and use percentile_sorted.
[[nodiscard]] double percentile(std::span<const double> xs, double q);

/// percentile() over input the caller has already sorted ascending; no
/// copy, no sort. Identical interpolation, so for the same data the two
/// return bit-identical values.
[[nodiscard]] double percentile_sorted(std::span<const double> sorted, double q);

/// Box-plot style five-number summary: min, q1, median, q3, max.
struct FiveNumber {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
};

/// Computes the five-number summary of `xs`. Precondition: !xs.empty().
[[nodiscard]] FiveNumber five_number_summary(std::span<const double> xs);

/// Arithmetic mean. Precondition: !xs.empty().
[[nodiscard]] double mean_of(std::span<const double> xs);

/// Ordinary least-squares slope/intercept fit of y on x, plus R^2.
/// Precondition: xs.size() == ys.size() and xs.size() >= 2.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};
[[nodiscard]] LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

}  // namespace memdis
