// Fixed-width ASCII table printer used by the benchmark harness to emit
// paper-style rows (one table/figure per bench binary).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace memdis {

/// Builds and prints a simple aligned table:
///
///   Table t({"app", "phase", "%remote"});
///   t.add_row({"BFS", "p2", "99.1"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row. Precondition: row.size() == number of columns.
  void add_row(std::vector<std::string> row);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders the table with a separator line under the header.
  void print(std::ostream& os) const;

  /// Convenience: formats a double with `prec` decimals.
  [[nodiscard]] static std::string num(double v, int prec = 2);

  /// Convenience: formats a ratio as a percentage string, e.g. "42.3%".
  [[nodiscard]] static std::string pct(double ratio, int prec = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace memdis
