#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/contract.h"

namespace memdis {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  expects(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  expects(row.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string Table::pct(double ratio, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", prec, ratio * 100.0);
  return buf;
}

}  // namespace memdis
