// Byte-stable artifact formatting shared by every CSV/JSON writer whose
// output is golden-gated (the sweep engine, the fleet simulator).
//
// The determinism contract across the repository is *byte* identity — a
// parallel run must produce the same artifact bytes as a serial one, and a
// rebuilt artifact must match the committed golden. That makes double
// formatting part of the contract: the helpers here render every double as
// the shortest of %.15g/%.16g/%.17g that strtod's back to the exact same
// bit pattern, so values round-trip without trailing noise and the same
// double always prints the same bytes.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace memdis {

/// Shortest round-trip rendering of `v`: %.17g always round-trips, but
/// prefers the shortest of %.15g/%.16g/%.17g that parses back exactly, so
/// artifacts avoid gratuitous trailing digits while staying bit-exact.
inline std::string format_double(double v) {
  char buf[64];
  for (const int prec : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace memdis
