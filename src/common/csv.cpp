#include "common/csv.h"

#include <stdexcept>

#include "common/contract.h"

namespace memdis {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : file_(path), out_(&file_), columns_(header.size()) {
  if (!file_) throw std::runtime_error("CsvWriter: cannot open " + path);
  expects(columns_ > 0, "csv needs at least one column");
  write_row(header);
}

CsvWriter::CsvWriter(std::ostream& os, const std::vector<std::string>& header)
    : out_(&os), columns_(header.size()) {
  expects(columns_ > 0, "csv needs at least one column");
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  expects(row.size() == columns_, "csv row width mismatch");
  write_row(row);
  ++rows_;
}

void CsvWriter::write_row(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    *out_ << escape(row[i]);
    if (i + 1 < row.size()) *out_ << ',';
  }
  *out_ << '\n';
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char ch : field) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace memdis
