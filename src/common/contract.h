// Narrow-contract helpers (C++ Core Guidelines I.6/I.8 style).
//
// `expects` checks preconditions, `ensures` checks postconditions. Both are
// always-on (they guard simulator invariants, not hot inner loops) and throw
// `contract_violation` so tests can assert on misuse.
#pragma once

#include <stdexcept>
#include <string>

namespace memdis {

/// Thrown when a precondition or postcondition is violated.
class contract_violation : public std::logic_error {
 public:
  explicit contract_violation(const std::string& what) : std::logic_error(what) {}
};

/// Precondition check: throws contract_violation when `cond` is false.
inline void expects(bool cond, const char* msg) {
  if (!cond) throw contract_violation(std::string("precondition violated: ") + msg);
}

/// Postcondition check: throws contract_violation when `cond` is false.
inline void ensures(bool cond, const char* msg) {
  if (!cond) throw contract_violation(std::string("postcondition violated: ") + msg);
}

}  // namespace memdis
