// Deterministic, seedable random number generation for all simulators.
//
// Uses SplitMix64 for seeding and xoshiro256** as the main generator —
// fast, high quality, and fully reproducible across platforms (unlike
// std::default_random_engine, whose stream is implementation-defined).
#pragma once

#include <array>
#include <cstdint>
#include <cmath>

#include "common/contract.h"

namespace memdis {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the repository-wide PRNG. Satisfies
/// std::uniform_random_bit_generator so it can drive <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9d2c5680u) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t uniform_below(std::uint64_t n) {
    expects(n > 0, "uniform_below requires n > 0");
    // Lemire's multiply-shift rejection method for an unbiased result.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace memdis
