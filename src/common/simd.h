// SIMD portability shim for the simulator's innermost loop: the
// set-associative way scan over the dense struct-of-arrays tag/LRU planes
// (cachesim/cache.h). Two primitives cover every probe the hierarchy
// performs:
//
//   find_equal_except  — first way whose 8-byte tag equals the probe tag
//                        (the hit scan behind find()/contains()),
//   argmin_first       — first way holding the minimum LRU tick
//                        (the victim scan behind fill_absent()).
//
// The instruction set is selected at compile time from what the build
// targets (CMake's MEMDIS_SIMD option probes the build host and adds
// -mavx2 when both compiler and host support it):
//
//   ISA     | find_equal_except  | argmin_first
//   --------+--------------------+------------------------------------
//   AVX2    | 4 tags / compare   | 4 ticks / compare, two-pass
//   SSE2    | 2 tags / compare   | scalar (no 64-bit compare pre-SSE4)
//   NEON    | 2 tags / compare   | 2 ticks / compare, two-pass (aarch64)
//   scalar  | way loop           | way loop
//
// Every wide path is *observably identical* to the scalar loop it
// replaces: tags are unique within a set, so "any matching lane" is "the
// first matching way", and the argmin reduction resolves ties to the
// lowest index — the exact victim the scalar `<` scan picks. A process-
// wide kill switch (memdis::set_simd_enabled(false)) forces the scalar
// loops at runtime so differential tests can byte-compare the two paths
// in one binary; building with -DMEMDIS_SIMD=OFF removes the wide code
// entirely. Design notes: docs/HOTPATH.md.
#pragma once

#include <cstdint>

#if !defined(MEMDIS_SIMD_DISABLED)
#if defined(__AVX2__)
#define MEMDIS_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64)
#define MEMDIS_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define MEMDIS_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace memdis {

namespace simd_detail {
/// Process-wide runtime kill switch (default on). Not thread-safe to flip
/// while engines are running — it exists for differential tests and the
/// hot-path bench, which toggle it between whole runs.
inline bool g_simd_enabled = true;
}  // namespace simd_detail

/// True when the vectorized probe paths are active. Always false in a
/// -DMEMDIS_SIMD=OFF build or on targets with no wide 64-bit compare.
[[nodiscard]] inline bool simd_enabled() { return simd_detail::g_simd_enabled; }
/// Runtime kill switch: `false` forces the scalar way loops everywhere
/// (the forced-scalar half of the differential suite).
inline void set_simd_enabled(bool on) { simd_detail::g_simd_enabled = on; }

namespace simd {

#if defined(MEMDIS_SIMD_AVX2)
inline constexpr const char* kIsaName = "avx2";
#elif defined(MEMDIS_SIMD_SSE2)
inline constexpr const char* kIsaName = "sse2";
#elif defined(MEMDIS_SIMD_NEON)
inline constexpr const char* kIsaName = "neon";
#else
inline constexpr const char* kIsaName = "scalar";
#endif

/// Compile-time capability of the selected ISA (what the fallback matrix
/// above documents). Dead-code-eliminates the wide branches when false.
inline constexpr bool kVectorFind =
#if defined(MEMDIS_SIMD_AVX2) || defined(MEMDIS_SIMD_SSE2) || defined(MEMDIS_SIMD_NEON)
    true;
#else
    false;
#endif
inline constexpr bool kVectorArgmin =
#if defined(MEMDIS_SIMD_AVX2) || defined(MEMDIS_SIMD_NEON)
    true;
#else
    false;
#endif

/// Sentinel for find_equal_except when no way was pre-probed.
inline constexpr std::uint32_t kNoSkip = ~std::uint32_t{0};

// ---- scalar reference loops -------------------------------------------------
// These are the semantics: every wide implementation below must return the
// same index on the same input (given the xs[skip] != key caller contract).

inline std::uint32_t find_equal_scalar(const std::uint64_t* xs, std::uint32_t n,
                                       std::uint64_t key, std::uint32_t skip) {
  for (std::uint32_t i = 0; i < n; ++i) {
    if (xs[i] == key && i != skip) return i;
  }
  return n;
}

inline std::uint32_t argmin_first_scalar(const std::uint64_t* xs, std::uint32_t n) {
  std::uint32_t best = 0;
  for (std::uint32_t i = 1; i < n; ++i) {
    if (xs[i] < xs[best]) best = i;
  }
  return best;
}

// ---- wide implementations ---------------------------------------------------

#if defined(MEMDIS_SIMD_AVX2)

/// First index with xs[i] == key, else n. Any-lane match is first-way
/// match because the caller's tags are unique within the scanned row.
inline std::uint32_t find_equal_wide(const std::uint64_t* xs, std::uint32_t n,
                                     std::uint64_t key) {
  const __m256i k = _mm256_set1_epi64x(static_cast<long long>(key));
  std::uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + i));
    const int m = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, k)));
    if (m != 0) return i + static_cast<std::uint32_t>(__builtin_ctz(static_cast<unsigned>(m)));
  }
  for (; i < n; ++i) {
    if (xs[i] == key) return i;
  }
  return n;
}

/// Index of the first minimum. Two passes: a branch-free reduction to the
/// minimum value (XOR with the sign bit turns unsigned order into the
/// signed order AVX2's 64-bit compare speaks), then the first lane equal
/// to it — which is exactly the scalar `<` scan's tie-break to the lowest
/// index.
inline std::uint32_t argmin_first_wide(const std::uint64_t* xs, std::uint32_t n) {
  constexpr std::uint64_t kSignBit = 0x8000000000000000ULL;
  std::uint64_t min_v;
  std::uint32_t i;
  if (n >= 4) {
    const __m256i bias = _mm256_set1_epi64x(static_cast<long long>(kSignBit));
    __m256i vmin =
        _mm256_xor_si256(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs)), bias);
    for (i = 4; i + 4 <= n; i += 4) {
      const __m256i v =
          _mm256_xor_si256(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + i)), bias);
      vmin = _mm256_blendv_epi8(vmin, v, _mm256_cmpgt_epi64(vmin, v));
    }
    alignas(32) std::uint64_t lane[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane), vmin);
    min_v = lane[0] ^ kSignBit;
    for (int j = 1; j < 4; ++j) {
      const std::uint64_t u = lane[j] ^ kSignBit;
      if (u < min_v) min_v = u;
    }
  } else {
    min_v = xs[0];
    i = 1;
  }
  for (; i < n; ++i) {
    if (xs[i] < min_v) min_v = xs[i];
  }
  return find_equal_wide(xs, n, min_v);
}

#elif defined(MEMDIS_SIMD_SSE2)

/// SSE2 has no 64-bit integer compare; equality of a 64-bit lane is the
/// AND of its two 32-bit halves' equalities (cmpeq_epi32 + half swap).
inline std::uint32_t find_equal_wide(const std::uint64_t* xs, std::uint32_t n,
                                     std::uint64_t key) {
  const __m128i k = _mm_set1_epi64x(static_cast<long long>(key));
  std::uint32_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(xs + i));
    const __m128i eq32 = _mm_cmpeq_epi32(v, k);
    const __m128i eq64 = _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
    const int m = _mm_movemask_pd(_mm_castsi128_pd(eq64));
    if (m != 0) return i + ((m & 1) != 0 ? 0u : 1u);
  }
  if (i < n && xs[i] == key) return i;
  return n;
}

// No argmin_first_wide: ordered 64-bit compares predate nothing in SSE2
// (first in SSE4.2), so the victim scan stays scalar on this tier.

#elif defined(MEMDIS_SIMD_NEON)

inline std::uint32_t find_equal_wide(const std::uint64_t* xs, std::uint32_t n,
                                     std::uint64_t key) {
  const uint64x2_t k = vdupq_n_u64(key);
  std::uint32_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t eq = vceqq_u64(vld1q_u64(xs + i), k);
    if (vgetq_lane_u64(eq, 0) != 0) return i;
    if (vgetq_lane_u64(eq, 1) != 0) return i + 1;
  }
  if (i < n && xs[i] == key) return i;
  return n;
}

/// Same two-pass shape as the AVX2 reduction; aarch64 NEON compares
/// unsigned 64-bit lanes directly (vcgtq_u64), so no sign-bias is needed.
inline std::uint32_t argmin_first_wide(const std::uint64_t* xs, std::uint32_t n) {
  std::uint64_t min_v;
  std::uint32_t i;
  if (n >= 2) {
    uint64x2_t vmin = vld1q_u64(xs);
    for (i = 2; i + 2 <= n; i += 2) {
      const uint64x2_t v = vld1q_u64(xs + i);
      vmin = vbslq_u64(vcgtq_u64(vmin, v), v, vmin);
    }
    const std::uint64_t lo = vgetq_lane_u64(vmin, 0);
    const std::uint64_t hi = vgetq_lane_u64(vmin, 1);
    min_v = lo < hi ? lo : hi;
  } else {
    min_v = xs[0];
    i = 1;
  }
  for (; i < n; ++i) {
    if (xs[i] < min_v) min_v = xs[i];
  }
  return find_equal_wide(xs, n, min_v);
}

#endif

// ---- dispatching entry points (what cachesim calls) -------------------------

/// First index in [0, n) with xs[i] == key, excluding index `skip`; n when
/// absent. Caller contract on the wide path: when `skip != kNoSkip`, the
/// caller has already established xs[skip] != key (the failed MRU-hint
/// probe), so the wide compare covers that lane for free without a
/// separate re-compare and cannot return it. The scalar loop skips the
/// index explicitly — either way each tag is compared exactly once.
inline std::uint32_t find_equal_except(const std::uint64_t* xs, std::uint32_t n,
                                       std::uint64_t key, std::uint32_t skip) {
#if defined(MEMDIS_SIMD_AVX2) || defined(MEMDIS_SIMD_SSE2) || defined(MEMDIS_SIMD_NEON)
  if (simd_enabled()) return find_equal_wide(xs, n, key);
#endif
  return find_equal_scalar(xs, n, key, skip);
}

/// Index of the first minimum of xs[0..n): the set-associative victim scan
/// (invalid ways carry LRU tick 0, so the first zero is the first free
/// way). Ties resolve to the lowest index on every path.
inline std::uint32_t argmin_first(const std::uint64_t* xs, std::uint32_t n) {
#if defined(MEMDIS_SIMD_AVX2) || defined(MEMDIS_SIMD_NEON)
  if (simd_enabled()) return argmin_first_wide(xs, n);
#endif
  return argmin_first_scalar(xs, n);
}

}  // namespace simd
}  // namespace memdis
