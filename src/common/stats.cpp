#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/contract.h"

namespace memdis {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile_sorted(std::span<const double> sorted, double q) {
  expects(!sorted.empty(), "percentile of empty range");
  expects(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double percentile(std::span<const double> xs, double q) {
  expects(!xs.empty(), "percentile of empty range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

FiveNumber five_number_summary(std::span<const double> xs) {
  expects(!xs.empty(), "five_number_summary of empty range");
  // One sort serves all five quantiles; same sorted sequence as five
  // independent percentile() calls, so the values are bit-identical.
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  FiveNumber f;
  f.min = percentile_sorted(sorted, 0.0);
  f.q1 = percentile_sorted(sorted, 0.25);
  f.median = percentile_sorted(sorted, 0.5);
  f.q3 = percentile_sorted(sorted, 0.75);
  f.max = percentile_sorted(sorted, 1.0);
  return f;
}

double mean_of(std::span<const double> xs) {
  expects(!xs.empty(), "mean of empty range");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  expects(xs.size() == ys.size(), "linear_fit size mismatch");
  expects(xs.size() >= 2, "linear_fit needs at least two points");
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    fit.slope = 0.0;
    fit.intercept = sy / n;
    fit.r2 = 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - (fit.slope * xs[i] + fit.intercept);
    ss_res += r * r;
  }
  fit.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace memdis
