// Unit constants and formatting helpers. Capacities are binary (GiB etc.),
// bandwidths are decimal GB/s — matching how the paper reports them.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

namespace memdis {

/// log2 of a power of two — the shift behind the simulators' line/page/set
/// address math (callers validate the power-of-two precondition).
[[nodiscard]] constexpr std::uint32_t log2_pow2(std::uint64_t v) {
  return static_cast<std::uint32_t>(std::bit_width(v) - 1);
}

inline constexpr std::uint64_t KiB = 1024ULL;
inline constexpr std::uint64_t MiB = 1024ULL * KiB;
inline constexpr std::uint64_t GiB = 1024ULL * MiB;

inline constexpr double KB = 1e3;
inline constexpr double MB = 1e6;
inline constexpr double GB = 1e9;

/// Converts a bandwidth expressed in GB/s (decimal) to bytes per second.
[[nodiscard]] constexpr double gbps_to_bytes_per_sec(double gbps) { return gbps * GB; }

/// Converts bytes per second to GB/s (decimal).
[[nodiscard]] constexpr double bytes_per_sec_to_gbps(double bps) { return bps / GB; }

/// Nanoseconds to seconds.
[[nodiscard]] constexpr double ns_to_s(double ns) { return ns * 1e-9; }

/// Seconds to nanoseconds.
[[nodiscard]] constexpr double s_to_ns(double s) { return s * 1e9; }

/// Human-readable byte count, e.g. "512.0 MiB".
[[nodiscard]] inline std::string format_bytes(double bytes) {
  const char* suffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int idx = 0;
  while (bytes >= 1024.0 && idx < 4) {
    bytes /= 1024.0;
    ++idx;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", bytes, suffix[idx]);
  return buf;
}

}  // namespace memdis
