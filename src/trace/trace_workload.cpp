#include "trace/trace_workload.h"

#include <filesystem>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "common/contract.h"

namespace memdis::trace {

namespace {

/// Detaches the sink even when the wrapped run throws — a dangling sink
/// pointer on the engine would outlive the writer.
class ScopedSink {
 public:
  ScopedSink(sim::Engine& eng, sim::TraceSink* sink) : eng_(eng) {
    eng_.set_trace_sink(sink);
  }
  ~ScopedSink() { eng_.set_trace_sink(nullptr); }
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  sim::Engine& eng_;
};

}  // namespace

TraceRecordWorkload::TraceRecordWorkload(std::unique_ptr<workloads::Workload> inner,
                                         std::string app, int scale, std::uint64_t seed,
                                         std::string path)
    : inner_(std::move(inner)),
      app_(std::move(app)),
      scale_(scale),
      seed_(seed),
      path_(std::move(path)) {
  expects(inner_ != nullptr, "recording a null workload");
}

workloads::WorkloadResult TraceRecordWorkload::run(sim::Engine& eng) {
  TraceWriter writer;
  workloads::WorkloadResult result;
  {
    ScopedSink attach(eng, &writer);
    result = inner_->run(eng);
  }
  writer.finish();

  TraceData data;
  data.app = app_;
  data.scale = scale_;
  data.seed = seed_;
  data.workload_name = inner_->name();
  data.footprint_bytes = inner_->footprint_bytes();
  data.verified = result.verified;
  data.residual = result.residual;
  data.detail = result.detail;
  data.record_count = writer.record_count();
  data.payload = writer.take_payload();
  data.save_atomic(path_);
  return result;
}

workloads::WorkloadResult TraceReplayWorkload::run(sim::Engine& eng) {
  TraceCursor cursor(data_);
  TraceRecord rec;
  // Recorded base → live VRange. The bump allocator makes bases unique per
  // run, and machine-independent, so equality with the recording is both
  // checkable and required.
  std::unordered_map<std::uint64_t, memsim::VRange> ranges;
  while (cursor.next(rec)) {
    switch (rec.op) {
      case TraceOp::kAlloc: {
        const memsim::VRange r = eng.alloc(rec.a, rec.policy, rec.text);
        if (r.base != rec.b) {
          throw std::runtime_error(
              "trace replay diverged: allocation '" + rec.text + "' returned base " +
              std::to_string(r.base) + ", trace recorded " + std::to_string(rec.b));
        }
        ranges.emplace(r.base, r);
        break;
      }
      case TraceOp::kFree: {
        const auto it = ranges.find(rec.a);
        if (it == ranges.end())
          throw std::runtime_error("trace replay diverged: free of unknown base");
        eng.free(it->second);
        ranges.erase(it);
        break;
      }
      case TraceOp::kLoad:
        eng.load(rec.a, rec.e);
        break;
      case TraceOp::kStore:
        eng.store(rec.a, rec.e);
        break;
      case TraceOp::kFlops:
        eng.flops(rec.a);
        break;
      case TraceOp::kLoadRange:
        eng.load_range(rec.a, rec.b, rec.e);
        break;
      case TraceOp::kStoreRange:
        eng.store_range(rec.a, rec.b, rec.e);
        break;
      case TraceOp::kRmwRange:
        eng.rmw_range(rec.a, rec.b, rec.e);
        break;
      case TraceOp::kStoreLoadRange:
        eng.store_load_range(rec.a, rec.b, rec.e);
        break;
      case TraceOp::kLoadStrided:
        eng.load_strided(rec.a, rec.b, rec.c, rec.e);
        break;
      case TraceOp::kStoreStrided:
        eng.store_strided(rec.a, rec.b, rec.c, rec.e);
        break;
      case TraceOp::kLoadPair:
        eng.load_pair_range(rec.a, rec.e, rec.b, rec.f, rec.c);
        break;
      case TraceOp::kStorePair:
        eng.store_pair_range(rec.a, rec.e, rec.b, rec.f, rec.c);
        break;
      case TraceOp::kStream:
        eng.stream_range(rec.lanes.data(), rec.lanes.size(), rec.b);
        break;
      case TraceOp::kPfStart:
        eng.pf_start(rec.text);
        break;
      case TraceOp::kPfStop:
        eng.pf_stop();
        break;
      case TraceOp::kEnd:
        break;
    }
  }
  if (cursor.records_decoded() != data_.record_count)
    throw std::runtime_error("trace replay diverged: record count mismatch");

  workloads::WorkloadResult result;
  result.verified = data_.verified;
  result.residual = data_.residual;
  result.detail = data_.detail;
  return result;
}

std::string trace_cache_path(const std::string& dir, workloads::App app, int scale,
                             std::uint64_t seed) {
  return dir + "/" + workloads::app_name(app) + "_s" + std::to_string(scale) + "_" +
         std::to_string(seed) + ".mdtr";
}

std::unique_ptr<workloads::Workload> make_cached_workload(const std::string& dir,
                                                          workloads::App app, int scale,
                                                          std::uint64_t seed) {
  const std::string path = trace_cache_path(dir, app, scale, seed);
  if (std::filesystem::exists(path)) {
    std::string error;
    auto data = TraceData::load(path, error);
    if (!data) throw std::runtime_error("replay cache: " + error);
    auto replay = std::make_unique<TraceReplayWorkload>(std::move(*data));
    // Replay is bit-identical to the live run of this key (TRACE.md), so it
    // inherits the live workload's functional id — workload construction
    // only stores parameters, so building one here is free.
    replay->set_functional_id(workloads::make_workload(app, scale, seed)->functional_id());
    return replay;
  }
  return std::make_unique<TraceRecordWorkload>(workloads::make_workload(app, scale, seed),
                                               workloads::app_name(app), scale, seed, path);
}

}  // namespace memdis::trace
