// Record/replay workload wrappers over the trace format (trace.h), plus the
// cached-workload factory the sweep driver's replay cache is built on.
//
// TraceRecordWorkload wraps a live workload: it runs the real numerics with
// a TraceWriter attached as the engine's trace sink, then persists the
// captured stream (plus the workload's own result) to a .mdtr file. The
// wrapped run is bit-identical to an unwrapped one — the sink only observes.
//
// TraceReplayWorkload drives a loaded trace back through the engine's public
// API. It performs no host-side numerics (the recorded WorkloadResult is
// returned verbatim), and the coalesced kStream records ride the engine's
// bulk fast path — that combination is the replay speedup. Replay asserts
// the allocator reproduces every recorded base address, so a trace/engine
// mismatch fails loudly instead of silently skewing the simulation.
#pragma once

#include <memory>
#include <string>

#include "trace/trace.h"
#include "workloads/workload.h"

namespace memdis::trace {

/// Runs `inner` with a recording sink attached and saves the trace to
/// `path` (atomically) after each run. Result, name, and footprint pass
/// through unchanged.
class TraceRecordWorkload : public workloads::Workload {
 public:
  TraceRecordWorkload(std::unique_ptr<workloads::Workload> inner, std::string app,
                      int scale, std::uint64_t seed, std::string path);

  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return inner_->footprint_bytes();
  }
  workloads::WorkloadResult run(sim::Engine& eng) override;
  /// Recording only observes — the access stream is the inner workload's.
  [[nodiscard]] std::string functional_id() const override {
    return inner_->functional_id();
  }

 private:
  std::unique_ptr<workloads::Workload> inner_;
  std::string app_;
  int scale_;
  std::uint64_t seed_;
  std::string path_;
};

/// Replays a loaded trace through the engine's public API. Re-entrant: each
/// run() decodes the payload from the start, so harnesses that run one
/// workload instance several times (LoI sensitivity sweeps) work unchanged.
class TraceReplayWorkload : public workloads::Workload {
 public:
  explicit TraceReplayWorkload(TraceData data) : data_(std::move(data)) {}

  [[nodiscard]] std::string name() const override { return data_.workload_name; }
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return data_.footprint_bytes;
  }
  /// Throws std::runtime_error on a corrupt payload or when the engine's
  /// allocator returns a base that differs from the recorded one.
  workloads::WorkloadResult run(sim::Engine& eng) override;

  [[nodiscard]] const TraceData& data() const { return data_; }

  /// A trace file carries no parameter provenance, so replay defaults to
  /// opted out of repricing. make_cached_workload knows the (app, scale,
  /// seed) key it loaded the trace for and injects the live workload's id
  /// here — replay is bit-identical to live, so the id is equally valid.
  void set_functional_id(std::string id) { functional_id_ = std::move(id); }
  [[nodiscard]] std::string functional_id() const override { return functional_id_; }

 private:
  TraceData data_;
  std::string functional_id_;
};

/// Canonical trace filename for a (app, scale, seed) key inside a cache
/// directory: "<app>_s<scale>_<seed>.mdtr".
[[nodiscard]] std::string trace_cache_path(const std::string& dir, workloads::App app,
                                           int scale, std::uint64_t seed);

/// The replay cache's factory: returns a TraceReplayWorkload when `dir`
/// already holds a trace for the key (throwing std::runtime_error if that
/// file is unreadable or corrupt — a poisoned cache must not silently fall
/// back to a slow live run), otherwise a TraceRecordWorkload wrapping the
/// live workload so the first grid point to need the key records it.
[[nodiscard]] std::unique_ptr<workloads::Workload> make_cached_workload(
    const std::string& dir, workloads::App app, int scale, std::uint64_t seed);

}  // namespace memdis::trace
