#include "trace/trace.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <thread>

#include "common/contract.h"

namespace memdis::trace {

namespace {

std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

void append_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void append_string(std::vector<std::uint8_t>& out, const std::string& s) {
  append_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked forward reader; sets `fail` instead of throwing so header
/// parsing can turn any overrun into one "truncated" diagnostic.
struct ByteReader {
  const std::uint8_t* p = nullptr;
  const std::uint8_t* end = nullptr;
  bool fail = false;

  std::uint8_t u8() {
    if (p >= end) {
      fail = true;
      return 0;
    }
    return *p++;
  }
  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (p >= end) {
        fail = true;
        return 0;
      }
      const std::uint8_t b = *p++;
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
    }
    fail = true;  // varint longer than 64 bits
    return 0;
  }
  std::uint64_t u64le() {
    if (end - p < 8) {
      fail = true;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (i * 8);
    p += 8;
    return v;
  }
  std::string str() {
    const std::uint64_t len = varint();
    if (fail || static_cast<std::uint64_t>(end - p) < len) {
      fail = true;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p), len);
    p += len;
    return s;
  }
};

// Strides above this never come from a coalescible loop; they would also
// approach the varint cost of raw records, so leave such patterns alone.
constexpr std::uint64_t kMaxStride = 1ULL << 47;

}  // namespace

// ---- TraceData --------------------------------------------------------------

void TraceData::save(const std::string& path) const {
  std::vector<std::uint8_t> head;
  head.insert(head.end(), kTraceMagic, kTraceMagic + 4);
  head.push_back(static_cast<std::uint8_t>(kTraceVersion & 0xff));
  head.push_back(static_cast<std::uint8_t>(kTraceVersion >> 8));
  append_varint(head, static_cast<std::uint64_t>(scale));
  append_varint(head, seed);
  append_varint(head, footprint_bytes);
  head.push_back(verified ? 1 : 0);
  std::uint64_t residual_bits = 0;
  static_assert(sizeof(residual_bits) == sizeof(residual));
  std::memcpy(&residual_bits, &residual, sizeof(residual_bits));
  for (int i = 0; i < 8; ++i)
    head.push_back(static_cast<std::uint8_t>(residual_bits >> (i * 8)));
  append_string(head, app);
  append_string(head, workload_name);
  append_string(head, detail);
  append_varint(head, record_count);
  append_varint(head, payload.size());

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open trace file for writing: " + path);
  out.write(reinterpret_cast<const char*>(head.data()),
            static_cast<std::streamsize>(head.size()));
  if (!payload.empty())
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
  out.flush();
  if (!out) throw std::runtime_error("short write to trace file: " + path);
}

void TraceData::save_atomic(const std::string& path) const {
  // Same-directory temp name keyed by thread id: concurrent sweep tasks
  // recording the same (app, scale, seed) write distinct temps, and the
  // rename is atomic — last writer wins with identical deterministic bytes.
  const auto tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
  const std::string tmp = path + ".tmp." + std::to_string(tid);
  save(tmp);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp);
    throw std::runtime_error("cannot publish trace file " + path + ": " + ec.message());
  }
}

std::optional<TraceData> TraceData::load(const std::string& path, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open trace file: " + path;
    return std::nullopt;
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (bytes.size() < 6 || std::memcmp(bytes.data(), kTraceMagic, 4) != 0) {
    error = "not a memdis trace (bad magic): " + path;
    return std::nullopt;
  }
  const std::uint16_t version =
      static_cast<std::uint16_t>(bytes[4] | (static_cast<std::uint16_t>(bytes[5]) << 8));
  if (version != kTraceVersion) {
    error = "unsupported trace version " + std::to_string(version) + " (expected " +
            std::to_string(kTraceVersion) + "): " + path;
    return std::nullopt;
  }
  ByteReader r{bytes.data() + 6, bytes.data() + bytes.size()};
  TraceData d;
  d.scale = static_cast<int>(r.varint());
  d.seed = r.varint();
  d.footprint_bytes = r.varint();
  d.verified = r.u8() != 0;
  const std::uint64_t residual_bits = r.u64le();
  std::memcpy(&d.residual, &residual_bits, sizeof(d.residual));
  d.app = r.str();
  d.workload_name = r.str();
  d.detail = r.str();
  d.record_count = r.varint();
  const std::uint64_t payload_bytes = r.varint();
  if (r.fail) {
    error = "truncated trace header: " + path;
    return std::nullopt;
  }
  const auto remaining = static_cast<std::uint64_t>(r.end - r.p);
  if (remaining != payload_bytes) {
    error = "truncated trace file (payload " + std::to_string(remaining) + " of " +
            std::to_string(payload_bytes) + " bytes): " + path;
    return std::nullopt;
  }
  d.payload.assign(r.p, r.end);
  return d;
}

// ---- TraceCursor ------------------------------------------------------------

bool TraceCursor::next(TraceRecord& rec) {
  if (done_) return false;
  ByteReader r{data_->payload.data() + pos_, data_->payload.data() + data_->payload.size()};
  const std::uint8_t op = r.u8();
  if (r.fail || op > kTraceOpMax) throw std::runtime_error("corrupt trace record");
  rec.op = static_cast<TraceOp>(op);
  rec.a = rec.b = rec.c = 0;
  rec.e = rec.f = 0;
  const auto read_addr = [&]() {
    last_addr_ += static_cast<std::uint64_t>(zigzag_decode(r.varint()));
    return last_addr_;
  };
  switch (rec.op) {
    case TraceOp::kEnd:
      break;
    case TraceOp::kAlloc:
      rec.a = r.varint();
      rec.policy.kind = static_cast<memsim::PlacementKind>(r.u8());
      rec.policy.target = static_cast<memsim::TierId>(r.varint());
      rec.policy.weights.assign(r.varint(), 0);
      for (auto& w : rec.policy.weights) w = static_cast<std::uint32_t>(r.varint());
      rec.text = r.str();
      rec.b = read_addr();
      break;
    case TraceOp::kFree:
      rec.a = read_addr();
      break;
    case TraceOp::kLoad:
    case TraceOp::kStore:
      rec.a = read_addr();
      rec.e = static_cast<std::uint32_t>(r.varint());
      break;
    case TraceOp::kFlops:
      rec.a = r.varint();
      break;
    case TraceOp::kLoadRange:
    case TraceOp::kStoreRange:
    case TraceOp::kRmwRange:
    case TraceOp::kStoreLoadRange:
      rec.a = read_addr();
      rec.b = r.varint();
      rec.e = static_cast<std::uint32_t>(r.varint());
      break;
    case TraceOp::kLoadStrided:
    case TraceOp::kStoreStrided:
      rec.a = read_addr();
      rec.b = r.varint();
      rec.c = r.varint();
      rec.e = static_cast<std::uint32_t>(r.varint());
      break;
    case TraceOp::kLoadPair:
    case TraceOp::kStorePair:
      rec.a = read_addr();
      rec.e = static_cast<std::uint32_t>(r.varint());
      rec.b = read_addr();
      rec.f = static_cast<std::uint32_t>(r.varint());
      rec.c = r.varint();
      break;
    case TraceOp::kStream: {
      rec.lanes.assign(r.varint(), sim::StreamLane{});
      for (auto& ln : rec.lanes) {
        ln.op = static_cast<sim::StreamLane::Op>(r.u8());
        if (ln.op == sim::StreamLane::Op::kFlops) {
          ln.base = r.varint();
          ln.stride = 0;
          ln.elem = 0;
        } else {
          ln.base = read_addr();
          ln.stride = r.varint();
          ln.elem = static_cast<std::uint32_t>(r.varint());
        }
      }
      rec.b = r.varint();
      break;
    }
    case TraceOp::kPfStart:
      rec.text = r.str();
      break;
    case TraceOp::kPfStop:
      break;
  }
  if (r.fail) throw std::runtime_error("corrupt trace record");
  pos_ = static_cast<std::size_t>(r.p - data_->payload.data());
  ++decoded_;
  if (rec.op == TraceOp::kEnd) {
    done_ = true;
    return false;
  }
  return true;
}

// ---- TraceWriter ------------------------------------------------------------

TraceWriter::TraceWriter() = default;

void TraceWriter::begin_record(TraceOp op) {
  out_.push_back(static_cast<std::uint8_t>(op));
  ++records_;
}

void TraceWriter::put_u8(std::uint8_t v) { out_.push_back(v); }
void TraceWriter::put_varint(std::uint64_t v) { append_varint(out_, v); }
void TraceWriter::put_signed(std::int64_t v) { append_varint(out_, zigzag_encode(v)); }
void TraceWriter::put_string(const std::string& s) { append_string(out_, s); }

void TraceWriter::put_addr(std::uint64_t addr) {
  put_signed(static_cast<std::int64_t>(addr - last_addr_));
  last_addr_ = addr;
}

void TraceWriter::on_alloc(std::uint64_t bytes, const memsim::MemPolicy& policy,
                           const std::string& name, std::uint64_t base) {
  drain_pending_flops();
  flush_simple_state();
  begin_record(TraceOp::kAlloc);
  put_varint(bytes);
  put_u8(static_cast<std::uint8_t>(policy.kind));
  put_varint(static_cast<std::uint64_t>(policy.target));
  put_varint(policy.weights.size());
  for (const auto w : policy.weights) put_varint(w);
  put_string(name);
  put_addr(base);
}

void TraceWriter::on_free(std::uint64_t base) {
  drain_pending_flops();
  flush_simple_state();
  begin_record(TraceOp::kFree);
  put_addr(base);
}

void TraceWriter::on_access(bool is_store, std::uint64_t addr, std::uint32_t size) {
  drain_pending_flops();
  push_simple(Simple{static_cast<std::uint8_t>(is_store ? 1 : 0), addr, size});
}

void TraceWriter::on_flops(std::uint64_t n) {
  // Adjacent flops merge into the pending counter (exact: the engine's
  // pending flops are only read at epoch close, which no flops call moves),
  // so the pattern detector always sees maximal flops events.
  pending_flops_ += n;
}

void TraceWriter::on_range(std::uint8_t kind, std::uint64_t addr, std::uint64_t bytes,
                           std::uint32_t elem) {
  drain_pending_flops();
  flush_simple_state();
  begin_record(static_cast<TraceOp>(static_cast<std::uint8_t>(TraceOp::kLoadRange) + kind));
  put_addr(addr);
  put_varint(bytes);
  put_varint(elem);
}

void TraceWriter::on_strided(bool is_store, std::uint64_t addr, std::uint64_t count,
                             std::uint64_t stride, std::uint32_t elem) {
  drain_pending_flops();
  flush_simple_state();
  begin_record(is_store ? TraceOp::kStoreStrided : TraceOp::kLoadStrided);
  put_addr(addr);
  put_varint(count);
  put_varint(stride);
  put_varint(elem);
}

void TraceWriter::on_pair(bool is_store, std::uint64_t a, std::uint32_t elem_a,
                          std::uint64_t b, std::uint32_t elem_b, std::uint64_t count) {
  drain_pending_flops();
  flush_simple_state();
  begin_record(is_store ? TraceOp::kStorePair : TraceOp::kLoadPair);
  put_addr(a);
  put_varint(elem_a);
  put_addr(b);
  put_varint(elem_b);
  put_varint(count);
}

void TraceWriter::on_stream(const sim::StreamLane* lanes, std::size_t num_lanes,
                            std::uint64_t count) {
  drain_pending_flops();
  flush_simple_state();
  begin_record(TraceOp::kStream);
  put_varint(num_lanes);
  for (std::size_t i = 0; i < num_lanes; ++i) {
    const sim::StreamLane& ln = lanes[i];
    put_u8(static_cast<std::uint8_t>(ln.op));
    if (ln.op == sim::StreamLane::Op::kFlops) {
      put_varint(ln.base);
    } else {
      put_addr(ln.base);
      put_varint(ln.stride);
      put_varint(ln.elem);
    }
  }
  put_varint(count);
}

void TraceWriter::on_phase(bool start, const std::string& tag) {
  drain_pending_flops();
  flush_simple_state();
  if (start) {
    begin_record(TraceOp::kPfStart);
    put_string(tag);
  } else {
    begin_record(TraceOp::kPfStop);
  }
}

void TraceWriter::drain_pending_flops() {
  if (pending_flops_ == 0) return;
  const Simple s{2, 0, pending_flops_};
  pending_flops_ = 0;
  push_simple(s);
}

void TraceWriter::push_simple(const Simple& s) {
  if (stream_active_) {
    const sim::StreamLane& ln = stream_lanes_[stream_partial_];
    bool match;
    if (ln.op == sim::StreamLane::Op::kFlops) {
      match = s.kind == 2 && s.val == ln.base;
    } else {
      const std::uint8_t lane_kind = ln.op == sim::StreamLane::Op::kStore ? 1 : 0;
      match = s.kind == lane_kind && s.val == ln.elem &&
              s.addr == ln.base + stream_iters_ * ln.stride;
    }
    if (match) {
      if (++stream_partial_ == stream_lanes_.size()) {
        stream_partial_ = 0;
        ++stream_iters_;
      }
      return;
    }
    // Pattern broke: emit the whole iterations as one stream record, replay
    // the partial iteration's prefix through the detector (the window is
    // empty while a stream is active, so this cannot immediately re-enter
    // streaming), then re-process `s`.
    const std::uint64_t iters = stream_iters_;
    const std::size_t partial = stream_partial_;
    std::vector<sim::StreamLane> lanes;
    lanes.swap(stream_lanes_);
    stream_active_ = false;
    stream_iters_ = 0;
    stream_partial_ = 0;
    flush_stream_record(lanes, iters);
    for (std::size_t i = 0; i < partial; ++i) {
      const sim::StreamLane& pl = lanes[i];
      if (pl.op == sim::StreamLane::Op::kFlops) {
        push_simple(Simple{2, 0, pl.base});
      } else {
        push_simple(Simple{
            static_cast<std::uint8_t>(pl.op == sim::StreamLane::Op::kStore ? 1 : 0),
            pl.base + iters * pl.stride, pl.elem});
      }
    }
    push_simple(s);
    return;
  }
  window_.push_back(s);
  if (try_detect()) return;
  if (window_.size() > kWindowCap) {
    emit_simple(window_.front());
    window_.pop_front();
  }
}

bool TraceWriter::try_detect() {
  const std::size_t n = window_.size();
  // Smallest period wins: a pure stream is P=1, an interleaved A/B loop
  // P=2, etc. Requiring three full periods keeps false positives from
  // coincidental repeats cheap to recover from (the stream record they
  // produce is still exact, merely short).
  for (std::size_t p = 1; p <= kMaxPeriod; ++p) {
    if (n < kMinIters * p) break;
    const std::size_t base0 = n - kMinIters * p;
    bool ok = true;
    bool has_access = false;
    for (std::size_t j = 0; j < p; ++j) {
      const Simple& a = window_[base0 + j];
      const Simple& b = window_[base0 + p + j];
      const Simple& c = window_[base0 + 2 * p + j];
      if (a.kind != b.kind || b.kind != c.kind || a.val != b.val || b.val != c.val) {
        ok = false;
        break;
      }
      if (a.kind == 2) continue;  // flops: value equality is the whole test
      has_access = true;
      const std::uint64_t s1 = b.addr - a.addr;
      const std::uint64_t s2 = c.addr - b.addr;
      // stream_range lanes need positive strides; descending or outlandish
      // deltas (including unsigned wrap) stay element-wise.
      if (s1 != s2 || s1 == 0 || s1 > kMaxStride) {
        ok = false;
        break;
      }
    }
    if (!ok || !has_access) continue;
    // Everything before the three matched periods leaves the window as-is.
    for (std::size_t i = 0; i < base0; ++i) emit_simple(window_[i]);
    stream_lanes_.clear();
    for (std::size_t j = 0; j < p; ++j) {
      const Simple& a = window_[base0 + j];
      sim::StreamLane ln;
      if (a.kind == 2) {
        ln.op = sim::StreamLane::Op::kFlops;
        ln.base = a.val;
      } else {
        ln.op = a.kind == 1 ? sim::StreamLane::Op::kStore : sim::StreamLane::Op::kLoad;
        ln.base = a.addr;
        ln.stride = window_[base0 + p + j].addr - a.addr;
        ln.elem = static_cast<std::uint32_t>(a.val);
      }
      stream_lanes_.push_back(ln);
    }
    stream_active_ = true;
    stream_iters_ = kMinIters;
    stream_partial_ = 0;
    window_.clear();
    return true;
  }
  return false;
}

void TraceWriter::flush_stream_record(const std::vector<sim::StreamLane>& lanes,
                                      std::uint64_t iters) {
  expects(iters > 0, "stream record with zero iterations");
  begin_record(TraceOp::kStream);
  put_varint(lanes.size());
  for (const auto& ln : lanes) {
    put_u8(static_cast<std::uint8_t>(ln.op));
    if (ln.op == sim::StreamLane::Op::kFlops) {
      put_varint(ln.base);
    } else {
      put_addr(ln.base);
      put_varint(ln.stride);
      put_varint(ln.elem);
    }
  }
  put_varint(iters);
}

void TraceWriter::flush_stream() {
  const std::uint64_t iters = stream_iters_;
  const std::size_t partial = stream_partial_;
  std::vector<sim::StreamLane> lanes;
  lanes.swap(stream_lanes_);
  stream_active_ = false;
  stream_iters_ = 0;
  stream_partial_ = 0;
  flush_stream_record(lanes, iters);
  // The partial iteration's prefix goes out verbatim — terminal flush, no
  // point feeding the detector again.
  for (std::size_t i = 0; i < partial; ++i) {
    const sim::StreamLane& pl = lanes[i];
    if (pl.op == sim::StreamLane::Op::kFlops) {
      emit_simple(Simple{2, 0, pl.base});
    } else {
      emit_simple(Simple{
          static_cast<std::uint8_t>(pl.op == sim::StreamLane::Op::kStore ? 1 : 0),
          pl.base + iters * pl.stride, pl.elem});
    }
  }
}

void TraceWriter::flush_simple_state() {
  if (stream_active_) flush_stream();
  while (!window_.empty()) {
    emit_simple(window_.front());
    window_.pop_front();
  }
}

void TraceWriter::emit_simple(const Simple& s) {
  switch (s.kind) {
    case 0:
      begin_record(TraceOp::kLoad);
      put_addr(s.addr);
      put_varint(s.val);
      break;
    case 1:
      begin_record(TraceOp::kStore);
      put_addr(s.addr);
      put_varint(s.val);
      break;
    default:
      begin_record(TraceOp::kFlops);
      put_varint(s.val);
      break;
  }
}

void TraceWriter::finish() {
  expects(!finished_, "TraceWriter::finish called twice");
  drain_pending_flops();
  flush_simple_state();
  begin_record(TraceOp::kEnd);
  finished_ = true;
}

std::vector<std::uint8_t> TraceWriter::take_payload() {
  expects(finished_, "take_payload before finish");
  return std::move(out_);
}

// ---- scan_trace -------------------------------------------------------------

std::optional<TraceStats> scan_trace(const TraceData& data, std::string& error) {
  TraceStats stats;
  TraceCursor cursor(data);
  TraceRecord rec;
  try {
    while (cursor.next(rec)) {
      ++stats.by_op[static_cast<std::size_t>(rec.op)];
      ++stats.total;
      if (rec.op == TraceOp::kStream) stats.stream_iterations += rec.b;
    }
  } catch (const std::exception& e) {
    error = e.what();
    return std::nullopt;
  }
  ++stats.by_op[static_cast<std::size_t>(TraceOp::kEnd)];
  ++stats.total;
  if (cursor.records_decoded() != data.record_count) {
    error = "trace record count mismatch (decoded " +
            std::to_string(cursor.records_decoded()) + ", header says " +
            std::to_string(data.record_count) + ")";
    return std::nullopt;
  }
  return stats;
}

}  // namespace memdis::trace
