// Access-trace capture: a compact, versioned binary format for the engine's
// instrumented call stream, plus the recording sink that produces it.
//
// A trace is the exact sequence of public Engine calls a workload made —
// allocations (with the returned base, so replay can assert the virtual
// layout reproduced), frees, element-wise loads/stores, flops, every bulk
// range/strided/pair/stream call, and phase tags. Because the virtual
// allocator is a bump allocator that never reuses addresses and workloads
// compute against host-side buffers, the stream depends only on
// (app, scale, seed) — never on the machine, capacity split, LoI, or link
// model. One recording therefore replays bit-identically into every point
// of a machine/policy grid (core/sweep's replay cache).
//
// Compactness and replay speed come from the same mechanism: the writer
// run-length-encodes the element-wise stream. Adjacent flops() calls are
// summed (pending flops only ever accumulate between epoch closes), and a
// periodic window detector folds repeating patterns of loads/stores/flops
// with constant per-position strides into a single kStream record — the
// multi-lane stream_range form the pattern is, by the range API's
// element-loop definition, exactly equal to. Replay then drives those
// records through the engine's bulk fast path even where the live workload
// issued one call per element. Genuinely irregular streams (pointer
// chasing, table lookups) stay one record per access, delta+varint coded.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "memsim/policy.h"
#include "sim/engine.h"

namespace memdis::trace {

/// Record opcodes (byte 0 of every record). The numeric values are part of
/// the on-disk format — append, never renumber.
enum class TraceOp : std::uint8_t {
  kEnd = 0,
  kAlloc = 1,
  kFree = 2,
  kLoad = 3,
  kStore = 4,
  kFlops = 5,
  kLoadRange = 6,
  kStoreRange = 7,
  kRmwRange = 8,
  kStoreLoadRange = 9,
  kLoadStrided = 10,
  kStoreStrided = 11,
  kLoadPair = 12,
  kStorePair = 13,
  kStream = 14,
  kPfStart = 15,
  kPfStop = 16,
};

inline constexpr std::uint8_t kTraceOpMax = 16;
inline constexpr std::uint16_t kTraceVersion = 1;
inline constexpr char kTraceMagic[4] = {'M', 'D', 'T', 'R'};

/// One decoded record. Field use per op:
///   kAlloc:        a=bytes, b=returned base, policy, text=allocation name
///   kFree:         a=base
///   kLoad/kStore:  a=addr, e=size
///   kFlops:        a=n
///   k*Range:       a=addr, b=bytes, e=elem
///   k*Strided:     a=addr, b=count, c=stride, e=elem
///   k*Pair:        a=addr_a, b=addr_b, c=count, e=elem_a, f=elem_b
///   kStream:       lanes, b=iteration count
///   kPfStart:      text=tag
struct TraceRecord {
  TraceOp op = TraceOp::kEnd;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint32_t e = 0;
  std::uint32_t f = 0;
  std::string text;
  memsim::MemPolicy policy;
  std::vector<sim::StreamLane> lanes;
};

/// A loaded trace: header metadata plus the encoded record payload.
/// Replay re-decodes the payload with a TraceCursor instead of
/// materializing a record vector (the payload is the compact form).
struct TraceData {
  std::string app;     ///< workloads::app_name of the recorded app
  int scale = 1;
  std::uint64_t seed = 42;
  std::string workload_name;        ///< Workload::name() at record time
  std::uint64_t footprint_bytes = 0;
  bool verified = false;            ///< recorded WorkloadResult
  double residual = 0.0;
  std::string detail;
  std::uint64_t record_count = 0;
  std::vector<std::uint8_t> payload;

  /// Serializes to `path`. Throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;
  /// save() through a same-directory temp file + atomic rename, so
  /// concurrent sweep tasks recording the same (app, scale, seed) key can
  /// race without a reader ever observing a half-written file.
  void save_atomic(const std::string& path) const;
  /// Parses `path`; nullopt with a diagnostic in `error` for missing files,
  /// bad magic, unsupported versions, or truncated payloads.
  [[nodiscard]] static std::optional<TraceData> load(const std::string& path,
                                                     std::string& error);
};

/// Forward decoder over a TraceData payload. next() overwrites `rec`
/// (reusing its string/lane storage) and returns false after the kEnd
/// record. Throws std::runtime_error on a corrupt record.
class TraceCursor {
 public:
  explicit TraceCursor(const TraceData& data) : data_(&data) {}

  bool next(TraceRecord& rec);

  [[nodiscard]] std::uint64_t records_decoded() const { return decoded_; }

 private:
  const TraceData* data_;
  std::size_t pos_ = 0;
  std::uint64_t last_addr_ = 0;
  std::uint64_t decoded_ = 0;
  bool done_ = false;
};

/// The recording sink: attach to an Engine (Engine::set_trace_sink) for the
/// duration of a workload run, then finish() and collect the payload.
///
/// Coalescing contract — every transformation is exact:
///  * consecutive flops(a); flops(b) become flops(a+b) (flops only ever
///    accumulate into the pending counter read at epoch close, and no
///    access separates them to move that close),
///  * a repeating pattern of P simple records (loads/stores with constant
///    per-position address strides, flops with constant values) observed
///    for three full periods enters streaming mode and extends a kStream
///    record while the pattern holds — the emitted stream_range call is
///    definitionally the same element sequence,
///  * everything else is passed through verbatim.
class TraceWriter : public sim::TraceSink {
 public:
  TraceWriter();

  // sim::TraceSink
  void on_alloc(std::uint64_t bytes, const memsim::MemPolicy& policy,
                const std::string& name, std::uint64_t base) override;
  void on_free(std::uint64_t base) override;
  void on_access(bool is_store, std::uint64_t addr, std::uint32_t size) override;
  void on_flops(std::uint64_t n) override;
  void on_range(std::uint8_t kind, std::uint64_t addr, std::uint64_t bytes,
                std::uint32_t elem) override;
  void on_strided(bool is_store, std::uint64_t addr, std::uint64_t count,
                  std::uint64_t stride, std::uint32_t elem) override;
  void on_pair(bool is_store, std::uint64_t a, std::uint32_t elem_a, std::uint64_t b,
               std::uint32_t elem_b, std::uint64_t count) override;
  void on_stream(const sim::StreamLane* lanes, std::size_t num_lanes,
                 std::uint64_t count) override;
  void on_phase(bool start, const std::string& tag) override;

  /// Flushes all pending state and appends the kEnd record. Must be called
  /// exactly once before take_payload().
  void finish();

  [[nodiscard]] std::uint64_t record_count() const { return records_; }
  [[nodiscard]] std::vector<std::uint8_t> take_payload();

 private:
  // One buffered element-wise event awaiting pattern detection.
  struct Simple {
    std::uint8_t kind = 0;  // 0 = load, 1 = store, 2 = flops
    std::uint64_t addr = 0;
    std::uint64_t val = 0;  // access size, or flops count
  };

  static constexpr std::size_t kMaxPeriod = 12;
  static constexpr std::size_t kWindowCap = 3 * kMaxPeriod + 16;
  static constexpr std::size_t kMinIters = 3;  // periods needed to enter streaming

  void push_simple(const Simple& s);
  void drain_pending_flops();
  bool try_detect();
  void flush_stream();
  void flush_stream_record(const std::vector<sim::StreamLane>& lanes,
                           std::uint64_t iters);
  /// Flushes the periodic detector completely: active stream, partial
  /// iteration, and the raw window (in original order).
  void flush_simple_state();
  void emit_simple(const Simple& s);

  void begin_record(TraceOp op);
  void put_u8(std::uint8_t v);
  void put_varint(std::uint64_t v);
  void put_signed(std::int64_t v);  // zigzag + varint
  void put_string(const std::string& s);
  void put_addr(std::uint64_t addr);  // delta vs last_addr_, then update

  std::vector<std::uint8_t> out_;
  std::uint64_t records_ = 0;
  std::uint64_t last_addr_ = 0;
  std::uint64_t pending_flops_ = 0;
  bool finished_ = false;

  std::deque<Simple> window_;
  bool stream_active_ = false;
  std::vector<sim::StreamLane> stream_lanes_;  // kFlops lanes carry val in base
  std::uint64_t stream_iters_ = 0;
  std::size_t stream_partial_ = 0;
};

/// Per-opcode record counts for `memdis trace info`.
struct TraceStats {
  std::array<std::uint64_t, kTraceOpMax + 1> by_op{};
  std::uint64_t total = 0;
  std::uint64_t stream_iterations = 0;  ///< sum of kStream counts
};

/// Full decode pass over a loaded trace; nullopt with `error` set when the
/// payload is corrupt or the record count disagrees with the header.
[[nodiscard]] std::optional<TraceStats> scan_trace(const TraceData& data,
                                                   std::string& error);

}  // namespace memdis::trace
