// Memory tier identifiers and per-tier hardware specifications.
//
// The paper's rack-scale architecture (Fig. 2) gives each node a fixed
// node-local tier plus a share of a pooled remote tier; the emulation
// platform (Sec. 3.3) maps these onto the two sockets of a Skylake-X box.
#pragma once

#include <cstdint>
#include <string>

namespace memdis::memsim {

/// A node's memory system has two tiers in this work: node-local DRAM and
/// the fabric-attached (pooled) remote tier reached over the link.
enum class Tier : std::uint8_t { kLocal = 0, kRemote = 1 };

inline constexpr int kNumTiers = 2;

/// Index helper for per-tier arrays.
[[nodiscard]] constexpr int tier_index(Tier t) { return static_cast<int>(t); }

[[nodiscard]] constexpr const char* tier_name(Tier t) {
  return t == Tier::kLocal ? "local" : "remote";
}

/// Hardware description of one memory tier.
struct MemoryTierSpec {
  std::string name;
  std::uint64_t capacity_bytes = 0;
  double bandwidth_gbps = 0.0;  ///< sustainable data bandwidth (STREAM-like)
  double latency_ns = 0.0;      ///< unloaded access latency
};

}  // namespace memdis::memsim
