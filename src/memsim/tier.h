// Memory tiers, per-tier fabric links, and the N-tier MemoryTopology.
//
// The paper's rack-scale architecture (Fig. 2) and its CXL what-ifs are
// really *topologies*: node DRAM, direct-attached CXL devices, switched
// pools, peer-borrowed memory. A topology is an ordered list of tiers;
// tier 0 is always the node-local tier (no fabric link), every other tier
// is reached over its own link with its own bandwidth/latency/overhead/
// interference parameters — so asymmetric multi-pool machines are
// expressible, not just the emulated local/remote pair of Sec. 3.3.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/contract.h"

namespace memdis::memsim {

/// Integer handle of a tier within a MemoryTopology. Tier 0 is the
/// node-local tier by convention; first-touch spill walks ids in order.
using TierId = int;

/// The node-local tier's id.
inline constexpr TierId kNodeTier = 0;

/// Upper bound on tiers per topology. Per-tier hardware counters are
/// fixed-size arrays (they are copied on every epoch delta), so the bound
/// is a compile-time constant; 8 covers every rack topology in the paper's
/// design space (HBM + DDR + multiple CXL hops + peers) with room to spare.
inline constexpr int kMaxTiers = 8;

/// Parameters of the fabric link through which a non-local tier is reached
/// (the LBench link model of Sec. 3.2, per tier).
struct FabricLinkSpec {
  double traffic_capacity_gbps = 85.0;  ///< saturation point seen by PCM
  double protocol_overhead = 2.5;       ///< traffic bytes per data byte
  /// Fraction of background link traffic that collides with the app's
  /// demand stream (full-duplex links only partially steal the app's
  /// direction; see MachineConfig for the calibration note).
  double interference_share = 0.35;
  double queue_weight = 0.12;           ///< M/M/1 queue-delay scaling
  double overload_slope = 0.05;         ///< delay growth per unit of overload
  double max_latency_multiplier = 6.0;  ///< cap on queueing blow-up
  /// Length (in closed epochs) of the QueueModel's windowed arrival-rate
  /// estimator — how quickly one traffic class's delay reacts to the other
  /// class's traffic under `--link-model queue`. Unused by the `loi` model.
  int queue_window_epochs = 4;

  /// Peak link *data* bandwidth implied by capacity and overhead.
  [[nodiscard]] double data_bandwidth_gbps() const {
    return traffic_capacity_gbps / protocol_overhead;
  }
};

/// Hardware description of one memory tier. Local tiers have no link;
/// fabric tiers carry their own link parameters.
struct MemoryTierSpec {
  std::string name;
  std::uint64_t capacity_bytes = 0;
  double bandwidth_gbps = 0.0;  ///< sustainable data bandwidth (STREAM-like)
  double latency_ns = 0.0;      ///< unloaded access latency
  std::optional<FabricLinkSpec> link;  ///< nullopt for node-local tiers
  /// Fabric attachment point: the tier whose domain this tier's link hangs
  /// off. kNodeTier (default) means directly attached to the node — a star.
  /// A chain topology (e.g. a switched pool *behind* a direct CXL device)
  /// sets upstream to the intermediate tier, so page migrations between the
  /// two fabric tiers cross only the switch segment, not the node link.
  /// Ignored for the node tier. Access-path parameters (latency_ns,
  /// bandwidth_gbps, link) always describe the full node<->tier path.
  TierId upstream = kNodeTier;

  [[nodiscard]] bool is_fabric() const { return link.has_value(); }
};

/// An ordered set of memory tiers. Order is semantic: first-touch fills
/// tier 0 first and spills down the list, and interleave weight vectors are
/// indexed by position.
struct MemoryTopology {
  std::vector<MemoryTierSpec> tiers;

  [[nodiscard]] int num_tiers() const { return static_cast<int>(tiers.size()); }

  [[nodiscard]] bool valid_tier(TierId t) const { return t >= 0 && t < num_tiers(); }

  [[nodiscard]] const MemoryTierSpec& tier(TierId t) const {
    expects(valid_tier(t), "tier id out of range");
    return tiers[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] MemoryTierSpec& tier(TierId t) {
    expects(valid_tier(t), "tier id out of range");
    return tiers[static_cast<std::size_t>(t)];
  }

  [[nodiscard]] bool is_fabric(TierId t) const { return tier(t).is_fabric(); }

  /// Id of the first fabric tier — the "pool" in two-tier language. Most
  /// reference-point math (R_bw, IC calibration) is defined against it.
  [[nodiscard]] TierId first_fabric() const {
    for (TierId t = 0; t < num_tiers(); ++t)
      if (tiers[static_cast<std::size_t>(t)].is_fabric()) return t;
    throw contract_violation("topology has no fabric tier");
  }

  [[nodiscard]] bool has_fabric() const {
    for (const auto& t : tiers)
      if (t.is_fabric()) return true;
    return false;
  }

  /// Total capacity over all tiers.
  [[nodiscard]] std::uint64_t total_capacity_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& t : tiers) sum += t.capacity_bytes;
    return sum;
  }

  /// Aggregate data bandwidth over all tiers (the multi-tier roofline
  /// ceiling of Fig. 5's dashed line).
  [[nodiscard]] double total_bandwidth_gbps() const {
    double sum = 0.0;
    for (const auto& t : tiers) sum += t.bandwidth_gbps;
    return sum;
  }

  /// Tier ids on the walk from `t` up to the node tier, starting with `t`
  /// itself and ending with kNodeTier (following `upstream` pointers).
  [[nodiscard]] std::vector<TierId> ancestors(TierId t) const {
    expects(valid_tier(t), "tier id out of range");
    std::vector<TierId> chain{t};
    while (chain.back() != kNodeTier)
      chain.push_back(tier(chain.back()).upstream);
    return chain;
  }

  /// Fabric segments a page migration from `src` to `dst` crosses: the ids
  /// of the tiers whose links are traversed, nearest-to-src first. Computed
  /// on the upstream tree — walk both tiers to their lowest common ancestor
  /// and drop the shared tail. A star topology yields {src-side link,
  /// dst-side link}; a chain (switched pool behind a direct device) yields
  /// only the segments between the two tiers, which is what makes staging
  /// through the intermediate tier cheaper than a direct long-haul move.
  [[nodiscard]] std::vector<TierId> path(TierId src, TierId dst) const {
    std::vector<TierId> up = ancestors(src);
    std::vector<TierId> down = ancestors(dst);
    // Remove the common suffix (shared ancestors including the meet point).
    while (up.size() > 1 && down.size() > 1 && up[up.size() - 2] == down[down.size() - 2]) {
      up.pop_back();
      down.pop_back();
    }
    std::vector<TierId> segments;
    for (std::size_t i = 0; i + 1 < up.size(); ++i) segments.push_back(up[i]);
    for (std::size_t i = down.size() - 1; i >= 1; --i) segments.push_back(down[i - 1]);
    return segments;
  }

  /// Structural invariants: at least one tier, at most kMaxTiers, tier 0
  /// local (no link), every later tier fabric (off-node aggregation and
  /// spill-order semantics assume it), names non-empty, upstream pointers
  /// strictly earlier in the tier order (so the attachment graph is a tree
  /// rooted at the node tier).
  void validate() const {
    expects(!tiers.empty(), "topology needs at least one tier");
    expects(num_tiers() <= kMaxTiers, "topology exceeds kMaxTiers");
    expects(!tiers.front().is_fabric(), "tier 0 must be the node-local tier");
    for (std::size_t i = 0; i < tiers.size(); ++i) {
      const auto& t = tiers[i];
      expects(!t.name.empty(), "tier name must not be empty");
      expects(t.bandwidth_gbps > 0.0, "tier bandwidth must be positive");
      expects(i == 0 || t.is_fabric(), "tiers beyond the node tier must carry a link");
      expects(i == 0 || (t.upstream >= 0 && t.upstream < static_cast<TierId>(i)),
              "tier upstream must point at an earlier tier");
      if (t.link) {
        expects(t.link->traffic_capacity_gbps > 0.0, "link capacity must be positive");
        expects(t.link->protocol_overhead >= 1.0, "protocol overhead cannot shrink traffic");
      }
    }
  }
};

}  // namespace memdis::memsim
