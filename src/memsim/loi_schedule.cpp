#include "memsim/loi_schedule.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/contract.h"

namespace memdis::memsim {

namespace {

/// LoI values share the LinkModel's sanity bound on offered load.
constexpr double kMaxLoi = 2000.0;

bool valid_loi(double v) { return v >= 0.0 && v <= kMaxLoi && !std::isnan(v); }

/// Strict numeric token: the whole token must parse, no NaN/inf.
std::optional<double> parse_number(const std::string& token) {
  if (token.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || errno == ERANGE) return std::nullopt;
  if (std::isnan(v) || std::isinf(v)) return std::nullopt;
  return v;
}

std::optional<std::uint64_t> parse_count(const std::string& token) {
  if (token.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size() || errno == ERANGE || v < 0) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

/// Splits on `delim` keeping empty fields, so "10,20," yields a trailing
/// empty token callers can reject (std::getline drops it).
std::vector<std::string> split(const std::string& text, char delim) {
  std::vector<std::string> out;
  std::string token;
  for (const char c : text) {
    if (c == delim) {
      out.push_back(token);
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  out.push_back(token);
  return out;
}

}  // namespace

LoiWaveform LoiWaveform::constant(double loi) {
  expects(valid_loi(loi), "LoI out of range");
  LoiWaveform w;
  w.kind_ = Kind::kConstant;
  w.hi_ = w.lo_ = loi;
  return w;
}

LoiWaveform LoiWaveform::square(std::uint64_t period_epochs, double duty, double hi, double lo) {
  expects(period_epochs >= 1, "square wave needs a positive period");
  expects(duty >= 0.0 && duty <= 1.0, "duty cycle must be in [0,1]");
  expects(valid_loi(hi) && valid_loi(lo), "LoI out of range");
  LoiWaveform w;
  w.kind_ = Kind::kSquare;
  w.period_ = period_epochs;
  w.duty_ = duty;
  w.hi_ = hi;
  w.lo_ = lo;
  return w;
}

LoiWaveform LoiWaveform::ramp(std::uint64_t period_epochs, double from, double to) {
  expects(period_epochs >= 1, "ramp needs a positive period");
  expects(valid_loi(from) && valid_loi(to), "LoI out of range");
  LoiWaveform w;
  w.kind_ = Kind::kRamp;
  w.period_ = period_epochs;
  w.lo_ = from;
  w.hi_ = to;
  return w;
}

LoiWaveform LoiWaveform::trace(std::vector<double> samples) {
  for (const double v : samples) expects(valid_loi(v), "trace LoI out of range");
  LoiWaveform w;
  w.kind_ = Kind::kTrace;
  w.samples_ = std::move(samples);
  return w;
}

double LoiWaveform::value_at(std::uint64_t epoch) const {
  switch (kind_) {
    case Kind::kConstant:
      return hi_;
    case Kind::kSquare: {
      const std::uint64_t phase = epoch % period_;
      // Integer burst length (rounded, so duty 0.29 of 100 is 29 epochs
      // despite FP representation) — no float drift across periods.
      const auto burst =
          static_cast<std::uint64_t>(std::llround(duty_ * static_cast<double>(period_)));
      return phase < burst ? hi_ : lo_;
    }
    case Kind::kRamp: {
      if (epoch >= period_) return hi_;
      const double f = static_cast<double>(epoch) / static_cast<double>(period_);
      return lo_ + (hi_ - lo_) * f;
    }
    case Kind::kTrace:
      if (samples_.empty()) return 0.0;
      return samples_[std::min<std::uint64_t>(epoch, samples_.size() - 1)];
  }
  return 0.0;
}

double LoiWaveform::mean() const {
  switch (kind_) {
    case Kind::kConstant:
      return hi_;
    case Kind::kSquare: {
      const auto burst =
          static_cast<std::uint64_t>(std::llround(duty_ * static_cast<double>(period_)));
      const double share = static_cast<double>(burst) / static_cast<double>(period_);
      return share * hi_ + (1.0 - share) * lo_;
    }
    case Kind::kRamp:
      return (lo_ + hi_) / 2.0;
    case Kind::kTrace: {
      if (samples_.empty()) return 0.0;
      double sum = 0.0;
      for (const double v : samples_) sum += v;
      return sum / static_cast<double>(samples_.size());
    }
  }
  return 0.0;
}

bool LoiWaveform::is_constant() const {
  switch (kind_) {
    case Kind::kConstant:
      return true;
    case Kind::kSquare: {
      const auto burst =
          static_cast<std::uint64_t>(std::llround(duty_ * static_cast<double>(period_)));
      return hi_ == lo_ || burst == 0 || burst == period_;
    }
    case Kind::kRamp:
      return hi_ == lo_;
    case Kind::kTrace: {
      for (const double v : samples_)
        if (v != samples_.front()) return false;
      return true;
    }
  }
  return true;
}

void LoiSchedule::set(TierId t, LoiWaveform wave) {
  expects(t >= 1, "the node tier has no link to schedule");
  if (static_cast<std::size_t>(t) >= per_tier.size())
    per_tier.resize(static_cast<std::size_t>(t) + 1);
  per_tier[static_cast<std::size_t>(t)] = std::move(wave);
}

std::optional<std::vector<double>> parse_loi_list(const std::string& text, std::string& error) {
  const auto tokens = split(text, ',');
  std::vector<double> values;
  for (const auto& token : tokens) {
    const auto v = parse_number(token);
    if (!v) {
      error = token.empty() ? "empty entry (trailing or doubled comma)"
                            : "'" + token + "' is not a number";
      return std::nullopt;
    }
    if (!valid_loi(*v)) {
      error = "LoI '" + token + "' out of range [0, 2000]";
      return std::nullopt;
    }
    values.push_back(*v);
  }
  if (values.empty()) {
    error = "expected a comma-separated list of numbers";
    return std::nullopt;
  }
  return values;
}

std::optional<LoiWaveSpec> parse_loi_wave(const std::string& spec, std::string& error) {
  const auto fields = split(spec, ':');
  if (fields.size() != 4 && fields.size() != 5) {
    error = "expected link:period:duty:hi[:lo], got '" + spec + "'";
    return std::nullopt;
  }
  const auto link = parse_count(fields[0]);
  if (!link || *link < 1 || *link >= static_cast<std::uint64_t>(kMaxTiers)) {
    error = "link must be a fabric tier id in [1, " + std::to_string(kMaxTiers - 1) +
            "], got '" + fields[0] + "'";
    return std::nullopt;
  }
  const auto period = parse_count(fields[1]);
  if (!period || *period < 1) {
    error = "period must be a positive epoch count, got '" + fields[1] + "'";
    return std::nullopt;
  }
  const auto duty = parse_number(fields[2]);
  if (!duty || *duty < 0.0 || *duty > 1.0) {
    error = "duty must be in [0, 1], got '" + fields[2] + "'";
    return std::nullopt;
  }
  const auto hi = parse_number(fields[3]);
  if (!hi || !valid_loi(*hi)) {
    error = "hi LoI must be in [0, 2000], got '" + fields[3] + "'";
    return std::nullopt;
  }
  double lo = 0.0;
  if (fields.size() == 5) {
    const auto v = parse_number(fields[4]);
    if (!v || !valid_loi(*v)) {
      error = "lo LoI must be in [0, 2000], got '" + fields[4] + "'";
      return std::nullopt;
    }
    lo = *v;
  }
  LoiWaveSpec out;
  out.tier = static_cast<TierId>(*link);
  out.wave = LoiWaveform::square(*period, *duty, *hi, lo);
  return out;
}

std::optional<LoiSchedule> parse_loi_trace_csv(std::istream& in,
                                               const std::vector<TierId>& fabric_tiers,
                                               std::string& error) {
  if (fabric_tiers.empty()) {
    error = "topology has no fabric tier to schedule";
    return std::nullopt;
  }
  std::string line;
  if (!std::getline(in, line)) {
    error = "empty trace (missing header line)";
    return std::nullopt;
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const auto header = split(line, ',');
  if (header.size() != fabric_tiers.size() + 1) {
    error = "header has " + std::to_string(header.size() - 1) + " value column(s), topology has " +
            std::to_string(fabric_tiers.size()) + " fabric tier(s)";
    return std::nullopt;
  }

  std::vector<std::vector<double>> samples(fabric_tiers.size());
  std::uint64_t next_epoch = 0;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const auto fields = split(line, ',');
    if (fields.size() != fabric_tiers.size() + 1) {
      error = "line " + std::to_string(line_no) + ": expected " +
              std::to_string(fabric_tiers.size() + 1) + " fields, got " +
              std::to_string(fields.size());
      return std::nullopt;
    }
    const auto epoch = parse_count(fields[0]);
    if (!epoch) {
      error = "line " + std::to_string(line_no) + ": bad epoch '" + fields[0] + "'";
      return std::nullopt;
    }
    // Gaps are hold-filled sample by sample, so an absurd epoch index
    // would allocate gigabytes; bound it instead of trusting the file.
    constexpr std::uint64_t kMaxTraceEpochs = 1'000'000;
    if (*epoch >= kMaxTraceEpochs) {
      error = "line " + std::to_string(line_no) + ": epoch " + fields[0] + " exceeds the " +
              std::to_string(kMaxTraceEpochs) + "-epoch trace bound";
      return std::nullopt;
    }
    if (samples[0].empty() ? *epoch != 0 : *epoch < next_epoch) {
      error = "line " + std::to_string(line_no) + ": epochs must start at 0 and be strictly " +
              "increasing, got " + fields[0];
      return std::nullopt;
    }
    for (std::size_t c = 0; c < fabric_tiers.size(); ++c) {
      const auto v = parse_number(fields[c + 1]);
      if (!v || !valid_loi(*v)) {
        error = "line " + std::to_string(line_no) + ": LoI '" + fields[c + 1] +
                "' must be a number in [0, 2000]";
        return std::nullopt;
      }
      // Hold the previous value across any gap (sparse monitor exports).
      while (samples[c].size() < *epoch) samples[c].push_back(samples[c].back());
      samples[c].push_back(*v);
    }
    next_epoch = *epoch + 1;
  }
  if (samples[0].empty()) {
    error = "trace has no sample rows";
    return std::nullopt;
  }
  LoiSchedule schedule;
  for (std::size_t c = 0; c < fabric_tiers.size(); ++c)
    schedule.set(fabric_tiers[c], LoiWaveform::trace(std::move(samples[c])));
  return schedule;
}

std::optional<LoiSchedule> load_loi_trace_csv(const std::string& path,
                                              const std::vector<TierId>& fabric_tiers,
                                              std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open trace file '" + path + "'";
    return std::nullopt;
  }
  return parse_loi_trace_csv(in, fabric_tiers, error);
}

}  // namespace memdis::memsim
