// MachineConfig: the emulated platform of Sec. 3.3.
//
// One socket acts as the compute node (local tier), the other socket's
// memory acts as the pool (remote tier) reached over the UPI link. The
// numbers below are the paper's measured values: 73 GB/s / 111 ns local,
// 34 GB/s / 202 ns remote, with PCM-visible link traffic saturating at
// 85 GB/s due to protocol overhead.
#pragma once

#include <cstdint>

#include "memsim/tier.h"

namespace memdis::memsim {

struct MachineConfig {
  // Compute side.
  double peak_gflops = 330.0;  ///< platform peak (AVX-512, all threads)
  int threads = 12;            ///< hardware threads used by workloads
  double mlp = 12.0;           ///< memory-level parallelism for demand misses

  // Memory tiers.
  MemoryTierSpec local{"local-ddr", 96ULL << 30, 73.0, 111.0};
  MemoryTierSpec remote{"pool-ddr", 96ULL << 30, 34.0, 202.0};

  // Pool link (UPI in the emulation).
  double link_traffic_capacity_gbps = 85.0;  ///< saturation point seen by PCM
  double link_protocol_overhead = 2.5;       ///< traffic bytes per data byte
  /// Fraction of background link traffic that collides with the app's
  /// demand stream. The UPI-style link is full duplex with separate
  /// request/response channels, so injected traffic only partially steals
  /// the app's direction; 0.35 calibrates the Fig. 10 sensitivity
  /// magnitudes (most-sensitive app ≈ 15% loss at LoI=50 on 50/50 tiers).
  double link_interference_share = 0.35;
  double link_queue_weight = 0.12;           ///< M/M/1 queue-delay scaling
  double link_overload_slope = 0.05;         ///< delay growth per unit of overload
  double link_max_latency_multiplier = 6.0;  ///< cap on queueing blow-up

  std::uint64_t page_bytes = 4096;
  std::uint64_t cacheline_bytes = 64;

  /// The dual-socket Intel Xeon (Skylake-X) testbed from the paper.
  [[nodiscard]] static MachineConfig skylake_testbed();

  /// What-if preset: the pool behind a direct-attached CXL type-3 device
  /// (x16 CXL 2.0: ~45 GB/s data, ~190 ns — numbers in line with the
  /// genuine-device measurements the paper cites [41]). CXL.mem's flit
  /// protocol carries less overhead than the UPI emulation.
  [[nodiscard]] static MachineConfig cxl_direct_attached();

  /// What-if preset: a switched rack-scale CXL pool — same bandwidth as
  /// direct CXL but with switch traversal adding ~130 ns, the scenario the
  /// paper's Fig. 2 architecture implies for multi-node pools.
  [[nodiscard]] static MachineConfig cxl_switched_pool();

  /// What-if preset: the *split* disaggregation category (Sec. 2) — remote
  /// memory borrowed peer-to-peer from another compute node rather than a
  /// dedicated pool. Longer path than a pool device, and the borrowed
  /// traffic contends with the lender's own memory traffic, so a larger
  /// share of background traffic collides with the borrower.
  [[nodiscard]] static MachineConfig split_borrowing();

  /// Returns a copy whose local-tier capacity is shrunk so that
  /// `remote_capacity_ratio` (e.g. 0.75) of `footprint_bytes` must spill to
  /// the pool under first-touch. This mirrors the paper's `setup_waste`
  /// step, which occupies local memory to force a 25/50/75% capacity split.
  [[nodiscard]] MachineConfig with_remote_capacity_ratio(double remote_capacity_ratio,
                                                         std::uint64_t footprint_bytes) const;

  /// Returns a copy with the local tier capacity set to `bytes`.
  [[nodiscard]] MachineConfig with_local_capacity(std::uint64_t bytes) const;

  /// Ratio of remote capacity to total capacity (R_cap^remote of Sec. 5.1).
  [[nodiscard]] double remote_capacity_ratio() const;

  /// Ratio of remote bandwidth to total bandwidth (R_bw^remote of Sec. 5.1).
  [[nodiscard]] double remote_bandwidth_ratio() const;

  /// Peak link *data* bandwidth implied by traffic capacity and overhead.
  [[nodiscard]] double link_data_bandwidth_gbps() const;

  [[nodiscard]] const MemoryTierSpec& tier(Tier t) const {
    return t == Tier::kLocal ? local : remote;
  }
};

}  // namespace memdis::memsim
