// MachineConfig: a compute node plus its memory topology.
//
// The emulated platform of Sec. 3.3 is the two-tier degenerate case: one
// socket acts as the compute node (node tier), the other socket's memory
// acts as the pool reached over the UPI link. The numbers are the paper's
// measured values: 73 GB/s / 111 ns node DRAM, 34 GB/s / 202 ns pool, with
// PCM-visible link traffic saturating at 85 GB/s due to protocol overhead.
// Richer presets (three-tier CXL chains, split+pool hybrids) express the
// rack-scale what-ifs of Fig. 2 as N-tier topologies.
#pragma once

#include <cstdint>
#include <vector>

#include "memsim/tier.h"

namespace memdis::memsim {

struct MachineConfig {
  // Compute side.
  double peak_gflops = 330.0;  ///< platform peak (AVX-512, all threads)
  int threads = 12;            ///< hardware threads used by workloads
  double mlp = 12.0;           ///< memory-level parallelism for demand misses

  /// Memory tiers, node tier first. Defaults to the Skylake-X testbed's
  /// local/pool pair; see the presets below for richer topologies. The
  /// 0.35 interference share calibrates the Fig. 10 sensitivity magnitudes
  /// (most-sensitive app ≈ 15% loss at LoI=50 on 50/50 tiers).
  MemoryTopology topology{{
      MemoryTierSpec{"local-ddr", 96ULL << 30, 73.0, 111.0, {}},
      MemoryTierSpec{"pool-ddr", 96ULL << 30, 34.0, 202.0, FabricLinkSpec{}},
  }};

  std::uint64_t page_bytes = 4096;
  std::uint64_t cacheline_bytes = 64;

  // ---- tier access --------------------------------------------------------
  [[nodiscard]] int num_tiers() const { return topology.num_tiers(); }
  [[nodiscard]] const MemoryTierSpec& tier(TierId t) const { return topology.tier(t); }
  [[nodiscard]] MemoryTierSpec& tier(TierId t) { return topology.tier(t); }

  /// The node-local tier (tier 0).
  [[nodiscard]] const MemoryTierSpec& node_tier() const { return topology.tier(kNodeTier); }
  [[nodiscard]] MemoryTierSpec& node_tier() { return topology.tier(kNodeTier); }

  /// The primary pool: the first fabric tier. Reference-point math (R_bw,
  /// LBench calibration, interference coefficients) is defined against it.
  [[nodiscard]] const MemoryTierSpec& pool_tier() const {
    return topology.tier(topology.first_fabric());
  }
  [[nodiscard]] MemoryTierSpec& pool_tier() { return topology.tier(topology.first_fabric()); }

  /// The primary pool's link parameters.
  [[nodiscard]] const FabricLinkSpec& pool_link() const { return *pool_tier().link; }
  [[nodiscard]] FabricLinkSpec& pool_link() { return *pool_tier().link; }

  // ---- presets ------------------------------------------------------------
  /// The dual-socket Intel Xeon (Skylake-X) testbed from the paper.
  [[nodiscard]] static MachineConfig skylake_testbed();

  /// What-if preset: the pool behind a direct-attached CXL type-3 device
  /// (x16 CXL 2.0: ~45 GB/s data, ~190 ns — numbers in line with the
  /// genuine-device measurements the paper cites [41]). CXL.mem's flit
  /// protocol carries less overhead than the UPI emulation.
  [[nodiscard]] static MachineConfig cxl_direct_attached();

  /// What-if preset: a switched rack-scale CXL pool — same bandwidth as
  /// direct CXL but with switch traversal adding ~130 ns, the scenario the
  /// paper's Fig. 2 architecture implies for multi-node pools.
  [[nodiscard]] static MachineConfig cxl_switched_pool();

  /// What-if preset: the *split* disaggregation category (Sec. 2) — remote
  /// memory borrowed peer-to-peer from another compute node rather than a
  /// dedicated pool. Longer path than a pool device, and the borrowed
  /// traffic contends with the lender's own memory traffic, so a larger
  /// share of background traffic collides with the borrower.
  [[nodiscard]] static MachineConfig split_borrowing();

  /// Three-tier what-if: node DRAM, a direct-attached CXL device, and a
  /// switched rack pool behind it — the capacity chain Fig. 2's rack
  /// architecture implies once the direct device fills up.
  [[nodiscard]] static MachineConfig three_tier_cxl();

  /// Hybrid what-if: node DRAM plus two *asymmetric* pools side by side — a
  /// direct CXL device and peer-borrowed (split) memory, each with its own
  /// link. Capacity overflowing the CXL device lands on the peer tier.
  [[nodiscard]] static MachineConfig hybrid_split_pool();

  // ---- capacity shaping ---------------------------------------------------
  /// Returns a copy whose node-tier capacity is shrunk so that
  /// `remote_capacity_ratio` (e.g. 0.75) of `footprint_bytes` must spill off
  /// the node under first-touch. This mirrors the paper's `setup_waste`
  /// step, which occupies local memory to force a 25/50/75% capacity split.
  [[nodiscard]] MachineConfig with_remote_capacity_ratio(double remote_capacity_ratio,
                                                         std::uint64_t footprint_bytes) const;

  /// Returns a copy where tier i's capacity holds `fractions[i]` of
  /// `footprint_bytes` (rounded up to whole pages); tiers beyond the vector
  /// keep their configured capacity and absorb the rest of the spill chain.
  /// The generalization of with_remote_capacity_ratio to N-tier chains.
  [[nodiscard]] MachineConfig with_capacity_fractions(const std::vector<double>& fractions,
                                                      std::uint64_t footprint_bytes) const;

  /// Returns a copy with the node tier capacity set to `bytes`.
  [[nodiscard]] MachineConfig with_local_capacity(std::uint64_t bytes) const;

  // ---- two-tier reference ratios (Sec. 5.1) -------------------------------
  /// Ratio of off-node capacity to total capacity (R_cap^remote).
  [[nodiscard]] double remote_capacity_ratio() const;

  /// Ratio of off-node bandwidth to total bandwidth (R_bw^remote).
  [[nodiscard]] double remote_bandwidth_ratio() const;

  /// Peak *data* bandwidth of the primary pool link.
  [[nodiscard]] double link_data_bandwidth_gbps() const;
};

}  // namespace memdis::memsim
