// TieredMemory: virtual address space, page table, and placement engine.
//
// Allocations reserve virtual ranges; physical tier assignment happens at
// first *touch* (matching Linux), which is what makes allocation/initialization
// order matter — the lever exploited by the BFS case study (Sec. 7.1).
// The page table is topology-agnostic: every per-tier structure is sized by
// the machine's MemoryTopology, and first-touch spill walks tiers in id
// order (node tier first, then each fabric tier down the chain).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "memsim/machine.h"
#include "memsim/policy.h"
#include "memsim/tier.h"

namespace memdis::memsim {

/// A reserved virtual address range, page aligned.
struct VRange {
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;
  [[nodiscard]] std::uint64_t end() const { return base + bytes; }
  [[nodiscard]] bool contains(std::uint64_t addr) const { return addr >= base && addr < end(); }
};

/// numa_maps-style snapshot of resident bytes per tier (Sec. 3.1, Level 1
/// capacity tracking and Level 2 R_cap measurement).
struct NumaSnapshot {
  std::vector<std::uint64_t> resident_bytes;  ///< indexed by TierId

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto b : resident_bytes) sum += b;
    return sum;
  }
  /// Resident bytes on the node tier.
  [[nodiscard]] std::uint64_t node_bytes() const {
    return resident_bytes.empty() ? 0 : resident_bytes[kNodeTier];
  }
  /// Resident bytes off the node (all fabric tiers combined).
  [[nodiscard]] std::uint64_t off_node_bytes() const { return total() - node_bytes(); }
  /// Fraction of resident memory off the node tier (remote capacity ratio).
  [[nodiscard]] double remote_ratio() const {
    const auto t = total();
    return t == 0 ? 0.0
                  : static_cast<double>(off_node_bytes()) / static_cast<double>(t);
  }
};

/// Thrown when a bound allocation cannot fit — the OOM abort the paper
/// describes for jobs exceeding fixed node memory (Sec. 2).
class OutOfMemoryError : public std::runtime_error {
 public:
  explicit OutOfMemoryError(const std::string& what) : std::runtime_error(what) {}
};

class TieredMemory {
 public:
  explicit TieredMemory(const MachineConfig& cfg);

  /// Reserves a virtual range with the given placement policy. Placement of
  /// each page is decided lazily on first touch.
  [[nodiscard]] VRange alloc(std::uint64_t bytes, MemPolicy policy = MemPolicy::first_touch());

  /// Releases a range: resident pages return capacity to their tier.
  /// The virtual addresses are never reused (bump allocation), which keeps
  /// traces unambiguous.
  void free(const VRange& range);

  /// Resolves the tier of `vaddr`, assigning a page on first touch according
  /// to the range's policy. Throws OutOfMemoryError for bind overflow
  /// and contract_violation for untracked addresses.
  TierId touch(std::uint64_t vaddr);

  /// Tier of an already-resident page; querying an untouched page is a
  /// contract violation.
  [[nodiscard]] TierId tier_of(std::uint64_t vaddr) const;

  /// True when the page holding `vaddr` has been touched.
  [[nodiscard]] bool resident(std::uint64_t vaddr) const;

  /// Moves a resident page range to `dst` if capacity allows (page migration
  /// as done by move_pages/libnuma). Works between any tier pair. Returns
  /// pages actually moved.
  std::uint64_t migrate(const VRange& range, TierId dst);

  [[nodiscard]] NumaSnapshot snapshot() const;
  [[nodiscard]] std::uint64_t used_bytes(TierId t) const;
  [[nodiscard]] std::uint64_t capacity_bytes(TierId t) const;
  [[nodiscard]] std::uint64_t free_bytes(TierId t) const;
  [[nodiscard]] std::uint64_t page_bytes() const { return page_bytes_; }
  [[nodiscard]] int num_tiers() const { return static_cast<int>(capacity_.size()); }

  /// Emulates the paper's `setup_waste`: permanently occupies `bytes` of
  /// node-tier capacity so subsequent first-touch allocations spill earlier.
  void waste_local(std::uint64_t bytes);

  /// Total number of touched pages since construction.
  [[nodiscard]] std::uint64_t touched_pages() const { return touched_pages_; }

  /// Bytes migrated from `src` to `dst` since construction (move_pages-style
  /// accounting; feeds the migration planner's budget/plan reporting).
  [[nodiscard]] std::uint64_t migrated_bytes(TierId src, TierId dst) const;

  /// Bytes migrated over all tier pairs since construction.
  [[nodiscard]] std::uint64_t migrated_bytes_total() const { return migrated_total_; }

 private:
  struct Region {
    VRange range;
    MemPolicy policy;
    std::uint64_t interleave_cursor = 0;  // pages placed so far (for N:M)
    bool freed = false;
    /// Inclusive prefix sums of the interleave weights, precomputed at
    /// alloc() so place_page resolves a slot with one upper_bound instead
    /// of re-walking the weight vector per page. Empty for non-interleave
    /// policies; the last entry is the interleave period.
    std::vector<std::uint64_t> weight_prefix;
  };

  // page_tier_ encoding: kUntouched, tier id while resident, or
  // kFreedBase + tier id after free (tombstone so late writebacks from
  // the cache hierarchy still know which tier the page lived on).
  // kMaxTiers <= 8 keeps every state inside an int8_t.
  static constexpr std::int8_t kUntouched = -1;
  static constexpr std::int8_t kFreedBase = kMaxTiers;

  [[nodiscard]] std::uint64_t page_of(std::uint64_t vaddr) const {
    return (vaddr - kVaBase) >> page_shift_;
  }
  Region* region_of(std::uint64_t vaddr);
  TierId place_page(Region& region, std::uint64_t page);
  [[nodiscard]] bool tier_has_room(TierId t) const;
  /// First tier in spill order (0..N-1) with room, or -1 when all full.
  [[nodiscard]] TierId first_tier_with_room() const;
  /// Fallback used by interleave/preferred: first tier with room other than
  /// `excluded`, scanning in spill order; -1 when everything is full.
  [[nodiscard]] TierId fallback_tier(TierId excluded) const;
  void assign(std::uint64_t page, TierId t);

  static constexpr std::uint64_t kVaBase = 0x10000000ULL;

  std::uint64_t page_bytes_;
  std::uint32_t page_shift_ = 0;  ///< log2(page_bytes); pow2 enforced
  /// One-entry translation memo: the last page resolved by touch() or
  /// tier_of(). The engine's access stream has strong page locality (64
  /// lines/page), so most translations re-resolve the previous page; the
  /// memo returns the cached tier without re-reading the page table. Only
  /// *resident* pages are memoized, and anything that can change a
  /// resident page's tier or validity (migrate, free) drops the memo.
  /// Mutable: tier_of() is logically const, the memo is pure caching.
  mutable std::uint64_t memo_page_ = ~0ULL;
  mutable TierId memo_tier_ = -1;
  std::uint64_t bump_ = kVaBase;
  std::vector<std::int8_t> page_tier_;   // indexed by page number, -1 untouched
  std::vector<std::uint32_t> page_region_;  // region index per page
  std::vector<Region> regions_;
  std::vector<std::uint64_t> used_;      // indexed by TierId
  std::vector<std::uint64_t> capacity_;  // indexed by TierId
  std::uint64_t touched_pages_ = 0;
  std::vector<std::uint64_t> migrated_;  // src * num_tiers + dst, bytes
  std::uint64_t migrated_total_ = 0;
};

}  // namespace memdis::memsim
