#include "memsim/machine.h"

#include <algorithm>

#include "common/contract.h"

namespace memdis::memsim {

namespace {

FabricLinkSpec cxl_link() {
  FabricLinkSpec link;
  link.protocol_overhead = 1.5;
  link.traffic_capacity_gbps = 45.0 * link.protocol_overhead;
  return link;
}

FabricLinkSpec peer_link() {
  FabricLinkSpec link;
  link.protocol_overhead = 2.0;
  link.traffic_capacity_gbps = 25.0 * link.protocol_overhead;
  link.interference_share = 0.7;  // contends with the lender's traffic
  return link;
}

}  // namespace

MachineConfig MachineConfig::skylake_testbed() { return MachineConfig{}; }

MachineConfig MachineConfig::cxl_direct_attached() {
  MachineConfig cfg;
  cfg.pool_tier() = MemoryTierSpec{"cxl-direct", 96ULL << 30, 45.0, 190.0, cxl_link()};
  return cfg;
}

MachineConfig MachineConfig::cxl_switched_pool() {
  MachineConfig cfg = cxl_direct_attached();
  cfg.pool_tier().name = "cxl-switched";
  cfg.pool_tier().latency_ns = 320.0;  // + switch traversal each way
  return cfg;
}

MachineConfig MachineConfig::split_borrowing() {
  MachineConfig cfg;
  cfg.pool_tier() = MemoryTierSpec{"peer-borrowed", 96ULL << 30, 25.0, 450.0, peer_link()};
  return cfg;
}

MachineConfig MachineConfig::three_tier_cxl() {
  MachineConfig cfg = cxl_direct_attached();
  // The switched pool hangs off the direct device's switch port (upstream =
  // tier 1), so tier-2<->tier-1 page migrations cross only the switch
  // segment while accesses still pay the full node<->pool path (320 ns).
  MemoryTierSpec switched{"cxl-switched", 96ULL << 30, 45.0, 320.0, cxl_link(), 1};
  cfg.topology.tiers.push_back(std::move(switched));
  cfg.topology.validate();
  return cfg;
}

MachineConfig MachineConfig::hybrid_split_pool() {
  MachineConfig cfg = cxl_direct_attached();
  MemoryTierSpec peer{"peer-borrowed", 96ULL << 30, 25.0, 450.0, peer_link()};
  cfg.topology.tiers.push_back(std::move(peer));
  cfg.topology.validate();
  return cfg;
}

MachineConfig MachineConfig::with_remote_capacity_ratio(double remote_capacity_ratio_,
                                                        std::uint64_t footprint_bytes) const {
  expects(remote_capacity_ratio_ >= 0.0 && remote_capacity_ratio_ < 1.0,
          "remote capacity ratio must be in [0,1)");
  expects(footprint_bytes > 0, "footprint must be positive");
  MachineConfig cfg = *this;
  const auto local_bytes = static_cast<std::uint64_t>(
      static_cast<double>(footprint_bytes) * (1.0 - remote_capacity_ratio_));
  // Round up to whole pages so the requested split is achievable.
  const std::uint64_t pages = (local_bytes + page_bytes - 1) / page_bytes;
  cfg.node_tier().capacity_bytes = std::max<std::uint64_t>(pages * page_bytes, page_bytes);
  return cfg;
}

MachineConfig MachineConfig::with_capacity_fractions(const std::vector<double>& fractions,
                                                     std::uint64_t footprint_bytes) const {
  expects(footprint_bytes > 0, "footprint must be positive");
  expects(static_cast<int>(fractions.size()) <= num_tiers(),
          "more capacity fractions than tiers");
  MachineConfig cfg = *this;
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    expects(fractions[i] >= 0.0 && fractions[i] <= 1.0,
            "capacity fraction must be in [0,1]");
    const auto bytes = static_cast<std::uint64_t>(static_cast<double>(footprint_bytes) *
                                                  fractions[i]);
    const std::uint64_t pages = (bytes + page_bytes - 1) / page_bytes;
    cfg.tier(static_cast<TierId>(i)).capacity_bytes =
        std::max<std::uint64_t>(pages * page_bytes, page_bytes);
  }
  return cfg;
}

MachineConfig MachineConfig::with_local_capacity(std::uint64_t bytes) const {
  MachineConfig cfg = *this;
  cfg.node_tier().capacity_bytes = bytes;
  return cfg;
}

double MachineConfig::remote_capacity_ratio() const {
  const auto total = static_cast<double>(topology.total_capacity_bytes());
  if (total <= 0) return 0.0;
  std::uint64_t off_node = 0;
  for (TierId t = 1; t < num_tiers(); ++t) off_node += tier(t).capacity_bytes;
  return static_cast<double>(off_node) / total;
}

double MachineConfig::remote_bandwidth_ratio() const {
  const double total = topology.total_bandwidth_gbps();
  if (total <= 0) return 0.0;
  double off_node = 0.0;
  for (TierId t = 1; t < num_tiers(); ++t) off_node += tier(t).bandwidth_gbps;
  return off_node / total;
}

double MachineConfig::link_data_bandwidth_gbps() const {
  return pool_link().data_bandwidth_gbps();
}

}  // namespace memdis::memsim
