#include "memsim/machine.h"

#include <algorithm>

#include "common/contract.h"

namespace memdis::memsim {

MachineConfig MachineConfig::skylake_testbed() { return MachineConfig{}; }

MachineConfig MachineConfig::cxl_direct_attached() {
  MachineConfig cfg;
  cfg.remote = MemoryTierSpec{"cxl-direct", 96ULL << 30, 45.0, 190.0};
  cfg.link_protocol_overhead = 1.5;
  cfg.link_traffic_capacity_gbps = 45.0 * cfg.link_protocol_overhead;
  return cfg;
}

MachineConfig MachineConfig::cxl_switched_pool() {
  MachineConfig cfg = cxl_direct_attached();
  cfg.remote.name = "cxl-switched";
  cfg.remote.latency_ns = 320.0;  // + switch traversal each way
  return cfg;
}

MachineConfig MachineConfig::split_borrowing() {
  MachineConfig cfg;
  cfg.remote = MemoryTierSpec{"peer-borrowed", 96ULL << 30, 25.0, 450.0};
  cfg.link_protocol_overhead = 2.0;
  cfg.link_traffic_capacity_gbps = 25.0 * cfg.link_protocol_overhead;
  cfg.link_interference_share = 0.7;  // contends with the lender's traffic
  return cfg;
}

MachineConfig MachineConfig::with_remote_capacity_ratio(double remote_capacity_ratio_,
                                                        std::uint64_t footprint_bytes) const {
  expects(remote_capacity_ratio_ >= 0.0 && remote_capacity_ratio_ < 1.0,
          "remote capacity ratio must be in [0,1)");
  expects(footprint_bytes > 0, "footprint must be positive");
  MachineConfig cfg = *this;
  const auto local_bytes = static_cast<std::uint64_t>(
      static_cast<double>(footprint_bytes) * (1.0 - remote_capacity_ratio_));
  // Round up to whole pages so the requested split is achievable.
  const std::uint64_t pages = (local_bytes + page_bytes - 1) / page_bytes;
  cfg.local.capacity_bytes = std::max<std::uint64_t>(pages * page_bytes, page_bytes);
  return cfg;
}

MachineConfig MachineConfig::with_local_capacity(std::uint64_t bytes) const {
  MachineConfig cfg = *this;
  cfg.local.capacity_bytes = bytes;
  return cfg;
}

double MachineConfig::remote_capacity_ratio() const {
  const double total =
      static_cast<double>(local.capacity_bytes) + static_cast<double>(remote.capacity_bytes);
  return total > 0 ? static_cast<double>(remote.capacity_bytes) / total : 0.0;
}

double MachineConfig::remote_bandwidth_ratio() const {
  const double total = local.bandwidth_gbps + remote.bandwidth_gbps;
  return total > 0 ? remote.bandwidth_gbps / total : 0.0;
}

double MachineConfig::link_data_bandwidth_gbps() const {
  return link_traffic_capacity_gbps / link_protocol_overhead;
}

}  // namespace memdis::memsim
