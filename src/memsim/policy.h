// Page placement policies over an N-tier topology.
//
// The emulation platform relies on Linux's default first-touch policy: pages
// land on the node tier until it is full, then spill down the tier chain
// (Sec. 3.3). The explicit policies model libnuma bindings and the
// weighted N:M interleaving of the tiered-memory kernel patch cited in
// Sec. 2.2 ("Low Porting Efforts"), generalized to weight vectors over
// arbitrary tier counts.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "memsim/tier.h"

namespace memdis::memsim {

enum class PlacementKind : std::uint8_t {
  kFirstTouch,  ///< node tier until full, spill down the chain (Linux default)
  kBind,        ///< numactl --membind=<tier>; fails (OOM) when the tier is full
  kInterleave,  ///< weighted round-robin across tiers
  kPreferred,   ///< prefer the target tier; fall back to the first other tier
                ///< with room in spill order (no OOM)
};

/// Placement request attached to an allocation. Interleave weights follow
/// the kernel patch semantics, indexed by tier id: `weights[t]` pages on
/// tier t, then the next tier, repeating; missing entries mean weight 0.
struct MemPolicy {
  PlacementKind kind = PlacementKind::kFirstTouch;
  TierId target = kNodeTier;            ///< bind/preferred target tier
  std::vector<std::uint32_t> weights;   ///< per-tier interleave weights

  [[nodiscard]] static MemPolicy first_touch() { return {}; }
  /// Bind to an arbitrary tier (OOM when it is full).
  [[nodiscard]] static MemPolicy bind(TierId t) {
    return {PlacementKind::kBind, t, {}};
  }
  /// numactl --membind=local analogue.
  [[nodiscard]] static MemPolicy bind_node() { return bind(kNodeTier); }
  /// Force pages onto the primary pool (tier 1 in every built-in preset).
  [[nodiscard]] static MemPolicy bind_pool() { return bind(1); }
  /// Prefer `t`; when it is full, fall back to the first other tier with
  /// room in spill order instead of OOM-ing.
  [[nodiscard]] static MemPolicy preferred(TierId t = kNodeTier) {
    return {PlacementKind::kPreferred, t, {}};
  }
  /// Weighted interleave over an arbitrary tier weight vector.
  [[nodiscard]] static MemPolicy interleave(std::vector<std::uint32_t> tier_weights) {
    return {PlacementKind::kInterleave, kNodeTier, std::move(tier_weights)};
  }
  /// Two-tier convenience: `node_w` pages on tier 0, `pool_w` on tier 1.
  [[nodiscard]] static MemPolicy interleave(std::uint32_t node_w, std::uint32_t pool_w) {
    return interleave(std::vector<std::uint32_t>{node_w, pool_w});
  }
};

}  // namespace memdis::memsim
