// Page placement policies.
//
// The emulation platform relies on Linux's default first-touch policy: pages
// land on the local NUMA node until it is full, then spill to the remote
// node (Sec. 3.3). The explicit policies model libnuma bindings and the
// weighted N:M interleaving of the tiered-memory kernel patch cited in
// Sec. 2.2 ("Low Porting Efforts").
#pragma once

#include <cstdint>

#include "memsim/tier.h"

namespace memdis::memsim {

enum class PlacementKind : std::uint8_t {
  kFirstTouch,  ///< local until full, spill to remote (Linux default)
  kBindLocal,   ///< numactl --membind=local; fails (OOM) when local is full
  kBindRemote,  ///< force pages onto the pool tier
  kInterleave,  ///< weighted N:M round-robin across tiers
  kPreferredLocal,  ///< prefer local but fall back to remote (no OOM)
};

/// Placement request attached to an allocation. Interleave weights follow
/// the kernel patch semantics: `local_weight` pages local, then
/// `remote_weight` pages remote, repeating.
struct MemPolicy {
  PlacementKind kind = PlacementKind::kFirstTouch;
  std::uint32_t local_weight = 1;
  std::uint32_t remote_weight = 1;

  [[nodiscard]] static MemPolicy first_touch() { return {}; }
  [[nodiscard]] static MemPolicy bind_local() { return {PlacementKind::kBindLocal, 1, 1}; }
  [[nodiscard]] static MemPolicy bind_remote() { return {PlacementKind::kBindRemote, 1, 1}; }
  [[nodiscard]] static MemPolicy preferred_local() {
    return {PlacementKind::kPreferredLocal, 1, 1};
  }
  [[nodiscard]] static MemPolicy interleave(std::uint32_t local_w, std::uint32_t remote_w) {
    return {PlacementKind::kInterleave, local_w, remote_w};
  }
};

}  // namespace memdis::memsim
