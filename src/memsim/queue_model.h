// QueueModel: per-link queueing with partitioned traffic classes.
//
// The LoI model (link.h) treats congestion as an *input*: background
// interference is a dial, and the simulated application never congests
// itself. The queue model closes that loop. Every fabric link carries two
// traffic classes sharing one queue:
//
//   kDemand — cacheline-granularity demand misses (the stall-latency path)
//   kBulk   — page-migration transfers issued by runtime services
//
// Each class's delay is the LinkModel M/G/1-style utilization curve
// evaluated at an *effective* Level-of-Interference: the configured
// background LoI plus the other class's measured traffic as a share of
// link capacity. A migration storm therefore inflates demand-miss latency,
// and a saturating demand phase prices migrations up — without changing
// the closed-form curve the rest of the stack (MigrationCostModel, the
// planner, the goldens) is calibrated against.
//
// Arrival rates come from a windowed estimator: the last
// `FabricLinkSpec::queue_window_epochs` closed epochs' (bytes, seconds)
// observations per class, summed into one rate. The estimator is
// deterministic and seed-free — same access stream, same delays.
//
// Compat guarantee (the `loi` mode of `--link-model`): with zero
// cross-class traffic the effective LoI *is* the background LoI, so every
// query reduces bit-identically to the LinkModel closed form. See
// docs/QUEUE_MODEL.md for the equivalence sketch.
#pragma once

#include <cstddef>
#include <vector>

#include "memsim/link.h"
#include "memsim/tier.h"

namespace memdis::memsim {

/// Which per-link delay model the engine runs.
enum class LinkModelKind {
  kLoi,    ///< closed-form LinkModel under configured background LoI only
  kQueue,  ///< QueueModel: classes feed each other's effective LoI
};

/// Traffic classes sharing one fabric link's queue.
enum class TrafficClass : int {
  kDemand = 0,  ///< demand cacheline misses (stall-latency path)
  kBulk = 1,    ///< bulk page-migration transfers
};

/// Number of traffic classes (array sizing).
inline constexpr int kNumTrafficClasses = 2;

/// The class competing with `cls` on the same link.
[[nodiscard]] constexpr TrafficClass other_class(TrafficClass cls) {
  return cls == TrafficClass::kDemand ? TrafficClass::kBulk : TrafficClass::kDemand;
}

class QueueModel {
 public:
  /// Builds the queue for one fabric tier; `spec.link` must be set. The
  /// estimator window length comes from `spec.link->queue_window_epochs`.
  explicit QueueModel(const MemoryTierSpec& spec);

  /// Records one closed epoch's observed traffic for `cls`: `bytes` of
  /// data moved over `seconds` of simulated time. Evicts the oldest
  /// observation once the window is full.
  void observe(TrafficClass cls, double bytes, double seconds);

  /// Windowed arrival-rate estimate for `cls` in GB/s of *data* (protocol
  /// overhead not applied). `extra_bytes`/`extra_seconds` fold in the
  /// current, not-yet-observed epoch, so the closing epoch can see its own
  /// burst. Zero when the window holds no time.
  [[nodiscard]] double estimated_rate_gbps(TrafficClass cls, double extra_bytes = 0.0,
                                           double extra_seconds = 0.0) const;

  /// Windowed rate of the class competing with `cls` — the default
  /// cross-traffic term of the queries below.
  [[nodiscard]] double cross_rate_gbps(TrafficClass cls) const {
    return estimated_rate_gbps(other_class(cls));
  }

  /// Effective LoI class `cls` experiences: `background_loi` plus the
  /// cross-class data rate's link traffic as % of capacity, clamped to the
  /// LinkModel's LoI bound. Exactly `background_loi` at zero cross rate.
  [[nodiscard]] double effective_loi(TrafficClass cls, double background_loi,
                                     double cross_rate_gbps) const;

  /// Queueing multiplier for `cls` offering `own_rate_gbps` of data while
  /// the other class offers `cross_rate_gbps`, under `background_loi`.
  [[nodiscard]] double latency_multiplier(TrafficClass cls, double background_loi,
                                          double own_rate_gbps, double cross_rate_gbps) const;

  /// Access latency (ns) for `cls` under the same load triple.
  [[nodiscard]] double effective_latency_ns(TrafficClass cls, double background_loi,
                                            double own_rate_gbps,
                                            double cross_rate_gbps) const;

  /// Data bandwidth available to `cls` after background *and* cross-class
  /// traffic take their share of the link.
  [[nodiscard]] double effective_data_bandwidth_gbps(TrafficClass cls, double background_loi,
                                                     double cross_rate_gbps) const;

  /// Observations currently held for `cls` (≤ window length).
  [[nodiscard]] std::size_t window_size(TrafficClass cls) const;
  /// Configured estimator window length in epochs.
  [[nodiscard]] std::size_t window_epochs() const { return window_; }

 private:
  /// One closed epoch's observation for one class.
  struct Sample {
    double bytes = 0.0;
    double seconds = 0.0;
  };
  /// Fixed-capacity ring over the last `window_` epochs.
  struct Window {
    std::vector<Sample> samples;  ///< ring storage, size ≤ window_
    std::size_t next = 0;         ///< ring cursor
    double bytes_sum = 0.0;
    double seconds_sum = 0.0;
  };

  /// Applies the effective LoI and returns the scratch LinkModel to query.
  [[nodiscard]] const LinkModel& at_effective_loi(TrafficClass cls, double background_loi,
                                                  double cross_rate_gbps) const;

  /// Scratch LinkModel re-pointed at the effective LoI per query; mutable
  /// because queries are logically const (the queue's own state — the
  /// windows — never changes on a read).
  mutable LinkModel link_;
  std::size_t window_;
  Window windows_[kNumTrafficClasses];
};

}  // namespace memdis::memsim
