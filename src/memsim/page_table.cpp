#include "memsim/page_table.h"

#include <algorithm>

#include "common/contract.h"

namespace memdis::memsim {

TieredMemory::TieredMemory(const MachineConfig& cfg) : page_bytes_(cfg.page_bytes) {
  expects(page_bytes_ > 0 && (page_bytes_ & (page_bytes_ - 1)) == 0,
          "page size must be a power of two");
  capacity_[tier_index(Tier::kLocal)] = cfg.local.capacity_bytes;
  capacity_[tier_index(Tier::kRemote)] = cfg.remote.capacity_bytes;
}

VRange TieredMemory::alloc(std::uint64_t bytes, MemPolicy policy) {
  expects(bytes > 0, "alloc of zero bytes");
  const std::uint64_t aligned = ((bytes + page_bytes_ - 1) / page_bytes_) * page_bytes_;
  VRange range{bump_, aligned};
  bump_ += aligned;
  const std::uint64_t last_page = page_of(range.end() - 1);
  if (last_page >= page_tier_.size()) {
    page_tier_.resize(last_page + 1, kUntouched);
    page_region_.resize(last_page + 1, 0);
  }
  const auto region_idx = static_cast<std::uint32_t>(regions_.size());
  regions_.push_back(Region{range, policy, 0, false});
  for (std::uint64_t p = page_of(range.base); p <= last_page; ++p) page_region_[p] = region_idx;
  return range;
}

void TieredMemory::free(const VRange& range) {
  expects(range.bytes > 0, "free of empty range");
  Region* region = region_of(range.base);
  expects(region != nullptr && region->range.base == range.base, "free must match an allocation");
  expects(!region->freed, "double free");
  region->freed = true;
  for (std::uint64_t p = page_of(range.base); p <= page_of(range.end() - 1); ++p) {
    if (page_tier_[p] >= 0 && page_tier_[p] < kFreedBase) {
      used_[static_cast<int>(page_tier_[p])] -= page_bytes_;
      page_tier_[p] = static_cast<std::int8_t>(kFreedBase + page_tier_[p]);
    }
  }
}

Tier TieredMemory::touch(std::uint64_t vaddr) {
  expects(vaddr >= kVaBase && vaddr < bump_, "touch of unallocated address");
  const std::uint64_t page = page_of(vaddr);
  if (page_tier_[page] >= 0 && page_tier_[page] < kFreedBase)
    return static_cast<Tier>(page_tier_[page]);
  expects(page_tier_[page] == kUntouched, "touch after free");
  Region& region = regions_[page_region_[page]];
  expects(!region.freed, "use after free");
  return place_page(region, page);
}

Tier TieredMemory::tier_of(std::uint64_t vaddr) const {
  expects(vaddr >= kVaBase && vaddr < bump_, "tier_of unallocated address");
  const std::uint64_t page = page_of(vaddr);
  expects(page_tier_[page] != kUntouched, "tier_of untouched page");
  const std::int8_t enc = page_tier_[page];
  return static_cast<Tier>(enc >= kFreedBase ? enc - kFreedBase : enc);
}

bool TieredMemory::resident(std::uint64_t vaddr) const {
  if (vaddr < kVaBase || vaddr >= bump_) return false;
  const std::int8_t enc = page_tier_[page_of(vaddr)];
  return enc >= 0 && enc < kFreedBase;
}

std::uint64_t TieredMemory::migrate(const VRange& range, Tier dst) {
  expects(range.bytes > 0, "migrate of empty range");
  std::uint64_t moved = 0;
  for (std::uint64_t p = page_of(range.base); p <= page_of(range.end() - 1); ++p) {
    if (page_tier_[p] < 0 || page_tier_[p] >= kFreedBase) continue;
    const Tier src = static_cast<Tier>(page_tier_[p]);
    if (src == dst) continue;
    if (used_[tier_index(dst)] + page_bytes_ > capacity_[tier_index(dst)]) break;
    used_[tier_index(src)] -= page_bytes_;
    used_[tier_index(dst)] += page_bytes_;
    page_tier_[p] = static_cast<std::int8_t>(tier_index(dst));
    ++moved;
  }
  return moved;
}

NumaSnapshot TieredMemory::snapshot() const {
  NumaSnapshot s;
  s.resident_bytes[0] = used_[0];
  s.resident_bytes[1] = used_[1];
  return s;
}

std::uint64_t TieredMemory::used_bytes(Tier t) const { return used_[tier_index(t)]; }
std::uint64_t TieredMemory::capacity_bytes(Tier t) const { return capacity_[tier_index(t)]; }
std::uint64_t TieredMemory::free_bytes(Tier t) const {
  return capacity_[tier_index(t)] - used_[tier_index(t)];
}

void TieredMemory::waste_local(std::uint64_t bytes) {
  const int li = tier_index(Tier::kLocal);
  // Capacity is shrunk rather than tracked as a region: wasted memory never
  // becomes free again, exactly like the paper's background hog process.
  const std::uint64_t take = std::min(bytes, capacity_[li] - used_[li]);
  capacity_[li] -= take;
}

TieredMemory::Region* TieredMemory::region_of(std::uint64_t vaddr) {
  if (vaddr < kVaBase || vaddr >= bump_) return nullptr;
  return &regions_[page_region_[page_of(vaddr)]];
}

bool TieredMemory::tier_has_room(Tier t) const {
  return used_[tier_index(t)] + page_bytes_ <= capacity_[tier_index(t)];
}

void TieredMemory::assign(std::uint64_t page, Tier t) {
  page_tier_[page] = static_cast<std::int8_t>(tier_index(t));
  used_[tier_index(t)] += page_bytes_;
  ++touched_pages_;
}

Tier TieredMemory::place_page(Region& region, std::uint64_t page) {
  const MemPolicy& pol = region.policy;
  switch (pol.kind) {
    case PlacementKind::kFirstTouch:
    case PlacementKind::kPreferredLocal: {
      const Tier t = tier_has_room(Tier::kLocal) ? Tier::kLocal : Tier::kRemote;
      if (!tier_has_room(t)) throw OutOfMemoryError("both tiers exhausted");
      assign(page, t);
      return t;
    }
    case PlacementKind::kBindLocal: {
      if (!tier_has_room(Tier::kLocal))
        throw OutOfMemoryError("bind-local allocation exceeds local capacity");
      assign(page, Tier::kLocal);
      return Tier::kLocal;
    }
    case PlacementKind::kBindRemote: {
      if (!tier_has_room(Tier::kRemote)) throw OutOfMemoryError("remote tier exhausted");
      assign(page, Tier::kRemote);
      return Tier::kRemote;
    }
    case PlacementKind::kInterleave: {
      const std::uint64_t period = pol.local_weight + pol.remote_weight;
      expects(period > 0, "interleave weights must not both be zero");
      const std::uint64_t slot = region.interleave_cursor++ % period;
      Tier want = slot < pol.local_weight ? Tier::kLocal : Tier::kRemote;
      if (!tier_has_room(want)) want = want == Tier::kLocal ? Tier::kRemote : Tier::kLocal;
      if (!tier_has_room(want)) throw OutOfMemoryError("both tiers exhausted");
      assign(page, want);
      return want;
    }
  }
  throw contract_violation("unknown placement kind");
}

}  // namespace memdis::memsim
