#include "memsim/page_table.h"

#include <algorithm>

#include "common/contract.h"
#include "common/units.h"

namespace memdis::memsim {

TieredMemory::TieredMemory(const MachineConfig& cfg) : page_bytes_(cfg.page_bytes) {
  expects(page_bytes_ > 0 && (page_bytes_ & (page_bytes_ - 1)) == 0,
          "page size must be a power of two");
  page_shift_ = log2_pow2(page_bytes_);
  cfg.topology.validate();
  const int n = cfg.num_tiers();
  used_.assign(static_cast<std::size_t>(n), 0);
  capacity_.resize(static_cast<std::size_t>(n));
  for (TierId t = 0; t < n; ++t)
    capacity_[static_cast<std::size_t>(t)] = cfg.tier(t).capacity_bytes;
  migrated_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0);
}

VRange TieredMemory::alloc(std::uint64_t bytes, MemPolicy policy) {
  expects(bytes > 0, "alloc of zero bytes");
  if (policy.kind == PlacementKind::kBind || policy.kind == PlacementKind::kPreferred)
    expects(policy.target >= 0 && policy.target < num_tiers(),
            "policy targets a tier outside the topology");
  if (policy.kind == PlacementKind::kInterleave)
    expects(static_cast<int>(policy.weights.size()) <= num_tiers(),
            "more interleave weights than tiers");
  const std::uint64_t aligned = ((bytes + page_bytes_ - 1) / page_bytes_) * page_bytes_;
  VRange range{bump_, aligned};
  bump_ += aligned;
  const std::uint64_t last_page = page_of(range.end() - 1);
  if (last_page >= page_tier_.size()) {
    page_tier_.resize(last_page + 1, kUntouched);
    page_region_.resize(last_page + 1, 0);
  }
  const auto region_idx = static_cast<std::uint32_t>(regions_.size());
  regions_.push_back(Region{range, std::move(policy), 0, false, {}});
  Region& region = regions_.back();
  if (region.policy.kind == PlacementKind::kInterleave) {
    std::uint64_t acc = 0;
    region.weight_prefix.reserve(region.policy.weights.size());
    for (const auto w : region.policy.weights) {
      acc += w;
      region.weight_prefix.push_back(acc);
    }
    expects(acc > 0, "interleave weights must not all be zero");
  }
  for (std::uint64_t p = page_of(range.base); p <= last_page; ++p) page_region_[p] = region_idx;
  return range;
}

void TieredMemory::free(const VRange& range) {
  expects(range.bytes > 0, "free of empty range");
  Region* region = region_of(range.base);
  expects(region != nullptr && region->range.base == range.base, "free must match an allocation");
  expects(!region->freed, "double free");
  region->freed = true;
  memo_page_ = ~0ULL;  // the memoized page may be in this range
  for (std::uint64_t p = page_of(range.base); p <= page_of(range.end() - 1); ++p) {
    if (page_tier_[p] >= 0 && page_tier_[p] < kFreedBase) {
      used_[static_cast<std::size_t>(page_tier_[p])] -= page_bytes_;
      page_tier_[p] = static_cast<std::int8_t>(kFreedBase + page_tier_[p]);
    }
  }
}

TierId TieredMemory::touch(std::uint64_t vaddr) {
  expects(vaddr >= kVaBase && vaddr < bump_, "touch of unallocated address");
  const std::uint64_t page = page_of(vaddr);
  if (page == memo_page_) return memo_tier_;  // resident, tier unchanged
  if (page_tier_[page] >= 0 && page_tier_[page] < kFreedBase) {
    memo_page_ = page;
    memo_tier_ = static_cast<TierId>(page_tier_[page]);
    return memo_tier_;
  }
  expects(page_tier_[page] == kUntouched, "touch after free");
  Region& region = regions_[page_region_[page]];
  expects(!region.freed, "use after free");
  const TierId t = place_page(region, page);
  memo_page_ = page;
  memo_tier_ = t;
  return t;
}

TierId TieredMemory::tier_of(std::uint64_t vaddr) const {
  expects(vaddr >= kVaBase && vaddr < bump_, "tier_of unallocated address");
  const std::uint64_t page = page_of(vaddr);
  if (page == memo_page_) return memo_tier_;  // resident, tier unchanged
  expects(page_tier_[page] != kUntouched, "tier_of untouched page");
  const std::int8_t enc = page_tier_[page];
  if (enc >= kFreedBase) return static_cast<TierId>(enc - kFreedBase);  // tombstone: no memo
  memo_page_ = page;
  memo_tier_ = static_cast<TierId>(enc);
  return static_cast<TierId>(enc);
}

bool TieredMemory::resident(std::uint64_t vaddr) const {
  if (vaddr < kVaBase || vaddr >= bump_) return false;
  const std::int8_t enc = page_tier_[page_of(vaddr)];
  return enc >= 0 && enc < kFreedBase;
}

std::uint64_t TieredMemory::migrate(const VRange& range, TierId dst) {
  expects(range.bytes > 0, "migrate of empty range");
  expects(dst >= 0 && dst < num_tiers(), "migrate to a tier outside the topology");
  memo_page_ = ~0ULL;  // moved pages invalidate the translation memo
  std::uint64_t moved = 0;
  for (std::uint64_t p = page_of(range.base); p <= page_of(range.end() - 1); ++p) {
    if (page_tier_[p] < 0 || page_tier_[p] >= kFreedBase) continue;
    const auto src = static_cast<TierId>(page_tier_[p]);
    if (src == dst) continue;
    if (used_[static_cast<std::size_t>(dst)] + page_bytes_ >
        capacity_[static_cast<std::size_t>(dst)])
      break;
    used_[static_cast<std::size_t>(src)] -= page_bytes_;
    used_[static_cast<std::size_t>(dst)] += page_bytes_;
    page_tier_[p] = static_cast<std::int8_t>(dst);
    migrated_[static_cast<std::size_t>(src) * static_cast<std::size_t>(num_tiers()) +
              static_cast<std::size_t>(dst)] += page_bytes_;
    migrated_total_ += page_bytes_;
    ++moved;
  }
  return moved;
}

std::uint64_t TieredMemory::migrated_bytes(TierId src, TierId dst) const {
  expects(src >= 0 && src < num_tiers() && dst >= 0 && dst < num_tiers(),
          "tier id out of range");
  return migrated_[static_cast<std::size_t>(src) * static_cast<std::size_t>(num_tiers()) +
                   static_cast<std::size_t>(dst)];
}

NumaSnapshot TieredMemory::snapshot() const {
  NumaSnapshot s;
  s.resident_bytes = used_;
  return s;
}

std::uint64_t TieredMemory::used_bytes(TierId t) const {
  expects(t >= 0 && t < num_tiers(), "tier id out of range");
  return used_[static_cast<std::size_t>(t)];
}
std::uint64_t TieredMemory::capacity_bytes(TierId t) const {
  expects(t >= 0 && t < num_tiers(), "tier id out of range");
  return capacity_[static_cast<std::size_t>(t)];
}
std::uint64_t TieredMemory::free_bytes(TierId t) const {
  return capacity_bytes(t) - used_bytes(t);
}

void TieredMemory::waste_local(std::uint64_t bytes) {
  // Capacity is shrunk rather than tracked as a region: wasted memory never
  // becomes free again, exactly like the paper's background hog process.
  const std::uint64_t take = std::min(bytes, capacity_[kNodeTier] - used_[kNodeTier]);
  capacity_[kNodeTier] -= take;
}

TieredMemory::Region* TieredMemory::region_of(std::uint64_t vaddr) {
  if (vaddr < kVaBase || vaddr >= bump_) return nullptr;
  return &regions_[page_region_[page_of(vaddr)]];
}

bool TieredMemory::tier_has_room(TierId t) const {
  return used_[static_cast<std::size_t>(t)] + page_bytes_ <=
         capacity_[static_cast<std::size_t>(t)];
}

TierId TieredMemory::first_tier_with_room() const {
  for (TierId t = 0; t < num_tiers(); ++t)
    if (tier_has_room(t)) return t;
  return -1;
}

TierId TieredMemory::fallback_tier(TierId excluded) const {
  for (TierId t = 0; t < num_tiers(); ++t)
    if (t != excluded && tier_has_room(t)) return t;
  return -1;
}

void TieredMemory::assign(std::uint64_t page, TierId t) {
  page_tier_[page] = static_cast<std::int8_t>(t);
  used_[static_cast<std::size_t>(t)] += page_bytes_;
  ++touched_pages_;
}

TierId TieredMemory::place_page(Region& region, std::uint64_t page) {
  const MemPolicy& pol = region.policy;
  switch (pol.kind) {
    case PlacementKind::kFirstTouch: {
      const TierId t = first_tier_with_room();
      if (t < 0) throw OutOfMemoryError("all tiers exhausted");
      assign(page, t);
      return t;
    }
    case PlacementKind::kPreferred: {
      TierId t = tier_has_room(pol.target) ? pol.target : fallback_tier(pol.target);
      if (t < 0) throw OutOfMemoryError("all tiers exhausted");
      assign(page, t);
      return t;
    }
    case PlacementKind::kBind: {
      if (!tier_has_room(pol.target))
        throw OutOfMemoryError("bound allocation exceeds tier capacity");
      assign(page, pol.target);
      return pol.target;
    }
    case PlacementKind::kInterleave: {
      // The prefix sums were computed once at alloc(): the slot's owner is
      // the first tier whose inclusive prefix exceeds it (identical to the
      // former per-page walk of the weight vector).
      const std::uint64_t period = region.weight_prefix.back();
      const std::uint64_t slot = region.interleave_cursor++ % period;
      const auto it = std::upper_bound(region.weight_prefix.begin(),
                                       region.weight_prefix.end(), slot);
      TierId want = static_cast<TierId>(it - region.weight_prefix.begin());
      if (!tier_has_room(want)) want = fallback_tier(want);
      if (want < 0) throw OutOfMemoryError("all tiers exhausted");
      assign(page, want);
      return want;
    }
  }
  throw contract_violation("unknown placement kind");
}

}  // namespace memdis::memsim
