#include "memsim/link.h"

#include <algorithm>

#include "common/contract.h"

namespace memdis::memsim {

LinkModel::LinkModel(const MemoryTierSpec& spec)
    : capacity_gbps_(spec.link ? spec.link->traffic_capacity_gbps : 0.0),
      overhead_(spec.link ? spec.link->protocol_overhead : 1.0),
      base_latency_ns_(spec.latency_ns),
      queue_weight_(spec.link ? spec.link->queue_weight : 0.0),
      overload_slope_(spec.link ? spec.link->overload_slope : 0.0),
      max_latency_multiplier_(spec.link ? spec.link->max_latency_multiplier : 1.0),
      interference_share_(spec.link ? spec.link->interference_share : 0.0) {
  expects(spec.link.has_value(), "LinkModel requires a fabric tier (spec.link set)");
  expects(capacity_gbps_ > 0, "link capacity must be positive");
  expects(overhead_ >= 1.0, "protocol overhead cannot shrink traffic");
}

void LinkModel::set_background_loi(double loi_percent) {
  expects(loi_percent >= 0.0 && loi_percent <= kMaxLoi, "LoI out of range");
  loi_percent_ = loi_percent;
}

double LinkModel::background_traffic_gbps() const {
  return capacity_gbps_ * loi_percent_ / 100.0;
}

double LinkModel::traffic_of_data_gbps(double data_gbps) const { return data_gbps * overhead_; }

double LinkModel::offered_utilization(double app_data_gbps) const {
  return (traffic_of_data_gbps(app_data_gbps) + background_traffic_gbps()) / capacity_gbps_;
}

double LinkModel::measured_traffic_gbps(double app_data_gbps) const {
  return std::min(traffic_of_data_gbps(app_data_gbps) + background_traffic_gbps(),
                  capacity_gbps_);
}

double LinkModel::effective_data_bandwidth_gbps(double app_data_gbps) const {
  (void)app_data_gbps;  // the app's own traffic does not reduce its share
  const double colliding = interference_share_ * background_traffic_gbps();
  const double free_traffic =
      std::max(capacity_gbps_ - colliding, capacity_gbps_ * kMinShare);
  // The app's data rate is additionally limited by the remote tier's DRAM
  // bandwidth, but that bound is applied by the engine; here only the link.
  return free_traffic / overhead_;
}

double LinkModel::latency_multiplier(double app_data_gbps) const {
  const double rho = offered_utilization(app_data_gbps);
  if (rho <= 0.0) return 1.0;
  double mult;
  if (rho < kRhoKnee) {
    // M/M/1-style queueing delay while the link is stable.
    mult = 1.0 + queue_weight_ * rho / (1.0 - rho);
  } else {
    // Past the knee, a closed-loop system's delay grows with the number of
    // outstanding requests, i.e. roughly linearly in the *offered* load.
    const double knee = 1.0 + queue_weight_ * kRhoKnee / (1.0 - kRhoKnee);
    mult = knee + overload_slope_ * (rho - kRhoKnee);
  }
  return std::min(mult, max_latency_multiplier_);
}

double LinkModel::effective_latency_ns(double app_data_gbps) const {
  return base_latency_ns_ * latency_multiplier(app_data_gbps);
}

}  // namespace memdis::memsim
