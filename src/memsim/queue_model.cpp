#include "memsim/queue_model.h"

#include <algorithm>

#include "common/contract.h"
#include "common/units.h"

namespace memdis::memsim {

QueueModel::QueueModel(const MemoryTierSpec& spec)
    : link_(spec),
      window_(spec.link ? static_cast<std::size_t>(spec.link->queue_window_epochs) : 0) {
  expects(spec.link.has_value(), "QueueModel requires a fabric tier (spec.link set)");
  expects(window_ >= 1, "queue estimator window must hold at least one epoch");
}

void QueueModel::observe(TrafficClass cls, double bytes, double seconds) {
  expects(bytes >= 0.0 && seconds >= 0.0, "queue observation cannot be negative");
  Window& w = windows_[static_cast<int>(cls)];
  if (w.samples.size() < window_) {
    w.samples.push_back({bytes, seconds});
  } else {
    const Sample old = w.samples[w.next];
    w.bytes_sum -= old.bytes;
    w.seconds_sum -= old.seconds;
    w.samples[w.next] = {bytes, seconds};
    w.next = (w.next + 1) % window_;
  }
  w.bytes_sum += bytes;
  w.seconds_sum += seconds;
}

double QueueModel::estimated_rate_gbps(TrafficClass cls, double extra_bytes,
                                       double extra_seconds) const {
  const Window& w = windows_[static_cast<int>(cls)];
  const double bytes = w.bytes_sum + extra_bytes;
  const double seconds = w.seconds_sum + extra_seconds;
  if (seconds <= 0.0 || bytes <= 0.0) return 0.0;
  return bytes_per_sec_to_gbps(bytes / seconds);
}

double QueueModel::effective_loi(TrafficClass cls, double background_loi,
                                 double cross_rate_gbps) const {
  (void)cls;  // the formula is symmetric; the class picks the cross rate
  const double cross_traffic = link_.traffic_of_data_gbps(cross_rate_gbps);
  const double loi = background_loi + 100.0 * cross_traffic / link_.capacity_gbps();
  return std::min(loi, LinkModel::kMaxLoi);
}

const LinkModel& QueueModel::at_effective_loi(TrafficClass cls, double background_loi,
                                              double cross_rate_gbps) const {
  link_.set_background_loi(effective_loi(cls, background_loi, cross_rate_gbps));
  return link_;
}

double QueueModel::latency_multiplier(TrafficClass cls, double background_loi,
                                      double own_rate_gbps, double cross_rate_gbps) const {
  return at_effective_loi(cls, background_loi, cross_rate_gbps)
      .latency_multiplier(own_rate_gbps);
}

double QueueModel::effective_latency_ns(TrafficClass cls, double background_loi,
                                        double own_rate_gbps, double cross_rate_gbps) const {
  return at_effective_loi(cls, background_loi, cross_rate_gbps)
      .effective_latency_ns(own_rate_gbps);
}

double QueueModel::effective_data_bandwidth_gbps(TrafficClass cls, double background_loi,
                                                 double cross_rate_gbps) const {
  return at_effective_loi(cls, background_loi, cross_rate_gbps)
      .effective_data_bandwidth_gbps(0.0);
}

std::size_t QueueModel::window_size(TrafficClass cls) const {
  return windows_[static_cast<int>(cls)].samples.size();
}

}  // namespace memdis::memsim
