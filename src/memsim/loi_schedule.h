// Time-varying background interference: per-link LoI waveforms.
//
// The paper's interference model (Sec. 4.3) holds the Level-of-Interference
// fixed per run, but real disaggregated fabrics see *bursty* congestion —
// the case rack-scale simulators (DRackSim) model explicitly. A LoiWaveform
// is one fabric link's background LoI as a function of the engine's epoch
// index: constant (the static model, exactly), a square wave (periodic
// congestion bursts), a ramp (load building up), or a replayed trace
// (captured samples, e.g. from a fabric monitor's CSV export). A
// LoiSchedule maps fabric tiers to waveforms; the engine re-evaluates it at
// every closed epoch, so the migration planner prices each scan against the
// link state it will actually see — and can arbitrage transient congestion.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "memsim/tier.h"

namespace memdis::memsim {

/// One fabric link's background LoI (% of peak link traffic) over epochs.
class LoiWaveform {
 public:
  enum class Kind { kConstant, kSquare, kRamp, kTrace };

  /// The static model: `loi` at every epoch. An empty/default waveform is
  /// constant 0 (an idle link).
  [[nodiscard]] static LoiWaveform constant(double loi);

  /// Periodic burst: epochs [0, duty*period) of each period are at `hi`,
  /// the rest at `lo`. `period` is in epochs; `duty` in [0, 1].
  [[nodiscard]] static LoiWaveform square(std::uint64_t period_epochs, double duty, double hi,
                                          double lo = 0.0);

  /// Linear ramp from `from` to `to` over `period` epochs, then holding
  /// `to` (load building up and staying).
  [[nodiscard]] static LoiWaveform ramp(std::uint64_t period_epochs, double from, double to);

  /// Replayed trace: sample i is the LoI at epoch i; the last sample holds
  /// past the end of the trace. An empty trace is constant 0.
  [[nodiscard]] static LoiWaveform trace(std::vector<double> samples);

  LoiWaveform() = default;

  /// The LoI (%) this waveform injects at epoch `epoch`.
  [[nodiscard]] double value_at(std::uint64_t epoch) const;

  /// Time-averaged LoI over one period (square/ramp) or the whole trace —
  /// what a static QoS provisioner would budget for.
  [[nodiscard]] double mean() const;

  [[nodiscard]] Kind kind() const { return kind_; }
  /// True when the waveform never changes (the static model).
  [[nodiscard]] bool is_constant() const;

 private:
  Kind kind_ = Kind::kConstant;
  double hi_ = 0.0;
  double lo_ = 0.0;
  double duty_ = 0.0;
  std::uint64_t period_ = 1;
  std::vector<double> samples_;
};

/// Per-link LoI schedule, indexed by TierId. Tiers without a waveform keep
/// whatever static LoI the engine config set; local tiers must stay
/// unscheduled (they have no link).
struct LoiSchedule {
  std::vector<std::optional<LoiWaveform>> per_tier;

  /// True when no tier is scheduled — the engine then behaves exactly as
  /// the static model (bit-identical artifacts).
  [[nodiscard]] bool empty() const {
    for (const auto& w : per_tier)
      if (w) return false;
    return true;
  }

  /// Assigns `wave` to tier `t`, growing the vector as needed.
  void set(TierId t, LoiWaveform wave);

  /// The waveform on tier `t`, or nullptr when unscheduled.
  [[nodiscard]] const LoiWaveform* waveform(TierId t) const {
    if (t < 0 || static_cast<std::size_t>(t) >= per_tier.size()) return nullptr;
    const auto& w = per_tier[static_cast<std::size_t>(t)];
    return w ? &*w : nullptr;
  }

  /// Scheduled LoI of tier `t` at `epoch`; `fallback` when unscheduled.
  [[nodiscard]] double value_at(TierId t, std::uint64_t epoch, double fallback = 0.0) const {
    const LoiWaveform* w = waveform(t);
    return w ? w->value_at(epoch) : fallback;
  }
};

// ---- parsing (the CLI grammar, kept in the library so it is testable) -------

/// Parses a strict comma-separated LoI list ("10,20"): every token must be
/// a number in [0, 2000]; empty tokens (trailing/doubled commas), NaN, and
/// out-of-range values are rejected. On failure returns nullopt and sets
/// `error` to a diagnostic.
[[nodiscard]] std::optional<std::vector<double>> parse_loi_list(const std::string& text,
                                                                std::string& error);

/// A parsed `--loi-wave` flag: which link, and its square wave.
struct LoiWaveSpec {
  TierId tier = 0;
  LoiWaveform wave;
};

/// Parses the waveform grammar `link:period:duty:hi[:lo]` — link is a tier
/// id (>= 1), period an epoch count (>= 1), duty in [0,1], hi/lo LoI
/// percentages in [0, 2000]. On failure returns nullopt and sets `error`.
[[nodiscard]] std::optional<LoiWaveSpec> parse_loi_wave(const std::string& spec,
                                                        std::string& error);

/// Loads a trace schedule from CSV. Format: a header line
/// `epoch,<name1>,<name2>,...` with one column per fabric tier in tier
/// order, then rows of strictly increasing epoch indices starting at 0 and
/// one LoI value per fabric tier. Gaps between rows hold the previous
/// value (sparse monitor exports). `fabric_tiers` lists the TierIds the
/// value columns map onto. On failure returns nullopt and sets `error`.
[[nodiscard]] std::optional<LoiSchedule> parse_loi_trace_csv(std::istream& in,
                                                             const std::vector<TierId>& fabric_tiers,
                                                             std::string& error);

/// Convenience: parse_loi_trace_csv over a file path.
[[nodiscard]] std::optional<LoiSchedule> load_loi_trace_csv(const std::string& path,
                                                            const std::vector<TierId>& fabric_tiers,
                                                            std::string& error);

}  // namespace memdis::memsim
