// Direct tests for the byte-stable artifact formatting helpers
// (common/artifact_format.h). These back the repository-wide byte-identity
// contract: the same double must always render the same bytes, and those
// bytes must strtod back to the exact bit pattern.
#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "common/artifact_format.h"
#include "common/rng.h"

namespace memdis {
namespace {

double parse_back(const std::string& s) { return std::strtod(s.c_str(), nullptr); }

bool bits_equal(double a, double b) {
  std::uint64_t ab = 0;
  std::uint64_t bb = 0;
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

TEST(FormatDouble, RoundTripsExactValuesTersely) {
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(-3.25), "-3.25");
  EXPECT_EQ(format_double(1e300), "1e+300");
}

TEST(FormatDouble, RoundTripsValuesNeedingAllSeventeenDigits) {
  // 0.1 + 0.2 differs from 0.3 in the last ulp; formatting must preserve
  // the distinction, not pretty-print both as 0.3.
  const double a = 0.1 + 0.2;
  const double b = 0.3;
  ASSERT_FALSE(bits_equal(a, b));
  EXPECT_NE(format_double(a), format_double(b));
  EXPECT_TRUE(bits_equal(parse_back(format_double(a)), a));
  EXPECT_TRUE(bits_equal(parse_back(format_double(b)), b));
}

TEST(FormatDouble, NegativeZeroKeepsItsSign) {
  const std::string s = format_double(-0.0);
  EXPECT_EQ(s, "-0");
  const double back = parse_back(s);
  EXPECT_TRUE(bits_equal(back, -0.0));
  EXPECT_FALSE(bits_equal(back, 0.0));
}

TEST(FormatDouble, SubnormalsRoundTripExactly) {
  const double min_subnormal = std::numeric_limits<double>::denorm_min();
  const double max_subnormal =
      std::numeric_limits<double>::min() - std::numeric_limits<double>::denorm_min();
  const double mid_subnormal = std::numeric_limits<double>::min() / 3.0;
  for (const double v : {min_subnormal, max_subnormal, mid_subnormal, -min_subnormal,
                         -mid_subnormal}) {
    ASSERT_TRUE(std::fpclassify(v) == FP_SUBNORMAL) << v;
    const std::string s = format_double(v);
    EXPECT_TRUE(bits_equal(parse_back(s), v)) << s;
  }
}

TEST(FormatDouble, ExtremesOfTheNormalRangeRoundTrip) {
  for (const double v : {std::numeric_limits<double>::max(),
                         std::numeric_limits<double>::min(), DBL_EPSILON,
                         -std::numeric_limits<double>::max()}) {
    EXPECT_TRUE(bits_equal(parse_back(format_double(v)), v)) << format_double(v);
  }
}

TEST(FormatDouble, RandomBitPatternsRoundTripAndRenderStably) {
  Xoshiro256 rng(2026);
  int finite = 0;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t bits = rng();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    if (!std::isfinite(v)) continue;  // CSV/JSON artifacts only hold finite values
    ++finite;
    const std::string s = format_double(v);
    EXPECT_TRUE(bits_equal(parse_back(s), v)) << s;
    EXPECT_EQ(s, format_double(v));  // same double, same bytes, every time
  }
  EXPECT_GT(finite, 9000);
}

TEST(JsonEscape, PassesPlainStringsThrough) {
  EXPECT_EQ(json_escape("fig06"), "fig06");
  EXPECT_EQ(json_escape(""), "");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape(std::string("a\nb\tc")), "a\\u000ab\\u0009c");
  EXPECT_EQ(json_escape(std::string(1, '\0')), "\\u0000");
}

}  // namespace
}  // namespace memdis
