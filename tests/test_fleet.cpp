// Fleet simulator tests: arrival-spec grammar, seeding determinism, the
// serial-vs-parallel bit-identity contract at fleet scale, and the
// admission-capacity property.
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "fleet/arrival.h"
#include "fleet/fleet.h"

namespace memdis::fleet {
namespace {

std::vector<double> weights_of(const std::vector<JobClass>& classes) {
  std::vector<double> w;
  for (const auto& cls : classes) w.push_back(cls.weight);
  return w;
}

TEST(ArrivalSpec, ParsesPoisson) {
  std::string error;
  const auto spec = parse_arrival_spec("poisson:1.5:200", error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->kind, ArrivalKind::kPoisson);
  EXPECT_DOUBLE_EQ(spec->rate_per_s, 1.5);
  EXPECT_EQ(spec->count, 200u);
}

TEST(ArrivalSpec, ParsesTrace) {
  std::string error;
  const auto spec = parse_arrival_spec("trace:/tmp/arrivals.csv", error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->kind, ArrivalKind::kTrace);
  EXPECT_EQ(spec->trace_path, "/tmp/arrivals.csv");
}

TEST(ArrivalSpec, RejectsMalformedSpecs) {
  // Every rejection must carry a diagnostic: the CLI prints it at exit 2.
  for (const std::string bad :
       {"", "poisson", "poisson:", "poisson:1.5", "poisson:0:100", "poisson:-1:100",
        "poisson:nan:100", "poisson:1.5:0", "poisson:1.5:-3", "poisson:1.5:ten",
        "poisson:1.5:100:extra", "uniform:1:100", "trace", "trace:"}) {
    std::string error;
    EXPECT_FALSE(parse_arrival_spec(bad, error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(ArrivalSeed, MatchesGridIndexScheme) {
  // Pure function of (base_seed, index); distinct across indices and seeds.
  EXPECT_EQ(arrival_seed(42, 7), arrival_seed(42, 7));
  EXPECT_NE(arrival_seed(42, 7), arrival_seed(42, 8));
  EXPECT_NE(arrival_seed(42, 7), arrival_seed(43, 7));
}

TEST(PoissonArrivals, DeterministicAndOrdered) {
  ArrivalSpec spec;
  spec.rate_per_s = 2.0;
  spec.count = 500;
  const auto a = expand_poisson_arrivals(spec, {1.0, 2.0, 3.0}, 42);
  const auto b = expand_poisson_arrivals(spec, {1.0, 2.0, 3.0}, 42);
  ASSERT_EQ(a.size(), 500u);
  std::set<std::size_t> classes_seen;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time_s, b[i].time_s);
    EXPECT_EQ(a[i].job_class, b[i].job_class);
    EXPECT_EQ(a[i].seed, arrival_seed(42, i));
    if (i > 0) {
      EXPECT_GE(a[i].time_s, a[i - 1].time_s);
    }
    classes_seen.insert(a[i].job_class);
  }
  EXPECT_EQ(classes_seen.size(), 3u);  // all weights drawn at n=500
}

TEST(TraceArrivals, RoundTripsAndValidates) {
  const std::string path = ::testing::TempDir() + "/fleet_arrivals.csv";
  {
    std::ofstream out(path);
    out << "arrival_s,class\n0.5,hpc-solver\n1.5,analytics\n1.5,etl-burst\n";
  }
  std::string error;
  const auto arrivals =
      load_trace_arrivals(path, {"hpc-solver", "analytics", "etl-burst"}, 42, error);
  ASSERT_TRUE(arrivals.has_value()) << error;
  ASSERT_EQ(arrivals->size(), 3u);
  EXPECT_DOUBLE_EQ((*arrivals)[0].time_s, 0.5);
  EXPECT_EQ((*arrivals)[1].job_class, 1u);
  EXPECT_EQ((*arrivals)[2].seed, arrival_seed(42, 2));

  {
    std::ofstream out(path);
    out << "arrival_s,class\n2.0,hpc-solver\n1.0,hpc-solver\n";  // decreasing
  }
  EXPECT_FALSE(load_trace_arrivals(path, {"hpc-solver"}, 42, error).has_value());
  {
    std::ofstream out(path);
    out << "arrival_s,class\n1.0,warp-drive\n";  // unknown class
  }
  EXPECT_FALSE(load_trace_arrivals(path, {"hpc-solver"}, 42, error).has_value());
  std::remove(path.c_str());
}

FleetConfig two_pool_config() {
  FleetConfig cfg;
  cfg.pools = default_pools(2);
  return cfg;
}

std::vector<Arrival> poisson_stream(double rate, std::size_t count, std::uint64_t seed) {
  ArrivalSpec spec;
  spec.rate_per_s = rate;
  spec.count = count;
  return expand_poisson_arrivals(spec, weights_of(default_job_classes()), seed);
}

TEST(Fleet, DrainsEveryAdmittedJob) {
  const auto cfg = two_pool_config();
  const auto classes = default_job_classes();
  const auto result = run_fleet(cfg, classes, poisson_stream(0.05, 200, 42));
  EXPECT_EQ(result.completed + result.rejected, 200u);
  for (const auto& rec : result.jobs) {
    if (rec.rejected) continue;
    EXPECT_GE(rec.start_s, rec.arrival_s);
    EXPECT_GT(rec.finish_s, rec.start_s);
    EXPECT_GE(rec.slowdown(), 1.0);
  }
}

// The ISSUE's headline identity: a fleet run with >= 1000 arrivals is
// byte-identical (CSV and JSON) between the serial path and the thread
// pool, for several thread counts.
TEST(Fleet, SerialAndParallelArtifactsAreByteIdentical) {
  FleetConfig cfg = two_pool_config();
  const auto classes = default_job_classes();
  const auto arrivals = poisson_stream(0.12, 1200, 42);
  const auto serial = run_fleet(cfg, classes, arrivals, 1);
  std::ostringstream serial_csv, serial_json;
  serial.write_csv(serial_csv);
  serial.write_json(serial_json);
  for (const unsigned jobs : {2u, 4u, 0u}) {  // 0 = hardware concurrency
    const auto parallel = run_fleet(cfg, classes, arrivals, jobs);
    std::ostringstream csv, json;
    parallel.write_csv(csv);
    parallel.write_json(json);
    EXPECT_EQ(serial_csv.str(), csv.str()) << "jobs=" << jobs;
    EXPECT_EQ(serial_json.str(), json.str()) << "jobs=" << jobs;
  }
}

// Property: admission never oversubscribes a pool — the peak pinned GB
// stays within declared capacity across seeds, rates, and policies.
TEST(Fleet, AdmissionNeverExceedsPoolCapacity) {
  const auto classes = default_job_classes();
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    for (const double rate : {0.05, 0.15, 0.4}) {
      for (const auto policy : {AdmissionPolicy::kFirstFit, AdmissionPolicy::kLoiAware}) {
        FleetConfig cfg = two_pool_config();
        cfg.policy = policy;
        cfg.base_seed = seed;
        const auto result = run_fleet(cfg, classes, poisson_stream(rate, 300, seed), 2);
        ASSERT_EQ(result.pools.size(), cfg.pools.size());
        for (std::size_t p = 0; p < result.pools.size(); ++p) {
          EXPECT_LE(result.pools[p].peak_used_gb, cfg.pools[p].capacity_gb + 1e-9)
              << "seed=" << seed << " rate=" << rate;
          EXPECT_GE(result.pools[p].utilization, 0.0);
          EXPECT_LE(result.pools[p].utilization, 1.0 + 1e-9);
        }
      }
    }
  }
}

TEST(Fleet, BoundedQueueRejectsOverflow) {
  FleetConfig cfg = two_pool_config();
  cfg.queue_limit = 4;
  const auto classes = default_job_classes();
  // Far past saturation: the pending FIFO must cap and shed arrivals.
  const auto result = run_fleet(cfg, classes, poisson_stream(5.0, 400, 42));
  EXPECT_GT(result.rejected, 0u);
  EXPECT_EQ(result.completed + result.rejected, 400u);
}

TEST(Fleet, NeverFittingJobsAreRejectedImmediately) {
  FleetConfig cfg = two_pool_config();
  auto classes = default_job_classes();
  classes[0].pool_demand_gb = cfg.pools[0].capacity_gb * 4;  // can never fit
  std::vector<Arrival> arrivals;
  for (std::size_t i = 0; i < 5; ++i)
    arrivals.push_back({static_cast<double>(i + 1), 0, arrival_seed(42, i)});
  const auto result = run_fleet(cfg, classes, arrivals);
  EXPECT_EQ(result.rejected, 5u);
  EXPECT_EQ(result.completed, 0u);
}

TEST(Fleet, MigrationMovesJobsOffOverloadedPools) {
  // First-fit piles onto pool 0; with migration armed, some jobs must move
  // (and the per-job records account for every fleet-level migration).
  FleetConfig cfg = two_pool_config();
  cfg.policy = AdmissionPolicy::kFirstFit;
  cfg.migration = true;
  const auto classes = default_job_classes();
  const auto result = run_fleet(cfg, classes, poisson_stream(0.15, 300, 42));
  EXPECT_GT(result.migrations, 0u);
  std::size_t per_job = 0;
  for (const auto& rec : result.jobs) per_job += static_cast<std::size_t>(rec.migrations);
  EXPECT_EQ(per_job, result.migrations);

  FleetConfig off = cfg;
  off.migration = false;
  const auto baseline = run_fleet(off, classes, poisson_stream(0.15, 300, 42));
  EXPECT_EQ(baseline.migrations, 0u);
}

TEST(Fleet, TraceAndPoissonSourcesShareJobInputs) {
  // The same (base_seed, index) pairs must yield the same jittered work
  // whether arrivals came from Poisson expansion or a trace file: the
  // jitter stream is split from the per-index seed alone.
  const auto classes = default_job_classes();
  FleetConfig cfg = two_pool_config();
  const auto poisson = poisson_stream(0.05, 50, 42);
  std::vector<Arrival> trace = poisson;  // same times/classes/seeds, as if traced
  const auto a = run_fleet(cfg, classes, poisson);
  const auto b = run_fleet(cfg, classes, trace);
  for (std::size_t i = 0; i < a.jobs.size(); ++i)
    EXPECT_EQ(a.jobs[i].work_s, b.jobs[i].work_s);
}

}  // namespace
}  // namespace memdis::fleet
