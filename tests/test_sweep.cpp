// Tests for the parallel sweep engine and scenario registry: deterministic
// grid expansion, bit-identical serial-vs-parallel execution, artifact
// writers, and registry lookups.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/parallel_for.h"
#include "common/rng.h"
#include "core/epoch_profile.h"
#include "core/scenario_registry.h"
#include "core/sweep.h"

namespace memdis::core {
namespace {

using workloads::App;

SweepSpec small_spec() {
  SweepSpec spec;
  spec.apps = {App::kHPL, App::kBFS};
  spec.scales = {1, 2};
  spec.ratios = {kNodeOnly, 0.5};
  spec.lois = {0.0, 25.0};
  return spec;
}

// A cheap deterministic measure: exercises the per-task RNG stream without
// running a full workload, so the threading contract is tested in
// milliseconds.
std::vector<Metric> synthetic_measure(const SweepPoint& point) {
  Xoshiro256 rng(point.seed);
  double acc = 0.0;
  for (int i = 0; i < 100; ++i) acc += rng.uniform();
  return {{"acc", acc},
          {"ratio_echo", point.ratio},
          {"index_echo", static_cast<double>(point.index)}};
}

// ---------- grid expansion --------------------------------------------------

TEST(SweepSpec, SizeIsCartesianProduct) {
  EXPECT_EQ(small_spec().size(), 2u * 2u * 2u * 2u);
}

TEST(SweepSpec, ExpandAssignsSequentialIndices) {
  const auto points = small_spec().expand();
  ASSERT_EQ(points.size(), 16u);
  for (std::size_t i = 0; i < points.size(); ++i) EXPECT_EQ(points[i].index, i);
}

TEST(SweepSpec, ExpandOrderIsAppMajorVariantMinor) {
  const auto points = small_spec().expand();
  // Last axis (loi) varies fastest, first axis (app) slowest.
  EXPECT_EQ(points[0].app, App::kHPL);
  EXPECT_EQ(points[0].scale, 1);
  EXPECT_EQ(points[0].ratio, kNodeOnly);
  EXPECT_EQ(points[0].loi, 0.0);
  EXPECT_EQ(points[1].loi, 25.0);
  EXPECT_EQ(points[2].ratio, 0.5);
  EXPECT_EQ(points[4].scale, 2);
  EXPECT_EQ(points[8].app, App::kBFS);
}

TEST(SweepSpec, ExpandIsDeterministic) {
  const auto a = small_spec().expand();
  const auto b = small_spec().expand();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].app, b[i].app);
    EXPECT_EQ(a[i].ratio, b[i].ratio);
  }
}

TEST(SweepSpec, PerTaskSeedsAreDistinct) {
  const auto points = small_spec().expand();
  for (std::size_t i = 0; i < points.size(); ++i)
    for (std::size_t j = i + 1; j < points.size(); ++j)
      EXPECT_NE(points[i].seed, points[j].seed);
}

TEST(SweepSpec, SharedSeedModeUsesBaseSeedVerbatim) {
  auto spec = small_spec();
  spec.seed_per_task = false;
  spec.base_seed = 42;
  for (const auto& point : spec.expand()) EXPECT_EQ(point.seed, 42u);
}

TEST(SweepSpec, DifferentBaseSeedsChangeTaskSeeds) {
  auto spec = small_spec();
  const auto a = spec.expand();
  spec.base_seed = 43;
  const auto b = spec.expand();
  EXPECT_NE(a[0].seed, b[0].seed);
}

TEST(SweepSpec, EmptyAxisViolatesContract) {
  auto spec = small_spec();
  spec.scales.clear();
  EXPECT_THROW((void)spec.expand(), std::exception);
}

TEST(SweepPoint, RunConfigAppliesAxes) {
  auto spec = small_spec();
  spec.fabrics = {"cxl"};
  const auto points = spec.expand();
  const auto rc = points[3].run_config();  // ratio=0.5, loi=25
  EXPECT_TRUE(rc.remote_capacity_ratio.has_value());
  EXPECT_DOUBLE_EQ(*rc.remote_capacity_ratio, 0.5);
  EXPECT_DOUBLE_EQ(rc.background_loi, 25.0);
  EXPECT_DOUBLE_EQ(rc.machine.pool_tier().bandwidth_gbps,
                   memsim::MachineConfig::cxl_direct_attached().pool_tier().bandwidth_gbps);
  const auto local_rc = points[0].run_config();  // ratio=kNodeOnly
  EXPECT_FALSE(local_rc.remote_capacity_ratio.has_value());
}

TEST(MachineForFabric, RejectsUnknownNames) {
  EXPECT_THROW((void)machine_for_fabric("infiniband"), std::invalid_argument);
}

// ---------- parallel execution ----------------------------------------------

TEST(RunSweep, ParallelMatchesSerialBitExactly) {
  const auto spec = small_spec();
  const auto serial = run_sweep(spec, synthetic_measure, {.jobs = 1});
  const auto parallel = run_sweep(spec, synthetic_measure, {.jobs = 4});
  ASSERT_EQ(serial.rows.size(), 16u);
  EXPECT_TRUE(serial.rows_equal(parallel));
}

TEST(RunSweep, CsvIsByteIdenticalAcrossJobCounts) {
  const auto spec = small_spec();
  const auto serial = run_sweep(spec, synthetic_measure, {.jobs = 1});
  const auto parallel = run_sweep(spec, synthetic_measure, {.jobs = 4});
  std::ostringstream a, b;
  serial.write_csv(a);
  parallel.write_csv(b);
  EXPECT_FALSE(a.str().empty());
  EXPECT_EQ(a.str(), b.str());
  std::ostringstream ja, jb;
  serial.write_json(ja);
  parallel.write_json(jb);
  EXPECT_EQ(ja.str(), jb.str());
}

TEST(RunSweep, RowsLandInGridOrderRegardlessOfExecutionOrder) {
  const auto result = run_sweep(small_spec(), synthetic_measure, {.jobs = 8});
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    EXPECT_EQ(result.rows[i].point.index, i);
    EXPECT_DOUBLE_EQ(result.rows[i].metrics[2].second, static_cast<double>(i));
  }
}

TEST(RunSweep, AllTasksRunExactlyOnce) {
  std::atomic<int> calls{0};
  const auto counting = [&](const SweepPoint& p) -> std::vector<Metric> {
    calls.fetch_add(1);
    return {{"i", static_cast<double>(p.index)}};
  };
  const auto result = run_sweep(small_spec(), counting, {.jobs = 4});
  EXPECT_EQ(calls.load(), 16);
  EXPECT_EQ(result.rows.size(), 16u);
}

TEST(RunSweep, TaskExceptionPropagates) {
  const auto failing = [](const SweepPoint& p) -> std::vector<Metric> {
    if (p.index == 7) throw std::runtime_error("task 7 failed");
    return {};
  };
  EXPECT_THROW((void)run_sweep(small_spec(), failing, {.jobs = 4}), std::runtime_error);
  EXPECT_THROW((void)run_sweep(small_spec(), failing, {.jobs = 1}), std::runtime_error);
}

TEST(RunSweep, TwoWaveRepriceSchedulingRunsEachTaskExactlyOnce) {
  const bool saved = reprice_enabled();
  set_reprice_enabled(true);
  std::atomic<int> calls{0};
  const auto counting = [&](const SweepPoint& p) -> std::vector<Metric> {
    calls.fetch_add(1);
    return {{"i", static_cast<double>(p.index)}};
  };
  const auto result = run_sweep(small_spec(), counting, {.jobs = 4});
  set_reprice_enabled(saved);
  EXPECT_EQ(calls.load(), 16);
  ASSERT_EQ(result.rows.size(), 16u);
  for (std::size_t i = 0; i < result.rows.size(); ++i)
    EXPECT_EQ(result.rows[i].point.index, i);
}

TEST(SweepPoint, FunctionalGroupKeyGroupsOverTheLoiAxisOnly) {
  const auto points = small_spec().expand();
  for (const auto& a : points) {
    for (const auto& b : points) {
      const bool same_functional = a.app == b.app && a.scale == b.scale &&
                                   a.ratio == b.ratio && a.fabric == b.fabric &&
                                   a.prefetch == b.prefetch && a.variant == b.variant &&
                                   a.seed == b.seed;
      EXPECT_EQ(a.functional_group_key() == b.functional_group_key(), same_functional);
    }
  }
}

// Guards the defaulted SweepPoint::operator== behind rows_equal: every
// single-field mutation must be detected, so a future field added to
// SweepPoint cannot silently escape the determinism comparisons.
TEST(SweepResult, RowsEqualDetectsEverySingleFieldMutation) {
  SweepResult base;
  SweepRow row;
  row.point = {.index = 3,
               .app = App::kBFS,
               .scale = 2,
               .ratio = 0.5,
               .loi = 25.0,
               .fabric = "cxl",
               .prefetch = true,
               .variant = "opt",
               .seed = 77};
  row.metrics = {{"m", 1.5}};
  base.rows.push_back(row);
  EXPECT_TRUE(base.rows_equal(base));

  const auto mutated = [&](const auto& mutate) {
    SweepResult r = base;
    mutate(r.rows[0]);
    return r;
  };
  EXPECT_FALSE(base.rows_equal(mutated([](SweepRow& r) { r.point.index = 4; })));
  EXPECT_FALSE(base.rows_equal(mutated([](SweepRow& r) { r.point.app = App::kHPL; })));
  EXPECT_FALSE(base.rows_equal(mutated([](SweepRow& r) { r.point.scale = 1; })));
  EXPECT_FALSE(base.rows_equal(mutated([](SweepRow& r) { r.point.ratio = 0.75; })));
  EXPECT_FALSE(base.rows_equal(mutated([](SweepRow& r) { r.point.loi = 0.0; })));
  EXPECT_FALSE(base.rows_equal(mutated([](SweepRow& r) { r.point.fabric = "upi"; })));
  EXPECT_FALSE(base.rows_equal(mutated([](SweepRow& r) { r.point.prefetch = false; })));
  EXPECT_FALSE(base.rows_equal(mutated([](SweepRow& r) { r.point.variant = "base"; })));
  EXPECT_FALSE(base.rows_equal(mutated([](SweepRow& r) { r.point.seed = 78; })));
  EXPECT_FALSE(base.rows_equal(mutated([](SweepRow& r) { r.metrics[0].second = 1.25; })));
  EXPECT_FALSE(base.rows_equal(mutated([](SweepRow& r) { r.metrics[0].first = "x"; })));
  EXPECT_FALSE(base.rows_equal(mutated([](SweepRow& r) { r.metrics.clear(); })));
}

TEST(ParallelFor, CoversIndexSpaceOnce) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(100, 4, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, JobsZeroUsesHardwareConcurrency) {
  std::atomic<int> calls{0};
  parallel_for(10, 0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 10);
}

// ---------- result formatting -----------------------------------------------

TEST(SweepResult, MetricUnionPreservesFirstSeenOrderAndPadsMissing) {
  const auto measure = [](const SweepPoint& p) -> std::vector<Metric> {
    if (p.index == 0) return {{"a", 1.0}, {"b", 2.0}};
    return {{"a", 3.0}, {"c", 4.0}};
  };
  SweepSpec spec;
  spec.apps = {App::kHPL};
  spec.scales = {1, 2};
  const auto result = run_sweep(spec, measure, {.jobs = 1});
  const auto names = result.metric_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  EXPECT_EQ(names[2], "c");
  std::ostringstream os;
  result.write_csv(os);
  const auto csv = os.str();
  // Row 1 has no "b": empty cell between a and c columns.
  EXPECT_NE(csv.find("3,,4"), std::string::npos);
}

TEST(SweepResult, LocalOnlyRatioRendersAsLocal) {
  SweepSpec spec;
  spec.apps = {App::kHPL};
  const auto result = run_sweep(spec, synthetic_measure, {.jobs = 1});
  std::ostringstream os;
  result.write_csv(os);
  EXPECT_NE(os.str().find(",local,"), std::string::npos);
}

// ---------- scenario registry -----------------------------------------------

TEST(ScenarioRegistry, BuiltinScenariosAreRegistered) {
  auto& registry = ScenarioRegistry::instance();
  for (const char* name :
       {"fig05", "fig06", "fig08", "fig09", "fig10", "fig11", "fig12", "ext-cxl",
        "ext-interleave", "ext-transient-loi", "ext-loi-trace"}) {
    const auto* s = registry.find(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_TRUE(static_cast<bool>(s->measure)) << name;
    EXPECT_GT(s->spec.size(), 0u) << name;
  }
}

TEST(ScenarioRegistry, Fig06GridMatchesPaper) {
  const auto* s = ScenarioRegistry::instance().find("fig06");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->spec.size(), 18u);  // 6 apps x 3 scales
}

TEST(ScenarioRegistry, ListIsSortedByName) {
  const auto list = ScenarioRegistry::instance().list();
  ASSERT_GE(list.size(), 9u);
  for (std::size_t i = 1; i < list.size(); ++i) EXPECT_LT(list[i - 1]->name, list[i]->name);
}

TEST(ScenarioRegistry, UnknownNameReturnsNull) {
  EXPECT_EQ(ScenarioRegistry::instance().find("fig99"), nullptr);
}

TEST(ScenarioRegistry, DuplicateRegistrationThrows) {
  ScenarioRegistry registry;
  Scenario s;
  s.name = "dup";
  s.measure = synthetic_measure;
  registry.add(s);
  EXPECT_THROW(registry.add(s), std::invalid_argument);
}

// One real scenario end-to-end, parallel vs. serial — the acceptance check
// at unit-test scale (ext-interleave is the cheapest registered scenario:
// 6 single-run tasks).
TEST(ScenarioRegistry, RealScenarioParallelMatchesSerial) {
  const auto* s = ScenarioRegistry::instance().find("ext-interleave");
  ASSERT_NE(s, nullptr);
  const auto serial = run_scenario(*s, {.jobs = 1});
  const auto parallel = run_scenario(*s, {.jobs = 4});
  EXPECT_TRUE(serial.rows_equal(parallel));
  std::ostringstream a, b;
  serial.write_csv(a);
  parallel.write_csv(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(serial.scenario, "ext-interleave");
}

}  // namespace
}  // namespace memdis::core
