// Workload correctness tests: each mini-app must compute verified results
// while running through the simulation engine, expose the paper's phase
// structure, and scale its footprint ~1:2:4 across inputs.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "sim/engine.h"
#include "workloads/bfs.h"
#include "workloads/hpl.h"
#include "workloads/hypre.h"
#include "workloads/lbench.h"
#include "workloads/nekrs.h"
#include "workloads/superlu.h"
#include "workloads/workload.h"
#include "workloads/xsbench.h"

namespace memdis::workloads {
namespace {

sim::EngineConfig test_engine() {
  sim::EngineConfig cfg;
  cfg.epoch_accesses = 200'000;
  return cfg;
}

WorkloadResult run(Workload& wl, sim::Engine& eng) {
  const auto res = wl.run(eng);
  eng.finish();
  return res;
}

// ---------- HPL ----------------------------------------------------------------

TEST(Hpl, SmallSystemSolvesExactly) {
  HplParams p;
  p.n = 96;
  p.block = 32;
  Hpl hpl(p);
  sim::Engine eng(test_engine());
  const auto res = run(hpl, eng);
  EXPECT_TRUE(res.verified) << res.detail;
  EXPECT_LT(res.residual, 1e-8);
}

TEST(Hpl, NonMultipleBlockSizeWorks) {
  HplParams p;
  p.n = 100;  // not a multiple of 32
  p.block = 32;
  Hpl hpl(p);
  sim::Engine eng(test_engine());
  EXPECT_TRUE(run(hpl, eng).verified);
}

TEST(Hpl, HasTwoPhases) {
  HplParams p;
  p.n = 64;
  p.block = 32;
  Hpl hpl(p);
  sim::Engine eng(test_engine());
  (void)run(hpl, eng);
  ASSERT_EQ(eng.phases().size(), 2u);
  EXPECT_EQ(eng.phases()[0].tag, "p1");
  EXPECT_EQ(eng.phases()[1].tag, "p2");
}

TEST(Hpl, FactorizationPhaseDominatesFlops) {
  HplParams p;
  p.n = 128;
  p.block = 32;
  Hpl hpl(p);
  sim::Engine eng(test_engine());
  (void)run(hpl, eng);
  EXPECT_GT(eng.phases()[1].flops, eng.phases()[0].flops);
}

TEST(Hpl, ScaleFootprintsRoughlyDouble) {
  const auto f1 = Hpl(HplParams::at_scale(1, 42)).footprint_bytes();
  const auto f2 = Hpl(HplParams::at_scale(2, 42)).footprint_bytes();
  const auto f4 = Hpl(HplParams::at_scale(4, 42)).footprint_bytes();
  EXPECT_NEAR(static_cast<double>(f2) / f1, 2.0, 0.5);
  EXPECT_NEAR(static_cast<double>(f4) / f1, 4.0, 0.5);
}

TEST(Hpl, DifferentSeedsStillSolve) {
  for (const std::uint64_t seed : {1ull, 99ull, 12345ull}) {
    HplParams p;
    p.n = 64;
    p.block = 16;
    p.seed = seed;
    Hpl hpl(p);
    sim::Engine eng(test_engine());
    EXPECT_TRUE(run(hpl, eng).verified) << "seed " << seed;
  }
}

// ---------- Hypre ------------------------------------------------------------------

TEST(Hypre, ResidualDropsMonotonically) {
  HypreParams p;
  p.grid = 64;
  p.iterations = 20;
  Hypre hypre(p);
  sim::Engine eng(test_engine());
  const auto res = run(hypre, eng);
  EXPECT_TRUE(res.verified) << res.detail;
  EXPECT_LT(res.residual, 0.5);
}

TEST(Hypre, MoreIterationsReduceResidual) {
  double residuals[2];
  int i = 0;
  for (const std::size_t iters : {4ul, 24ul}) {
    HypreParams p;
    p.grid = 64;
    p.iterations = iters;
    Hypre hypre(p);
    sim::Engine eng(test_engine());
    residuals[i++] = run(hypre, eng).residual;
  }
  EXPECT_LT(residuals[1], residuals[0]);
}

TEST(Hypre, HasSetupAndSolvePhases) {
  HypreParams p;
  p.grid = 48;
  p.iterations = 3;
  Hypre hypre(p);
  sim::Engine eng(test_engine());
  (void)run(hypre, eng);
  ASSERT_EQ(eng.phases().size(), 2u);
  EXPECT_EQ(eng.phases()[0].tag, "p1");
  EXPECT_EQ(eng.phases()[1].tag, "p2");
  EXPECT_GT(eng.phases()[1].time_s, 0.0);
}

TEST(Hypre, SolveIsMemoryBound) {
  HypreParams p;
  p.grid = 192;
  p.iterations = 6;
  Hypre hypre(p);
  sim::Engine eng(test_engine());
  (void)run(hypre, eng);
  const auto& p2 = eng.phases()[1];
  const double ai = static_cast<double>(p2.flops) /
                    static_cast<double>(p2.counters.dram_bytes_total());
  EXPECT_LT(ai, 4.5);  // below the ridge point: bandwidth-bound
}

// ---------- NekRS -------------------------------------------------------------------

TEST(Nekrs, CgReducesResidual) {
  NekrsParams p;
  p.elements = 16;
  p.order = 3;
  p.timesteps = 1;
  p.cg_iters = 10;
  Nekrs nek(p);
  sim::Engine eng(test_engine());
  const auto res = run(nek, eng);
  EXPECT_TRUE(res.verified) << res.detail;
  EXPECT_LT(res.residual, 0.9);
}

TEST(Nekrs, OrderScalingMatchesPaperInputs) {
  const auto p1 = NekrsParams::at_scale(1, 42);
  const auto p2 = NekrsParams::at_scale(2, 42);
  const auto p4 = NekrsParams::at_scale(4, 42);
  EXPECT_EQ(p1.order, 5u);
  EXPECT_EQ(p2.order, 7u);
  EXPECT_EQ(p4.order, 9u);
  const double r2 = static_cast<double>(Nekrs(p2).footprint_bytes()) /
                    static_cast<double>(Nekrs(p1).footprint_bytes());
  const double r4 = static_cast<double>(Nekrs(p4).footprint_bytes()) /
                    static_cast<double>(Nekrs(p1).footprint_bytes());
  EXPECT_NEAR(r2, 2.4, 0.4);  // (8/6)^3
  EXPECT_NEAR(r4, 4.6, 0.7);  // (10/6)^3
}

TEST(Nekrs, StreamingGivesHighPrefetchCoverage) {
  NekrsParams p;
  p.elements = 64;
  p.order = 5;
  p.timesteps = 1;
  p.cg_iters = 4;
  Nekrs nek(p);
  sim::Engine eng(test_engine());
  (void)run(nek, eng);
  const auto& c = eng.counters();
  const double coverage = static_cast<double>(c.prefetch_fills() - c.useless_hwpf) /
                          static_cast<double>(c.l2_lines_in - c.useless_hwpf);
  EXPECT_GT(coverage, 0.5);
}

// ---------- SuperLU -----------------------------------------------------------------

TEST(Superlu, FactorizationSolvesSystem) {
  SuperluParams p;
  p.grid = 16;
  Superlu slu(p);
  sim::Engine eng(test_engine());
  const auto res = run(slu, eng);
  EXPECT_TRUE(res.verified) << res.detail;
  EXPECT_LT(res.residual, 1e-10);
}

TEST(Superlu, HasThreePhases) {
  SuperluParams p;
  p.grid = 12;
  Superlu slu(p);
  sim::Engine eng(test_engine());
  (void)run(slu, eng);
  ASSERT_EQ(eng.phases().size(), 3u);
  EXPECT_EQ(eng.phases()[2].tag, "p3");
}

TEST(Superlu, FillInExceedsOriginalNonzeros) {
  SuperluParams p;
  p.grid = 24;
  Superlu slu(p);
  sim::Engine eng(test_engine());
  const auto res = run(slu, eng);
  // detail reports nnz(L) and nnz(U); original A has ~5n entries, the
  // factors of a 2D grid in natural order fill toward n·k each.
  EXPECT_NE(res.detail.find("nnz(L)"), std::string::npos);
  EXPECT_TRUE(res.verified);
}

TEST(Superlu, VariousGridsSolve) {
  for (const std::size_t k : {8ul, 20ul, 32ul}) {
    SuperluParams p;
    p.grid = k;
    Superlu slu(p);
    sim::Engine eng(test_engine());
    EXPECT_TRUE(run(slu, eng).verified) << "grid " << k;
  }
}

// ---------- BFS ----------------------------------------------------------------------

TEST(Bfs, ParentTreeValidOnAllVariants) {
  for (const auto variant :
       {BfsVariant::kBaseline, BfsVariant::kParentsFirst, BfsVariant::kOptimized}) {
    BfsParams p;
    p.log2_vertices = 12;
    p.edge_factor = 8;
    p.variant = variant;
    Bfs bfs(p);
    sim::Engine eng(test_engine());
    const auto res = run(bfs, eng);
    EXPECT_TRUE(res.verified) << res.detail;
  }
}

TEST(Bfs, MultipleRootsRun) {
  BfsParams p;
  p.log2_vertices = 11;
  p.num_roots = 3;
  Bfs bfs(p);
  sim::Engine eng(test_engine());
  EXPECT_TRUE(run(bfs, eng).verified);
}

TEST(Bfs, VariantsComputeSameTraversal) {
  // The placement variants must not change the algorithmic result.
  std::set<std::string> details;
  for (const auto variant :
       {BfsVariant::kBaseline, BfsVariant::kParentsFirst, BfsVariant::kOptimized}) {
    BfsParams p;
    p.log2_vertices = 12;
    p.variant = variant;
    Bfs bfs(p);
    sim::Engine eng(test_engine());
    details.insert(run(bfs, eng).detail);  // includes reached-vertex count
  }
  EXPECT_EQ(details.size(), 1u);
}

TEST(Bfs, BaselineLeaksGenerationTemporaries) {
  BfsParams p;
  p.log2_vertices = 12;
  p.variant = BfsVariant::kBaseline;
  Bfs bfs(p);
  sim::Engine eng(test_engine());
  (void)run(bfs, eng);
  bool src_freed = true;
  for (const auto& alloc : eng.allocations())
    if (alloc.name == "gen.src") src_freed = alloc.freed;
  EXPECT_FALSE(src_freed);
}

TEST(Bfs, OptimizedFreesGenerationTemporaries) {
  BfsParams p;
  p.log2_vertices = 12;
  p.variant = BfsVariant::kOptimized;
  Bfs bfs(p);
  sim::Engine eng(test_engine());
  (void)run(bfs, eng);
  for (const auto& alloc : eng.allocations())
    if (alloc.name == "gen.src" || alloc.name == "gen.dst") {
      EXPECT_TRUE(alloc.freed);
    }
}

TEST(Bfs, ScaleDoublesFootprint) {
  const auto f1 = Bfs(BfsParams::at_scale(1, 42)).footprint_bytes();
  const auto f2 = Bfs(BfsParams::at_scale(2, 42)).footprint_bytes();
  EXPECT_NEAR(static_cast<double>(f2) / f1, 2.0, 0.2);
}

// ---------- XSBench ------------------------------------------------------------------

TEST(Xsbench, LookupsMatchDirectSearch) {
  XsbenchParams p;
  p.n_nuclides = 8;
  p.gridpoints = 256;
  p.lookups = 500;
  Xsbench xs(p);
  sim::Engine eng(test_engine());
  const auto res = run(xs, eng);
  EXPECT_TRUE(res.verified) << res.detail;
  EXPECT_LT(res.residual, 1e-9);
}

TEST(Xsbench, PhasesPresent) {
  XsbenchParams p;
  p.n_nuclides = 4;
  p.gridpoints = 128;
  p.lookups = 100;
  Xsbench xs(p);
  sim::Engine eng(test_engine());
  (void)run(xs, eng);
  ASSERT_EQ(eng.phases().size(), 2u);
}

TEST(Xsbench, LowPrefetchCoverageInLookups) {
  XsbenchParams p = XsbenchParams::at_scale(1, 42);
  p.lookups = 5000;
  Xsbench xs(p);
  sim::Engine eng(test_engine());
  (void)run(xs, eng);
  const auto& p2 = eng.phases()[1].counters;
  const double coverage =
      p2.l2_lines_in > p2.useless_hwpf
          ? static_cast<double>(p2.prefetch_fills() - p2.useless_hwpf) /
                static_cast<double>(p2.l2_lines_in - p2.useless_hwpf)
          : 0.0;
  EXPECT_LT(coverage, 0.15);  // the paper reports < 1% for the real code
}

TEST(Xsbench, FootprintScalesWithGridpoints) {
  const auto f1 = Xsbench(XsbenchParams::at_scale(1, 42)).footprint_bytes();
  const auto f4 = Xsbench(XsbenchParams::at_scale(4, 42)).footprint_bytes();
  EXPECT_NEAR(static_cast<double>(f4) / f1, 4.0, 0.2);
}

// ---------- LBench -------------------------------------------------------------------

TEST(Lbench, KernelElementMatchesDefinition) {
  // NFLOP=1: one add. NFLOP=2: one FMA. NFLOP=3: add + FMA.
  EXPECT_DOUBLE_EQ(Lbench::kernel_element(0.5, 1, 0.25), 0.75);
  EXPECT_DOUBLE_EQ(Lbench::kernel_element(0.5, 2, 0.25), 0.5 * 0.5 + 0.25);
  EXPECT_DOUBLE_EQ(Lbench::kernel_element(0.5, 3, 0.25), 0.75 * 0.5 + 0.25);
}

TEST(Lbench, RunsOnPoolAndVerifies) {
  LbenchParams p;
  p.elements = 1 << 14;
  p.nflop = 4;
  p.sweeps = 2;
  Lbench lb(p);
  sim::Engine eng(test_engine());
  const auto res = run(lb, eng);
  EXPECT_TRUE(res.verified) << res.detail;
  // All data bound to the pool tier.
  EXPECT_EQ(eng.counters().dram_read_bytes[0], 0u);
  EXPECT_GT(eng.counters().dram_read_bytes[1], 0u);
}

TEST(Lbench, FlopsScaleWithNflop) {
  for (const std::uint32_t nflop : {1u, 16u}) {
    LbenchParams p;
    p.elements = 1 << 12;
    p.nflop = nflop;
    p.sweeps = 1;
    Lbench lb(p);
    sim::Engine eng(test_engine());
    (void)run(lb, eng);
    EXPECT_EQ(eng.total_flops(), static_cast<std::uint64_t>(p.elements) * nflop);
  }
}

TEST(Lbench, HigherNflopLowersTrafficRate) {
  double rates[2];
  int i = 0;
  for (const std::uint32_t nflop : {1u, 128u}) {
    LbenchParams p;
    p.elements = 1 << 16;
    p.nflop = nflop;
    Lbench lb(p);
    sim::EngineConfig cfg = test_engine();
    cfg.machine.peak_gflops = 24.0;  // serial-dependence-limited kernel
    sim::Engine eng(cfg);
    (void)run(lb, eng);
    rates[i++] = static_cast<double>(eng.counters().dram_bytes_total()) /
                 eng.elapsed_seconds();
  }
  EXPECT_GT(rates[0], rates[1] * 2.0);
}

// ---------- factory / Table 2 ---------------------------------------------------------

TEST(Factory, AllAppsConstructAtAllScales) {
  for (const auto app : kAllApps) {
    for (const int scale : {1, 2, 4}) {
      const auto wl = make_workload(app, scale);
      ASSERT_NE(wl, nullptr);
      EXPECT_GT(wl->footprint_bytes(), 0u);
      EXPECT_FALSE(wl->name().empty());
    }
  }
}

TEST(Factory, InvalidScaleViolatesContract) {
  EXPECT_THROW((void)make_workload(App::kHPL, 3), contract_violation);
}

TEST(Factory, AppNamesMatchPaper) {
  EXPECT_STREQ(app_name(App::kHPL), "HPL");
  EXPECT_STREQ(app_name(App::kSuperLU), "SuperLU");
  EXPECT_STREQ(app_name(App::kNekRS), "NekRS");
  EXPECT_STREQ(app_name(App::kHypre), "Hypre");
  EXPECT_STREQ(app_name(App::kBFS), "BFS");
  EXPECT_STREQ(app_name(App::kXSBench), "XSBench");
}

// Property sweep: footprints follow the 1:2:4 design across all apps.
class FootprintScalingTest : public ::testing::TestWithParam<App> {};

TEST_P(FootprintScalingTest, RoughlyOneTwoFour) {
  const App app = GetParam();
  const auto f1 = make_workload(app, 1)->footprint_bytes();
  const auto f2 = make_workload(app, 2)->footprint_bytes();
  const auto f4 = make_workload(app, 4)->footprint_bytes();
  const double r2 = static_cast<double>(f2) / f1;
  const double r4 = static_cast<double>(f4) / f1;
  EXPECT_GT(r2, 1.5);
  EXPECT_LT(r2, 2.8);
  EXPECT_GT(r4, 3.2);
  EXPECT_LT(r4, 5.2);
}

INSTANTIATE_TEST_SUITE_P(AllApps, FootprintScalingTest, ::testing::ValuesIn(kAllApps),
                         [](const auto& param_info) { return app_name(param_info.param); });

}  // namespace
}  // namespace memdis::workloads
