// Epoch-profile repricing (core/epoch_profile.h): equivalence and fallback
// correctness.
//
// The contract under test is byte-identity: with `--reprice on`, every
// eligible grid point must produce artifacts bit-identical to the full
// simulation it replaces, and every ineligible point (migration runtime
// attached, epoch callback installed, workload without a functional id)
// must fall back to full simulation silently — so a sweep mixing both
// kinds writes byte-identical CSV/JSON either way.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/epoch_profile.h"
#include "core/experiment.h"
#include "core/migration.h"
#include "core/scenario_registry.h"
#include "core/sweep.h"
#include "memsim/loi_schedule.h"
#include "sim/engine.h"
#include "workloads/lbench.h"

namespace memdis::core {
namespace {

// Saves the process-wide reprice switch, clears the profile cache, and
// restores both on destruction — the same Scoped-override idiom the other
// suites use for link-model and fast-forward defaults.
class ScopedReprice {
 public:
  explicit ScopedReprice(bool on) : saved_(reprice_enabled()) {
    clear_reprice_cache();
    set_reprice_enabled(on);
  }
  ~ScopedReprice() {
    set_reprice_enabled(saved_);
    clear_reprice_cache();
  }
  ScopedReprice(const ScopedReprice&) = delete;
  ScopedReprice& operator=(const ScopedReprice&) = delete;

 private:
  bool saved_;
};

bool bits_equal(double a, double b) {
  std::uint64_t ab = 0, bb = 0;
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

// Lbench sized so one run closes a handful of epochs quickly.
workloads::LbenchParams small_lbench(std::uint64_t seed) {
  workloads::LbenchParams lp;
  lp.elements = 1 << 16;
  lp.nflop = 1;
  lp.sweeps = 4;
  lp.on_pool = true;
  lp.seed = seed;
  return lp;
}

// Pass-through wrapper that deliberately keeps the base class's empty
// functional_id(): the in-run_workload opt-out path.
class AnonymousLbench final : public workloads::Workload {
 public:
  explicit AnonymousLbench(const workloads::LbenchParams& p) : inner_(p) {}
  [[nodiscard]] std::string name() const override { return inner_.name(); }
  [[nodiscard]] std::uint64_t footprint_bytes() const override {
    return inner_.footprint_bytes();
  }
  workloads::WorkloadResult run(sim::Engine& eng) override { return inner_.run(eng); }

 private:
  workloads::Lbench inner_;
};

// Asserts bit-identity of everything the repricer recomputes (and of the
// functional content it must not touch).
void expect_outputs_identical(const RunOutput& a, const RunOutput& b) {
  EXPECT_TRUE(bits_equal(a.elapsed_s, b.elapsed_s));
  EXPECT_EQ(a.flops, b.flops);
  EXPECT_EQ(a.counters.loads, b.counters.loads);
  EXPECT_EQ(a.counters.offcore_l3_miss, b.counters.offcore_l3_miss);
  EXPECT_EQ(a.resident_bytes, b.resident_bytes);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    const auto& ea = a.epochs[i];
    const auto& eb = b.epochs[i];
    EXPECT_TRUE(bits_equal(ea.start_s, eb.start_s)) << "epoch " << i;
    EXPECT_TRUE(bits_equal(ea.duration_s, eb.duration_s)) << "epoch " << i;
    EXPECT_TRUE(bits_equal(ea.link_traffic_gbps, eb.link_traffic_gbps)) << "epoch " << i;
    EXPECT_TRUE(bits_equal(ea.link_utilization, eb.link_utilization)) << "epoch " << i;
    EXPECT_EQ(ea.tier_bytes, eb.tier_bytes) << "epoch " << i;
    ASSERT_EQ(ea.link_loi.size(), eb.link_loi.size());
    for (std::size_t t = 0; t < ea.link_loi.size(); ++t) {
      EXPECT_TRUE(bits_equal(ea.link_loi[t], eb.link_loi[t])) << "epoch " << i;
      EXPECT_TRUE(bits_equal(ea.link_demand_mult[t], eb.link_demand_mult[t]))
          << "epoch " << i;
      EXPECT_TRUE(bits_equal(ea.link_demand_inflation[t], eb.link_demand_inflation[t]))
          << "epoch " << i;
    }
  }
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    EXPECT_EQ(a.phases[i].tag, b.phases[i].tag);
    EXPECT_TRUE(bits_equal(a.phases[i].time_s, b.phases[i].time_s)) << a.phases[i].tag;
    EXPECT_EQ(a.phases[i].epoch_begin, b.phases[i].epoch_begin);
    EXPECT_EQ(a.phases[i].epoch_end, b.phases[i].epoch_end);
  }
}

RunConfig timing_point(double loi) {
  RunConfig rc;
  rc.background_loi = loi;
  rc.remote_capacity_ratio = 0.5;
  return rc;
}

TEST(Reprice, RunWorkloadIsBitIdenticalAcrossTheLoiAxis) {
  const std::vector<double> lois = {0.0, 10.0, 25.0, 50.0};
  // Reference: full simulation for every point.
  std::vector<RunOutput> live;
  {
    const ScopedReprice off(false);
    for (const double loi : lois) {
      workloads::Lbench wl(small_lbench(7));
      live.push_back(run_workload(wl, timing_point(loi)));
    }
  }
  // Repriced: the first point captures, the rest fold the cost model over
  // its epoch profile.
  const ScopedReprice on(true);
  for (std::size_t i = 0; i < lois.size(); ++i) {
    workloads::Lbench wl(small_lbench(7));
    const RunOutput out = run_workload(wl, timing_point(lois[i]));
    expect_outputs_identical(live[i], out);
  }
  const RepriceStats stats = reprice_stats();
  EXPECT_EQ(stats.captures, 1u);
  EXPECT_EQ(stats.reprices, lois.size() - 1);
  EXPECT_EQ(reprice_cache_size(), 1u);
}

TEST(Reprice, LoiScheduleAndPerTierOverridesRepriceBitExactly) {
  // A square-wave schedule on the pool link plus an asymmetric static
  // override: the repricer must step the schedule epoch-for-epoch and
  // apply the per-tier vector exactly as the engine constructor does.
  const auto make_config = [](double loi) {
    RunConfig rc = timing_point(loi);
    rc.background_loi_per_tier = {0.0, loi};
    const memsim::TierId pool = rc.machine.topology.first_fabric();
    rc.loi_schedule.set(pool, memsim::LoiWaveform::square(2, 0.5, 40.0, loi));
    return rc;
  };
  RunOutput live0, live25;
  {
    const ScopedReprice off(false);
    workloads::Lbench a(small_lbench(11));
    live0 = run_workload(a, make_config(0.0));
    workloads::Lbench b(small_lbench(11));
    live25 = run_workload(b, make_config(25.0));
  }
  const ScopedReprice on(true);
  workloads::Lbench a(small_lbench(11));
  expect_outputs_identical(live0, run_workload(a, make_config(0.0)));
  workloads::Lbench b(small_lbench(11));
  expect_outputs_identical(live25, run_workload(b, make_config(25.0)));
  EXPECT_EQ(reprice_stats().captures, 1u);
  EXPECT_EQ(reprice_stats().reprices, 1u);
}

TEST(Reprice, QueueModelRepriceReplaysObservesBitExactly) {
  // Under the two-class queue model the windowed estimators carry history
  // across epochs; the repricer replays the same observe sequence, so the
  // results stay bit-identical — including at zero bulk, where the queue
  // model collapses to the closed form.
  const auto make_config = [](double loi) {
    RunConfig rc = timing_point(loi);
    rc.link_model = memsim::LinkModelKind::kQueue;
    return rc;
  };
  RunOutput live0, live25;
  {
    const ScopedReprice off(false);
    workloads::Lbench a(small_lbench(13));
    live0 = run_workload(a, make_config(0.0));
    workloads::Lbench b(small_lbench(13));
    live25 = run_workload(b, make_config(25.0));
  }
  const ScopedReprice on(true);
  workloads::Lbench a(small_lbench(13));
  expect_outputs_identical(live0, run_workload(a, make_config(0.0)));
  workloads::Lbench b(small_lbench(13));
  expect_outputs_identical(live25, run_workload(b, make_config(25.0)));
  EXPECT_EQ(reprice_stats().reprices, 1u);
}

TEST(Reprice, WorkloadWithoutFunctionalIdFallsBackToFullSimulation) {
  const ScopedReprice on(true);
  AnonymousLbench wl(small_lbench(17));
  const RunOutput out = run_workload(wl, timing_point(25.0));
  EXPECT_GT(out.elapsed_s, 0.0);
  const RepriceStats stats = reprice_stats();
  EXPECT_EQ(stats.captures, 0u);
  EXPECT_EQ(stats.reprices, 0u);
  EXPECT_EQ(reprice_cache_size(), 0u);
}

// ---- the mixed-grid sweep (the ISSUE's fallback-correctness check) ----------

// Measure dispatching on the variant axis:
//   plain    — run_workload, eligible (captures/re-prices over the LoI axis)
//   schedule — run_workload with a square-wave LoI schedule, still eligible
//   migrate  — direct Engine + MigrationRuntime + epoch callback: ineligible
//              by construction (never passes through run_workload)
//   anon     — run_workload with an id-less workload: in-code fallback
std::vector<Metric> mixed_measure(const SweepPoint& point) {
  if (point.variant == "migrate") {
    workloads::Lbench wl(small_lbench(point.seed));
    sim::EngineConfig cfg;
    cfg.machine = machine_with_spill(machine_for_fabric(point.fabric), 0.5,
                                     wl.footprint_bytes());
    cfg.background_loi = point.loi;
    cfg.epoch_accesses = 50'000;
    const memsim::TierId pool = cfg.machine.topology.first_fabric();
    cfg.loi_schedule.set(pool, memsim::LoiWaveform::square(4, 0.5, 30.0, point.loi));
    sim::Engine eng(cfg);
    MigrationConfig mcfg;
    mcfg.period_epochs = 1;
    mcfg.max_pages_per_scan = 16;
    mcfg.link_budget_pages = 2;
    MigrationRuntime runtime(mcfg);
    runtime.attach(eng);
    // An epoch callback reading durations back out of the timeline — the
    // timing-feedback shape that makes a run ineligible for repricing.
    double duration_feedback = 0.0;
    eng.set_epoch_callback([&](sim::Engine& e) {
      if (!e.epochs().empty()) duration_feedback += e.epochs().back().duration_s;
    });
    (void)wl.run(eng);
    eng.finish();
    return {{"elapsed_s", eng.elapsed_seconds()},
            {"epochs", static_cast<double>(eng.epochs().size())},
            {"promoted", static_cast<double>(runtime.pages_promoted())},
            {"feedback_s", duration_feedback}};
  }

  RunConfig rc = point.run_config();
  if (point.variant == "schedule") {
    const memsim::TierId pool = rc.machine.topology.first_fabric();
    rc.loi_schedule.set(pool, memsim::LoiWaveform::square(2, 0.5, 40.0, point.loi));
  }
  RunOutput out;
  if (point.variant == "anon") {
    AnonymousLbench wl(small_lbench(point.seed));
    out = run_workload(wl, rc);
  } else {
    workloads::Lbench wl(small_lbench(point.seed));
    out = run_workload(wl, rc);
  }
  double traffic_sum = 0.0, mult_sum = 0.0, phase_sum = 0.0;
  for (const auto& e : out.epochs) {
    traffic_sum += e.link_traffic_gbps;
    for (const double m : e.link_demand_mult) mult_sum += m;
  }
  for (const auto& p : out.phases) phase_sum += p.time_s;
  return {{"elapsed_s", out.elapsed_s},
          {"epochs", static_cast<double>(out.epochs.size())},
          {"remote_ratio", out.remote_access_ratio()},
          {"traffic_sum", traffic_sum},
          {"mult_sum", mult_sum},
          {"phase_sum", phase_sum}};
}

SweepSpec mixed_spec() {
  SweepSpec spec;
  spec.apps = {workloads::App::kHPL};  // grid label only; the measure picks Lbench
  spec.ratios = {0.5};
  spec.lois = {0.0, 25.0};
  spec.variants = {"plain", "schedule", "migrate", "anon"};
  spec.base_seed = 7;
  spec.seed_per_task = false;
  return spec;
}

TEST(Reprice, MixedEligibilitySweepWritesByteIdenticalArtifacts) {
  const SweepSpec spec = mixed_spec();
  SweepOptions opts;
  opts.jobs = 2;

  SweepResult full, repriced;
  {
    const ScopedReprice off(false);
    full = run_sweep(spec, mixed_measure, opts);
  }
  {
    const ScopedReprice on(true);
    repriced = run_sweep(spec, mixed_measure, opts);
    const RepriceStats stats = reprice_stats();
    // The eligible variants actually went through the repricer...
    EXPECT_GT(stats.reprices, 0u);
    // ...and the ineligible ones never touched the cache: plain and
    // schedule share one functional key (same workload, machine shaping,
    // hierarchy), so at most the two wave-1 leaders capture.
    EXPECT_LE(stats.captures, 2u);
    EXPECT_LE(reprice_cache_size(), 1u);
  }

  ASSERT_EQ(full.rows.size(), spec.size());
  EXPECT_TRUE(full.rows_equal(repriced));

  std::ostringstream csv_full, csv_repriced, json_full, json_repriced;
  full.write_csv(csv_full);
  repriced.write_csv(csv_repriced);
  full.write_json(json_full);
  repriced.write_json(json_repriced);
  EXPECT_EQ(csv_full.str(), csv_repriced.str());
  EXPECT_EQ(json_full.str(), json_repriced.str());
}

// ---- a registered scenario with a real timing axis --------------------------

// ext-cxl's measure function runs `sensitivity_sweep` over LoI levels
// {0, 50} with the workload and machine shaping held fixed, so under
// repricing the baseline run captures and the LoI-50 run folds the
// profile — reprices must be strictly positive, unlike fig06 (whose
// grid has no timing axis and is pinned as a capture-only no-op in
// tests/test_determinism.cpp). The byte-compare makes this the
// scenario-level equivalence gate for a grid that genuinely re-prices.
TEST(Reprice, ExtCxlScenarioRepricesAndMatchesFullSimulation) {
#ifdef MEMDIS_UNDER_ASAN
  GTEST_SKIP() << "double ext-cxl run exceeds the sanitized scenario timeout";
#endif
  const auto* scenario = ScenarioRegistry::instance().find("ext-cxl");
  ASSERT_NE(scenario, nullptr);
  const auto artifacts = [&](bool reprice) {
    const ScopedReprice scoped(reprice);
    SweepOptions opts;
    opts.jobs = 1;
    const SweepResult result = run_scenario(*scenario, opts);
    std::ostringstream csv, json;
    result.write_csv(csv);
    result.write_json(json);
    if (reprice) {
      EXPECT_GT(reprice_stats().captures, 0u);
      EXPECT_GT(reprice_stats().reprices, 0u);
    }
    return std::make_pair(csv.str(), json.str());
  };
  const auto full = artifacts(false);
  const auto repriced = artifacts(true);
  EXPECT_EQ(full.first, repriced.first);
  EXPECT_EQ(full.second, repriced.second);
  EXPECT_FALSE(full.first.empty());
}

}  // namespace
}  // namespace memdis::core
