// Trace-format unit suite: on-disk round-trips, the periodic detector's
// RLE boundaries, corrupt-input rejection, replay exactness against the
// element-wise engine, and the fast-forward tolerance contract.
//
// The replay gate here is deliberately stronger than the sweep-level
// byte-compares in test_determinism: it compares the *engine state* —
// counters, elapsed time, epoch count, and the cache-hierarchy digest —
// between a live instrumented run and its replay, so a coalescing bug
// that happened to cancel out in CSV metrics would still be caught.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <fstream>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "trace/trace.h"
#include "trace/trace_workload.h"
#include "workloads/workload.h"

namespace memdis {
namespace {

namespace fs = std::filesystem;

#if defined(__SANITIZE_ADDRESS__)
#define MEMDIS_UNDER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MEMDIS_UNDER_ASAN 1
#endif
#endif

fs::path temp_file(const std::string& name) {
  return fs::path(::testing::TempDir()) / name;
}

/// Engine-state fingerprint for exact live-vs-replay comparison.
struct EngineState {
  cachesim::HwCounters counters;
  double elapsed = 0.0;
  std::uint64_t flops = 0;
  std::size_t epochs = 0;
  std::uint64_t digest = 0;
};

EngineState state_of(sim::Engine& eng) {
  EngineState s;
  s.counters = eng.counters();
  s.elapsed = eng.elapsed_seconds();
  s.flops = eng.total_flops();
  s.epochs = eng.epochs().size();
  s.digest = eng.hierarchy().digest();
  return s;
}

void expect_states_equal(const EngineState& a, const EngineState& b) {
  EXPECT_EQ(a.counters.loads, b.counters.loads);
  EXPECT_EQ(a.counters.stores, b.counters.stores);
  EXPECT_EQ(a.counters.l1_hits, b.counters.l1_hits);
  EXPECT_EQ(a.counters.l2_hits, b.counters.l2_hits);
  EXPECT_EQ(a.counters.l3_hits, b.counters.l3_hits);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.flops, b.flops);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.digest, b.digest);
}

/// Drives `calls` against a fresh engine; when `writer` is non-null it is
/// attached as the trace sink for the duration (detached before finish()).
EngineState drive(const std::function<void(sim::Engine&)>& calls,
                  trace::TraceWriter* writer) {
  sim::Engine eng;
  if (writer != nullptr) eng.set_trace_sink(writer);
  calls(eng);
  if (writer != nullptr) {
    writer->finish();
    eng.set_trace_sink(nullptr);
  }
  eng.finish();
  return state_of(eng);
}

trace::TraceData data_from(trace::TraceWriter& writer) {
  trace::TraceData data;
  data.app = "synthetic";
  data.scale = 1;
  data.seed = 7;
  data.workload_name = "synthetic";
  data.footprint_bytes = 1;
  data.verified = true;
  data.record_count = writer.record_count();
  data.payload = writer.take_payload();
  return data;
}

EngineState replay(const trace::TraceData& data) {
  sim::Engine eng;
  trace::TraceReplayWorkload wl(data);
  wl.run(eng);
  eng.finish();
  return state_of(eng);
}

// ---- on-disk round-trip -----------------------------------------------------

TEST(TraceFormat, SaveLoadRoundTripPreservesHeaderAndPayload) {
  trace::TraceWriter writer;
  writer.on_alloc(4096, memsim::MemPolicy::first_touch(), "buf", 0x10000);
  writer.on_range(0, 0x10000, 4096, 8);
  writer.on_strided(true, 0x10000, 16, 128, 8);
  writer.on_pair(false, 0x10000, 8, 0x10800, 4, 32);
  writer.on_phase(true, "solve");
  writer.on_phase(false, "");
  writer.on_free(0x10000);
  writer.finish();

  trace::TraceData data = data_from(writer);
  data.app = "hpl";
  data.scale = 3;
  data.seed = 1234567;
  data.workload_name = "HPL";
  data.footprint_bytes = 123456789;
  data.verified = true;
  data.residual = 1.25e-13;
  data.detail = "||Ax-b|| ok";

  const fs::path path = temp_file("roundtrip.mdtr");
  data.save(path.string());

  std::string error;
  const auto loaded = trace::TraceData::load(path.string(), error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->app, "hpl");
  EXPECT_EQ(loaded->scale, 3);
  EXPECT_EQ(loaded->seed, 1234567u);
  EXPECT_EQ(loaded->workload_name, "HPL");
  EXPECT_EQ(loaded->footprint_bytes, 123456789u);
  EXPECT_TRUE(loaded->verified);
  EXPECT_EQ(loaded->residual, 1.25e-13);
  EXPECT_EQ(loaded->detail, "||Ax-b|| ok");
  EXPECT_EQ(loaded->record_count, data.record_count);
  EXPECT_EQ(loaded->payload, data.payload);

  const auto stats = trace::scan_trace(*loaded, error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->total, data.record_count);
  EXPECT_EQ(stats->by_op[static_cast<std::size_t>(trace::TraceOp::kAlloc)], 1u);
  EXPECT_EQ(stats->by_op[static_cast<std::size_t>(trace::TraceOp::kLoadRange)], 1u);
  EXPECT_EQ(stats->by_op[static_cast<std::size_t>(trace::TraceOp::kStoreStrided)], 1u);
  EXPECT_EQ(stats->by_op[static_cast<std::size_t>(trace::TraceOp::kLoadPair)], 1u);
  EXPECT_EQ(stats->by_op[static_cast<std::size_t>(trace::TraceOp::kPfStart)], 1u);
  EXPECT_EQ(stats->by_op[static_cast<std::size_t>(trace::TraceOp::kPfStop)], 1u);
  EXPECT_EQ(stats->by_op[static_cast<std::size_t>(trace::TraceOp::kFree)], 1u);
  EXPECT_EQ(stats->by_op[static_cast<std::size_t>(trace::TraceOp::kEnd)], 1u);
}

TEST(TraceFormat, SaveAtomicLeavesNoTempFileBehind) {
  trace::TraceWriter writer;
  writer.finish();
  trace::TraceData data = data_from(writer);

  const fs::path dir = fs::path(::testing::TempDir()) / "memdis_atomic_save";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path path = dir / "t.mdtr";
  data.save_atomic(path.string());

  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    EXPECT_EQ(e.path(), path);
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  std::string error;
  EXPECT_TRUE(trace::TraceData::load(path.string(), error).has_value()) << error;
  fs::remove_all(dir);
}

// ---- corrupt-input rejection ------------------------------------------------

TEST(TraceFormat, LoadRejectsMissingFile) {
  std::string error;
  const auto loaded = trace::TraceData::load(
      (fs::path(::testing::TempDir()) / "no_such_trace.mdtr").string(), error);
  EXPECT_FALSE(loaded.has_value());
  EXPECT_FALSE(error.empty());
}

TEST(TraceFormat, LoadRejectsBadMagic) {
  trace::TraceWriter writer;
  writer.finish();
  trace::TraceData data = data_from(writer);
  const fs::path path = temp_file("badmagic.mdtr");
  data.save(path.string());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.put('X');
  }
  std::string error;
  EXPECT_FALSE(trace::TraceData::load(path.string(), error).has_value());
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
}

TEST(TraceFormat, LoadRejectsUnsupportedVersion) {
  trace::TraceWriter writer;
  writer.finish();
  trace::TraceData data = data_from(writer);
  const fs::path path = temp_file("badversion.mdtr");
  data.save(path.string());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(4);  // u16 LE version follows the 4-byte magic
    f.put(static_cast<char>(99));
    f.put(static_cast<char>(0));
  }
  std::string error;
  EXPECT_FALSE(trace::TraceData::load(path.string(), error).has_value());
  EXPECT_NE(error.find("unsupported trace version"), std::string::npos) << error;
}

TEST(TraceFormat, LoadRejectsTruncatedFile) {
  trace::TraceWriter writer;
  writer.on_range(0, 0x1000, 65536, 8);
  writer.finish();
  trace::TraceData data = data_from(writer);
  const fs::path path = temp_file("truncated.mdtr");
  data.save(path.string());
  fs::resize_file(path, fs::file_size(path) - 3);
  std::string error;
  EXPECT_FALSE(trace::TraceData::load(path.string(), error).has_value());
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST(TraceFormat, ScanRejectsCorruptRecord) {
  trace::TraceData data;
  data.record_count = 1;
  data.payload = {0xff};  // opcode far above kTraceOpMax
  std::string error;
  EXPECT_FALSE(trace::scan_trace(data, error).has_value());
  EXPECT_FALSE(error.empty());
}

// ---- periodic detector / RLE boundaries -------------------------------------

TEST(TraceWriterRle, PeriodicPatternFoldsIntoStreamRecord) {
  trace::TraceWriter writer;
  const std::uint64_t a = 1 << 20, b = 2 << 20;
  const std::uint64_t iters = 10000;
  for (std::uint64_t k = 0; k < iters; ++k) {
    writer.on_access(false, a + 8 * k, 8);
    writer.on_access(true, b + 8 * k, 8);
    writer.on_flops(4);
  }
  writer.finish();

  const trace::TraceData data = data_from(writer);
  std::string error;
  const auto stats = trace::scan_trace(data, error);
  ASSERT_TRUE(stats.has_value()) << error;
  // 30k simple events must collapse to a handful of records: the window
  // prefix that seeds detection, one kStream carrying (almost) all
  // iterations, and at most a partial-period tail.
  EXPECT_GE(stats->by_op[static_cast<std::size_t>(trace::TraceOp::kStream)], 1u);
  EXPECT_GT(stats->stream_iterations, iters - 64);
  EXPECT_LT(stats->total, 200u);
}

TEST(TraceWriterRle, AdjacentFlopsCoalesce) {
  trace::TraceWriter writer;
  for (int i = 0; i < 1000; ++i) writer.on_flops(3);
  writer.on_access(false, 4096, 8);  // forces the pending flops to drain
  writer.finish();
  const trace::TraceData data = data_from(writer);
  std::string error;
  const auto stats = trace::scan_trace(data, error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->by_op[static_cast<std::size_t>(trace::TraceOp::kFlops)], 1u);
}

/// The exactness gate for every coalescing boundary at once: a stream that
/// enters periodic mode, breaks the pattern mid-period, resumes with a
/// different period, and ends on a partial iteration must replay into
/// bit-identical engine state. Pattern breaks are where the writer's
/// partial-prefix replay logic runs; this is its regression test.
TEST(TraceWriterRle, ReplayOfBoundaryHeavyStreamMatchesLive) {
  const auto calls = [](sim::Engine& eng) {
    const auto r = eng.alloc(8 << 20, memsim::MemPolicy::first_touch(), "buf");
    const std::uint64_t base = r.base;
    // Period-2 pattern, long enough to activate streaming...
    for (std::uint64_t k = 0; k < 5000; ++k) {
      eng.load(base + 16 * k, 8);
      eng.store(base + 16 * k + 8, 8);
    }
    // ...broken mid-period (a lone load where a store was due)...
    eng.load(base + 123, 4);
    // ...then a period-3 pattern with flops in the loop body...
    for (std::uint64_t k = 0; k < 4000; ++k) {
      eng.load(base + 24 * k, 8);
      eng.load(base + 24 * k + 8, 8);
      eng.flops(10);
    }
    // ...ending on a partial iteration.
    eng.load(base + 24 * 4000, 8);
    // Irregular tail: LCG addresses never enter streaming mode.
    std::uint64_t x = 12345;
    for (int k = 0; k < 2000; ++k) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      eng.load(base + (x % (8 << 20)) / 8 * 8, 8);
    }
    eng.free(r);
  };

  trace::TraceWriter writer;
  const EngineState live = drive(calls, &writer);
  const trace::TraceData data = data_from(writer);
  const EngineState replayed = replay(data);
  expect_states_equal(live, replayed);
}

/// Bulk calls pass through verbatim (no re-coalescing): replaying a mix of
/// range/strided/pair/stream/phase calls reproduces engine state exactly.
TEST(TraceWriterRle, ReplayOfBulkCallsMatchesLive) {
  const auto calls = [](sim::Engine& eng) {
    const auto r = eng.alloc(16 << 20, memsim::MemPolicy::first_touch(), "bulk");
    eng.pf_start("phase-a");
    eng.store_range(r.base, 4 << 20, 8);
    eng.load_range(r.base, 4 << 20, 8);
    eng.rmw_range(r.base, 1 << 20, 8);
    eng.store_load_range(r.base + (4 << 20), 1 << 20, 8);
    eng.load_strided(r.base, 4096, 256, 8);
    eng.store_pair_range(r.base, 8, r.base + (8 << 20), 4, 10000);
    sim::StreamLane lanes[2] = {
        {r.base, 16, 8, sim::StreamLane::Op::kLoad},
        {r.base + (2 << 20), 16, 8, sim::StreamLane::Op::kStore},
    };
    eng.stream_range(lanes, 2, 50000);
    eng.pf_stop();
    eng.free(r);
  };

  trace::TraceWriter writer;
  const EngineState live = drive(calls, &writer);
  const trace::TraceData data = data_from(writer);
  const EngineState replayed = replay(data);
  expect_states_equal(live, replayed);
}

TEST(TraceReplay, DivergingAllocationFailsLoudly) {
  trace::TraceWriter writer;
  // Recorded base 0xdeadbeef000 cannot match the bump allocator's first
  // allocation in a fresh engine.
  writer.on_alloc(4096, memsim::MemPolicy::first_touch(), "buf", 0xdeadbeef000);
  writer.finish();
  const trace::TraceData data = data_from(writer);
  sim::Engine eng;
  trace::TraceReplayWorkload wl(data);
  EXPECT_THROW(wl.run(eng), std::runtime_error);
}

// ---- cached-workload factory ------------------------------------------------

TEST(TraceCache, RecordThenReplayThroughFactory) {
#ifdef MEMDIS_UNDER_ASAN
  GTEST_SKIP() << "full workload run exceeds the sanitized unit budget";
#endif
  const fs::path dir = fs::path(::testing::TempDir()) / "memdis_factory_cache";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const auto key = trace::trace_cache_path(dir.string(), workloads::App::kBFS, 1, 42);
  EXPECT_FALSE(fs::exists(key));

  // First factory call wraps the live workload and records on run.
  auto rec = trace::make_cached_workload(dir.string(), workloads::App::kBFS, 1, 42);
  EngineState live;
  workloads::WorkloadResult live_result;
  {
    sim::Engine eng;
    live_result = rec->run(eng);
    eng.finish();
    live = state_of(eng);
  }
  EXPECT_TRUE(fs::exists(key));

  // Second factory call loads the trace; replay reproduces engine state
  // and the recorded workload result.
  auto rep = trace::make_cached_workload(dir.string(), workloads::App::kBFS, 1, 42);
  EngineState replayed;
  workloads::WorkloadResult replay_result;
  {
    sim::Engine eng;
    replay_result = rep->run(eng);
    eng.finish();
    replayed = state_of(eng);
  }
  expect_states_equal(live, replayed);
  EXPECT_EQ(live_result.verified, replay_result.verified);
  EXPECT_EQ(live_result.residual, replay_result.residual);
  EXPECT_EQ(live_result.detail, replay_result.detail);
  fs::remove_all(dir);
}

TEST(TraceCache, PoisonedCacheFileThrowsInsteadOfFallingBack) {
  const fs::path dir = fs::path(::testing::TempDir()) / "memdis_poisoned_cache";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto key = trace::trace_cache_path(dir.string(), workloads::App::kHPL, 1, 42);
  std::ofstream(key, std::ios::binary) << "not a trace";
  EXPECT_THROW(
      (void)trace::make_cached_workload(dir.string(), workloads::App::kHPL, 1, 42),
      std::runtime_error);
  fs::remove_all(dir);
}

// ---- fast-forward tolerance contract ----------------------------------------

/// The fast-forward contract (docs/TRACE.md): on a steady periodic stream
/// with a settled resident set, the analytic path must (a) actually engage,
/// (b) keep integer counters exact, and (c) keep epoch-priced time within
/// 0.1% of the bit-exact path. The pre-touch pass is what settles the
/// resident set — fast-forward correctly refuses to engage while
/// first-touch placement is still changing per-epoch state.
TEST(FastForward, SteadyStreamWithinTolerance) {
#ifdef MEMDIS_UNDER_ASAN
  GTEST_SKIP() << "multi-epoch stream runs exceed the sanitized unit budget";
#endif
  const std::uint64_t bytes = 192ull << 20;
  const auto run_one = [&](bool ff) {
    sim::EngineConfig cfg;
    cfg.fast_forward = ff;
    sim::Engine eng(cfg);
    const auto r = eng.alloc(bytes, memsim::MemPolicy::first_touch(), "a");
    eng.store_range(r.base, bytes, 8);  // settle the resident set
    sim::StreamLane lane{r.base, 8, 8, sim::StreamLane::Op::kLoad};
    for (int rep = 0; rep < 3; ++rep) eng.stream_range(&lane, 1, bytes / 8);
    eng.finish();
    EngineState s = state_of(eng);
    return std::make_pair(s, eng.fast_forwarded_epochs());
  };

  const auto [exact, exact_ff] = run_one(false);
  const auto [fast, fast_ff] = run_one(true);

  EXPECT_EQ(exact_ff, 0u);
  EXPECT_GT(fast_ff, 0u);
  // Integer totals are synthesized in closed form — exact, not approximate.
  EXPECT_EQ(exact.counters.loads, fast.counters.loads);
  EXPECT_EQ(exact.counters.stores, fast.counters.stores);
  EXPECT_EQ(exact.flops, fast.flops);
  EXPECT_EQ(exact.epochs, fast.epochs);
  // Priced time carries the steady-state approximation; the contract caps
  // it at 0.1% of the exact path.
  ASSERT_GT(exact.elapsed, 0.0);
  const double dev = std::abs(fast.elapsed - exact.elapsed) / exact.elapsed;
  EXPECT_LE(dev, 1e-3) << "fast-forward elapsed deviation " << dev;
}

/// Fast-forward defaults off, and the default engine path is bit-exact:
/// EngineConfig's initializer must track the process-wide default.
TEST(FastForward, DefaultsOff) {
  EXPECT_FALSE(sim::fast_forward_default());
  const sim::EngineConfig cfg;
  EXPECT_FALSE(cfg.fast_forward);
}

}  // namespace
}  // namespace memdis
