// Tests for the extension features: the hot-page migration runtime, the
// CXL fabric presets, the numactl-style default-policy override, and the
// engine's epoch callback hook.
#include <gtest/gtest.h>

#include "core/migration.h"
#include "core/profiler.h"
#include "sim/array.h"
#include "workloads/bfs.h"

namespace memdis {
namespace {

// ---------- CXL presets -------------------------------------------------------

TEST(CxlPresets, DirectAttachedHasMoreBandwidthLessOverhead) {
  const auto upi = memsim::MachineConfig::skylake_testbed();
  const auto cxl = memsim::MachineConfig::cxl_direct_attached();
  EXPECT_GT(cxl.pool_tier().bandwidth_gbps, upi.pool_tier().bandwidth_gbps);
  EXPECT_LT(cxl.pool_tier().latency_ns, upi.pool_tier().latency_ns);
  EXPECT_LT(cxl.pool_link().protocol_overhead, upi.pool_link().protocol_overhead);
  // Traffic capacity consistent with data bandwidth × overhead.
  EXPECT_NEAR(cxl.link_data_bandwidth_gbps(), cxl.pool_tier().bandwidth_gbps, 1e-9);
}

TEST(CxlPresets, SwitchedPoolOnlyAddsLatency) {
  const auto direct = memsim::MachineConfig::cxl_direct_attached();
  const auto switched = memsim::MachineConfig::cxl_switched_pool();
  EXPECT_GT(switched.pool_tier().latency_ns, direct.pool_tier().latency_ns);
  EXPECT_DOUBLE_EQ(switched.pool_tier().bandwidth_gbps, direct.pool_tier().bandwidth_gbps);
  EXPECT_DOUBLE_EQ(switched.pool_link().traffic_capacity_gbps, direct.pool_link().traffic_capacity_gbps);
}

TEST(CxlPresets, RemoteStreamingFasterOnDirectCxlThanUpi) {
  const auto run_on = [](const memsim::MachineConfig& base) {
    sim::EngineConfig cfg;
    cfg.machine = base;
    cfg.machine.node_tier().capacity_bytes = cfg.machine.page_bytes;  // force remote
    sim::Engine eng(cfg);
    sim::Array<double> a(eng, 1 << 18);
    for (std::size_t i = 0; i < a.size(); ++i) a.st(i, 1.0);
    double sum = 0;
    for (std::size_t i = 0; i < a.size(); ++i) sum += a.ld(i);
    eng.finish();
    EXPECT_GT(sum, 0.0);
    return eng.elapsed_seconds();
  };
  EXPECT_LT(run_on(memsim::MachineConfig::cxl_direct_attached()),
            run_on(memsim::MachineConfig::skylake_testbed()));
}

// ---------- default-policy override -------------------------------------------

TEST(PolicyOverride, InterleaveOverrideSpreadsDefaultAllocations) {
  sim::EngineConfig cfg;
  cfg.default_policy_override = memsim::MemPolicy::interleave(1, 1);
  sim::Engine eng(cfg);
  const std::uint64_t page = eng.memory().page_bytes();
  sim::Array<std::uint8_t> a(eng, 8 * page);
  for (std::size_t i = 0; i < a.size(); i += page) a.st(i, 1);
  const auto snap = eng.memory().snapshot();
  EXPECT_NEAR(snap.remote_ratio(), 0.5, 0.01);
}

TEST(PolicyOverride, ExplicitBindingsWinOverOverride) {
  sim::EngineConfig cfg;
  cfg.default_policy_override = memsim::MemPolicy::interleave(1, 1);
  sim::Engine eng(cfg);
  const std::uint64_t page = eng.memory().page_bytes();
  sim::Array<std::uint8_t> a(eng, 4 * page, memsim::MemPolicy::bind_pool());
  for (std::size_t i = 0; i < a.size(); i += page) a.st(i, 1);
  EXPECT_EQ(eng.memory().used_bytes(memsim::kNodeTier), 0u);
}

TEST(PolicyOverride, NoOverrideKeepsFirstTouch) {
  sim::EngineConfig cfg;
  sim::Engine eng(cfg);
  const std::uint64_t page = eng.memory().page_bytes();
  sim::Array<std::uint8_t> a(eng, 4 * page);
  for (std::size_t i = 0; i < a.size(); i += page) a.st(i, 1);
  EXPECT_EQ(eng.memory().used_bytes(1), 0u);
}

// ---------- epoch callback ------------------------------------------------------

TEST(EpochCallback, FiresOncePerClosedEpoch) {
  sim::EngineConfig cfg;
  cfg.epoch_accesses = 1000;
  sim::Engine eng(cfg);
  int fired = 0;
  eng.set_epoch_callback([&](sim::Engine&) { ++fired; });
  sim::Array<double> a(eng, 16 * 1024);
  for (std::size_t i = 0; i < a.size(); ++i) a.st(i, 0.0);
  eng.finish();
  EXPECT_EQ(static_cast<std::size_t>(fired), eng.epochs().size());
  EXPECT_GT(fired, 4);
}

// ---------- migration runtime ----------------------------------------------------

TEST(Migration, PromotesHotRemotePages) {
  // One hot array forced remote; local has plenty of room for promotion.
  sim::EngineConfig cfg;
  cfg.epoch_accesses = 5'000;
  sim::Engine eng(cfg);
  core::MigrationConfig mcfg;
  mcfg.period_epochs = 1;
  mcfg.min_heat = 2;
  core::MigrationRuntime runtime(mcfg);
  runtime.attach(eng);

  const std::uint64_t page = eng.memory().page_bytes();
  sim::Array<std::uint8_t> hot(eng, 8 * page, memsim::MemPolicy::bind_pool(), "hot");
  for (int pass = 0; pass < 50; ++pass)
    for (std::size_t i = 0; i < hot.size(); i += 64) hot.st(i, 1);
  eng.finish();

  EXPECT_GT(runtime.pages_promoted(), 0u);
  EXPECT_GT(runtime.scans(), 0u);
  // The hot pages should now live locally.
  EXPECT_GT(eng.memory().used_bytes(memsim::kNodeTier), 0u);
}

TEST(Migration, DemotesColdToMakeRoom) {
  // Local tier sized to 8 pages, filled by a cold array; a hot remote array
  // must displace it.
  sim::EngineConfig cfg;
  cfg.epoch_accesses = 5'000;
  cfg.machine.node_tier().capacity_bytes = 8 * cfg.machine.page_bytes;
  sim::Engine eng(cfg);
  core::MigrationConfig mcfg;
  mcfg.period_epochs = 1;
  mcfg.min_heat = 2;
  core::MigrationRuntime runtime(mcfg);
  runtime.attach(eng);

  const std::uint64_t page = eng.memory().page_bytes();
  sim::Array<std::uint8_t> cold(eng, 8 * page, memsim::MemPolicy::bind_node(), "cold");
  for (std::size_t i = 0; i < cold.size(); i += page) cold.st(i, 1);  // touch once
  sim::Array<std::uint8_t> hot(eng, 8 * page, memsim::MemPolicy::bind_pool(), "hot");
  for (int pass = 0; pass < 80; ++pass)
    for (std::size_t i = 0; i < hot.size(); i += 64) hot.st(i, 1);
  eng.finish();

  EXPECT_GT(runtime.pages_demoted(), 0u);
  EXPECT_GT(runtime.pages_promoted(), 0u);
  // At least part of the hot array must have been promoted.
  EXPECT_TRUE(eng.memory().resident(hot.range().base));
}

TEST(Migration, IdleWithoutHeat) {
  sim::EngineConfig cfg;
  cfg.epoch_accesses = 5'000;
  sim::Engine eng(cfg);
  core::MigrationRuntime runtime({1, 64, 1000, true});  // very high heat bar
  runtime.attach(eng);
  sim::Array<std::uint8_t> a(eng, 16 * eng.memory().page_bytes(),
                             memsim::MemPolicy::bind_pool());
  for (std::size_t i = 0; i < a.size(); i += 64) a.st(i, 1);
  eng.finish();
  EXPECT_EQ(runtime.pages_promoted(), 0u);
}

TEST(Migration, ReducesBfsRemoteTraffic) {
  const auto run_bfs = [](bool with_runtime) {
    workloads::BfsParams params;
    params.log2_vertices = 13;
    params.num_roots = 2;
    workloads::Bfs bfs(params);
    sim::EngineConfig cfg;
    cfg.machine = cfg.machine.with_remote_capacity_ratio(0.75, bfs.footprint_bytes());
    cfg.epoch_accesses = 100'000;
    sim::Engine eng(cfg);
    core::MigrationConfig mcfg;
    mcfg.period_epochs = 1;
    core::MigrationRuntime runtime(mcfg);
    if (with_runtime) runtime.attach(eng);
    const auto res = bfs.run(eng);
    eng.finish();
    EXPECT_TRUE(res.verified);
    return static_cast<double>(eng.counters().fabric_dram_bytes()) /
           static_cast<double>(eng.counters().dram_bytes_total());
  };
  const double without = run_bfs(false);
  const double with = run_bfs(true);
  EXPECT_LT(with, without);
}

// Property sweep: migration never corrupts the traversal at any cadence.
class MigrationCadenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MigrationCadenceTest, BfsStaysCorrectUnderMigration) {
  workloads::BfsParams params;
  params.log2_vertices = 12;
  workloads::Bfs bfs(params);
  sim::EngineConfig cfg;
  cfg.machine = cfg.machine.with_remote_capacity_ratio(0.5, bfs.footprint_bytes());
  cfg.epoch_accesses = 50'000;
  sim::Engine eng(cfg);
  core::MigrationConfig mcfg;
  mcfg.period_epochs = GetParam();
  core::MigrationRuntime runtime(mcfg);
  runtime.attach(eng);
  const auto res = bfs.run(eng);
  eng.finish();
  EXPECT_TRUE(res.verified) << res.detail;
}

INSTANTIATE_TEST_SUITE_P(Cadences, MigrationCadenceTest, ::testing::Values(1u, 2u, 8u, 32u));

}  // namespace
}  // namespace memdis
