// Tests for the extension features: the hot-page migration runtime, the
// CXL fabric presets, the numactl-style default-policy override, the
// engine's epoch callback hook, and the time-varying LoI schedule
// (waveform semantics, CLI grammar parsing, engine integration).
#include <gtest/gtest.h>

#include <sstream>

#include "common/contract.h"
#include "core/migration.h"
#include "core/profiler.h"
#include "memsim/loi_schedule.h"
#include "sim/array.h"
#include "workloads/bfs.h"

namespace memdis {
namespace {

// ---------- CXL presets -------------------------------------------------------

TEST(CxlPresets, DirectAttachedHasMoreBandwidthLessOverhead) {
  const auto upi = memsim::MachineConfig::skylake_testbed();
  const auto cxl = memsim::MachineConfig::cxl_direct_attached();
  EXPECT_GT(cxl.pool_tier().bandwidth_gbps, upi.pool_tier().bandwidth_gbps);
  EXPECT_LT(cxl.pool_tier().latency_ns, upi.pool_tier().latency_ns);
  EXPECT_LT(cxl.pool_link().protocol_overhead, upi.pool_link().protocol_overhead);
  // Traffic capacity consistent with data bandwidth × overhead.
  EXPECT_NEAR(cxl.link_data_bandwidth_gbps(), cxl.pool_tier().bandwidth_gbps, 1e-9);
}

TEST(CxlPresets, SwitchedPoolOnlyAddsLatency) {
  const auto direct = memsim::MachineConfig::cxl_direct_attached();
  const auto switched = memsim::MachineConfig::cxl_switched_pool();
  EXPECT_GT(switched.pool_tier().latency_ns, direct.pool_tier().latency_ns);
  EXPECT_DOUBLE_EQ(switched.pool_tier().bandwidth_gbps, direct.pool_tier().bandwidth_gbps);
  EXPECT_DOUBLE_EQ(switched.pool_link().traffic_capacity_gbps, direct.pool_link().traffic_capacity_gbps);
}

TEST(CxlPresets, RemoteStreamingFasterOnDirectCxlThanUpi) {
  const auto run_on = [](const memsim::MachineConfig& base) {
    sim::EngineConfig cfg;
    cfg.machine = base;
    cfg.machine.node_tier().capacity_bytes = cfg.machine.page_bytes;  // force remote
    sim::Engine eng(cfg);
    sim::Array<double> a(eng, 1 << 18);
    for (std::size_t i = 0; i < a.size(); ++i) a.st(i, 1.0);
    double sum = 0;
    for (std::size_t i = 0; i < a.size(); ++i) sum += a.ld(i);
    eng.finish();
    EXPECT_GT(sum, 0.0);
    return eng.elapsed_seconds();
  };
  EXPECT_LT(run_on(memsim::MachineConfig::cxl_direct_attached()),
            run_on(memsim::MachineConfig::skylake_testbed()));
}

// ---------- default-policy override -------------------------------------------

TEST(PolicyOverride, InterleaveOverrideSpreadsDefaultAllocations) {
  sim::EngineConfig cfg;
  cfg.default_policy_override = memsim::MemPolicy::interleave(1, 1);
  sim::Engine eng(cfg);
  const std::uint64_t page = eng.memory().page_bytes();
  sim::Array<std::uint8_t> a(eng, 8 * page);
  for (std::size_t i = 0; i < a.size(); i += page) a.st(i, 1);
  const auto snap = eng.memory().snapshot();
  EXPECT_NEAR(snap.remote_ratio(), 0.5, 0.01);
}

TEST(PolicyOverride, ExplicitBindingsWinOverOverride) {
  sim::EngineConfig cfg;
  cfg.default_policy_override = memsim::MemPolicy::interleave(1, 1);
  sim::Engine eng(cfg);
  const std::uint64_t page = eng.memory().page_bytes();
  sim::Array<std::uint8_t> a(eng, 4 * page, memsim::MemPolicy::bind_pool());
  for (std::size_t i = 0; i < a.size(); i += page) a.st(i, 1);
  EXPECT_EQ(eng.memory().used_bytes(memsim::kNodeTier), 0u);
}

TEST(PolicyOverride, NoOverrideKeepsFirstTouch) {
  sim::EngineConfig cfg;
  sim::Engine eng(cfg);
  const std::uint64_t page = eng.memory().page_bytes();
  sim::Array<std::uint8_t> a(eng, 4 * page);
  for (std::size_t i = 0; i < a.size(); i += page) a.st(i, 1);
  EXPECT_EQ(eng.memory().used_bytes(1), 0u);
}

// ---------- epoch callback ------------------------------------------------------

TEST(EpochCallback, FiresOncePerClosedEpoch) {
  sim::EngineConfig cfg;
  cfg.epoch_accesses = 1000;
  sim::Engine eng(cfg);
  int fired = 0;
  eng.set_epoch_callback([&](sim::Engine&) { ++fired; });
  sim::Array<double> a(eng, 16 * 1024);
  for (std::size_t i = 0; i < a.size(); ++i) a.st(i, 0.0);
  eng.finish();
  EXPECT_EQ(static_cast<std::size_t>(fired), eng.epochs().size());
  EXPECT_GT(fired, 4);
}

// ---------- migration runtime ----------------------------------------------------

TEST(Migration, PromotesHotRemotePages) {
  // One hot array forced remote; local has plenty of room for promotion.
  sim::EngineConfig cfg;
  cfg.epoch_accesses = 5'000;
  sim::Engine eng(cfg);
  core::MigrationConfig mcfg;
  mcfg.period_epochs = 1;
  mcfg.min_heat = 2;
  core::MigrationRuntime runtime(mcfg);
  runtime.attach(eng);

  const std::uint64_t page = eng.memory().page_bytes();
  sim::Array<std::uint8_t> hot(eng, 8 * page, memsim::MemPolicy::bind_pool(), "hot");
  for (int pass = 0; pass < 50; ++pass)
    for (std::size_t i = 0; i < hot.size(); i += 64) hot.st(i, 1);
  eng.finish();

  EXPECT_GT(runtime.pages_promoted(), 0u);
  EXPECT_GT(runtime.scans(), 0u);
  // The hot pages should now live locally.
  EXPECT_GT(eng.memory().used_bytes(memsim::kNodeTier), 0u);
}

TEST(Migration, DemotesColdToMakeRoom) {
  // Local tier sized to 8 pages, filled by a cold array; a hot remote array
  // must displace it.
  sim::EngineConfig cfg;
  cfg.epoch_accesses = 5'000;
  cfg.machine.node_tier().capacity_bytes = 8 * cfg.machine.page_bytes;
  sim::Engine eng(cfg);
  core::MigrationConfig mcfg;
  mcfg.period_epochs = 1;
  mcfg.min_heat = 2;
  core::MigrationRuntime runtime(mcfg);
  runtime.attach(eng);

  const std::uint64_t page = eng.memory().page_bytes();
  sim::Array<std::uint8_t> cold(eng, 8 * page, memsim::MemPolicy::bind_node(), "cold");
  for (std::size_t i = 0; i < cold.size(); i += page) cold.st(i, 1);  // touch once
  sim::Array<std::uint8_t> hot(eng, 8 * page, memsim::MemPolicy::bind_pool(), "hot");
  for (int pass = 0; pass < 80; ++pass)
    for (std::size_t i = 0; i < hot.size(); i += 64) hot.st(i, 1);
  eng.finish();

  EXPECT_GT(runtime.pages_demoted(), 0u);
  EXPECT_GT(runtime.pages_promoted(), 0u);
  // At least part of the hot array must have been promoted.
  EXPECT_TRUE(eng.memory().resident(hot.range().base));
}

TEST(Migration, IdleWithoutHeat) {
  sim::EngineConfig cfg;
  cfg.epoch_accesses = 5'000;
  sim::Engine eng(cfg);
  core::MigrationConfig idle_cfg;
  idle_cfg.period_epochs = 1;
  idle_cfg.min_heat = 1000;  // very high heat bar
  core::MigrationRuntime runtime(idle_cfg);
  runtime.attach(eng);
  sim::Array<std::uint8_t> a(eng, 16 * eng.memory().page_bytes(),
                             memsim::MemPolicy::bind_pool());
  for (std::size_t i = 0; i < a.size(); i += 64) a.st(i, 1);
  eng.finish();
  EXPECT_EQ(runtime.pages_promoted(), 0u);
}

TEST(Migration, ReducesBfsRemoteTraffic) {
  const auto run_bfs = [](bool with_runtime) {
    workloads::BfsParams params;
    params.log2_vertices = 13;
    params.num_roots = 2;
    workloads::Bfs bfs(params);
    sim::EngineConfig cfg;
    cfg.machine = cfg.machine.with_remote_capacity_ratio(0.75, bfs.footprint_bytes());
    cfg.epoch_accesses = 100'000;
    sim::Engine eng(cfg);
    core::MigrationConfig mcfg;
    mcfg.period_epochs = 1;
    core::MigrationRuntime runtime(mcfg);
    if (with_runtime) runtime.attach(eng);
    const auto res = bfs.run(eng);
    eng.finish();
    EXPECT_TRUE(res.verified);
    return static_cast<double>(eng.counters().fabric_dram_bytes()) /
           static_cast<double>(eng.counters().dram_bytes_total());
  };
  const double without = run_bfs(false);
  const double with = run_bfs(true);
  EXPECT_LT(with, without);
}

// ---------- LoI waveforms -------------------------------------------------------

TEST(LoiWaveform, SquareRampTraceSemantics) {
  const auto square = memsim::LoiWaveform::square(8, 0.5, 100.0, 20.0);
  for (std::uint64_t e = 0; e < 4; ++e) EXPECT_DOUBLE_EQ(square.value_at(e), 100.0);
  for (std::uint64_t e = 4; e < 8; ++e) EXPECT_DOUBLE_EQ(square.value_at(e), 20.0);
  EXPECT_DOUBLE_EQ(square.value_at(8), 100.0);  // periodic
  EXPECT_DOUBLE_EQ(square.mean(), 60.0);
  EXPECT_FALSE(square.is_constant());

  const auto ramp = memsim::LoiWaveform::ramp(10, 0.0, 100.0);
  EXPECT_DOUBLE_EQ(ramp.value_at(0), 0.0);
  EXPECT_DOUBLE_EQ(ramp.value_at(5), 50.0);
  EXPECT_DOUBLE_EQ(ramp.value_at(10), 100.0);
  EXPECT_DOUBLE_EQ(ramp.value_at(1000), 100.0);  // holds after the ramp

  const auto trace = memsim::LoiWaveform::trace({10.0, 30.0, 0.0});
  EXPECT_DOUBLE_EQ(trace.value_at(0), 10.0);
  EXPECT_DOUBLE_EQ(trace.value_at(2), 0.0);
  EXPECT_DOUBLE_EQ(trace.value_at(99), 0.0);  // last sample holds
  EXPECT_FALSE(trace.is_constant());
  EXPECT_TRUE(memsim::LoiWaveform::constant(35.0).is_constant());
  EXPECT_TRUE(memsim::LoiWaveform::square(8, 1.0, 40.0, 0.0).is_constant());
  EXPECT_TRUE(memsim::LoiWaveform::trace({5.0, 5.0, 5.0}).is_constant());
}

TEST(LoiSchedule, ConstantScheduleKeepsEngineBitIdentical) {
  const auto run = [](bool use_schedule) {
    sim::EngineConfig cfg;
    cfg.epoch_accesses = 10'000;
    if (use_schedule) {
      cfg.loi_schedule.set(1, memsim::LoiWaveform::constant(30.0));
    } else {
      cfg.background_loi_per_tier = {0.0, 30.0};
    }
    sim::Engine eng(cfg);
    sim::Array<double> a(eng, 1 << 15, memsim::MemPolicy::bind_pool());
    for (std::size_t i = 0; i < a.size(); ++i) a.st(i, 1.0);
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) sum += a.ld(i);
    eng.finish();
    EXPECT_GT(sum, 0.0);
    return eng.elapsed_seconds();
  };
  // A constant waveform is exactly the static model — to the last bit.
  EXPECT_EQ(run(true), run(false));
}

TEST(LoiSchedule, EngineStepsWaveAndRecordsEffectiveLoi) {
  sim::EngineConfig cfg;
  cfg.epoch_accesses = 10'000;
  cfg.loi_schedule.set(1, memsim::LoiWaveform::square(2, 0.5, 60.0, 5.0));
  sim::Engine eng(cfg);
  sim::Array<double> a(eng, 1 << 15, memsim::MemPolicy::bind_pool());
  for (int pass = 0; pass < 4; ++pass)
    for (std::size_t i = 0; i < a.size(); ++i) a.st(i, 1.0);
  eng.finish();
  ASSERT_GE(eng.epochs().size(), 4u);
  for (std::size_t e = 0; e < eng.epochs().size(); ++e) {
    const auto& rec = eng.epochs()[e];
    ASSERT_EQ(rec.link_loi.size(), 2u);
    EXPECT_DOUBLE_EQ(rec.link_loi[0], 0.0);  // node tier has no link
    EXPECT_DOUBLE_EQ(rec.link_loi[1], e % 2 == 0 ? 60.0 : 5.0) << "epoch " << e;
  }
}

TEST(LoiSchedule, TierBeyondTopologyIsRejectedNotIgnored) {
  sim::EngineConfig cfg;  // two-tier machine: tier 2 does not exist
  cfg.loi_schedule.set(2, memsim::LoiWaveform::square(8, 0.5, 85.0, 0.0));
  EXPECT_THROW(sim::Engine eng(cfg), contract_violation);
}

TEST(LoiSchedule, ScheduledTierOverridesStaticOthersKeepIt) {
  sim::EngineConfig cfg;
  cfg.machine = memsim::MachineConfig::three_tier_cxl();
  cfg.background_loi_per_tier = {0.0, 40.0, 25.0};
  cfg.loi_schedule.set(1, memsim::LoiWaveform::constant(70.0));
  sim::Engine eng(cfg);
  EXPECT_DOUBLE_EQ(eng.background_loi(1), 70.0);  // waveform wins
  EXPECT_DOUBLE_EQ(eng.background_loi(2), 25.0);  // static level kept
}

// ---------- LoI grammar parsing (shared by the CLI) ----------------------------

TEST(LoiParsing, ListAcceptsPlainNumbers) {
  std::string error;
  const auto values = memsim::parse_loi_list("10,20.5,0", error);
  ASSERT_TRUE(values.has_value()) << error;
  EXPECT_EQ(*values, (std::vector<double>{10.0, 20.5, 0.0}));
}

TEST(LoiParsing, ListRejectsTrailingCommaNanAndNegatives) {
  std::string error;
  EXPECT_FALSE(memsim::parse_loi_list("10,20,", error).has_value());
  EXPECT_FALSE(memsim::parse_loi_list("10,,20", error).has_value());
  EXPECT_FALSE(memsim::parse_loi_list(",10", error).has_value());
  EXPECT_FALSE(memsim::parse_loi_list("nan", error).has_value());
  EXPECT_FALSE(memsim::parse_loi_list("10,NaN", error).has_value());
  EXPECT_FALSE(memsim::parse_loi_list("inf", error).has_value());
  EXPECT_FALSE(memsim::parse_loi_list("-5", error).has_value());
  EXPECT_FALSE(memsim::parse_loi_list("10,-0.1", error).has_value());
  EXPECT_FALSE(memsim::parse_loi_list("2001", error).has_value());  // > kMaxLoi
  EXPECT_FALSE(memsim::parse_loi_list("", error).has_value());
  EXPECT_FALSE(memsim::parse_loi_list("banana", error).has_value());
  EXPECT_FALSE(memsim::parse_loi_list("10;20", error).has_value());
}

TEST(LoiParsing, WaveGrammar) {
  std::string error;
  const auto wave = memsim::parse_loi_wave("1:8:0.5:100:20", error);
  ASSERT_TRUE(wave.has_value()) << error;
  EXPECT_EQ(wave->tier, 1);
  EXPECT_DOUBLE_EQ(wave->wave.value_at(0), 100.0);
  EXPECT_DOUBLE_EQ(wave->wave.value_at(4), 20.0);
  // lo defaults to 0.
  const auto no_lo = memsim::parse_loi_wave("2:4:0.25:80", error);
  ASSERT_TRUE(no_lo.has_value()) << error;
  EXPECT_EQ(no_lo->tier, 2);
  EXPECT_DOUBLE_EQ(no_lo->wave.value_at(3), 0.0);

  EXPECT_FALSE(memsim::parse_loi_wave("banana", error).has_value());
  EXPECT_FALSE(memsim::parse_loi_wave("0:8:0.5:100", error).has_value());  // node tier
  EXPECT_FALSE(memsim::parse_loi_wave("1:0:0.5:100", error).has_value());  // zero period
  EXPECT_FALSE(memsim::parse_loi_wave("1:8:1.5:100", error).has_value());  // duty > 1
  EXPECT_FALSE(memsim::parse_loi_wave("1:8:0.5:-3", error).has_value());   // negative hi
  EXPECT_FALSE(memsim::parse_loi_wave("1:8:0.5:nan", error).has_value());
  EXPECT_FALSE(memsim::parse_loi_wave("1:8:0.5:100:20:7", error).has_value());
}

TEST(LoiParsing, TraceCsvHappyPathHoldsGaps) {
  std::istringstream in("epoch,cxl,switched\n0,10,0\n2,50,5\n3,0,5\n");
  std::string error;
  const auto schedule = memsim::parse_loi_trace_csv(in, {1, 2}, error);
  ASSERT_TRUE(schedule.has_value()) << error;
  const auto* t1 = schedule->waveform(1);
  const auto* t2 = schedule->waveform(2);
  ASSERT_NE(t1, nullptr);
  ASSERT_NE(t2, nullptr);
  EXPECT_DOUBLE_EQ(t1->value_at(0), 10.0);
  EXPECT_DOUBLE_EQ(t1->value_at(1), 10.0);  // gap holds the previous value
  EXPECT_DOUBLE_EQ(t1->value_at(2), 50.0);
  EXPECT_DOUBLE_EQ(t1->value_at(3), 0.0);
  EXPECT_DOUBLE_EQ(t1->value_at(100), 0.0);  // last sample holds
  EXPECT_DOUBLE_EQ(t2->value_at(3), 5.0);
}

TEST(LoiParsing, TraceCsvRejectsMalformedInput) {
  std::string error;
  const auto parse = [&](const std::string& text) {
    std::istringstream in(text);
    return memsim::parse_loi_trace_csv(in, {1, 2}, error);
  };
  EXPECT_FALSE(parse("").has_value());                            // no header
  EXPECT_FALSE(parse("epoch,a\n0,1\n").has_value());              // column miscount
  EXPECT_FALSE(parse("epoch,a,b\n").has_value());                 // no samples
  EXPECT_FALSE(parse("epoch,a,b\n1,0,0\n").has_value());          // must start at 0
  EXPECT_FALSE(parse("epoch,a,b\n0,0,0\n0,1,1\n").has_value());   // not increasing
  EXPECT_FALSE(parse("epoch,a,b\n0,banana,0\n").has_value());     // bad value
  EXPECT_FALSE(parse("epoch,a,b\n0,-4,0\n").has_value());         // negative LoI
  EXPECT_FALSE(parse("epoch,a,b\n0,0\n").has_value());            // short row
  // A typo'd huge epoch must be rejected, not hold-filled gigabyte by
  // gigabyte.
  EXPECT_FALSE(parse("epoch,a,b\n0,0,0\n4000000000,1,1\n").has_value());
  EXPECT_NE(error.find("bound"), std::string::npos);
}

// Property sweep: migration never corrupts the traversal at any cadence.
class MigrationCadenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MigrationCadenceTest, BfsStaysCorrectUnderMigration) {
  workloads::BfsParams params;
  params.log2_vertices = 12;
  workloads::Bfs bfs(params);
  sim::EngineConfig cfg;
  cfg.machine = cfg.machine.with_remote_capacity_ratio(0.5, bfs.footprint_bytes());
  cfg.epoch_accesses = 50'000;
  sim::Engine eng(cfg);
  core::MigrationConfig mcfg;
  mcfg.period_epochs = GetParam();
  core::MigrationRuntime runtime(mcfg);
  runtime.attach(eng);
  const auto res = bfs.run(eng);
  eng.finish();
  EXPECT_TRUE(res.verified) << res.detail;
}

INSTANTIATE_TEST_SUITE_P(Cadences, MigrationCadenceTest, ::testing::Values(1u, 2u, 8u, 32u));

}  // namespace
}  // namespace memdis
