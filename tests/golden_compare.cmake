# Golden byte-compare gate, run under ctest (label: golden).
#
# Runs `memdis sweep --scenario <SCENARIO>` on the parallel engine and
# byte-compares both artifacts against the committed goldens. Required
# variables: MEMDIS_CLI, SCENARIO, GOLDEN_DIR, OUT_DIR.
foreach(var MEMDIS_CLI SCENARIO GOLDEN_DIR OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "golden_compare.cmake requires -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND ${MEMDIS_CLI} sweep --scenario ${SCENARIO} --jobs 2 --out ${OUT_DIR}
  RESULT_VARIABLE sweep_rc
  OUTPUT_QUIET)
if(NOT sweep_rc EQUAL 0)
  message(FATAL_ERROR "sweep --scenario ${SCENARIO} failed with status ${sweep_rc}")
endif()

foreach(ext csv json)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${GOLDEN_DIR}/${SCENARIO}.${ext} ${OUT_DIR}/${SCENARIO}.${ext}
    RESULT_VARIABLE cmp_rc)
  if(NOT cmp_rc EQUAL 0)
    message(FATAL_ERROR
            "${SCENARIO}.${ext} drifted from the golden artifact; if the change "
            "is intended, regenerate tests/golden/ and commit the new files")
  endif()
endforeach()
