// Tests for the scheduling studies: the Fig. 13 co-location protocol and
// the rack-scale cluster simulation, plus the native LBench runner.
#include <gtest/gtest.h>

#include "common/contract.h"
#include "native/lbench_native.h"
#include "sched/cluster.h"
#include "sched/colocation.h"

namespace memdis::sched {
namespace {

JobProfile sensitive_job(const std::string& name = "sensitive") {
  JobProfile job;
  job.app = name;
  job.base_runtime_s = 480.0;
  job.sensitivity = {{0, 1.0}, {10, 0.97}, {20, 0.94}, {30, 0.91}, {40, 0.88}, {50, 0.85}};
  job.induced_ic = 1.4;
  return job;
}

JobProfile insensitive_job(const std::string& name = "insensitive") {
  JobProfile job;
  job.app = name;
  job.base_runtime_s = 480.0;
  job.sensitivity = {{0, 1.0}, {50, 0.995}};
  job.induced_ic = 1.02;
  return job;
}

// ---------- simulate_run -----------------------------------------------------------

TEST(SimulateRun, IdleSystemTakesBaseRuntime) {
  const auto job = sensitive_job();
  EXPECT_NEAR(simulate_run(job, 0.0, 60.0, 1), job.base_runtime_s, 1e-9);
}

TEST(SimulateRun, InterferenceExtendsRuntime) {
  const auto job = sensitive_job();
  const double t = simulate_run(job, 50.0, 60.0, 1);
  EXPECT_GT(t, job.base_runtime_s);
  // Worst case is constant LoI=50: base / 0.85.
  EXPECT_LT(t, job.base_runtime_s / 0.85 + 1e-9);
}

TEST(SimulateRun, DeterministicPerSeed) {
  const auto job = sensitive_job();
  EXPECT_DOUBLE_EQ(simulate_run(job, 50.0, 60.0, 7), simulate_run(job, 50.0, 60.0, 7));
  EXPECT_NE(simulate_run(job, 50.0, 60.0, 7), simulate_run(job, 50.0, 60.0, 8));
}

TEST(SimulateRun, InsensitiveJobBarelyAffected) {
  const auto job = insensitive_job();
  const double t = simulate_run(job, 50.0, 60.0, 3);
  EXPECT_NEAR(t, job.base_runtime_s, job.base_runtime_s * 0.006);
}

TEST(SimulateRun, InvalidInputsViolateContract) {
  JobProfile bad;
  bad.base_runtime_s = 0.0;
  bad.sensitivity = {{0, 1.0}};
  EXPECT_THROW((void)simulate_run(bad, 10.0, 60.0, 1), contract_violation);
}

// ---------- co-location comparison ---------------------------------------------------

TEST(CoLocation, AwareSchedulerImprovesMeanAndTail) {
  CoLocationConfig cfg;
  cfg.runs = 100;
  const auto cmp = compare_schedulers(sensitive_job(), cfg);
  EXPECT_GT(cmp.mean_speedup, 0.0);
  EXPECT_GT(cmp.p75_reduction, 0.0);
  EXPECT_LT(cmp.aware.summary.max, cmp.baseline.summary.max + 1e-9);
}

TEST(CoLocation, InsensitiveJobSeesLittleBenefit) {
  CoLocationConfig cfg;
  cfg.runs = 100;
  const auto cmp = compare_schedulers(insensitive_job(), cfg);
  EXPECT_LT(cmp.mean_speedup, 0.01);
}

TEST(CoLocation, SummariesAreOrdered) {
  CoLocationConfig cfg;
  cfg.runs = 50;
  const auto out = run_colocation(sensitive_job(), 50.0, cfg);
  EXPECT_EQ(out.times_s.size(), 50u);
  EXPECT_LE(out.summary.min, out.summary.q1);
  EXPECT_LE(out.summary.q1, out.summary.median);
  EXPECT_LE(out.summary.median, out.summary.q3);
  EXPECT_LE(out.summary.q3, out.summary.max);
  EXPECT_GE(out.summary.min, sensitive_job().base_runtime_s - 1e-9);
}

TEST(CoLocation, MoreSensitiveJobsBenefitMore) {
  CoLocationConfig cfg;
  cfg.runs = 100;
  const auto strong = compare_schedulers(sensitive_job(), cfg);
  const auto weak = compare_schedulers(insensitive_job(), cfg);
  EXPECT_GT(strong.mean_speedup, weak.mean_speedup);
}

// Property: the aware scheduler's variability (IQR) never exceeds baseline's.
class CoLocationSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoLocationSeedTest, AwareNeverWorseOnVariability) {
  CoLocationConfig cfg;
  cfg.runs = 60;
  cfg.seed = GetParam();
  const auto cmp = compare_schedulers(sensitive_job(), cfg);
  const double iqr_base = cmp.baseline.summary.q3 - cmp.baseline.summary.q1;
  const double iqr_aware = cmp.aware.summary.q3 - cmp.aware.summary.q1;
  EXPECT_LE(iqr_aware, iqr_base * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoLocationSeedTest, ::testing::Values(1u, 17u, 999u, 4242u));

// ---------- cluster simulation --------------------------------------------------------

std::vector<JobRequest> job_stream(int count, double induced_loi, double arrival_gap) {
  std::vector<JobRequest> jobs;
  for (int i = 0; i < count; ++i) {
    JobRequest req;
    req.profile = sensitive_job("job" + std::to_string(i));
    req.nodes = 2;
    req.pool_demand_gb = 64.0;
    req.induced_loi = induced_loi;
    req.arrival_s = i * arrival_gap;
    jobs.push_back(req);
  }
  return jobs;
}

TEST(Cluster, AllJobsComplete) {
  ClusterSim sim(ClusterConfig{});
  const auto out = sim.run(job_stream(12, 15.0, 10.0), SchedulerPolicy::kRandom);
  EXPECT_EQ(out.jobs.size(), 12u);
  for (const auto& j : out.jobs) {
    EXPECT_GE(j.start_s, j.arrival_s);
    EXPECT_GT(j.finish_s, j.start_s);
    EXPECT_GE(j.rack, 0);
  }
}

TEST(Cluster, IdleClusterRunsAtBaseSpeed) {
  ClusterSim sim(ClusterConfig{});
  const auto out = sim.run(job_stream(1, 15.0, 0.0), SchedulerPolicy::kRandom);
  EXPECT_NEAR(out.jobs[0].runtime_s(), 480.0, 1e-6);
  EXPECT_NEAR(out.mean_slowdown, 1.0, 1e-9);
}

TEST(Cluster, AwarePolicySpreadsInterference) {
  ClusterConfig cfg;
  cfg.racks = 4;
  ClusterSim sim(cfg);
  const auto jobs = job_stream(8, 25.0, 0.0);  // all arrive at once
  const auto random = sim.run(jobs, SchedulerPolicy::kRandom);
  const auto aware = sim.run(jobs, SchedulerPolicy::kInterferenceAware, 30.0);
  EXPECT_LE(aware.mean_slowdown, random.mean_slowdown + 1e-9);
}

TEST(Cluster, AwarePolicyDefersOverCap) {
  ClusterConfig cfg;
  cfg.racks = 1;
  cfg.rack.nodes_per_rack = 8;
  ClusterSim sim(cfg);
  const auto jobs = job_stream(3, 20.0, 0.0);
  // Cap 30: at most one co-runner per rack (20+20=40 > 30) → jobs serialize
  // partially and wait times appear.
  const auto out = sim.run(jobs, SchedulerPolicy::kInterferenceAware, 30.0);
  EXPECT_EQ(out.jobs.size(), 3u);
  EXPECT_GT(out.mean_wait_s, 0.0);
  // Nobody ever saw more than 20 LoI of co-runner interference.
  for (const auto& j : out.jobs)
    EXPECT_LE(j.runtime_s(), 480.0 / 0.94 + 1.0);  // ≤ slowdown at LoI 20
}

TEST(Cluster, OversizedJobViolatesContract) {
  ClusterConfig cfg;
  cfg.rack.nodes_per_rack = 4;
  ClusterSim sim(cfg);
  auto jobs = job_stream(1, 10.0, 0.0);
  jobs[0].nodes = 8;
  EXPECT_THROW((void)sim.run(jobs, SchedulerPolicy::kRandom), contract_violation);
}

TEST(Cluster, MakespanCoversAllFinishTimes) {
  ClusterSim sim(ClusterConfig{});
  const auto out = sim.run(job_stream(6, 10.0, 30.0), SchedulerPolicy::kRandom);
  for (const auto& j : out.jobs) EXPECT_LE(j.finish_s, out.makespan_s + 1e-9);
}

// ---------- native LBench --------------------------------------------------------------

TEST(NativeLbench, ComputesVerifiedValues) {
  native::NativeLbenchConfig cfg;
  cfg.elements = 1 << 14;
  cfg.nflop = 5;
  cfg.sweeps = 3;
  cfg.threads = 2;
  const auto res = native::run_native_lbench(cfg);
  EXPECT_TRUE(res.verified);
  EXPECT_GT(res.seconds, 0.0);
  EXPECT_GT(res.data_gbps, 0.0);
}

TEST(NativeLbench, ThreadCountsAgreeOnValues) {
  native::NativeLbenchConfig cfg;
  cfg.elements = 1 << 12;
  cfg.nflop = 3;
  cfg.sweeps = 2;
  cfg.threads = 1;
  const auto a = native::run_native_lbench(cfg);
  cfg.threads = 4;
  const auto b = native::run_native_lbench(cfg);
  EXPECT_TRUE(a.verified);
  EXPECT_TRUE(b.verified);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
}

TEST(NativeLbench, InvalidConfigViolatesContract) {
  native::NativeLbenchConfig cfg;
  cfg.elements = 0;
  EXPECT_THROW((void)native::run_native_lbench(cfg), contract_violation);
}

}  // namespace
}  // namespace memdis::sched
