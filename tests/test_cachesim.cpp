// Unit and property tests for the cache hierarchy: set-associative LRU
// cache, stream prefetcher (training, direction, throttling, page bounds),
// hardware counters, and PEBS sampling.
#include <gtest/gtest.h>

#include "cachesim/cache.h"
#include "cachesim/hierarchy.h"
#include "cachesim/pebs.h"
#include "cachesim/prefetcher.h"
#include "common/contract.h"
#include "common/rng.h"
#include "common/simd.h"
#include "memsim/page_table.h"

namespace memdis::cachesim {
namespace {

using memsim::MachineConfig;
using memsim::kNodeTier;
using memsim::TieredMemory;

// ---------- SetAssocCache ----------------------------------------------------

TEST(Cache, MissThenHit) {
  SetAssocCache c({1024, 2, 64});
  EXPECT_FALSE(c.access(0, false).hit);
  c.fill(0, false, false);
  EXPECT_TRUE(c.access(0, false).hit);
}

TEST(Cache, HitAnywhereInLine) {
  SetAssocCache c({1024, 2, 64});
  c.fill(128, false, false);
  EXPECT_TRUE(c.access(128 + 63, true).hit);
  EXPECT_FALSE(c.access(192, false).hit);
}

TEST(Cache, LruEvictsOldest) {
  // 2-way, 8 sets: addresses 0, 1024, 2048 map to set 0 (line 64, sets 8).
  SetAssocCache c({1024, 2, 64});
  c.fill(0, false, false);
  c.fill(1024, false, false);
  (void)c.access(0, false);  // make line 0 MRU
  const auto ev = c.fill(2048, false, false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, 1024u);  // LRU victim
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(2048));
}

TEST(Cache, DirtyEvictionReported) {
  SetAssocCache c({1024, 2, 64});
  c.fill(0, true, false);
  c.fill(1024, false, false);
  const auto ev = c.fill(2048, false, false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, 0u);
  EXPECT_TRUE(ev->dirty);
}

TEST(Cache, StoreHitSetsDirty) {
  SetAssocCache c({1024, 2, 64});
  c.fill(0, false, false);
  (void)c.access(0, true);
  const auto ev = c.invalidate(0);
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->dirty);
}

TEST(Cache, PrefetchedLineFirstUseReported) {
  SetAssocCache c({1024, 2, 64});
  c.fill(0, false, /*prefetched=*/true);
  const auto h1 = c.access(0, false);
  EXPECT_TRUE(h1.hit);
  EXPECT_TRUE(h1.first_use_of_prefetch);
  const auto h2 = c.access(0, false);
  EXPECT_FALSE(h2.first_use_of_prefetch);  // only the first use counts
}

TEST(Cache, UnusedPrefetchEvictionFlagged) {
  SetAssocCache c({1024, 2, 64});
  c.fill(0, false, true);
  c.fill(1024, false, false);
  const auto ev = c.fill(2048, false, false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->prefetched_unused);
}

TEST(Cache, UsedPrefetchEvictionNotFlagged) {
  SetAssocCache c({1024, 2, 64});
  c.fill(0, false, true);
  (void)c.access(0, false);
  c.fill(1024, false, false);
  (void)c.access(1024, false);
  const auto ev = c.fill(2048, false, false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_FALSE(ev->prefetched_unused);
}

TEST(Cache, RefillOfPresentLineDoesNotEvict) {
  SetAssocCache c({1024, 2, 64});
  c.fill(0, false, false);
  EXPECT_FALSE(c.fill(0, true, false).has_value());
  const auto ev = c.invalidate(0);
  ASSERT_TRUE(ev.has_value());
  EXPECT_TRUE(ev->dirty);  // refill merged the dirty bit
}

TEST(Cache, DrainVisitsAllValidLines) {
  SetAssocCache c({1024, 2, 64});
  c.fill(0, true, false);
  c.fill(64, false, false);
  int seen = 0;
  c.drain([&](const Eviction&) { ++seen; });
  EXPECT_EQ(seen, 2);
  EXPECT_FALSE(c.contains(0));
}

TEST(Cache, InvalidConfigViolatesContract) {
  EXPECT_THROW(SetAssocCache({1024, 0, 64}), contract_violation);
  EXPECT_THROW(SetAssocCache({1000, 2, 60}), contract_violation);
}

TEST(Cache, NonMultipleSizeViolatesContract) {
  // 1100 B / (2 ways * 64 B) truncates to 8 sets — a 1024 B cache quietly
  // simulated in place of the configured 1100 B one. Rejected instead.
  EXPECT_THROW(SetAssocCache({1100, 2, 64}), contract_violation);
  EXPECT_THROW(SetAssocCache({64 * 8 * 4 + 64, 4, 64}), contract_violation);
  EXPECT_NO_THROW(SetAssocCache({64 * 8 * 4, 4, 64}));
}

TEST(Cache, IndexOfBatchMatchesIndexOf) {
  SetAssocCache a({4096, 4, 64});
  SetAssocCache b({4096, 4, 64});
  for (std::uint64_t i = 0; i < 24; ++i) {
    a.fill(i * 192, false, false);
    b.fill(i * 192, false, false);
  }
  std::uint64_t lines[8];
  for (std::uint64_t i = 0; i < 8; ++i) lines[i] = i * 384;
  std::size_t batched[8];
  a.index_of_batch(lines, 8, batched);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(batched[i], b.index_of(lines[i]));
  EXPECT_EQ(a.digest(), b.digest());
}

// Property: for any power-of-two geometry, filling N distinct lines in one
// set keeps exactly `ways` resident.
class CacheGeometryTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheGeometryTest, SetNeverExceedsWays) {
  const std::uint32_t ways = GetParam();
  SetAssocCache c({64 * 8 * ways, ways, 64});
  const std::uint64_t set_stride = 8 * 64;  // 8 sets
  for (std::uint64_t i = 0; i < ways + 4; ++i) c.fill(i * set_stride, false, false);
  int resident = 0;
  for (std::uint64_t i = 0; i < ways + 4; ++i)
    if (c.contains(i * set_stride)) ++resident;
  EXPECT_EQ(resident, static_cast<int>(ways));
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheGeometryTest, ::testing::Values(1u, 2u, 4u, 8u, 16u));

// ---------- SIMD probe vs forced scalar --------------------------------------

// The shim's wide primitives against their scalar reference loops, over
// every way-scan length the simulator can see plus awkward remainders
// (vector width ± 1), with heavy ties and matches. Trivially true in a
// -DMEMDIS_SIMD=OFF build, where both sides are the same loop.
TEST(Simd, PrimitivesMatchScalarReference) {
  Xoshiro256 rng(123);
  for (std::uint32_t n = 1; n <= 33; ++n) {
    for (int rep = 0; rep < 200; ++rep) {
      std::vector<std::uint64_t> xs(n);
      for (auto& x : xs) x = rng.uniform_below(8);
      const std::uint64_t key = rng.uniform_below(8);
      const auto skip = static_cast<std::uint32_t>(rng.uniform_below(n));
      if (xs[skip] == key) xs[skip] ^= 1;  // the wide path's caller contract
      EXPECT_EQ(simd::find_equal_except(xs.data(), n, key, skip),
                simd::find_equal_scalar(xs.data(), n, key, skip));
      EXPECT_EQ(simd::argmin_first(xs.data(), n), simd::argmin_first_scalar(xs.data(), n));
    }
  }
}

/// Forces the scalar probe loops for one replay of the op stream.
class ScopedScalarProbe {
 public:
  ScopedScalarProbe() : saved_(simd_enabled()) { set_simd_enabled(false); }
  ~ScopedScalarProbe() { set_simd_enabled(saved_); }

 private:
  bool saved_;
};

// Differential property: a seeded access/fill/invalidate/drain stream
// leaves a SIMD-probed cache and a forced-scalar cache in byte-identical
// state (digest) having emitted the identical eviction sequence. Covers
// geometries whose way count is not a vector-width multiple (12) and the
// remainder-only case (4 on a 2-wide ISA is exact; on AVX2 it is all tail).
class CacheDifferentialTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheDifferentialTest, SimdMatchesForcedScalarOnSeededStreams) {
  const std::uint32_t ways = GetParam();
  const CacheConfig cfg{static_cast<std::uint64_t>(64) * 16 * ways, ways, 64};
  struct Outcome {
    std::uint64_t digest = 0;
    std::uint64_t hits = 0;
    std::vector<std::uint64_t> evictions;  // line_addr | dirty | unused, in order
  };
  const auto replay = [&](bool wide) {
    Outcome out;
    SetAssocCache c(cfg);
    Xoshiro256 rng(0x5eed0000u + ways);
    const auto record = [&out](const Eviction& ev) {
      out.evictions.push_back(ev.line_addr << 2 | (ev.dirty ? 2u : 0u) |
                              (ev.prefetched_unused ? 1u : 0u));
    };
    const std::uint64_t span = cfg.size_bytes * 4;  // 4x capacity → constant conflict
    const auto body = [&] {
      for (int i = 0; i < 20000; ++i) {
        const std::uint64_t addr = rng.uniform_below(span);
        const bool store = rng.uniform_below(2) != 0;
        switch (rng.uniform_below(8)) {
          case 0:
          case 1:
          case 2:
            if (c.access(addr, store).hit) ++out.hits;
            break;
          case 3:
          case 4:
            if (const auto ev = c.fill(addr, store, rng.uniform_below(4) == 0)) record(*ev);
            break;
          case 5:
            if (!c.contains(addr))
              if (const auto ev = c.fill_absent(addr, store, false)) record(*ev);
            break;
          case 6:
            if (const auto ev = c.invalidate(addr)) record(*ev);
            break;
          default:
            if (rng.uniform_below(64) == 0) c.drain(record);
            break;
        }
      }
    };
    if (wide) {
      body();
    } else {
      ScopedScalarProbe forced;
      body();
    }
    out.digest = c.digest();
    return out;
  };
  const Outcome wide = replay(true);
  const Outcome scalar = replay(false);
  EXPECT_EQ(wide.digest, scalar.digest);
  EXPECT_EQ(wide.hits, scalar.hits);
  EXPECT_EQ(wide.evictions, scalar.evictions);
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheDifferentialTest, ::testing::Values(4u, 8u, 12u, 16u));

// ---------- StreamPrefetcher ---------------------------------------------------

PrefetcherConfig pf_config() {
  PrefetcherConfig cfg;
  cfg.num_streams = 4;
  cfg.max_degree = 4;
  cfg.train_threshold = 2;
  return cfg;
}

TEST(Prefetcher, TrainsOnAscendingStream) {
  StreamPrefetcher pf(pf_config());
  std::vector<PrefetchRequest> out;
  for (int i = 0; i < 4; ++i) {
    out.clear();
    pf.observe(static_cast<std::uint64_t>(i) * 64, false, out);
  }
  EXPECT_FALSE(out.empty());
  EXPECT_EQ(out.front().line_addr, 4u * 64u);  // next line ahead
}

TEST(Prefetcher, TrainsOnDescendingStream) {
  StreamPrefetcher pf(pf_config());
  std::vector<PrefetchRequest> out;
  for (int i = 40; i >= 36; --i) {
    out.clear();
    pf.observe(static_cast<std::uint64_t>(i) * 64, false, out);
  }
  EXPECT_FALSE(out.empty());
  EXPECT_EQ(out.front().line_addr, 35u * 64u);
}

TEST(Prefetcher, RandomAccessesNeverTrain) {
  StreamPrefetcher pf(pf_config());
  std::vector<PrefetchRequest> out;
  const std::uint64_t lines[] = {3, 40, 11, 60, 25, 7, 50, 1};
  for (const auto l : lines) pf.observe(l * 64, false, out);
  EXPECT_TRUE(out.empty());
}

TEST(Prefetcher, NeverCrossesPageBoundary) {
  StreamPrefetcher pf(pf_config());
  std::vector<PrefetchRequest> out;
  const std::uint64_t last_lines = 4096 / 64;  // 64 lines per page
  for (std::uint64_t l = last_lines - 5; l < last_lines; ++l) {
    out.clear();
    pf.observe(l * 64, false, out);
  }
  for (const auto& req : out) EXPECT_LT(req.line_addr, 4096u);
}

TEST(Prefetcher, RfoFlagFollowsStoreStream) {
  StreamPrefetcher pf(pf_config());
  std::vector<PrefetchRequest> out;
  for (int i = 0; i < 4; ++i) {
    out.clear();
    pf.observe(static_cast<std::uint64_t>(i) * 64, /*is_store=*/true, out);
  }
  ASSERT_FALSE(out.empty());
  EXPECT_TRUE(out.front().rfo);
}

TEST(Prefetcher, DisabledIssuesNothing) {
  auto cfg = pf_config();
  cfg.enabled = false;
  StreamPrefetcher pf(cfg);
  std::vector<PrefetchRequest> out;
  for (int i = 0; i < 10; ++i) pf.observe(static_cast<std::uint64_t>(i) * 64, false, out);
  EXPECT_TRUE(out.empty());
}

TEST(Prefetcher, ThrottlesOnLowAccuracy) {
  StreamPrefetcher pf(pf_config());
  // Report many useless prefetches: accuracy collapses, degree drops to 1.
  std::vector<PrefetchRequest> out;
  for (int i = 0; i < 40; ++i) {
    out.clear();
    pf.observe(static_cast<std::uint64_t>(i % 60) * 64, false, out);
    for (std::size_t k = 0; k < out.size(); ++k) pf.record_useless();
  }
  EXPECT_LT(pf.accuracy_estimate(), 0.35);
  EXPECT_EQ(pf.effective_degree(), 1u);
}

TEST(Prefetcher, HighAccuracyKeepsFullDegree) {
  StreamPrefetcher pf(pf_config());
  std::vector<PrefetchRequest> out;
  for (int i = 0; i < 16; ++i) {
    out.clear();
    pf.observe(static_cast<std::uint64_t>(i) * 64, false, out);
    for (std::size_t k = 0; k < out.size(); ++k) pf.record_useful();
  }
  EXPECT_GT(pf.accuracy_estimate(), 0.7);
  EXPECT_EQ(pf.effective_degree(), 4u);
}

TEST(Prefetcher, StreamTableEvictsLru) {
  auto cfg = pf_config();
  cfg.num_streams = 2;
  StreamPrefetcher pf(cfg);
  std::vector<PrefetchRequest> out;
  // Train streams in pages 0 and 1, then a page-2 stream evicts page 0.
  for (int i = 0; i < 3; ++i) pf.observe(static_cast<std::uint64_t>(i) * 64, false, out);
  for (int i = 0; i < 3; ++i) pf.observe(4096 + static_cast<std::uint64_t>(i) * 64, false, out);
  for (int i = 0; i < 3; ++i) pf.observe(8192 + static_cast<std::uint64_t>(i) * 64, false, out);
  out.clear();
  // Page 0 must retrain from scratch: one access issues nothing.
  pf.observe(10 * 64, false, out);
  EXPECT_TRUE(out.empty());
}

// ---------- CacheHierarchy -------------------------------------------------------

HierarchyConfig tiny_hierarchy() {
  HierarchyConfig cfg;
  cfg.l1 = {1024, 2, 64};
  cfg.l2 = {4096, 4, 64};
  cfg.l3 = {16384, 8, 64};
  return cfg;
}

TEST(Hierarchy, FirstAccessGoesToDram) {
  TieredMemory mem(MachineConfig::skylake_testbed());
  CacheHierarchy h(tiny_hierarchy(), mem);
  const auto r = mem.alloc(1 << 20);
  const auto res = h.access(r.base, false);
  EXPECT_EQ(res.level, HitLevel::kDram);
  EXPECT_EQ(h.counters().offcore_l3_miss, 1u);
  EXPECT_EQ(h.counters().demand_dram[0], 1u);
}

TEST(Hierarchy, SecondAccessHitsL1) {
  TieredMemory mem(MachineConfig::skylake_testbed());
  CacheHierarchy h(tiny_hierarchy(), mem);
  const auto r = mem.alloc(1 << 20);
  (void)h.access(r.base, false);
  const auto res = h.access(r.base, false);
  EXPECT_EQ(res.level, HitLevel::kL1);
  EXPECT_EQ(h.counters().l1_hits, 1u);
}

TEST(Hierarchy, LoadsAndStoresCounted) {
  TieredMemory mem(MachineConfig::skylake_testbed());
  CacheHierarchy h(tiny_hierarchy(), mem);
  const auto r = mem.alloc(1 << 20);
  (void)h.access(r.base, false);
  (void)h.access(r.base + 64, true);
  EXPECT_EQ(h.counters().loads, 1u);
  EXPECT_EQ(h.counters().stores, 1u);
}

TEST(Hierarchy, DramBytesArePerLine) {
  TieredMemory mem(MachineConfig::skylake_testbed());
  CacheHierarchy h(tiny_hierarchy(), mem);
  const auto r = mem.alloc(1 << 20);
  h.set_prefetch_enabled(false);
  for (int i = 0; i < 10; ++i) (void)h.access(r.base + static_cast<std::uint64_t>(i) * 64, false);
  EXPECT_EQ(h.counters().dram_read_bytes[0], 10 * 64u);
}

TEST(Hierarchy, RemoteTierCounted) {
  MachineConfig cfg = MachineConfig::skylake_testbed();
  cfg.node_tier().capacity_bytes = 4096;  // one page local, rest spills
  TieredMemory mem(cfg);
  CacheHierarchy h(tiny_hierarchy(), mem);
  const auto r = mem.alloc(1 << 20);
  h.set_prefetch_enabled(false);
  (void)h.access(r.base, false);          // local page
  (void)h.access(r.base + 4096, false);   // remote page
  EXPECT_EQ(h.counters().offcore_dram[0], 1u);
  EXPECT_EQ(h.counters().offcore_dram[1], 1u);
}

TEST(Hierarchy, StreamingTriggersPrefetchFills) {
  TieredMemory mem(MachineConfig::skylake_testbed());
  CacheHierarchy h(tiny_hierarchy(), mem);
  const auto r = mem.alloc(1 << 20);
  for (int i = 0; i < 32; ++i) (void)h.access(r.base + static_cast<std::uint64_t>(i) * 64, false);
  EXPECT_GT(h.counters().prefetch_fills(), 0u);
  EXPECT_GT(h.counters().pf_hits, 0u);
}

TEST(Hierarchy, PrefetchDisabledMatchesDemandOnly) {
  TieredMemory mem(MachineConfig::skylake_testbed());
  CacheHierarchy h(tiny_hierarchy(), mem);
  h.set_prefetch_enabled(false);
  const auto r = mem.alloc(1 << 20);
  for (int i = 0; i < 32; ++i) (void)h.access(r.base + static_cast<std::uint64_t>(i) * 64, false);
  EXPECT_EQ(h.counters().prefetch_fills(), 0u);
  EXPECT_EQ(h.counters().offcore_l3_miss, 32u);
}

TEST(Hierarchy, PrefetchCoversDemandMisses) {
  TieredMemory mem(MachineConfig::skylake_testbed());
  CacheHierarchy h(tiny_hierarchy(), mem);
  const auto r = mem.alloc(1 << 20);
  for (int i = 0; i < 64; ++i) (void)h.access(r.base + static_cast<std::uint64_t>(i) * 64, false);
  // With the streamer on, many of the 64 line touches are prefetched, so
  // demand DRAM misses are well below 64.
  EXPECT_LT(h.counters().demand_dram_total(), 40u);
}

TEST(Hierarchy, DirtyWritebackOnDrain) {
  TieredMemory mem(MachineConfig::skylake_testbed());
  CacheHierarchy h(tiny_hierarchy(), mem);
  const auto r = mem.alloc(1 << 20);
  (void)h.access(r.base, true);  // dirty line
  h.drain();
  EXPECT_EQ(h.counters().dram_writeback_bytes[0], 64u);
}

TEST(Hierarchy, CleanDrainWritesNothing) {
  TieredMemory mem(MachineConfig::skylake_testbed());
  CacheHierarchy h(tiny_hierarchy(), mem);
  const auto r = mem.alloc(1 << 20);
  (void)h.access(r.base, false);
  h.drain();
  EXPECT_EQ(h.counters().dram_writeback_bytes[0], 0u);
}

TEST(Hierarchy, WritebackTargetsCorrectTier) {
  MachineConfig cfg = MachineConfig::skylake_testbed();
  cfg.node_tier().capacity_bytes = 4096;  // one page, filled by the first touch
  TieredMemory mem(cfg);
  CacheHierarchy h(tiny_hierarchy(), mem);
  const auto r = mem.alloc(1 << 20);
  h.set_prefetch_enabled(false);
  (void)h.access(r.base, false);        // page 0 claims the only local page
  (void)h.access(r.base + 4096, true);  // page 1 spills remote, line dirtied
  h.drain();
  EXPECT_EQ(h.counters().dram_writeback_bytes[1], 64u);
  EXPECT_EQ(h.counters().dram_writeback_bytes[0], 0u);
}

TEST(Hierarchy, CountersDeltaSince) {
  TieredMemory mem(MachineConfig::skylake_testbed());
  CacheHierarchy h(tiny_hierarchy(), mem);
  const auto r = mem.alloc(1 << 20);
  (void)h.access(r.base, false);
  const HwCounters snap = h.counters();
  (void)h.access(r.base, false);
  (void)h.access(r.base + 64, true);
  const HwCounters d = h.counters().delta_since(snap);
  EXPECT_EQ(d.loads, 1u);
  EXPECT_EQ(d.stores, 1u);
  EXPECT_EQ(d.l1_hits, 1u);
}

// ---------- PEBS -------------------------------------------------------------------

TEST(Pebs, RecordsEveryEventAtPeriodOne) {
  PebsSampler pebs(1);
  pebs.sample(0, kNodeTier);
  pebs.sample(4096, 1);
  pebs.sample(4100, 1);
  EXPECT_EQ(pebs.total_samples(), 3u);
  EXPECT_EQ(pebs.samples(1), 2u);
  EXPECT_EQ(pebs.page_counts().at(1), 2u);
}

TEST(Pebs, PeriodSubsamples) {
  PebsSampler pebs(4);
  for (int i = 0; i < 16; ++i) pebs.sample(static_cast<std::uint64_t>(i) * 64, kNodeTier);
  EXPECT_EQ(pebs.total_samples(), 4u);
}

TEST(Pebs, ResetClearsState) {
  PebsSampler pebs(1);
  pebs.sample(0, kNodeTier);
  pebs.reset();
  EXPECT_EQ(pebs.total_samples(), 0u);
  EXPECT_TRUE(pebs.page_counts().empty());
}

TEST(Pebs, ZeroPeriodViolatesContract) {
  EXPECT_THROW(PebsSampler(0), contract_violation);
}

}  // namespace
}  // namespace memdis::cachesim
