// Integration tests: end-to-end paper-shape assertions across modules.
// Each test encodes one of the paper's qualitative findings and checks the
// reproduction preserves it (who wins, orderings, crossovers) — these are
// the guardrails for the figure benches.
#include <gtest/gtest.h>

#include <map>

#include "core/advisor.h"
#include "core/interference.h"
#include "core/profiler.h"
#include "sched/colocation.h"
#include "workloads/bfs.h"
#include "workloads/workload.h"

namespace memdis {
namespace {

using core::MultiLevelProfiler;
using core::RunConfig;
using workloads::App;

// Shared profiles are expensive to compute; cache them per fixture.
class PaperShape : public ::testing::Test {
 protected:
  static core::Level1Profile level1(App app) {
    static std::map<App, core::Level1Profile> cache;
    auto it = cache.find(app);
    if (it == cache.end()) {
      auto wl = workloads::make_workload(app, 1);
      it = cache.emplace(app, MultiLevelProfiler{}.level1(*wl)).first;
    }
    return it->second;
  }

  static core::Level2Profile level2(App app, double ratio) {
    static std::map<std::pair<App, int>, core::Level2Profile> cache;
    const auto key = std::make_pair(app, static_cast<int>(ratio * 100));
    auto it = cache.find(key);
    if (it == cache.end()) {
      auto wl = workloads::make_workload(app, 1);
      it = cache.emplace(key, MultiLevelProfiler{}.level2(*wl, ratio)).first;
    }
    return it->second;
  }
};

// ---------- Sec. 4.1 / Fig. 6 ----------------------------------------------------

TEST_F(PaperShape, HplAndHypreAccessUniformly) {
  EXPECT_LT(level1(App::kHPL).scaling_curve.skewness(), 0.45);
  EXPECT_LT(level1(App::kHypre).scaling_curve.skewness(), 0.45);
}

TEST_F(PaperShape, BfsAndXsbenchAccessSkewed) {
  EXPECT_GT(level1(App::kBFS).scaling_curve.skewness(), 0.5);
  EXPECT_GT(level1(App::kXSBench).scaling_curve.skewness(), 0.5);
}

TEST_F(PaperShape, SkewOrderingBfsVsHpl) {
  EXPECT_GT(level1(App::kBFS).scaling_curve.skewness(),
            level1(App::kHPL).scaling_curve.skewness() + 0.2);
}

// ---------- Sec. 4.2 / Fig. 8 -----------------------------------------------------

TEST_F(PaperShape, StreamingAppsHaveHighestCoverage) {
  const double nek = level1(App::kNekRS).prefetch.coverage;
  const double hyp = level1(App::kHypre).prefetch.coverage;
  const double xs = level1(App::kXSBench).prefetch.coverage;
  const double bfs = level1(App::kBFS).prefetch.coverage;
  EXPECT_GT(nek, 0.5);
  EXPECT_GT(hyp, 0.5);
  EXPECT_LT(xs, 0.2);
  EXPECT_GT(nek, bfs);
  EXPECT_GT(hyp, xs);
}

TEST_F(PaperShape, XsbenchHasLowestPrefetchAccuracy) {
  const double xs = level1(App::kXSBench).prefetch.accuracy;
  for (const App other : {App::kHPL, App::kNekRS, App::kHypre, App::kBFS}) {
    EXPECT_LT(xs, level1(other).prefetch.accuracy) << workloads::app_name(other);
  }
}

TEST_F(PaperShape, XsbenchThrottlesItsPrefetcher) {
  // Lowest accuracy yet small excess traffic (the adaptation the paper notes).
  EXPECT_LT(level1(App::kXSBench).prefetch.excess_traffic, 0.10);
}

TEST_F(PaperShape, SuperluHasHighestExcessTraffic) {
  const double slu = level1(App::kSuperLU).prefetch.excess_traffic;
  EXPECT_GT(slu, 0.08);
  for (const App other : {App::kHPL, App::kNekRS, App::kHypre, App::kBFS, App::kXSBench}) {
    EXPECT_GT(slu, level1(other).prefetch.excess_traffic) << workloads::app_name(other);
  }
}

TEST_F(PaperShape, PrefetchGainLargeForNekrsSmallForXsbench) {
  EXPECT_GT(level1(App::kNekRS).prefetch.performance_gain, 0.25);
  EXPECT_LT(level1(App::kXSBench).prefetch.performance_gain, 0.10);
}

// ---------- Sec. 5.1 / Fig. 9 ------------------------------------------------------

TEST_F(PaperShape, XsbenchRemoteAccessStaysLow) {
  for (const double ratio : {0.25, 0.5}) {
    double p2_remote = 1.0;
    for (const auto& phase : level2(App::kXSBench, ratio).phases)
      if (phase.tag == "p2") p2_remote = phase.remote_access_ratio;
    EXPECT_LT(p2_remote, 0.10) << "ratio " << ratio;
  }
}

TEST_F(PaperShape, BfsComputeIsAlmostFullyRemoteAt75) {
  double p2_remote = 0.0;
  for (const auto& phase : level2(App::kBFS, 0.75).phases)
    if (phase.tag == "p2") p2_remote = phase.remote_access_ratio;
  EXPECT_GT(p2_remote, 0.9);  // paper: 99%
}

TEST_F(PaperShape, RemoteAccessGrowsWithCapacityRatio) {
  for (const App app : {App::kHPL, App::kHypre, App::kNekRS}) {
    const double r25 = level2(app, 0.25).remote_access_ratio_total;
    const double r75 = level2(app, 0.75).remote_access_ratio_total;
    EXPECT_GT(r75, r25) << workloads::app_name(app);
  }
}

TEST_F(PaperShape, MeasuredCapacityRatioMatchesConfigured) {
  for (const App app : {App::kHPL, App::kHypre}) {
    const auto l2 = level2(app, 0.5);
    EXPECT_NEAR(l2.remote_capacity_ratio_measured, 0.5, 0.12) << workloads::app_name(app);
  }
}

TEST_F(PaperShape, AdvisorFlagsBfsPlacementAt75) {
  const auto report = core::advise(level2(App::kBFS, 0.75));
  ASSERT_GE(report.dominant_phase, 0);  // placement tuning is worthwhile
  // The traversal phase exceeds even the capacity reference (the paper's
  // 99%-remote finding that motivates the Sec. 7.1 case study).
  bool p2_flagged = false;
  for (const auto& phase : report.phases) {
    if (phase.tag == "p2") {
      EXPECT_EQ(phase.verdict, core::PlacementVerdict::kAboveCapacityRef);
      EXPECT_GT(phase.priority, 0.0);
      p2_flagged = true;
    }
  }
  EXPECT_TRUE(p2_flagged);
}

// ---------- Sec. 6 / Fig. 10–11 ------------------------------------------------------

TEST_F(PaperShape, HypreMoreInterferenceSensitiveThanHpl) {
  auto hypre = workloads::make_workload(App::kHypre, 1);
  auto hpl = workloads::make_workload(App::kHPL, 1);
  const auto c_hypre = core::sensitivity_sweep(*hypre, RunConfig{}, 0.5, {0, 50}, "p2");
  const auto c_hpl = core::sensitivity_sweep(*hpl, RunConfig{}, 0.5, {0, 50}, "p2");
  EXPECT_LT(c_hypre.back().relative_performance, c_hpl.back().relative_performance);
  // Paper magnitudes on the 50/50 split: Hypre ≈ 15% loss, HPL < 5%.
  EXPECT_LT(c_hypre.back().relative_performance, 0.93);
  EXPECT_GT(c_hpl.back().relative_performance, 0.90);
}

TEST_F(PaperShape, InducedInterferenceOrdering) {
  const auto m = RunConfig{}.machine;
  const auto ic_of = [&](App app) {
    return core::induced_interference(level2(app, 0.5).run, m).ic_mean;
  };
  // NekRS and Hypre induce the most, HPL and XSBench the least (Fig. 11).
  EXPECT_GT(ic_of(App::kHypre), ic_of(App::kXSBench));
  EXPECT_GT(ic_of(App::kNekRS), ic_of(App::kHPL));
}

// ---------- Sec. 7.1 / Fig. 12 --------------------------------------------------------

TEST_F(PaperShape, BfsOptimizationReducesRemoteAccessAndTime) {
  const auto run_variant = [&](workloads::BfsVariant variant) {
    workloads::BfsParams params = workloads::BfsParams::at_scale(1, 42);
    params.variant = variant;
    workloads::Bfs bfs(params);
    return MultiLevelProfiler{}.level2(bfs, 0.75);
  };
  const auto baseline = run_variant(workloads::BfsVariant::kBaseline);
  const auto parents_first = run_variant(workloads::BfsVariant::kParentsFirst);
  const auto optimized = run_variant(workloads::BfsVariant::kOptimized);

  const auto p2_remote = [](const core::Level2Profile& p) {
    for (const auto& phase : p.phases)
      if (phase.tag == "p2") return phase.remote_access_ratio;
    return -1.0;
  };
  const auto p2_time = [](const core::Level2Profile& p) {
    for (const auto& phase : p.run.phases)
      if (phase.tag == "p2") return phase.time_s;
    return -1.0;
  };
  // Remote access drops with each optimization step, and the traversal (the
  // paper's measured runtime) gets faster.
  EXPECT_GT(p2_remote(baseline), p2_remote(parents_first));
  EXPECT_GT(p2_remote(parents_first), p2_remote(optimized));
  EXPECT_LT(p2_time(optimized), p2_time(baseline));
}

// Property sweep: Level-2 invariants hold for every application.
class Level2Invariants : public PaperShape,
                         public ::testing::WithParamInterface<App> {};

TEST_P(Level2Invariants, RatiosWellFormedAt50Percent) {
  const auto l2 = level2(GetParam(), 0.5);
  EXPECT_GE(l2.remote_access_ratio_total, 0.0);
  EXPECT_LE(l2.remote_access_ratio_total, 1.0);
  // The setup_waste emulation must deliver (approximately) the requested
  // capacity split.
  EXPECT_NEAR(l2.remote_capacity_ratio_measured, 0.5, 0.15);
  // Phase ratios bounded, weights roughly partition the runtime.
  double weight_sum = 0.0;
  for (const auto& phase : l2.phases) {
    EXPECT_GE(phase.remote_access_ratio, 0.0);
    EXPECT_LE(phase.remote_access_ratio, 1.0);
    weight_sum += phase.weight;
  }
  EXPECT_GT(weight_sum, 0.7);
  EXPECT_LE(weight_sum, 1.0 + 1e-9);
  // The workload must still verify with half its footprint on the pool.
  EXPECT_TRUE(l2.run.result.verified) << l2.run.result.detail;
}

TEST_P(Level2Invariants, PoolingNeverSpeedsUpItself) {
  // With no interference, moving memory to the slower pool can only hurt
  // (or leave unchanged) the simulated runtime vs. the 25% configuration.
  const auto l2_25 = level2(GetParam(), 0.25);
  const auto l2_75 = level2(GetParam(), 0.75);
  EXPECT_GE(l2_75.run.elapsed_s, l2_25.run.elapsed_s * 0.98);
}

INSTANTIATE_TEST_SUITE_P(AllApps, Level2Invariants, ::testing::ValuesIn(workloads::kAllApps),
                         [](const auto& param_info) {
                           return workloads::app_name(param_info.param);
                         });

// ---------- Sec. 7.2 / Fig. 13 --------------------------------------------------------

TEST_F(PaperShape, InterferenceAwareSchedulingHelpsSensitiveAppsMost) {
  const auto compare = [&](App app) {
    auto wl = workloads::make_workload(app, 1);
    const auto l3 = MultiLevelProfiler{}.level3(*wl, 0.5, {0, 25, 50});
    sched::JobProfile job;
    job.app = wl->name();
    job.base_runtime_s = 480.0;
    job.sensitivity = l3.sensitivity;
    sched::CoLocationConfig cfg;
    cfg.runs = 60;
    return sched::compare_schedulers(job, cfg);
  };
  const auto hypre = compare(App::kHypre);
  const auto xs = compare(App::kXSBench);
  EXPECT_GE(hypre.mean_speedup, xs.mean_speedup);
  EXPECT_GT(hypre.mean_speedup, 0.0);
}

}  // namespace
}  // namespace memdis
