// Tests for the execution engine: instrumented arrays, epoch/phase
// accounting, the time model's monotonicity properties, and determinism.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "common/contract.h"
#include "sim/array.h"
#include "sim/engine.h"

namespace memdis::sim {
namespace {

EngineConfig fast_engine() {
  EngineConfig cfg;
  cfg.epoch_accesses = 10'000;
  return cfg;
}

// ---------- Array -------------------------------------------------------------

TEST(Array, LoadReturnsStoredValue) {
  Engine eng(fast_engine());
  Array<double> a(eng, 128);
  a.st(5, 3.25);
  EXPECT_DOUBLE_EQ(a.ld(5), 3.25);
}

TEST(Array, ProxyReadsAndWrites) {
  Engine eng(fast_engine());
  Array<int> a(eng, 16);
  a[3] = 7;
  const int v = a[3];
  EXPECT_EQ(v, 7);
  a[3] += 2;
  EXPECT_EQ(static_cast<int>(a[3]), 9);
}

TEST(Array, RmwDoesOneLoadOneStore) {
  Engine eng(fast_engine());
  Array<double> a(eng, 8);
  a.st(0, 1.0);
  const auto before = eng.counters();
  a.rmw(0, [](double v) { return v + 1.0; });
  const auto d = eng.counters().delta_since(before);
  EXPECT_EQ(d.loads, 1u);
  EXPECT_EQ(d.stores, 1u);
  EXPECT_DOUBLE_EQ(a.raw()[0], 2.0);
}

TEST(Array, AddressesAreContiguous) {
  Engine eng(fast_engine());
  Array<double> a(eng, 16);
  EXPECT_EQ(a.addr_of(1) - a.addr_of(0), sizeof(double));
  EXPECT_EQ(a.addr_of(0), a.range().base);
}

TEST(Array, AccessesFlowIntoCounters) {
  Engine eng(fast_engine());
  Array<double> a(eng, 1024);
  for (std::size_t i = 0; i < 1024; ++i) a.st(i, 1.0);
  EXPECT_EQ(eng.counters().stores, 1024u);
}

TEST(Array, ReleaseFreesSimRangeButKeepsHostData) {
  Engine eng(fast_engine());
  Array<double> a(eng, 512);
  a.st(0, 2.5);
  a.release();
  EXPECT_DOUBLE_EQ(a.raw()[0], 2.5);
  EXPECT_FALSE(eng.memory().resident(a.range().base));
}

TEST(Array, DestructorFreesAllocation) {
  Engine eng(fast_engine());
  const std::uint64_t page = eng.memory().page_bytes();
  {
    Array<double> a(eng, page / sizeof(double));
    a.st(0, 1.0);
    EXPECT_GT(eng.memory().used_bytes(memsim::kNodeTier), 0u);
  }
  EXPECT_EQ(eng.memory().used_bytes(memsim::kNodeTier), 0u);
}

TEST(Array, LeakKeepsPagesResident) {
  Engine eng(fast_engine());
  {
    Array<double> a(eng, 4096);
    a.st(0, 1.0);
    a.leak();
  }
  EXPECT_GT(eng.memory().used_bytes(memsim::kNodeTier), 0u);
}

TEST(Array, MoveTransfersOwnership) {
  Engine eng(fast_engine());
  Array<double> a(eng, 64);
  a.st(1, 9.0);
  Array<double> b = std::move(a);
  EXPECT_DOUBLE_EQ(b.ld(1), 9.0);
}

TEST(Array, ZeroSizeViolatesContract) {
  Engine eng(fast_engine());
  EXPECT_THROW(Array<double>(eng, 0), contract_violation);
}

TEST(Array, NamedAllocationRecorded) {
  Engine eng(fast_engine());
  Array<double> a(eng, 8, memsim::MemPolicy::first_touch(), "Parents");
  ASSERT_EQ(eng.allocations().size(), 1u);
  EXPECT_EQ(eng.allocations()[0].name, "Parents");
  a.release();
  EXPECT_TRUE(eng.allocations()[0].freed);
}

// ---------- phases & epochs ------------------------------------------------------

TEST(Phases, RecordsTaggedRegions) {
  Engine eng(fast_engine());
  Array<double> a(eng, 4096);
  eng.pf_start("p1");
  for (std::size_t i = 0; i < 4096; ++i) a.st(i, 1.0);
  eng.pf_stop();
  eng.pf_start("p2");
  double sum = 0;
  for (std::size_t i = 0; i < 4096; ++i) sum += a.ld(i);
  eng.pf_stop();
  eng.finish();
  ASSERT_EQ(eng.phases().size(), 2u);
  EXPECT_EQ(eng.phases()[0].tag, "p1");
  EXPECT_EQ(eng.phases()[0].counters.stores, 4096u);
  EXPECT_EQ(eng.phases()[1].counters.loads, 4096u);
  EXPECT_GT(sum, 0.0);
}

TEST(Phases, NestedStartViolatesContract) {
  Engine eng(fast_engine());
  eng.pf_start("a");
  EXPECT_THROW(eng.pf_start("b"), contract_violation);
}

TEST(Phases, StopWithoutStartViolatesContract) {
  Engine eng(fast_engine());
  EXPECT_THROW(eng.pf_stop(), contract_violation);
}

TEST(Phases, FinishInsideOpenPhaseViolatesContract) {
  Engine eng(fast_engine());
  eng.pf_start("a");
  EXPECT_THROW(eng.finish(), contract_violation);
}

TEST(Phases, PhaseTimesSumToElapsed) {
  Engine eng(fast_engine());
  Array<double> a(eng, 8192);
  eng.pf_start("p1");
  for (std::size_t i = 0; i < 8192; ++i) a.st(i, 1.0);
  eng.pf_stop();
  eng.pf_start("p2");
  for (std::size_t i = 0; i < 8192; ++i) (void)a.ld(i);
  eng.pf_stop();
  eng.finish();
  double phase_sum = 0;
  for (const auto& p : eng.phases()) phase_sum += p.time_s;
  // The final drain epoch is outside any phase; phases cover at least 80%.
  EXPECT_LE(phase_sum, eng.elapsed_seconds() + 1e-12);
  EXPECT_GT(phase_sum, 0.8 * eng.elapsed_seconds());
}

TEST(Epochs, EpochBoundariesRespectQuantum) {
  EngineConfig cfg;
  cfg.epoch_accesses = 1000;
  Engine eng(cfg);
  Array<double> a(eng, 64 * 1024);
  for (std::size_t i = 0; i < a.size(); ++i) a.st(i, 0.0);
  eng.finish();
  EXPECT_GT(eng.epochs().size(), 10u);
  for (const auto& e : eng.epochs()) {
    EXPECT_GE(e.duration_s, 0.0);
    EXPECT_GE(e.start_s, 0.0);
  }
}

TEST(Epochs, StartTimesAreMonotone) {
  Engine eng(fast_engine());
  Array<double> a(eng, 64 * 1024);
  for (std::size_t i = 0; i < a.size(); ++i) a.st(i, 0.0);
  eng.finish();
  double prev = -1.0;
  for (const auto& e : eng.epochs()) {
    EXPECT_GE(e.start_s, prev);
    prev = e.start_s;
  }
}

TEST(Engine, FlopsAccumulate) {
  Engine eng(fast_engine());
  eng.flops(100);
  eng.flops(23);
  eng.finish();
  EXPECT_EQ(eng.total_flops(), 123u);
  EXPECT_GT(eng.elapsed_seconds(), 0.0);
}

TEST(Engine, FinishTwiceViolatesContract) {
  Engine eng(fast_engine());
  eng.finish();
  EXPECT_THROW(eng.finish(), contract_violation);
}

TEST(Engine, PeakRssTracksResidentPages) {
  Engine eng(fast_engine());
  const std::uint64_t page = eng.memory().page_bytes();
  Array<std::uint8_t> a(eng, 10 * page);
  for (std::size_t i = 0; i < a.size(); i += page) a.st(i, 1);
  eng.finish();
  EXPECT_GE(eng.peak_rss_bytes(), 10 * page);
}

// ---------- time model properties --------------------------------------------------

double run_stream(double loi, bool prefetch, std::uint64_t remote_capacity_pages = 0) {
  EngineConfig cfg;
  cfg.epoch_accesses = 50'000;
  cfg.background_loi = loi;
  if (remote_capacity_pages > 0) {
    cfg.machine.node_tier().capacity_bytes = remote_capacity_pages * cfg.machine.page_bytes;
  }
  Engine eng(cfg);
  eng.set_prefetch_enabled(prefetch);
  Array<double> a(eng, 1 << 19);  // 4 MiB, exceeds L3
  for (std::size_t i = 0; i < a.size(); ++i) a.st(i, 1.0);
  double sum = 0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a.ld(i);
  eng.finish();
  EXPECT_GT(sum, 0.0);
  return eng.elapsed_seconds();
}

TEST(TimeModel, PrefetchingSpeedsUpStreaming) {
  const double with_pf = run_stream(0.0, true);
  const double without_pf = run_stream(0.0, false);
  EXPECT_LT(with_pf, without_pf);
}

TEST(TimeModel, InterferenceSlowsRemoteWorkloads) {
  // All pages remote: local capacity = 1 page.
  const double idle = run_stream(0.0, true, 1);
  const double loaded = run_stream(50.0, true, 1);
  EXPECT_GT(loaded, idle * 1.02);
}

TEST(TimeModel, InterferenceHarmlessWhenLocalOnly) {
  const double idle = run_stream(0.0, true);
  const double loaded = run_stream(50.0, true);
  EXPECT_NEAR(loaded, idle, idle * 0.01);
}

TEST(TimeModel, RemotePlacementSlowerThanLocal) {
  const double local = run_stream(0.0, true);
  const double remote = run_stream(0.0, true, 1);
  EXPECT_GT(remote, local * 1.2);
}

TEST(TimeModel, DeterministicAcrossRuns) {
  const double a = run_stream(20.0, true, 1);
  const double b = run_stream(20.0, true, 1);
  EXPECT_DOUBLE_EQ(a, b);
}

// Property sweep: elapsed time grows monotonically with LoI.
class LoiMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(LoiMonotoneTest, HigherLoiNeverFaster) {
  const double loi = GetParam();
  const double t_lo = run_stream(loi, true, 1);
  const double t_hi = run_stream(loi + 10.0, true, 1);
  EXPECT_GE(t_hi, t_lo * 0.999);
}

INSTANTIATE_TEST_SUITE_P(Levels, LoiMonotoneTest, ::testing::Values(0.0, 10.0, 20.0, 30.0, 40.0));

TEST(Engine, EpochLinkTrafficReported) {
  EngineConfig cfg;
  cfg.machine.node_tier().capacity_bytes = cfg.machine.page_bytes;  // force remote
  Engine eng(cfg);
  Array<double> a(eng, 1 << 18);
  for (std::size_t i = 0; i < a.size(); ++i) a.st(i, 1.0);
  eng.finish();
  bool saw_traffic = false;
  for (const auto& e : eng.epochs())
    if (e.link_traffic_gbps > 0) saw_traffic = true;
  EXPECT_TRUE(saw_traffic);
}

// ---------- allocation bookkeeping -------------------------------------------

// Regression: Engine::free used to scan every allocation ever made; the
// base-address index must keep marking the right allocation freed when
// frees arrive out of allocation order.
TEST(Engine, FreeOutOfAllocationOrderMarksTheRightAllocations) {
  Engine eng(fast_engine());
  const auto a = eng.alloc(4096, memsim::MemPolicy::first_touch(), "a");
  const auto b = eng.alloc(8192, memsim::MemPolicy::first_touch(), "b");
  const auto c = eng.alloc(4096, memsim::MemPolicy::first_touch(), "c");
  eng.free(b);
  eng.free(c);
  const auto& infos = eng.allocations();
  ASSERT_EQ(infos.size(), 3u);
  EXPECT_FALSE(infos[0].freed);
  EXPECT_TRUE(infos[1].freed);
  EXPECT_TRUE(infos[2].freed);
  eng.free(a);
  EXPECT_TRUE(eng.allocations()[0].freed);
}

// ---------- bulk access streams ----------------------------------------------

// Drives every bulk entry point through a fixed access script on two
// engines — fast path on vs. the element-wise reference decomposition —
// and requires the full observable state (all hardware counters, epoch
// count, simulated time) to match bit-for-bit. A small epoch quantum
// forces boundaries *inside* batched runs, covering the exact-replay path.
TEST(BulkApi, FastPathBitIdenticalToElementWise) {
  const auto run = [](bool fast) {
    EngineConfig cfg;
    cfg.epoch_accesses = 1000;  // many boundaries inside runs
    cfg.bulk_fast_path = fast;
    Engine eng(cfg);
    constexpr std::size_t kN = 6000;
    Array<double> a(eng, kN);
    Array<double> b(eng, kN);
    Array<std::uint32_t> idx(eng, kN);
    eng.load_range(a.addr_of(0), kN * 8, 8);
    eng.store_range(b.addr_of(0), kN * 8, 8);
    eng.rmw_range(a.addr_of(0), kN * 8, 8);
    eng.store_load_range(b.addr_of(0), kN * 8, 8);
    eng.load_strided(a.addr_of(0), kN / 64, 64 * 8, 8);       // column sweep
    eng.store_strided(b.addr_of(0), kN / 4, 4 * 8, 8);        // short stride
    eng.load_pair_range(idx.addr_of(0), 4, a.addr_of(0), 8, kN);
    eng.store_pair_range(idx.addr_of(0), 4, b.addr_of(0), 8, kN);
    using Lane = Engine::StreamLane;
    const Lane lanes[] = {
        {a.addr_of(0), 8, 8, Lane::Op::kLoad},
        {b.addr_of(0), 8, 8, Lane::Op::kRmw},
        {idx.addr_of(0), 4, 4, Lane::Op::kLoad},
        {a.addr_of(0), 40, 8, Lane::Op::kLoad},  // strided lane (stencil diagonal)
        {b.addr_of(0), 8, 8, Lane::Op::kStore},  // same array twice
    };
    eng.stream_range(lanes, 5, kN / 8);
    eng.load_range(a.addr_of(0), kN * 8 / 48 * 48, 48);  // straddling elems: fallback
    eng.finish();
    return std::tuple{eng.counters(), eng.epochs().size(), eng.elapsed_seconds(),
                      eng.page_access_histogram()};
  };
  const auto [cf, ef, tf, hf] = run(true);
  const auto [cs, es, ts, hs] = run(false);
  EXPECT_EQ(0, std::memcmp(&cf, &cs, sizeof(cf)));
  EXPECT_EQ(ef, es);
  EXPECT_EQ(tf, ts);
  EXPECT_EQ(hf, hs);
}

// The range calls must count exactly like the loops they document.
TEST(BulkApi, RangeCountersMatchTheDocumentedLoops) {
  Engine eng(fast_engine());
  Array<double> a(eng, 512);
  const auto before = eng.counters();
  eng.load_range(a.addr_of(0), 512 * 8, 8);
  eng.rmw_range(a.addr_of(0), 512 * 8, 8);
  const auto d = eng.counters().delta_since(before);
  EXPECT_EQ(d.loads, 512u + 512u);
  EXPECT_EQ(d.stores, 512u);
}

TEST(BulkApi, RangeContractViolations) {
  Engine eng(fast_engine());
  Array<double> a(eng, 64);
  EXPECT_THROW(eng.load_range(a.addr_of(0), 0, 8), contract_violation);
  EXPECT_THROW(eng.load_range(a.addr_of(0), 12, 8), contract_violation);  // partial elem
  EXPECT_THROW(eng.load_strided(a.addr_of(0), 0, 8, 8), contract_violation);
  EXPECT_THROW(eng.stream_range(nullptr, 0, 4), contract_violation);
}

}  // namespace
}  // namespace memdis::sim
