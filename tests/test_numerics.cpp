// Deep numerics and conservation-invariant tests.
//
// These go below the workload-level verification: operator properties
// (symmetry, positive-definiteness), reference comparisons against dense
// linear algebra on tiny instances, generator distribution properties, and
// counter-conservation invariants of the cache hierarchy.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cachesim/hierarchy.h"
#include "common/rng.h"
#include "sim/array.h"
#include "sim/engine.h"
#include "workloads/bfs.h"
#include "workloads/hpl.h"
#include "workloads/hypre.h"
#include "workloads/superlu.h"
#include "workloads/xsbench.h"

namespace memdis {
namespace {

sim::EngineConfig quiet_engine() {
  sim::EngineConfig cfg;
  cfg.epoch_accesses = 500'000;
  return cfg;
}

// ---------- counter conservation ---------------------------------------------

TEST(Conservation, HitsPlusMissesEqualAccesses) {
  sim::Engine eng(quiet_engine());
  sim::Array<double> a(eng, 1 << 16);
  Xoshiro256 rng(3);
  for (int i = 0; i < 200000; ++i) {
    const auto idx = rng.uniform_below(a.size());
    if (i % 3 == 0) {
      a.st(idx, 1.0);
    } else {
      (void)a.ld(idx);
    }
  }
  eng.finish();
  const auto& c = eng.counters();
  EXPECT_EQ(c.l1_hits + c.l2_hits + c.l3_hits + c.demand_dram_total(), c.accesses());
}

TEST(Conservation, OffcoreCountsSplitByTier) {
  sim::EngineConfig cfg = quiet_engine();
  cfg.machine.node_tier().capacity_bytes = 64 * cfg.machine.page_bytes;
  sim::Engine eng(cfg);
  sim::Array<double> a(eng, 1 << 16);  // 512 KiB: spills past 64 local pages
  for (std::size_t i = 0; i < a.size(); ++i) a.st(i, 1.0);
  eng.finish();
  const auto& c = eng.counters();
  EXPECT_EQ(c.offcore_dram[0] + c.offcore_dram[1], c.offcore_l3_miss);
  EXPECT_GT(c.offcore_dram[1], 0u);
}

TEST(Conservation, DramReadBytesMatchLineFetches) {
  sim::Engine eng(quiet_engine());
  sim::Array<double> a(eng, 1 << 15);
  for (std::size_t i = 0; i < a.size(); ++i) (void)a.ld(i);
  eng.finish();
  const auto& c = eng.counters();
  EXPECT_EQ(c.dram_read_bytes[0] + c.dram_read_bytes[1], c.offcore_l3_miss * 64);
}

TEST(Conservation, PhaseCountersSumToTotals) {
  workloads::HypreParams p;
  p.grid = 64;
  p.iterations = 3;
  workloads::Hypre wl(p);
  sim::Engine eng(quiet_engine());
  (void)wl.run(eng);
  eng.finish();
  cachesim::HwCounters sum;
  for (const auto& phase : eng.phases()) sum += phase.counters;
  // Phases cover everything except the end-of-run drain writebacks.
  EXPECT_EQ(sum.loads, eng.counters().loads);
  EXPECT_EQ(sum.stores, eng.counters().stores);
  EXPECT_LE(sum.dram_writeback_bytes[0], eng.counters().dram_writeback_bytes[0]);
}

// ---------- HPL numerics -------------------------------------------------------

TEST(HplNumerics, ResidualScalesBenignlyWithN) {
  // Partial pivoting keeps the error at O(n·eps·growth); assert a loose
  // polynomial envelope across sizes.
  for (const std::size_t n : {32ul, 64ul, 128ul}) {
    workloads::HplParams p;
    p.n = n;
    p.block = 16;
    workloads::Hpl hpl(p);
    sim::Engine eng(quiet_engine());
    const auto res = hpl.run(eng);
    eng.finish();
    EXPECT_TRUE(res.verified);
    EXPECT_LT(res.residual, 1e-10 * static_cast<double>(n * n));
  }
}

TEST(HplNumerics, BlockSizeDoesNotChangeSolution) {
  double residuals[3];
  int i = 0;
  for (const std::size_t nb : {8ul, 24ul, 48ul}) {
    workloads::HplParams p;
    p.n = 96;
    p.block = nb;
    p.seed = 7;
    workloads::Hpl hpl(p);
    sim::Engine eng(quiet_engine());
    residuals[i++] = hpl.run(eng).residual;
    eng.finish();
  }
  // All block sizes factor the same matrix: residuals agree to rounding.
  EXPECT_NEAR(residuals[0], residuals[1], 1e-10);
  EXPECT_NEAR(residuals[1], residuals[2], 1e-10);
}

// ---------- SuperLU numerics ---------------------------------------------------

TEST(SuperluNumerics, MatchesDenseEliminationOnTinyGrid) {
  // Rebuild the 3×3 grid Laplacian with the same RNG stream and compare the
  // sparse solve against dense Gaussian elimination.
  workloads::SuperluParams p;
  p.grid = 3;
  p.seed = 11;
  workloads::Superlu slu(p);
  sim::Engine eng(quiet_engine());
  const auto res = slu.run(eng);
  eng.finish();
  ASSERT_TRUE(res.verified);
  // The workload already verifies ‖Ax−b‖∞; here assert it is at rounding
  // level, which only holds if the factorization is exact for this SPD-like
  // system (no pivot perturbation).
  EXPECT_LT(res.residual, 1e-12);
}

TEST(SuperluNumerics, FillGrowsWithBandwidth) {
  std::uint64_t nnz_small = 0;
  std::uint64_t nnz_large = 0;
  for (const std::size_t k : {8ul, 24ul}) {
    workloads::SuperluParams p;
    p.grid = k;
    workloads::Superlu slu(p);
    sim::Engine eng(quiet_engine());
    const auto res = slu.run(eng);
    eng.finish();
    const auto pos = res.detail.find("nnz(L)=");
    ASSERT_NE(pos, std::string::npos);
    const auto val = std::stoull(res.detail.substr(pos + 7));
    (k == 8 ? nnz_small : nnz_large) = val;
  }
  // nnz(L) ≈ n·k grows superlinearly in k (k³ here): 24³/8³ = 27.
  EXPECT_GT(nnz_large, nnz_small * 10);
}

// ---------- Hypre operator properties -------------------------------------------

TEST(HypreNumerics, LongRunConvergesTight) {
  workloads::HypreParams p;
  p.grid = 32;
  p.iterations = 120;  // plenty for a 32×32 SPD system with Jacobi-PCG
  workloads::Hypre wl(p);
  sim::Engine eng(quiet_engine());
  const auto res = wl.run(eng);
  eng.finish();
  EXPECT_TRUE(res.verified);
  EXPECT_LT(res.residual, 1e-6);
}

TEST(HypreNumerics, SeedChangesProblemNotConvergence) {
  for (const std::uint64_t seed : {1ull, 42ull, 31337ull}) {
    workloads::HypreParams p;
    p.grid = 48;
    p.iterations = 30;
    p.seed = seed;
    workloads::Hypre wl(p);
    sim::Engine eng(quiet_engine());
    const auto res = wl.run(eng);
    eng.finish();
    EXPECT_TRUE(res.verified) << "seed " << seed;
    EXPECT_LT(res.residual, 0.2) << "seed " << seed;
  }
}

// ---------- rMAT generator properties --------------------------------------------

TEST(RmatProperties, DegreeDistributionIsSkewed) {
  workloads::BfsParams p;
  p.log2_vertices = 13;
  workloads::Bfs bfs(p);
  sim::Engine eng(quiet_engine());
  const auto res = bfs.run(eng);
  eng.finish();
  ASSERT_TRUE(res.verified);
  // rMAT with (0.57,0.19,0.19,0.05) leaves a large fraction of vertices
  // unreached from any root while a giant component holds the rest.
  const auto reached_pos = res.detail.find("reached ");
  ASSERT_NE(reached_pos, std::string::npos);
  const auto reached = std::stoull(res.detail.substr(reached_pos + 8));
  const std::size_t n = p.vertices();
  EXPECT_GT(reached, n / 10);  // giant component exists
  EXPECT_LT(reached, n);       // but not everything is connected
}

TEST(RmatProperties, DeterministicPerSeed) {
  const auto fingerprint = [](std::uint64_t seed) {
    workloads::BfsParams p;
    p.log2_vertices = 12;
    p.seed = seed;
    workloads::Bfs bfs(p);
    sim::Engine eng(quiet_engine());
    const auto res = bfs.run(eng);
    eng.finish();
    EXPECT_TRUE(res.verified);
    // Access count is a strong graph fingerprint (reached-vertex counts can
    // collide: the giant component's size is tightly concentrated).
    return std::make_pair(res.detail, eng.counters().accesses());
  };
  EXPECT_EQ(fingerprint(5), fingerprint(5));
  EXPECT_NE(fingerprint(5).second, fingerprint(6).second);
}

// ---------- XSBench numerics ------------------------------------------------------

TEST(XsbenchNumerics, ChecksumIndependentOfPlacement) {
  const auto run_checksum = [](double remote_ratio) {
    workloads::XsbenchParams p;
    p.n_nuclides = 8;
    p.gridpoints = 256;
    p.lookups = 1000;
    workloads::Xsbench xs(p);
    sim::EngineConfig cfg = quiet_engine();
    if (remote_ratio > 0)
      cfg.machine = cfg.machine.with_remote_capacity_ratio(remote_ratio,
                                                           xs.footprint_bytes());
    sim::Engine eng(cfg);
    const auto res = xs.run(eng);
    eng.finish();
    EXPECT_TRUE(res.verified);
    return res.detail;  // embeds the checksum
  };
  // Data placement must never change the computed physics.
  EXPECT_EQ(run_checksum(0.0), run_checksum(0.75));
}

TEST(XsbenchNumerics, MoreLookupsMoreFlops) {
  std::uint64_t flops[2];
  int i = 0;
  for (const std::size_t lookups : {500ul, 2000ul}) {
    workloads::XsbenchParams p;
    p.n_nuclides = 8;
    p.gridpoints = 256;
    p.lookups = lookups;
    workloads::Xsbench xs(p);
    sim::Engine eng(quiet_engine());
    (void)xs.run(eng);
    eng.finish();
    flops[i++] = eng.total_flops();
  }
  EXPECT_NEAR(static_cast<double>(flops[1]) / static_cast<double>(flops[0]), 4.0, 0.5);
}

// ---------- simulated-time physics -------------------------------------------------

TEST(TimePhysics, ComputeBoundTimeTracksFlops) {
  // Pure flops, no memory: time = flops / peak.
  sim::EngineConfig cfg = quiet_engine();
  sim::Engine eng(cfg);
  eng.flops(330'000'000);  // exactly 1 ms at 330 Gflop/s
  eng.finish();
  EXPECT_NEAR(eng.elapsed_seconds(), 1e-3, 1e-9);
}

TEST(TimePhysics, StreamingTimeTracksBandwidth) {
  // A large prefetch-covered stream approaches bytes / BW_local.
  sim::EngineConfig cfg = quiet_engine();
  sim::Engine eng(cfg);
  sim::Array<double> a(eng, 1 << 20);  // 8 MiB
  for (std::size_t i = 0; i < a.size(); ++i) a.st(i, 1.0);
  double sum = 0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a.ld(i);
  eng.finish();
  EXPECT_GT(sum, 0.0);
  const double bytes = static_cast<double>(eng.counters().dram_bytes_total());
  const double ideal = bytes / 73e9;
  EXPECT_GT(eng.elapsed_seconds(), ideal * 0.9);
  EXPECT_LT(eng.elapsed_seconds(), ideal * 2.0);  // latency adds a bounded tax
}

TEST(TimePhysics, RemoteLatencyGapVisibleWithoutPrefetch) {
  // Random pointer-chase style loads: remote tier pays ~202/111 more per miss.
  const auto chase = [](bool remote) {
    sim::EngineConfig cfg;
    cfg.epoch_accesses = 500'000;
    if (remote) cfg.machine.node_tier().capacity_bytes = cfg.machine.page_bytes;
    sim::Engine eng(cfg);
    eng.set_prefetch_enabled(false);
    sim::Array<double> a(eng, 1 << 17);
    Xoshiro256 rng(9);
    for (int i = 0; i < 200000; ++i) (void)a.ld(rng.uniform_below(a.size()));
    eng.finish();
    return eng.elapsed_seconds();
  };
  const double local = chase(false);
  const double remote = chase(true);
  // Latency ratio is 202/111 ≈ 1.8 and the bandwidth ratio 73/34 ≈ 2.1;
  // a mixed latency+bandwidth chase lands between and stays bounded.
  EXPECT_GT(remote / local, 1.4);
  EXPECT_LT(remote / local, 3.5);
}

}  // namespace
}  // namespace memdis
