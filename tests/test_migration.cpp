// Tests for the cost-model-driven migration planner and per-link LoI:
// topology migration paths, per-link interference plumbing (engine get/set,
// cost monotonicity per link), move pricing, staged vs. direct planning
// (2-hop wins exactly when the cost model says so; budget exhaustion falls
// back), demotion under asymmetric load, and the ext-staged-migration
// acceptance point (multi-hop strictly cheaper than direct on the
// three_tier_cxl preset).
#include <gtest/gtest.h>

#include "core/interference.h"
#include "core/migration.h"
#include "core/scenario_registry.h"
#include "core/sweep.h"
#include "sched/colocation.h"
#include "sim/array.h"

namespace memdis {
namespace {

using memsim::TierId;

// ---------- topology migration paths -----------------------------------------

TEST(MigrationPath, ChainWalksSegmentsBetweenTiers) {
  const auto m = memsim::MachineConfig::three_tier_cxl();  // switched behind direct
  EXPECT_EQ(m.topology.tier(2).upstream, 1);
  EXPECT_EQ(m.topology.path(2, 0), (std::vector<TierId>{2, 1}));
  EXPECT_EQ(m.topology.path(0, 2), (std::vector<TierId>{1, 2}));
  EXPECT_EQ(m.topology.path(2, 1), (std::vector<TierId>{2}));
  EXPECT_EQ(m.topology.path(1, 0), (std::vector<TierId>{1}));
  EXPECT_TRUE(m.topology.path(1, 1).empty());
}

TEST(MigrationPath, StarRoutesThroughTheNode) {
  const auto m = memsim::MachineConfig::hybrid_split_pool();  // two pools off the node
  EXPECT_EQ(m.topology.tier(2).upstream, memsim::kNodeTier);
  EXPECT_EQ(m.topology.path(2, 0), (std::vector<TierId>{2}));
  EXPECT_EQ(m.topology.path(1, 2), (std::vector<TierId>{1, 2}));
}

TEST(MigrationPath, UpstreamMustPointEarlier) {
  auto m = memsim::MachineConfig::three_tier_cxl();
  m.topology.tier(1).upstream = 2;  // forward reference: not a tree
  EXPECT_THROW(m.topology.validate(), contract_violation);
}

// ---------- cost model --------------------------------------------------------

TEST(MigrationCostModel, MoveCostRisesWithEachLinkLoiIndependently) {
  const auto m = memsim::MachineConfig::three_tier_cxl();
  const core::MigrationCostModel idle(m);
  const core::MigrationCostModel seg1_loaded(m, {0.0, 80.0, 0.0});
  const core::MigrationCostModel seg2_loaded(m, {0.0, 0.0, 80.0});
  // The long-haul move crosses both segments: loading either raises it.
  EXPECT_GT(seg1_loaded.move_cost_s(2, 0), idle.move_cost_s(2, 0));
  EXPECT_GT(seg2_loaded.move_cost_s(2, 0), idle.move_cost_s(2, 0));
  // The single-segment hops only price their own link.
  EXPECT_GT(seg1_loaded.move_cost_s(1, 0), idle.move_cost_s(1, 0));
  EXPECT_DOUBLE_EQ(seg2_loaded.move_cost_s(1, 0), idle.move_cost_s(1, 0));
  EXPECT_GT(seg2_loaded.move_cost_s(2, 1), idle.move_cost_s(2, 1));
  EXPECT_DOUBLE_EQ(seg1_loaded.move_cost_s(2, 1), idle.move_cost_s(2, 1));
}

TEST(MigrationCostModel, AccessLatencyTracksLinkLoad) {
  const auto m = memsim::MachineConfig::three_tier_cxl();
  const core::MigrationCostModel idle(m);
  const core::MigrationCostModel loaded(m, {0.0, 300.0, 0.0});
  EXPECT_DOUBLE_EQ(idle.access_latency_s(0), 111e-9);
  EXPECT_GT(loaded.access_latency_s(1), idle.access_latency_s(1));
  EXPECT_DOUBLE_EQ(loaded.access_latency_s(2), idle.access_latency_s(2));
  // Under heavy load the direct device is *slower* to access than the
  // switched pool behind it — the regime where evacuation pays.
  EXPECT_GT(loaded.access_latency_s(1), loaded.access_latency_s(2));
}

TEST(MigrationCostModel, TwoHopBeatsOneHopExactlyWhenTheModelSaysSo) {
  const auto m = memsim::MachineConfig::three_tier_cxl();
  const core::MigrationCostModel model(m);
  const std::uint64_t horizon = 4;
  // A lukewarm page cannot amortize the extra device-link segment of the
  // direct move: the staged first hop carries the higher net value.
  const auto staged_cool = model.plan(2, 1, 20, horizon, 4);
  const auto direct_cool = model.plan(2, 0, 20, horizon, 4);
  EXPECT_GT(staged_cool.value_s, direct_cool.value_s);
  // A hot page amortizes the full path: direct wins, exactly as priced.
  const auto staged_hot = model.plan(2, 1, 500, horizon, 4);
  const auto direct_hot = model.plan(2, 0, 500, horizon, 4);
  EXPECT_GT(direct_hot.value_s, staged_hot.value_s);
  // The crossover is the model's own statement: value difference equals
  // horizon * benefit-delta minus the device segment's cost.
  EXPECT_NEAR(direct_hot.value_s - staged_hot.value_s,
              static_cast<double>(horizon) *
                      (direct_hot.benefit_s_per_epoch - staged_hot.benefit_s_per_epoch) -
                  model.move_cost_s(1, 0),
              1e-15);
}

// ---------- per-link LoI plumbing ---------------------------------------------

TEST(PerLinkLoi, EngineSetAndGetPerTier) {
  sim::EngineConfig cfg;
  cfg.machine = memsim::MachineConfig::three_tier_cxl();
  cfg.background_loi_per_tier = {0.0, 30.0, 70.0};
  sim::Engine eng(cfg);
  EXPECT_DOUBLE_EQ(eng.background_loi(1), 30.0);
  EXPECT_DOUBLE_EQ(eng.background_loi(2), 70.0);
  eng.set_background_loi(1, 55.0);
  EXPECT_DOUBLE_EQ(eng.background_loi(1), 55.0);
  EXPECT_DOUBLE_EQ(eng.background_loi(2), 70.0);
  eng.set_background_loi(10.0);  // scalar still sweeps every link
  EXPECT_DOUBLE_EQ(eng.background_loi(1), 10.0);
  EXPECT_DOUBLE_EQ(eng.background_loi(2), 10.0);
  EXPECT_THROW(eng.set_background_loi(memsim::kNodeTier, 10.0), contract_violation);
}

TEST(PerLinkLoi, PerTierVectorOverridesScalar) {
  sim::EngineConfig cfg;
  cfg.machine = memsim::MachineConfig::three_tier_cxl();
  cfg.background_loi = 20.0;
  cfg.background_loi_per_tier = {0.0, 50.0};  // shorter than the topology
  sim::Engine eng(cfg);
  EXPECT_DOUBLE_EQ(eng.background_loi(1), 50.0);
  EXPECT_DOUBLE_EQ(eng.background_loi(2), 20.0);  // beyond the vector: scalar
}

/// Runs a fixed two-pool access pattern and returns elapsed seconds.
double hybrid_elapsed(const std::vector<double>& loi_per_tier) {
  sim::EngineConfig cfg;
  cfg.machine = memsim::MachineConfig::hybrid_split_pool();
  cfg.background_loi_per_tier = loi_per_tier;
  sim::Engine eng(cfg);
  const std::uint64_t page = eng.memory().page_bytes();
  sim::Array<std::uint8_t> a(eng, 64 * page, memsim::MemPolicy::bind(1));
  sim::Array<std::uint8_t> b(eng, 64 * page, memsim::MemPolicy::bind(2));
  for (int pass = 0; pass < 4; ++pass)
    for (std::size_t i = 0; i < a.size(); i += 64) {
      a.st(i, 1);
      b.st(i, 1);
    }
  eng.finish();
  return eng.elapsed_seconds();
}

TEST(PerLinkLoi, EngineCostMonotonicInEachLinkIndependently) {
  const double idle = hybrid_elapsed({});
  const double pool1 = hybrid_elapsed({0.0, 80.0, 0.0});
  const double pool2 = hybrid_elapsed({0.0, 0.0, 80.0});
  const double both = hybrid_elapsed({0.0, 80.0, 80.0});
  EXPECT_GT(pool1, idle);
  EXPECT_GT(pool2, idle);
  EXPECT_GT(both, pool1);
  EXPECT_GT(both, pool2);
}

TEST(PerLinkLoi, InterferenceCoefficientPerTier) {
  const auto m = memsim::MachineConfig::hybrid_split_pool();
  // The peer link's larger collision share yields a different IC than the
  // CXL pool at the same offered utilization — per-link quantification.
  const double ic_pool = core::interference_coefficient_at(m, 1, 0.8);
  const double ic_peer = core::interference_coefficient_at(m, 2, 0.8);
  EXPECT_GT(ic_pool, 1.0);
  EXPECT_GT(ic_peer, 1.0);
  EXPECT_DOUBLE_EQ(core::interference_coefficient_at(m, 0.8), ic_pool);
  EXPECT_THROW((void)core::interference_coefficient_at(m, memsim::kNodeTier, 0.5),
               contract_violation);
}

// ---------- planner behavior --------------------------------------------------

/// Three-tier chain: t0 full of hot pages, t1 full of cold pages, hot
/// pages on t2. Per-link budgets of 2 make a direct 2->0 swap need two
/// units of the device link, so loading that link (budget scales to 1)
/// prices the direct path out entirely.
struct ChainFixture {
  sim::EngineConfig cfg;
  ChainFixture(double device_loi, std::uint64_t node_pages = 32) {
    cfg.machine = memsim::MachineConfig::three_tier_cxl();
    cfg.machine.node_tier().capacity_bytes = node_pages * cfg.machine.page_bytes;
    cfg.machine.tier(1).capacity_bytes = 32 * cfg.machine.page_bytes;
    cfg.background_loi_per_tier = {0.0, device_loi, 0.0};
    cfg.epoch_accesses = 20'000;
  }
};

TEST(MigrationPlanner, StagedHopWhenDirectPathIsPricedOut) {
  ChainFixture fix(/*device_loi=*/80.0);
  sim::Engine eng(fix.cfg);
  core::MigrationConfig mcfg;
  mcfg.period_epochs = 1;
  mcfg.min_heat = 2;
  mcfg.link_budget_pages = 2;
  core::MigrationRuntime runtime(mcfg);
  runtime.attach(eng);

  const std::uint64_t page = eng.memory().page_bytes();
  sim::Array<std::uint8_t> node_hot(eng, 32 * page, memsim::MemPolicy::bind_node());
  sim::Array<std::uint8_t> device_cold(eng, 32 * page, memsim::MemPolicy::bind(1));
  for (std::size_t i = 0; i < device_cold.size(); i += page) device_cold.st(i, 1);
  sim::Array<std::uint8_t> pool_hot(eng, 16 * page, memsim::MemPolicy::bind(2));
  for (int pass = 0; pass < 60; ++pass) {
    for (std::size_t i = 0; i < pool_hot.size(); i += 64) pool_hot.st(i, 1);
    // Keep every node page too hot to evict.
    for (std::size_t i = 0; i < node_hot.size(); i += 64) node_hot.st(i, 1);
  }
  eng.finish();

  EXPECT_GT(runtime.staged_moves(), 0u);
  bool saw_staged_hop = false;
  for (const auto& move : runtime.plan_log())
    if (!move.demotion && move.src == 2 && move.dst == 1) saw_staged_hop = true;
  EXPECT_TRUE(saw_staged_hop);
  // The swap victims crossed only the switch segment (1 -> 2), never the
  // loaded device link.
  for (const auto& move : runtime.plan_log()) {
    if (move.demotion) {
      EXPECT_EQ(move.dst, 2);
    }
  }
}

TEST(MigrationPlanner, TwoHopCompletesAcrossScans) {
  // Same chain, but the node tier has room: a staged page should later
  // finish its second hop (1 -> 0) in a subsequent scan.
  ChainFixture fix(/*device_loi=*/80.0, /*node_pages=*/256);
  sim::Engine eng(fix.cfg);
  core::MigrationConfig mcfg;
  mcfg.period_epochs = 1;
  mcfg.min_heat = 2;
  mcfg.link_budget_pages = 4;
  core::MigrationRuntime runtime(mcfg);
  runtime.attach(eng);

  const std::uint64_t page = eng.memory().page_bytes();
  sim::Array<std::uint8_t> device_cold(eng, 32 * page, memsim::MemPolicy::bind(1));
  for (std::size_t i = 0; i < device_cold.size(); i += page) device_cold.st(i, 1);
  sim::Array<std::uint8_t> pool_hot(eng, 16 * page, memsim::MemPolicy::bind(2));
  for (int pass = 0; pass < 240; ++pass)
    for (std::size_t i = 0; i < pool_hot.size(); i += 64) pool_hot.st(i, 1);
  eng.finish();

  bool completed_two_hop = false;
  for (const auto& first : runtime.plan_log()) {
    if (first.demotion || first.src != 2 || first.dst != 1) continue;
    for (const auto& second : runtime.plan_log()) {
      if (second.demotion || second.page != first.page) continue;
      if (second.src == 1 && second.dst == 0 && second.scan > first.scan)
        completed_two_hop = true;
    }
  }
  EXPECT_TRUE(completed_two_hop);
}

TEST(MigrationPlanner, FullIntermediateFallsBackToDirect) {
  // t1 is full of pages as hot as the candidates (no victim is colder), so
  // the staged hop cannot make room and the planner falls back to the
  // direct move into the roomy node tier.
  sim::EngineConfig cfg;
  cfg.machine = memsim::MachineConfig::three_tier_cxl();
  cfg.machine.tier(1).capacity_bytes = 16 * cfg.machine.page_bytes;
  cfg.epoch_accesses = 20'000;
  sim::Engine eng(cfg);
  core::MigrationConfig mcfg;
  mcfg.period_epochs = 1;
  mcfg.min_heat = 2;
  mcfg.link_budget_pages = 8;
  core::MigrationRuntime runtime(mcfg);
  runtime.attach(eng);

  const std::uint64_t page = eng.memory().page_bytes();
  sim::Array<std::uint8_t> device_hot(eng, 16 * page, memsim::MemPolicy::bind(1));
  sim::Array<std::uint8_t> pool_hot(eng, 16 * page, memsim::MemPolicy::bind(2));
  for (int pass = 0; pass < 60; ++pass) {
    for (std::size_t i = 0; i < pool_hot.size(); i += 64) pool_hot.st(i, 1);
    for (std::size_t i = 0; i < device_hot.size(); i += 64) device_hot.st(i, 1);
  }
  eng.finish();

  bool saw_direct_long_haul = false;
  for (const auto& move : runtime.plan_log())
    if (!move.demotion && move.src == 2 && move.dst == 0) saw_direct_long_haul = true;
  EXPECT_TRUE(saw_direct_long_haul);
}

TEST(MigrationPlanner, StagingDisabledReducesToDirectOnly) {
  ChainFixture fix(/*device_loi=*/80.0);
  sim::Engine eng(fix.cfg);
  core::MigrationConfig mcfg;
  mcfg.period_epochs = 1;
  mcfg.min_heat = 2;
  mcfg.link_budget_pages = 2;
  mcfg.allow_staging = false;
  core::MigrationRuntime runtime(mcfg);
  runtime.attach(eng);

  const std::uint64_t page = eng.memory().page_bytes();
  sim::Array<std::uint8_t> node_hot(eng, 32 * page, memsim::MemPolicy::bind_node());
  sim::Array<std::uint8_t> device_cold(eng, 32 * page, memsim::MemPolicy::bind(1));
  for (std::size_t i = 0; i < device_cold.size(); i += page) device_cold.st(i, 1);
  sim::Array<std::uint8_t> pool_hot(eng, 16 * page, memsim::MemPolicy::bind(2));
  for (int pass = 0; pass < 60; ++pass) {
    for (std::size_t i = 0; i < pool_hot.size(); i += 64) pool_hot.st(i, 1);
    for (std::size_t i = 0; i < node_hot.size(); i += 64) node_hot.st(i, 1);
  }
  eng.finish();

  EXPECT_EQ(runtime.staged_moves(), 0u);
  for (const auto& move : runtime.plan_log()) {
    if (!move.demotion) {
      EXPECT_EQ(move.dst, memsim::kNodeTier);
    }
  }
}

TEST(MigrationPlanner, DemotionUnderAsymmetricLoiAvoidsTheLoadedLink) {
  // Two pools side by side: the CXL device is normally the cheaper victim
  // destination, but with its link oversubscribed the cost model must send
  // demoted pages to the idle (slower but unloaded) peer tier instead.
  for (const bool load_cxl : {false, true}) {
    sim::EngineConfig cfg;
    cfg.machine = memsim::MachineConfig::hybrid_split_pool();
    cfg.machine.node_tier().capacity_bytes = 16 * cfg.machine.page_bytes;
    if (load_cxl) cfg.background_loi_per_tier = {0.0, 300.0, 0.0};
    cfg.epoch_accesses = 20'000;
    sim::Engine eng(cfg);
    core::MigrationConfig mcfg;
    mcfg.period_epochs = 1;
    mcfg.min_heat = 2;
    core::MigrationRuntime runtime(mcfg);
    runtime.attach(eng);

    const std::uint64_t page = eng.memory().page_bytes();
    sim::Array<std::uint8_t> cold(eng, 16 * page, memsim::MemPolicy::bind_node());
    for (std::size_t i = 0; i < cold.size(); i += page) cold.st(i, 1);
    sim::Array<std::uint8_t> hot(eng, 8 * page, memsim::MemPolicy::bind(2));
    for (int pass = 0; pass < 60; ++pass)
      for (std::size_t i = 0; i < hot.size(); i += 64) hot.st(i, 1);
    eng.finish();

    ASSERT_GT(runtime.pages_demoted(), 0u) << "load_cxl=" << load_cxl;
    for (const auto& move : runtime.plan_log()) {
      if (!move.demotion || move.src != memsim::kNodeTier) continue;
      EXPECT_EQ(move.dst, load_cxl ? 2 : 1) << "load_cxl=" << load_cxl;
    }
  }
}

// ---------- acceptance: staged strictly cheaper on three_tier_cxl ------------

TEST(StagedMigrationScenario, MultiHopStrictlyCheaperAtOneGridPoint) {
  const auto* scenario = core::ScenarioRegistry::instance().find("ext-staged-migration");
  ASSERT_NE(scenario, nullptr);
  const auto points = scenario->spec.expand();
  const core::SweepPoint* pick = nullptr;
  for (const auto& point : points) {
    if (point.app == workloads::App::kHypre && point.ratio == 0.50 &&
        point.variant == "overloaded")
      pick = &point;
  }
  ASSERT_NE(pick, nullptr);
  const auto metrics = scenario->measure(*pick);
  const auto metric = [&](const std::string& name) {
    for (const auto& [key, value] : metrics)
      if (key == name) return value;
    ADD_FAILURE() << "missing metric " << name;
    return 0.0;
  };
  EXPECT_GT(metric("staged_moves"), 0.0);
  EXPECT_LT(metric("staged_ms"), metric("direct_ms"));
  EXPECT_GT(metric("staged_gain"), 1.05);  // comfortably strict, not a tie
}

// ---------- time-varying LoI: planner arbitrage -------------------------------

/// The ext-transient-loi acceptance point: on every grid row, the planner
/// pricing each scan at the live (waveform-driven) LoI must achieve a
/// strictly lower total makespan than the same workload planned against
/// the wave's time average — the static-QoS belief. Runs the whole
/// (golden-gated) grid so the claim holds for the committed artifact, not
/// one lucky point.
TEST(TransientLoiScenario, DynamicPlannerStrictlyBeatsStaticBeliefOnEveryRow) {
  const auto* scenario = core::ScenarioRegistry::instance().find("ext-transient-loi");
  ASSERT_NE(scenario, nullptr);
  const auto result = core::run_scenario(*scenario);
  ASSERT_FALSE(result.rows.empty());
  for (const auto& row : result.rows) {
    const auto metric = [&](const std::string& name) {
      for (const auto& [key, value] : row.metrics)
        if (key == name) return value;
      ADD_FAILURE() << "missing metric " << name;
      return 0.0;
    };
    EXPECT_LT(metric("dynamic_ms"), metric("static_ms"))
        << "row " << row.point.index << " (" << row.point.variant << ")";
    // The win comes from schedule awareness, so the machinery must have
    // engaged: bursts deferred and cheaper transfer actually charged.
    EXPECT_GT(metric("dynamic_deferred"), 0.0) << row.point.variant;
    EXPECT_LT(metric("dynamic_cost_ms"), metric("static_cost_ms")) << row.point.variant;
  }
}

/// Deferral must wait out a burst the schedule can see: with a hot remote
/// array and the pool link bursting now but idle within the horizon, the
/// first loaded scans defer instead of paying the inflated transfer cost.
TEST(TransientLoi, PlannerDefersAcrossAKnownBurst) {
  const auto run = [](bool defer) {
    sim::EngineConfig cfg;
    cfg.epoch_accesses = 5'000;
    // Burst for the first half of each 8-epoch period, heavily enough that
    // moving mid-burst is clearly mispriced (bandwidth floor territory).
    cfg.loi_schedule.set(1, memsim::LoiWaveform::square(8, 0.5, 400.0, 0.0));
    sim::Engine eng(cfg);
    core::MigrationConfig mcfg;
    mcfg.period_epochs = 1;
    mcfg.min_heat = 2;
    mcfg.defer_on_schedule = defer;
    core::MigrationRuntime runtime(mcfg);
    runtime.attach(eng);
    const std::uint64_t page = eng.memory().page_bytes();
    // Large enough to defeat the cache hierarchy, so pages keep sampling
    // heat on every pass (L1 hits never reach the page histogram).
    sim::Array<std::uint8_t> hot(eng, 64 * page, memsim::MemPolicy::bind_pool());
    for (int pass = 0; pass < 30; ++pass)
      for (std::size_t i = 0; i < hot.size(); i += 64) hot.st(i, 1);
    eng.finish();
    EXPECT_GT(runtime.pages_promoted(), 0u);
    return std::make_pair(runtime.deferred_moves(), runtime.transfer_cost_s());
  };
  const auto [deferred_on, cost_on] = run(true);
  const auto [deferred_off, cost_off] = run(false);
  EXPECT_GT(deferred_on, 0u);
  EXPECT_EQ(deferred_off, 0u);
  // Waiting for the idle half of the wave makes the executed moves cheaper.
  EXPECT_LT(cost_on, cost_off);
}

/// A belief-limited planner is charged at the links' true state: the same
/// moves cost more when they execute into a burst the belief ignored.
TEST(TransientLoi, StaticBeliefIsChargedAtTrueLinkState) {
  sim::EngineConfig cfg;
  cfg.epoch_accesses = 5'000;
  cfg.loi_schedule.set(1, memsim::LoiWaveform::constant(400.0));  // always bursting
  sim::Engine eng(cfg);
  core::MigrationConfig mcfg;
  mcfg.period_epochs = 1;
  mcfg.min_heat = 2;
  mcfg.assumed_loi = {0.0, 0.0};  // belief: the link is idle
  core::MigrationRuntime runtime(mcfg);
  runtime.attach(eng);
  const std::uint64_t page = eng.memory().page_bytes();
  sim::Array<std::uint8_t> hot(eng, 8 * page, memsim::MemPolicy::bind_pool());
  for (int pass = 0; pass < 60; ++pass)
    for (std::size_t i = 0; i < hot.size(); i += 64) hot.st(i, 1);
  eng.finish();
  ASSERT_GT(runtime.pages_promoted(), 0u);
  // Every executed move's logged cost must match the truth model (LoI 400),
  // not the idle belief.
  const core::MigrationCostModel believed(cfg.machine, {0.0, 0.0});
  const core::MigrationCostModel truth(cfg.machine, {0.0, 400.0});
  for (const auto& move : runtime.plan_log()) {
    if (move.demotion) continue;
    EXPECT_NEAR(move.cost_s, truth.move_cost_s(move.src, move.dst), 1e-12);
    EXPECT_GT(move.cost_s, believed.move_cost_s(move.src, move.dst));
  }
}

/// The per-scan LoI log follows the waveform the engine applied.
TEST(TransientLoi, ScanLoiLogTracksTheWave) {
  sim::EngineConfig cfg;
  cfg.epoch_accesses = 5'000;
  cfg.loi_schedule.set(1, memsim::LoiWaveform::square(2, 0.5, 50.0, 10.0));
  sim::Engine eng(cfg);
  core::MigrationConfig mcfg;
  mcfg.period_epochs = 1;
  core::MigrationRuntime runtime(mcfg);
  runtime.attach(eng);
  sim::Array<std::uint8_t> a(eng, 16 * eng.memory().page_bytes(),
                             memsim::MemPolicy::bind_pool());
  for (int pass = 0; pass < 40; ++pass)
    for (std::size_t i = 0; i < a.size(); i += 64) a.st(i, 1);
  eng.finish();
  const auto& log = runtime.scan_loi_log();
  ASSERT_EQ(log.size(), runtime.scans());
  ASSERT_GE(log.size(), 4u);
  for (std::size_t scan = 0; scan < log.size(); ++scan) {
    // Scan s fires after epoch s closes, when the engine has stepped the
    // wave to epoch s+1.
    const double expected = (scan + 1) % 2 == 0 ? 50.0 : 10.0;
    EXPECT_DOUBLE_EQ(log[scan][1], expected) << "scan " << scan;
  }
}

// ---------- scheduler: per-link co-location -----------------------------------

TEST(SchedPerLink, LoadingTheSensitiveLinkSlowsTheJob) {
  sched::JobProfile job;
  job.app = "synthetic";
  job.base_runtime_s = 600.0;
  job.link_sensitivity = {
      {},                          // node tier: no link
      {{0.0, 1.0}, {50.0, 0.8}},   // pool 1: sensitive
      {{0.0, 1.0}, {50.0, 1.0}},   // pool 2: insensitive
  };
  const double idle = sched::simulate_run_per_link(job, {0.0, 0.0, 0.0}, 60.0, 7);
  const double pool1 = sched::simulate_run_per_link(job, {0.0, 50.0, 0.0}, 60.0, 7);
  const double pool2 = sched::simulate_run_per_link(job, {0.0, 0.0, 50.0}, 60.0, 7);
  EXPECT_NEAR(idle, job.base_runtime_s, 1e-9);
  EXPECT_GT(pool1, idle);
  EXPECT_NEAR(pool2, idle, 1e-9);
  // Loading both links compounds multiplicatively, never less than the
  // single-link slowdown.
  job.link_sensitivity[2] = {{0.0, 1.0}, {50.0, 0.9}};
  const double both = sched::simulate_run_per_link(job, {0.0, 50.0, 50.0}, 60.0, 7);
  EXPECT_GT(both, pool1);
}

TEST(SchedScheduled, WaveformReplayIsDeterministicAndMatchesConstant) {
  sched::JobProfile job;
  job.app = "synthetic";
  job.base_runtime_s = 600.0;
  job.link_sensitivity = {
      {},                          // node tier: no link
      {{0.0, 1.0}, {50.0, 0.8}},   // pool 1: sensitive
      {{0.0, 1.0}, {50.0, 1.0}},   // pool 2: insensitive
  };
  // A constant waveform reduces exactly to the static per-link run at that
  // level (same interpolation, no randomness).
  memsim::LoiSchedule constant;
  constant.set(1, memsim::LoiWaveform::constant(50.0));
  const double replay_const = sched::simulate_run_scheduled(job, constant, 60.0);
  EXPECT_NEAR(replay_const, job.base_runtime_s / 0.8, 1e-9);
  // A square wave alternating idle/loaded lands strictly between the two
  // constant extremes, and replays identically every time.
  memsim::LoiSchedule wave;
  wave.set(1, memsim::LoiWaveform::square(2, 0.5, 50.0, 0.0));
  const double replay_wave = sched::simulate_run_scheduled(job, wave, 60.0);
  EXPECT_GT(replay_wave, job.base_runtime_s);
  EXPECT_LT(replay_wave, replay_const);
  EXPECT_DOUBLE_EQ(replay_wave, sched::simulate_run_scheduled(job, wave, 60.0));
}

TEST(SchedScheduled, InterferenceCoefficientFollowsTheWave) {
  const auto m = memsim::MachineConfig::skylake_testbed();
  const auto wave = memsim::LoiWaveform::square(4, 0.5, 80.0, 0.0);
  const memsim::TierId pool = m.topology.first_fabric();
  // Burst epochs carry the IC of the hi level, idle epochs exactly 1.
  EXPECT_DOUBLE_EQ(core::interference_coefficient_at(m, pool, wave, 0),
                   core::interference_coefficient_at(m, pool, 0.8));
  EXPECT_DOUBLE_EQ(core::interference_coefficient_at(m, pool, wave, 2), 1.0);
  EXPECT_GT(core::interference_coefficient_at(m, pool, wave, 1), 1.0);
}

// ---------- bookkeeping -------------------------------------------------------

TEST(MigrationAccounting, PageTableTracksPerPairBytes) {
  sim::EngineConfig cfg;
  cfg.machine = memsim::MachineConfig::three_tier_cxl();
  sim::Engine eng(cfg);
  const std::uint64_t page = eng.memory().page_bytes();
  sim::Array<std::uint8_t> a(eng, 4 * page, memsim::MemPolicy::bind(2));
  for (std::size_t i = 0; i < a.size(); i += page) a.st(i, 1);
  EXPECT_EQ(eng.memory().migrate(a.range(), 1), 4u);
  EXPECT_EQ(eng.memory().migrated_bytes(2, 1), 4 * page);
  EXPECT_EQ(eng.memory().migrated_bytes(1, 2), 0u);
  EXPECT_EQ(eng.memory().migrated_bytes_total(), 4 * page);
  eng.finish();
}

TEST(MigrationAccounting, TransferCostChargedToTimeline) {
  const auto run = [](bool charge) {
    sim::EngineConfig cfg;
    cfg.epoch_accesses = 5'000;
    sim::Engine eng(cfg);
    core::MigrationConfig mcfg;
    mcfg.period_epochs = 1;
    mcfg.min_heat = 2;
    mcfg.charge_transfer_cost = charge;
    core::MigrationRuntime runtime(mcfg);
    runtime.attach(eng);
    const std::uint64_t page = eng.memory().page_bytes();
    sim::Array<std::uint8_t> hot(eng, 16 * page, memsim::MemPolicy::bind_pool());
    for (int pass = 0; pass < 50; ++pass)
      for (std::size_t i = 0; i < hot.size(); i += 64) hot.st(i, 1);
    eng.finish();
    EXPECT_GT(runtime.pages_promoted(), 0u);
    return std::make_pair(eng.elapsed_seconds(), eng.migration_seconds());
  };
  const auto [charged_s, charged_migration] = run(true);
  const auto [free_s, free_migration] = run(false);
  EXPECT_GT(charged_migration, 0.0);
  EXPECT_DOUBLE_EQ(free_migration, 0.0);
  EXPECT_GT(charged_s, free_s);
}

}  // namespace
}  // namespace memdis
