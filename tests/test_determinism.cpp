// Determinism regression: scenario artifacts must be byte-identical across
// repeated in-process runs. This guards the engine's epoch-callback path
// (LoI schedule stepping + migration planning happen inside the callback)
// against hidden nondeterminism — iteration over unordered containers,
// uninitialized reads, cross-run state leaks in the runtime — that a single
// golden run cannot catch.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/scenario_registry.h"

namespace memdis {
namespace {

struct Artifacts {
  std::string csv;
  std::string json;
};

Artifacts artifacts_of(const std::string& scenario_name, unsigned jobs) {
  const auto* scenario = core::ScenarioRegistry::instance().find(scenario_name);
  EXPECT_NE(scenario, nullptr) << scenario_name;
  core::SweepOptions options;
  options.jobs = jobs;
  const auto result = core::run_scenario(*scenario, options);
  Artifacts out;
  std::ostringstream csv, json;
  result.write_csv(csv);
  result.write_json(json);
  out.csv = csv.str();
  out.json = json.str();
  return out;
}

/// The staged-migration scenario exercises the full epoch-callback stack:
/// per-scan re-pricing, budgets, demotion swaps, and charged transfer time.
TEST(Determinism, ExtStagedMigrationArtifactsAreReproducible) {
  const Artifacts first = artifacts_of("ext-staged-migration", 1);
  const Artifacts second = artifacts_of("ext-staged-migration", 1);
  EXPECT_EQ(first.csv, second.csv);
  EXPECT_EQ(first.json, second.json);
  EXPECT_FALSE(first.csv.empty());
}

/// The transient-LoI scenario additionally steps waveforms every epoch and
/// runs the belief-vs-truth planner pair — the paths this PR added.
TEST(Determinism, ExtTransientLoiArtifactsAreReproducible) {
  const Artifacts first = artifacts_of("ext-transient-loi", 1);
  const Artifacts second = artifacts_of("ext-transient-loi", 1);
  EXPECT_EQ(first.csv, second.csv);
  EXPECT_EQ(first.json, second.json);
  EXPECT_FALSE(first.json.empty());
}

/// Parallel execution must not change the artifacts either (the sweep
/// engine's contract, re-checked here for a callback-heavy scenario).
TEST(Determinism, TransientLoiParallelMatchesSerial) {
  const Artifacts serial = artifacts_of("ext-transient-loi", 1);
  const Artifacts parallel = artifacts_of("ext-transient-loi", 3);
  EXPECT_EQ(serial.csv, parallel.csv);
  EXPECT_EQ(serial.json, parallel.json);
}

}  // namespace
}  // namespace memdis
