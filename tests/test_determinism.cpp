// Determinism regression: scenario artifacts must be byte-identical across
// repeated in-process runs. This guards the engine's epoch-callback path
// (LoI schedule stepping + migration planning happen inside the callback)
// against hidden nondeterminism — iteration over unordered containers,
// uninitialized reads, cross-run state leaks in the runtime — that a single
// golden run cannot catch.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "common/simd.h"
#include "core/epoch_profile.h"
#include "core/scenario_registry.h"
#include "core/sweep.h"
#include "sim/engine.h"

namespace memdis {
namespace {

/// Scoped override of the engine-wide bulk-fast-path default: everything
/// run inside the scope decomposes range calls into the element-wise
/// reference loops.
class ScopedElementWise {
 public:
  ScopedElementWise() : saved_(sim::bulk_fast_path_default()) {
    sim::set_bulk_fast_path_default(false);
  }
  ~ScopedElementWise() { sim::set_bulk_fast_path_default(saved_); }
  ScopedElementWise(const ScopedElementWise&) = delete;
  ScopedElementWise& operator=(const ScopedElementWise&) = delete;

 private:
  bool saved_;
};

/// Scoped override of the engine-wide link-model default: everything run
/// inside the scope prices fabric links with the chosen model (unless a
/// scenario pins one explicitly, as ext-queue-contention does).
class ScopedLinkModel {
 public:
  explicit ScopedLinkModel(memsim::LinkModelKind kind) : saved_(sim::link_model_default()) {
    sim::set_link_model_default(kind);
  }
  ~ScopedLinkModel() { sim::set_link_model_default(saved_); }
  ScopedLinkModel(const ScopedLinkModel&) = delete;
  ScopedLinkModel& operator=(const ScopedLinkModel&) = delete;

 private:
  memsim::LinkModelKind saved_;
};

/// Scoped replay cache rooted in a fresh per-test directory: sweeps inside
/// the scope record each (app, scale, seed) stream on first use and replay
/// it afterwards. The directory and the process-wide setting are torn down
/// on exit.
class ScopedReplayCache {
 public:
  explicit ScopedReplayCache(const std::string& tag)
      : dir_(std::filesystem::path(::testing::TempDir()) / ("memdis_replay_" + tag)) {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    core::set_replay_cache_dir(dir_.string());
  }
  ~ScopedReplayCache() {
    core::set_replay_cache_dir({});
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  ScopedReplayCache(const ScopedReplayCache&) = delete;
  ScopedReplayCache& operator=(const ScopedReplayCache&) = delete;

  [[nodiscard]] std::size_t trace_files() const {
    std::size_t n = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir_))
      if (e.path().extension() == ".mdtr") ++n;
    return n;
  }

 private:
  std::filesystem::path dir_;
};

struct Artifacts {
  std::string csv;
  std::string json;
};

Artifacts artifacts_of(const std::string& scenario_name, unsigned jobs) {
  const auto* scenario = core::ScenarioRegistry::instance().find(scenario_name);
  EXPECT_NE(scenario, nullptr) << scenario_name;
  core::SweepOptions options;
  options.jobs = jobs;
  const auto result = core::run_scenario(*scenario, options);
  Artifacts out;
  std::ostringstream csv, json;
  result.write_csv(csv);
  result.write_json(json);
  out.csv = csv.str();
  out.json = json.str();
  return out;
}

/// The staged-migration scenario exercises the full epoch-callback stack:
/// per-scan re-pricing, budgets, demotion swaps, and charged transfer time.
TEST(Determinism, ExtStagedMigrationArtifactsAreReproducible) {
  const Artifacts first = artifacts_of("ext-staged-migration", 1);
  const Artifacts second = artifacts_of("ext-staged-migration", 1);
  EXPECT_EQ(first.csv, second.csv);
  EXPECT_EQ(first.json, second.json);
  EXPECT_FALSE(first.csv.empty());
}

/// The transient-LoI scenario additionally steps waveforms every epoch and
/// runs the belief-vs-truth planner pair — the paths this PR added.
TEST(Determinism, ExtTransientLoiArtifactsAreReproducible) {
  const Artifacts first = artifacts_of("ext-transient-loi", 1);
  const Artifacts second = artifacts_of("ext-transient-loi", 1);
  EXPECT_EQ(first.csv, second.csv);
  EXPECT_EQ(first.json, second.json);
  EXPECT_FALSE(first.json.empty());
}

/// Parallel execution must not change the artifacts either (the sweep
/// engine's contract, re-checked here for a callback-heavy scenario).
TEST(Determinism, TransientLoiParallelMatchesSerial) {
  const Artifacts serial = artifacts_of("ext-transient-loi", 1);
  const Artifacts parallel = artifacts_of("ext-transient-loi", 3);
  EXPECT_EQ(serial.csv, parallel.csv);
  EXPECT_EQ(serial.json, parallel.json);
}

// ---- bulk fast path vs element-wise reference -------------------------------
// The correctness gate for the range API: a whole scenario run on the
// batched fast path must produce byte-identical CSV/JSON artifacts to the
// same scenario with every range call decomposed into the element-wise
// loop it documents. fig06 covers all six workloads' ported streaming
// passes; ext-transient-loi additionally exercises the epoch-callback
// stack (migration planning + waveform stepping) against batched runs.
//
// Under sanitizers these double-scenario runs overshoot the ctest
// scenario timeout, so they skip there: the sanitized lane still covers
// the fast path through the unit suite and the other scenario tests,
// while the byte-compare gate runs in every non-sanitized lane.

#if defined(__SANITIZE_ADDRESS__)
#define MEMDIS_UNDER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MEMDIS_UNDER_ASAN 1
#endif
#endif

TEST(Determinism, Fig06RangeApiMatchesElementWise) {
#ifdef MEMDIS_UNDER_ASAN
  GTEST_SKIP() << "double fig06 run exceeds the sanitized scenario timeout";
#endif
  const Artifacts fast = artifacts_of("fig06", 1);
  Artifacts reference;
  {
    ScopedElementWise element_wise;
    reference = artifacts_of("fig06", 1);
  }
  EXPECT_EQ(fast.csv, reference.csv);
  EXPECT_EQ(fast.json, reference.json);
  EXPECT_FALSE(fast.csv.empty());
}

TEST(Determinism, TransientLoiRangeApiMatchesElementWise) {
#ifdef MEMDIS_UNDER_ASAN
  GTEST_SKIP() << "double scenario run exceeds the sanitized scenario timeout";
#endif
  const Artifacts fast = artifacts_of("ext-transient-loi", 1);
  Artifacts reference;
  {
    ScopedElementWise element_wise;
    reference = artifacts_of("ext-transient-loi", 1);
  }
  EXPECT_EQ(fast.csv, reference.csv);
  EXPECT_EQ(fast.json, reference.json);
}

// ---- SIMD probe vs forced scalar --------------------------------------------
// The correctness gate for the vectorized way scan (common/simd.h): a whole
// scenario run with the wide tag-compare/argmin probes must produce
// byte-identical artifacts to the same scenario with the runtime kill
// switch forcing the scalar loops. In a -DMEMDIS_SIMD=OFF build both runs
// take the scalar path and the test degenerates to the reproducibility
// check.

/// Scoped override of the probe kill switch: everything run inside the
/// scope uses the scalar way loops.
class ScopedScalarProbe {
 public:
  ScopedScalarProbe() : saved_(simd_enabled()) { set_simd_enabled(false); }
  ~ScopedScalarProbe() { set_simd_enabled(saved_); }
  ScopedScalarProbe(const ScopedScalarProbe&) = delete;
  ScopedScalarProbe& operator=(const ScopedScalarProbe&) = delete;

 private:
  bool saved_;
};

TEST(Determinism, Fig06SimdProbeMatchesForcedScalar) {
#ifdef MEMDIS_UNDER_ASAN
  GTEST_SKIP() << "double fig06 run exceeds the sanitized scenario timeout";
#endif
  const Artifacts wide = artifacts_of("fig06", 1);
  Artifacts scalar;
  {
    ScopedScalarProbe forced;
    scalar = artifacts_of("fig06", 1);
  }
  EXPECT_EQ(wide.csv, scalar.csv);
  EXPECT_EQ(wide.json, scalar.json);
  EXPECT_FALSE(wide.csv.empty());
}

// ---- queue model vs LoI closed form -----------------------------------------
// The compat half of `--link-model`: scenarios without bulk traffic carry
// zero cross-class rates, so running them under the queue model must
// reproduce the closed-form artifacts byte for byte (fig06 covers all six
// workloads with no migration runtime attached). Conversely, pinning the
// default to kLoi must be a no-op for a planner-heavy scenario — the
// closed-form path is untouched by the queue refactor.

TEST(Determinism, Fig06QueueModelMatchesLoiModel) {
#ifdef MEMDIS_UNDER_ASAN
  GTEST_SKIP() << "double fig06 run exceeds the sanitized scenario timeout";
#endif
  const Artifacts loi = artifacts_of("fig06", 1);
  Artifacts queued;
  {
    ScopedLinkModel queue_mode(memsim::LinkModelKind::kQueue);
    queued = artifacts_of("fig06", 1);
  }
  EXPECT_EQ(loi.csv, queued.csv);
  EXPECT_EQ(loi.json, queued.json);
  EXPECT_FALSE(loi.csv.empty());
}

TEST(Determinism, TransientLoiExplicitLoiModelIsDefault) {
#ifdef MEMDIS_UNDER_ASAN
  GTEST_SKIP() << "double scenario run exceeds the sanitized scenario timeout";
#endif
  const Artifacts implicit = artifacts_of("ext-transient-loi", 1);
  Artifacts pinned;
  {
    ScopedLinkModel loi_mode(memsim::LinkModelKind::kLoi);
    pinned = artifacts_of("ext-transient-loi", 1);
  }
  EXPECT_EQ(implicit.csv, pinned.csv);
  EXPECT_EQ(implicit.json, pinned.json);
}

/// The new scenario itself must be reproducible — it layers the queue
/// estimators, self-deferral bookkeeping, and the inflation trace on top
/// of the epoch-callback stack the other determinism tests cover.
TEST(Determinism, ExtQueueContentionArtifactsAreReproducible) {
  const Artifacts first = artifacts_of("ext-queue-contention", 1);
  const Artifacts second = artifacts_of("ext-queue-contention", 2);
  EXPECT_EQ(first.csv, second.csv);
  EXPECT_EQ(first.json, second.json);
  EXPECT_FALSE(first.csv.empty());
}

// ---- epoch-profile repricing vs full simulation -----------------------------
// The correctness gate for `--reprice` (core/epoch_profile.h): a scenario
// run that captures one epoch profile per functional key and re-prices
// every other grid point from it must produce byte-identical artifacts to
// the all-full-simulation run. fig06's axes (app, scale, prefetch) are
// all functional, so it pins the other half of the contract: on a grid
// with no timing axis every point captures and nothing re-prices — the
// flag is a byte-exact no-op. Scenarios whose measure functions sweep an
// LoI axis (ext-cxl, fig10) exercise reprices > 0 in tests/test_reprice.cpp.

/// Scoped override of the repricing switch: clears the profile cache on
/// entry and exit so no capture leaks between tests.
class ScopedReprice {
 public:
  explicit ScopedReprice(bool on) : saved_(core::reprice_enabled()) {
    core::clear_reprice_cache();
    core::set_reprice_enabled(on);
  }
  ~ScopedReprice() {
    core::set_reprice_enabled(saved_);
    core::clear_reprice_cache();
  }
  ScopedReprice(const ScopedReprice&) = delete;
  ScopedReprice& operator=(const ScopedReprice&) = delete;

 private:
  bool saved_;
};

TEST(Determinism, Fig06RepriceMatchesFullSimulation) {
#ifdef MEMDIS_UNDER_ASAN
  GTEST_SKIP() << "double fig06 run exceeds the sanitized scenario timeout";
#endif
  const Artifacts full = artifacts_of("fig06", 1);
  Artifacts repriced;
  {
    ScopedReprice reprice(true);
    repriced = artifacts_of("fig06", 1);
    // Every fig06 axis is functional (the profiler's prefetch on/off pair
    // included), so each eligible run captures and none re-prices: the
    // flag must be a strict byte-exact no-op on such a grid.
    EXPECT_GT(core::reprice_stats().captures, 0u);
    EXPECT_EQ(core::reprice_stats().reprices, 0u);
  }
  EXPECT_EQ(full.csv, repriced.csv);
  EXPECT_EQ(full.json, repriced.json);
  EXPECT_FALSE(full.csv.empty());
}

/// Repricing composes with parallel execution: the two-wave schedule must
/// keep the sweep contract (rows land in grid slots, artifacts identical
/// for any jobs count).
TEST(Determinism, Fig06RepriceParallelMatchesSerial) {
#ifdef MEMDIS_UNDER_ASAN
  GTEST_SKIP() << "double fig06 run exceeds the sanitized scenario timeout";
#endif
  ScopedReprice reprice(true);
  const Artifacts serial = artifacts_of("fig06", 1);
  core::clear_reprice_cache();
  const Artifacts parallel = artifacts_of("fig06", 3);
  EXPECT_EQ(serial.csv, parallel.csv);
  EXPECT_EQ(serial.json, parallel.json);
}

/// Enabling repricing under the queue link model must leave fig06's
/// zero-bulk-traffic collapse to the closed-form artifacts intact (the
/// PR 6 compat guarantee, with the capture path engaged).
TEST(Determinism, Fig06RepriceUnderQueueModelMatchesLoiModel) {
#ifdef MEMDIS_UNDER_ASAN
  GTEST_SKIP() << "double fig06 run exceeds the sanitized scenario timeout";
#endif
  const Artifacts loi = artifacts_of("fig06", 1);
  Artifacts repriced_queue;
  {
    ScopedLinkModel queue_mode(memsim::LinkModelKind::kQueue);
    ScopedReprice reprice(true);
    repriced_queue = artifacts_of("fig06", 1);
  }
  EXPECT_EQ(loi.csv, repriced_queue.csv);
  EXPECT_EQ(loi.json, repriced_queue.json);
}

/// A planner-heavy scenario (migration runtimes, epoch callbacks) never
/// reaches the repricer — enabling it must be a strict no-op there.
TEST(Determinism, ExtStagedMigrationRepriceIsANoOp) {
  const Artifacts off = artifacts_of("ext-staged-migration", 1);
  Artifacts on;
  {
    ScopedReprice reprice(true);
    on = artifacts_of("ext-staged-migration", 1);
    EXPECT_EQ(core::reprice_stats().reprices, 0u);
    EXPECT_EQ(core::reprice_stats().captures, 0u);
  }
  EXPECT_EQ(off.csv, on.csv);
  EXPECT_EQ(off.json, on.json);
}

// ---- trace record/replay vs live --------------------------------------------
// The correctness gate for the replay cache (src/trace/): a sweep whose
// workload streams are recorded on first use and replayed from disk
// afterwards must produce byte-identical artifacts to the all-live sweep.
// Pass 1 through the cache exercises the recording sink (attached sink +
// live numerics), pass 2 the replayer (no numerics, coalesced kStream
// records riding the bulk fast path) — both against the live baseline.

TEST(Determinism, Fig06ReplayCacheMatchesLive) {
#ifdef MEMDIS_UNDER_ASAN
  GTEST_SKIP() << "triple fig06 run exceeds the sanitized scenario timeout";
#endif
  const Artifacts live = artifacts_of("fig06", 1);
  ScopedReplayCache cache("fig06");
  const Artifacts recorded = artifacts_of("fig06", 1);
  EXPECT_EQ(live.csv, recorded.csv);
  EXPECT_EQ(live.json, recorded.json);
  EXPECT_GT(cache.trace_files(), 0u);
  const Artifacts replayed = artifacts_of("fig06", 1);
  EXPECT_EQ(live.csv, replayed.csv);
  EXPECT_EQ(live.json, replayed.json);
  EXPECT_FALSE(live.csv.empty());
}

/// Replay must stay exact under the queue link model too — the trace layer
/// is model-agnostic (it records the call stream, not its pricing), and
/// this pins that down.
TEST(Determinism, Fig06ReplayCacheMatchesLiveUnderQueueModel) {
#ifdef MEMDIS_UNDER_ASAN
  GTEST_SKIP() << "triple fig06 run exceeds the sanitized scenario timeout";
#endif
  ScopedLinkModel queue_mode(memsim::LinkModelKind::kQueue);
  const Artifacts live = artifacts_of("fig06", 1);
  ScopedReplayCache cache("fig06_queue");
  const Artifacts recorded = artifacts_of("fig06", 1);
  const Artifacts replayed = artifacts_of("fig06", 1);
  EXPECT_EQ(live.csv, recorded.csv);
  EXPECT_EQ(live.csv, replayed.csv);
  EXPECT_EQ(live.json, replayed.json);
}

/// ext-queue-contention drives the two-class queues and the inflation
/// trace; a replayed run must reproduce its artifacts exactly as well.
TEST(Determinism, ExtQueueContentionReplayCacheMatchesLive) {
#ifdef MEMDIS_UNDER_ASAN
  GTEST_SKIP() << "triple scenario run exceeds the sanitized scenario timeout";
#endif
  const Artifacts live = artifacts_of("ext-queue-contention", 1);
  ScopedReplayCache cache("queue_contention");
  const Artifacts recorded = artifacts_of("ext-queue-contention", 1);
  const Artifacts replayed = artifacts_of("ext-queue-contention", 1);
  EXPECT_EQ(live.csv, recorded.csv);
  EXPECT_EQ(live.csv, replayed.csv);
  EXPECT_EQ(live.json, replayed.json);
}

}  // namespace
}  // namespace memdis
