// Tests for the deployment planner (the Sec. 4.1 decision flow) and the
// split-borrowing fabric preset.
#include <gtest/gtest.h>

#include "common/contract.h"
#include "core/deployment.h"
#include "workloads/workload.h"

namespace memdis::core {
namespace {

/// A synthetic job: 1 TB footprint, uniform access curve unless overridden.
JobRequirements uniform_job() {
  JobRequirements job;
  job.total_flops = 1e15;
  job.footprint_bytes = 1e12;
  job.dram_traffic_bytes = 5e12;
  job.curve_samples = {0.0, 0.25, 0.5, 0.75, 1.0};  // uniform
  job.prefetch_coverage = 0.8;
  job.comm_seconds_base = 10.0;
  job.base_nodes = 1.0;
  job.comm_scaling_exponent = 0.6;
  return job;
}

JobRequirements skewed_job() {
  JobRequirements job = uniform_job();
  // 90% of accesses in the hottest 25% of the footprint.
  job.curve_samples = {0.0, 0.9, 0.96, 0.99, 1.0};
  return job;
}

PlannerConfig planner_cfg(double local_frac_of_job = 1.0 / 8.0,
                          double pool_frac_of_job = 1.0 / 8.0) {
  PlannerConfig cfg;
  cfg.local_capacity_bytes = static_cast<std::uint64_t>(1e12 * local_frac_of_job);
  cfg.pool_capacity_bytes = static_cast<std::uint64_t>(1e12 * pool_frac_of_job);
  return cfg;
}

TEST(Planner, MinNodesLocalOnlyIsCeiling) {
  const DeploymentPlanner planner(planner_cfg());
  EXPECT_EQ(planner.min_nodes_local_only(uniform_job()), 8);
}

TEST(Planner, TooFewNodesAreInfeasible) {
  const DeploymentPlanner planner(planner_cfg());
  const auto options = planner.evaluate(uniform_job(), 8);
  // 1/8 local + 1/8 pool per node: fewer than 4 nodes cannot hold the job.
  EXPECT_FALSE(options[0].feasible);
  EXPECT_FALSE(options[2].feasible);
  EXPECT_TRUE(options[3].feasible);
}

TEST(Planner, PoolUseFlaggedBelowLocalOnlyMinimum) {
  const DeploymentPlanner planner(planner_cfg());
  const auto options = planner.evaluate(uniform_job(), 12);
  EXPECT_TRUE(options[5].feasible);   // 6 nodes: footprint/6 > local → pool
  EXPECT_TRUE(options[5].needs_pool);
  EXPECT_FALSE(options[9].needs_pool);  // 10 nodes: fits locally
  EXPECT_DOUBLE_EQ(options[9].pooled_fraction, 0.0);
}

TEST(Planner, SkewedJobsPayLessForPooling) {
  const DeploymentPlanner planner(planner_cfg());
  const auto uni = planner.evaluate(uniform_job(), 8)[3];     // 4 nodes, 50% pooled
  const auto skew = planner.evaluate(skewed_job(), 8)[3];
  ASSERT_TRUE(uni.feasible);
  ASSERT_TRUE(skew.feasible);
  EXPECT_LT(skew.remote_access_ratio, uni.remote_access_ratio);
  EXPECT_LT(skew.est_runtime_s, uni.est_runtime_s);
}

TEST(Planner, BestPlacementUsesCurveTail) {
  const DeploymentPlanner planner(planner_cfg());
  const auto opt = planner.evaluate(skewed_job(), 8)[3];  // 50% local per node
  // Local half covers ~96% of accesses → remote access ≈ 4%.
  EXPECT_NEAR(opt.remote_access_ratio, 0.04, 0.01);
}

TEST(Planner, CommunicationMakesScaleOutCostly) {
  // In the compute-bound regime cost is flat with node count; communication
  // is what makes scale-out expensive (the "other dimensions" of Sec. 4.1).
  JobRequirements job = uniform_job();
  job.comm_seconds_base = 500.0;
  const DeploymentPlanner planner(planner_cfg());
  const auto options = planner.evaluate(job, 32);
  ASSERT_TRUE(options[15].feasible);
  ASSERT_TRUE(options[31].feasible);
  EXPECT_GT(options[31].node_seconds, options[15].node_seconds * 1.05);
}

TEST(Planner, RecommendPicksCheapestNearFastest) {
  const DeploymentPlanner planner(planner_cfg());
  const auto pick = planner.recommend(uniform_job(), 32, 1.10);
  EXPECT_TRUE(pick.feasible);
  const auto options = planner.evaluate(uniform_job(), 32);
  double fastest = 1e30;
  for (const auto& opt : options)
    if (opt.feasible) fastest = std::min(fastest, opt.est_runtime_s);
  EXPECT_LE(pick.est_runtime_s, fastest * 1.10 + 1e-12);
  for (const auto& opt : options) {
    if (!opt.feasible || opt.est_runtime_s > fastest * 1.10) continue;
    EXPECT_LE(pick.node_seconds, opt.node_seconds + 1e-9);
  }
}

TEST(Planner, InfeasibleEverywhereViolatesContract) {
  PlannerConfig cfg = planner_cfg(1e-4, 0.0);  // tiny nodes, no pool
  const DeploymentPlanner planner(cfg);
  EXPECT_THROW((void)planner.recommend(uniform_job(), 2), contract_violation);
}

TEST(Planner, FromProfileProjectsScale) {
  auto wl = workloads::make_workload(workloads::App::kHypre, 1);
  const auto l1 = MultiLevelProfiler{}.level1(*wl);
  const auto job = JobRequirements::from_profile(l1, 100.0);
  EXPECT_NEAR(job.footprint_bytes, static_cast<double>(l1.peak_rss_bytes) * 100.0, 1.0);
  EXPECT_GT(job.total_flops, 0.0);
  EXPECT_GT(job.dram_traffic_bytes, 0.0);
  EXPECT_FALSE(job.curve_samples.empty());
}

TEST(SplitPreset, WorsePathThanPool) {
  const auto pool = memsim::MachineConfig::skylake_testbed();
  const auto split = memsim::MachineConfig::split_borrowing();
  EXPECT_LT(split.pool_tier().bandwidth_gbps, pool.pool_tier().bandwidth_gbps);
  EXPECT_GT(split.pool_tier().latency_ns, pool.pool_tier().latency_ns);
  EXPECT_GT(split.pool_link().interference_share, pool.pool_link().interference_share);
}

}  // namespace
}  // namespace memdis::core
