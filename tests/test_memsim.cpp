// Unit and property tests for the tiered-memory substrate: machine config,
// page table + placement policies, and the pool-link queueing model.
#include <gtest/gtest.h>

#include "common/contract.h"
#include "memsim/link.h"
#include "memsim/machine.h"
#include "memsim/page_table.h"

namespace memdis::memsim {
namespace {

/// The pool tier's id in every two-tier preset.
constexpr TierId kPool = 1;

MachineConfig small_machine(std::uint64_t local_pages, std::uint64_t remote_pages) {
  MachineConfig cfg = MachineConfig::skylake_testbed();
  cfg.node_tier().capacity_bytes = local_pages * cfg.page_bytes;
  cfg.tier(kPool).capacity_bytes = remote_pages * cfg.page_bytes;
  return cfg;
}

// ---------- MachineConfig -----------------------------------------------------

TEST(MachineConfig, TestbedMatchesPaperNumbers) {
  const auto m = MachineConfig::skylake_testbed();
  EXPECT_DOUBLE_EQ(m.node_tier().bandwidth_gbps, 73.0);
  EXPECT_DOUBLE_EQ(m.node_tier().latency_ns, 111.0);
  EXPECT_DOUBLE_EQ(m.pool_tier().bandwidth_gbps, 34.0);
  EXPECT_DOUBLE_EQ(m.pool_tier().latency_ns, 202.0);
  EXPECT_DOUBLE_EQ(m.pool_link().traffic_capacity_gbps, 85.0);
}

TEST(MachineConfig, LinkDataBandwidthConsistentWithOverhead) {
  const auto m = MachineConfig::skylake_testbed();
  EXPECT_NEAR(m.link_data_bandwidth_gbps(), 34.0, 1e-9);
}

TEST(MachineConfig, RemoteBandwidthRatio) {
  const auto m = MachineConfig::skylake_testbed();
  EXPECT_NEAR(m.remote_bandwidth_ratio(), 34.0 / 107.0, 1e-12);
}

TEST(MachineConfig, WithRemoteCapacityRatioShrinksLocal) {
  const auto m = MachineConfig::skylake_testbed();
  const std::uint64_t footprint = 100 * m.page_bytes;
  const auto m75 = m.with_remote_capacity_ratio(0.75, footprint);
  EXPECT_EQ(m75.node_tier().capacity_bytes, 25 * m.page_bytes);
  const auto m0 = m.with_remote_capacity_ratio(0.0, footprint);
  EXPECT_EQ(m0.node_tier().capacity_bytes, footprint);
}

TEST(MachineConfig, WithRemoteCapacityRatioRoundsUpToPages) {
  const auto m = MachineConfig::skylake_testbed();
  const auto cfg = m.with_remote_capacity_ratio(0.5, 3 * m.page_bytes);
  EXPECT_EQ(cfg.node_tier().capacity_bytes % m.page_bytes, 0u);
  EXPECT_GE(cfg.node_tier().capacity_bytes, m.page_bytes);
}

TEST(MachineConfig, InvalidRatioViolatesContract) {
  const auto m = MachineConfig::skylake_testbed();
  EXPECT_THROW((void)m.with_remote_capacity_ratio(1.0, 4096), contract_violation);
  EXPECT_THROW((void)m.with_remote_capacity_ratio(-0.1, 4096), contract_violation);
}

// ---------- TieredMemory: first touch ------------------------------------------

TEST(FirstTouch, FillsLocalThenSpills) {
  TieredMemory mem(small_machine(2, 10));
  const auto r = mem.alloc(4 * 4096);
  EXPECT_EQ(mem.touch(r.base), kNodeTier);
  EXPECT_EQ(mem.touch(r.base + 4096), kNodeTier);
  EXPECT_EQ(mem.touch(r.base + 2 * 4096), kPool);  // local full
  EXPECT_EQ(mem.touch(r.base + 3 * 4096), kPool);
}

TEST(FirstTouch, RepeatedTouchIsStable) {
  TieredMemory mem(small_machine(1, 10));
  const auto r = mem.alloc(2 * 4096);
  const TierId t0 = mem.touch(r.base);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(mem.touch(r.base + 17 * i), t0);
}

TEST(FirstTouch, PlacementIsPageGranular) {
  TieredMemory mem(small_machine(1, 10));
  const auto r = mem.alloc(2 * 4096);
  EXPECT_EQ(mem.touch(r.base + 4095), kNodeTier);   // page 0
  EXPECT_EQ(mem.touch(r.base + 4096), kPool);  // page 1
}

TEST(FirstTouch, BothTiersExhaustedThrowsOom) {
  TieredMemory mem(small_machine(1, 1));
  const auto r = mem.alloc(3 * 4096);
  (void)mem.touch(r.base);
  (void)mem.touch(r.base + 4096);
  EXPECT_THROW(mem.touch(r.base + 2 * 4096), OutOfMemoryError);
}

// ---------- TieredMemory: explicit policies --------------------------------------

TEST(BindPolicies, BindRemoteSkipsLocal) {
  TieredMemory mem(small_machine(10, 10));
  const auto r = mem.alloc(4096, MemPolicy::bind_pool());
  EXPECT_EQ(mem.touch(r.base), kPool);
}

TEST(BindPolicies, BindLocalThrowsWhenFull) {
  TieredMemory mem(small_machine(1, 10));
  const auto r1 = mem.alloc(4096, MemPolicy::bind_node());
  EXPECT_EQ(mem.touch(r1.base), kNodeTier);
  const auto r2 = mem.alloc(4096, MemPolicy::bind_node());
  EXPECT_THROW(mem.touch(r2.base), OutOfMemoryError);
}

TEST(BindPolicies, PreferredLocalFallsBackInsteadOfOom) {
  TieredMemory mem(small_machine(1, 10));
  const auto r = mem.alloc(2 * 4096, MemPolicy::preferred());
  EXPECT_EQ(mem.touch(r.base), kNodeTier);
  EXPECT_EQ(mem.touch(r.base + 4096), kPool);
}

TEST(Interleave, AlternatesOneToOne) {
  TieredMemory mem(small_machine(100, 100));
  const auto r = mem.alloc(4 * 4096, MemPolicy::interleave(1, 1));
  EXPECT_EQ(mem.touch(r.base), kNodeTier);
  EXPECT_EQ(mem.touch(r.base + 4096), kPool);
  EXPECT_EQ(mem.touch(r.base + 2 * 4096), kNodeTier);
  EXPECT_EQ(mem.touch(r.base + 3 * 4096), kPool);
}

TEST(Interleave, WeightedNtoM) {
  TieredMemory mem(small_machine(100, 100));
  const auto r = mem.alloc(10 * 4096, MemPolicy::interleave(3, 2));
  int local = 0;
  for (int p = 0; p < 10; ++p)
    if (mem.touch(r.base + static_cast<std::uint64_t>(p) * 4096) == kNodeTier) ++local;
  EXPECT_EQ(local, 6);  // 3 of every 5 pages
}

TEST(Interleave, FallsBackWhenPreferredTierFull) {
  TieredMemory mem(small_machine(1, 10));
  const auto r = mem.alloc(4 * 4096, MemPolicy::interleave(1, 1));
  EXPECT_EQ(mem.touch(r.base), kNodeTier);
  EXPECT_EQ(mem.touch(r.base + 4096), kPool);
  EXPECT_EQ(mem.touch(r.base + 2 * 4096), kPool);  // local exhausted
}

// Property sweep: interleave weights always land within one page of the
// requested proportion.
class InterleaveRatioTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(InterleaveRatioTest, ProportionMatchesWeights) {
  const auto [lw, rw] = GetParam();
  TieredMemory mem(small_machine(4096, 4096));
  const int pages = 60;
  const auto r =
      mem.alloc(static_cast<std::uint64_t>(pages) * 4096,
                MemPolicy::interleave(static_cast<std::uint32_t>(lw),
                                      static_cast<std::uint32_t>(rw)));
  int local = 0;
  for (int p = 0; p < pages; ++p)
    if (mem.touch(r.base + static_cast<std::uint64_t>(p) * 4096) == kNodeTier) ++local;
  const double expected = static_cast<double>(lw) / (lw + rw) * pages;
  EXPECT_NEAR(local, expected, static_cast<double>(lw + rw));
}

INSTANTIATE_TEST_SUITE_P(Weights, InterleaveRatioTest,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 2}, std::pair{2, 1},
                                           std::pair{3, 2}, std::pair{1, 5}, std::pair{5, 1},
                                           std::pair{4, 3}));

// ---------- TieredMemory: free / migrate / accounting -----------------------------

TEST(Accounting, UsedBytesTrackTouches) {
  TieredMemory mem(small_machine(2, 10));
  const auto r = mem.alloc(3 * 4096);
  EXPECT_EQ(mem.used_bytes(kNodeTier), 0u);
  (void)mem.touch(r.base);
  (void)mem.touch(r.base + 4096);
  (void)mem.touch(r.base + 2 * 4096);
  EXPECT_EQ(mem.used_bytes(kNodeTier), 2 * 4096u);
  EXPECT_EQ(mem.used_bytes(kPool), 4096u);
  EXPECT_EQ(mem.touched_pages(), 3u);
}

TEST(Accounting, SnapshotRemoteRatio) {
  TieredMemory mem(small_machine(1, 10));
  const auto r = mem.alloc(4 * 4096);
  for (int p = 0; p < 4; ++p) (void)mem.touch(r.base + static_cast<std::uint64_t>(p) * 4096);
  const auto snap = mem.snapshot();
  EXPECT_EQ(snap.total(), 4 * 4096u);
  EXPECT_NEAR(snap.remote_ratio(), 0.75, 1e-12);
}

TEST(Free, ReturnsCapacityAndKeepsTombstone) {
  TieredMemory mem(small_machine(2, 10));
  const auto r = mem.alloc(2 * 4096);
  (void)mem.touch(r.base);
  (void)mem.touch(r.base + 4096);
  mem.free(r);
  EXPECT_EQ(mem.used_bytes(kNodeTier), 0u);
  // Late writebacks may still ask for the tier of a freed page.
  EXPECT_EQ(mem.tier_of(r.base), kNodeTier);
  EXPECT_FALSE(mem.resident(r.base));
}

TEST(Free, FreedLocalCapacityIsReusable) {
  TieredMemory mem(small_machine(1, 10));
  const auto r1 = mem.alloc(4096);
  (void)mem.touch(r1.base);
  mem.free(r1);
  const auto r2 = mem.alloc(4096);
  EXPECT_EQ(mem.touch(r2.base), kNodeTier);  // freed page made room
}

TEST(Free, DoubleFreeViolatesContract) {
  TieredMemory mem(small_machine(2, 2));
  const auto r = mem.alloc(4096);
  mem.free(r);
  EXPECT_THROW(mem.free(r), contract_violation);
}

TEST(Free, TouchAfterFreeViolatesContract) {
  TieredMemory mem(small_machine(2, 2));
  const auto r = mem.alloc(4096);
  mem.free(r);
  EXPECT_THROW(mem.touch(r.base), contract_violation);
}

TEST(Migrate, MovesPagesWhenRoomAvailable) {
  TieredMemory mem(small_machine(1, 10));
  const auto r = mem.alloc(2 * 4096);
  (void)mem.touch(r.base);          // local
  (void)mem.touch(r.base + 4096);   // remote (local full)
  // Free nothing: local is full, migration to local moves 0 pages.
  EXPECT_EQ(mem.migrate(VRange{r.base + 4096, 4096}, kNodeTier), 0u);
  // Migrate the local page to remote: succeeds.
  EXPECT_EQ(mem.migrate(VRange{r.base, 4096}, kPool), 1u);
  EXPECT_EQ(mem.tier_of(r.base), kPool);
  // Now local is empty; the other page can move in.
  EXPECT_EQ(mem.migrate(VRange{r.base + 4096, 4096}, kNodeTier), 1u);
}

TEST(WasteLocal, ShrinksEffectiveLocalCapacity) {
  TieredMemory mem(small_machine(4, 10));
  mem.waste_local(2 * 4096);
  EXPECT_EQ(mem.capacity_bytes(kNodeTier), 2 * 4096u);
  const auto r = mem.alloc(3 * 4096);
  (void)mem.touch(r.base);
  (void)mem.touch(r.base + 4096);
  EXPECT_EQ(mem.touch(r.base + 2 * 4096), kPool);
}

TEST(Alloc, ZeroBytesViolatesContract) {
  TieredMemory mem(small_machine(2, 2));
  EXPECT_THROW((void)mem.alloc(0), contract_violation);
}

TEST(Alloc, TouchOutsideAllocationsViolatesContract) {
  TieredMemory mem(small_machine(2, 2));
  EXPECT_THROW((void)mem.touch(0x1000), contract_violation);
}

TEST(Alloc, RangesAreDisjointAndPageAligned) {
  TieredMemory mem(small_machine(64, 64));
  const auto a = mem.alloc(100);
  const auto b = mem.alloc(100);
  EXPECT_EQ(a.bytes % 4096, 0u);
  EXPECT_GE(b.base, a.end());
}

// ---------- N-tier topologies --------------------------------------------------

MachineConfig small_three_tier(std::uint64_t t0_pages, std::uint64_t t1_pages,
                               std::uint64_t t2_pages) {
  MachineConfig cfg = MachineConfig::three_tier_cxl();
  cfg.tier(0).capacity_bytes = t0_pages * cfg.page_bytes;
  cfg.tier(1).capacity_bytes = t1_pages * cfg.page_bytes;
  cfg.tier(2).capacity_bytes = t2_pages * cfg.page_bytes;
  return cfg;
}

TEST(Topology, ValidateRejectsFabricNodeTier) {
  MemoryTopology topo{{MemoryTierSpec{"bad", 4096, 1.0, 1.0, FabricLinkSpec{}}}};
  EXPECT_THROW(topo.validate(), contract_violation);
}

TEST(Topology, ValidateRejectsTooManyTiers) {
  MemoryTopology topo;
  for (int i = 0; i < kMaxTiers + 1; ++i) {
    // std::string("t") (not a char* literal) sidesteps a gcc-12 -Wrestrict
    // false positive (PR105651) in operator+(const char*, string&&).
    std::string name = std::string("t") + std::to_string(i);
    topo.tiers.push_back(MemoryTierSpec{std::move(name), 4096, 1.0, 1.0,
                                        i ? std::optional<FabricLinkSpec>(FabricLinkSpec{})
                                          : std::nullopt});
  }
  EXPECT_THROW(topo.validate(), contract_violation);
}

TEST(Topology, ValidateRejectsLinklessFabricPosition) {
  // Every tier beyond the node tier must carry a link: off-node
  // aggregation (fabric_dram_bytes, remote ratios) assumes it.
  MemoryTopology topo{{MemoryTierSpec{"node", 4096, 1.0, 1.0, {}},
                       MemoryTierSpec{"second-local", 4096, 1.0, 1.0, {}}}};
  EXPECT_THROW(topo.validate(), contract_violation);
}

TEST(Topology, FirstFabricSkipsLocalTiers) {
  const auto m = MachineConfig::three_tier_cxl();
  EXPECT_EQ(m.topology.first_fabric(), 1);
  EXPECT_FALSE(m.topology.is_fabric(0));
  EXPECT_TRUE(m.topology.is_fabric(2));
}

TEST(NTierFirstTouch, SpillsDownTheChain) {
  TieredMemory mem(small_three_tier(2, 1, 10));
  const auto r = mem.alloc(5 * 4096);
  EXPECT_EQ(mem.touch(r.base), 0);
  EXPECT_EQ(mem.touch(r.base + 4096), 0);
  EXPECT_EQ(mem.touch(r.base + 2 * 4096), 1);  // node full
  EXPECT_EQ(mem.touch(r.base + 3 * 4096), 2);  // direct pool full
  EXPECT_EQ(mem.touch(r.base + 4 * 4096), 2);
}

TEST(NTierFirstTouch, OomWhenEveryTierFull) {
  TieredMemory mem(small_three_tier(1, 1, 1));
  const auto r = mem.alloc(4 * 4096);
  for (int p = 0; p < 3; ++p) (void)mem.touch(r.base + static_cast<std::uint64_t>(p) * 4096);
  EXPECT_THROW(mem.touch(r.base + 3 * 4096), OutOfMemoryError);
}

TEST(NTierInterleave, ThreeWeightVector) {
  TieredMemory mem(small_three_tier(100, 100, 100));
  const auto r = mem.alloc(8 * 4096, MemPolicy::interleave({2, 1, 1}));
  // Period 4: tiers 0,0,1,2 repeating.
  const TierId want[8] = {0, 0, 1, 2, 0, 0, 1, 2};
  for (int p = 0; p < 8; ++p)
    EXPECT_EQ(mem.touch(r.base + static_cast<std::uint64_t>(p) * 4096), want[p]) << p;
}

TEST(NTierInterleave, ZeroWeightSkipsTier) {
  TieredMemory mem(small_three_tier(100, 100, 100));
  const auto r = mem.alloc(4 * 4096, MemPolicy::interleave({1, 0, 1}));
  EXPECT_EQ(mem.touch(r.base), 0);
  EXPECT_EQ(mem.touch(r.base + 4096), 2);  // tier 1 has weight 0
  EXPECT_EQ(mem.touch(r.base + 2 * 4096), 0);
  EXPECT_EQ(mem.touch(r.base + 3 * 4096), 2);
}

TEST(NTierBind, BindToThirdTier) {
  TieredMemory mem(small_three_tier(10, 10, 10));
  const auto r = mem.alloc(4096, MemPolicy::bind(2));
  EXPECT_EQ(mem.touch(r.base), 2);
  EXPECT_EQ(mem.used_bytes(2), 4096u);
}

TEST(NTierBind, TargetOutsideTopologyViolatesContract) {
  TieredMemory mem(small_three_tier(10, 10, 10));
  EXPECT_THROW((void)mem.alloc(4096, MemPolicy::bind(5)), contract_violation);
}

TEST(NTierMigrate, BetweenTwoFabricTiers) {
  TieredMemory mem(small_three_tier(10, 10, 10));
  const auto r = mem.alloc(2 * 4096, MemPolicy::bind(1));
  (void)mem.touch(r.base);
  (void)mem.touch(r.base + 4096);
  EXPECT_EQ(mem.migrate(r, 2), 2u);  // direct pool -> switched pool
  EXPECT_EQ(mem.tier_of(r.base), 2);
  EXPECT_EQ(mem.used_bytes(1), 0u);
  EXPECT_EQ(mem.used_bytes(2), 2 * 4096u);
  // And back up one hop.
  EXPECT_EQ(mem.migrate(r, 1), 2u);
  EXPECT_EQ(mem.tier_of(r.base + 4096), 1);
}

TEST(NTierSnapshot, TracksEveryTier) {
  TieredMemory mem(small_three_tier(1, 1, 10));
  const auto r = mem.alloc(4 * 4096);
  for (int p = 0; p < 4; ++p) (void)mem.touch(r.base + static_cast<std::uint64_t>(p) * 4096);
  const auto snap = mem.snapshot();
  ASSERT_EQ(snap.resident_bytes.size(), 3u);
  EXPECT_EQ(snap.resident_bytes[0], 4096u);
  EXPECT_EQ(snap.resident_bytes[1], 4096u);
  EXPECT_EQ(snap.resident_bytes[2], 2 * 4096u);
  EXPECT_EQ(snap.total(), 4 * 4096u);
  EXPECT_NEAR(snap.remote_ratio(), 0.75, 1e-12);
}

TEST(CapacityFractions, ShapesTierCapacities) {
  const auto m = MachineConfig::three_tier_cxl();
  const std::uint64_t footprint = 100 * m.page_bytes;
  const auto shaped = m.with_capacity_fractions({0.25, 0.375}, footprint);
  EXPECT_EQ(shaped.tier(0).capacity_bytes, 25 * m.page_bytes);
  EXPECT_EQ(shaped.tier(1).capacity_bytes, 38 * m.page_bytes);  // rounded up
  EXPECT_EQ(shaped.tier(2).capacity_bytes, m.tier(2).capacity_bytes);  // untouched
}

TEST(CapacityFractions, MoreFractionsThanTiersViolatesContract) {
  const auto m = MachineConfig::skylake_testbed();
  EXPECT_THROW((void)m.with_capacity_fractions({0.1, 0.1, 0.1}, 4096), contract_violation);
}

// ---------- LinkModel ----------------------------------------------------------------

TEST(Link, TrafficIncludesProtocolOverhead) {
  LinkModel link(MachineConfig::skylake_testbed().pool_tier());
  EXPECT_DOUBLE_EQ(link.traffic_of_data_gbps(10.0), 25.0);
}

TEST(Link, MeasuredTrafficSaturatesAtCapacity) {
  LinkModel link(MachineConfig::skylake_testbed().pool_tier());
  EXPECT_DOUBLE_EQ(link.measured_traffic_gbps(100.0), 85.0);
  EXPECT_NEAR(link.measured_traffic_gbps(10.0), 25.0, 1e-12);
}

TEST(Link, BackgroundLoiSetsTraffic) {
  LinkModel link(MachineConfig::skylake_testbed().pool_tier());
  link.set_background_loi(50.0);
  EXPECT_DOUBLE_EQ(link.background_traffic_gbps(), 42.5);
}

TEST(Link, LatencyMultiplierMonotoneInLoad) {
  LinkModel link(MachineConfig::skylake_testbed().pool_tier());
  double prev = 0.0;
  for (double loi = 0; loi <= 300; loi += 10) {
    link.set_background_loi(loi);
    const double mult = link.latency_multiplier(0.0);
    EXPECT_GE(mult, prev);
    EXPECT_GE(mult, 1.0);
    prev = mult;
  }
}

TEST(Link, LatencyMultiplierCapped) {
  MachineConfig cfg = MachineConfig::skylake_testbed();
  cfg.pool_link().max_latency_multiplier = 3.0;
  LinkModel link(cfg.pool_tier());
  link.set_background_loi(2000.0);
  EXPECT_LE(link.latency_multiplier(30.0), 3.0);
}

TEST(Link, UnloadedLatencyIsBaseLatency) {
  LinkModel link(MachineConfig::skylake_testbed().pool_tier());
  EXPECT_DOUBLE_EQ(link.effective_latency_ns(0.0), 202.0);
}

TEST(Link, EffectiveBandwidthShrinksWithLoi) {
  LinkModel link(MachineConfig::skylake_testbed().pool_tier());
  const double bw0 = link.effective_data_bandwidth_gbps(0.0);
  link.set_background_loi(50.0);
  const double bw50 = link.effective_data_bandwidth_gbps(0.0);
  EXPECT_LT(bw50, bw0);
  EXPECT_GT(bw50, 0.0);
}

TEST(Link, EffectiveBandwidthNeverBelowMinShare) {
  LinkModel link(MachineConfig::skylake_testbed().pool_tier());
  link.set_background_loi(2000.0);
  EXPECT_GE(link.effective_data_bandwidth_gbps(0.0), 85.0 * 0.05 / 2.5 - 1e-12);
}

TEST(Link, OfferedUtilizationAddsAppAndBackground) {
  LinkModel link(MachineConfig::skylake_testbed().pool_tier());
  link.set_background_loi(50.0);
  // app 10 GB/s data → 25 traffic; background 42.5; total 67.5 / 85.
  EXPECT_NEAR(link.offered_utilization(10.0), 67.5 / 85.0, 1e-12);
}

TEST(Link, LoiOutOfRangeViolatesContract) {
  LinkModel link(MachineConfig::skylake_testbed().pool_tier());
  EXPECT_THROW(link.set_background_loi(-1.0), contract_violation);
  EXPECT_THROW(link.set_background_loi(5000.0), contract_violation);
}

// Property sweep: queueing delay grows with LoI for any app rate.
class LinkLoadTest : public ::testing::TestWithParam<double> {};

TEST_P(LinkLoadTest, MoreBackgroundNeverHelps) {
  const double app_rate = GetParam();
  LinkModel link(MachineConfig::skylake_testbed().pool_tier());
  double prev_lat = 0.0;
  double prev_bw = 1e18;
  for (double loi = 0; loi <= 100; loi += 25) {
    link.set_background_loi(loi);
    const double lat = link.effective_latency_ns(app_rate);
    const double bw = link.effective_data_bandwidth_gbps(app_rate);
    EXPECT_GE(lat, prev_lat);
    EXPECT_LE(bw, prev_bw);
    prev_lat = lat;
    prev_bw = bw;
  }
}

INSTANTIATE_TEST_SUITE_P(AppRates, LinkLoadTest, ::testing::Values(0.0, 5.0, 17.0, 34.0));

}  // namespace
}  // namespace memdis::memsim
