// QueueModel unit suite: the two-class link queue of `--link-model queue`.
//
// Three properties carry the design (queue_model.h):
//  * delay is monotone in utilization, own-class and cross-class alike;
//  * class isolation — with zero cross traffic every query reduces
//    *bit-identically* to the LinkModel closed form (the compat guarantee
//    that lets the six pre-queue goldens gate the refactor);
//  * the windowed arrival-rate estimator is a plain ring: old epochs age
//    out after `queue_window_epochs` observations, no decay constants.
// The last test lifts the isolation property to whole-engine granularity:
// a bulk-free workload run times identically under both models.
#include <gtest/gtest.h>

#include "common/units.h"
#include "core/experiment.h"
#include "memsim/link.h"
#include "memsim/machine.h"
#include "memsim/queue_model.h"
#include "workloads/workload.h"

namespace memdis {
namespace {

using memsim::LinkModel;
using memsim::QueueModel;
using memsim::TrafficClass;

/// The pool tier of the default testbed machine — a real spec, so the
/// tests exercise calibrated parameters rather than synthetic ones.
memsim::MemoryTierSpec pool_spec() {
  const auto m = memsim::MachineConfig::skylake_testbed();
  return m.tier(m.topology.first_fabric());
}

TEST(QueueModel, DelayIsMonotoneInCrossTraffic) {
  const QueueModel q(pool_spec());
  const double own = 10.0;
  double prev = 0.0;
  for (const double cross : {0.0, 2.0, 5.0, 10.0, 20.0, 30.0}) {
    const double mult = q.latency_multiplier(TrafficClass::kDemand, 0.0, own, cross);
    EXPECT_GE(mult, prev) << "cross=" << cross;
    if (cross > 0.0) {
      EXPECT_GT(mult, 1.0) << "cross traffic must queue";
    }
    prev = mult;
  }
  // Strict growth away from the multiplier cap.
  EXPECT_LT(q.latency_multiplier(TrafficClass::kDemand, 0.0, own, 2.0),
            q.latency_multiplier(TrafficClass::kDemand, 0.0, own, 10.0));
}

TEST(QueueModel, DelayIsMonotoneInOwnRate) {
  const QueueModel q(pool_spec());
  double prev = 0.0;
  for (const double own : {0.0, 5.0, 10.0, 20.0, 30.0}) {
    const double mult = q.latency_multiplier(TrafficClass::kBulk, 0.0, own, 4.0);
    EXPECT_GE(mult, prev) << "own=" << own;
    prev = mult;
  }
}

TEST(QueueModel, ZeroCrossTrafficReducesToClosedForm) {
  const auto spec = pool_spec();
  const QueueModel q(spec);
  LinkModel closed(spec);
  for (const double bg : {0.0, 15.0, 50.0, 120.0}) {
    closed.set_background_loi(bg);
    for (const double own : {0.0, 4.0, 12.0, 28.0}) {
      for (const auto cls : {TrafficClass::kDemand, TrafficClass::kBulk}) {
        // Bit-identical, not approximately equal: the compat mode's claim.
        EXPECT_EQ(q.latency_multiplier(cls, bg, own, 0.0), closed.latency_multiplier(own));
        EXPECT_EQ(q.effective_latency_ns(cls, bg, own, 0.0), closed.effective_latency_ns(own));
        EXPECT_EQ(q.effective_data_bandwidth_gbps(cls, bg, 0.0),
                  closed.effective_data_bandwidth_gbps(0.0));
      }
      EXPECT_EQ(q.effective_loi(TrafficClass::kDemand, bg, 0.0), bg);
    }
  }
}

TEST(QueueModel, EffectiveLoiAddsCrossShareAndClamps) {
  const auto spec = pool_spec();
  const QueueModel q(spec);
  const double cross = 8.0;  // GB/s of data
  const double expected =
      10.0 + 100.0 * cross * spec.link->protocol_overhead / spec.link->traffic_capacity_gbps;
  EXPECT_DOUBLE_EQ(q.effective_loi(TrafficClass::kDemand, 10.0, cross), expected);
  // An absurd cross rate saturates at the shared LoI bound.
  EXPECT_DOUBLE_EQ(q.effective_loi(TrafficClass::kDemand, 10.0, 1e9), LinkModel::kMaxLoi);
}

TEST(QueueModel, WindowedEstimatorEvictsOldEpochs) {
  const auto spec = pool_spec();
  QueueModel q(spec);
  EXPECT_EQ(q.window_epochs(), static_cast<std::size_t>(spec.link->queue_window_epochs));
  EXPECT_EQ(q.estimated_rate_gbps(TrafficClass::kBulk), 0.0);

  // Fill the window with 1 GB per 1 s epochs: rate settles at 1 GB/s.
  for (std::size_t i = 0; i < q.window_epochs(); ++i)
    q.observe(TrafficClass::kBulk, 1e9, 1.0);
  EXPECT_EQ(q.window_size(TrafficClass::kBulk), q.window_epochs());
  EXPECT_DOUBLE_EQ(q.estimated_rate_gbps(TrafficClass::kBulk), 1.0);

  // The demand class keeps its own window: still empty.
  EXPECT_EQ(q.window_size(TrafficClass::kDemand), 0u);
  EXPECT_EQ(q.estimated_rate_gbps(TrafficClass::kDemand), 0.0);

  // One idle epoch displaces one loaded one: 3 GB over 4 s.
  q.observe(TrafficClass::kBulk, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(q.estimated_rate_gbps(TrafficClass::kBulk), 0.75);

  // A full window of idle epochs forgets the burst entirely.
  for (std::size_t i = 0; i < q.window_epochs(); ++i)
    q.observe(TrafficClass::kBulk, 0.0, 1.0);
  EXPECT_EQ(q.estimated_rate_gbps(TrafficClass::kBulk), 0.0);
}

TEST(QueueModel, EstimatorFoldsInTheCurrentEpoch) {
  QueueModel q(pool_spec());
  q.observe(TrafficClass::kBulk, 1e9, 1.0);
  // (1 GB + 2 GB) over (1 s + 1 s): the closing epoch sees its own burst.
  EXPECT_DOUBLE_EQ(q.estimated_rate_gbps(TrafficClass::kBulk, 2e9, 1.0), 1.5);
}

/// Engine-level compat anchor: without bulk traffic (no migration runtime
/// attached) the queue model's cross terms are all zero, so a whole
/// workload run — misses, epochs, stalls — must match the closed form
/// bit for bit, even though every query went through the QueueModel.
TEST(QueueModel, BulkFreeEngineRunMatchesLoiModel) {
  auto run_with = [](memsim::LinkModelKind kind) {
    core::RunConfig rc;
    rc.machine = memsim::MachineConfig::cxl_direct_attached();
    rc.remote_capacity_ratio = 0.5;
    rc.background_loi = 25.0;  // background must survive the translation
    rc.link_model = kind;
    auto wl = workloads::make_workload(workloads::App::kXSBench, 1);
    return core::run_workload(*wl, rc);
  };
  const auto loi = run_with(memsim::LinkModelKind::kLoi);
  const auto queue = run_with(memsim::LinkModelKind::kQueue);
  EXPECT_EQ(loi.elapsed_s, queue.elapsed_s);
  ASSERT_EQ(loi.epochs.size(), queue.epochs.size());
  for (std::size_t i = 0; i < loi.epochs.size(); ++i) {
    EXPECT_EQ(loi.epochs[i].duration_s, queue.epochs[i].duration_s) << "epoch " << i;
    // The inflation trace must stay pinned at 1.0 in both models.
    for (const double infl : queue.epochs[i].link_demand_inflation)
      EXPECT_EQ(infl, 1.0);
  }
}

}  // namespace
}  // namespace memdis
