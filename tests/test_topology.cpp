// End-to-end tests for N-tier topologies: preset shapes, the topology axis
// of the sweep engine, engine-level propagation (per-tier counters, epochs,
// residency), and the monotonicity properties the new scenarios claim.
#include <gtest/gtest.h>

#include "common/contract.h"
#include "core/experiment.h"
#include "core/scenario_registry.h"
#include "core/sweep.h"
#include "workloads/workload.h"

namespace memdis {
namespace {

using core::machine_for_fabric;
using workloads::App;

// ---------- presets ----------------------------------------------------------

TEST(TopologyPresets, ThreeTierChainShape) {
  const auto m = memsim::MachineConfig::three_tier_cxl();
  ASSERT_EQ(m.num_tiers(), 3);
  EXPECT_FALSE(m.tier(0).is_fabric());
  EXPECT_TRUE(m.tier(1).is_fabric());
  EXPECT_TRUE(m.tier(2).is_fabric());
  EXPECT_EQ(m.tier(1).name, "cxl-direct");
  EXPECT_EQ(m.tier(2).name, "cxl-switched");
  // Same device bandwidth, switch traversal adds latency.
  EXPECT_DOUBLE_EQ(m.tier(1).bandwidth_gbps, m.tier(2).bandwidth_gbps);
  EXPECT_GT(m.tier(2).latency_ns, m.tier(1).latency_ns);
  EXPECT_NO_THROW(m.topology.validate());
}

TEST(TopologyPresets, HybridHasAsymmetricPools) {
  const auto m = memsim::MachineConfig::hybrid_split_pool();
  ASSERT_EQ(m.num_tiers(), 3);
  EXPECT_EQ(m.tier(1).name, "cxl-direct");
  EXPECT_EQ(m.tier(2).name, "peer-borrowed");
  // Each pool has its own link with its own parameters.
  EXPECT_LT(m.tier(1).link->protocol_overhead, m.tier(2).link->protocol_overhead);
  EXPECT_LT(m.tier(1).link->interference_share, m.tier(2).link->interference_share);
}

TEST(TopologyPresets, EveryRegisteredNameResolves) {
  for (const auto& name : core::topology_preset_names()) {
    const auto m = machine_for_fabric(name);
    EXPECT_NO_THROW(m.topology.validate()) << name;
    EXPECT_GE(m.num_tiers(), 2) << name;
  }
  EXPECT_THROW((void)machine_for_fabric("banana"), std::invalid_argument);
}

TEST(TopologyPresets, TwoTierPresetsStayTwoTier) {
  for (const char* name : {"upi", "cxl", "cxl-switched", "split"})
    EXPECT_EQ(machine_for_fabric(name).num_tiers(), 2) << name;
}

// ---------- engine propagation ----------------------------------------------

TEST(EngineNTier, CountersEpochsAndResidencyCoverAllTiers) {
  auto wl = workloads::make_workload(App::kBFS, 1, /*seed=*/7);
  core::RunConfig cfg;
  cfg.machine = memsim::MachineConfig::three_tier_cxl();
  // Node holds 25% of the footprint, the direct device ~37.5%, the rest
  // spills to the switched pool.
  cfg.capacity_fractions = std::vector<double>{0.25, 0.375};
  const auto run = core::run_workload(*wl, cfg);

  EXPECT_TRUE(run.result.verified);
  // All three tiers served traffic.
  EXPECT_GT(run.counters.dram_bytes(0), 0u);
  EXPECT_GT(run.counters.dram_bytes(1), 0u);
  EXPECT_GT(run.counters.dram_bytes(2), 0u);
  // Epoch records carry per-tier series sized to the topology.
  ASSERT_FALSE(run.epochs.empty());
  EXPECT_EQ(run.epochs.front().tier_bytes.size(), 3u);
  EXPECT_EQ(run.epochs.front().resident_bytes.size(), 3u);
  // Peak residency saw pages on the switched pool.
  ASSERT_EQ(run.resident_bytes.size(), 3u);
  EXPECT_GT(run.resident_bytes[2], 0u);
  // Off-node ratios aggregate both fabric tiers.
  EXPECT_GT(run.remote_access_ratio(), 0.0);
  // The configured 75% split is approximate: the footprint estimate the
  // capacity shaping uses differs from true peak RSS by transient arrays.
  EXPECT_NEAR(run.remote_capacity_ratio(), 0.75, 0.1);
}

// ---------- sweep topology axis ----------------------------------------------

TEST(SweepTopologyAxis, MixesTwoAndThreeTierPointsInOneGrid) {
  core::SweepSpec spec;
  spec.apps = {App::kBFS};
  spec.fabrics = {"cxl", "three-tier", "hybrid"};
  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].run_config().machine.num_tiers(), 2);
  EXPECT_EQ(points[1].run_config().machine.num_tiers(), 3);
  EXPECT_EQ(points[2].run_config().machine.num_tiers(), 3);
}

// ---------- scenario grids ----------------------------------------------------

TEST(ScenarioGrid, ExtThreeTierShape) {
  const auto* s = core::ScenarioRegistry::instance().find("ext-three-tier");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->spec.size(), 12u);  // 3 apps x 2 ratios x 2 topologies
  EXPECT_EQ(s->spec.fabrics, (std::vector<std::string>{"cxl", "three-tier"}));
  EXPECT_FALSE(s->spec.seed_per_task);
  const auto points = s->spec.expand();
  EXPECT_EQ(points.size(), 12u);
  // Shared seed across the topology axis (inputs held fixed).
  for (const auto& p : points) EXPECT_EQ(p.seed, s->spec.base_seed);
}

TEST(ScenarioGrid, ExtHybridShape) {
  const auto* s = core::ScenarioRegistry::instance().find("ext-hybrid");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->spec.size(), 6u);  // 2 apps x 3 topologies
  EXPECT_EQ(s->spec.fabrics, (std::vector<std::string>{"cxl", "hybrid", "split"}));
}

TEST(ScenarioGrid, ThreeTierMeasureUsesTheSwitchedTier) {
  const auto* s = core::ScenarioRegistry::instance().find("ext-three-tier");
  ASSERT_NE(s, nullptr);
  core::SweepPoint point;
  point.app = App::kBFS;
  point.ratio = 0.75;
  point.fabric = "three-tier";
  point.seed = s->spec.base_seed;
  const auto metrics = s->measure(point);
  double share_t2 = 0.0, time_ms = 0.0;
  for (const auto& [name, value] : metrics) {
    if (name == "share_t2") share_t2 = value;
    if (name == "time_ms") time_ms = value;
  }
  EXPECT_GT(time_ms, 0.0);
  EXPECT_GT(share_t2, 0.0);  // the chain's tail actually serves traffic
}

// ---------- monotonicity ------------------------------------------------------

// The property the three-tier scenario claims: with byte-for-byte identical
// placement, turning the chain's tail from a direct hop into a switched hop
// (same bandwidth, +latency) never improves runtime.
TEST(Monotonicity, SwitchedHopNeverImprovesRuntime) {
  const std::uint64_t seed = 99;
  auto direct_machine = memsim::MachineConfig::three_tier_cxl();
  direct_machine.tier(2).latency_ns = direct_machine.tier(1).latency_ns;

  core::RunConfig direct_cfg;
  direct_cfg.machine = direct_machine;
  direct_cfg.capacity_fractions = std::vector<double>{0.25, 0.375};
  auto wl_direct = workloads::make_workload(App::kBFS, 1, seed);
  const auto direct = core::run_workload(*wl_direct, direct_cfg);

  core::RunConfig switched_cfg = direct_cfg;
  switched_cfg.machine = memsim::MachineConfig::three_tier_cxl();
  auto wl_switched = workloads::make_workload(App::kBFS, 1, seed);
  const auto switched = core::run_workload(*wl_switched, switched_cfg);

  // Identical placement (deterministic first touch on identical capacities):
  // the only difference is the tail hop's latency.
  EXPECT_EQ(direct.counters.dram_bytes(2), switched.counters.dram_bytes(2));
  EXPECT_GT(direct.counters.dram_bytes(2), 0u);
  EXPECT_GE(switched.elapsed_s, direct.elapsed_s);
}

// Splitting the spill between the CXL device and the (slower) peer tier
// always beats borrowing everything from the peer: the hybrid moves half
// the traffic to a strictly faster path.
TEST(Monotonicity, HybridNeverLosesToPureSplit) {
  const std::uint64_t seed = 99;
  core::RunConfig hybrid_cfg;
  hybrid_cfg.machine = memsim::MachineConfig::hybrid_split_pool();
  hybrid_cfg.capacity_fractions = std::vector<double>{0.5, 0.25};
  auto wl_hybrid = workloads::make_workload(App::kBFS, 1, seed);
  const auto hybrid = core::run_workload(*wl_hybrid, hybrid_cfg);

  core::RunConfig split_cfg;
  split_cfg.machine = memsim::MachineConfig::split_borrowing();
  split_cfg.remote_capacity_ratio = 0.5;
  auto wl_split = workloads::make_workload(App::kBFS, 1, seed);
  const auto split = core::run_workload(*wl_split, split_cfg);

  EXPECT_LE(hybrid.elapsed_s, split.elapsed_s);
}

}  // namespace
}  // namespace memdis
