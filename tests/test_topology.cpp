// End-to-end tests for N-tier topologies: preset shapes, the topology axis
// of the sweep engine, engine-level propagation (per-tier counters, epochs,
// residency), and the monotonicity properties the new scenarios claim.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/contract.h"
#include "common/rng.h"
#include "core/experiment.h"
#include "core/scenario_registry.h"
#include "core/sweep.h"
#include "workloads/workload.h"

namespace memdis {
namespace {

using core::machine_for_fabric;
using workloads::App;

// ---------- presets ----------------------------------------------------------

TEST(TopologyPresets, ThreeTierChainShape) {
  const auto m = memsim::MachineConfig::three_tier_cxl();
  ASSERT_EQ(m.num_tiers(), 3);
  EXPECT_FALSE(m.tier(0).is_fabric());
  EXPECT_TRUE(m.tier(1).is_fabric());
  EXPECT_TRUE(m.tier(2).is_fabric());
  EXPECT_EQ(m.tier(1).name, "cxl-direct");
  EXPECT_EQ(m.tier(2).name, "cxl-switched");
  // Same device bandwidth, switch traversal adds latency.
  EXPECT_DOUBLE_EQ(m.tier(1).bandwidth_gbps, m.tier(2).bandwidth_gbps);
  EXPECT_GT(m.tier(2).latency_ns, m.tier(1).latency_ns);
  EXPECT_NO_THROW(m.topology.validate());
}

TEST(TopologyPresets, HybridHasAsymmetricPools) {
  const auto m = memsim::MachineConfig::hybrid_split_pool();
  ASSERT_EQ(m.num_tiers(), 3);
  EXPECT_EQ(m.tier(1).name, "cxl-direct");
  EXPECT_EQ(m.tier(2).name, "peer-borrowed");
  // Each pool has its own link with its own parameters.
  EXPECT_LT(m.tier(1).link->protocol_overhead, m.tier(2).link->protocol_overhead);
  EXPECT_LT(m.tier(1).link->interference_share, m.tier(2).link->interference_share);
}

TEST(TopologyPresets, EveryRegisteredNameResolves) {
  for (const auto& name : core::topology_preset_names()) {
    const auto m = machine_for_fabric(name);
    EXPECT_NO_THROW(m.topology.validate()) << name;
    EXPECT_GE(m.num_tiers(), 2) << name;
  }
  EXPECT_THROW((void)machine_for_fabric("banana"), std::invalid_argument);
}

TEST(TopologyPresets, TwoTierPresetsStayTwoTier) {
  for (const char* name : {"upi", "cxl", "cxl-switched", "split"})
    EXPECT_EQ(machine_for_fabric(name).num_tiers(), 2) << name;
}

// ---------- path/validate properties over randomized attachment trees --------

/// A random valid topology: 2..kMaxTiers tiers, every fabric tier attached
/// to a uniformly drawn earlier tier (star, chain, and bushy trees all
/// occur). Seeded by the repository PRNG so failures reproduce exactly.
memsim::MemoryTopology random_topology(Xoshiro256& rng) {
  const int tiers = 2 + static_cast<int>(rng.uniform_below(memsim::kMaxTiers - 1));
  memsim::MemoryTopology topo;
  topo.tiers.push_back(memsim::MemoryTierSpec{"node", 1ULL << 30, 73.0, 111.0, {}});
  for (int i = 1; i < tiers; ++i) {
    memsim::MemoryTierSpec t{"pool" + std::to_string(i), 1ULL << 30, 30.0 + i, 200.0 + i,
                             memsim::FabricLinkSpec{}};
    t.upstream = static_cast<memsim::TierId>(rng.uniform_below(static_cast<std::uint64_t>(i)));
    topo.tiers.push_back(std::move(t));
  }
  return topo;
}

/// Two tiers are adjacent in the attachment tree when one's link hangs off
/// the other (crossing tier x's link moves between x and x.upstream).
bool adjacent_links(const memsim::MemoryTopology& topo, memsim::TierId a, memsim::TierId b) {
  const auto ends_a = std::pair{a, topo.tier(a).upstream};
  const auto ends_b = std::pair{b, topo.tier(b).upstream};
  return ends_a.first == ends_b.first || ends_a.first == ends_b.second ||
         ends_a.second == ends_b.first || ends_a.second == ends_b.second;
}

TEST(TopologyPathProperty, SegmentsConnectedAcyclicAndSymmetric) {
  Xoshiro256 rng(20260730);
  for (int trial = 0; trial < 200; ++trial) {
    const memsim::MemoryTopology topo = random_topology(rng);
    ASSERT_NO_THROW(topo.validate());
    const int n = topo.num_tiers();
    for (memsim::TierId src = 0; src < n; ++src) {
      for (memsim::TierId dst = 0; dst < n; ++dst) {
        const auto segments = topo.path(src, dst);
        if (src == dst) {
          EXPECT_TRUE(segments.empty());
          continue;
        }
        // Every crossed segment is a fabric link, and none repeats
        // (acyclic: a tree walk never crosses the same link twice).
        for (const auto seg : segments) EXPECT_TRUE(topo.is_fabric(seg));
        auto sorted = segments;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end())
            << "segment repeated between tiers " << src << " and " << dst;
        // Connected: consecutive crossed links share a tree endpoint.
        for (std::size_t i = 0; i + 1 < segments.size(); ++i)
          EXPECT_TRUE(adjacent_links(topo, segments[i], segments[i + 1]));
        // Endpoint coverage: the walk starts at src and ends at dst, so
        // the first crossed link touches src and the last touches dst
        // (a tier is touched by its own link or by a child's link).
        ASSERT_FALSE(segments.empty());
        const auto touches = [&](memsim::TierId seg, memsim::TierId tier) {
          return seg == tier || topo.tier(seg).upstream == tier;
        };
        EXPECT_TRUE(touches(segments.front(), src));
        EXPECT_TRUE(touches(segments.back(), dst));
        // Symmetric: the reverse move crosses the same links in reverse
        // order.
        auto reversed = topo.path(dst, src);
        std::reverse(reversed.begin(), reversed.end());
        EXPECT_EQ(segments, reversed);
        // Moves to the node cross exactly the src-side ancestor links.
        if (dst == memsim::kNodeTier) {
          auto chain = topo.ancestors(src);
          chain.pop_back();  // the node tier itself carries no link
          EXPECT_EQ(segments, chain);
        }
      }
    }
  }
}

TEST(TopologyValidateProperty, RejectsMalformedAttachments) {
  // Cycle: a tier attached to itself (upstream not strictly earlier).
  memsim::MemoryTopology self_cycle;
  self_cycle.tiers.push_back(memsim::MemoryTierSpec{"node", 1ULL << 30, 73.0, 111.0, {}});
  self_cycle.tiers.push_back(
      memsim::MemoryTierSpec{"pool", 1ULL << 30, 30.0, 200.0, memsim::FabricLinkSpec{}});
  self_cycle.tiers.back().upstream = 1;
  EXPECT_THROW(self_cycle.validate(), contract_violation);

  // Forward cycle: tier 1 attached to tier 2 while tier 2 hangs off 1.
  memsim::MemoryTopology fwd_cycle = self_cycle;
  fwd_cycle.tiers.push_back(
      memsim::MemoryTierSpec{"pool2", 1ULL << 30, 30.0, 220.0, memsim::FabricLinkSpec{}});
  fwd_cycle.tiers[1].upstream = 2;
  fwd_cycle.tiers[2].upstream = 1;
  EXPECT_THROW(fwd_cycle.validate(), contract_violation);

  // Dangling upstream: attachment point outside the tier list.
  memsim::MemoryTopology dangling = self_cycle;
  dangling.tiers.back().upstream = 7;
  EXPECT_THROW(dangling.validate(), contract_violation);
  dangling.tiers.back().upstream = -3;
  EXPECT_THROW(dangling.validate(), contract_violation);

  // Randomized: corrupting one upstream pointer of a valid tree to a
  // non-earlier tier must always be rejected.
  Xoshiro256 rng(987654321);
  for (int trial = 0; trial < 100; ++trial) {
    memsim::MemoryTopology topo = random_topology(rng);
    if (topo.num_tiers() < 2) continue;
    const auto victim = static_cast<std::size_t>(
        1 + rng.uniform_below(static_cast<std::uint64_t>(topo.num_tiers() - 1)));
    const auto bad = static_cast<memsim::TierId>(
        victim + rng.uniform_below(static_cast<std::uint64_t>(memsim::kMaxTiers)));
    topo.tiers[victim].upstream = bad;  // >= its own index: cycle or dangling
    EXPECT_THROW(topo.validate(), contract_violation) << "victim " << victim;
  }
}

// ---------- engine propagation ----------------------------------------------

TEST(EngineNTier, CountersEpochsAndResidencyCoverAllTiers) {
  auto wl = workloads::make_workload(App::kBFS, 1, /*seed=*/7);
  core::RunConfig cfg;
  cfg.machine = memsim::MachineConfig::three_tier_cxl();
  // Node holds 25% of the footprint, the direct device ~37.5%, the rest
  // spills to the switched pool.
  cfg.capacity_fractions = std::vector<double>{0.25, 0.375};
  const auto run = core::run_workload(*wl, cfg);

  EXPECT_TRUE(run.result.verified);
  // All three tiers served traffic.
  EXPECT_GT(run.counters.dram_bytes(0), 0u);
  EXPECT_GT(run.counters.dram_bytes(1), 0u);
  EXPECT_GT(run.counters.dram_bytes(2), 0u);
  // Epoch records carry per-tier series sized to the topology.
  ASSERT_FALSE(run.epochs.empty());
  EXPECT_EQ(run.epochs.front().tier_bytes.size(), 3u);
  EXPECT_EQ(run.epochs.front().resident_bytes.size(), 3u);
  // Peak residency saw pages on the switched pool.
  ASSERT_EQ(run.resident_bytes.size(), 3u);
  EXPECT_GT(run.resident_bytes[2], 0u);
  // Off-node ratios aggregate both fabric tiers.
  EXPECT_GT(run.remote_access_ratio(), 0.0);
  // The configured 75% split is approximate: the footprint estimate the
  // capacity shaping uses differs from true peak RSS by transient arrays.
  EXPECT_NEAR(run.remote_capacity_ratio(), 0.75, 0.1);
}

// ---------- sweep topology axis ----------------------------------------------

TEST(SweepTopologyAxis, MixesTwoAndThreeTierPointsInOneGrid) {
  core::SweepSpec spec;
  spec.apps = {App::kBFS};
  spec.fabrics = {"cxl", "three-tier", "hybrid"};
  const auto points = spec.expand();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].run_config().machine.num_tiers(), 2);
  EXPECT_EQ(points[1].run_config().machine.num_tiers(), 3);
  EXPECT_EQ(points[2].run_config().machine.num_tiers(), 3);
}

// ---------- scenario grids ----------------------------------------------------

TEST(ScenarioGrid, ExtThreeTierShape) {
  const auto* s = core::ScenarioRegistry::instance().find("ext-three-tier");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->spec.size(), 12u);  // 3 apps x 2 ratios x 2 topologies
  EXPECT_EQ(s->spec.fabrics, (std::vector<std::string>{"cxl", "three-tier"}));
  EXPECT_FALSE(s->spec.seed_per_task);
  const auto points = s->spec.expand();
  EXPECT_EQ(points.size(), 12u);
  // Shared seed across the topology axis (inputs held fixed).
  for (const auto& p : points) EXPECT_EQ(p.seed, s->spec.base_seed);
}

TEST(ScenarioGrid, ExtHybridShape) {
  const auto* s = core::ScenarioRegistry::instance().find("ext-hybrid");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->spec.size(), 6u);  // 2 apps x 3 topologies
  EXPECT_EQ(s->spec.fabrics, (std::vector<std::string>{"cxl", "hybrid", "split"}));
}

TEST(ScenarioGrid, ThreeTierMeasureUsesTheSwitchedTier) {
  const auto* s = core::ScenarioRegistry::instance().find("ext-three-tier");
  ASSERT_NE(s, nullptr);
  core::SweepPoint point;
  point.app = App::kBFS;
  point.ratio = 0.75;
  point.fabric = "three-tier";
  point.seed = s->spec.base_seed;
  const auto metrics = s->measure(point);
  double share_t2 = 0.0, time_ms = 0.0;
  for (const auto& [name, value] : metrics) {
    if (name == "share_t2") share_t2 = value;
    if (name == "time_ms") time_ms = value;
  }
  EXPECT_GT(time_ms, 0.0);
  EXPECT_GT(share_t2, 0.0);  // the chain's tail actually serves traffic
}

// ---------- monotonicity ------------------------------------------------------

// The property the three-tier scenario claims: with byte-for-byte identical
// placement, turning the chain's tail from a direct hop into a switched hop
// (same bandwidth, +latency) never improves runtime.
TEST(Monotonicity, SwitchedHopNeverImprovesRuntime) {
  const std::uint64_t seed = 99;
  auto direct_machine = memsim::MachineConfig::three_tier_cxl();
  direct_machine.tier(2).latency_ns = direct_machine.tier(1).latency_ns;

  core::RunConfig direct_cfg;
  direct_cfg.machine = direct_machine;
  direct_cfg.capacity_fractions = std::vector<double>{0.25, 0.375};
  auto wl_direct = workloads::make_workload(App::kBFS, 1, seed);
  const auto direct = core::run_workload(*wl_direct, direct_cfg);

  core::RunConfig switched_cfg = direct_cfg;
  switched_cfg.machine = memsim::MachineConfig::three_tier_cxl();
  auto wl_switched = workloads::make_workload(App::kBFS, 1, seed);
  const auto switched = core::run_workload(*wl_switched, switched_cfg);

  // Identical placement (deterministic first touch on identical capacities):
  // the only difference is the tail hop's latency.
  EXPECT_EQ(direct.counters.dram_bytes(2), switched.counters.dram_bytes(2));
  EXPECT_GT(direct.counters.dram_bytes(2), 0u);
  EXPECT_GE(switched.elapsed_s, direct.elapsed_s);
}

// Splitting the spill between the CXL device and the (slower) peer tier
// always beats borrowing everything from the peer: the hybrid moves half
// the traffic to a strictly faster path.
TEST(Monotonicity, HybridNeverLosesToPureSplit) {
  const std::uint64_t seed = 99;
  core::RunConfig hybrid_cfg;
  hybrid_cfg.machine = memsim::MachineConfig::hybrid_split_pool();
  hybrid_cfg.capacity_fractions = std::vector<double>{0.5, 0.25};
  auto wl_hybrid = workloads::make_workload(App::kBFS, 1, seed);
  const auto hybrid = core::run_workload(*wl_hybrid, hybrid_cfg);

  core::RunConfig split_cfg;
  split_cfg.machine = memsim::MachineConfig::split_borrowing();
  split_cfg.remote_capacity_ratio = 0.5;
  auto wl_split = workloads::make_workload(App::kBFS, 1, seed);
  const auto split = core::run_workload(*wl_split, split_cfg);

  EXPECT_LE(hybrid.elapsed_s, split.elapsed_s);
}

}  // namespace
}  // namespace memdis
