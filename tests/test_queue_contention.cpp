// Property gate for the ext-queue-contention scenario (the golden test
// byte-compares its artifacts; this suite asserts the *claims* those
// numbers make):
//  * demand-miss latency strictly inflates while a migration burst's bulk
//    bytes share the link (burst inflation > quiet inflation);
//  * quiet epochs — outside any burst and its estimator window — carry no
//    cross traffic, so their inflation is exactly 1.0;
//  * the self-congestion deferral strictly reduces burst-epoch inflation
//    (the planner sheds the low-value tail of its own burst).
#include <gtest/gtest.h>

#include "core/scenario_registry.h"

namespace memdis {
namespace {

double metric_of(const core::SweepRow& row, const std::string& name) {
  for (const auto& [key, value] : row.metrics)
    if (key == name) return value;
  ADD_FAILURE() << "missing metric " << name;
  return 0.0;
}

class QueueContentionScenario : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const auto* scenario = core::ScenarioRegistry::instance().find("ext-queue-contention");
    ASSERT_NE(scenario, nullptr);
    core::SweepOptions options;
    options.jobs = 2;
    result_ = new core::SweepResult(core::run_scenario(*scenario, options));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }
  static const core::SweepResult& result() { return *result_; }

 private:
  static core::SweepResult* result_;
};

core::SweepResult* QueueContentionScenario::result_ = nullptr;

TEST_F(QueueContentionScenario, MigrationBurstsInflateDemandLatency) {
  ASSERT_FALSE(result().rows.empty());
  for (const auto& row : result().rows) {
    const double burst = metric_of(row, "eager_burst_inflation");
    const double quiet = metric_of(row, "eager_quiet_inflation");
    EXPECT_GT(burst, quiet) << row.point.variant << " ratio=" << row.point.ratio;
    // Quiet epochs see zero bulk cross traffic by construction, so their
    // inflation is not merely smaller — it is exactly the closed form.
    EXPECT_EQ(quiet, 1.0) << row.point.variant;
  }
}

TEST_F(QueueContentionScenario, DeferralReducesBurstInflation) {
  for (const auto& row : result().rows) {
    EXPECT_LT(metric_of(row, "deferred_burst_inflation"),
              metric_of(row, "eager_burst_inflation"))
        << row.point.variant << " ratio=" << row.point.ratio;
    // The reduction must come from moves actually shed, not noise.
    EXPECT_GT(metric_of(row, "self_deferred"), 0.0) << row.point.variant;
    EXPECT_LT(metric_of(row, "deferred_migrated_mib"),
              metric_of(row, "eager_migrated_mib"))
        << row.point.variant;
  }
}

TEST_F(QueueContentionScenario, DeferralDoesNotSlowTheRunDown) {
  // Shedding self-congested moves should pay for itself end to end; allow
  // a small tolerance so the gate tracks regressions, not ulps.
  for (const auto& row : result().rows) {
    EXPECT_LE(metric_of(row, "deferred_ms"), metric_of(row, "eager_ms") * 1.02)
        << row.point.variant << " ratio=" << row.point.ratio;
  }
}

}  // namespace
}  // namespace memdis
