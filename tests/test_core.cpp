// Tests for the quantitative-methodology library: roofline models, scaling
// curves, prefetch formulas, the experiment runner, interference
// quantification, and the placement advisor.
#include <gtest/gtest.h>

#include "common/contract.h"
#include "core/advisor.h"
#include "core/experiment.h"
#include "core/interference.h"
#include "core/prefetch_analysis.h"
#include "core/profiler.h"
#include "core/roofline.h"
#include "core/scaling_curve.h"
#include "workloads/hypre.h"
#include "workloads/lbench.h"

namespace memdis::core {
namespace {

using memsim::MachineConfig;

// ---------- roofline ------------------------------------------------------------

TEST(Roofline, AttainableIsMinOfRoofs) {
  RooflineModel r(100.0, 50.0);
  EXPECT_DOUBLE_EQ(r.attainable_gflops(1.0), 50.0);
  EXPECT_DOUBLE_EQ(r.attainable_gflops(2.0), 100.0);
  EXPECT_DOUBLE_EQ(r.attainable_gflops(10.0), 100.0);
}

TEST(Roofline, RidgePointSeparatesRegimes) {
  RooflineModel r(100.0, 50.0);
  EXPECT_DOUBLE_EQ(r.ridge_point(), 2.0);
  EXPECT_LT(r.attainable_gflops(1.9), 100.0);
  EXPECT_DOUBLE_EQ(r.attainable_gflops(2.1), 100.0);
}

TEST(Roofline, MultiTierRaisesBandwidthRoof) {
  const auto m = MachineConfig::skylake_testbed();
  const auto local = RooflineModel::local_tier(m);
  const auto multi = RooflineModel::multi_tier(m);
  EXPECT_DOUBLE_EQ(local.bandwidth_gbps(), 73.0);
  EXPECT_DOUBLE_EQ(multi.bandwidth_gbps(), 107.0);
  EXPECT_LT(multi.ridge_point(), local.ridge_point());
}

TEST(Roofline, InvalidPeaksViolateContract) {
  EXPECT_THROW(RooflineModel(0.0, 1.0), contract_violation);
  EXPECT_THROW(RooflineModel(1.0, -1.0), contract_violation);
}

TEST(EffectiveBandwidth, PeaksAtBandwidthRatio) {
  const auto m = MachineConfig::skylake_testbed();
  const double at_ratio = effective_bandwidth_gbps(m, m.remote_bandwidth_ratio());
  EXPECT_NEAR(at_ratio, 107.0, 0.5);  // both tiers fully streamed
  EXPECT_LT(effective_bandwidth_gbps(m, 0.05), at_ratio);
  EXPECT_LT(effective_bandwidth_gbps(m, 0.8), at_ratio);
}

TEST(EffectiveBandwidth, EndpointsMatchSingleTiers) {
  const auto m = MachineConfig::skylake_testbed();
  EXPECT_DOUBLE_EQ(effective_bandwidth_gbps(m, 0.0), 73.0);
  EXPECT_DOUBLE_EQ(effective_bandwidth_gbps(m, 1.0), 34.0);
}

TEST(EffectiveBandwidth, InterferenceLowersRemoteSide) {
  const auto m = MachineConfig::skylake_testbed();
  const double idle = effective_bandwidth_gbps_under_loi(m, 0.5, 0.0);
  const double loaded = effective_bandwidth_gbps_under_loi(m, 0.5, 80.0);
  EXPECT_LT(loaded, idle);
  // Local-only traffic is immune.
  EXPECT_DOUBLE_EQ(effective_bandwidth_gbps_under_loi(m, 0.0, 80.0), 73.0);
}

// ---------- scaling curve ----------------------------------------------------------

std::unordered_map<std::uint64_t, std::uint64_t> uniform_pages(int n, std::uint64_t count) {
  std::unordered_map<std::uint64_t, std::uint64_t> h;
  for (int p = 0; p < n; ++p) h[static_cast<std::uint64_t>(p)] = count;
  return h;
}

TEST(ScalingCurve, UniformIsDiagonal) {
  const ScalingCurve c(uniform_pages(100, 10));
  EXPECT_NEAR(c.access_fraction_at(0.5), 0.5, 0.02);
  EXPECT_NEAR(c.skewness(), 0.0, 0.02);
}

TEST(ScalingCurve, SkewedRisesSharply) {
  auto h = uniform_pages(100, 1);
  h[0] = 1000;  // one hot page
  const ScalingCurve c(h);
  EXPECT_GT(c.access_fraction_at(0.02), 0.85);
  EXPECT_GT(c.skewness(), 0.7);
}

TEST(ScalingCurve, EndpointsAreZeroAndOne) {
  const ScalingCurve c(uniform_pages(10, 5));
  EXPECT_DOUBLE_EQ(c.access_fraction_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.access_fraction_at(1.0), 1.0);
}

TEST(ScalingCurve, MonotoneNondecreasing) {
  auto h = uniform_pages(50, 2);
  h[3] = 100;
  h[7] = 40;
  const ScalingCurve c(h);
  double prev = -1.0;
  for (int i = 0; i <= 100; ++i) {
    const double v = c.access_fraction_at(i / 100.0);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(ScalingCurve, UntouchedPagesStretchFootprint) {
  const ScalingCurve hot_only(uniform_pages(10, 5), 0);
  const ScalingCurve with_cold(uniform_pages(10, 5), 90);
  // With 90% cold pages, 10% of footprint already covers all accesses.
  EXPECT_NEAR(with_cold.access_fraction_at(0.10), 1.0, 0.01);
  EXPECT_GT(with_cold.skewness(), hot_only.skewness());
}

TEST(ScalingCurve, InverseLookupConsistent) {
  auto h = uniform_pages(100, 1);
  h[0] = 100;
  const ScalingCurve c(h);
  for (const double af : {0.3, 0.6, 0.9}) {
    const double ff = c.footprint_fraction_for(af);
    EXPECT_NEAR(c.access_fraction_at(ff), af, 0.02);
  }
}

TEST(ScalingCurve, DistanceZeroToSelf) {
  const ScalingCurve c(uniform_pages(20, 3));
  EXPECT_NEAR(c.distance(c), 0.0, 1e-12);
}

TEST(ScalingCurve, DistanceDetectsSkewDifference) {
  const ScalingCurve uniform(uniform_pages(100, 10));
  auto h = uniform_pages(100, 1);
  h[0] = 5000;
  const ScalingCurve skewed(h);
  EXPECT_GT(uniform.distance(skewed), 0.5);
}

TEST(ScalingCurve, EmptyViolatesContract) {
  const std::unordered_map<std::uint64_t, std::uint64_t> empty;
  EXPECT_THROW(ScalingCurve{empty}, contract_violation);
}

TEST(ScalingCurve, SampleHasRequestedPoints) {
  const ScalingCurve c(uniform_pages(10, 5));
  const auto ys = c.sample(11);
  ASSERT_EQ(ys.size(), 11u);
  EXPECT_DOUBLE_EQ(ys.front(), 0.0);
  EXPECT_DOUBLE_EQ(ys.back(), 1.0);
}

// ---------- prefetch formulas -------------------------------------------------------

cachesim::HwCounters counters_with(std::uint64_t pf_rd, std::uint64_t pf_rfo,
                                   std::uint64_t useless, std::uint64_t lines_in) {
  cachesim::HwCounters c;
  c.pf_l2_data_rd = pf_rd;
  c.pf_l2_rfo = pf_rfo;
  c.useless_hwpf = useless;
  c.l2_lines_in = lines_in;
  return c;
}

TEST(PrefetchFormulas, AccuracyEq1) {
  const auto c = counters_with(80, 20, 10, 200);
  EXPECT_DOUBLE_EQ(prefetch_accuracy(c), 0.9);  // (100-10)/100
}

TEST(PrefetchFormulas, CoverageEq2) {
  const auto c = counters_with(80, 20, 10, 200);
  EXPECT_DOUBLE_EQ(prefetch_coverage(c), 90.0 / 190.0);
}

TEST(PrefetchFormulas, NoPrefetchesGivesZero) {
  const auto c = counters_with(0, 0, 0, 100);
  EXPECT_DOUBLE_EQ(prefetch_accuracy(c), 0.0);
  EXPECT_DOUBLE_EQ(prefetch_coverage(c), 0.0);
}

TEST(PrefetchFormulas, AnalyzeComputesGainAndExcess) {
  auto on = counters_with(100, 0, 5, 300);
  on.dram_read_bytes[0] = 1100;
  auto off = counters_with(0, 0, 0, 280);
  off.dram_read_bytes[0] = 1000;
  const auto m = analyze_prefetch(on, 1.0, off, 1.5);
  EXPECT_NEAR(m.excess_traffic, 0.1, 1e-12);
  EXPECT_NEAR(m.performance_gain, 0.5, 1e-12);
}

// ---------- experiment runner --------------------------------------------------------

TEST(Experiment, CapturesCountersAndPhases) {
  workloads::HypreParams p;
  p.grid = 48;
  p.iterations = 3;
  workloads::Hypre wl(p);
  const RunOutput out = run_workload(wl, RunConfig{});
  EXPECT_TRUE(out.result.verified);
  EXPECT_GT(out.elapsed_s, 0.0);
  EXPECT_GT(out.flops, 0u);
  EXPECT_EQ(out.phases.size(), 2u);
  EXPECT_GT(out.peak_rss_bytes, 0u);
  EXPECT_FALSE(out.page_accesses.empty());
}

TEST(Experiment, RemoteCapacityRatioForcesSpill) {
  workloads::HypreParams p;
  p.grid = 96;
  p.iterations = 2;
  workloads::Hypre wl(p);
  RunConfig cfg;
  cfg.remote_capacity_ratio = 0.5;
  const RunOutput out = run_workload(wl, cfg);
  EXPECT_NEAR(out.remote_capacity_ratio(), 0.5, 0.1);
  EXPECT_GT(out.remote_access_ratio(), 0.1);
}

TEST(Experiment, LocalOnlyHasNoRemoteAccess) {
  workloads::HypreParams p;
  p.grid = 48;
  p.iterations = 2;
  workloads::Hypre wl(p);
  const RunOutput out = run_workload(wl, RunConfig{});
  EXPECT_DOUBLE_EQ(out.remote_access_ratio(), 0.0);
}

TEST(Experiment, PrefetchToggleChangesCounters) {
  workloads::HypreParams p;
  p.grid = 64;
  p.iterations = 2;
  workloads::Hypre wl(p);
  RunConfig on;
  RunConfig off;
  off.prefetch_enabled = false;
  const auto r_on = run_workload(wl, on);
  const auto r_off = run_workload(wl, off);
  EXPECT_GT(r_on.counters.prefetch_fills(), 0u);
  EXPECT_EQ(r_off.counters.prefetch_fills(), 0u);
  EXPECT_LT(r_on.elapsed_s, r_off.elapsed_s);
}

// ---------- interference --------------------------------------------------------------

TEST(Lbench, OfferedTrafficInverseInNflop) {
  const auto m = MachineConfig::skylake_testbed();
  const double t1 = lbench_offered_traffic_gbps(m, 12, 1);
  const double t2 = lbench_offered_traffic_gbps(m, 12, 2);
  EXPECT_NEAR(t1 / t2, 2.0, 1e-9);
}

TEST(Lbench, TrafficScalesWithThreads) {
  const auto m = MachineConfig::skylake_testbed();
  EXPECT_NEAR(lbench_offered_traffic_gbps(m, 2, 8) / lbench_offered_traffic_gbps(m, 1, 8),
              2.0, 1e-9);
}

TEST(Calibration, NflopForLoiRoundTrips) {
  const auto m = MachineConfig::skylake_testbed();
  const LbenchCalibration cal(m, 12);
  for (const double target : {10.0, 20.0, 30.0, 40.0, 50.0}) {
    const auto nflop = cal.nflop_for_loi(target);
    EXPECT_GE(nflop, 1u);
    EXPECT_NEAR(cal.loi_for_nflop(nflop), target, target * 0.25);
  }
}

TEST(Calibration, MeasuredLoiSaturatesAt100) {
  const auto m = MachineConfig::skylake_testbed();
  const LbenchCalibration cal(m, 12);
  for (const auto& pt : cal.points()) {
    EXPECT_LE(pt.measured_loi, 100.0);
    EXPECT_GE(pt.offered_loi, pt.measured_loi);
  }
}

TEST(InterferenceCoefficient, OneOnIdleSystem) {
  const auto m = MachineConfig::skylake_testbed();
  EXPECT_DOUBLE_EQ(interference_coefficient_at(m, 0.0), 1.0);
}

TEST(InterferenceCoefficient, MonotoneAndKeepsRisingPastSaturation) {
  const auto m = MachineConfig::skylake_testbed();
  double prev = 0.0;
  for (const double u : {0.25, 0.5, 1.0, 2.0, 5.0, 11.0}) {
    const double ic = interference_coefficient_at(m, u);
    EXPECT_GT(ic, prev);
    prev = ic;
  }
  // Paper Fig. 11: IC ≈ 2.6 at full LBench blast while PCM saturates.
  EXPECT_GT(interference_coefficient_at(m, 11.0), 2.0);
  EXPECT_LT(interference_coefficient_at(m, 11.0), 3.5);
}

TEST(Sensitivity, InterpolationIsPiecewiseLinear) {
  const std::vector<SensitivityPoint> curve = {{0, 1.0}, {20, 0.9}, {50, 0.6}};
  EXPECT_DOUBLE_EQ(interpolate_sensitivity(curve, 0), 1.0);
  EXPECT_DOUBLE_EQ(interpolate_sensitivity(curve, 10), 0.95);
  EXPECT_DOUBLE_EQ(interpolate_sensitivity(curve, 35), 0.75);
  EXPECT_DOUBLE_EQ(interpolate_sensitivity(curve, 80), 0.6);  // clamps
}

TEST(Sensitivity, SweepStartsAtOneAndDecreases) {
  workloads::HypreParams p;
  p.grid = 96;
  p.iterations = 3;
  workloads::Hypre wl(p);
  const auto curve = sensitivity_sweep(wl, RunConfig{}, 0.5, {0, 25, 50});
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].relative_performance, 1.0);
  EXPECT_LT(curve[1].relative_performance, 1.0);
  EXPECT_LE(curve[2].relative_performance, curve[1].relative_performance);
}

TEST(InducedInterference, TracksRemoteTraffic) {
  workloads::LbenchParams p;
  p.elements = 1 << 16;
  p.nflop = 1;
  p.sweeps = 2;
  workloads::Lbench wl(p);
  RunConfig cfg;
  const auto run = run_workload(wl, cfg);
  const auto induced = induced_interference(run, cfg.machine);
  EXPECT_GT(induced.ic_mean, 1.0);
  EXPECT_LE(induced.ic_min, induced.ic_mean);
  EXPECT_GE(induced.ic_max, induced.ic_mean);
}

// ---------- advisor -----------------------------------------------------------------

Level2Profile fake_level2(double r_cap, double r_bw,
                          std::vector<std::pair<double, double>> phase_ratio_weight) {
  Level2Profile p;
  p.remote_capacity_ratio_configured = r_cap;
  p.remote_bandwidth_ratio = r_bw;
  int i = 0;
  for (const auto& [ratio, weight] : phase_ratio_weight) {
    PhaseTierAccess pa;
    // Built via std::string + append (not `"p" + std::to_string(...)`) to
    // dodge gcc 12's -Wrestrict false positive (PR105651) under -O2.
    pa.tag = std::string("p").append(std::to_string(++i));
    pa.remote_access_ratio = ratio;
    pa.weight = weight;
    p.phases.push_back(pa);
  }
  return p;
}

TEST(Advisor, BalancedPhaseNeedsNoTuning) {
  const auto report = advise(fake_level2(0.5, 0.32, {{0.2, 1.0}}));
  EXPECT_EQ(report.phases[0].verdict, PlacementVerdict::kBalanced);
  EXPECT_EQ(report.dominant_phase, -1);
  EXPECT_NE(report.summary.find("little optimization space"), std::string::npos);
}

TEST(Advisor, AboveCapacityIsTopPriority) {
  const auto report = advise(fake_level2(0.5, 0.32, {{0.9, 0.8}, {0.4, 0.2}}));
  EXPECT_EQ(report.phases[0].verdict, PlacementVerdict::kAboveCapacityRef);
  EXPECT_EQ(report.phases[1].verdict, PlacementVerdict::kAboveBandwidthRef);
  EXPECT_EQ(report.dominant_phase, 0);
}

TEST(Advisor, WeightBreaksTies) {
  // Same excess, different runtime weights: the heavier phase dominates.
  const auto report = advise(fake_level2(0.5, 0.32, {{0.7, 0.1}, {0.7, 0.9}}));
  EXPECT_EQ(report.dominant_phase, 1);
}

TEST(Advisor, ReferencesFlipWhenCapacityBelowBandwidth) {
  // 25% remote capacity < 32% bandwidth ratio: band is [0.25, 0.32].
  const auto report = advise(fake_level2(0.25, 0.32, {{0.28, 1.0}}));
  EXPECT_EQ(report.phases[0].verdict, PlacementVerdict::kAboveBandwidthRef);
}

TEST(Advisor, VerdictNamesAreStable) {
  EXPECT_STREQ(verdict_name(PlacementVerdict::kBalanced), "balanced");
  EXPECT_STREQ(verdict_name(PlacementVerdict::kAboveBandwidthRef), "above-R_bw");
  EXPECT_STREQ(verdict_name(PlacementVerdict::kAboveCapacityRef), "above-R_cap");
}

// ---------- profiler levels ------------------------------------------------------------

TEST(Profiler, Level1ProducesFullProfile) {
  workloads::HypreParams p;
  p.grid = 64;
  p.iterations = 3;
  workloads::Hypre wl(p);
  const MultiLevelProfiler profiler{};
  const auto l1 = profiler.level1(wl);
  EXPECT_TRUE(l1.result.verified);
  EXPECT_GT(l1.arithmetic_intensity, 0.0);
  EXPECT_GT(l1.mean_dram_gbps, 0.0);
  EXPECT_EQ(l1.phases.size(), 2u);
  EXPECT_GT(l1.prefetch.coverage, 0.0);
  EXPECT_GT(l1.prefetch.performance_gain, 0.0);
  EXPECT_FALSE(l1.timeline_prefetch_on.empty());
}

TEST(Profiler, Level2RatiosInRange) {
  workloads::HypreParams p;
  p.grid = 96;
  p.iterations = 2;
  workloads::Hypre wl(p);
  const MultiLevelProfiler profiler{};
  const auto l2 = profiler.level2(wl, 0.25);
  EXPECT_NEAR(l2.remote_capacity_ratio_measured, 0.25, 0.1);
  EXPECT_GE(l2.remote_access_ratio_total, 0.0);
  EXPECT_LE(l2.remote_access_ratio_total, 1.0);
  ASSERT_EQ(l2.phases.size(), 2u);
}

TEST(Profiler, Level3SensitivityAndIc) {
  workloads::HypreParams p;
  p.grid = 64;
  p.iterations = 2;
  workloads::Hypre wl(p);
  const MultiLevelProfiler profiler{};
  const auto l3 = profiler.level3(wl, 0.5, {0, 50});
  ASSERT_EQ(l3.sensitivity.size(), 2u);
  EXPECT_LT(l3.sensitivity[1].relative_performance, 1.0);
  EXPECT_GE(l3.induced.ic_mean, 1.0);
}

}  // namespace
}  // namespace memdis::core
