// Unit tests for the common utilities: RNG, statistics, table/CSV printing,
// units, and contract checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <span>
#include <sstream>
#include <vector>

#include "common/contract.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace memdis {
namespace {

// ---------- RNG -------------------------------------------------------------

TEST(Xoshiro, DeterministicForSameSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformRangeRespectsBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Xoshiro, UniformBelowIsBoundedAndCoversRange) {
  Xoshiro256 rng(11);
  std::array<int, 5> hits{};
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_below(5);
    ASSERT_LT(v, 5u);
    ++hits[v];
  }
  for (const int h : hits) EXPECT_GT(h, 500);  // roughly uniform
}

TEST(Xoshiro, UniformBelowOneAlwaysZero) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Xoshiro, UniformBelowZeroViolatesContract) {
  Xoshiro256 rng(3);
  EXPECT_THROW(rng.uniform_below(0), contract_violation);
}

TEST(Xoshiro, NormalHasApproxZeroMeanUnitVariance) {
  Xoshiro256 rng(5);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.variance(), 1.0, 0.1);
}

TEST(SplitMix, KnownFirstValueStable) {
  SplitMix64 sm(0);
  const auto v1 = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(v1, sm2.next());
}

// ---------- RunningStats ----------------------------------------------------

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -5.0);
}

// ---------- percentile / five-number ----------------------------------------

TEST(Percentile, MedianOfOddCount) {
  const std::vector<double> xs = {3, 1, 2};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.0);
}

TEST(Percentile, InterpolatesBetweenPoints) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.75), 7.5);
}

TEST(Percentile, EndpointsAreMinMax) {
  const std::vector<double> xs = {5, -2, 8, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), -2.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 8.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> xs = {42.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.3), 42.0);
}

TEST(Percentile, EmptyViolatesContract) {
  const std::vector<double> xs;
  EXPECT_THROW((void)percentile(xs, 0.5), contract_violation);
}

TEST(Percentile, OutOfRangeQViolatesContract) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW((void)percentile(xs, 1.5), contract_violation);
  EXPECT_THROW((void)percentile(xs, -0.1), contract_violation);
}

// The pre-sort-once implementation, kept verbatim as the regression
// reference: percentile() and five_number_summary() must return values
// bit-identical to it (the fleet tail metrics and Fig. 13 summaries are
// golden-gated downstream).
double percentile_reference(std::span<const double> xs, double q) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

TEST(Percentile, BitIdenticalToPerCallSortReference) {
  Xoshiro256 rng(20260807);
  const double qs[] = {0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0};
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{7},
                              std::size_t{64}, std::size_t{1000}}) {
    std::vector<double> xs(n);
    for (auto& x : xs) x = rng.uniform(-1e6, 1e6);
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    for (const double q : qs) {
      const double ref = percentile_reference(xs, q);
      EXPECT_EQ(percentile(xs, q), ref);
      EXPECT_EQ(percentile_sorted(sorted, q), ref);
    }
    const FiveNumber f = five_number_summary(xs);
    EXPECT_EQ(f.min, percentile_reference(xs, 0.0));
    EXPECT_EQ(f.q1, percentile_reference(xs, 0.25));
    EXPECT_EQ(f.median, percentile_reference(xs, 0.5));
    EXPECT_EQ(f.q3, percentile_reference(xs, 0.75));
    EXPECT_EQ(f.max, percentile_reference(xs, 1.0));
  }
}

TEST(Percentile, SortedRequiresNonEmptyAndValidQ) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_THROW((void)percentile_sorted({}, 0.5), contract_violation);
  EXPECT_THROW((void)percentile_sorted(xs, 1.5), contract_violation);
}

TEST(FiveNumber, OrderedSummary) {
  std::vector<double> xs;
  for (int i = 100; i >= 1; --i) xs.push_back(i);
  const FiveNumber f = five_number_summary(xs);
  EXPECT_DOUBLE_EQ(f.min, 1.0);
  EXPECT_DOUBLE_EQ(f.max, 100.0);
  EXPECT_LE(f.min, f.q1);
  EXPECT_LE(f.q1, f.median);
  EXPECT_LE(f.median, f.q3);
  EXPECT_LE(f.q3, f.max);
  EXPECT_NEAR(f.median, 50.5, 1e-9);
}

TEST(MeanOf, SimpleAverage) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.0);
}

// ---------- linear fit --------------------------------------------------------

TEST(LinearFit, ExactLine) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {3, 5, 7, 9};  // y = 2x + 1
  const auto fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, ConstantXGivesZeroSlope) {
  const std::vector<double> xs = {2, 2, 2};
  const std::vector<double> ys = {1, 2, 3};
  const auto fit = linear_fit(xs, ys);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(LinearFit, SizeMismatchViolatesContract) {
  const std::vector<double> xs = {1, 2};
  const std::vector<double> ys = {1};
  EXPECT_THROW((void)linear_fit(xs, ys), contract_violation);
}

// ---------- Table -------------------------------------------------------------

TEST(Table, AlignsColumnsAndCountsRows) {
  Table t({"a", "long-header"});
  t.add_row({"x", "1"});
  t.add_row({"yyyy", "2"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("yyyy"), std::string::npos);
}

TEST(Table, RowWidthMismatchViolatesContract) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), contract_violation);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::pct(0.5), "50.0%");
  EXPECT_EQ(Table::pct(0.123, 2), "12.30%");
}

// ---------- CSV -----------------------------------------------------------------

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/memdis_test_csv.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.add_row({"1", "2"});
    w.add_row({"x,y", "quote\"inside"});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",\"quote\"\"inside\"");
  std::remove(path.c_str());
}

TEST(Csv, RowWidthMismatchViolatesContract) {
  const std::string path = "/tmp/memdis_test_csv2.csv";
  CsvWriter w(path, {"a"});
  EXPECT_THROW(w.add_row({"1", "2"}), contract_violation);
  std::remove(path.c_str());
}

// ---------- units ----------------------------------------------------------------

TEST(Units, BandwidthConversionRoundTrips) {
  EXPECT_DOUBLE_EQ(gbps_to_bytes_per_sec(73.0), 73e9);
  EXPECT_DOUBLE_EQ(bytes_per_sec_to_gbps(34e9), 34.0);
  EXPECT_DOUBLE_EQ(ns_to_s(111.0), 111e-9);
  EXPECT_DOUBLE_EQ(s_to_ns(1e-6), 1000.0);
}

TEST(Units, FormatBytesPicksSuffix) {
  EXPECT_EQ(format_bytes(512.0), "512.0 B");
  EXPECT_EQ(format_bytes(2048.0), "2.0 KiB");
  EXPECT_EQ(format_bytes(3.5 * 1024 * 1024), "3.5 MiB");
}

// ---------- contracts ---------------------------------------------------------------

TEST(Contract, ExpectsThrowsWithMessage) {
  try {
    expects(false, "my precondition");
    FAIL() << "should have thrown";
  } catch (const contract_violation& e) {
    EXPECT_NE(std::string(e.what()).find("my precondition"), std::string::npos);
  }
}

TEST(Contract, EnsuresPassesWhenTrue) { EXPECT_NO_THROW(ensures(true, "ok")); }

}  // namespace
}  // namespace memdis
